package amrt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smallSweep(cacheDir string) SweepConfig {
	return SweepConfig{
		Protocols: []string{"pHost", "AMRT"},
		Loads:     []float64{0.4},
		Seeds:     []int64{1, 2},
		Base:      Config{Workload: "WebServer", Flows: 80, Topology: smallTopo()},
		CacheDir:  cacheDir,
	}
}

func TestSweepCacheResumeByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()

	first, err := Sweep(ctx, smallSweep(dir))
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalPoints != 4 || first.CacheHits != 0 || first.CacheMisses != 4 {
		t.Fatalf("first campaign: %d points, %d hits, %d misses",
			first.TotalPoints, first.CacheHits, first.CacheMisses)
	}
	if len(first.Points) != 4 || len(first.Cells) != 2 {
		t.Fatalf("first campaign: %d points, %d cells", len(first.Points), len(first.Cells))
	}

	second, err := Sweep(ctx, smallSweep(dir))
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 4 || second.CacheMisses != 0 {
		t.Fatalf("resumed campaign recomputed: %d hits, %d misses",
			second.CacheHits, second.CacheMisses)
	}
	for i := range second.Points {
		if !second.Points[i].FromCache {
			t.Errorf("resumed point %d not from cache", i)
		}
		if second.Points[i].Result != first.Points[i].Result {
			t.Errorf("resumed point %d result differs from computed", i)
		}
	}

	// The serialized reports must be byte-identical: cache ledger and
	// FromCache flags are run mechanics, excluded from serialization.
	var a, b bytes.Buffer
	if err := first.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("resumed campaign JSON report differs from computed report")
	}
	var ac, bc bytes.Buffer
	if err := first.WriteCSV(&ac); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteCSV(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Error("resumed campaign CSV report differs from computed report")
	}
}

func TestSweepCachedPointMatchesFreshRecompute(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()
	sc := smallSweep(dir)
	if _, err := Sweep(ctx, sc); err != nil {
		t.Fatal(err)
	}
	// Rehydrate the campaign from cache, then recompute one point
	// fresh: the canonical JSON encodings must match byte for byte.
	res, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[2] // AMRT seed 1
	fresh, err := RunContext(ctx, Config{
		Protocol: p.Protocol, Workload: p.Workload, Load: p.Load, Seed: p.Seed,
		Flows: sc.Base.Flows, Topology: sc.Base.Topology,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := json.Marshal(p.Result)
	recomputed, _ := json.Marshal(fresh)
	if !bytes.Equal(cached, recomputed) {
		t.Errorf("cached point diverges from fresh recompute:\n%s\n%s", cached, recomputed)
	}
}

func TestSweepCancelMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sc := smallSweep(filepath.Join(t.TempDir(), "cache"))
	sc.Workers = 1
	sc.Progress = func(p SweepProgress) {
		if p.Done == 1 {
			cancel()
		}
	}
	res, err := Sweep(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled sweep returned no partial result")
	}
	if len(res.Points) == 0 || len(res.Points) >= res.TotalPoints {
		t.Errorf("partial result has %d/%d points", len(res.Points), res.TotalPoints)
	}
	if len(res.Cells) == 0 {
		t.Error("partial result has no aggregated cells")
	}
}

func TestSweepValidatesGridUpFront(t *testing.T) {
	_, err := Sweep(context.Background(), SweepConfig{
		Protocols: []string{"AMRT", "QUIC"},
		Base:      Config{Flows: 10, Topology: smallTopo()},
	})
	if !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("err = %v, want ErrUnknownProtocol", err)
	}
}

func TestSweepDefaultsToSinglePoint(t *testing.T) {
	res, err := Sweep(context.Background(), SweepConfig{
		Protocols: []string{"AMRT"},
		Base:      Config{Flows: 60, Topology: smallTopo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPoints != 1 || len(res.Cells) != 1 || res.Cells[0].Seeds != 1 {
		t.Errorf("defaulted sweep: %+v", res)
	}
	if res.CacheHits != 0 || res.CacheMisses != 1 {
		t.Errorf("cache-less sweep ledger: %d hits, %d misses", res.CacheHits, res.CacheMisses)
	}
}

func TestSweepCellAggregation(t *testing.T) {
	res, err := Sweep(context.Background(), smallSweep(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Seeds != 2 {
			t.Errorf("cell %s: %d seeds, want 2", c.Protocol, c.Seeds)
		}
		if c.AFCTUs.Mean <= 0 || c.AFCTUs.Min > c.AFCTUs.Max {
			t.Errorf("cell %s AFCT stats implausible: %+v", c.Protocol, c.AFCTUs)
		}
		if c.Utilization.Mean <= 0 || c.Utilization.Mean > 1 {
			t.Errorf("cell %s utilization %v", c.Protocol, c.Utilization.Mean)
		}
		if c.Completed != c.Total {
			t.Errorf("cell %s completed %d/%d", c.Protocol, c.Completed, c.Total)
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 { // header + 2 cells
		t.Errorf("CSV has %d lines:\n%s", len(lines), csvBuf.String())
	}
}

// TestSweepKeySeparatesAudit pins the cache-key contract for the
// auditor: an audited point must never satisfy an unaudited one (their
// Events counts differ), so toggling Audit on the same grid and cache
// directory recomputes every point instead of rehydrating.
func TestSweepKeySeparatesAudit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()
	sc := smallSweep(dir)

	first, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses != first.TotalPoints {
		t.Fatalf("cold run: %d misses, want %d", first.CacheMisses, first.TotalPoints)
	}

	sc.Base.Audit = true
	second, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 0 || second.CacheMisses != second.TotalPoints {
		t.Fatalf("audited rerun hit the unaudited cache: %d hits, %d misses",
			second.CacheHits, second.CacheMisses)
	}
}

// TestSweepCacheSharedAcrossShardCounts pins down sweepKey's deliberate
// exclusion of the Shards axis: the sharded engine produces
// byte-identical results at every shard count, so a 4-shard campaign
// must fully hit a cache populated by a 1-shard campaign (same key ⇒
// same bytes) and report the same measurements — Shards survives only
// as a cell coordinate.
func TestSweepCacheSharedAcrossShardCounts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()

	one := smallSweep(dir)
	one.Shards = []int{1}
	first, err := Sweep(ctx, one)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.CacheMisses != first.TotalPoints {
		t.Fatalf("1-shard campaign: %d hits, %d misses of %d points",
			first.CacheHits, first.CacheMisses, first.TotalPoints)
	}

	four := smallSweep(dir)
	four.Shards = []int{4}
	second, err := Sweep(ctx, four)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != second.TotalPoints || second.CacheMisses != 0 {
		t.Fatalf("4-shard campaign against 1-shard cache: %d hits, %d misses of %d points",
			second.CacheHits, second.CacheMisses, second.TotalPoints)
	}
	if len(second.Points) != len(first.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(second.Points), len(first.Points))
	}
	for i := range second.Points {
		if second.Points[i].Result != first.Points[i].Result {
			t.Errorf("point %d result differs between shard counts", i)
		}
		if second.Points[i].Shards != 4 || first.Points[i].Shards != 1 {
			t.Errorf("point %d shard coordinates: got %d and %d, want 4 and 1",
				i, second.Points[i].Shards, first.Points[i].Shards)
		}
	}
}

// TestSweepFaultsByShardsGrid pins the v9 lifting of the faults ×
// shards restriction at the sweep layer: a campaign crossing fault
// specs with shard counts expands, validates, and runs — no
// ErrBadShards — and a repeated run reports 100% cache hits. Because
// the cache key excludes Shards (fault results are shard-count
// independent too), the faulted 2-shard points rehydrate from the
// same entries as their 1-shard twins and carry identical results.
func TestSweepFaultsByShardsGrid(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()
	sc := smallSweep(dir)
	sc.Seeds = []int64{1}
	sc.Faults = []string{"", "ctrl-loss=0.01"}
	sc.Shards = []int{1, 2}

	first, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 1 load × 1 seed × 2 fault specs × 2 shard counts.
	if first.TotalPoints != 8 {
		t.Fatalf("campaign expanded to %d points, want 8", first.TotalPoints)
	}

	second, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != second.TotalPoints || second.CacheMisses != 0 {
		t.Fatalf("repeated faults×shards campaign: %d hits, %d misses of %d points, want all hits",
			second.CacheHits, second.CacheMisses, second.TotalPoints)
	}

	// Group points by (protocol, faults): the 1-shard and 2-shard
	// members of each group must report identical results.
	type cell struct {
		proto, faults string
	}
	byCell := map[cell]map[int]Result{}
	for _, p := range second.Points {
		c := cell{p.Protocol, p.Faults}
		if byCell[c] == nil {
			byCell[c] = map[int]Result{}
		}
		byCell[c][p.Shards] = p.Result
	}
	if len(byCell) != 4 {
		t.Fatalf("campaign covered %d (protocol, faults) cells, want 4", len(byCell))
	}
	for c, byShards := range byCell {
		if len(byShards) != 2 {
			t.Errorf("cell %+v has %d shard coordinates, want 2", c, len(byShards))
			continue
		}
		if byShards[1] != byShards[2] {
			t.Errorf("cell %+v: 1-shard and 2-shard results differ:\n%+v\n%+v",
				c, byShards[1], byShards[2])
		}
	}
}

// TestRunShardedMatchesSingleEngine is the public-API statement of the
// determinism contract: amrt.Run with Config.Shards set returns exactly
// the result of the single-engine run, and its telemetry and trace
// dumps are byte-identical too (the metrics dump once regressed here:
// the CLI wrote the caller's registry — one shard's share — instead of
// the merged RunResult.Metrics).
func TestRunShardedMatchesSingleEngine(t *testing.T) {
	dir := t.TempDir()
	dump := func(n int) (Result, string, string) {
		cfg := Config{Protocol: "AMRT", Workload: "WebServer", Flows: 150, Topology: smallTopo(), Seed: 3}
		cfg.Shards = n
		cfg.MetricsPath = filepath.Join(dir, fmt.Sprintf("m%d.json", n))
		cfg.TracePath = filepath.Join(dir, fmt.Sprintf("t%d.csv", n))
		res := Run(cfg)
		m, err := os.ReadFile(cfg.MetricsPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(cfg.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		return res, string(m), string(tr)
	}
	ref, refMetrics, refTrace := dump(1)
	if refMetrics == "" || refTrace == "" {
		t.Fatal("empty single-engine metrics or trace dump")
	}
	for _, n := range []int{2, 4} {
		got, m, tr := dump(n)
		if got != ref {
			t.Errorf("Run with %d shards differs from single-engine result:\n got %+v\nwant %+v", n, got, ref)
		}
		if m != refMetrics {
			t.Errorf("Run with %d shards: metrics dump differs from single-engine dump", n)
		}
		if tr != refTrace {
			t.Errorf("Run with %d shards: trace dump differs from single-engine dump", n)
		}
	}
}
