package amrt

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"amrt/internal/campaign"
	"amrt/internal/experiment"
	"amrt/internal/stats"
)

// SweepConfig declares a sweep campaign: the cartesian product of the
// axes, each point run as Base with the axis values substituted. Axis
// slices left nil default to a single value taken from Base (after
// normalization), so the zero SweepConfig sweeps one default point.
type SweepConfig struct {
	// Protocols lists the protocols to sweep (default: the comparison
	// set, in Protocols() order).
	Protocols []string
	// Workloads lists the workloads to sweep (default: Base.Workload).
	Workloads []string
	// Topologies lists topology specs to sweep, in the ParseTopology
	// grammar (e.g. "fattree:k=4"); an empty string is Base.Topology
	// (default: one Base.Topology axis value). docs/TOPOLOGIES.md
	// documents the grammar and families.
	Topologies []string
	// Degrees lists incast fan-ins to sweep; 0 is Base.IncastDegree
	// (default: one Base.IncastDegree axis value). The axis only
	// changes results when Base.Pattern is "incast".
	Degrees []int
	// Loads lists the offered-load fractions to sweep (default:
	// Base.Load).
	Loads []float64
	// Seeds lists the RNG seeds each cell is repeated under; the
	// per-cell summaries carry 95% confidence half-widths across them
	// (default: Base.Seed).
	Seeds []int64
	// Faults lists fault-injection specs to sweep; an empty string is
	// a fault-free run (default: Base.Faults).
	Faults []string
	// Shards lists engine-shard counts to sweep; 0 is Base.Shards
	// (default: one Base.Shards axis value). Shard count is a
	// wall-clock knob — results are byte-identical at every value (see
	// docs/PARALLELISM.md) — so it is excluded from the cache key: a
	// cache populated at one shard count satisfies campaigns run at any
	// other.
	Shards []int

	// Base supplies everything the axes do not: topology, flow count,
	// Homa degree, timeout. Its Protocol/Workload/Load/Seed/Faults
	// fields seed the axis defaults; its trace and metrics output
	// paths are ignored — sweep points run without per-run dumps so
	// results are cacheable byte-for-byte.
	Base Config

	// CacheDir, when set, is the resumable result cache: every
	// completed point is persisted under a digest of its normalized
	// Config plus SimVersion, and a re-invoked campaign — same grid,
	// same cache directory — recomputes nothing. Empty disables
	// caching.
	CacheDir string

	// Workers caps the worker pool below the GOMAXPROCS ceiling;
	// <= 0 uses all of GOMAXPROCS.
	Workers int

	// CellTimeout bounds every point attempt with a per-cell
	// context.WithTimeout; an attempt that exceeds it fails (and is
	// retried under Retries) without cancelling the campaign. 0 means
	// no per-cell bound. Determinism is unaffected: a retried attempt
	// re-runs the same seeded config under the same cache key.
	CellTimeout time.Duration
	// Retries is the number of re-attempts a failing point gets before
	// the failure policy gives up on it; 0 (the default) fails a point
	// on its first error. Retries back off deterministically:
	// RetryBackoff doubles per attempt.
	Retries int
	// RetryBackoff is the base delay before the first retry; retry n
	// waits RetryBackoff << (n-1). 0 retries immediately.
	RetryBackoff time.Duration
	// Quarantine keeps the campaign running when a point exhausts its
	// attempts: the point is recorded in SweepResult.Failed and every
	// other point proceeds. The default (false) is the strict
	// first-error-cancels-all behavior the CLI and tests rely on.
	Quarantine bool

	// Progress, when non-nil, is called after every resolved point
	// (completed, or quarantined under the failure policy),
	// serialized. It may cancel the sweep's context; it must not block
	// for long.
	Progress func(SweepProgress)
}

// SweepProgress is one live-progress report: campaign position, cache
// ledger so far, and the point that just resolved.
type SweepProgress struct {
	Done        int
	Total       int
	CacheHits   int
	CacheMisses int
	// Failed counts points quarantined so far (always zero without
	// SweepConfig.Quarantine).
	Failed    int
	Protocol  string
	Workload  string
	Topology  string
	Degree    int
	Load      float64
	Seed      int64
	Faults    string
	Shards    int
	FromCache bool
	// Err carries the point's final error text when this update
	// reports a quarantined failure; empty on success.
	Err string
}

// SweepStat is a mean with spread over the seeds of one sweep cell:
// 95% confidence half-width (Student's t), sample min and max.
type SweepStat struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// SweepPoint is one completed run of a campaign.
type SweepPoint struct {
	Protocol string  `json:"protocol"`
	Workload string  `json:"workload"`
	Topology string  `json:"topology,omitempty"`
	Degree   int     `json:"degree,omitempty"`
	Load     float64 `json:"load"`
	Seed     int64   `json:"seed"`
	Faults   string  `json:"faults,omitempty"`
	// Shards is the engine-shard count the point was declared with.
	// Zero (the default axis) is omitted; the result bytes are
	// identical at every value.
	Shards int `json:"shards,omitempty"`
	// FromCache reports whether this point was rehydrated rather than
	// computed. It is deliberately excluded from the serialized report:
	// a resumed campaign must produce byte-identical output.
	FromCache bool   `json:"-"`
	Result    Result `json:"result"`
}

// SweepCell aggregates one protocol × workload × topology × degree ×
// load × faults × shards combination across its seeds: completion
// times in microseconds, utilization as a fraction, counters summed.
// Cells differing only in Shards carry identical measurements — the
// axis exists to compare wall-clock cost, and keeping it a cell
// coordinate makes the equality visible in the report.
type SweepCell struct {
	Protocol string  `json:"protocol"`
	Workload string  `json:"workload"`
	Topology string  `json:"topology,omitempty"`
	Degree   int     `json:"degree,omitempty"`
	Load     float64 `json:"load"`
	Faults   string  `json:"faults,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	Seeds    int     `json:"seeds"`

	AFCTUs      SweepStat `json:"afct_us"`
	P99Us       SweepStat `json:"p99_us"`
	Utilization SweepStat `json:"utilization"`

	Completed int   `json:"completed"`
	Total     int   `json:"total"`
	Drops     int64 `json:"drops"`
	Trims     int64 `json:"trims"`

	// DeadlineTotal and DeadlineMissed sum the cell's deadline ledger
	// across seeds; both are zero outside deadline-RPC campaigns.
	DeadlineTotal  int `json:"deadline_total,omitempty"`
	DeadlineMissed int `json:"deadline_missed,omitempty"`
}

// SweepFailure is one point the campaign's failure policy gave up on:
// its grid coordinates, how many attempts it was given, and the final
// attempt's error text. Failures only occur with
// SweepConfig.Quarantine set; the strict default aborts instead.
type SweepFailure struct {
	Protocol string  `json:"protocol"`
	Workload string  `json:"workload"`
	Topology string  `json:"topology,omitempty"`
	Degree   int     `json:"degree,omitempty"`
	Load     float64 `json:"load"`
	Seed     int64   `json:"seed"`
	Faults   string  `json:"faults,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error"`
}

// SweepResult is a campaign report: every point in grid order, the
// per-cell aggregates, and the cache ledger. Repeated campaigns against
// the same cache produce byte-identical WriteJSON/WriteCSV reports: the
// serialization carries no timestamps, no map iteration, and none of
// the run-mechanics fields (CacheHits, CacheMisses, per-point
// FromCache), which describe how this invocation executed rather than
// what it measured.
type SweepResult struct {
	Version     string `json:"version"`
	TotalPoints int    `json:"total_points"`
	// CacheHits and CacheMisses are this invocation's cache ledger,
	// excluded from the serialized report (see above).
	CacheHits   int          `json:"-"`
	CacheMisses int          `json:"-"`
	Cells       []SweepCell  `json:"cells"`
	Points      []SweepPoint `json:"points"`
	// Failed lists the points quarantined under the failure policy, in
	// grid order. Empty (and omitted from serialization) on clean
	// campaigns, so degraded-mode support never perturbs the
	// byte-identical resume guarantee of healthy ones.
	Failed []SweepFailure `json:"failed,omitempty"`
}

// Validate checks the campaign declaration: the failure policy fields
// must be non-negative (ErrBadPolicy), the grid must expand to at
// least one point, and every expanded point's Config must validate
// (same typed sentinels as Config.Validate). Sweep validates before
// executing; the daemon (`amrtsim serve`) calls this at job-submission
// time so malformed specs are rejected with a 400 instead of a failed
// job.
func (sc SweepConfig) Validate() error {
	if sc.Retries < 0 {
		return fmt.Errorf("%w: negative retries %d", ErrBadPolicy, sc.Retries)
	}
	if sc.CellTimeout < 0 {
		return fmt.Errorf("%w: negative cell timeout %v", ErrBadPolicy, sc.CellTimeout)
	}
	if sc.RetryBackoff < 0 {
		return fmt.Errorf("%w: negative retry backoff %v", ErrBadPolicy, sc.RetryBackoff)
	}
	points := sc.grid().Expand()
	if len(points) == 0 {
		return errors.New("amrt: empty sweep grid")
	}
	for _, p := range points {
		cfg, err := sc.pointConfig(p)
		if err != nil {
			return err
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Sweep expands the campaign grid, validates every point up front
// (typed errors, see Config.Validate), and executes the points across
// the worker pool with per-point result caching under CacheDir. On
// context cancellation it stops dispatching promptly, aborts in-flight
// simulations via the engine interrupt, and returns the completed
// points — already aggregated — together with ctx.Err(), so an
// interrupted campaign plus its cache is a resumable checkpoint, not
// lost work. Point failures follow the CellTimeout / Retries /
// Quarantine policy fields; the zero policy aborts the campaign on the
// first failing point.
func Sweep(ctx context.Context, sc SweepConfig) (*SweepResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	points := sc.grid().Expand()
	// Every point validated above, so pointConfig cannot fail below.
	mustConfig := func(p campaign.Point) Config {
		cfg, err := sc.pointConfig(p)
		if err != nil {
			panic(fmt.Sprintf("amrt: validated sweep point failed to resolve: %v", err))
		}
		return cfg
	}
	ccfg := campaign.Config{
		Points:  points,
		Workers: sc.Workers,
		Policy: campaign.FailurePolicy{
			Retries:     sc.Retries,
			Backoff:     sc.RetryBackoff,
			CellTimeout: sc.CellTimeout,
			Quarantine:  sc.Quarantine,
		},
		Key: func(p campaign.Point) string { return sweepKey(mustConfig(p)) },
		Run: func(ctx context.Context, p campaign.Point) ([]byte, campaign.Metrics, error) {
			res, err := RunContext(ctx, mustConfig(p))
			if err != nil {
				return nil, campaign.Metrics{}, err
			}
			payload, err := json.Marshal(res)
			if err != nil {
				return nil, campaign.Metrics{}, err
			}
			return payload, metricsOf(res), nil
		},
		Decode: func(payload []byte) (campaign.Metrics, error) {
			var r Result
			if err := json.Unmarshal(payload, &r); err != nil {
				return campaign.Metrics{}, err
			}
			return metricsOf(r), nil
		},
	}
	if sc.CacheDir != "" {
		cache, err := campaign.NewCache(sc.CacheDir)
		if err != nil {
			return nil, err
		}
		ccfg.Cache = cache
	}
	if sc.Progress != nil {
		hook := sc.Progress
		ccfg.Progress = func(p campaign.Progress) {
			hook(SweepProgress{
				Done: p.Done, Total: p.Total,
				CacheHits: p.Hits, CacheMisses: p.Misses, Failed: p.Failed,
				Protocol: p.Point.Protocol, Workload: p.Point.Workload,
				Topology: p.Point.Topology, Degree: p.Point.Degree,
				Load: p.Point.Load, Seed: p.Point.Seed, Faults: p.Point.Faults,
				Shards:    p.Point.Shards,
				FromCache: p.FromCache, Err: p.Err,
			})
		}
	}
	cres, err := campaign.Run(ctx, ccfg)
	if cres == nil {
		return nil, err
	}
	out, buildErr := buildSweepResult(len(points), cres)
	if err == nil {
		err = buildErr
	}
	return out, err
}

// grid resolves the axis defaults against the normalized base config.
func (sc SweepConfig) grid() campaign.Grid {
	base := sc.Base.normalized()
	g := campaign.Grid{
		Protocols:  sc.Protocols,
		Workloads:  sc.Workloads,
		Topologies: sc.Topologies,
		Degrees:    sc.Degrees,
		Loads:      sc.Loads,
		Seeds:      sc.Seeds,
		Faults:     sc.Faults,
		Shards:     sc.Shards,
	}
	if len(g.Protocols) == 0 {
		g.Protocols = Protocols()
	}
	if len(g.Workloads) == 0 {
		g.Workloads = []string{base.Workload}
	}
	if len(g.Loads) == 0 {
		g.Loads = []float64{base.Load}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{base.Seed}
	}
	if len(g.Faults) == 0 {
		g.Faults = []string{base.Faults}
	}
	return g
}

// pointConfig instantiates one grid point as a normalized Config with
// the per-run output paths stripped (a cached point must not depend on
// side-effect files). A non-empty point topology spec replaces the
// base fabric; a malformed one is the only way this can fail.
func (sc SweepConfig) pointConfig(p campaign.Point) (Config, error) {
	c := sc.Base
	c.Protocol = p.Protocol
	// The shared Base options are narrowed to each leg's own fields,
	// exactly as Compare does: a grid spanning Homa and SIRD may carry
	// knobs for both without tripping ErrBadStackOption on either.
	c.Options = optionsFromInternal(experiment.NarrowOptions(p.Protocol, sc.Base.Options.internal()))
	c.Workload = p.Workload
	if p.Topology != "" {
		t, err := ParseTopology(p.Topology)
		if err != nil {
			return Config{}, err
		}
		c.Topology = t
	}
	if p.Degree != 0 {
		c.IncastDegree = p.Degree
	}
	if p.Shards != 0 {
		c.Shards = p.Shards
	}
	c.Load = p.Load
	c.Seed = p.Seed
	c.Faults = p.Faults
	c.TracePath = ""
	c.MetricsPath = ""
	c.MetricsCSVPath = ""
	c.MetricsInterval = 0
	return c.normalized(), nil
}

// sweepKey digests a normalized point config into its cache address:
// every field that influences the simulation outcome, canonically
// encoded, plus SimVersion (see campaign.Key and docs/API.md).
//
// Shards is deliberately absent: the sharded engine produces
// byte-identical results at every shard count (docs/PARALLELISM.md), so
// a cache populated at one count must satisfy campaigns run at any
// other — TestSweepCacheSharedAcrossShardCounts pins this down.
func sweepKey(c Config) string {
	// The builder's canonical string encodes every result-influencing
	// topology field with defaults applied; the config was validated,
	// so resolution cannot fail.
	b, err := c.Topology.builder()
	if err != nil {
		panic(fmt.Sprintf("amrt: validated topology failed to resolve: %v", err))
	}
	return campaign.Key(SimVersion,
		"protocol="+c.Protocol,
		"workload="+c.Workload,
		"pattern="+c.Pattern,
		"load="+strconv.FormatFloat(c.Load, 'g', 17, 64),
		"flows="+strconv.Itoa(c.Flows),
		"seed="+strconv.FormatInt(c.Seed, 10),
		"topo="+b.Canonical(),
		"incastdegree="+strconv.Itoa(c.IncastDegree),
		"incastbytes="+strconv.FormatInt(c.IncastBytes, 10),
		"shufflewidth="+strconv.Itoa(c.ShuffleWidth),
		"shufflebytes="+strconv.FormatInt(c.ShuffleBytes, 10),
		"rpcrequest="+strconv.FormatInt(c.RPCRequestBytes, 10),
		"rpcresponse="+strconv.FormatInt(c.RPCResponseBytes, 10),
		"rpcdeadline="+strconv.FormatInt(c.RPCDeadline.Nanoseconds(), 10),
		// The effective degree, not the raw fields: the deprecated
		// HomaDegree alias and Options.HomaDegree cache identically.
		"homadegree="+strconv.Itoa(c.stackOptions().HomaDegree),
		"sirdpool="+strconv.FormatInt(c.Options.SIRDPoolBytes, 10),
		"sirdstaleness="+strconv.Itoa(c.Options.SIRDStalenessRTTs),
		"timeout="+strconv.FormatInt(c.Timeout.Nanoseconds(), 10),
		"faults="+c.Faults,
		"audit="+strconv.FormatBool(c.Audit),
	)
}

// metricsOf projects a Result onto the campaign aggregation record.
func metricsOf(r Result) campaign.Metrics {
	return campaign.Metrics{
		AFCTUs:      float64(r.AFCT) / float64(time.Microsecond),
		P99Us:       float64(r.P99) / float64(time.Microsecond),
		Utilization: r.Utilization,
		Completed:   r.Completed,
		Total:       r.Total,
		Drops:       r.Drops,
		Trims:       r.Trims,

		DeadlineTotal:  r.DeadlineTotal,
		DeadlineMissed: r.DeadlineMissed,
	}
}

// buildSweepResult converts the campaign outcome into the public report.
func buildSweepResult(total int, cres *campaign.Result) (*SweepResult, error) {
	out := &SweepResult{
		Version:     SimVersion,
		TotalPoints: total,
		CacheHits:   cres.Hits,
		CacheMisses: cres.Misses,
	}
	for _, o := range cres.Points {
		var r Result
		if err := json.Unmarshal(o.Payload, &r); err != nil {
			return out, fmt.Errorf("amrt: decoding sweep point payload: %w", err)
		}
		out.Points = append(out.Points, SweepPoint{
			Protocol: o.Point.Protocol, Workload: o.Point.Workload,
			Topology: o.Point.Topology, Degree: o.Point.Degree,
			Load: o.Point.Load, Seed: o.Point.Seed, Faults: o.Point.Faults,
			Shards:    o.Point.Shards,
			FromCache: o.FromCache, Result: r,
		})
	}
	for _, f := range cres.Failed {
		out.Failed = append(out.Failed, SweepFailure{
			Protocol: f.Point.Protocol, Workload: f.Point.Workload,
			Topology: f.Point.Topology, Degree: f.Point.Degree,
			Load: f.Point.Load, Seed: f.Point.Seed, Faults: f.Point.Faults,
			Shards:   f.Point.Shards,
			Attempts: f.Attempts, Error: f.Error,
		})
	}
	for _, c := range cres.Cells {
		out.Cells = append(out.Cells, SweepCell{
			Protocol: c.Point.Protocol, Workload: c.Point.Workload,
			Topology: c.Point.Topology, Degree: c.Point.Degree,
			Load: c.Point.Load, Faults: c.Point.Faults,
			Shards: c.Point.Shards, Seeds: c.Seeds,
			AFCTUs:      sweepStat(c.AFCTUs),
			P99Us:       sweepStat(c.P99Us),
			Utilization: sweepStat(c.Utilization),
			Completed:   c.Completed, Total: c.Total,
			Drops: c.Drops, Trims: c.Trims,
			DeadlineTotal: c.DeadlineTotal, DeadlineMissed: c.DeadlineMissed,
		})
	}
	return out, nil
}

// sweepStat projects an internal stats.Summary onto the public report
// shape.
func sweepStat(s stats.Summary) SweepStat {
	return SweepStat{Mean: s.Mean, CI95: s.CI95, Min: s.Min, Max: s.Max}
}

// WriteJSON writes the full campaign report as indented JSON. The
// output is deterministic: same grid + same cache ⇒ identical bytes.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the per-cell aggregate table as CSV, one row per
// protocol × workload × topology × degree × load × faults × shards
// cell.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"protocol", "workload", "topology", "degree", "load", "faults", "shards", "seeds",
		"afct_us_mean", "afct_us_ci95", "p99_us_mean", "p99_us_ci95",
		"util_mean", "util_ci95", "completed", "total", "drops", "trims",
		"deadline_total", "deadline_missed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		row := []string{
			c.Protocol, c.Workload, c.Topology, strconv.Itoa(c.Degree),
			f(c.Load), c.Faults, strconv.Itoa(c.Shards), strconv.Itoa(c.Seeds),
			f(c.AFCTUs.Mean), f(c.AFCTUs.CI95), f(c.P99Us.Mean), f(c.P99Us.CI95),
			f(c.Utilization.Mean), f(c.Utilization.CI95),
			strconv.Itoa(c.Completed), strconv.Itoa(c.Total),
			strconv.FormatInt(c.Drops, 10), strconv.FormatInt(c.Trims, 10),
			strconv.Itoa(c.DeadlineTotal), strconv.Itoa(c.DeadlineMissed),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
