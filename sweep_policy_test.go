package amrt

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestSweepConfigValidatePolicy(t *testing.T) {
	base := smallSweep("")
	if err := base.Validate(); err != nil {
		t.Fatalf("valid sweep config rejected: %v", err)
	}

	for _, tc := range []struct {
		name string
		mut  func(*SweepConfig)
	}{
		{"negative retries", func(sc *SweepConfig) { sc.Retries = -1 }},
		{"negative cell timeout", func(sc *SweepConfig) { sc.CellTimeout = -time.Second }},
		{"negative retry backoff", func(sc *SweepConfig) { sc.RetryBackoff = -time.Millisecond }},
	} {
		sc := smallSweep("")
		tc.mut(&sc)
		err := sc.Validate()
		if !errors.Is(err, ErrBadPolicy) {
			t.Errorf("%s: Validate() = %v, want ErrBadPolicy", tc.name, err)
		}
		if _, err := Sweep(context.Background(), sc); !errors.Is(err, ErrBadPolicy) {
			t.Errorf("%s: Sweep() = %v, want ErrBadPolicy", tc.name, err)
		}
	}

	// Point-level validation still surfaces through the sweep config.
	sc := smallSweep("")
	sc.Protocols = []string{"QUIC"}
	if err := sc.Validate(); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("bad protocol: Validate() = %v, want ErrUnknownProtocol", err)
	}
}

func TestSweepCellTimeoutQuarantineDegradesGracefully(t *testing.T) {
	// A cell budget no simulation can meet: with quarantine, every
	// point fails after its retries and the campaign still completes
	// with a full failure ledger instead of an error.
	sc := smallSweep(filepath.Join(t.TempDir(), "cache"))
	sc.CellTimeout = time.Nanosecond
	sc.Retries = 2
	sc.Quarantine = true
	var last SweepProgress
	sc.Progress = func(p SweepProgress) { last = p }
	res, err := Sweep(context.Background(), sc)
	if err != nil {
		t.Fatalf("quarantined sweep returned error: %v", err)
	}
	if len(res.Points) != 0 {
		t.Errorf("%d points completed under a 1ns cell budget", len(res.Points))
	}
	if len(res.Failed) != res.TotalPoints {
		t.Fatalf("%d failures, want %d", len(res.Failed), res.TotalPoints)
	}
	for _, f := range res.Failed {
		if f.Attempts != 3 {
			t.Errorf("point %s/%v/seed %d got %d attempts, want 3", f.Protocol, f.Load, f.Seed, f.Attempts)
		}
		if f.Error == "" {
			t.Error("failure record has no error text")
		}
	}
	if last.Failed != res.TotalPoints || last.Err == "" {
		t.Errorf("final progress = %+v", last)
	}

	// Without quarantine the same budget aborts the campaign.
	strict := smallSweep(filepath.Join(t.TempDir(), "strict"))
	strict.CellTimeout = time.Nanosecond
	if _, err := Sweep(context.Background(), strict); err == nil {
		t.Error("strict sweep with an impossible cell budget returned nil error")
	}
}

func TestSweepGenerousCellTimeoutPreservesResults(t *testing.T) {
	// The failure policy must be invisible to healthy campaigns: same
	// grid with and without a generous policy produces byte-identical
	// reports (the policy is not part of the cache key — retried
	// attempts re-run the same seeded config).
	plain, err := Sweep(context.Background(), smallSweep(""))
	if err != nil {
		t.Fatal(err)
	}
	sc := smallSweep("")
	sc.CellTimeout = time.Hour
	sc.Retries = 3
	sc.RetryBackoff = time.Millisecond
	sc.Quarantine = true
	policied, err := Sweep(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(policied.Failed) != 0 {
		t.Fatalf("healthy campaign quarantined %d points", len(policied.Failed))
	}
	if len(plain.Points) != len(policied.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(plain.Points), len(policied.Points))
	}
	for i := range plain.Points {
		if plain.Points[i].Result != policied.Points[i].Result {
			t.Errorf("point %d differs under the failure policy", i)
		}
	}
}
