package amrt

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
)

// TopologyKinds returns the supported fabric families in documentation
// order: "leafspine", "fattree", "clos".
func TopologyKinds() []string {
	return []string{"leafspine", "fattree", "clos"}
}

// builder resolves the Topology into a concrete, fully-defaulted
// fabric builder, or an error wrapping ErrBadTopology.
func (t Topology) builder() (topo.Builder, error) {
	kind := t.Kind
	if kind == "" {
		kind = "leafspine"
	}
	switch kind {
	case "leafspine":
		cfg := topo.DefaultLeafSpine()
		if t.Leaves > 0 {
			cfg.Leaves = t.Leaves
		}
		if t.Spines > 0 {
			cfg.Spines = t.Spines
		}
		if t.HostsPerLeaf > 0 {
			cfg.HostsPerLeaf = t.HostsPerLeaf
		}
		if t.Leaves < 0 || t.Spines < 0 || t.HostsPerLeaf < 0 {
			return nil, fmt.Errorf("%w: leaf-spine dimensions must be positive", ErrBadTopology)
		}
		if t.LinkGbps > 0 {
			cfg.HostRate = gbps(t.LinkGbps)
			cfg.FabricRate = cfg.HostRate
		}
		if t.FabricGbps > 0 {
			cfg.FabricRate = gbps(t.FabricGbps)
		}
		if t.RTT > 0 {
			cfg.LinkDelay = sim.FromDuration(t.RTT) / 8
		}
		cfg.Jitter = cfg.HostRate.TxTime(netsim.MSS) / 2
		return cfg, nil
	case "fattree":
		cfg := topo.DefaultFatTree()
		if t.K > 0 {
			cfg.K = t.K
		}
		if cfg.K < 4 || cfg.K%2 != 0 {
			return nil, fmt.Errorf("%w: fat-tree arity K=%d must be even and >= 4", ErrBadTopology, cfg.K)
		}
		if t.LinkGbps > 0 {
			cfg.HostRate = gbps(t.LinkGbps)
		}
		if t.FabricGbps > 0 {
			cfg.AggRate = gbps(t.FabricGbps)
		}
		if t.CoreGbps > 0 {
			cfg.CoreRate = gbps(t.CoreGbps)
		}
		if t.RTT > 0 {
			cfg.LinkDelay = sim.FromDuration(t.RTT) / 12
		}
		cfg.Jitter = cfg.HostRate.TxTime(netsim.MSS) / 2
		return cfg, nil
	case "clos":
		cfg := topo.DefaultClos()
		if t.Pods > 0 {
			cfg.Pods = t.Pods
		}
		if t.Leaves > 0 {
			cfg.LeavesPerPod = t.Leaves
		}
		if t.Aggs > 0 {
			cfg.AggsPerPod = t.Aggs
		}
		if t.Cores > 0 {
			cfg.Cores = t.Cores
		}
		if t.HostsPerLeaf > 0 {
			cfg.HostsPerLeaf = t.HostsPerLeaf
		}
		if t.Pods < 0 || t.Leaves < 0 || t.Aggs < 0 || t.Cores < 0 || t.HostsPerLeaf < 0 {
			return nil, fmt.Errorf("%w: clos dimensions must be positive", ErrBadTopology)
		}
		if t.LinkGbps > 0 {
			cfg.HostRate = gbps(t.LinkGbps)
		}
		if t.FabricGbps > 0 {
			cfg.FabricRate = gbps(t.FabricGbps)
		}
		if t.CoreGbps > 0 {
			cfg.CoreRate = gbps(t.CoreGbps)
		}
		if t.RTT > 0 {
			cfg.LinkDelay = sim.FromDuration(t.RTT) / 12
		}
		cfg.Jitter = cfg.HostRate.TxTime(netsim.MSS) / 2
		return cfg, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q (have %v)", ErrBadTopology, t.Kind, TopologyKinds())
}

func gbps(v float64) sim.Rate { return sim.Rate(v * float64(sim.Gbps)) }

// ParseTopology parses a compact topology spec of the form
//
//	kind[:key=value[,key=value...]]
//
// where kind is one of TopologyKinds() and the keys are
//
//	leaves, spines, hosts  — leaf-spine / clos dimensions
//	k                      — fat-tree arity
//	pods, aggs, cores      — clos dimensions
//	gbps, fabric, core     — per-tier link rates in Gbit/s
//	rtt                    — propagation RTT (Go duration, e.g. 100us)
//
// Examples: "fattree:k=8", "leafspine:leaves=4,spines=4,hosts=10",
// "clos:pods=4,leaves=4,aggs=2,cores=4,hosts=16,gbps=25,fabric=100".
// The sweep CLI's -topos axis and docs/TOPOLOGIES.md use this grammar.
// Errors wrap ErrBadTopology.
func ParseTopology(spec string) (Topology, error) {
	var t Topology
	kind, rest, _ := strings.Cut(spec, ":")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return t, fmt.Errorf("%w: empty topology spec", ErrBadTopology)
	}
	t.Kind = kind
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return t, fmt.Errorf("%w: %q is not key=value in %q", ErrBadTopology, kv, spec)
			}
			if err := t.setKey(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return t, fmt.Errorf("%w: %v in %q", ErrBadTopology, err, spec)
			}
		}
	}
	// Resolve once so an unknown kind or bad dimensions fail at parse
	// time, not at run time.
	if _, err := t.builder(); err != nil {
		return t, err
	}
	return t, nil
}

// setKey applies one key=value pair of the ParseTopology grammar.
func (t *Topology) setKey(key, val string) error {
	intKey := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil || v <= 0 {
			return fmt.Errorf("%s=%q must be a positive integer", key, val)
		}
		*dst = v
		return nil
	}
	floatKey := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("%s=%q must be a positive number", key, val)
		}
		*dst = v
		return nil
	}
	switch key {
	case "leaves":
		return intKey(&t.Leaves)
	case "spines":
		return intKey(&t.Spines)
	case "hosts":
		return intKey(&t.HostsPerLeaf)
	case "k":
		return intKey(&t.K)
	case "pods":
		return intKey(&t.Pods)
	case "aggs":
		return intKey(&t.Aggs)
	case "cores":
		return intKey(&t.Cores)
	case "gbps":
		return floatKey(&t.LinkGbps)
	case "fabric":
		return floatKey(&t.FabricGbps)
	case "core":
		return floatKey(&t.CoreGbps)
	case "rtt":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("rtt=%q must be a positive duration", val)
		}
		t.RTT = d
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}
