package amrt

import (
	"context"
	"errors"
	"testing"
)

func TestValidateErrorTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero config", Config{}, nil},
		{"full valid", Config{Protocol: "NDP", Workload: "DataMining", Load: 1, Flows: 10, Seed: 3}, nil},
		{"dctcp contrast stack", Config{Protocol: "DCTCP"}, nil},
		{"valid faults", Config{Faults: "ctrl-loss=0.01"}, nil},
		{"faults on sharded run", Config{Faults: "ctrl-loss=0.01", Shards: 4}, nil},
		{"node faults on sharded run", Config{Faults: "rehash=1ms", Shards: 2}, nil},
		{"shards out of range", Config{Shards: 1000}, ErrBadShards},
		{"unknown protocol", Config{Protocol: "QUIC"}, ErrUnknownProtocol},
		{"unknown workload", Config{Workload: "nope"}, ErrUnknownWorkload},
		{"load negative", Config{Load: -0.1}, ErrBadLoad},
		{"load above one", Config{Load: 1.5}, ErrBadLoad},
		{"flows negative", Config{Flows: -5}, ErrBadFlows},
		{"bad fault spec", Config{Faults: "link=???"}, ErrBadFaultSpec},
		{"unknown fault class", Config{Faults: "meteor=1"}, ErrBadFaultSpec},
		{"sird run with sird knobs", Config{Protocol: "SIRD", Options: StackOptions{SIRDPoolBytes: 1 << 20, SIRDStalenessRTTs: 4}}, nil},
		{"homa run with typed degree", Config{Protocol: "Homa", Options: StackOptions{HomaDegree: 4}}, nil},
		{"deprecated homa degree stays lenient", Config{Protocol: "SIRD", HomaDegree: 4}, nil},
		{"homa knob on sird run", Config{Protocol: "SIRD", Options: StackOptions{HomaDegree: 4}}, ErrBadStackOption},
		{"sird knob on amrt run", Config{Protocol: "AMRT", Options: StackOptions{SIRDPoolBytes: 1 << 20}}, ErrBadStackOption},
		{"sird knob on homa run", Config{Protocol: "Homa", Options: StackOptions{SIRDStalenessRTTs: 4}}, ErrBadStackOption},
		{"negative homa degree", Config{Protocol: "Homa", Options: StackOptions{HomaDegree: -2}}, ErrBadStackOption},
		{"negative sird pool", Config{Protocol: "SIRD", Options: StackOptions{SIRDPoolBytes: -1}}, ErrBadStackOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

func TestRunContextRejectsBadInputWithoutPanic(t *testing.T) {
	_, err := RunContext(context.Background(), Config{Protocol: "QUIC"})
	if !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("RunContext err = %v", err)
	}
	_, err = CompareContext(context.Background(), Config{Workload: "nope"})
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("CompareContext err = %v", err)
	}
}

// TestRunContextSurfacesFaultResolutionError pins the v9 error
// contract for fault plans that parse but name nothing in the built
// topology: the runner returns the resolution failure as an error
// (wrapped in ErrBadFaultSpec) instead of panicking, at every shard
// count — the path serve surfaces to clients as HTTP 400.
func TestRunContextSurfacesFaultResolutionError(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := Config{
			Flows:    10,
			Topology: smallTopo(),
			Faults:   "link=nosuch0->nowhere0,down=1ms,up=2ms",
			Shards:   shards,
		}
		_, err := RunContext(context.Background(), cfg)
		if !errors.Is(err, ErrBadFaultSpec) {
			t.Errorf("shards=%d: err = %v, want errors.Is(err, ErrBadFaultSpec)", shards, err)
		}
	}
}

func TestRunStillPanicsOnBadInput(t *testing.T) {
	for _, cfg := range []Config{
		{Protocol: "QUIC", Flows: 10, Topology: smallTopo()},
		{Faults: "meteor=1", Flows: 10, Topology: smallTopo()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run(%+v) did not panic", cfg)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	cfg := Config{Flows: 150, Topology: smallTopo(), Seed: 11}
	want := Run(cfg)
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunContext diverged from Run:\n%+v\n%+v", got, want)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Flows: 50, Topology: smallTopo()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext err = %v", err)
	}
}

func TestCompareContextPaperOrder(t *testing.T) {
	results, err := CompareContext(context.Background(),
		Config{Flows: 120, Topology: smallTopo(), Workload: "CacheFollower"})
	if err != nil {
		t.Fatal(err)
	}
	protos := Protocols()
	if len(results) != len(protos) {
		t.Fatalf("%d results, want %d", len(results), len(protos))
	}
	for i, r := range results {
		if r.Protocol != protos[i] {
			t.Errorf("result %d is %s, want %s (paper order)", i, r.Protocol, protos[i])
		}
		if r.Completed == 0 {
			t.Errorf("%s completed no flows", r.Protocol)
		}
	}
}

func TestWithProtoSuffix(t *testing.T) {
	cases := []struct{ path, want string }{
		{"", ""},
		{"out.json", "out.AMRT.json"},
		{"out", "out.AMRT"},
		{"./dir/out", "./dir/out.AMRT"},
		{"./dir.v2/out", "./dir.v2/out.AMRT"},
		{"a.b/c.csv", "a.b/c.AMRT.csv"},
		{".trace", ".trace.AMRT"},
		{"./dir/.trace", "./dir/.trace.AMRT"},
	}
	for _, tc := range cases {
		if got := withProtoSuffix(tc.path, "AMRT"); got != tc.want {
			t.Errorf("withProtoSuffix(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}
