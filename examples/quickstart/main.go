// Quickstart: run the same WebSearch traffic under all four
// receiver-driven transports on a small leaf-spine fabric and compare
// flow completion times and bottleneck utilization.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"amrt"
)

func main() {
	// Ctrl-C cancels the context; CompareContext then returns the
	// protocols finished so far plus the cancellation error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := amrt.Config{
		Workload: "WebSearch",
		Load:     0.6,
		Flows:    800,
		Seed:     7,
		Topology: amrt.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8},
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("bad config: %v", err)
	}

	fmt.Println("comparing receiver-driven transports on identical traffic")
	fmt.Printf("workload=%s load=%.1f flows=%d hosts=%d\n\n",
		cfg.Workload, cfg.Load, cfg.Flows, 2*8)

	results, err := amrt.CompareContext(ctx, cfg)
	if err != nil {
		log.Fatalf("compare: %v", err)
	}
	fmt.Printf("%-8s %12s %12s %8s %8s\n", "proto", "AFCT", "p99 FCT", "util", "drops")
	for _, r := range results { // already in paper order: pHost, Homa, NDP, AMRT
		fmt.Printf("%-8s %12v %12v %8.3f %8d\n",
			r.Protocol, r.AFCT.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Utilization, r.Drops)
	}

	// The paper's §5 analytical model: how much faster does AMRT finish
	// a 1 MB flow whose rate was halved, best and worst case?
	uMin, uMax, fMin, fMax := amrt.Gain(1_000_000, 0.5, 1, 100*time.Microsecond)
	fmt.Printf("\nanalytical gain for a 1MB flow at R/C=0.5 (1Gbps, 100µs RTT):\n")
	fmt.Printf("  utilization gain: %.2f–%.2f×   FCT gain: %.2f–%.2f×\n", uMin, uMax, fMin, fMax)
}
