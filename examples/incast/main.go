// Incast drives the partition/aggregate burst: N synchronized senders
// send the same-size response to one receiver. It shows how each
// transport absorbs the burst — NDP trims payloads, AMRT drops beyond
// its 8-packet cap and recovers by reissued grants, pHost and Homa ride
// their larger buffers — and what that costs in completion time.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"time"

	"amrt/internal/experiment"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

func main() {
	const (
		fanIn = 16
		size  = 250_000 // bytes per sender
	)
	fmt.Printf("incast: %d senders × %dKB to one receiver over 10G\n\n", fanIn, size/1000)
	fmt.Printf("%-8s %12s %12s %8s %8s %8s\n", "proto", "mean FCT", "max FCT", "drops", "trims", "maxQ")

	for _, proto := range experiment.ProtocolNames() {
		st := experiment.MustStack(proto, experiment.StackOptions{})
		sc := topo.DefaultScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		s := topo.NewFanN(sc, fanIn)
		col := stats.NewFCTCollector()
		inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond, Collector: col})

		// Monitor the receiver downlink.
		var down *netsim.Port
		for _, pt := range s.Switches[1].Ports() {
			if pt.Link().To.ID() == s.Receivers[0].ID() {
				down = pt
			}
		}
		mon := netsim.Attach(down)

		specs := workload.Incast(seq(fanIn), 0, size, 0)
		var flows []*transport.Flow
		for _, fs := range specs {
			flows = append(flows, inst.AddFlow(fs.ID, s.Senders[fs.Src], s.Receivers[0], fs.Size, fs.Start))
		}
		s.Net.Run(5 * sim.Second)

		var maxFCT sim.Time
		for _, f := range flows {
			if f.FCT() > maxFCT {
				maxFCT = f.FCT()
			}
		}
		var trims int64
		for _, sw := range s.Switches {
			for _, pt := range sw.Ports() {
				if tq, ok := pt.Queue().(*netsim.TrimmingQueue); ok {
					trims += tq.Trims
				}
			}
		}
		fmt.Printf("%-8s %12v %12v %8d %8d %8d\n",
			proto, col.Mean().Duration().Round(time.Microsecond),
			maxFCT.Duration().Round(time.Microsecond),
			s.Net.Dropped(), trims, mon.MaxQueueLen)
	}
	fmt.Println("\nideal drain time:", (sim.Rate(10 * sim.Gbps)).TxTime(fanIn*size).Duration().Round(time.Microsecond))
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
