// Multibottleneck reproduces the paper's §2.1 motivation scenario
// (Fig. 1): flow f0 crosses two bottlenecks; when cross traffic squeezes
// it at the second one, a conservative receiver-driven protocol leaves
// the released first-bottleneck bandwidth unused, while AMRT's anti-ECN
// marks let the coexisting flow f1 take it over.
//
//	go run ./examples/multibottleneck
package main

import (
	"fmt"
	"os"

	"amrt/internal/experiment"
)

func main() {
	fmt.Println("§2.1 multi-bottleneck scenario: 4 flows, 2 bottlenecks, 10Gbps")
	fmt.Println("f2 (cross traffic at the 2nd bottleneck) starts at 1ms, f3 at 3.5ms")
	fmt.Println()
	for _, proto := range []string{"pHost", "AMRT"} {
		res := experiment.Fig1(experiment.MustStack(proto, experiment.StackOptions{}))
		res.Phases.Fprint(os.Stdout)
	}
	fmt.Println("pHost cannot reclaim the bandwidth f0 releases at the first")
	fmt.Println("bottleneck; AMRT's marked grants let f1 absorb it.")
}
