// Dynamictraffic reproduces the paper's §2.2 motivation scenario
// (Fig. 2): four flows with distinct receivers share one bottleneck and
// finish at different times. A conservative receiver-driven protocol's
// utilization staircases down as flows leave; AMRT keeps the link busy
// and finishes everything sooner.
//
//	go run ./examples/dynamictraffic
package main

import (
	"fmt"
	"os"

	"amrt/internal/experiment"
)

func main() {
	fmt.Println("§2.2 dynamic traffic: 4 flows (625KB..2.5MB), one 10G bottleneck")
	fmt.Println()
	for _, proto := range experiment.ProtocolNames() {
		res := experiment.Fig2(experiment.MustStack(proto, experiment.StackOptions{}))
		res.Phases.Fprint(os.Stdout)
	}
}
