// Manytomany reproduces the paper's §8.2 stress (Fig. 14): 40 senders
// each open two connections to two receivers, but only a fraction of
// the senders ever respond to grants. Homa needs a high overcommitment
// degree to keep the links busy — at the cost of deep queues — while
// AMRT sustains utilization with an 8-packet queue cap.
//
//	go run ./examples/manytomany
package main

import (
	"fmt"
	"os"

	"amrt/internal/experiment"
)

func main() {
	cfg := experiment.DefaultSimConfig()
	cfg.Repeats = 2
	cfg.HomaDegrees = []int{2, 8}
	ratios := []float64{0.3, 0.6, 1.0}
	fmt.Println("§8.2 many-to-many with unresponsive senders (40 senders × 2 conns × 1MB)")
	fmt.Println()
	cells := experiment.Fig14Cells(cfg, ratios)
	for _, t := range experiment.Fig14Tables(cfg, ratios, cells) {
		t.Fprint(os.Stdout)
	}
	fmt.Println("AMRT keeps utilization high with an 8-packet queue; Homa buys")
	fmt.Println("utilization with overcommitment and pays in buffer occupancy.")
}
