// Fattree runs a datacenter-scale incast on a 128-host k=8 fat-tree:
// epochs of 16 synchronized senders converge on one receiver, under
// AMRT and under the sender-driven DCTCP contrast stack. The receiver
// downlink is the bottleneck, so its busy-period utilization times the
// access rate is the goodput each transport sustains through the burst.
//
//	go run ./examples/fattree
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"amrt"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := amrt.Config{
		Topology:     amrt.Topology{Kind: "fattree", K: 8},
		Pattern:      "incast",
		IncastDegree: 16,
		Load:         0.6,
		Flows:        512,
		Seed:         7,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("bad config: %v", err)
	}

	fmt.Println("incast on a 128-host k=8 fat-tree (16-way fan-in, 64KiB blocks)")
	fmt.Printf("%-8s %12s %12s %10s %8s %8s\n",
		"proto", "AFCT", "p99 FCT", "goodput", "drops", "trims")
	for _, proto := range []string{"AMRT", "DCTCP"} {
		cfg.Protocol = proto
		res, err := amrt.RunContext(ctx, cfg)
		if err != nil {
			log.Fatalf("%s: %v", proto, err)
		}
		goodput := res.Utilization * 10 // Gbit/s of the 10G downlink
		fmt.Printf("%-8s %12v %12v %7.2f Gb %8d %8d\n",
			res.Protocol, res.AFCT.Round(time.Microsecond), res.P99.Round(time.Microsecond),
			goodput, res.Drops, res.Trims)
	}
}
