package amrt

import (
	"testing"
	"time"

	"amrt/internal/sim"
)

func incastCell() Config {
	return Config{
		Topology:     Topology{Kind: "fattree", K: 4},
		Pattern:      "incast",
		IncastDegree: 4,
		Flows:        80,
		Seed:         7,
	}
}

func shuffleCell() Config {
	return Config{
		Topology:     Topology{Kind: "clos", Pods: 2, Leaves: 2, HostsPerLeaf: 4},
		Pattern:      "shuffle",
		ShuffleWidth: 2,
		ShuffleBytes: 64 << 10,
		Seed:         7,
	}
}

// underScheduler runs fn with the given default scheduler kind, then
// restores the previous default.
func underScheduler(kind sim.SchedulerKind, fn func()) {
	prev := sim.DefaultScheduler()
	sim.SetDefaultScheduler(kind)
	defer sim.SetDefaultScheduler(prev)
	fn()
}

func TestIncastCellDeterministic(t *testing.T) {
	cfg := incastCell()
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("same incast cell produced different results:\n%+v\n%+v", a, b)
	}
	if a.Completed != a.Total || a.Total != cfg.Flows {
		t.Errorf("incast completed %d/%d, want %d", a.Completed, a.Total, cfg.Flows)
	}
	cfg.Seed = 8
	if c := Run(cfg); a == c {
		t.Error("different incast seed produced identical results")
	}
}

func TestShuffleCellDeterministic(t *testing.T) {
	cfg := shuffleCell()
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("same shuffle cell produced different results:\n%+v\n%+v", a, b)
	}
	// 16 hosts × width 2, whatever Flows says.
	if a.Total != 32 || a.Completed != 32 {
		t.Errorf("shuffle completed %d/%d, want 32/32", a.Completed, a.Total)
	}
}

func TestPatternCellsSchedulerIndependent(t *testing.T) {
	for name, cfg := range map[string]Config{"incast": incastCell(), "shuffle": shuffleCell()} {
		var wheel, heap Result
		underScheduler(sim.SchedulerWheel, func() { wheel = Run(cfg) })
		underScheduler(sim.SchedulerHeap, func() { heap = Run(cfg) })
		if wheel != heap {
			t.Errorf("%s: wheel and heap schedulers disagree:\n%+v\n%+v", name, wheel, heap)
		}
	}
}

func TestRPCDeadlineAccounting(t *testing.T) {
	cfg := Config{
		Topology:    Topology{Kind: "clos", Pods: 2, Leaves: 2, HostsPerLeaf: 4},
		Pattern:     "rpc",
		Flows:       60,
		Seed:        5,
		RPCDeadline: time.Nanosecond, // unmeetable: every response misses
	}
	res := Run(cfg)
	if res.DeadlineTotal != cfg.Flows {
		t.Errorf("DeadlineTotal = %d, want one per RPC = %d", res.DeadlineTotal, cfg.Flows)
	}
	if res.DeadlineMissed != res.DeadlineTotal {
		t.Errorf("1ns budget missed %d/%d deadlines, want all", res.DeadlineMissed, res.DeadlineTotal)
	}

	cfg.RPCDeadline = time.Second // generous: nothing misses
	res = Run(cfg)
	if res.DeadlineTotal != cfg.Flows || res.DeadlineMissed != 0 {
		t.Errorf("1s budget: %d/%d missed, want 0/%d", res.DeadlineMissed, res.DeadlineTotal, cfg.Flows)
	}

	cfg.RPCDeadline = 0 // disabled: no ledger at all
	res = Run(cfg)
	if res.DeadlineTotal != 0 || res.DeadlineMissed != 0 {
		t.Errorf("disabled deadlines still counted: %d/%d", res.DeadlineMissed, res.DeadlineTotal)
	}
}
