package amrt

import "testing"

// FuzzParseTopology hammers the topology-spec grammar with arbitrary
// input. The contract: ParseTopology never panics, a rejected spec
// wraps ErrBadTopology, and an accepted spec resolves to a buildable
// topology whose re-parse accepts the same bytes (sweep specs travel
// as raw strings through serve job payloads and cache keys).
func FuzzParseTopology(f *testing.F) {
	// Seed corpus: the documented example specs (docs/TOPOLOGIES.md and
	// the ParseTopology doc comment) plus separator edge shapes.
	for _, seed := range []string{
		"",
		"fattree",
		"fattree:k=8",
		"fattree:k=4,gbps=100,rtt=100us",
		"leafspine",
		"leafspine:leaves=4,spines=4,hosts=10",
		"leafspine:leaves=2,spines=2,hosts=4,gbps=40,fabric=100,rtt=20us",
		"clos:pods=4,leaves=4,aggs=2,cores=4,hosts=16,gbps=25,fabric=100",
		"clos:pods=2,leaves=2,aggs=2,cores=2,hosts=4,core=400",
		"fattree:",
		"fattree:k",
		"fattree:k=",
		"fattree:k=0",
		"fattree:k=3",
		"ring:n=8",
		":k=4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		t1, err := ParseTopology(spec)
		if err != nil {
			return
		}
		t2, err := ParseTopology(spec)
		if err != nil {
			t.Fatalf("ParseTopology(%q) accepted once, rejected on re-parse: %v", spec, err)
		}
		if t1 != t2 {
			t.Fatalf("ParseTopology(%q) is not stable: %+v vs %+v", spec, t1, t2)
		}
	})
}
