package amrt

import (
	"testing"
	"time"
)

func smallTopo() Topology {
	return Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 5}
}

func TestRunDefaultsComplete(t *testing.T) {
	res := Run(Config{Flows: 200, Topology: smallTopo()})
	if res.Protocol != "AMRT" || res.Workload != "WebSearch" {
		t.Errorf("defaults wrong: %+v", res)
	}
	if res.Completed != res.Total || res.Total != 200 {
		t.Errorf("completed %d/%d", res.Completed, res.Total)
	}
	if res.AFCT <= 0 || res.P99 < res.AFCT {
		t.Errorf("FCT stats implausible: afct=%v p99=%v", res.AFCT, res.P99)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Flows: 150, Topology: smallTopo(), Seed: 42}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("same config produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c := Run(cfg)
	if a == c {
		t.Error("different seed produced identical results")
	}
}

func TestCompareCoversAllProtocols(t *testing.T) {
	results := Compare(Config{Flows: 120, Topology: smallTopo(), Workload: "CacheFollower"})
	if len(results) != 5 {
		t.Fatalf("Compare returned %d protocols", len(results))
	}
	for _, p := range Protocols() {
		r, ok := results[p]
		if !ok {
			t.Fatalf("missing protocol %s", p)
		}
		if r.Completed == 0 {
			t.Errorf("%s completed no flows", p)
		}
	}
	// The paper's headline: AMRT beats pHost on AFCT.
	if results["AMRT"].AFCT >= results["pHost"].AFCT {
		t.Errorf("AMRT AFCT %v not better than pHost %v", results["AMRT"].AFCT, results["pHost"].AFCT)
	}
}

func TestRunUnknownNamesPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Workload: "nope", Flows: 10, Topology: smallTopo()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestProtocolAndWorkloadLists(t *testing.T) {
	if len(Protocols()) != 5 || Protocols()[3] != "AMRT" || Protocols()[4] != "SIRD" {
		t.Errorf("Protocols() = %v", Protocols())
	}
	if len(Workloads()) != 5 {
		t.Errorf("Workloads() = %v", Workloads())
	}
}

func TestGainModel(t *testing.T) {
	uMin, uMax, fMin, fMax := Gain(1_000_000, 0.5, 1, 100*time.Microsecond)
	if uMin < 1 || uMax < uMin {
		t.Errorf("utilization gains: min=%v max=%v", uMin, uMax)
	}
	if fMin < 1 || fMax < fMin {
		t.Errorf("FCT gains: min=%v max=%v", fMin, fMax)
	}
}

func TestTopologyOverrides(t *testing.T) {
	res := Run(Config{
		Flows:    100,
		Workload: "WebServer",
		Topology: Topology{Leaves: 2, Spines: 1, HostsPerLeaf: 4, LinkGbps: 1, RTT: 200 * time.Microsecond},
	})
	if res.Completed != 100 {
		t.Errorf("completed %d/100 on custom topology", res.Completed)
	}
}

// TestRunAuditedNodeFaults drives the public API through a host crash
// with the invariant auditor on: the run must finish without an audit
// panic, report the crash casualties in Killed, and complete every
// other flow — with zero watchdog stalls.
func TestRunAuditedNodeFaults(t *testing.T) {
	res := Run(Config{
		Flows:    200,
		Topology: smallTopo(),
		Faults:   "crash=h0.1,at=2ms,up=6ms;rehash=4ms",
		Audit:    true,
	})
	if res.Stalled != 0 {
		t.Errorf("%d flows stalled", res.Stalled)
	}
	if res.Completed+res.Killed != res.Total {
		t.Errorf("%d completed + %d killed != %d total", res.Completed, res.Killed, res.Total)
	}
}

// TestAuditDoesNotChangeResults pins the observer property: the same
// run with and without the auditor yields identical measurements (the
// auditor only adds check events, which read state without touching it).
func TestAuditDoesNotChangeResults(t *testing.T) {
	cfg := Config{Flows: 150, Topology: smallTopo(), Seed: 42}
	plain := Run(cfg)
	cfg.Audit = true
	audited := Run(cfg)
	plain.Events, audited.Events = 0, 0 // check events inflate the count
	if plain != audited {
		t.Errorf("audit changed results:\nplain   %+v\naudited %+v", plain, audited)
	}
}
