// Package amrt is a from-scratch reproduction of "AMRT: Anti-ECN
// Marking to Improve Utilization of Receiver-driven Transmission in
// Data Center" (Hu, Huang, Li, Wang, He — ICPP 2020).
//
// It bundles a deterministic packet-level network simulator, four
// receiver-driven datacenter transports (pHost, Homa, NDP, and AMRT —
// the paper's contribution), the paper's workloads, and the experiment
// harness that regenerates every figure of the paper's evaluation.
//
// This root package is the stable high-level API: describe a topology,
// a workload, and a protocol, and get flow-completion-time and
// utilization results back. The full machinery (custom topologies,
// per-packet hooks, protocol internals) lives in the internal packages
// and is exercised through cmd/amrtsim, cmd/figures, and the examples.
//
// Quick start:
//
//	res := amrt.Run(amrt.Config{Protocol: "AMRT", Workload: "WebSearch", Load: 0.5, Flows: 1000})
//	fmt.Printf("AFCT %v, p99 %v, utilization %.2f\n", res.AFCT, res.P99, res.Utilization)
package amrt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"amrt/internal/experiment"
	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/model"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/workload"
)

// Protocols returns the four supported transports in the order the
// paper presents them: pHost, Homa, NDP, AMRT.
func Protocols() []string {
	return append([]string(nil), experiment.ProtocolNames...)
}

// Workloads returns the five workload names of §8.1.
func Workloads() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name())
	}
	return out
}

// Topology describes a leaf–spine fabric. The zero value means the
// scaled-down default (4 leaves × 4 spines × 10 hosts/leaf, 10 Gbps,
// ~100 µs RTT).
type Topology struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	// LinkGbps is the rate of every link in Gbit/s (default 10).
	LinkGbps float64
	// RTT is the propagation round-trip across the fabric (default 100µs).
	RTT time.Duration
}

func (t Topology) config() topo.LeafSpineConfig {
	cfg := topo.DefaultLeafSpine()
	if t.Leaves > 0 {
		cfg.Leaves = t.Leaves
	}
	if t.Spines > 0 {
		cfg.Spines = t.Spines
	}
	if t.HostsPerLeaf > 0 {
		cfg.HostsPerLeaf = t.HostsPerLeaf
	}
	if t.LinkGbps > 0 {
		r := sim.Rate(t.LinkGbps * float64(sim.Gbps))
		cfg.HostRate, cfg.FabricRate = r, r
	}
	if t.RTT > 0 {
		cfg.LinkDelay = sim.FromDuration(t.RTT) / 8
	}
	return cfg
}

// Config describes one simulation run.
type Config struct {
	// Protocol is one of Protocols(); default "AMRT".
	Protocol string
	// Workload is one of Workloads(); default "WebSearch".
	Workload string
	// Load is the offered load fraction in (0,1]; default 0.5.
	Load float64
	// Flows is the number of flows to inject; default 1000.
	Flows int
	// Seed makes the run reproducible; default 1.
	Seed int64
	// Topology of the fabric; zero value = default fabric.
	Topology Topology
	// HomaDegree sets Homa's overcommitment level (default 2).
	HomaDegree int
	// Timeout bounds the simulated horizon (default 20 s of virtual
	// time); incomplete flows at the horizon are reported in Result.
	Timeout time.Duration
	// TracePath, if set, writes a CSV event trace (flow starts and
	// completions, per-packet deliveries, drops) to the given file.
	TracePath string
	// MetricsPath, if set, writes a JSON telemetry dump — per-downlink
	// queue depth, utilization, and anti-ECN mark-rate time series plus
	// network and protocol counters, sampled on the simulation clock so
	// the file is byte-identical across same-seed runs. The schema is
	// documented in docs/TELEMETRY.md.
	MetricsPath string
	// MetricsCSVPath, if set, additionally writes the time-series
	// portion of the telemetry as one wide CSV.
	MetricsCSVPath string
	// MetricsInterval is the telemetry sampling period in virtual time
	// (default 100 µs).
	MetricsInterval time.Duration
	// Faults, if set, is a fault-injection spec (grammar in
	// docs/FAULTS.md), e.g.
	//
	//	link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01
	//
	// flapping one fabric link and dropping 1% of control packets. The
	// plan's randomness derives from Seed unless the spec pins its own
	// with a seed= clause.
	Faults string
}

func (c Config) normalized() Config {
	if c.Protocol == "" {
		c.Protocol = "AMRT"
	}
	if c.Workload == "" {
		c.Workload = "WebSearch"
	}
	if c.Load == 0 {
		c.Load = 0.5
	}
	if c.Flows == 0 {
		c.Flows = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 20 * time.Second
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Protocol  string
	Workload  string
	Load      float64
	Completed int
	Total     int

	// AFCT and P99 are the average and 99th-percentile flow completion
	// times over completed flows.
	AFCT time.Duration
	P99  time.Duration

	// Utilization is the mean busy-period utilization of the receiver
	// downlinks that carried flows.
	Utilization float64

	// Drops counts packets lost in switch queues; Trims counts NDP
	// payload trims.
	Drops int64
	Trims int64

	// Events is the number of simulator events executed (a cost proxy).
	Events uint64
}

// Run executes one simulation and returns its results. It panics on an
// unknown protocol or workload name or a malformed fault spec
// (programmer error).
func Run(cfg Config) Result {
	cfg = cfg.normalized()
	w := workload.ByName(cfg.Workload)
	if w == nil {
		panic(fmt.Sprintf("amrt: unknown workload %q (have %v)", cfg.Workload, Workloads()))
	}
	st := experiment.NewStack(cfg.Protocol, experiment.StackOptions{HomaDegree: cfg.HomaDegree})
	tcfg := cfg.Topology.config()
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts:    tcfg.Hosts(),
		Load:     cfg.Load,
		HostRate: tcfg.HostRate,
		Dist:     w,
		Count:    cfg.Flows,
		Seed:     cfg.Seed,
	})
	run := experiment.LeafSpineRun{
		Topo:    tcfg,
		Stack:   st,
		Flows:   flows,
		Horizon: sim.FromDuration(cfg.Timeout),
	}
	if cfg.Faults != "" {
		pl, err := faults.Parse(cfg.Faults)
		if err != nil {
			panic(fmt.Sprintf("amrt: %v", err))
		}
		if pl.Seed == 0 {
			pl.Seed = cfg.Seed
		}
		run.Faults = pl
	}
	var rec *trace.Recorder
	if cfg.TracePath != "" {
		rec = &trace.Recorder{MaxEvents: 4 << 20}
		run.Trace = rec
	}
	var reg *metrics.Registry
	if cfg.MetricsPath != "" || cfg.MetricsCSVPath != "" {
		reg = metrics.NewRegistry()
		run.Metrics = reg
		run.MetricsInterval = sim.FromDuration(cfg.MetricsInterval)
	}
	res := run.Run()
	if rec != nil {
		if err := writeTrace(cfg.TracePath, rec); err != nil {
			panic(fmt.Sprintf("amrt: writing trace: %v", err))
		}
	}
	if reg != nil {
		if err := writeMetrics(cfg, reg); err != nil {
			panic(fmt.Sprintf("amrt: writing metrics: %v", err))
		}
	}
	return Result{
		Protocol:    cfg.Protocol,
		Workload:    cfg.Workload,
		Load:        cfg.Load,
		Completed:   res.Completed,
		Total:       res.Total,
		AFCT:        res.AFCT.Duration(),
		P99:         res.P99.Duration(),
		Utilization: res.Utilization,
		Drops:       res.Drops,
		Trims:       res.Trims,
		Events:      res.Events,
	}
}

func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

func writeMetrics(cfg Config, reg *metrics.Registry) error {
	write := func(path string, dump func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dump(f); err != nil {
			return err
		}
		return f.Close()
	}
	if err := write(cfg.MetricsPath, reg.WriteJSON); err != nil {
		return err
	}
	return write(cfg.MetricsCSVPath, reg.WriteCSV)
}

// Compare runs the same traffic under every protocol and returns the
// results keyed by protocol name. Trace and metrics output paths get
// the protocol name spliced in before the extension (out.json →
// out.AMRT.json) so the runs do not overwrite each other.
func Compare(cfg Config) map[string]Result {
	out := make(map[string]Result, len(experiment.ProtocolNames))
	for _, p := range experiment.ProtocolNames {
		c := cfg
		c.Protocol = p
		c.TracePath = withProtoSuffix(cfg.TracePath, p)
		c.MetricsPath = withProtoSuffix(cfg.MetricsPath, p)
		c.MetricsCSVPath = withProtoSuffix(cfg.MetricsCSVPath, p)
		out[p] = Run(c)
	}
	return out
}

// withProtoSuffix splices proto into path before its extension.
func withProtoSuffix(path, proto string) string {
	if path == "" {
		return ""
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + proto + ext
}

// Gain evaluates the paper's §5 analytical model: the best- and
// worst-case speedup of AMRT over a conservative receiver-driven
// protocol for a flow of size bytes whose rate was reduced to
// rOverC × capacity.
func Gain(sizeBytes int64, rOverC float64, linkGbps float64, rtt time.Duration) (utilMin, utilMax, fctMin, fctMax float64) {
	c := sim.Rate(linkGbps * float64(sim.Gbps))
	p := model.GainParams{
		C: c, R: sim.Rate(float64(c) * rOverC), S: sizeBytes,
		TR: 0, RTT: sim.FromDuration(rtt), MSS: netsim.MSS,
	}
	return p.UtilizationGain(p.TPrimeMax()), p.UtilizationGain(p.TPrimeMin()),
		p.FCTGain(p.TPrimeMax()), p.FCTGain(p.TPrimeMin())
}
