// Package amrt is a from-scratch reproduction of "AMRT: Anti-ECN
// Marking to Improve Utilization of Receiver-driven Transmission in
// Data Center" (Hu, Huang, Li, Wang, He — ICPP 2020).
//
// It bundles a deterministic packet-level network simulator, five
// receiver-driven datacenter transports (pHost, Homa, NDP, AMRT — the
// paper's contribution — and SIRD, the sender-informed head-to-head),
// the paper's workloads, and the experiment harness that regenerates
// every figure of the paper's evaluation.
//
// This root package is the stable high-level API: describe a topology,
// a workload, and a protocol, and get flow-completion-time and
// utilization results back. The full machinery (custom topologies,
// per-packet hooks, protocol internals) lives in the internal packages
// and is exercised through cmd/amrtsim, cmd/figures, and the examples.
//
// Quick start:
//
//	res := amrt.Run(amrt.Config{Protocol: "AMRT", Workload: "WebSearch", Load: 0.5, Flows: 1000})
//	fmt.Printf("AFCT %v, p99 %v, utilization %.2f\n", res.AFCT, res.P99, res.Utilization)
package amrt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"amrt/internal/experiment"
	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/model"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/workload"
)

// SimVersion identifies the simulation-behavior generation of this
// build. It is folded into every sweep cache key (see Sweep and
// docs/API.md), so entries computed by an older generation can never
// satisfy a newer binary. Bump it whenever a change alters simulation
// results — protocol logic, topology defaults, workload sampling — and
// leave it alone for pure API or tooling changes.
const SimVersion = "amrt-sim/v9"

// Typed sentinel errors returned by Config.Validate (and therefore by
// RunContext, CompareContext, and Sweep). Match with errors.Is; the
// returned errors wrap these with the offending value and context.
var (
	// ErrUnknownProtocol reports a Config.Protocol outside Protocols()
	// (plus the related-work "DCTCP" contrast stack).
	ErrUnknownProtocol = errors.New("unknown protocol")
	// ErrUnknownWorkload reports a Config.Workload outside Workloads().
	ErrUnknownWorkload = errors.New("unknown workload")
	// ErrBadFaultSpec reports a Config.Faults string that does not
	// parse under the docs/FAULTS.md grammar.
	ErrBadFaultSpec = errors.New("bad fault spec")
	// ErrBadLoad reports a Config.Load outside (0, 1].
	ErrBadLoad = errors.New("load out of range (0,1]")
	// ErrBadFlows reports a negative Config.Flows.
	ErrBadFlows = errors.New("negative flow count")
	// ErrBadTopology reports a Config.Topology with an unknown Kind or
	// invalid dimensions (e.g. an odd fat-tree arity), or a topology
	// spec string that does not parse (see ParseTopology).
	ErrBadTopology = errors.New("bad topology")
	// ErrUnknownPattern reports a Config.Pattern outside Patterns().
	ErrUnknownPattern = errors.New("unknown traffic pattern")
	// ErrBadPattern reports pattern knobs that contradict the selected
	// pattern or topology (e.g. an incast degree ≥ the host count).
	ErrBadPattern = errors.New("bad pattern parameters")
	// ErrBadPolicy reports a SweepConfig failure policy with a negative
	// Retries, CellTimeout, or RetryBackoff (see SweepConfig.Validate).
	ErrBadPolicy = errors.New("bad failure policy")
	// ErrBadShards reports a Config.Shards outside [0, 256].
	ErrBadShards = errors.New("bad shard count")
	// ErrBadStackOption reports a Config.Options field that belongs to a
	// different protocol than Config.Protocol (e.g. SIRDPoolBytes on a
	// Homa run) or holds an invalid value. The deprecated
	// Config.HomaDegree alias stays lenient — protocols other than Homa
	// simply ignore it.
	ErrBadStackOption = errors.New("bad stack option")
)

// Protocols returns the supported comparison transports in the order
// the figures present them (pHost, Homa, NDP, AMRT, SIRD), derived from
// the experiment stack registry.
func Protocols() []string {
	return experiment.ProtocolNames()
}

// Workloads returns the five workload names of §8.1.
func Workloads() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name())
	}
	return out
}

// Patterns returns the supported traffic patterns: "poisson" (the
// paper's open-loop arrivals and the default), "incast" (synchronized
// fan-in epochs), "shuffle" (all-to-all), and "rpc" (closed-loop
// request/response with deadlines). docs/TOPOLOGIES.md documents the
// knobs of each.
func Patterns() []string {
	return []string{"poisson", "incast", "shuffle", "rpc"}
}

// Topology describes the fabric of a run: a two-tier leaf–spine (the
// paper's evaluation shape and the default), a k-ary fat-tree, or an
// oversubscribed three-tier Clos. The zero value means the scaled-down
// default leaf–spine (4 leaves × 4 spines × 10 hosts/leaf, 10 Gbps,
// ~100 µs RTT). Fields irrelevant to the selected Kind are ignored;
// docs/TOPOLOGIES.md walks through the parameters, host-count math,
// and oversubscription ratios of each family.
type Topology struct {
	// Kind selects the fabric family: "leafspine" (default),
	// "fattree", or "clos" (see TopologyKinds).
	Kind string

	// Leaves is the leaf-switch count: total leaves for "leafspine",
	// leaves per pod for "clos" (default 4 / 2).
	Leaves int
	// Spines is the spine-switch count ("leafspine" only; default 4).
	Spines int
	// HostsPerLeaf is the host count under each leaf or edge switch
	// ("leafspine" and "clos"; default 10 / 16).
	HostsPerLeaf int

	// K is the fat-tree arity ("fattree" only): even, ≥ 4; the fabric
	// has K³/4 hosts (default 4 → 16 hosts; 8 → 128; 16 → 1024).
	K int

	// Pods is the pod count ("clos" only; default 2).
	Pods int
	// Aggs is the aggregation-switch count per pod ("clos" only;
	// default 2).
	Aggs int
	// Cores is the top-tier switch count ("clos" only; default 2).
	Cores int

	// LinkGbps is the host access-link rate in Gbit/s (default 10 for
	// "leafspine"/"fattree", 25 for "clos").
	LinkGbps float64
	// FabricGbps is the mid-tier rate in Gbit/s — leaf↔spine,
	// edge↔agg, or leaf↔agg; 0 means LinkGbps ("clos" defaults to
	// 100).
	FabricGbps float64
	// CoreGbps is the top-tier rate in Gbit/s — agg↔core; 0 means
	// FabricGbps. Ignored by "leafspine", which has no third tier.
	CoreGbps float64
	// RTT is the worst-case propagation round-trip across the fabric
	// (default 100µs); the per-link delay is derived from the hop
	// count of the selected Kind.
	RTT time.Duration
}

// StackOptions carries per-protocol tuning knobs, validated against the
// selected protocol: Validate rejects fields aimed at a different stack
// with ErrBadStackOption, so a typo'd configuration fails loudly
// instead of silently running defaults.
type StackOptions struct {
	// HomaDegree sets Homa's overcommitment level — how many senders
	// one receiver grants simultaneously (default 2).
	HomaDegree int
	// SIRDPoolBytes bounds each SIRD receiver's outstanding scheduled
	// credit in bytes; 0 (the default) sizes the pool automatically at
	// 1.5× the downlink bandwidth-delay product.
	SIRDPoolBytes int64
	// SIRDStalenessRTTs is how long SIRD trusts a sender's demand
	// advertisement before falling back to the receiver's own estimate,
	// in RTTs (default 8).
	SIRDStalenessRTTs int
}

// internal maps the public options onto the experiment layer's shared
// options struct.
func (o StackOptions) internal() experiment.StackOptions {
	return experiment.StackOptions{
		HomaDegree:        o.HomaDegree,
		SIRDPoolBytes:     o.SIRDPoolBytes,
		SIRDStalenessRTTs: o.SIRDStalenessRTTs,
	}
}

// optionsFromInternal is internal's inverse, used when Compare narrows
// the shared options per protocol leg through the registry.
func optionsFromInternal(o experiment.StackOptions) StackOptions {
	return StackOptions{
		HomaDegree:        o.HomaDegree,
		SIRDPoolBytes:     o.SIRDPoolBytes,
		SIRDStalenessRTTs: o.SIRDStalenessRTTs,
	}
}

// Config describes one simulation run.
type Config struct {
	// Protocol is one of Protocols(); default "AMRT".
	Protocol string
	// Workload is one of Workloads(); default "WebSearch".
	Workload string
	// Load is the offered load fraction in (0,1]; default 0.5.
	Load float64
	// Flows is the number of flows to inject; default 1000.
	Flows int
	// Seed makes the run reproducible; default 1.
	Seed int64
	// Topology of the fabric; zero value = default fabric.
	Topology Topology
	// Pattern selects the traffic shape, one of Patterns(); default
	// "poisson". "poisson" draws flow sizes from Workload; the other
	// patterns use their fixed per-flow sizes below and ignore
	// Workload.
	Pattern string
	// IncastDegree is the synchronized sender fan-in of each incast
	// epoch ("incast" only; default 32, must be < the host count).
	IncastDegree int
	// IncastBytes is the per-sender block size in bytes ("incast"
	// only; default 64 KB).
	IncastBytes int64
	// ShuffleWidth is the number of peers each host streams to
	// ("shuffle" only); 0 (the default) means full all-to-all. The
	// shuffle's flow count is Hosts × width — Flows is ignored.
	ShuffleWidth int
	// ShuffleBytes is the per-pair transfer size in bytes ("shuffle"
	// only; default 1 MB).
	ShuffleBytes int64
	// RPCRequestBytes is the client→server request size in bytes
	// ("rpc" only; default 1 KB).
	RPCRequestBytes int64
	// RPCResponseBytes is the server→client response size in bytes
	// ("rpc" only; default 64 KB). Flows counts RPCs; each contributes
	// a request and a response flow.
	RPCResponseBytes int64
	// RPCDeadline is the budget from request start to response
	// completion ("rpc" only); 0 disables deadlines. Misses are
	// reported in Result.DeadlineMissed.
	RPCDeadline time.Duration
	// HomaDegree sets Homa's overcommitment level (default 2).
	//
	// Deprecated: use Options.HomaDegree. This alias is kept for
	// compatibility, maps onto the same knob (Options.HomaDegree wins
	// when both are set), and is ignored by every protocol but Homa.
	HomaDegree int
	// Options carries protocol-specific knobs. Setting a field that
	// belongs to a protocol other than Protocol makes Validate fail
	// with ErrBadStackOption; Compare narrows the shared struct to each
	// leg's own fields automatically.
	Options StackOptions
	// Timeout bounds the simulated horizon (default 20 s of virtual
	// time); incomplete flows at the horizon are reported in Result.
	Timeout time.Duration
	// TracePath, if set, writes a CSV event trace (flow starts and
	// completions, per-packet deliveries, drops) to the given file.
	TracePath string
	// MetricsPath, if set, writes a JSON telemetry dump — per-downlink
	// queue depth, utilization, and anti-ECN mark-rate time series plus
	// network and protocol counters, sampled on the simulation clock so
	// the file is byte-identical across same-seed runs. The schema is
	// documented in docs/TELEMETRY.md.
	MetricsPath string
	// MetricsCSVPath, if set, additionally writes the time-series
	// portion of the telemetry as one wide CSV.
	MetricsCSVPath string
	// MetricsInterval is the telemetry sampling period in virtual time
	// (default 100 µs).
	MetricsInterval time.Duration
	// Faults, if set, is a fault-injection spec (grammar in
	// docs/FAULTS.md), e.g.
	//
	//	link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01
	//
	// flapping one fabric link and dropping 1% of control packets. The
	// plan's randomness derives from Seed unless the spec pins its own
	// with a seed= clause.
	Faults string
	// Shards splits the simulation across per-core engine shards
	// synchronized by conservative link-delay lookahead (see
	// docs/PARALLELISM.md). It is a wall-clock knob only: results —
	// flow outcomes, traces, metrics dumps — are byte-identical at
	// every shard count, so it is deliberately excluded from the sweep
	// cache key. 0 or 1 (the default) runs the single-engine golden
	// reference path. Fault plans combine freely with sharding: the
	// fault layer homes every event to the shard owning the affected
	// port, host, or switch (see docs/FAULTS.md).
	Shards int
	// Audit attaches the runtime invariant auditor (internal/audit):
	// packet-conservation, queue-bound, and grant-budget checks run every
	// metrics interval of virtual time plus once after the run, and the
	// first violation panics with a forensic dump (flow states, queue
	// occupancies, pending event count). Off by default; enabling it
	// costs a few percent of wall time and never changes simulation
	// results — it only observes. It is part of the sweep cache key, so
	// audited and unaudited campaigns never share cache entries.
	Audit bool
}

func (c Config) normalized() Config {
	if c.Protocol == "" {
		c.Protocol = "AMRT"
	}
	if c.Workload == "" {
		c.Workload = "WebSearch"
	}
	if c.Load == 0 {
		c.Load = 0.5
	}
	if c.Flows == 0 {
		c.Flows = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 20 * time.Second
	}
	if c.HomaDegree == 0 {
		c.HomaDegree = 2
	}
	if c.Pattern == "" {
		c.Pattern = "poisson"
	}
	if c.IncastDegree == 0 {
		c.IncastDegree = 32
	}
	if c.IncastBytes == 0 {
		c.IncastBytes = 64 << 10
	}
	if c.ShuffleBytes == 0 {
		c.ShuffleBytes = 1 << 20
	}
	if c.RPCRequestBytes == 0 {
		c.RPCRequestBytes = 1 << 10
	}
	if c.RPCResponseBytes == 0 {
		c.RPCResponseBytes = 64 << 10
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// Validate checks the configuration after default-filling and reports
// the first problem as an error wrapping one of the package's typed
// sentinels (ErrUnknownProtocol, ErrUnknownWorkload, ErrBadFaultSpec,
// ErrBadLoad, ErrBadFlows), so callers can branch with errors.Is. The
// zero Config is valid. RunContext, CompareContext, and Sweep validate
// before running — user input through the v2 API never panics; only
// the legacy Run/Compare wrappers convert these errors back to the
// documented panics.
func (c Config) Validate() error {
	c = c.normalized()
	if !experiment.HasStack(c.Protocol) {
		return fmt.Errorf("%w %q (have %v)", ErrUnknownProtocol, c.Protocol, experiment.StackNames())
	}
	if foreign := experiment.ForeignOption(c.Protocol, c.Options.internal()); foreign != "" {
		return fmt.Errorf("%w: Options carries %s knobs but Protocol is %q",
			ErrBadStackOption, foreign, c.Protocol)
	}
	if err := experiment.CheckOptions(c.Protocol, c.Options.internal()); err != nil {
		return fmt.Errorf("%w: %v", ErrBadStackOption, err)
	}
	if workload.ByName(c.Workload) == nil {
		return fmt.Errorf("%w %q (have %v)", ErrUnknownWorkload, c.Workload, Workloads())
	}
	if c.Load <= 0 || c.Load > 1 {
		return fmt.Errorf("%w: %v", ErrBadLoad, c.Load)
	}
	if c.Flows < 0 {
		return fmt.Errorf("%w: %d", ErrBadFlows, c.Flows)
	}
	if c.Faults != "" {
		if _, err := faults.Parse(c.Faults); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaultSpec, err)
		}
	}
	if c.Shards < 0 || c.Shards > 256 {
		return fmt.Errorf("%w: %d (want 1..256)", ErrBadShards, c.Shards)
	}
	b, err := c.Topology.builder()
	if err != nil {
		return err
	}
	switch c.Pattern {
	case "poisson":
	case "incast":
		if c.IncastDegree < 1 || c.IncastDegree >= b.Hosts() {
			return fmt.Errorf("%w: incast degree %d must be in [1, hosts-1=%d]",
				ErrBadPattern, c.IncastDegree, b.Hosts()-1)
		}
		if c.IncastBytes < 1 {
			return fmt.Errorf("%w: incast bytes %d must be positive", ErrBadPattern, c.IncastBytes)
		}
	case "shuffle":
		if c.ShuffleWidth < 0 {
			return fmt.Errorf("%w: shuffle width %d must be non-negative", ErrBadPattern, c.ShuffleWidth)
		}
		if c.ShuffleBytes < 1 {
			return fmt.Errorf("%w: shuffle bytes %d must be positive", ErrBadPattern, c.ShuffleBytes)
		}
	case "rpc":
		if c.RPCRequestBytes < 1 || c.RPCResponseBytes < 1 {
			return fmt.Errorf("%w: RPC request/response sizes (%d, %d) must be positive",
				ErrBadPattern, c.RPCRequestBytes, c.RPCResponseBytes)
		}
		if c.RPCDeadline < 0 {
			return fmt.Errorf("%w: RPC deadline %v must be non-negative", ErrBadPattern, c.RPCDeadline)
		}
	default:
		return fmt.Errorf("%w %q (have %v)", ErrUnknownPattern, c.Pattern, Patterns())
	}
	return nil
}

// compareValidate validates a comparison configuration: everything
// Validate checks except the foreign-option rule — a comparison's
// shared Options struct may legitimately carry knobs for several
// protocols at once — while each protocol still value-checks its own
// fields.
func (c Config) compareValidate() error {
	for _, p := range experiment.ProtocolNames() {
		if err := experiment.CheckOptions(p, c.Options.internal()); err != nil {
			return fmt.Errorf("%w: %v", ErrBadStackOption, err)
		}
	}
	c.Options = StackOptions{}
	return c.Validate()
}

// stackOptions resolves the effective per-stack options: the typed
// Options struct, with the deprecated HomaDegree alias filled in when
// the typed field is unset.
func (c Config) stackOptions() experiment.StackOptions {
	o := c.Options.internal()
	if o.HomaDegree == 0 {
		o.HomaDegree = c.HomaDegree
	}
	return o
}

// Result summarizes one run.
type Result struct {
	Protocol  string
	Workload  string
	Load      float64
	Completed int
	Total     int

	// AFCT and P99 are the average and 99th-percentile flow completion
	// times over completed flows.
	AFCT time.Duration
	P99  time.Duration

	// Utilization is the mean busy-period utilization of the receiver
	// downlinks that carried flows.
	Utilization float64

	// Drops counts packets lost in switch queues; Trims counts NDP
	// payload trims.
	Drops int64
	Trims int64

	// Events is the number of simulator events executed (a cost proxy).
	Events uint64

	// Stalled counts flows the liveness watchdog flagged: no data
	// progress for the stall window while both access links were up.
	// Killed counts flows terminated because an endpoint host crashed
	// (see the crash= fault clause). Both are zero on fault-free runs.
	Stalled int
	Killed  int

	// DeadlineTotal counts flows that carried a completion deadline
	// and DeadlineMissed those that finished late or not at all. Both
	// are zero unless the "rpc" pattern runs with RPCDeadline set.
	DeadlineTotal  int
	DeadlineMissed int
}

// Run executes one simulation and returns its results. It panics on an
// unknown protocol or workload name or a malformed fault spec
// (programmer error) — the documented v1 behavior, kept as a thin
// wrapper over RunContext; new code should prefer the error-returning,
// cancellable RunContext.
func Run(cfg Config) Result {
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		panic(fmt.Sprintf("amrt: %v", err))
	}
	return res
}

// RunContext executes one simulation under ctx and returns its results.
// The configuration is validated first (see Config.Validate); invalid
// input returns a typed error instead of panicking. A cancelled context
// aborts the simulation promptly — the engine polls ctx every few
// thousand events, so even a multi-second run stops within
// milliseconds — and returns the partial Result together with ctx.Err().
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cfg = cfg.normalized()
	st, err := experiment.NewStack(cfg.Protocol, cfg.stackOptions())
	if err != nil {
		return Result{}, fmt.Errorf("%w %q (have %v)", ErrUnknownProtocol, cfg.Protocol, experiment.StackNames())
	}
	b, err := cfg.Topology.builder()
	if err != nil {
		return Result{}, err // validated above; cannot fail
	}
	run := experiment.LeafSpineRun{
		Topo:    b,
		Flows:   generateFlows(cfg, b),
		Stack:   st,
		Horizon: sim.FromDuration(cfg.Timeout),
		Audit:   cfg.Audit,
		Shards:  cfg.Shards,
	}
	if ctx.Done() != nil {
		run.Interrupt = func() bool { return ctx.Err() != nil }
	}
	if cfg.Faults != "" {
		pl, err := faults.Parse(cfg.Faults) // validated above; cannot fail
		if err != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrBadFaultSpec, err)
		}
		if pl.Seed == 0 {
			pl.Seed = cfg.Seed
		}
		run.Faults = pl
	}
	var rec *trace.Recorder
	if cfg.TracePath != "" {
		rec = &trace.Recorder{MaxEvents: 4 << 20}
		run.Trace = rec
	}
	var reg *metrics.Registry
	if cfg.MetricsPath != "" || cfg.MetricsCSVPath != "" {
		reg = metrics.NewRegistry()
		run.Metrics = reg
		run.MetricsInterval = experiment.MetricsIntervalOrDefault(sim.FromDuration(cfg.MetricsInterval))
	}
	res, err := run.RunE()
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadFaultSpec, err)
	}
	out := Result{
		Protocol:    cfg.Protocol,
		Workload:    cfg.Workload,
		Load:        cfg.Load,
		Completed:   res.Completed,
		Total:       res.Total,
		AFCT:        res.AFCT.Duration(),
		P99:         res.P99.Duration(),
		Utilization: res.Utilization,
		Drops:       res.Drops,
		Trims:       res.Trims,
		Events:      res.Events,
		Stalled:     res.Stalled,
		Killed:      res.Killed,

		DeadlineTotal:  res.DeadlineTotal,
		DeadlineMissed: res.DeadlineMissed,
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if rec != nil {
		if err := writeTrace(cfg.TracePath, rec); err != nil {
			return out, fmt.Errorf("writing trace: %w", err)
		}
	}
	if reg != nil {
		// res.Metrics, not reg: on a sharded run the caller's registry
		// holds only shard 0's share and the runner returns the
		// canonical merge of all per-shard registries.
		if err := writeMetrics(cfg, res.Metrics); err != nil {
			return out, fmt.Errorf("writing metrics: %w", err)
		}
	}
	return out, nil
}

// generateFlows expands the normalized (and already validated) config
// into flow specs for the selected Pattern on the given fabric.
func generateFlows(cfg Config, b topo.Builder) []workload.FlowSpec {
	switch cfg.Pattern {
	case "incast":
		return workload.GenerateIncast(workload.IncastConfig{
			Hosts:    b.Hosts(),
			Degree:   cfg.IncastDegree,
			Bytes:    cfg.IncastBytes,
			Load:     cfg.Load,
			HostRate: b.AccessRate(),
			Count:    cfg.Flows,
			Seed:     cfg.Seed,
		})
	case "shuffle":
		return workload.GenerateShuffle(workload.ShuffleConfig{
			Hosts: b.Hosts(),
			Width: cfg.ShuffleWidth,
			Bytes: cfg.ShuffleBytes,
		})
	case "rpc":
		return workload.GenerateRPC(workload.RPCConfig{
			Hosts:         b.Hosts(),
			Load:          cfg.Load,
			HostRate:      b.AccessRate(),
			RequestBytes:  cfg.RPCRequestBytes,
			ResponseBytes: cfg.RPCResponseBytes,
			Deadline:      sim.FromDuration(cfg.RPCDeadline),
			Count:         cfg.Flows,
			Seed:          cfg.Seed,
		})
	default: // "poisson"
		return workload.GeneratePoisson(workload.PoissonConfig{
			Hosts:    b.Hosts(),
			Load:     cfg.Load,
			HostRate: b.AccessRate(),
			Dist:     workload.ByName(cfg.Workload),
			Count:    cfg.Flows,
			Seed:     cfg.Seed,
		})
	}
}

func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

func writeMetrics(cfg Config, reg *metrics.Registry) error {
	write := func(path string, dump func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dump(f); err != nil {
			return err
		}
		return f.Close()
	}
	if err := write(cfg.MetricsPath, reg.WriteJSON); err != nil {
		return err
	}
	return write(cfg.MetricsCSVPath, reg.WriteCSV)
}

// Compare runs the same traffic under every protocol and returns the
// results keyed by protocol name. It is the panicking v1 wrapper over
// CompareContext, which new code should prefer for its error returns,
// cancellability, and paper-ordered slice.
func Compare(cfg Config) map[string]Result {
	results, err := CompareContext(context.Background(), cfg)
	if err != nil {
		panic(fmt.Sprintf("amrt: %v", err))
	}
	out := make(map[string]Result, len(results))
	for _, r := range results {
		out[r.Protocol] = r
	}
	return out
}

// CompareContext runs the same traffic under every protocol and returns
// the results in paper order (pHost, Homa, NDP, AMRT, SIRD — the order
// Protocols() reports), so figure code indexes results without a map
// sort. A shared Options struct is narrowed to each leg's own fields
// through the stack registry, so comparison runs may carry knobs for
// several protocols at once. Trace and metrics output paths get the
// protocol name spliced in before the extension (out.json →
// out.AMRT.json, extensionless out → out.AMRT) so the runs do not
// overwrite each other. On a cancelled context it returns the protocols
// completed so far plus ctx.Err().
func CompareContext(ctx context.Context, cfg Config) ([]Result, error) {
	if err := cfg.compareValidate(); err != nil {
		return nil, err
	}
	names := experiment.ProtocolNames()
	out := make([]Result, 0, len(names))
	for _, p := range names {
		c := cfg
		c.Protocol = p
		c.Options = optionsFromInternal(experiment.NarrowOptions(p, cfg.Options.internal()))
		c.TracePath = withProtoSuffix(cfg.TracePath, p)
		c.MetricsPath = withProtoSuffix(cfg.MetricsPath, p)
		c.MetricsCSVPath = withProtoSuffix(cfg.MetricsCSVPath, p)
		r, err := RunContext(ctx, c)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// withProtoSuffix splices proto into path before the final element's
// extension: out.json → out.AMRT.json. An extensionless final element
// gets the suffix appended (out → out.AMRT, ./dir/out → ./dir/out.AMRT
// — a dot in a parent directory never counts as an extension), and a
// dotfile keeps its name intact (.trace → .trace.AMRT).
func withProtoSuffix(path, proto string) string {
	if path == "" {
		return ""
	}
	dir, base := filepath.Split(path)
	ext := filepath.Ext(base)
	if ext == base {
		// The whole element is the "extension": a dotfile like
		// ".trace". Splicing before it would erase the name.
		ext = ""
	}
	return dir + base[:len(base)-len(ext)] + "." + proto + ext
}

// Gain evaluates the paper's §5 analytical model: the best- and
// worst-case speedup of AMRT over a conservative receiver-driven
// protocol for a flow of size bytes whose rate was reduced to
// rOverC × capacity.
func Gain(sizeBytes int64, rOverC float64, linkGbps float64, rtt time.Duration) (utilMin, utilMax, fctMin, fctMax float64) {
	c := sim.Rate(linkGbps * float64(sim.Gbps))
	p := model.GainParams{
		C: c, R: sim.Rate(float64(c) * rOverC), S: sizeBytes,
		TR: 0, RTT: sim.FromDuration(rtt), MSS: netsim.MSS,
	}
	return p.UtilizationGain(p.TPrimeMax()), p.UtilizationGain(p.TPrimeMin()),
		p.FCTGain(p.TPrimeMax()), p.FCTGain(p.TPrimeMin())
}
