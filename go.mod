module amrt

go 1.22
