package amrt

// One benchmark per figure of the paper: each regenerates the figure's
// experiment at a reduced default scale and reports the headline numbers
// as custom metrics (milliseconds of AFCT, utilization fractions), so
// `go test -bench=.` doubles as a quick reproduction pass. cmd/figures
// runs the same experiments at full size with tables.

import (
	"fmt"
	"testing"

	"amrt/internal/benchcases"
	"amrt/internal/experiment"
	"amrt/internal/metrics"
	"amrt/internal/model"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/workload"
)

func benchStack(name string) experiment.Stack {
	return experiment.MustStack(name, experiment.StackOptions{})
}

// BenchmarkFig01MultiBottleneck reproduces §2.1 / Fig. 1 (pHost cannot
// reclaim first-bottleneck bandwidth) and the AMRT counterpart. The
// body lives in internal/benchcases, shared with cmd/bench.
func BenchmarkFig01MultiBottleneck(b *testing.B) {
	for _, proto := range []string{"pHost", "AMRT"} {
		b.Run(proto, benchcases.Fig01(proto))
	}
}

// BenchmarkFig02DynamicTraffic reproduces §2.2 / Fig. 2.
func BenchmarkFig02DynamicTraffic(b *testing.B) {
	for _, proto := range []string{"pHost", "AMRT"} {
		b.Run(proto, benchcases.Fig02(proto))
	}
}

// BenchmarkFig05Convergence measures AMRT's vacancy-fill time against
// the Eq. 4–5 bounds.
func BenchmarkFig05Convergence(b *testing.B) {
	var rtts float64
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig5([][2]int{{10, 4}})
		rtts = rows[0].SimulatedRTTs
	}
	b.ReportMetric(rtts, "fill_rtts")
}

// BenchmarkFig07ModelGain evaluates the §5 analytical curves.
func BenchmarkFig07ModelGain(b *testing.B) {
	ratios := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	var g float64
	for i := 0; i < b.N; i++ {
		curve := model.UtilizationGainCurve(sim.Gbps, 100*sim.Microsecond, netsim.MSS, 1_000_000, ratios)
		g = curve[2].MaxGain
	}
	b.ReportMetric(g, "gain_R/C=0.5")
}

// BenchmarkFig09TestbedDynamic reproduces the §7 dynamic-traffic
// testbed run at 1 GbE.
func BenchmarkFig09TestbedDynamic(b *testing.B) {
	benchcases.Fig09(b)
}

// BenchmarkFig11TestbedMultiBottleneck reproduces the §7 multi-
// bottleneck testbed comparison for each protocol.
func BenchmarkFig11TestbedMultiBottleneck(b *testing.B) {
	for _, proto := range []string{"pHost", "Homa", "NDP", "AMRT"} {
		b.Run(proto, benchcases.Fig11(proto))
	}
}

// fig12BenchConfig is a reduced Fig. 12 cell: one workload, one load.
func fig12BenchConfig() experiment.SimConfig {
	cfg := experiment.DefaultSimConfig()
	cfg.Topo.Leaves, cfg.Topo.Spines, cfg.Topo.HostsPerLeaf = 2, 2, 8
	cfg.FlowsPerRun = 200
	cfg.BytesBudget = 1 << 29
	return cfg
}

// BenchmarkFig12FCT reproduces one (workload, load) cell of Fig. 12 per
// protocol and reports AFCT and p99.
func BenchmarkFig12FCT(b *testing.B) {
	cfg := fig12BenchConfig()
	for _, wl := range []string{"WebSearch", "DataMining"} {
		for _, proto := range []string{"pHost", "Homa", "NDP", "AMRT"} {
			b.Run(fmt.Sprintf("%s/%s", workload.Abbrev(wl), proto), func(b *testing.B) {
				w := workload.ByName(wl)
				st := benchStack(proto)
				var afct, p99 float64
				for i := 0; i < b.N; i++ {
					flows := workload.GeneratePoisson(workload.PoissonConfig{
						Hosts: cfg.Topo.Hosts(), Load: 0.5, HostRate: cfg.Topo.HostRate,
						Dist: w, Count: benchFlowCount(cfg, w.Mean()), Seed: 1,
					})
					res := experiment.LeafSpineRun{Topo: cfg.Topo, Stack: st, Flows: flows, Horizon: cfg.Horizon}.Run()
					afct = res.AFCT.Milliseconds()
					p99 = res.P99.Milliseconds()
				}
				b.ReportMetric(afct, "afct_ms")
				b.ReportMetric(p99, "p99_ms")
			})
		}
	}
}

// benchFlowCount applies the byte budget to the configured flow count.
func benchFlowCount(cfg experiment.SimConfig, mean float64) int {
	n := cfg.FlowsPerRun
	if cfg.BytesBudget > 0 {
		if m := int(float64(cfg.BytesBudget) / mean); m < n {
			n = m
		}
	}
	if n < 50 {
		n = 50
	}
	return n
}

// BenchmarkFig13Utilization reproduces one flow-count point of Fig. 13
// per protocol.
func BenchmarkFig13Utilization(b *testing.B) {
	cfg := fig12BenchConfig()
	for _, proto := range []string{"pHost", "Homa", "NDP", "AMRT"} {
		b.Run(proto, func(b *testing.B) {
			w := workload.WebSearch()
			st := benchStack(proto)
			var util float64
			for i := 0; i < b.N; i++ {
				flows := workload.GeneratePoisson(workload.PoissonConfig{
					Hosts: cfg.Topo.Hosts(), Load: experiment.Fig13Load, HostRate: cfg.Topo.HostRate,
					Dist: w, Count: 150, Seed: 1,
				})
				res := experiment.LeafSpineRun{Topo: cfg.Topo, Stack: st, Flows: flows, Horizon: cfg.Horizon}.Run()
				util = res.Utilization
			}
			b.ReportMetric(util, "util")
		})
	}
}

// BenchmarkFig14ManyToMany reproduces one responsive-ratio point of
// Fig. 14 for AMRT and Homa at degree 8.
func BenchmarkFig14ManyToMany(b *testing.B) {
	cfg := experiment.DefaultSimConfig()
	cfg.Repeats = 1
	cfg.HomaDegrees = []int{8}
	var cells []experiment.M2MCell
	for i := 0; i < b.N; i++ {
		cells = experiment.Fig14Cells(cfg, []float64{0.5})
	}
	for _, c := range cells {
		b.ReportMetric(c.Util, c.Variant+"_util")
		b.ReportMetric(c.MaxQueue, c.Variant+"_maxq")
	}
}

// BenchmarkAblationMarking sweeps the anti-ECN design choices.
func BenchmarkAblationMarking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.MarkingAblation()
	}
}

// BenchmarkAblationQueueCap sweeps AMRT's switch data-queue cap.
func BenchmarkAblationQueueCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.QueueCapAblation()
	}
}

// BenchmarkMetricsOverhead measures the cost of the telemetry layer on
// a standard AMRT run: the "off" case is the plain simulation, "on"
// attaches a metrics.Registry (per-downlink series at the default
// 100 µs interval plus all counters). Compare ns/op between the two
// sub-benchmarks — the overhead budget is <5%
// (go test -bench=MetricsOverhead -count=5).
func BenchmarkMetricsOverhead(b *testing.B) {
	cfg := fig12BenchConfig()
	w := workload.WebSearch()
	st := benchStack("AMRT")
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts: cfg.Topo.Hosts(), Load: 0.5, HostRate: cfg.Topo.HostRate,
		Dist: w, Count: 150, Seed: 1,
	})
	for _, withMetrics := range []bool{false, true} {
		name := "off"
		if withMetrics {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				run := experiment.LeafSpineRun{Topo: cfg.Topo, Stack: st, Flows: flows, Horizon: cfg.Horizon}
				if withMetrics {
					run.Metrics = metrics.NewRegistry()
				}
				res := run.Run()
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw engine throughput on a
// standard AMRT run, in events per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchcases.SimulatorThroughput(b)
}

// BenchmarkShardScaling measures the sharded engine's aggregate
// events/s on a k=8 fat-tree incast at 1/2/4/8 shards. The body lives
// in internal/benchcases, shared with cmd/bench; see
// docs/PARALLELISM.md for why the results are byte-identical across
// the counts and docs/PERFORMANCE.md for the scaling table.
func BenchmarkShardScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("fattree-incast/shards=%d", n), benchcases.ShardScaling(n))
	}
}

// BenchmarkFaultInjection measures the v9 fault layer's overhead on
// the sharded engine: a k=4 fat-tree incast with a periodic flap plus
// bursty loss, at 1 and 4 shards. The body lives in
// internal/benchcases, shared with cmd/bench; compare against the
// fault-free ShardScaling cases to isolate the fault machinery's cost.
func BenchmarkFaultInjection(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("fattree-incast/shards=%d", n), benchcases.FaultInjection(n))
	}
}
