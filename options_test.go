package amrt

import (
	"context"
	"testing"
)

// TestHomaDegreeAliasEquivalence proves the deprecated Config.HomaDegree
// field and the typed Options.HomaDegree path configure the same knob:
// same traffic, same degree, byte-identical results — and the same
// sweep cache key, so a cache populated through one spelling satisfies
// campaigns using the other.
func TestHomaDegreeAliasEquivalence(t *testing.T) {
	base := Config{Protocol: "Homa", Workload: "WebServer", Flows: 120, Topology: smallTopo()}

	old := base
	old.HomaDegree = 4
	typed := base
	typed.Options = StackOptions{HomaDegree: 4}

	oldRes := Run(old)
	typedRes := Run(typed)
	if oldRes != typedRes {
		t.Errorf("alias and typed options diverge:\n%+v\n%+v", oldRes, typedRes)
	}
	if kOld, kTyped := sweepKey(old.normalized()), sweepKey(typed.normalized()); kOld != kTyped {
		t.Errorf("sweep keys diverge:\n%s\n%s", kOld, kTyped)
	}

	// The typed field wins when both are set.
	both := base
	both.HomaDegree = 8
	both.Options = StackOptions{HomaDegree: 4}
	if bothRes := Run(both); bothRes != typedRes {
		t.Errorf("typed degree should win over the alias:\n%+v\n%+v", bothRes, typedRes)
	}
}

// TestSIRDOptionsChangeResults checks the SIRD knobs actually reach the
// stack: shrinking the credit pool to one packet must change behavior.
func TestSIRDOptionsChangeResults(t *testing.T) {
	base := Config{Protocol: "SIRD", Workload: "WebServer", Flows: 120, Topology: smallTopo()}
	def := Run(base)
	tiny := base
	tiny.Options = StackOptions{SIRDPoolBytes: 1500}
	if got := Run(tiny); got == def {
		t.Error("one-packet credit pool produced identical results to the default pool")
	}
	if def.Completed == 0 {
		t.Error("SIRD completed no flows")
	}
}

// TestCompareAcceptsSharedOptions checks a comparison run may carry
// knobs for several protocols at once: the registry narrows the shared
// struct per leg, so per-leg validation never sees a foreign option.
func TestCompareAcceptsSharedOptions(t *testing.T) {
	res, err := CompareContext(context.Background(), Config{
		Workload: "WebServer",
		Flows:    80,
		Topology: smallTopo(),
		Options:  StackOptions{HomaDegree: 4, SIRDPoolBytes: 64 << 10, SIRDStalenessRTTs: 4},
	})
	if err != nil {
		t.Fatalf("CompareContext: %v", err)
	}
	if len(res) != len(Protocols()) {
		t.Fatalf("results = %d, want %d", len(res), len(Protocols()))
	}
	for _, r := range res {
		if r.Completed == 0 {
			t.Errorf("%s completed no flows", r.Protocol)
		}
	}
	// Value errors in shared options still surface.
	if _, err := CompareContext(context.Background(), Config{
		Flows: 10, Topology: smallTopo(),
		Options: StackOptions{SIRDPoolBytes: -1},
	}); err == nil {
		t.Error("negative SIRDPoolBytes accepted by CompareContext")
	}
}
