package transport

import "amrt/internal/sim"

// Pacer emits control packets (pHost tokens, NDP pulls) at a fixed rate,
// going idle when the emit callback reports nothing to send and resuming
// on Kick. The first emission after a long idle period fires
// immediately; subsequent ones keep the configured spacing.
type Pacer struct {
	eng   *sim.Engine
	tick  sim.Time
	emit  func() bool
	last  sim.Time
	timer sim.Timer
}

// NewPacer returns a pacer emitting at most once per tick. emit should
// send one control packet and return true, or return false to go idle.
func NewPacer(eng *sim.Engine, tick sim.Time, emit func() bool) *Pacer {
	if tick <= 0 {
		panic("transport: pacer tick must be positive")
	}
	return &Pacer{eng: eng, tick: tick, emit: emit, last: -tick}
}

// Kick schedules the next emission if the pacer is idle. Call it
// whenever new work may have become available.
func (p *Pacer) Kick() {
	if p.timer.Active() {
		return
	}
	at := p.last + p.tick
	if now := p.eng.Now(); at < now {
		at = now
	}
	p.timer = p.eng.ScheduleAt(at, p.fire)
}

func (p *Pacer) fire() {
	if p.emit() {
		p.last = p.eng.Now()
		p.Kick()
	}
}

// Tick returns the pacing interval.
func (p *Pacer) Tick() sim.Time { return p.tick }
