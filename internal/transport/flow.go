// Package transport provides the machinery shared by all four
// receiver-driven protocol implementations (pHost, Homa, NDP, AMRT):
// flow bookkeeping, packetization, the per-host packet dispatcher,
// received-sequence bitmaps, and completion recording.
package transport

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// Flow is one message transfer from Src to Dst.
type Flow struct {
	ID    netsim.FlowID
	Src   *netsim.Host
	Dst   *netsim.Host
	Size  int64 // payload bytes
	NPkts int32 // number of data packets (ceil(Size/MSS))

	Start sim.Time // when the sender begins
	End   sim.Time // when the receiver has every packet
	Done  bool

	// Unresponsive marks a sender that announces the flow (RTS) but
	// never transmits data — the §8.2 many-to-many stress. The flow can
	// never complete; it exists to occupy receiver scheduling state.
	Unresponsive bool
}

// FCT returns the flow completion time (valid once Done).
func (f *Flow) FCT() sim.Time { return f.End - f.Start }

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d %s->%s %dB (%d pkts)", f.ID, f.Src.Name(), f.Dst.Name(), f.Size, f.NPkts)
}
