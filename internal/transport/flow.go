// Package transport provides the machinery shared by all four
// receiver-driven protocol implementations (pHost, Homa, NDP, AMRT):
// flow bookkeeping, packetization, the per-host packet dispatcher,
// received-sequence bitmaps, and completion recording.
package transport

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// Outcome classifies how a flow's life ended (or hasn't yet).
type Outcome uint8

// Flow outcomes, in escalating order of concern. Stalled is advisory —
// the liveness watchdog sets it when a flow makes no forward progress
// for many RTTs with its path administratively up — and a late
// completion overwrites it back to Completed.
const (
	OutcomeRunning Outcome = iota
	OutcomeCompleted
	OutcomeStalled
	OutcomeKilledByCrash
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeRunning:
		return "running"
	case OutcomeCompleted:
		return "completed"
	case OutcomeStalled:
		return "stalled"
	case OutcomeKilledByCrash:
		return "killed-by-crash"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Flow is one message transfer from Src to Dst.
type Flow struct {
	ID    netsim.FlowID
	Src   *netsim.Host
	Dst   *netsim.Host
	Size  int64 // payload bytes
	NPkts int32 // number of data packets (ceil(Size/MSS))

	Start sim.Time // when the sender begins
	End   sim.Time // when the receiver has every packet
	Done  bool

	// Outcome records how the flow ended: Completed via Kernel.Complete,
	// KilledByCrash via Kernel.Abort, Stalled via the liveness watchdog.
	Outcome Outcome
	// LastProgress is the last virtual time a data packet of this flow
	// reached its receiver (zero until the first arrival). The liveness
	// watchdog compares it against the clock to detect stalls.
	LastProgress sim.Time

	// Unresponsive marks a sender that announces the flow (RTS) but
	// never transmits data — the §8.2 many-to-many stress. The flow can
	// never complete; it exists to occupy receiver scheduling state.
	Unresponsive bool
}

// FCT returns the flow completion time (valid once Done).
func (f *Flow) FCT() sim.Time { return f.End - f.Start }

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d %s->%s %dB (%d pkts)", f.ID, f.Src.Name(), f.Dst.Name(), f.Size, f.NPkts)
}
