// Package transport provides the machinery shared by all four
// receiver-driven protocol implementations (pHost, Homa, NDP, AMRT):
// flow bookkeeping, packetization, the per-host packet dispatcher,
// received-sequence bitmaps, and completion recording.
package transport

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// Outcome classifies how a flow's life ended (or hasn't yet).
type Outcome uint8

// Flow outcomes, in escalating order of concern. Stalled is advisory —
// the liveness watchdog sets it when a flow makes no forward progress
// for many RTTs with its path administratively up — and a late
// completion overwrites it back to Completed.
const (
	OutcomeRunning Outcome = iota
	OutcomeCompleted
	OutcomeStalled
	OutcomeKilledByCrash
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeRunning:
		return "running"
	case OutcomeCompleted:
		return "completed"
	case OutcomeStalled:
		return "stalled"
	case OutcomeKilledByCrash:
		return "killed-by-crash"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Flow is one message transfer from Src to Dst.
type Flow struct {
	ID    netsim.FlowID
	Src   *netsim.Host
	Dst   *netsim.Host
	Size  int64 // payload bytes
	NPkts int32 // number of data packets (ceil(Size/MSS))

	Start sim.Time // when the sender begins
	End   sim.Time // when the receiver has every packet
	Done  bool

	// Outcome records how the flow ended: Completed via Kernel.Complete,
	// KilledByCrash via Kernel.Abort, Stalled via the liveness watchdog.
	Outcome Outcome
	// LastProgress is the last virtual time a data packet of this flow
	// reached its receiver (zero until the first arrival). The liveness
	// watchdog compares it against the clock to detect stalls.
	LastProgress sim.Time

	// Unresponsive marks a sender that announces the flow (RTS) but
	// never transmits data — the §8.2 many-to-many stress. The flow can
	// never complete; it exists to occupy receiver scheduling state.
	Unresponsive bool

	// The fields below exist for sharded runs, where the flow object is
	// shared between the sender's and the receiver's engine shards and
	// every field needs exactly one writing side.
	//
	// Ownership: ID/Src/Dst/Size/NPkts/Unresponsive are immutable after
	// setup. The home (receiver) shard owns Done, End, Outcome,
	// LastProgress, Released, and — for dependent flows — Start. The
	// source shard owns SenderStarted, SenderHeard, and SenderDone.
	// Single-shard runs collapse both sides onto one engine and nothing
	// changes.

	// Home is the index of the flow's home shard: the receiver's shard,
	// where completion, progress tracking, and the liveness watchdog run.
	Home int32
	// Released reports that a dependent flow (workload After) has been
	// released by its parent's completion. Non-dependent flows are
	// released at creation.
	Released bool
	// SenderStarted is set on the source shard when the protocol's
	// start event fires — the first announcement or data leaves the
	// host. Crash handlers consult it to distinguish flows with repair
	// work in flight from flows whose start is still scheduled: a
	// receiver that crashes before a flow ever announced needs no
	// re-announce (the pending start event will do it), and triggering
	// one early would move the flow's effective start.
	SenderStarted bool
	// SenderHeard is set on the source shard when any receiver-to-sender
	// control packet (grant, token, pull, ack) reaches the sender — the
	// sender-local proof that its announcement got through, which stops
	// RTS re-announcement.
	SenderHeard bool
	// SenderDone is the completion signal's sender-side shadow of Done,
	// set one network lookahead after the flow completes (or directly by
	// the sender-side crash branch when the flow's source dies). It also
	// stops re-announcement, covering flows so short they finish inside
	// the blind window without a single grant.
	SenderDone bool
}

// FCT returns the flow completion time (valid once Done).
func (f *Flow) FCT() sim.Time { return f.End - f.Start }

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d %s->%s %dB (%d pkts)", f.ID, f.Src.Name(), f.Dst.Name(), f.Size, f.NPkts)
}
