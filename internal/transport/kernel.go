package transport

import (
	"fmt"

	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
)

// Config carries the knobs every protocol shares.
type Config struct {
	// MSS is the data packet payload size; defaults to netsim.MSS.
	MSS int
	// RTT is the base round-trip estimate used for BDP sizing and
	// timeout scheduling.
	RTT sim.Time
	// BlindWindow is the number of packets a new flow sends without
	// waiting for grants; 0 means one bandwidth-delay product.
	BlindWindow int

	// Collector, if non-nil, receives every completed flow.
	Collector *stats.FCTCollector
	// OnDone, if non-nil, is called when a flow completes.
	OnDone func(*Flow)
	// OnData, if non-nil, observes every data packet delivered to its
	// receiver (used by the throughput-over-time figures).
	OnData func(*Flow, *netsim.Packet)

	// Metrics, if non-nil, receives the kernel's flow counters
	// (transport.flows_started / flows_completed / data_bytes_delivered)
	// and each protocol's own instrumentation. Nil disables telemetry
	// at near-zero cost (the counters degrade to nil-safe no-ops).
	Metrics *metrics.Registry

	// Shard, if non-nil, binds the kernel to one engine shard of a
	// partitioned network: all its scheduling runs on that shard's
	// engine. Nil means shard 0 — the only shard of an unpartitioned
	// network, preserving the historical single-engine behaviour.
	Shard *netsim.Shard
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = netsim.MSS
	}
	if c.RTT == 0 {
		c.RTT = 100 * sim.Microsecond
	}
	return c
}

// Kernel is the state every protocol embeds: the network, the shared
// config, the flow table, and the per-host dispatcher.
type Kernel struct {
	Net   *netsim.Network
	Cfg   Config
	Flows map[netsim.FlowID]*Flow

	// ordered lists flows in creation order. Anything that iterates
	// flows and schedules events (crash handling, the liveness watchdog,
	// the auditor's forensic dump) must walk this slice, not the map —
	// map iteration order would break run determinism.
	ordered []*Flow

	nextAutoID netsim.FlowID

	// DataPktsBuilt counts data packets built via NewData — the
	// left-hand side of the grant-budget invariant. UnsolicitedPkts
	// counts the subset each protocol is allowed to send without a
	// grant (blind window, retransmit probes); protocols increment it
	// themselves at each ungranted send.
	DataPktsBuilt   int64
	UnsolicitedPkts int64

	// shard is the engine shard the kernel schedules on (see Config.Shard).
	shard *netsim.Shard

	// telemetry counters; nil (and no-op) without a metrics registry
	mFlowsStarted *metrics.Counter
	mFlowsDone    *metrics.Counter
	mDataBytes    *metrics.Counter
}

// NewKernel initializes a kernel on the given network (on the shard
// named by cfg.Shard, defaulting to shard 0).
func NewKernel(net *netsim.Network, cfg Config) Kernel {
	sh := cfg.Shard
	if sh == nil {
		sh = net.Shard(0)
	}
	k := Kernel{Net: net, Cfg: cfg.withDefaults(), Flows: make(map[netsim.FlowID]*Flow), shard: sh}
	k.mFlowsStarted = cfg.Metrics.Counter("transport.flows_started")
	k.mFlowsDone = cfg.Metrics.Counter("transport.flows_completed")
	k.mDataBytes = cfg.Metrics.Counter("transport.data_bytes_delivered")
	return k
}

// Engine returns the simulation engine of the kernel's shard.
func (k *Kernel) Engine() *sim.Engine { return k.shard.Eng() }

// Shard returns the engine shard the kernel is bound to.
func (k *Kernel) Shard() *netsim.Shard { return k.shard }

// OwnsReceiver reports whether this kernel's shard owns the flow's
// receiver-side state — the home shard that may write Done, End,
// Outcome, and LastProgress. See the field-ownership contract on Flow.
func (k *Kernel) OwnsReceiver(f *Flow) bool { return k.shard.Owns(f.Dst) }

// OwnsSender reports whether this kernel's shard owns the flow's
// sender-side state — the shard that may write SenderHeard and
// SenderDone and drive the RTS re-announce chain.
func (k *Kernel) OwnsSender(f *Flow) bool { return k.shard.Owns(f.Src) }

// Now returns the current virtual time on the kernel's shard.
func (k *Kernel) Now() sim.Time { return k.shard.Eng().Now() }

// NewFlow builds a Flow for the given endpoints, assigning an ID if id
// is zero, and registers it in the flow table.
func (k *Kernel) NewFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *Flow {
	if size <= 0 {
		panic(fmt.Sprintf("transport: flow size %d must be positive", size))
	}
	if src == dst {
		panic("transport: flow source equals destination")
	}
	if id == 0 {
		k.nextAutoID++
		id = -k.nextAutoID // negative auto IDs never collide with caller IDs
	}
	if _, dup := k.Flows[id]; dup {
		panic(fmt.Sprintf("transport: duplicate flow id %d", id))
	}
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size, Start: start,
		NPkts: int32((size + int64(k.Cfg.MSS) - 1) / int64(k.Cfg.MSS)),
	}
	k.Flows[id] = f
	k.ordered = append(k.ordered, f)
	k.mFlowsStarted.Inc()
	return f
}

// Register adds a flow created by another shard's kernel to this
// kernel's flow table (the receiver side of a cross-shard flow). It
// does not count toward flows_started — the creating kernel already
// did. Registering a flow this kernel already holds is a no-op, so
// single-shard setups can run the same adopt path as sharded ones.
func (k *Kernel) Register(f *Flow) {
	if k.Flows[f.ID] == f {
		return
	}
	if _, dup := k.Flows[f.ID]; dup {
		panic(fmt.Sprintf("transport: duplicate flow id %d", f.ID))
	}
	k.Flows[f.ID] = f
	k.ordered = append(k.ordered, f)
}

// OrderedFlows returns the flows in creation order. Callers must not
// mutate the slice; it is the deterministic iteration order for crash
// handling, the liveness watchdog, and forensic dumps.
func (k *Kernel) OrderedFlows() []*Flow { return k.ordered }

// PktSize returns the wire size of data packet seq of flow f: MSS for
// all but a short final packet.
func (k *Kernel) PktSize(f *Flow, seq int32) int {
	if seq == f.NPkts-1 {
		if rem := int(f.Size % int64(k.Cfg.MSS)); rem != 0 {
			return rem
		}
	}
	return k.Cfg.MSS
}

// BDPPkts returns the bandwidth-delay product in MSS packets at rate,
// at least 1.
func (k *Kernel) BDPPkts(rate sim.Rate) int {
	n := int(rate.BytesIn(k.Cfg.RTT)) / k.Cfg.MSS
	if n < 1 {
		n = 1
	}
	return n
}

// BlindPkts returns how many packets flow f may send before any grant:
// the configured blind window (default one BDP at the sender NIC rate),
// capped at the flow length.
func (k *Kernel) BlindPkts(f *Flow) int32 {
	w := k.Cfg.BlindWindow
	if w <= 0 {
		w = k.BDPPkts(f.Src.LinkRate())
	}
	if int32(w) > f.NPkts {
		return f.NPkts
	}
	return int32(w)
}

// NewData builds data packet seq of flow f. CE starts true: the
// anti-ECN convention initializes the bit to "spare bandwidth" and
// switches AND their observations in (protocols without markers simply
// ignore it). The packet comes from the shared pool; the network
// recycles it on delivery or drop.
func (k *Kernel) NewData(f *Flow, seq int32, prio uint8) *netsim.Packet {
	p := netsim.NewPacket()
	p.Flow, p.Type, p.Seq = f.ID, netsim.Data, seq
	p.Size, p.Prio = k.PktSize(f, seq), prio
	p.Src, p.Dst = f.Src.ID(), f.Dst.ID()
	p.CE, p.FlowSize = true, f.Size
	k.DataPktsBuilt++
	return p
}

// DataPacketsSent returns the number of data packets built so far —
// the spend side of the audit grant-budget ledger.
func (k *Kernel) DataPacketsSent() int64 { return k.DataPktsBuilt }

// NewCtrl builds a control packet of the given type for flow f.
// toSender directs it at the flow source (grants, tokens, pulls);
// otherwise at the flow destination (RTS). The packet comes from the
// shared pool; the network recycles it on delivery or drop.
func (k *Kernel) NewCtrl(typ netsim.PacketType, f *Flow, seq int32, toSender bool) *netsim.Packet {
	p := netsim.NewPacket()
	p.Flow, p.Type, p.Seq = f.ID, typ, seq
	p.Size, p.Prio = netsim.ControlSize, netsim.PrioControl
	p.FlowSize = f.Size
	if toSender {
		p.Src, p.Dst = f.Dst.ID(), f.Src.ID()
	} else {
		p.Src, p.Dst = f.Src.ID(), f.Dst.ID()
	}
	return p
}

// Complete marks f done at the current time and reports it.
func (k *Kernel) Complete(f *Flow) {
	if f.Done {
		panic(fmt.Sprintf("transport: %v completed twice", f))
	}
	f.Done = true
	f.End = k.Now()
	f.Outcome = OutcomeCompleted // a late finish overrides a stall report
	k.mFlowsDone.Inc()
	if c := k.Cfg.Collector; c != nil {
		c.Add(f.Size, f.Start, f.End)
	}
	if k.Cfg.OnDone != nil {
		k.Cfg.OnDone(f)
	}
	// Shadow the completion on the sender side: one lookahead later the
	// sender's shard sets SenderDone under the deterministic signal key,
	// giving sender-local code (the RTS re-announce chain, crash
	// handling) a flag it can read without touching home-shard state. On
	// one shard the self-signal has the same latency and order, so the
	// flag's trajectory is partition-independent.
	k.shard.Signal(f.Dst, f.Src, func() { f.SenderDone = true })
}

// Abort terminates f without completing it: the flow is marked Done
// with Outcome KilledByCrash and is excluded from FCT collection and
// the OnDone hook. Protocols call it when a crash destroys an
// endpoint's state beyond recovery; only the kernel owning the flow's
// receiver side may call it (the sender-side instance sets SenderDone
// in its own crash branch instead — see the ownership contract on
// Flow). Aborting an already-done flow is a no-op.
func (k *Kernel) Abort(f *Flow) {
	if f.Done {
		return
	}
	f.Done = true
	f.End = k.Now()
	f.Outcome = OutcomeKilledByCrash
}

// DeliverData notes forward progress and runs the OnData hook.
// Resumed progress clears a watchdog stall report.
func (k *Kernel) DeliverData(f *Flow, pkt *netsim.Packet) {
	f.LastProgress = k.Now()
	if f.Outcome == OutcomeStalled {
		f.Outcome = OutcomeRunning
	}
	k.mDataBytes.Add(int64(pkt.Size))
	if k.Cfg.OnData != nil {
		k.Cfg.OnData(f, pkt)
	}
}

// Dispatcher fans a host's deliveries out to sender-side and
// receiver-side handlers. Install installs it as the host handler.
type Dispatcher struct {
	// Kernel, if non-nil, lets the dispatcher mark Flow.SenderHeard on
	// every sender-bound delivery — the sender-local signal that stops
	// RTS re-announcement without reading receiver-shard state.
	Kernel *Kernel
	// ToSender handles packets addressed to the flow sender (grants,
	// tokens, pulls, acks, nacks).
	ToSender func(pkt *netsim.Packet)
	// ToReceiver handles packets addressed to the flow receiver (data,
	// headers, RTS).
	ToReceiver func(pkt *netsim.Packet)
}

// Install sets d as h's packet handler.
func (d Dispatcher) Install(h *netsim.Host) {
	h.Handler = func(pkt *netsim.Packet) {
		switch pkt.Type {
		case netsim.Data, netsim.Header, netsim.RTS:
			d.ToReceiver(pkt)
		default:
			if d.Kernel != nil {
				if f := d.Kernel.Flows[pkt.Flow]; f != nil {
					f.SenderHeard = true
				}
			}
			d.ToSender(pkt)
		}
	}
}
