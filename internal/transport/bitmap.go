package transport

// Bitmap tracks which data packets of a flow have been received. The
// zero value is unusable; create with NewBitmap.
type Bitmap struct {
	words []uint64
	n     int32 // capacity in bits
	set   int32 // number of set bits
}

// NewBitmap returns a bitmap for n packets.
func NewBitmap(n int32) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks bit i and reports whether it was newly set.
func (b *Bitmap) Set(i int32) bool {
	if i < 0 || i >= b.n {
		return false
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.set++
	return true
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int32) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(uint64(1)<<(uint(i)%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int32 { return b.set }

// Len returns the capacity in bits.
func (b *Bitmap) Len() int32 { return b.n }

// Full reports whether every bit is set.
func (b *Bitmap) Full() bool { return b.set == b.n }

// NextClear returns the first clear bit at or after from, or -1 if none.
func (b *Bitmap) NextClear(from int32) int32 {
	for i := from; i < b.n; i++ {
		w := b.words[i/64]
		if w == ^uint64(0) {
			// Skip the rest of a fully set word.
			i = (i/64+1)*64 - 1
			continue
		}
		if w&(uint64(1)<<(uint(i)%64)) == 0 {
			return i
		}
	}
	return -1
}
