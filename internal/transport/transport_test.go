package transport

import (
	"testing"
	"testing/quick"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 || b.Full() {
		t.Fatal("fresh bitmap state wrong")
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("Set returned false for new bits")
	}
	if b.Set(64) {
		t.Error("double Set should report false")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d", b.Count())
	}
	if !b.Get(64) || b.Get(63) {
		t.Error("Get wrong")
	}
	if b.Set(-1) || b.Set(130) {
		t.Error("out-of-range Set should report false")
	}
	if b.Get(-1) || b.Get(130) {
		t.Error("out-of-range Get should report false")
	}
}

func TestBitmapNextClear(t *testing.T) {
	b := NewBitmap(200)
	for i := int32(0); i < 150; i++ {
		b.Set(i)
	}
	if got := b.NextClear(0); got != 150 {
		t.Errorf("NextClear(0) = %d, want 150", got)
	}
	b.Set(150)
	if got := b.NextClear(100); got != 151 {
		t.Errorf("NextClear(100) = %d, want 151", got)
	}
	for i := int32(151); i < 200; i++ {
		b.Set(i)
	}
	if got := b.NextClear(0); got != -1 {
		t.Errorf("NextClear on full = %d", got)
	}
	if !b.Full() {
		t.Error("bitmap should be full")
	}
}

func TestBitmapNextClearProperty(t *testing.T) {
	f := func(setBits []uint16, from uint16) bool {
		const n = 512
		b := NewBitmap(n)
		model := map[int32]bool{}
		for _, s := range setBits {
			i := int32(s % n)
			b.Set(i)
			model[i] = true
		}
		start := int32(from % n)
		got := b.NextClear(start)
		for i := start; i < n; i++ {
			if !model[i] {
				return got == i
			}
		}
		return got == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPacerSpacing(t *testing.T) {
	e := sim.NewEngine()
	var emissions []sim.Time
	budget := 5
	p := NewPacer(e, 10*sim.Microsecond, func() bool {
		if budget == 0 {
			return false
		}
		budget--
		emissions = append(emissions, e.Now())
		return true
	})
	e.Schedule(0, p.Kick)
	e.RunAll()
	if len(emissions) != 5 {
		t.Fatalf("emitted %d, want 5", len(emissions))
	}
	if emissions[0] != 0 {
		t.Errorf("first emission at %v, want immediate", emissions[0])
	}
	for i := 1; i < len(emissions); i++ {
		if d := emissions[i] - emissions[i-1]; d != 10*sim.Microsecond {
			t.Errorf("spacing %v, want 10µs", d)
		}
	}
}

func TestPacerIdleThenResume(t *testing.T) {
	e := sim.NewEngine()
	var emissions []sim.Time
	ready := false
	p := NewPacer(e, 10*sim.Microsecond, func() bool {
		if !ready {
			return false
		}
		ready = false
		emissions = append(emissions, e.Now())
		return true
	})
	e.Schedule(0, p.Kick) // goes idle immediately
	e.Schedule(100*sim.Microsecond, func() { ready = true; p.Kick() })
	// Resume long after the last emission: should fire immediately.
	e.Schedule(500*sim.Microsecond, func() { ready = true; p.Kick() })
	e.RunAll()
	if len(emissions) != 2 {
		t.Fatalf("emitted %d, want 2", len(emissions))
	}
	if emissions[0] != 100*sim.Microsecond || emissions[1] != 500*sim.Microsecond {
		t.Errorf("emissions at %v", emissions)
	}
}

func TestPacerEnforcesMinimumGap(t *testing.T) {
	e := sim.NewEngine()
	var emissions []sim.Time
	ready := 0
	p := NewPacer(e, 10*sim.Microsecond, func() bool {
		if ready == 0 {
			return false
		}
		ready--
		emissions = append(emissions, e.Now())
		return true
	})
	// Two kicks 1µs apart: second emission must wait for the tick.
	e.Schedule(0, func() { ready++; p.Kick() })
	e.Schedule(sim.Microsecond, func() { ready++; p.Kick() })
	e.RunAll()
	if len(emissions) != 2 {
		t.Fatalf("emitted %d", len(emissions))
	}
	if emissions[1] != 10*sim.Microsecond {
		t.Errorf("second emission at %v, want 10µs", emissions[1])
	}
}

func TestPacerZeroTickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero tick did not panic")
		}
	}()
	NewPacer(sim.NewEngine(), 0, func() bool { return false })
}

func newKernelHosts() (*netsim.Network, *netsim.Host, *netsim.Host) {
	n := netsim.New()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("s")
	n.Connect(a, sw, 10*sim.Gbps, 0, nil, nil)
	n.Connect(b, sw, 10*sim.Gbps, 0, nil, nil)
	sw.AddRoute(a.ID(), sw.Ports()[0])
	sw.AddRoute(b.ID(), sw.Ports()[1])
	return n, a, b
}

func TestKernelFlowPacketization(t *testing.T) {
	n, a, b := newKernelHosts()
	k := NewKernel(n, Config{})
	f := k.NewFlow(1, a, b, 3001, 0)
	if f.NPkts != 3 {
		t.Fatalf("NPkts = %d, want 3", f.NPkts)
	}
	if k.PktSize(f, 0) != 1500 || k.PktSize(f, 1) != 1500 || k.PktSize(f, 2) != 1 {
		t.Errorf("packet sizes: %d %d %d", k.PktSize(f, 0), k.PktSize(f, 1), k.PktSize(f, 2))
	}
	exact := k.NewFlow(2, a, b, 3000, 0)
	if exact.NPkts != 2 || k.PktSize(exact, 1) != 1500 {
		t.Error("exact multiple mis-packetized")
	}
}

func TestKernelBDPAndBlind(t *testing.T) {
	n, a, b := newKernelHosts()
	k := NewKernel(n, Config{RTT: 100 * sim.Microsecond})
	if got := k.BDPPkts(10 * sim.Gbps); got != 83 {
		// 125000 bytes / 1500 = 83.3 → 83 full packets
		t.Errorf("BDPPkts = %d, want 83", got)
	}
	small := k.NewFlow(1, a, b, 3000, 0)
	if k.BlindPkts(small) != 2 {
		t.Errorf("blind window should cap at flow length")
	}
	k2 := NewKernel(n, Config{RTT: 100 * sim.Microsecond, BlindWindow: 10})
	big := k2.NewFlow(1, a, b, 1_000_000, 0)
	if k2.BlindPkts(big) != 10 {
		t.Errorf("configured blind window not honored")
	}
}

func TestKernelValidation(t *testing.T) {
	n, a, b := newKernelHosts()
	k := NewKernel(n, Config{})
	for _, fn := range []func(){
		func() { k.NewFlow(5, a, b, 0, 0) },  // zero size
		func() { k.NewFlow(6, a, a, 10, 0) }, // self flow
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid flow did not panic")
				}
			}()
			fn()
		}()
	}
	k.NewFlow(7, a, b, 10, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate id did not panic")
		}
	}()
	k.NewFlow(7, a, b, 10, 0)
}

func TestKernelAutoID(t *testing.T) {
	n, a, b := newKernelHosts()
	k := NewKernel(n, Config{})
	f1 := k.NewFlow(0, a, b, 10, 0)
	f2 := k.NewFlow(0, a, b, 10, 0)
	if f1.ID == f2.ID {
		t.Error("auto IDs collide")
	}
	if f1.ID >= 0 || f2.ID >= 0 {
		t.Error("auto IDs should be negative to avoid caller collisions")
	}
}

func TestKernelCompleteRecords(t *testing.T) {
	n, a, b := newKernelHosts()
	col := stats.NewFCTCollector()
	var done *Flow
	k := NewKernel(n, Config{Collector: col, OnDone: func(f *Flow) { done = f }})
	f := k.NewFlow(1, a, b, 1500, 0)
	n.Engine.Schedule(50, func() { k.Complete(f) })
	n.Engine.RunAll()
	if !f.Done || f.End != 50 {
		t.Errorf("completion state wrong: done=%v end=%v", f.Done, f.End)
	}
	if col.Count() != 1 || done != f {
		t.Error("collector/OnDone not invoked")
	}
	defer func() {
		if recover() == nil {
			t.Error("double completion did not panic")
		}
	}()
	k.Complete(f)
}

func TestDispatcherRouting(t *testing.T) {
	_, a, _ := newKernelHosts()
	var toSender, toReceiver []netsim.PacketType
	Dispatcher{
		ToSender:   func(p *netsim.Packet) { toSender = append(toSender, p.Type) },
		ToReceiver: func(p *netsim.Packet) { toReceiver = append(toReceiver, p.Type) },
	}.Install(a)
	for _, typ := range []netsim.PacketType{netsim.Data, netsim.RTS, netsim.Header, netsim.Grant, netsim.Token, netsim.Pull, netsim.Ack, netsim.Nack} {
		a.Receive(&netsim.Packet{Type: typ, Size: 64})
	}
	if len(toReceiver) != 3 || len(toSender) != 5 {
		t.Errorf("routing split %d/%d, want 3/5", len(toReceiver), len(toSender))
	}
}

func TestFlowString(t *testing.T) {
	n, a, b := newKernelHosts()
	k := NewKernel(n, Config{})
	f := k.NewFlow(3, a, b, 4500, 0)
	if got := f.String(); got != "flow 3 a->b 4500B (3 pkts)" {
		t.Errorf("String() = %q", got)
	}
}
