package netsim

import (
	"fmt"
	"math/rand"

	"amrt/internal/sim"
)

// Network owns the nodes and links of one simulation and the engine that
// drives them. It also keeps global delivery and drop counters used by
// conservation checks in tests.
type Network struct {
	Engine *sim.Engine

	hosts    []*Host
	switches []*Switch
	nextID   NodeID

	// Delivered counts packets handed to hosts; Dropped counts packets
	// rejected by any queue. DroppedByType breaks drops down per packet
	// type.
	Delivered     int64
	Dropped       int64
	DroppedByType [numPacketTypes]int64

	// Injected counts packets entering the network through Host.Send;
	// OnWire counts packets currently between a dequeue and the far end
	// of their link (serializing or propagating). Together with the
	// queue occupancies they close the conservation identity the audit
	// subsystem checks continuously:
	//
	//	Injected == Delivered + Dropped + Σ queue.Len() + OnWire
	//
	// Both are plain int64 increments on paths that already touch the
	// network's counters, so the accounting is free when auditing is off.
	Injected int64
	OnWire   int64

	// NoRouteDrops counts packets dropped at a switch because every
	// equal-cost route to the destination was administratively down
	// (fault injection). Included in Dropped.
	NoRouteDrops int64

	// DropHook, if non-nil, observes every dropped packet (used by
	// loss-injection tests and drop traces).
	DropHook func(pkt *Packet)

	// jitterMax, when positive, adds a uniform random 0..jitterMax delay
	// to every packet delivery (see SetJitter).
	jitterMax sim.Time
	jitterRNG *rand.Rand

	// ecmpSalt perturbs every switch's ECMP hash (see SetECMPSalt). Zero
	// — the default — reproduces the historical path assignment exactly.
	ecmpSalt uint64
}

// New returns an empty network on a fresh engine.
func New() *Network {
	return &Network{Engine: sim.NewEngine()}
}

// NewHost adds a host. The name is diagnostic only.
func (n *Network) NewHost(name string) *Host {
	h := &Host{id: n.nextID, name: name, net: n}
	n.nextID++
	n.hosts = append(n.hosts, h)
	return h
}

// NewSwitch adds a switch.
func (n *Network) NewSwitch(name string) *Switch {
	s := &Switch{id: n.nextID, name: name, net: n, routes: make(map[NodeID][]*Port)}
	n.nextID++
	n.switches = append(n.switches, s)
	return s
}

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// AttachPort creates an egress port on from, pointing at to, with the
// given link parameters and queue, and registers it with the owning
// node. Host ports become the host NIC (a host has exactly one).
func (n *Network) AttachPort(from, to Node, rate sim.Rate, delay sim.Time, q Queue) *Port {
	if q == nil {
		q = NewDropTail(0)
	}
	p := &Port{
		name:  fmt.Sprintf("%s->%s", from.Name(), to.Name()),
		owner: from,
		net:   n,
		queue: q,
		link:  Link{Rate: rate, Delay: delay, To: to},
	}
	switch node := from.(type) {
	case *Host:
		if node.nic != nil {
			panic(fmt.Sprintf("netsim: host %s already has a NIC", node.name))
		}
		node.nic = p
	case *Switch:
		node.ports = append(node.ports, p)
	default:
		panic("netsim: unknown node type")
	}
	return p
}

// Connect creates the two unidirectional ports of a full-duplex link
// between a and b, using qa for a's egress queue and qb for b's. Either
// queue may be nil for an unbounded drop-tail.
func (n *Network) Connect(a, b Node, rate sim.Rate, delay sim.Time, qa, qb Queue) (ab, ba *Port) {
	ab = n.AttachPort(a, b, rate, delay, qa)
	ba = n.AttachPort(b, a, rate, delay, qb)
	return ab, ba
}

// Run drives the engine until the horizon.
func (n *Network) Run(until sim.Time) sim.Time { return n.Engine.Run(until) }

func (n *Network) noteDrop(pkt *Packet) {
	n.Dropped++
	n.DroppedByType[pkt.Type]++
	if n.DropHook != nil {
		n.DropHook(pkt)
	}
}

func (n *Network) noteDeliver(*Packet) { n.Delivered++ }

func (n *Network) noteNoRoute(pkt *Packet) {
	n.NoRouteDrops++
	n.noteDrop(pkt)
}

// SetJitter adds a seeded uniform random delay in (0, max] to every
// packet delivery, modelling store-and-forward processing variance.
// Perfectly periodic traffic otherwise phase-locks against deterministic
// drop-tail queues (the classic simulation artifact where one of two
// synchronized senders loses every drop race); a few tens of
// nanoseconds break the lock without perturbing timing-sensitive
// behaviour. Keep max below the smallest packet serialization time so
// per-link packet order is preserved.
//
// The stream is drawn from the sim package's seeded RNG constructor, so
// jitter participates in the same determinism contract as every other
// stochastic component. Callers that share one run seed across several
// consumers should namespace it with sim.SubSeed before passing it in;
// SetJitter itself uses the seed as given, preserving the draw sequence
// of existing scenarios.
func (n *Network) SetJitter(max sim.Time, seed int64) {
	n.jitterMax = max
	n.jitterRNG = sim.NewRNG(seed)
}

func (n *Network) jitter() sim.Time {
	if n.jitterMax <= 0 {
		return 0
	}
	return sim.Time(n.jitterRNG.Int63n(int64(n.jitterMax))) + 1
}

// SetECMPSalt replaces the network-wide ECMP hash salt. Every switch
// folds the salt into its per-flow path choice, so changing it mid-run
// moves multipath flows onto freshly chosen equal-cost paths — the
// fault layer's Rehash event. The default salt of zero preserves the
// pre-salt hash values bit-for-bit, keeping historical golden traces
// valid.
func (n *Network) SetECMPSalt(salt uint64) { n.ecmpSalt = salt }

// ECMPSalt returns the current ECMP hash salt.
func (n *Network) ECMPSalt() uint64 { return n.ecmpSalt }
