package netsim

import (
	"fmt"

	"amrt/internal/sim"
)

// Network owns the nodes and links of one simulation and the engine (or,
// after Partition, engines) that drive them. Delivery, drop, and
// conservation counters live on the Shard structs; on an unpartitioned
// network there is exactly one shard and the Network accessors read it
// directly.
type Network struct {
	// Engine is shard 0's engine. On an unpartitioned network it is the
	// only engine and drives everything, which is the golden single-core
	// reference path; after Partition it remains valid as the shard-0
	// engine (pre-run setup code schedules on it; subsystems that span
	// the partition — the fault layer — schedule on each owning shard's
	// engine instead).
	Engine *sim.Engine

	hosts    []*Host
	switches []*Switch
	nextID   NodeID

	// shards holds the engine shards; exactly one until Partition.
	shards []*Shard
	// minDelay is the smallest link propagation delay — the conservative
	// lookahead of the sharded runtime (computed at Partition).
	minDelay sim.Time
	// nextLinkID numbers ports in creation order; the per-link arrival
	// keys fold it in, so the numbering must be identical however the
	// network is later partitioned (it is: topology construction order
	// does not depend on the shard count).
	nextLinkID uint64

	// jitterMax, when positive, adds a uniform random 0..jitterMax delay
	// to every packet delivery (see SetJitter). The draws come from
	// per-port streams sub-seeded from jitterSeed, so they are
	// independent of event interleaving and of the shard count.
	jitterMax  sim.Time
	jitterSeed int64

	// BarrierHook, if non-nil, runs on the coordinator goroutine at every
	// window barrier of a sharded run, after outboxes have drained and
	// while every shard goroutine is parked — the only points during a
	// multi-shard run where whole-network state may be read consistently.
	// The experiment runner hangs its global grant-budget audit here. Not
	// called on single-shard runs, which have no barriers.
	BarrierHook func()
}

// Shard is one engine's partition of the network: the hosts, switches,
// and ports assigned to it, its engine, and its slice of the global
// accounting. On an unpartitioned network the single shard 0 holds
// everything. The exported counters mirror the pre-shard Network fields;
// the Network accessors sum them across shards.
type Shard struct {
	idx int
	net *Network
	eng *sim.Engine

	// Delivered counts packets handed to this shard's hosts; Dropped
	// counts packets rejected by any of its queues. DroppedByType breaks
	// drops down per packet type.
	Delivered     int64
	Dropped       int64
	DroppedByType [numPacketTypes]int64

	// Injected counts packets entering the network through this shard's
	// hosts; OnWire counts packets between a dequeue on this shard and
	// either the far end of an intra-shard link or the end of
	// serialization on a cross-shard link. PipedOut counts packets handed
	// to another shard (they leave OnWire when serialization completes);
	// PipedIn counts packets received from another shard. The per-shard
	// conservation identity the audit subsystem checks is
	//
	//	Injected + PipedIn == Delivered + Dropped + Σ queue.Len() + OnWire + PipedOut
	//
	// which on one shard (PipedOut == PipedIn == 0) reduces to the
	// original network-wide identity.
	Injected int64
	OnWire   int64
	PipedOut int64
	PipedIn  int64

	// NoRouteDrops counts packets dropped at a switch because every
	// equal-cost route to the destination was administratively down
	// (fault injection). Included in Dropped.
	NoRouteDrops int64

	// DropHook, if non-nil, observes every packet dropped on this shard
	// (used by loss-injection tests and drop traces). It runs on the
	// shard's goroutine.
	DropHook func(pkt *Packet)

	// out[d] buffers deliveries and signals bound for shard d, recorded
	// during a window and drained into d's engine at the next barrier.
	// No lock: the owning shard appends between barriers, the
	// coordinator drains at barriers, and the barrier channels order the
	// two.
	out [][]xrec

	// pairSeq numbers signal records per (source node, destination node)
	// pair; see SignalKey.
	pairSeq map[uint64]uint32

	// ecmpSalt is this shard's copy of the network ECMP hash salt (see
	// Network.SetECMPSalt). Each shard's switches hash with their own
	// copy, so a mid-run rotation — the fault layer's Rehash event —
	// can be applied by one same-instant event per shard without any
	// cross-shard read. Setup-time writes go through the Network, which
	// keeps every copy equal.
	ecmpSalt uint64

	// stopped is set by the windowed runtime when this shard's engine
	// interrupt fired.
	stopped bool
}

// Index returns the shard's index in Network.Shards.
func (s *Shard) Index() int { return s.idx }

// Eng returns the shard's engine.
func (s *Shard) Eng() *sim.Engine { return s.eng }

// Network returns the owning network.
func (s *Shard) Network() *Network { return s.net }

// xrec is one cross-shard record: an event to schedule on the target
// shard at a timestamped, deterministically keyed position.
type xrec struct {
	at  sim.Time
	key uint64
	fn  func()
}

// New returns an empty network on a fresh engine, with a single shard.
func New() *Network {
	n := &Network{Engine: sim.NewEngine()}
	n.shards = []*Shard{{idx: 0, net: n, eng: n.Engine}}
	return n
}

// Shards returns the engine shards (length 1 until Partition).
func (n *Network) Shards() []*Shard { return n.shards }

// Shard returns shard i.
func (n *Network) Shard(i int) *Shard { return n.shards[i] }

// NumShards returns the number of engine shards.
func (n *Network) NumShards() int { return len(n.shards) }

// MinLinkDelay returns the smallest link propagation delay seen at
// Partition time — the lookahead window of the sharded runtime (0 before
// Partition).
func (n *Network) MinLinkDelay() sim.Time { return n.minDelay }

// Delivered sums packets handed to hosts across all shards.
func (n *Network) Delivered() int64 {
	var t int64
	for _, s := range n.shards {
		t += s.Delivered
	}
	return t
}

// Dropped sums packets rejected by any queue across all shards.
func (n *Network) Dropped() int64 {
	var t int64
	for _, s := range n.shards {
		t += s.Dropped
	}
	return t
}

// DroppedOfType sums drops of one packet type across all shards.
func (n *Network) DroppedOfType(t PacketType) int64 {
	var v int64
	for _, s := range n.shards {
		v += s.DroppedByType[t]
	}
	return v
}

// Injected sums packets entering through Host.Send across all shards.
func (n *Network) Injected() int64 {
	var t int64
	for _, s := range n.shards {
		t += s.Injected
	}
	return t
}

// OnWire sums packets currently serializing or propagating, plus — via
// the PipedOut/PipedIn difference — packets in flight between shards.
func (n *Network) OnWire() int64 {
	var t int64
	for _, s := range n.shards {
		t += s.OnWire + s.PipedOut - s.PipedIn
	}
	return t
}

// NoRouteDrops sums no-route drops across all shards.
func (n *Network) NoRouteDrops() int64 {
	var t int64
	for _, s := range n.shards {
		t += s.NoRouteDrops
	}
	return t
}

// Executed sums dispatched events across all shard engines; ExecutedLate
// sums the observer-band subset (see sim.Engine).
func (n *Network) Executed() (total, late uint64) {
	for _, s := range n.shards {
		total += s.eng.Executed
		late += s.eng.ExecutedLate
	}
	return total, late
}

// SetDropHook installs fn as every shard's drop observer (single-shard
// callers can also set Shard.DropHook directly).
func (n *Network) SetDropHook(fn func(pkt *Packet)) {
	for _, s := range n.shards {
		s.DropHook = fn
	}
}

// NewHost adds a host. The name is diagnostic only.
func (n *Network) NewHost(name string) *Host {
	h := &Host{id: n.nextID, name: name, net: n, shard: n.shards[0]}
	n.nextID++
	n.hosts = append(n.hosts, h)
	return h
}

// NewSwitch adds a switch.
func (n *Network) NewSwitch(name string) *Switch {
	s := &Switch{id: n.nextID, name: name, net: n, shard: n.shards[0], routes: make(map[NodeID][]*Port)}
	n.nextID++
	n.switches = append(n.switches, s)
	return s
}

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// AttachPort creates an egress port on from, pointing at to, with the
// given link parameters and queue, and registers it with the owning
// node. Host ports become the host NIC (a host has exactly one).
func (n *Network) AttachPort(from, to Node, rate sim.Rate, delay sim.Time, q Queue) *Port {
	if q == nil {
		q = NewDropTail(0)
	}
	p := &Port{
		name:   fmt.Sprintf("%s->%s", from.Name(), to.Name()),
		owner:  from,
		net:    n,
		shard:  shardOf(from),
		queue:  q,
		link:   Link{Rate: rate, Delay: delay, To: to},
		linkID: n.nextLinkID,
	}
	if p.linkID >= 1<<linkIDBits {
		panic("netsim: too many ports for the arrival key space")
	}
	n.nextLinkID++
	switch node := from.(type) {
	case *Host:
		if node.nic != nil {
			panic(fmt.Sprintf("netsim: host %s already has a NIC", node.name))
		}
		node.nic = p
	case *Switch:
		node.ports = append(node.ports, p)
	default:
		panic("netsim: unknown node type")
	}
	return p
}

// Owns reports whether node is assigned to this shard.
func (s *Shard) Owns(node Node) bool { return shardOf(node) == s }

// shardOf returns the shard a node is assigned to.
func shardOf(node Node) *Shard {
	switch v := node.(type) {
	case *Host:
		return v.shard
	case *Switch:
		return v.shard
	}
	panic("netsim: unknown node type")
}

// Connect creates the two unidirectional ports of a full-duplex link
// between a and b, using qa for a's egress queue and qb for b's. Either
// queue may be nil for an unbounded drop-tail.
func (n *Network) Connect(a, b Node, rate sim.Rate, delay sim.Time, qa, qb Queue) (ab, ba *Port) {
	ab = n.AttachPort(a, b, rate, delay, qa)
	ba = n.AttachPort(b, a, rate, delay, qb)
	return ab, ba
}

// Partition splits the network across nshards engine shards. assign maps
// every node ID to a shard index in [0, nshards); the conventional
// assignment (hosts with their ToR, other switches round-robin) is
// computed by the experiment runner, but any assignment is correct —
// the synchronization lookahead is the global minimum link delay, so no
// partition can leak an event into a shard's past.
//
// Partition must run after the topology is built and before any traffic
// or protocol state is created: counters must still be zero and no
// events may be pending, because nothing is migrated. Shard 0 keeps the
// network's original engine; the others get fresh engines of the same
// default scheduler kind. Calling it with nshards == 1 is a no-op.
func (n *Network) Partition(nshards int, assign func(Node) int) {
	if nshards <= 1 {
		return
	}
	if len(n.shards) != 1 {
		panic("netsim: network already partitioned")
	}
	if n.Engine.Executed != 0 || n.Engine.Pending() != 0 || n.Injected() != 0 {
		panic("netsim: Partition must run on a quiet, freshly built network")
	}
	n.minDelay = n.minLinkDelay()
	if n.minDelay <= 0 {
		panic("netsim: sharded execution needs every link delay > 0 (zero lookahead)")
	}
	shards := make([]*Shard, nshards)
	shards[0] = n.shards[0]
	for i := 1; i < nshards; i++ {
		// New shards inherit shard 0's ECMP salt so a salt set before
		// Partition stays network-wide.
		shards[i] = &Shard{idx: i, net: n, eng: sim.NewEngine(), ecmpSalt: shards[0].ecmpSalt}
	}
	for _, s := range shards {
		s.out = make([][]xrec, nshards)
		s.pairSeq = make(map[uint64]uint32)
	}
	n.shards = shards
	place := func(node Node, sh *Shard) {
		switch v := node.(type) {
		case *Host:
			v.shard = sh
			if v.nic != nil {
				v.nic.shard = sh
			}
		case *Switch:
			v.shard = sh
			for _, p := range v.ports {
				p.shard = sh
			}
		}
	}
	for _, h := range n.hosts {
		idx := assign(h)
		if idx < 0 || idx >= nshards {
			panic(fmt.Sprintf("netsim: host %s assigned to shard %d of %d", h.name, idx, nshards))
		}
		place(h, shards[idx])
	}
	for _, sw := range n.switches {
		idx := assign(sw)
		if idx < 0 || idx >= nshards {
			panic(fmt.Sprintf("netsim: switch %s assigned to shard %d of %d", sw.name, idx, nshards))
		}
		place(sw, shards[idx])
	}
}

// minLinkDelay scans every port's link delay.
func (n *Network) minLinkDelay() sim.Time {
	min := sim.Time(0)
	seen := false
	scan := func(p *Port) {
		if p == nil {
			return
		}
		if !seen || p.link.Delay < min {
			min, seen = p.link.Delay, true
		}
	}
	for _, h := range n.hosts {
		scan(h.nic)
	}
	for _, sw := range n.switches {
		for _, p := range sw.ports {
			scan(p)
		}
	}
	return min
}

func (s *Shard) noteDrop(pkt *Packet) {
	s.Dropped++
	s.DroppedByType[pkt.Type]++
	if s.DropHook != nil {
		s.DropHook(pkt)
	}
}

func (s *Shard) noteDeliver(*Packet) { s.Delivered++ }

func (s *Shard) noteNoRoute(pkt *Packet) {
	s.NoRouteDrops++
	s.noteDrop(pkt)
}

// SetJitter adds a seeded uniform random delay in (0, max] to every
// packet delivery, modelling store-and-forward processing variance.
// Perfectly periodic traffic otherwise phase-locks against deterministic
// drop-tail queues (the classic simulation artifact where one of two
// synchronized senders loses every drop race); a few tens of
// nanoseconds break the lock without perturbing timing-sensitive
// behaviour. Keep max below the smallest packet serialization time so
// per-link packet order is preserved.
//
// Each port draws from its own stream sub-seeded from seed and the port
// name, so the draw a delivery sees depends only on that link's own
// packet sequence — never on event interleaving across links — which
// keeps jitter identical across scheduler kinds and shard counts.
func (n *Network) SetJitter(max sim.Time, seed int64) {
	n.jitterMax = max
	n.jitterSeed = seed
}

// SetECMPSalt replaces the network-wide ECMP hash salt. Every switch
// folds the salt into its per-flow path choice, so changing it mid-run
// moves multipath flows onto freshly chosen equal-cost paths — the
// fault layer's Rehash event. The default salt of zero preserves the
// pre-salt hash values bit-for-bit, keeping historical golden traces
// valid. The salt is stored per shard; this setter writes every copy
// and is therefore a setup-time (or single-shard) operation — mid-run
// rotation on a partitioned network goes through Shard.SetECMPSalt,
// one same-instant event per shard.
func (n *Network) SetECMPSalt(salt uint64) {
	for _, s := range n.shards {
		s.ecmpSalt = salt
	}
}

// ECMPSalt returns shard 0's copy of the ECMP hash salt (all copies are
// equal outside the instant a sharded Rehash event is applying).
func (n *Network) ECMPSalt() uint64 { return n.shards[0].ecmpSalt }

// SetECMPSalt replaces this shard's copy of the ECMP hash salt. The
// fault layer's Rehash event calls it from a same-instant event on
// every shard, so all switches — whichever shard owns them — hash with
// the new salt from the same virtual time onward, without any shard
// reading another's state. Call only from the shard's own goroutine.
func (s *Shard) SetECMPSalt(salt uint64) { s.ecmpSalt = salt }
