// Package netsim implements a deterministic packet-level network
// simulator: packets, queues (drop-tail, strict-priority, NDP-style
// trimming), egress ports with serialization and propagation delay,
// switches with ECMP forwarding, hosts, the AMRT anti-ECN egress marker,
// and per-port monitors.
//
// The simulator is store-and-forward. Each egress port serializes one
// packet at a time at the link rate, then the link adds its propagation
// delay before the packet is delivered to the next node. All state is
// owned by a single sim.Engine and must be driven from one goroutine.
package netsim

import (
	"fmt"
	"sync"

	"amrt/internal/sim"
)

// NodeID identifies a host or switch within a Network.
type NodeID int32

// FlowID identifies a flow end-to-end. ECMP hashes it, so packets of one
// flow follow one path.
type FlowID int64

// PacketType distinguishes data from the control packets the four
// transports use.
type PacketType uint8

// Packet types. Control packets (everything but Data) are ControlSize
// bytes on the wire and travel at the highest priority.
const (
	Data   PacketType = iota // payload-carrying packet
	RTS                      // request-to-send, announces a new flow and its size
	Grant                    // receiver-driven trigger (AMRT, Homa)
	Token                    // pHost per-packet token
	Pull                     // NDP pull
	Ack                      // per-packet acknowledgment
	Nack                     // NDP: trimmed-packet notification from receiver
	Header                   // NDP: a Data packet whose payload was trimmed
	numPacketTypes
)

var packetTypeNames = [numPacketTypes]string{
	"DATA", "RTS", "GRANT", "TOKEN", "PULL", "ACK", "NACK", "HEADER",
}

// String returns the conventional name of the packet type.
func (t PacketType) String() string {
	if int(t) < len(packetTypeNames) {
		return packetTypeNames[t]
	}
	return fmt.Sprintf("PacketType(%d)", uint8(t))
}

// Wire sizes in bytes.
const (
	// MSS is the maximum segment size used both for full data packets
	// and, per the paper, as the reference size in the anti-ECN marking
	// rule regardless of the actual packet length.
	MSS = 1500
	// ControlSize is the wire size of control packets (grants, tokens,
	// pulls, RTS, ACK/NACK) and of trimmed NDP headers.
	ControlSize = 64
)

// Priority levels. Queues serve lower levels first.
const (
	PrioControl   uint8 = 0 // grants, tokens, pulls, RTS, trimmed headers
	PrioHigh      uint8 = 1 // e.g. Homa unscheduled data
	PrioData      uint8 = 2 // regular data
	NumPriorities       = 3
)

// Packet is a simulated packet. Packets are passed by pointer and owned
// by exactly one queue or link at a time; transports allocate them (via
// NewPacket) and receivers consume them.
//
// Packets are pooled. The simulator recycles a packet as soon as its
// journey ends: right after the destination host's Handler returns, or
// at the drop site for packets a queue rejects (after the DropHook, if
// any, has run). Handlers, OnData callbacks, and drop hooks therefore
// must not retain a *Packet past their own return — copy the struct (or
// the fields needed) instead.
type Packet struct {
	Flow FlowID
	Type PacketType
	Seq  int32 // data packet index within the flow (0-based)
	Size int   // bytes on the wire
	Prio uint8 // strict-priority level, 0 highest

	Src, Dst NodeID // source and destination hosts

	// CE is the anti-ECN congestion-experienced bit. Per the paper the
	// sender initializes it to 1 (spare bandwidth assumed); each egress
	// port ANDs in its own observation, so it survives end-to-end only
	// if every hop saw an idle gap of at least one MSS.
	CE bool

	// Echo is the ECN-Echo flag on grants: the receiver copies the CE
	// bit of the data packet that triggered the grant.
	Echo bool

	// Count is the number of data packets a grant authorizes (Homa
	// bursts several; AMRT encodes 1 or GrantBurst via Echo instead).
	Count int16

	// Trimmed marks an NDP data packet whose payload was cut; only the
	// header is forwarded and the receiver must request retransmission.
	Trimmed bool

	// FlowSize carries the total flow length in bytes on RTS and
	// first-window data packets so the receiver can size its state.
	FlowSize int64

	// Demand is the sender-advertised backlog in bytes — data queued at
	// the sender but not yet handed to the NIC — piggybacked on RTS and
	// data packets by sender-informed transports (SIRD). Receivers use
	// the latest advertisement to weight credit allocation; protocols
	// that do not advertise leave it zero.
	Demand int64

	// SentAt is the time the packet was first enqueued at its source
	// host NIC; used for latency accounting.
	SentAt sim.Time

	// Hops counts switch traversals, for path-length assertions.
	Hops int8
}

// packetPool recycles Packets. A sync.Pool rather than a per-network
// free list because experiment.Parallel runs independent simulations on
// worker goroutines that all allocate from it; within one simulation
// every Get/Put happens on the engine goroutine.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed Packet from the pool. Callers fill it and
// hand it to Host.Send (or a Port/Node directly); ownership then belongs
// to the network until the packet is delivered or dropped, at which
// point the simulator releases it back to the pool.
func NewPacket() *Packet { return packetPool.Get().(*Packet) }

// ReleasePacket zeroes pkt and returns it to the pool. Only the current
// owner may release; the simulator calls this at the delivery and drop
// recycle points, so transports and tests normally never need to.
func ReleasePacket(pkt *Packet) {
	*pkt = Packet{}
	packetPool.Put(pkt)
}

// IsControl reports whether the packet occupies a control (highest)
// priority level: every type except full data packets, plus trimmed
// headers.
func (p *Packet) IsControl() bool { return p.Type != Data || p.Trimmed }

// String formats a packet compactly for logs and test failures.
func (p *Packet) String() string {
	flags := ""
	if p.CE {
		flags += " CE"
	}
	if p.Echo {
		flags += " ECHO"
	}
	if p.Trimmed {
		flags += " TRIM"
	}
	return fmt.Sprintf("%s f%d #%d %dB %d->%d%s", p.Type, p.Flow, p.Seq, p.Size, p.Src, p.Dst, flags)
}
