package netsim

import "amrt/internal/sim"

// PortMonitor accumulates transmitted bytes and queue-occupancy
// watermarks for one egress port. Attach it with Port.Monitor = ...;
// experiment code samples and resets it on its own schedule.
type PortMonitor struct {
	rate sim.Rate

	// cumulative transmitted bytes since construction
	totalBytes int64
	// window accumulator since the last ResetWindow
	windowBytes int64
	windowStart sim.Time

	// Queue occupancy extremes and a time-weighted running sum for the
	// mean, observed at enqueue instants and transmission completions.
	MaxQueueLen   int
	MaxQueueBytes int
	lenTimeSum    float64 // ∫ len dt
	lastLen       int
	lastObserved  sim.Time
}

// NewPortMonitor returns a monitor for a port whose link runs at rate.
func NewPortMonitor(rate sim.Rate) *PortMonitor {
	return &PortMonitor{rate: rate}
}

// Attach creates a monitor for p, installs it, and returns it.
func Attach(p *Port) *PortMonitor {
	m := NewPortMonitor(p.Link().Rate)
	p.Monitor = m
	return m
}

func (m *PortMonitor) noteTx(bytes int64, now sim.Time) {
	m.totalBytes += bytes
	m.windowBytes += bytes
}

func (m *PortMonitor) noteQueue(q Queue, now sim.Time) {
	l := q.Len()
	if l > m.MaxQueueLen {
		m.MaxQueueLen = l
	}
	if b := q.Bytes(); b > m.MaxQueueBytes {
		m.MaxQueueBytes = b
	}
	m.lenTimeSum += float64(m.lastLen) * float64(now-m.lastObserved)
	m.lastLen = l
	m.lastObserved = now
}

// TotalBytes returns bytes transmitted since construction.
func (m *PortMonitor) TotalBytes() int64 { return m.totalBytes }

// WindowBytes returns bytes transmitted since the last ResetWindow.
func (m *PortMonitor) WindowBytes() int64 { return m.windowBytes }

// Utilization returns the fraction of link capacity used in the current
// window, in [0, ~1]. now must not precede the window start.
func (m *PortMonitor) Utilization(now sim.Time) float64 {
	d := now - m.windowStart
	if d <= 0 {
		return 0
	}
	cap := float64(m.rate.BytesIn(d))
	if cap <= 0 {
		return 0
	}
	u := float64(m.windowBytes) / cap
	return u
}

// ResetWindow starts a new measurement window at now.
func (m *PortMonitor) ResetWindow(now sim.Time) {
	m.windowBytes = 0
	m.windowStart = now
}

// MeanQueueLen returns the time-weighted mean queue length over the
// observation period ending at now.
func (m *PortMonitor) MeanQueueLen(now sim.Time) float64 {
	total := m.lenTimeSum + float64(m.lastLen)*float64(now-m.lastObserved)
	if now <= 0 {
		return 0
	}
	return total / float64(now)
}
