package netsim

import (
	"amrt/internal/metrics"
	"amrt/internal/sim"
)

// RegisterMetrics publishes p's telemetry into reg under the prefix
// "port.<name>.": instantaneous queue depth (packets and bytes),
// per-interval link utilization, cumulative transmit and drop
// counters, and — when the port carries an AntiECNMarker — the
// anti-ECN mark counters and per-interval mark rate. It reuses the
// port's existing PortMonitor or attaches one, and returns it; a nil
// registry just ensures the monitor exists.
//
// The utilization series consumes the monitor's measurement window
// (each sample reads and resets it), so callers that also poll
// Utilization/ResetWindow by hand should not register the same port.
func (p *Port) RegisterMetrics(reg *metrics.Registry) *PortMonitor {
	m := p.Monitor
	if m == nil {
		m = Attach(p)
	}
	if reg == nil {
		return m
	}
	prefix := "port." + p.name + "."
	reg.Series(prefix+"queue_pkts", func(sim.Time) float64 { return float64(p.queue.Len()) })
	reg.Series(prefix+"queue_bytes", func(sim.Time) float64 { return float64(p.queue.Bytes()) })
	reg.Series(prefix+"util", func(now sim.Time) float64 {
		u := m.Utilization(now)
		m.ResetWindow(now)
		return u
	})
	reg.CounterFunc(prefix+"tx_bytes", func() int64 { return p.TxBytes })
	reg.CounterFunc(prefix+"tx_packets", func() int64 { return p.TxPackets })
	reg.CounterFunc(prefix+"drops", func() int64 { return p.Drops })
	reg.Series(prefix+"admin_up", func(sim.Time) float64 {
		if p.down {
			return 0
		}
		return 1
	})
	if mk, ok := p.Marker.(*AntiECNMarker); ok {
		mk.RegisterMetrics(reg, prefix)
	}
	return m
}

// RegisterMetrics publishes the marker's cumulative mark counters and
// its per-interval mark rate (packets that left with CE set over
// packets observed, per sampling interval) under prefix.
func (m *AntiECNMarker) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"ce_marked", func() int64 { return m.Marked })
	reg.CounterFunc(prefix+"ce_observed", func() int64 { return m.Observed })
	reg.Series(prefix+"mark_rate", metrics.RatioOf(
		func() int64 { return m.Marked },
		func() int64 { return m.Observed }))
}

// RegisterMetrics publishes this shard's delivery and drop counters
// (with a per-packet-type drop breakdown) into reg. The names carry no
// shard suffix: when per-shard registries are merged after a sharded
// run, same-named counters sum, so the merged dump holds the network
// totals — identical to what a single-shard run registers directly.
func (s *Shard) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("net.delivered", func() int64 { return s.Delivered })
	reg.CounterFunc("net.dropped", func() int64 { return s.Dropped })
	reg.CounterFunc("net.no_route_drops", func() int64 { return s.NoRouteDrops })
	for t := PacketType(0); t < numPacketTypes; t++ {
		t := t
		reg.CounterFunc("net.dropped."+t.String(),
			func() int64 { return s.DroppedByType[t] })
	}
}

// RegisterMetrics publishes the network's delivery and drop counters
// into reg. It is the single-registry path: it registers shard 0's
// counters and is only correct on an unpartitioned network (sharded
// runs register each Shard into its own registry and merge).
func (n *Network) RegisterMetrics(reg *metrics.Registry) {
	n.shards[0].RegisterMetrics(reg)
}
