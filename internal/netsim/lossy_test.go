package netsim

import (
	"math"
	"testing"
)

func TestLossyQueueDropRate(t *testing.T) {
	q := NewLossy(NewDropTail(0), 0.3, 42)
	const n = 20000
	accepted := 0
	for i := int32(0); i < n; i++ {
		if q.Enqueue(dataPkt(1, i, MSS), 0) {
			accepted++
		}
	}
	got := 1 - float64(accepted)/n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("observed drop rate %.3f, want ~0.3", got)
	}
	if q.Injected != int64(n-accepted) {
		t.Errorf("Injected = %d, want %d", q.Injected, n-accepted)
	}
	if q.Len() != accepted {
		t.Errorf("inner queue holds %d, want %d", q.Len(), accepted)
	}
}

func TestLossyQueueSparesControlAndTrimmed(t *testing.T) {
	q := NewLossy(NewDropTail(0), 1.0, 1) // drop every data packet
	if q.Enqueue(dataPkt(1, 0, MSS), 0) {
		t.Error("data packet survived 100% loss")
	}
	if !q.Enqueue(ctrlPkt(Grant), 0) {
		t.Error("control packet dropped by loss injector")
	}
	trimmed := dataPkt(1, 1, ControlSize)
	trimmed.Trimmed = true
	if !q.Enqueue(trimmed, 0) {
		t.Error("trimmed header dropped by loss injector")
	}
}

func TestLossyQueueDeterministic(t *testing.T) {
	run := func() []bool {
		q := NewLossy(NewDropTail(0), 0.5, 7)
		out := make([]bool, 100)
		for i := range out {
			out[i] = q.Enqueue(dataPkt(1, int32(i), MSS), 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different drop pattern")
		}
	}
}

func TestLossyQueueDelegates(t *testing.T) {
	inner := NewDropTail(2)
	q := NewLossy(inner, 0, 1)
	p1, p2, p3 := dataPkt(1, 0, 100), dataPkt(1, 1, 100), dataPkt(1, 2, 100)
	if !q.Enqueue(p1, 0) || !q.Enqueue(p2, 0) {
		t.Fatal("zero-loss wrapper rejected packets")
	}
	if q.Enqueue(p3, 0) {
		t.Error("inner capacity not enforced")
	}
	if q.Bytes() != 200 {
		t.Errorf("Bytes = %d", q.Bytes())
	}
	if got := q.Dequeue(); got != p1 {
		t.Error("FIFO order broken through wrapper")
	}
}
