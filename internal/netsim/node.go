package netsim

import (
	"fmt"

	"amrt/internal/sim"
)

// Node is anything a link can terminate at: a host or a switch.
type Node interface {
	// Receive delivers a packet that finished propagating on a link.
	Receive(pkt *Packet)
	// ID returns the node's network-unique identifier.
	ID() NodeID
	// Name returns the diagnostic name.
	Name() string
}

// Host is an end system with a single NIC. Transport endpoints register a
// Handler to consume delivered packets and use Send to emit packets into
// the NIC queue.
type Host struct {
	id   NodeID
	name string
	net  *Network
	// shard is the engine shard this host runs on (see Network.Partition);
	// always shard 0 on an unpartitioned network.
	shard *Shard
	nic   *Port

	// Handler consumes packets addressed to this host. Exactly one
	// transport owns a host at a time.
	Handler func(pkt *Packet)

	// RxPackets and RxBytes count deliveries.
	RxPackets int64
	RxBytes   int64
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

// NIC returns the host's single egress port. It is nil until the host is
// connected to a switch.
func (h *Host) NIC() *Port { return h.nic }

// Shard returns the engine shard this host is assigned to — the shard
// whose goroutine owns all of the host's state. Fault-plan events that
// touch the host are homed here.
func (h *Host) Shard() *Shard { return h.shard }

// LinkRate returns the host NIC's link rate.
func (h *Host) LinkRate() sim.Rate { return h.nic.link.Rate }

// Send enqueues a packet on the host NIC.
func (h *Host) Send(pkt *Packet) {
	if h.nic == nil {
		panic(fmt.Sprintf("netsim: host %s is not connected", h.name))
	}
	pkt.SentAt = h.shard.eng.Now()
	h.shard.Injected++
	h.nic.Send(pkt)
}

// Receive implements Node. The packet's journey ends here: once the
// Handler returns, the packet is recycled into the pool, so handlers
// must not retain it (see Packet).
func (h *Host) Receive(pkt *Packet) {
	h.RxPackets++
	h.RxBytes += int64(pkt.Size)
	h.shard.noteDeliver(pkt)
	if h.Handler != nil {
		h.Handler(pkt)
	}
	ReleasePacket(pkt)
}

// Switch forwards packets toward destination hosts using per-destination
// next-hop sets; when several equal-cost ports exist, one is chosen by a
// deterministic ECMP hash of the flow ID so each flow follows one path.
type Switch struct {
	id   NodeID
	name string
	net  *Network
	// shard is the engine shard this switch runs on (see
	// Network.Partition); always shard 0 on an unpartitioned network.
	shard  *Shard
	ports  []*Port
	routes map[NodeID][]*Port
}

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Node.
func (s *Switch) Name() string { return s.name }

// Ports returns the switch's egress ports in creation order.
func (s *Switch) Ports() []*Port { return s.ports }

// Shard returns the engine shard this switch is assigned to — the shard
// whose goroutine owns the switch, its ports, and its queues.
func (s *Switch) Shard() *Shard { return s.shard }

// AddRoute registers an equal-cost egress port for a destination host.
func (s *Switch) AddRoute(dst NodeID, p *Port) {
	s.routes[dst] = append(s.routes[dst], p)
}

// Routes returns the candidate egress ports for a destination.
func (s *Switch) Routes(dst NodeID) []*Port { return s.routes[dst] }

// Receive implements Node: ECMP-forward toward the packet destination,
// failing over to the surviving equal-cost routes when some are
// administratively down. A flow pinned to a dead path by the ECMP hash
// is re-hashed over the live subset, and moves back when the path
// recovers; with no live route at all the packet is dropped (and
// counted in Network.NoRouteDrops).
func (s *Switch) Receive(pkt *Packet) {
	cands := s.routes[pkt.Dst]
	if len(cands) == 0 {
		panic(fmt.Sprintf("netsim: switch %s has no route to host %d (packet %v)", s.name, pkt.Dst, pkt))
	}
	up := 0
	for _, c := range cands {
		if !c.down {
			up++
		}
	}
	switch {
	case up == 0:
		s.shard.noteNoRoute(pkt)
		ReleasePacket(pkt)
	case up == len(cands):
		// Fast path: all routes live, hash over the full set so paths
		// are stable while nothing is failing.
		if len(cands) == 1 {
			cands[0].Send(pkt)
			return
		}
		cands[ecmpHash(pkt.Flow, s.id, s.shard.ecmpSalt)%uint64(len(cands))].Send(pkt)
	default:
		idx := int(ecmpHash(pkt.Flow, s.id, s.shard.ecmpSalt) % uint64(up))
		for _, c := range cands {
			if c.down {
				continue
			}
			if idx == 0 {
				c.Send(pkt)
				return
			}
			idx--
		}
	}
}

// ecmpHash mixes the flow ID with the switch ID (splitmix64 finalizer) so
// that successive switches make independent choices, avoiding the
// polarization a shared hash would cause. salt is the network-wide ECMP
// seed (see Network.SetECMPSalt): XORed in before the finalizer, so a
// zero salt leaves the historical path assignment bit-for-bit unchanged
// and a rotation re-randomizes every multipath decision at once.
func ecmpHash(flow FlowID, sw NodeID, salt uint64) uint64 {
	z := uint64(flow)*0x9e3779b97f4a7c15 + uint64(uint32(sw)) ^ salt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
