package netsim

import (
	"testing"
	"testing/quick"
)

func dataPkt(flow FlowID, seq int32, size int) *Packet {
	return &Packet{Flow: flow, Type: Data, Seq: seq, Size: size, Prio: PrioData, CE: true}
}

func ctrlPkt(t PacketType) *Packet {
	return &Packet{Type: t, Size: ControlSize, Prio: PrioControl}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(10)
	for i := int32(0); i < 5; i++ {
		if !q.Enqueue(dataPkt(1, i, MSS), 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	if q.Bytes() != 5*MSS {
		t.Fatalf("Bytes = %d, want %d", q.Bytes(), 5*MSS)
	}
	for i := int32(0); i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty queue should return nil")
	}
}

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(3)
	for i := int32(0); i < 3; i++ {
		if !q.Enqueue(dataPkt(1, i, MSS), 0) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if q.Enqueue(dataPkt(1, 3, MSS), 0) {
		t.Fatal("enqueue above capacity accepted")
	}
	q.Dequeue()
	if !q.Enqueue(dataPkt(1, 4, MSS), 0) {
		t.Fatal("enqueue after dequeue rejected")
	}
}

func TestDropTailUnbounded(t *testing.T) {
	q := NewDropTail(0)
	for i := int32(0); i < 10000; i++ {
		if !q.Enqueue(dataPkt(1, i, 100), 0) {
			t.Fatal("unbounded queue rejected a packet")
		}
	}
	if q.Len() != 10000 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestFIFOCompaction(t *testing.T) {
	q := NewDropTail(0)
	// Interleave pushes and pops far beyond the compaction threshold; the
	// byte count and ordering must survive compaction.
	seq := int32(0)
	next := int32(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 7; i++ {
			q.Enqueue(dataPkt(1, seq, 10), 0)
			seq++
		}
		for i := 0; i < 6; i++ {
			p := q.Dequeue()
			if p.Seq != next {
				t.Fatalf("got seq %d, want %d", p.Seq, next)
			}
			next++
		}
	}
	if q.Bytes() != q.Len()*10 {
		t.Fatalf("bytes %d inconsistent with len %d", q.Bytes(), q.Len())
	}
}

func TestPriorityQueueStrictOrder(t *testing.T) {
	q := NewPriority(0)
	lo := dataPkt(1, 0, MSS)
	hi := ctrlPkt(Grant)
	mid := dataPkt(1, 1, MSS)
	mid.Prio = PrioHigh
	q.Enqueue(lo, 0)
	q.Enqueue(hi, 0)
	q.Enqueue(mid, 0)
	if p := q.Dequeue(); p != hi {
		t.Fatalf("first dequeue = %v, want control", p)
	}
	if p := q.Dequeue(); p != mid {
		t.Fatalf("second dequeue = %v, want high", p)
	}
	if p := q.Dequeue(); p != lo {
		t.Fatalf("third dequeue = %v, want data", p)
	}
}

func TestPriorityQueuePerLevelCaps(t *testing.T) {
	q := NewPriority(2, 1, 1)
	if !q.Enqueue(ctrlPkt(Grant), 0) || !q.Enqueue(ctrlPkt(Grant), 0) {
		t.Fatal("control enqueue rejected below cap")
	}
	if q.Enqueue(ctrlPkt(Grant), 0) {
		t.Fatal("control enqueue above cap accepted")
	}
	if !q.Enqueue(dataPkt(1, 0, MSS), 0) {
		t.Fatal("data enqueue rejected below cap")
	}
	if q.Enqueue(dataPkt(1, 1, MSS), 0) {
		t.Fatal("data enqueue above cap accepted")
	}
	if q.LevelLen(PrioControl) != 2 || q.LevelLen(PrioData) != 1 {
		t.Fatalf("level lengths control=%d data=%d", q.LevelLen(PrioControl), q.LevelLen(PrioData))
	}
}

func TestPriorityQueueCapDefaulting(t *testing.T) {
	// A single cap applies to all levels.
	q := NewPriority(1)
	if !q.Enqueue(ctrlPkt(Grant), 0) {
		t.Fatal("control rejected")
	}
	if !q.Enqueue(dataPkt(1, 0, MSS), 0) {
		t.Fatal("data rejected")
	}
	if q.Enqueue(dataPkt(1, 1, MSS), 0) {
		t.Fatal("data above defaulted cap accepted")
	}
}

func TestPriorityQueueClampsOutOfRangePrio(t *testing.T) {
	q := NewPriority(0)
	p := dataPkt(1, 0, MSS)
	p.Prio = 200
	if !q.Enqueue(p, 0) {
		t.Fatal("out-of-range priority rejected")
	}
	if q.LevelLen(NumPriorities-1) != 1 {
		t.Fatal("out-of-range priority not clamped to lowest level")
	}
}

func TestTrimmingQueueTrimsAboveThreshold(t *testing.T) {
	q := NewTrimming(2, 100)
	for i := int32(0); i < 2; i++ {
		if !q.Enqueue(dataPkt(1, i, MSS), 0) {
			t.Fatal("data rejected below trim threshold")
		}
	}
	over := dataPkt(1, 2, MSS)
	if !q.Enqueue(over, 0) {
		t.Fatal("packet above threshold should be trimmed, not dropped")
	}
	if !over.Trimmed || over.Size != ControlSize || over.Prio != PrioControl {
		t.Fatalf("trim did not rewrite packet: %+v", over)
	}
	if q.Trims != 1 {
		t.Fatalf("Trims = %d, want 1", q.Trims)
	}
	// Trimmed header dequeues before the full data packets.
	if p := q.Dequeue(); p != over {
		t.Fatalf("header should dequeue first, got %v", p)
	}
	if q.DataLen() != 2 {
		t.Fatalf("DataLen = %d, want 2", q.DataLen())
	}
}

func TestTrimmingQueueControlBandCap(t *testing.T) {
	q := NewTrimming(0, 2) // trim every data packet
	if !q.Enqueue(dataPkt(1, 0, MSS), 0) || !q.Enqueue(dataPkt(1, 1, MSS), 0) {
		t.Fatal("trimmed packets rejected below control cap")
	}
	if q.Enqueue(dataPkt(1, 2, MSS), 0) {
		t.Fatal("control band overflow accepted")
	}
	if q.Enqueue(ctrlPkt(Pull), 0) {
		t.Fatal("control packet accepted into full control band")
	}
}

func TestTrimmingQueueControlFirst(t *testing.T) {
	q := NewTrimming(10, 100)
	d := dataPkt(1, 0, MSS)
	q.Enqueue(d, 0)
	c := ctrlPkt(Pull)
	q.Enqueue(c, 0)
	if p := q.Dequeue(); p != c {
		t.Fatalf("control should dequeue before data, got %v", p)
	}
	if p := q.Dequeue(); p != d {
		t.Fatalf("expected data packet, got %v", p)
	}
}

// Property: for any enqueue/dequeue interleaving, a drop-tail queue
// preserves FIFO order and never exceeds capacity.
func TestDropTailProperty(t *testing.T) {
	f := func(ops []bool) bool {
		const cap = 8
		q := NewDropTail(cap)
		var model []int32
		seq := int32(0)
		for _, push := range ops {
			if push {
				ok := q.Enqueue(dataPkt(1, seq, 1), 0)
				if ok != (len(model) < cap) {
					return false
				}
				if ok {
					model = append(model, seq)
				}
				seq++
			} else {
				p := q.Dequeue()
				if len(model) == 0 {
					if p != nil {
						return false
					}
					continue
				}
				if p == nil || p.Seq != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDropTailEnqueueDequeue(b *testing.B) {
	b.ReportAllocs()
	q := NewDropTail(1024)
	p := dataPkt(1, 0, MSS)
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, 0)
		q.Dequeue()
	}
}

func BenchmarkPriorityQueueEnqueueDequeue(b *testing.B) {
	b.ReportAllocs()
	q := NewPriority(1024)
	d := dataPkt(1, 0, MSS)
	c := ctrlPkt(Grant)
	for i := 0; i < b.N; i++ {
		q.Enqueue(d, 0)
		q.Enqueue(c, 0)
		q.Dequeue()
		q.Dequeue()
	}
}
