package netsim

import (
	"fmt"

	"amrt/internal/sim"
)

// This file is the sharded (conservative parallel discrete-event) run
// loop: time-window synchronization with the global minimum link
// propagation delay as lookahead, cross-shard deliveries exchanged
// through per-shard-pair outboxes at barriers, and deterministically
// keyed event ordering so the result is byte-identical to the
// single-engine reference at any shard count. docs/PARALLELISM.md walks
// through the protocol and its proof obligations.

// Arrival-key layout: bits [61:38] the port's creation-order link ID,
// bits [37:0] the per-port delivery counter. Both are pure functions of
// the simulated topology and traffic — never of scheduling order or of
// the partition — so same-time deliveries sort identically at every
// shard count.
const (
	linkSeqBits = 38
	linkIDBits  = 62 - linkSeqBits
)

// Signal-key layout (below sim.SeqSignal): bits [61:41] source node ID,
// bits [40:20] destination node ID, bits [19:0] the per-(src,dst) pair
// counter. Signals order after every arrival of the same instant and
// among themselves by (src, dst, emission order).
const (
	signalSeqBits  = 20
	signalNodeBits = 21
)

// Lookahead returns the global minimum link propagation delay: the
// synchronization window of the sharded runtime and the latency of every
// Signal. It is computed from the full topology on first use (and at
// Partition), so its value — and therefore signal timing — is identical
// at every shard count.
func (n *Network) Lookahead() sim.Time {
	if n.minDelay == 0 {
		n.minDelay = n.minLinkDelay()
	}
	return n.minDelay
}

// Signal schedules fn on the shard owning node to, one lookahead from
// now, ordered by the deterministic (from, to, pair-sequence) signal
// key. It is the cross-shard control channel for layers above netsim
// (the experiment runner's dependent-flow release and completion
// notifications); at one shard it degenerates to a keyed local schedule
// with the same latency, so behaviour does not depend on the shard
// count. Call only from the owning shard of from, during event
// execution.
func (s *Shard) Signal(from, to Node, fn func()) {
	at := s.eng.Now() + s.net.Lookahead()
	key := s.signalKey(from.ID(), to.ID())
	dst := shardOf(to)
	if dst == s {
		s.eng.ScheduleKeyed(at, key, fn)
		return
	}
	s.out[dst.idx] = append(s.out[dst.idx], xrec{at: at, key: key, fn: fn})
}

func (s *Shard) signalKey(from, to NodeID) uint64 {
	if uint64(uint32(from)) >= 1<<signalNodeBits || uint64(uint32(to)) >= 1<<signalNodeBits {
		panic(fmt.Sprintf("netsim: node IDs %d->%d overflow the signal key space", from, to))
	}
	pair := uint64(uint32(from))<<signalNodeBits | uint64(uint32(to))
	seq := uint64(0)
	if s.pairSeq != nil {
		seq = uint64(s.pairSeq[pair])
		if seq >= 1<<signalSeqBits {
			panic(fmt.Sprintf("netsim: signal stream %d->%d overflowed", from, to))
		}
		s.pairSeq[pair] = uint32(seq + 1)
	} else {
		// Unpartitioned network: lazily allocate the counters on shard 0.
		s.pairSeq = map[uint64]uint32{pair: 1}
	}
	return sim.SeqSignal | pair<<signalSeqBits | seq
}

// Run drives the simulation until the horizon (sim.Forever runs to
// quiescence). With one shard this is the single-engine reference path;
// on a partitioned network it runs the conservative time-window loop.
func (n *Network) Run(until sim.Time) sim.Time {
	if len(n.shards) == 1 {
		return n.Engine.Run(until)
	}
	return n.runWindows(until)
}

// runWindows executes lookahead-wide windows on every shard in
// parallel, exchanging cross-shard records at barriers.
//
// Correctness sketch: a window runs each engine to a shared horizon end.
// Every event dispatched inside the window has at > start (the previous
// barrier, or the skip-ahead point), and every record it emits for
// another shard carries at least one link delay — at least the global
// minimum delta — so the record's timestamp exceeds start + delta >= the
// window end. Records exchanged at the barrier therefore never land in
// the receiving shard's past, and the receiving engine's keyed
// comparator puts them exactly where the single-engine run would have
// dispatched them.
func (n *Network) runWindows(until sim.Time) sim.Time {
	delta := n.Lookahead()
	if delta <= 0 {
		panic("netsim: sharded run with zero lookahead")
	}
	cmds := make([]chan sim.Time, len(n.shards))
	done := make(chan struct{}, len(n.shards))
	for i, s := range n.shards {
		c := make(chan sim.Time, 1)
		cmds[i] = c
		go func(s *Shard, c chan sim.Time) {
			for to := range c {
				s.eng.Run(to)
				s.stopped = s.eng.Stopped()
				done <- struct{}{}
			}
		}(s, c)
	}
	defer func() {
		for _, c := range cmds {
			close(c)
		}
	}()

	now := n.Engine.Now()
	for {
		next, any := n.earliestPending()
		if !any {
			if until == sim.Forever {
				return now // quiescent
			}
			next = until // idle to the horizon in one hop
		}
		start := now
		if next-1 > start {
			start = next - 1 // skip-ahead over the idle gap
		}
		end := start + delta
		if until != sim.Forever && end > until {
			end = until
		}
		for i := range cmds {
			cmds[i] <- end
		}
		for range cmds {
			<-done
		}
		now = end
		for _, s := range n.shards {
			if s.stopped {
				return now // interrupt fired; state is abandoned
			}
		}
		for _, s := range n.shards {
			for d, recs := range s.out {
				if len(recs) == 0 {
					continue
				}
				dst := n.shards[d].eng
				for _, r := range recs {
					dst.ScheduleKeyed(r.at, r.key, r.fn)
				}
				s.out[d] = recs[:0]
			}
		}
		if n.BarrierHook != nil {
			n.BarrierHook()
		}
		if until != sim.Forever && now >= until {
			return now
		}
	}
}

// earliestPending returns the smallest lower bound on pending event
// times across all shard engines.
func (n *Network) earliestPending() (sim.Time, bool) {
	var best sim.Time
	any := false
	for _, s := range n.shards {
		if t, ok := s.eng.NextAt(); ok && (!any || t < best) {
			best, any = t, true
		}
	}
	return best, any
}
