package netsim

import (
	"fmt"
	"math/rand"

	"amrt/internal/sim"
)

// Link is the unidirectional wire behind an egress port: a rate and a
// propagation delay toward a destination node.
type Link struct {
	Rate  sim.Rate
	Delay sim.Time
	To    Node
}

// DequeueMarker is invoked at the instant a packet begins transmission on
// an egress port, before serialization. AMRT's anti-ECN marker implements
// it; ports without a marker skip the hook.
type DequeueMarker interface {
	OnDequeue(port *Port, pkt *Packet, now sim.Time)
}

// Port is an egress port: a queue draining onto a link, serializing one
// packet at a time. The zero value is not usable; ports are created by
// Network.Connect.
type Port struct {
	name  string
	owner Node
	net   *Network
	queue Queue
	link  Link

	// shard is the engine shard that owns this port: the owner node's
	// shard. All port state is read and written only from that shard's
	// goroutine.
	shard *Shard
	// linkID is the port's creation-order index; together with linkSeq
	// (the per-port delivery counter) it forms the deterministic arrival
	// key that makes same-instant delivery order independent of the
	// partition. See the key layout in parallel.go.
	linkID  uint64
	linkSeq uint64
	// jitterRNG is the port's private jitter stream, derived from the
	// network jitter seed and the port name so draws are independent of
	// the order ports transmit in (and hence of the shard count).
	jitterRNG *rand.Rand

	// down is the administrative state: a down port parks its queue
	// (the transmitter halts; arriving packets still enqueue subject to
	// the queue's own caps) until it is brought back up. Switch ECMP
	// skips down ports, so only traffic with no surviving route — or
	// traffic already committed to this egress — waits here.
	down bool
	// degraded, when non-zero, replaces the nominal link rate for
	// serialization (fault injection: a flapping optic renegotiating a
	// lower speed).
	degraded sim.Rate

	busy bool
	// lastTxEnd is when the previous transmission finished; the anti-ECN
	// marker compares the current dequeue instant against it to measure
	// the idle gap. everSent distinguishes a genuinely idle port.
	lastTxEnd sim.Time
	everSent  bool

	// Marker, if non-nil, observes every dequeued packet (AMRT).
	Marker DequeueMarker
	// Monitor, if non-nil, accumulates transmitted bytes and queue
	// watermarks for utilization measurements.
	Monitor *PortMonitor

	// TxPackets and TxBytes count completed transmissions.
	TxPackets int64
	TxBytes   int64
	// Drops counts packets rejected by the queue.
	Drops int64
	// Enqueued counts packets the queue accepted; Flushed counts packets
	// discarded by FlushQueue (node crashes, switch reboots). Together
	// with the live occupancy they close the per-port conservation
	// identity the audit subsystem checks:
	//
	//	Enqueued == TxPackets + Flushed + queue.Len() + (busy ? 1 : 0)
	Enqueued int64
	Flushed  int64
}

// Name returns the diagnostic name assigned at creation, e.g. "leaf0->core1".
func (p *Port) Name() string { return p.name }

// Queue exposes the port's buffering discipline (for tests and monitors).
func (p *Port) Queue() Queue { return p.queue }

// Owner returns the node the port transmits for (its egress side).
func (p *Port) Owner() Node { return p.owner }

// Shard returns the engine shard that owns the port — its owner node's
// shard. Administrative actions (SetAdminDown, SetDegradedRate,
// FlushQueue) must run on this shard's goroutine; the fault layer homes
// its per-port events here.
func (p *Port) Shard() *Shard { return p.shard }

// Link returns the attached link parameters.
func (p *Port) Link() Link { return p.link }

// LastTxEnd returns the time the port last finished serializing a packet.
func (p *Port) LastTxEnd() (sim.Time, bool) { return p.lastTxEnd, p.everSent }

// AdminDown reports the administrative state set by SetAdminDown.
func (p *Port) AdminDown() bool { return p.down }

// Busy reports whether a packet is currently serializing on the port.
func (p *Port) Busy() bool { return p.busy }

// FlushQueue discards every packet parked in the port's queue — a node
// crash or switch reboot clearing packet memory. Flushed packets count
// as network drops (conservation holds) and in the port's Flushed
// counter; the packet already serializing, if any, is on the wire and
// unaffected.
func (p *Port) FlushQueue() {
	for {
		pkt := p.queue.Dequeue()
		if pkt == nil {
			return
		}
		p.Flushed++
		p.shard.noteDrop(pkt)
		ReleasePacket(pkt)
	}
}

// SetAdminDown changes the port's administrative state. Taking a port
// down halts its transmitter after the in-flight packet (already on the
// wire) finishes; queued packets park. Bringing it up restarts the
// transmitter immediately.
func (p *Port) SetAdminDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if !down {
		p.trySend()
	}
}

// SetDegradedRate caps the port's serialization rate at r (fault
// injection); a non-positive r restores the nominal link rate.
func (p *Port) SetDegradedRate(r sim.Rate) {
	if r <= 0 {
		p.degraded = 0
	} else {
		p.degraded = r
	}
}

// EffectiveRate returns the rate the port currently serializes at: the
// degraded rate if one is set, else the nominal link rate.
func (p *Port) EffectiveRate() sim.Rate {
	if p.degraded > 0 {
		return p.degraded
	}
	return p.link.Rate
}

// Send enqueues a packet for transmission, dropping it if the queue
// refuses it, and starts the transmitter if idle. A dropped packet is
// recycled into the pool after the drop accounting (and DropHook) runs.
func (p *Port) Send(pkt *Packet) {
	now := p.shard.eng.Now()
	if !p.queue.Enqueue(pkt, now) {
		p.Drops++
		p.shard.noteDrop(pkt)
		ReleasePacket(pkt)
		return
	}
	p.Enqueued++
	if m := p.Monitor; m != nil {
		m.noteQueue(p.queue, now)
	}
	p.trySend()
}

func (p *Port) trySend() {
	if p.busy || p.down {
		return
	}
	pkt := p.queue.Dequeue()
	if pkt == nil {
		return
	}
	sh := p.shard
	eng := sh.eng
	now := eng.Now()
	if p.Marker != nil {
		p.Marker.OnDequeue(p, pkt, now)
	}
	tx := p.EffectiveRate().TxTime(pkt.Size)
	p.busy = true
	sh.OnWire++
	// The completion closure must not touch pkt: at zero propagation
	// delay the delivery below fires at the same instant, and once the
	// destination host recycles the packet its fields are gone.
	size := int64(pkt.Size)
	dst := p.link.To
	dsh := shardOf(dst)
	cross := dsh != sh
	eng.Schedule(tx, func() {
		p.busy = false
		p.lastTxEnd = eng.Now()
		p.everSent = true
		p.TxPackets++
		p.TxBytes += size
		if m := p.Monitor; m != nil {
			m.noteTx(size, eng.Now())
		}
		if cross {
			// Hand wire custody to the destination shard: the packet is
			// "piped out" of this shard's conservation domain and "piped
			// in" on arrival at the other side.
			sh.OnWire--
			sh.PipedOut++
		}
		p.trySend()
	})
	// Deliveries are keyed by (linkID, per-port sequence) so that
	// same-instant arrivals dispatch in an order determined by the
	// topology and traffic alone — identical at every shard count.
	at := now + tx + p.link.Delay + p.jitter()
	if p.linkSeq >= 1<<linkSeqBits {
		panic(fmt.Sprintf("netsim: port %s delivery counter overflowed", p.name))
	}
	key := p.linkID<<linkSeqBits | p.linkSeq
	p.linkSeq++
	if !cross {
		eng.ScheduleKeyed(at, key, func() {
			sh.OnWire--
			pkt.Hops++
			dst.Receive(pkt)
		})
		return
	}
	sh.out[dsh.idx] = append(sh.out[dsh.idx], xrec{at: at, key: key, fn: func() {
		dsh.PipedIn++
		pkt.Hops++
		dst.Receive(pkt)
	}})
}

// jitter draws this port's per-delivery propagation jitter in
// [1, jitterMax], or 0 when jitter is disabled. Each port has its own
// seeded stream so the draw sequence depends only on the port's own
// transmissions.
func (p *Port) jitter() sim.Time {
	max := p.net.jitterMax
	if max <= 0 {
		return 0
	}
	if p.jitterRNG == nil {
		p.jitterRNG = sim.NewRNG(sim.SubSeed(p.net.jitterSeed, "jitter."+p.name))
	}
	return sim.Time(p.jitterRNG.Int63n(int64(max))) + 1
}

// String implements fmt.Stringer.
func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }
