package netsim

import (
	"testing"

	"amrt/internal/sim"
)

// pair builds host A -- switch -- host B with symmetric links.
func pair(t *testing.T, rate sim.Rate, delay sim.Time, qf QueueFactory) (*Network, *Host, *Host, *Switch) {
	t.Helper()
	n := New()
	a := n.NewHost("A")
	b := n.NewHost("B")
	sw := n.NewSwitch("S")
	if qf == nil {
		qf = func() Queue { return NewDropTail(128) }
	}
	n.Connect(a, sw, rate, delay, qf(), qf())
	n.Connect(b, sw, rate, delay, qf(), qf())
	// Switch port 0 goes to A (created by first Connect), port 1 to B.
	sw.AddRoute(a.ID(), sw.Ports()[0])
	sw.AddRoute(b.ID(), sw.Ports()[1])
	return n, a, b, sw
}

func TestStoreAndForwardTiming(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 10*sim.Microsecond, nil)
	var arrived sim.Time
	b.Handler = func(pkt *Packet) { arrived = n.Engine.Now() }
	n.Engine.Schedule(0, func() {
		a.Send(&Packet{Flow: 1, Type: Data, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
	})
	n.Run(sim.Second)
	// 1200ns serialize + 10µs propagate, twice (host->switch, switch->host).
	want := sim.Time(2 * (1200 + 10000))
	if arrived != want {
		t.Errorf("arrival at %v, want %v", arrived, want)
	}
}

func TestSerializationQueuesBackToBack(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 0, nil)
	var arrivals []sim.Time
	b.Handler = func(pkt *Packet) { arrivals = append(arrivals, n.Engine.Now()) }
	n.Engine.Schedule(0, func() {
		for i := int32(0); i < 3; i++ {
			a.Send(&Packet{Flow: 1, Type: Data, Seq: i, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	})
	n.Run(sim.Second)
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(arrivals))
	}
	// With zero propagation delay the switch egress is the pacer: packet i
	// leaves the switch at (i+2)*1200ns... first arrives after two
	// serializations (host + switch), then one per 1200ns.
	if arrivals[0] != 2400 {
		t.Errorf("first arrival %v, want 2400ns", arrivals[0])
	}
	for i := 1; i < 3; i++ {
		if arrivals[i]-arrivals[i-1] != 1200 {
			t.Errorf("inter-arrival %v, want 1200ns", arrivals[i]-arrivals[i-1])
		}
	}
}

func TestDropCountingAndHook(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 0, func() Queue { return NewDropTail(1) })
	var hooked []Packet // copies: the pool reclaims dropped packets after the hook
	n.SetDropHook(func(pkt *Packet) { hooked = append(hooked, *pkt) })
	delivered := 0
	b.Handler = func(pkt *Packet) { delivered++ }
	n.Engine.Schedule(0, func() {
		// Burst of 5 into a queue of 1: first transmits immediately, one
		// queues at the host NIC, rest drop there.
		for i := int32(0); i < 5; i++ {
			a.Send(&Packet{Flow: 1, Type: Data, Seq: i, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	})
	n.Run(sim.Second)
	if delivered != 2 {
		t.Errorf("delivered %d, want 2", delivered)
	}
	if n.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", n.Dropped())
	}
	if n.DroppedOfType(Data) != 3 {
		t.Errorf("DroppedByType[Data] = %d, want 3", n.DroppedOfType(Data))
	}
	if len(hooked) != 3 {
		t.Errorf("DropHook saw %d, want 3", len(hooked))
	}
	if got := a.NIC().Drops; got != 3 {
		t.Errorf("NIC drops = %d, want 3", got)
	}
}

func TestConservationUnderRandomTraffic(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 5*sim.Microsecond, func() Queue { return NewDropTail(4) })
	rng := sim.NewRNG(3)
	sent := 0
	delivered := 0
	b.Handler = func(pkt *Packet) { delivered++ }
	a.Handler = func(pkt *Packet) { delivered++ }
	for i := 0; i < 2000; i++ {
		at := sim.Time(rng.Int63n(int64(2 * sim.Millisecond)))
		src, dst := a, b
		if rng.Intn(2) == 0 {
			src, dst = b, a
		}
		s, d := src, dst
		n.Engine.ScheduleAt(at, func() {
			s.Send(&Packet{Flow: FlowID(rng.Int63()), Type: Data, Size: MSS, Src: s.ID(), Dst: d.ID(), Prio: PrioData})
			sent++
		})
	}
	n.Run(sim.Second)
	if sent != 2000 {
		t.Fatalf("sent %d, want 2000", sent)
	}
	if delivered+int(n.Dropped()) != sent {
		t.Errorf("conservation violated: delivered %d + dropped %d != sent %d", delivered, n.Dropped(), sent)
	}
	if int(n.Delivered()) != delivered {
		t.Errorf("network Delivered=%d, handler count=%d", n.Delivered(), delivered)
	}
}

func TestHostSendWithoutNICPanics(t *testing.T) {
	n := New()
	h := n.NewHost("lonely")
	defer func() {
		if recover() == nil {
			t.Error("Send on unconnected host did not panic")
		}
	}()
	h.Send(&Packet{Type: Data, Size: MSS})
}

func TestSwitchNoRoutePanics(t *testing.T) {
	n := New()
	sw := n.NewSwitch("S")
	defer func() {
		if recover() == nil {
			t.Error("forwarding without a route did not panic")
		}
	}()
	sw.Receive(&Packet{Type: Data, Size: MSS, Dst: 99})
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	// Two equal-cost paths: the same flow must always take the same one.
	n := New()
	a := n.NewHost("A")
	b := n.NewHost("B")
	leaf := n.NewSwitch("leaf")
	core1 := n.NewSwitch("core1")
	core2 := n.NewSwitch("core2")
	leaf2 := n.NewSwitch("leaf2")
	rate, delay := 10*sim.Gbps, sim.Microsecond
	q := func() Queue { return NewDropTail(128) }

	n.Connect(a, leaf, rate, delay, q(), q())
	up1, _ := n.Connect(leaf, core1, rate, delay, q(), q())
	up2, _ := n.Connect(leaf, core2, rate, delay, q(), q())
	d1, _ := n.Connect(core1, leaf2, rate, delay, q(), q())
	d2, _ := n.Connect(core2, leaf2, rate, delay, q(), q())
	down, _ := n.Connect(leaf2, b, rate, delay, q(), q())
	leaf.AddRoute(b.ID(), up1)
	leaf.AddRoute(b.ID(), up2)
	core1.AddRoute(b.ID(), d1)
	core2.AddRoute(b.ID(), d2)
	leaf2.AddRoute(b.ID(), down)

	got := 0
	b.Handler = func(pkt *Packet) { got++ }

	const flows = 512
	perFlowPath := make(map[FlowID]uint64)
	for f := FlowID(0); f < flows; f++ {
		f := f
		n.Engine.Schedule(sim.Time(f)*10*sim.Microsecond, func() {
			before1, before2 := up1.TxPackets, up2.TxPackets
			_ = before1
			_ = before2
			for i := int32(0); i < 3; i++ {
				a.Send(&Packet{Flow: f, Type: Data, Seq: i, Size: 100, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
			}
			perFlowPath[f] = ecmpHash(f, leaf.ID(), 0) % 2
		})
	}
	n.Run(sim.Second)
	if got != flows*3 {
		t.Fatalf("delivered %d, want %d", got, flows*3)
	}
	// Both uplinks should carry a non-trivial share of flows.
	if up1.TxPackets == 0 || up2.TxPackets == 0 {
		t.Errorf("ECMP did not spread: up1=%d up2=%d", up1.TxPackets, up2.TxPackets)
	}
	frac := float64(up1.TxPackets) / float64(up1.TxPackets+up2.TxPackets)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("ECMP badly unbalanced: up1 fraction %.2f", frac)
	}
}

func TestECMPHashStability(t *testing.T) {
	for f := FlowID(0); f < 100; f++ {
		if ecmpHash(f, 7, 0) != ecmpHash(f, 7, 0) {
			t.Fatal("ecmpHash not deterministic")
		}
	}
	// Different switches should choose differently for at least some flows.
	diff := 0
	for f := FlowID(0); f < 100; f++ {
		if ecmpHash(f, 1, 0)%2 != ecmpHash(f, 2, 0)%2 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("hash is polarized across switches")
	}
	// A salt rotation must move some flows to new paths; repeating the
	// same salt must reproduce the same assignment.
	moved := 0
	for f := FlowID(0); f < 100; f++ {
		if ecmpHash(f, 1, 0)%2 != ecmpHash(f, 1, 0xdeadbeef)%2 {
			moved++
		}
		if ecmpHash(f, 1, 0xdeadbeef) != ecmpHash(f, 1, 0xdeadbeef) {
			t.Fatal("salted hash not deterministic")
		}
	}
	if moved == 0 {
		t.Error("rehash salt did not move any flow")
	}
}

func TestPortMonitorUtilization(t *testing.T) {
	n, a, b, sw := pair(t, 10*sim.Gbps, 0, nil)
	_ = a
	mon := Attach(sw.Ports()[1]) // switch egress toward B
	nicMon := Attach(a.NIC())    // the backlog builds at the sender NIC
	b.Handler = func(pkt *Packet) {}
	// Send 100 packets back-to-back: the egress should be ~100% utilized
	// while they drain.
	n.Engine.Schedule(0, func() {
		for i := int32(0); i < 100; i++ {
			a.Send(&Packet{Flow: 1, Type: Data, Seq: i, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	})
	// Window covering exactly the drain period of the switch egress.
	n.Run(sim.Second)
	drainStart := sim.Time(1200) // first packet reaches switch
	drainEnd := drainStart + 100*1200
	_ = drainEnd
	u := float64(mon.WindowBytes()) * 8 / (float64(10*sim.Gbps) * (100 * 1200) / 1e9)
	if u < 0.99 || u > 1.01 {
		t.Errorf("utilization during drain = %.3f, want ~1", u)
	}
	if mon.TotalBytes() != 100*MSS {
		t.Errorf("TotalBytes = %d, want %d", mon.TotalBytes(), 100*MSS)
	}
	if nicMon.MaxQueueLen < 50 {
		t.Errorf("NIC MaxQueueLen = %d, expected a large backlog", nicMon.MaxQueueLen)
	}
	// The switch egress never builds a queue: it drains at its input rate.
	if mon.MaxQueueLen > 2 {
		t.Errorf("switch MaxQueueLen = %d, expected near-zero", mon.MaxQueueLen)
	}
}

func TestPortMonitorWindowReset(t *testing.T) {
	m := NewPortMonitor(10 * sim.Gbps)
	m.noteTx(1250, 0)
	if m.WindowBytes() != 1250 {
		t.Fatalf("WindowBytes = %d", m.WindowBytes())
	}
	// 1250 bytes in 1µs at 10Gbps = exactly capacity.
	if u := m.Utilization(sim.Microsecond); u < 0.99 || u > 1.01 {
		t.Errorf("Utilization = %.3f, want 1", u)
	}
	m.ResetWindow(sim.Microsecond)
	if m.WindowBytes() != 0 {
		t.Error("ResetWindow did not clear window")
	}
	if m.TotalBytes() != 1250 {
		t.Error("ResetWindow must not clear totals")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (int64, int64, uint64) {
		n, a, b, _ := pair(t, 10*sim.Gbps, 5*sim.Microsecond, func() Queue { return NewDropTail(8) })
		rng := sim.NewRNG(11)
		b.Handler = func(pkt *Packet) {}
		for i := 0; i < 500; i++ {
			at := sim.Time(rng.Int63n(int64(sim.Millisecond)))
			n.Engine.ScheduleAt(at, func() {
				a.Send(&Packet{Flow: FlowID(rng.Int63()), Type: Data, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
			})
		}
		n.Run(sim.Second)
		return n.Delivered(), n.Dropped(), n.Engine.Executed
	}
	d1, x1, e1 := run()
	d2, x2, e2 := run()
	if d1 != d2 || x1 != x2 || e1 != e2 {
		t.Errorf("runs diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, x1, e1, d2, x2, e2)
	}
}

func TestHopCounting(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 0, nil)
	var hops int8
	b.Handler = func(pkt *Packet) { hops = pkt.Hops }
	n.Engine.Schedule(0, func() {
		a.Send(&Packet{Flow: 1, Type: Data, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
	})
	n.Run(sim.Second)
	if hops != 2 {
		t.Errorf("Hops = %d, want 2 (host link + switch link)", hops)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Type: Grant, Seq: 7, Size: 64, Src: 1, Dst: 2, Echo: true}
	if got := p.String(); got != "GRANT f3 #7 64B 1->2 ECHO" {
		t.Errorf("String() = %q", got)
	}
	if Data.String() != "DATA" || PacketType(99).String() != "PacketType(99)" {
		t.Error("PacketType.String mismatch")
	}
}
