package netsim

import (
	"testing"
	"testing/quick"

	"amrt/internal/sim"
)

// markerPair builds A -- switch -- B with an anti-ECN marker on the
// switch egress toward B, and returns received packets' CE bits.
func markerPair(t *testing.T) (*Network, *Host, *Host, *AntiECNMarker, *[]bool) {
	t.Helper()
	n, a, b, sw := pair(t, 10*sim.Gbps, 0, nil)
	m := NewAntiECNMarker()
	sw.Ports()[1].Marker = m
	var ces []bool
	b.Handler = func(pkt *Packet) { ces = append(ces, pkt.CE) }
	return n, a, b, m, &ces
}

func sendData(a, b *Host, flow FlowID, seq int32) {
	a.Send(&Packet{Flow: flow, Type: Data, Seq: seq, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData, CE: true})
}

func TestMarkerBackToBackNotMarked(t *testing.T) {
	n, a, b, m, ces := markerPair(t)
	n.Engine.Schedule(0, func() {
		for i := int32(0); i < 10; i++ {
			sendData(a, b, 1, i)
		}
	})
	n.Run(sim.Second)
	if len(*ces) != 10 {
		t.Fatalf("delivered %d", len(*ces))
	}
	// First packet finds an idle egress -> marked. The rest are
	// back-to-back (the host NIC feeds the switch at exactly line rate)
	// so the idle gap is zero and they must not be marked.
	if !(*ces)[0] {
		t.Error("first packet on idle link should keep CE=1")
	}
	for i := 1; i < 10; i++ {
		if (*ces)[i] {
			t.Errorf("back-to-back packet %d marked CE", i)
		}
	}
	if m.Observed != 10 {
		t.Errorf("Observed = %d", m.Observed)
	}
	if m.Marked != 1 {
		t.Errorf("Marked = %d, want 1", m.Marked)
	}
}

func TestMarkerGapGetsMarked(t *testing.T) {
	n, a, b, _, ces := markerPair(t)
	// Packets spaced 3× the MSS serialization time apart: every gap fits
	// at least one more packet, so all should stay marked.
	for i := int32(0); i < 5; i++ {
		i := i
		n.Engine.Schedule(sim.Time(i)*3600, func() { sendData(a, b, 1, i) })
	}
	n.Run(sim.Second)
	for i, ce := range *ces {
		if !ce {
			t.Errorf("spaced packet %d lost CE mark", i)
		}
	}
}

func TestMarkerSubPacketGapNotMarked(t *testing.T) {
	n, a, b, _, ces := markerPair(t)
	// Gap of half a packet time (600ns idle after 1200ns tx): spacing 1800ns.
	for i := int32(0); i < 5; i++ {
		i := i
		n.Engine.Schedule(sim.Time(i)*1800, func() { sendData(a, b, 1, i) })
	}
	n.Run(sim.Second)
	for i, ce := range *ces {
		if i == 0 {
			continue // idle-start packet is marked
		}
		if ce {
			t.Errorf("packet %d with sub-MSS gap kept CE", i)
		}
	}
}

func TestMarkerExactGapBoundary(t *testing.T) {
	n, a, b, _, ces := markerPair(t)
	// Spacing exactly 2×txTime: idle gap == MSS/C, which satisfies >= and
	// must be marked (one more packet fits exactly).
	for i := int32(0); i < 4; i++ {
		i := i
		n.Engine.Schedule(sim.Time(i)*2400, func() { sendData(a, b, 1, i) })
	}
	n.Run(sim.Second)
	for i, ce := range *ces {
		if !ce {
			t.Errorf("packet %d at exact one-MSS gap not marked", i)
		}
	}
}

func TestMarkerIgnoresControlPackets(t *testing.T) {
	n, a, b, sw := pair(t, 10*sim.Gbps, 0, nil)
	m := NewAntiECNMarker()
	sw.Ports()[1].Marker = m
	var got []Packet // copies: delivered packets are recycled after the handler
	b.Handler = func(pkt *Packet) { got = append(got, *pkt) }
	n.Engine.Schedule(0, func() {
		g := &Packet{Flow: 1, Type: Grant, Size: ControlSize, Src: a.ID(), Dst: b.ID(), Prio: PrioControl, CE: true}
		a.Send(g)
	})
	n.Run(sim.Second)
	if m.Observed != 0 {
		t.Errorf("marker observed %d control packets", m.Observed)
	}
	if len(got) != 1 || !got[0].CE {
		t.Error("control packet CE bit must pass through untouched")
	}
}

func TestMarkerANDAcrossHops(t *testing.T) {
	// Chain: A -- s1 -- s2 -- B, markers on both switch egresses toward B.
	// A cross host C injects traffic into s2's egress so the second hop is
	// saturated: packets marked at hop 1 must lose the mark at hop 2.
	n := New()
	a := n.NewHost("A")
	c := n.NewHost("C")
	b := n.NewHost("B")
	s1 := n.NewSwitch("s1")
	s2 := n.NewSwitch("s2")
	rate, q := 10*sim.Gbps, func() Queue { return NewDropTail(1024) }
	n.Connect(a, s1, rate, 0, q(), q())
	p12, _ := n.Connect(s1, s2, rate, 0, q(), q())
	n.Connect(c, s2, rate, 0, q(), q())
	p2b, _ := n.Connect(s2, b, rate, 0, q(), q())
	s1.AddRoute(b.ID(), p12)
	s2.AddRoute(b.ID(), p2b)
	m1 := NewAntiECNMarker()
	m2 := NewAntiECNMarker()
	p12.Marker = m1
	p2b.Marker = m2

	var ces []bool
	b.Handler = func(pkt *Packet) {
		if pkt.Flow == 1 {
			ces = append(ces, pkt.CE)
		}
	}
	// Flow 1 from A: widely spaced (spare at hop 1).
	for i := int32(0); i < 20; i++ {
		i := i
		n.Engine.Schedule(sim.Time(i)*6000, func() { sendData(a, b, 1, i) })
	}
	// Flow 2 from C: line-rate blast keeps s2->B egress saturated.
	n.Engine.Schedule(0, func() {
		for i := int32(0); i < 200; i++ {
			c.Send(&Packet{Flow: 2, Type: Data, Seq: i, Size: MSS, Src: c.ID(), Dst: b.ID(), Prio: PrioData, CE: true})
		}
	})
	n.Run(sim.Second)
	if len(ces) != 20 {
		t.Fatalf("flow 1 delivered %d", len(ces))
	}
	marked := 0
	for _, ce := range ces {
		if ce {
			marked++
		}
	}
	// While C's blast occupies s2 (first 200*1200ns = 240µs, i.e. the
	// first ~40 of flow 1's packets at 6µs spacing — all 20), flow 1 must
	// not stay marked even though hop 1 sees spare bandwidth.
	if marked > 1 { // allow the very first packet before the blast ramps
		t.Errorf("%d/20 packets stayed marked across a saturated second hop", marked)
	}
	if m1.Marked < 19 {
		t.Errorf("hop1 marked %d/20, expected nearly all", m1.Marked)
	}
}

func TestMarkerORModeAblation(t *testing.T) {
	// Same saturated-second-hop setup conceptually, but verify directly on
	// the combine operator.
	p := &Packet{Type: Data, Size: MSS, CE: false}
	m := &AntiECNMarker{RefSize: MSS, GapFactor: 1, Mode: CombineOR}
	port := &Port{net: New(), link: Link{Rate: 10 * sim.Gbps}}
	port.everSent = true
	port.lastTxEnd = 0
	m.OnDequeue(port, p, 5000) // idle 5µs >= 1.2µs
	if !p.CE {
		t.Error("OR mode should set CE on spare bandwidth even if previously cleared")
	}
}

func TestMarkerGapFactorAblation(t *testing.T) {
	port := &Port{net: New(), link: Link{Rate: 10 * sim.Gbps}}
	port.everSent = true
	port.lastTxEnd = 0
	// Gap of 1.2µs: factor 1 marks, factor 2 does not.
	for _, c := range []struct {
		factor float64
		want   bool
	}{{1, true}, {2, false}, {0.5, true}} {
		p := &Packet{Type: Data, Size: MSS, CE: true}
		m := &AntiECNMarker{RefSize: MSS, GapFactor: c.factor, Mode: CombineAND}
		m.OnDequeue(port, p, 1200)
		if p.CE != c.want {
			t.Errorf("factor %.1f: CE=%v, want %v", c.factor, p.CE, c.want)
		}
	}
}

// Property: AND-combining is monotone — a packet that arrives with CE=0
// can never leave marked in AND mode, regardless of the gap.
func TestMarkerANDMonotoneProperty(t *testing.T) {
	f := func(gapNS uint32, startCE bool) bool {
		port := &Port{net: New(), link: Link{Rate: 10 * sim.Gbps}}
		port.everSent = true
		p := &Packet{Type: Data, Size: MSS, CE: startCE}
		m := NewAntiECNMarker()
		m.OnDequeue(port, p, sim.Time(gapNS))
		if !startCE && p.CE {
			return false
		}
		spare := sim.Time(gapNS) >= 1200
		return p.CE == (startCE && spare)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
