package netsim

import (
	"testing"

	"amrt/internal/sim"
)

func TestAdminDownParksAndResumes(t *testing.T) {
	n, a, b, _ := pair(t, 10*sim.Gbps, 0, nil)
	nic := a.NIC()
	delivered := 0
	b.Handler = func(pkt *Packet) { delivered++ }

	// A down NIC parks traffic in its own queue: hosts do not route, so
	// Send enqueues and the halted transmitter simply never drains.
	n.Engine.Schedule(0, func() { nic.SetAdminDown(true) })
	n.Engine.Schedule(sim.Microsecond, func() {
		for i := int32(0); i < 5; i++ {
			a.Send(&Packet{Flow: 1, Type: Data, Seq: i, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	})
	n.Run(sim.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d while the NIC was down, want 0", delivered)
	}
	if !nic.AdminDown() {
		t.Fatal("AdminDown lost state")
	}
	if got := nic.Queue().Len(); got != 5 {
		t.Fatalf("parked %d packets, want 5", got)
	}
	if n.Dropped() != 0 {
		t.Fatalf("down port dropped %d packets; it must park them", n.Dropped())
	}

	n.Engine.ScheduleAt(2*sim.Millisecond, func() { nic.SetAdminDown(false) })
	n.Run(sim.Second)
	if delivered != 5 {
		t.Fatalf("delivered %d after recovery, want 5", delivered)
	}
}

func TestAdminDownFinishesInFlightPacket(t *testing.T) {
	n, a, b, sw := pair(t, 10*sim.Gbps, 0, nil)
	egress := sw.Ports()[1]
	delivered := 0
	b.Handler = func(pkt *Packet) { delivered++ }
	n.Engine.Schedule(0, func() {
		a.Send(&Packet{Flow: 1, Type: Data, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
	})
	// The packet starts serializing on the switch egress at 1200ns; take
	// the port down mid-transmission. The packet is already on the wire
	// and must still arrive.
	n.Engine.ScheduleAt(1800, func() { egress.SetAdminDown(true) })
	n.Run(sim.Second)
	if delivered != 1 {
		t.Fatalf("in-flight packet was lost by SetAdminDown: delivered %d", delivered)
	}
}

// ecmpPairNet builds the two-path topology of
// TestECMPDeterministicPerFlow and returns its pieces.
func ecmpPairNet(t *testing.T) (n *Network, a, b *Host, up1, up2 *Port) {
	t.Helper()
	n = New()
	a = n.NewHost("A")
	b = n.NewHost("B")
	leaf := n.NewSwitch("leaf")
	core1 := n.NewSwitch("core1")
	core2 := n.NewSwitch("core2")
	leaf2 := n.NewSwitch("leaf2")
	rate, delay := 10*sim.Gbps, sim.Microsecond
	q := func() Queue { return NewDropTail(1024) }
	n.Connect(a, leaf, rate, delay, q(), q())
	up1, _ = n.Connect(leaf, core1, rate, delay, q(), q())
	up2, _ = n.Connect(leaf, core2, rate, delay, q(), q())
	d1, _ := n.Connect(core1, leaf2, rate, delay, q(), q())
	d2, _ := n.Connect(core2, leaf2, rate, delay, q(), q())
	down, _ := n.Connect(leaf2, b, rate, delay, q(), q())
	leaf.AddRoute(b.ID(), up1)
	leaf.AddRoute(b.ID(), up2)
	core1.AddRoute(b.ID(), d1)
	core2.AddRoute(b.ID(), d2)
	leaf2.AddRoute(b.ID(), down)
	return n, a, b, up1, up2
}

func TestECMPFailoverAndRestore(t *testing.T) {
	n, a, b, up1, up2 := ecmpPairNet(t)
	got := 0
	b.Handler = func(pkt *Packet) { got++ }

	send := func(count int) {
		for f := FlowID(0); f < FlowID(count); f++ {
			a.Send(&Packet{Flow: f, Type: Data, Size: 100, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	}
	// Phase 1: up1 down — every flow, including those hashed onto up1,
	// must fail over to up2 and arrive.
	n.Engine.Schedule(0, func() { up1.SetAdminDown(true); send(256) })
	n.Run(sim.Millisecond)
	if got != 256 {
		t.Fatalf("failover delivered %d/256", got)
	}
	if up1.TxPackets != 0 {
		t.Fatalf("down uplink transmitted %d packets", up1.TxPackets)
	}
	if up2.TxPackets != 256 {
		t.Fatalf("surviving uplink carried %d/256", up2.TxPackets)
	}
	if n.NoRouteDrops() != 0 {
		t.Fatalf("NoRouteDrops = %d with a live route available", n.NoRouteDrops())
	}

	// Phase 2: recovery — the hash must move flows back onto up1.
	got = 0
	n.Engine.ScheduleAt(2*sim.Millisecond, func() { up1.SetAdminDown(false); send(256) })
	n.Run(sim.Second)
	if got != 256 {
		t.Fatalf("post-recovery delivered %d/256", got)
	}
	if up1.TxPackets == 0 {
		t.Error("no flow moved back to the recovered uplink")
	}
	frac := float64(up1.TxPackets) / 256
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("post-recovery spread unbalanced: up1 fraction %.2f", frac)
	}
}

func TestAllRoutesDownCountsNoRouteDrops(t *testing.T) {
	n, a, b, up1, up2 := ecmpPairNet(t)
	got := 0
	b.Handler = func(pkt *Packet) { got++ }
	n.Engine.Schedule(0, func() {
		up1.SetAdminDown(true)
		up2.SetAdminDown(true)
		for f := FlowID(0); f < 10; f++ {
			a.Send(&Packet{Flow: f, Type: Data, Size: 100, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
		}
	})
	n.Run(sim.Second)
	if got != 0 {
		t.Fatalf("delivered %d with no live route", got)
	}
	if n.NoRouteDrops() != 10 {
		t.Errorf("NoRouteDrops = %d, want 10", n.NoRouteDrops())
	}
	if n.Dropped() != 10 {
		t.Errorf("NoRouteDrops must be included in Dropped: %d", n.Dropped())
	}
	if n.DroppedOfType(Data) != 10 {
		t.Errorf("per-type drop accounting missed no-route drops: %d", n.DroppedOfType(Data))
	}
}

func TestDegradedRateSlowsSerialization(t *testing.T) {
	n, a, b, sw := pair(t, 10*sim.Gbps, 0, nil)
	egress := sw.Ports()[1]
	var arrived sim.Time
	b.Handler = func(pkt *Packet) { arrived = n.Engine.Now() }
	n.Engine.Schedule(0, func() {
		egress.SetDegradedRate(sim.Gbps) // 10× slower on the switch hop
		a.Send(&Packet{Flow: 1, Type: Data, Size: MSS, Src: a.ID(), Dst: b.ID(), Prio: PrioData})
	})
	n.Run(sim.Second)
	// 1200ns at the host NIC (nominal) + 12000ns at the degraded egress.
	if want := sim.Time(1200 + 12000); arrived != want {
		t.Errorf("arrival at %v, want %v", arrived, want)
	}
	if egress.EffectiveRate() != sim.Gbps {
		t.Errorf("EffectiveRate = %v, want 1Gbps", egress.EffectiveRate())
	}
	egress.SetDegradedRate(0)
	if egress.EffectiveRate() != 10*sim.Gbps {
		t.Errorf("EffectiveRate after restore = %v, want nominal", egress.EffectiveRate())
	}
}

func TestLossyQueueCtrlDropProb(t *testing.T) {
	// With CtrlDropProb=0 (default) control packets always pass, even at
	// DropProb=1 — the historical sparing.
	spare := NewLossy(NewDropTail(0), 1.0, 1)
	if !spare.Enqueue(&Packet{Type: Grant, Size: ControlSize}, 0) {
		t.Fatal("control packet dropped despite CtrlDropProb=0")
	}
	if spare.Enqueue(&Packet{Type: Data, Size: MSS}, 0) {
		t.Fatal("data packet passed despite DropProb=1")
	}

	// With CtrlDropProb=1 every control packet drops and is counted.
	strict := NewLossy(NewDropTail(0), 0, 2)
	strict.CtrlDropProb = 1.0
	if strict.Enqueue(&Packet{Type: Grant, Size: ControlSize}, 0) {
		t.Fatal("control packet passed despite CtrlDropProb=1")
	}
	if !strict.Enqueue(&Packet{Type: Data, Size: MSS}, 0) {
		t.Fatal("data packet dropped despite DropProb=0")
	}
	if strict.Injected != 1 || strict.CtrlInjected != 1 {
		t.Errorf("Injected=%d CtrlInjected=%d, want 1/1", strict.Injected, strict.CtrlInjected)
	}
	// Trimmed data travels the control path and is spared the data draw.
	if !spare.Enqueue(&Packet{Type: Data, Trimmed: true, Size: ControlSize}, 0) {
		t.Error("trimmed header dropped by the data-loss draw")
	}
}

func TestGilbertElliottBurstsAndStationarity(t *testing.T) {
	run := func(seed int64) (injected, bursts int64) {
		q := NewGilbertElliott(NewDropTail(0), 0.01, 0.25, 1.0, 0, seed)
		for i := 0; i < 20000; i++ {
			q.Enqueue(&Packet{Type: Data, Size: MSS}, 0)
		}
		return q.Injected, q.Bursts
	}
	inj1, b1 := run(7)
	inj2, b2 := run(7)
	if inj1 != inj2 || b1 != b2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", inj1, b1, inj2, b2)
	}
	if b1 == 0 {
		t.Fatal("no bursts occurred")
	}
	// Stationary bad fraction = 0.01/(0.01+0.25) ≈ 3.85%; with LossBad=1
	// the injected fraction should be near it.
	frac := float64(inj1) / 20000
	if frac < 0.02 || frac > 0.06 {
		t.Errorf("loss fraction %.4f far from stationary 0.0385", frac)
	}
	// Mean burst length = 1/PBadGood = 4 arrivals; losses must cluster.
	if mean := float64(inj1) / float64(b1); mean < 2 || mean > 8 {
		t.Errorf("mean drops per burst %.2f, want ≈4", mean)
	}

	// Control packets clock state but never drop.
	q := NewGilbertElliott(NewDropTail(0), 0.5, 0.1, 1.0, 0, 3)
	for i := 0; i < 100; i++ {
		if !q.Enqueue(&Packet{Type: Grant, Size: ControlSize}, 0) {
			t.Fatal("GE queue dropped a control packet")
		}
	}
	if q.Bursts == 0 {
		t.Error("control arrivals did not clock state transitions")
	}
}

// TestGilbertElliottStationaryLossRate checks the model's long-run
// statistics, not just its mechanics: over a long seeded run the
// empirical data-packet loss rate must match the stationary loss
// probability
//
//	p = fBad·LossBad + (1−fBad)·LossGood,  fBad = ToBad/(ToBad+ToGood)
//
// within a tolerance a few standard deviations wide. The chain mixes
// fast (mean burst 1/ToGood arrivals), so 200k arrivals give a tight
// estimate; correlated drops inflate the variance versus a Bernoulli
// process, hence the generous 4σ-equivalent band.
func TestGilbertElliottStationaryLossRate(t *testing.T) {
	cases := []struct {
		toBad, toGood, lossBad, lossGood float64
	}{
		{0.005, 0.25, 0.5, 0},   // docs example: classic Gilbert
		{0.01, 0.1, 1.0, 0},     // hard bursts
		{0.02, 0.2, 0.8, 0.001}, // lossy good state too
	}
	const arrivals = 200000
	for _, c := range cases {
		q := NewGilbertElliott(NewDropTail(0), c.toBad, c.toGood, c.lossBad, c.lossGood, 42)
		for i := 0; i < arrivals; i++ {
			q.Enqueue(&Packet{Type: Data, Size: MSS}, 0)
		}
		fBad := c.toBad / (c.toBad + c.toGood)
		want := fBad*c.lossBad + (1-fBad)*c.lossGood
		got := float64(q.Injected) / arrivals
		// Absolute floor guards the near-zero rates; 15% relative covers
		// burst-correlated variance at 200k samples for these parameters.
		tol := 0.15 * want
		if tol < 0.0015 {
			tol = 0.0015
		}
		if got < want-tol || got > want+tol {
			t.Errorf("GE(%v): empirical loss %.5f, stationary %.5f (tol %.5f)", c, got, want, tol)
		}
	}
}
