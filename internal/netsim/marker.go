package netsim

import "amrt/internal/sim"

// CombineMode selects how a hop's spare-bandwidth observation is folded
// into the CE bit a packet carries. The paper uses AND (Eq. 3): the bit
// survives only if every hop on the path saw spare bandwidth, so the
// sender speeds up only when the most congested bottleneck has room.
// OR is provided for the ablation study.
type CombineMode uint8

// Combine modes.
const (
	CombineAND CombineMode = iota
	CombineOR
)

// AntiECNMarker implements the paper's §4.1 egress marking rule. At the
// instant a data packet is dequeued for transmission, the marker measures
// the idle gap since the previous transmission ended. If the gap is long
// enough to have transmitted one reference MSS, the link had spare
// bandwidth and the hop's observation is "under-utilized" (CE=1);
// otherwise the link is saturated (CE=0). The observation is combined
// into the packet's CE bit, which the sender initialized to 1.
//
// Eq. (2) in the paper measures consecutive dequeue timestamps, which for
// back-to-back full-size packets differ by exactly MSS/C and would mark a
// saturated link; the prose makes clear the intent is an idle gap that
// fits one more packet, which is what this implementation measures (see
// DESIGN.md §1).
type AntiECNMarker struct {
	// RefSize is the reference packet size for the gap comparison; the
	// paper fixes it at the Ethernet MTU (MSS) regardless of actual
	// packet sizes.
	RefSize int
	// GapFactor scales the required gap: the marker requires an idle
	// time of at least GapFactor × RefSize/C. 1.0 is the paper's rule;
	// other values are exercised by the threshold ablation.
	GapFactor float64
	// Mode is the multi-hop combining operator (AND per the paper).
	Mode CombineMode
	// Marked counts data packets that left this port with CE still set.
	Marked int64
	// Observed counts data packets examined.
	Observed int64
}

// NewAntiECNMarker returns a marker with the paper's defaults
// (RefSize=MSS, GapFactor=1, AND combining).
func NewAntiECNMarker() *AntiECNMarker {
	return &AntiECNMarker{RefSize: MSS, GapFactor: 1, Mode: CombineAND}
}

// OnDequeue implements DequeueMarker.
func (m *AntiECNMarker) OnDequeue(port *Port, pkt *Packet, now sim.Time) {
	if pkt.Type != Data {
		return
	}
	m.Observed++
	spare := true
	if lastEnd, ever := port.LastTxEnd(); ever {
		need := sim.Time(float64(port.Link().Rate.TxTime(m.RefSize)) * m.GapFactor)
		spare = now-lastEnd >= need
	}
	switch m.Mode {
	case CombineOR:
		pkt.CE = pkt.CE || spare
	default:
		pkt.CE = pkt.CE && spare
	}
	if pkt.CE {
		m.Marked++
	}
}
