package netsim

import (
	"math/rand"

	"amrt/internal/sim"
)

// Queue is the buffering discipline of an egress port. Enqueue returns
// false when the packet is dropped (the port then records the drop).
// Implementations are not safe for concurrent use; the single-threaded
// engine guarantees serial access.
type Queue interface {
	Enqueue(pkt *Packet, now sim.Time) bool
	Dequeue() *Packet
	// Len is the number of queued packets.
	Len() int
	// Bytes is the total queued payload in bytes.
	Bytes() int
}

// QueueFactory builds one queue per egress port. Protocols choose the
// factory that matches their switch behaviour (plain drop-tail,
// priority levels, trimming, or a capped data queue).
type QueueFactory func() Queue

// BoundedQueue is implemented by queues with a known total packet-count
// capacity. The audit subsystem uses it to check the queue-bound
// invariant (Len never exceeds CapPackets); a return of 0 means
// unbounded and the check is skipped. Wrapper queues delegate to their
// inner queue.
type BoundedQueue interface {
	CapPackets() int
}

// fifo is a slice-backed FIFO of packets with amortized O(1) operations.
type fifo struct {
	items []*Packet
	head  int
	bytes int
}

func (f *fifo) push(p *Packet) {
	f.items = append(f.items, p)
	f.bytes += p.Size
}

func (f *fifo) pop() *Packet {
	if f.head >= len(f.items) {
		return nil
	}
	p := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	f.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping memory bounded.
	if f.head > 32 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.items) - f.head }

// DropTailQueue is a FIFO with a packet-count capacity; packets arriving
// at a full queue are dropped.
type DropTailQueue struct {
	q   fifo
	cap int
}

// NewDropTail returns a drop-tail queue holding at most capPackets
// packets. A non-positive capacity means unbounded.
func NewDropTail(capPackets int) *DropTailQueue {
	return &DropTailQueue{cap: capPackets}
}

// Enqueue implements Queue.
func (d *DropTailQueue) Enqueue(pkt *Packet, _ sim.Time) bool {
	if d.cap > 0 && d.q.len() >= d.cap {
		return false
	}
	d.q.push(pkt)
	return true
}

// Dequeue implements Queue.
func (d *DropTailQueue) Dequeue() *Packet { return d.q.pop() }

// Len implements Queue.
func (d *DropTailQueue) Len() int { return d.q.len() }

// Bytes implements Queue.
func (d *DropTailQueue) Bytes() int { return d.q.bytes }

// CapPackets implements BoundedQueue (0 = unbounded).
func (d *DropTailQueue) CapPackets() int { return d.cap }

// PriorityQueue is a strict-priority queue with NumPriorities levels,
// each an independent drop-tail FIFO with its own capacity. Dequeue
// serves the lowest-numbered non-empty level.
type PriorityQueue struct {
	levels [NumPriorities]fifo
	caps   [NumPriorities]int
}

// NewPriority returns a strict-priority queue. caps gives the per-level
// packet capacity; missing trailing entries default to the last given
// value, and non-positive values mean unbounded.
func NewPriority(caps ...int) *PriorityQueue {
	p := &PriorityQueue{}
	last := 0
	for i := 0; i < NumPriorities; i++ {
		if i < len(caps) {
			last = caps[i]
		}
		p.caps[i] = last
	}
	return p
}

// Enqueue implements Queue.
func (p *PriorityQueue) Enqueue(pkt *Packet, _ sim.Time) bool {
	lvl := pkt.Prio
	if lvl >= NumPriorities {
		lvl = NumPriorities - 1
	}
	if p.caps[lvl] > 0 && p.levels[lvl].len() >= p.caps[lvl] {
		return false
	}
	p.levels[lvl].push(pkt)
	return true
}

// Dequeue implements Queue.
func (p *PriorityQueue) Dequeue() *Packet {
	for i := range p.levels {
		if p.levels[i].len() > 0 {
			return p.levels[i].pop()
		}
	}
	return nil
}

// Len implements Queue.
func (p *PriorityQueue) Len() int {
	n := 0
	for i := range p.levels {
		n += p.levels[i].len()
	}
	return n
}

// Bytes implements Queue.
func (p *PriorityQueue) Bytes() int {
	n := 0
	for i := range p.levels {
		n += p.levels[i].bytes
	}
	return n
}

// LevelLen returns the number of packets queued at one priority level.
func (p *PriorityQueue) LevelLen(lvl uint8) int { return p.levels[lvl].len() }

// CapPackets implements BoundedQueue: the sum of the per-level caps, or
// 0 (unbounded) if any level is uncapped.
func (p *PriorityQueue) CapPackets() int {
	total := 0
	for _, c := range p.caps {
		if c <= 0 {
			return 0
		}
		total += c
	}
	return total
}

// LossyQueue wraps another queue and randomly drops a seeded fraction
// of arriving data packets before they reach it — a failure-injection
// harness for loss-recovery testing (it models corruption/soft-error
// loss rather than congestion loss, so control packets pass through by
// default; set CtrlDropProb to lift that sparing).
type LossyQueue struct {
	Inner Queue
	// DropProb is the per-data-packet drop probability in [0,1).
	DropProb float64
	// CtrlDropProb, when positive, additionally drops control packets
	// (grants, tokens, pulls, ACKs, NACKs, RTS, trimmed headers) with
	// the given independent probability. The default 0 preserves the
	// historical control-packet sparing — and the wrapper's random
	// stream — exactly.
	CtrlDropProb float64
	rng          *rand.Rand
	// Injected counts packets dropped by the wrapper itself;
	// CtrlInjected is the control-packet subset of Injected.
	Injected     int64
	CtrlInjected int64
}

// NewLossy wraps inner with seeded random data-packet loss.
func NewLossy(inner Queue, dropProb float64, seed int64) *LossyQueue {
	return &LossyQueue{Inner: inner, DropProb: dropProb, rng: sim.NewRNG(seed)}
}

// Enqueue implements Queue.
func (l *LossyQueue) Enqueue(pkt *Packet, now sim.Time) bool {
	if pkt.Type == Data && !pkt.Trimmed {
		if l.rng.Float64() < l.DropProb {
			l.Injected++
			return false
		}
	} else if l.CtrlDropProb > 0 && l.rng.Float64() < l.CtrlDropProb {
		l.Injected++
		l.CtrlInjected++
		return false
	}
	return l.Inner.Enqueue(pkt, now)
}

// Dequeue implements Queue.
func (l *LossyQueue) Dequeue() *Packet { return l.Inner.Dequeue() }

// Len implements Queue.
func (l *LossyQueue) Len() int { return l.Inner.Len() }

// Bytes implements Queue.
func (l *LossyQueue) Bytes() int { return l.Inner.Bytes() }

// CapPackets implements BoundedQueue by delegating to the wrapped queue.
func (l *LossyQueue) CapPackets() int { return queueCap(l.Inner) }

// GilbertElliottQueue wraps another queue with the Gilbert–Elliott
// two-state burst-loss model: arrivals flip a hidden good/bad channel
// state with per-packet transition probabilities, and data packets are
// dropped with a state-dependent probability. Unlike LossyQueue's
// independent (Bernoulli) loss, drops cluster into bursts — the loss
// pattern of a failing optic or a microwave fade — which stresses
// recovery paths that tolerate scattered holes but stall on a run of
// consecutive ones. Control packets are spared (compose with a
// LossyQueue CtrlDropProb wrapper to lose those too).
type GilbertElliottQueue struct {
	Inner Queue
	// PGoodBad and PBadGood are the per-arrival transition
	// probabilities; the stationary bad-state fraction is
	// PGoodBad/(PGoodBad+PBadGood) and the mean burst length in
	// arrivals is 1/PBadGood.
	PGoodBad, PBadGood float64
	// LossBad and LossGood are the per-data-packet drop probabilities
	// in each state (classic Gilbert: LossGood = 0).
	LossBad, LossGood float64
	rng               *rand.Rand
	bad               bool
	// Injected counts data packets dropped by the wrapper; Bursts
	// counts good→bad transitions (number of loss episodes).
	Injected int64
	Bursts   int64
}

// NewGilbertElliott wraps inner with seeded two-state burst loss.
func NewGilbertElliott(inner Queue, pGoodBad, pBadGood, lossBad, lossGood float64, seed int64) *GilbertElliottQueue {
	return &GilbertElliottQueue{
		Inner: inner, PGoodBad: pGoodBad, PBadGood: pBadGood,
		LossBad: lossBad, LossGood: lossGood, rng: sim.NewRNG(seed),
	}
}

// Enqueue implements Queue.
func (g *GilbertElliottQueue) Enqueue(pkt *Packet, now sim.Time) bool {
	// State transitions are clocked by every arrival (control included)
	// so burst duration tracks wire activity, not just data volume.
	if g.bad {
		if g.rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.PGoodBad {
		g.bad = true
		g.Bursts++
	}
	if pkt.Type == Data && !pkt.Trimmed {
		loss := g.LossGood
		if g.bad {
			loss = g.LossBad
		}
		if loss > 0 && g.rng.Float64() < loss {
			g.Injected++
			return false
		}
	}
	return g.Inner.Enqueue(pkt, now)
}

// Dequeue implements Queue.
func (g *GilbertElliottQueue) Dequeue() *Packet { return g.Inner.Dequeue() }

// Len implements Queue.
func (g *GilbertElliottQueue) Len() int { return g.Inner.Len() }

// Bytes implements Queue.
func (g *GilbertElliottQueue) Bytes() int { return g.Inner.Bytes() }

// CapPackets implements BoundedQueue by delegating to the wrapped queue.
func (g *GilbertElliottQueue) CapPackets() int { return queueCap(g.Inner) }

// queueCap returns a queue's declared packet capacity, or 0 when it does
// not implement BoundedQueue.
func queueCap(q Queue) int {
	if b, ok := q.(BoundedQueue); ok {
		return b.CapPackets()
	}
	return 0
}

// ECNQueue is the classic DCTCP-style switch buffer: a drop-tail FIFO
// that sets the CE bit on arriving data packets whenever the
// instantaneous queue length is at or above the marking threshold. Note
// the bit's meaning is the opposite of AMRT's anti-ECN convention (here
// CE=1 signals congestion); the two disciplines are never mixed in one
// network.
type ECNQueue struct {
	q      fifo
	cap    int
	markAt int
	// Marked counts CE marks applied at this port.
	Marked int64
}

// NewECN returns an ECN-marking drop-tail queue with the given packet
// capacity and marking threshold.
func NewECN(capPackets, markAt int) *ECNQueue {
	return &ECNQueue{cap: capPackets, markAt: markAt}
}

// Enqueue implements Queue.
func (e *ECNQueue) Enqueue(pkt *Packet, _ sim.Time) bool {
	if e.cap > 0 && e.q.len() >= e.cap {
		return false
	}
	if pkt.Type == Data && e.markAt > 0 && e.q.len() >= e.markAt {
		pkt.CE = true
		e.Marked++
	}
	e.q.push(pkt)
	return true
}

// Dequeue implements Queue.
func (e *ECNQueue) Dequeue() *Packet { return e.q.pop() }

// Len implements Queue.
func (e *ECNQueue) Len() int { return e.q.len() }

// Bytes implements Queue.
func (e *ECNQueue) Bytes() int { return e.q.bytes }

// CapPackets implements BoundedQueue (0 = unbounded).
func (e *ECNQueue) CapPackets() int { return e.cap }

// TrimmingQueue is NDP's switch buffer: data packets beyond the trim
// threshold have their payload cut to a ControlSize header, marked
// Trimmed, and queued in the high-priority control band instead of being
// dropped. Control packets and headers share the control band, which has
// its own (large) capacity; only when that band overflows are packets
// dropped.
type TrimmingQueue struct {
	control    fifo
	data       fifo
	trimAt     int
	controlCap int
	// Trims counts payloads cut at this port, for tests and stats.
	Trims int64
}

// NewTrimming returns an NDP trimming queue. trimAt is the data-queue
// length (in packets) at which arriving data packets are trimmed;
// controlCap bounds the control/header band.
func NewTrimming(trimAt, controlCap int) *TrimmingQueue {
	return &TrimmingQueue{trimAt: trimAt, controlCap: controlCap}
}

// Enqueue implements Queue.
func (q *TrimmingQueue) Enqueue(pkt *Packet, _ sim.Time) bool {
	if pkt.Type == Data && !pkt.Trimmed {
		if q.data.len() < q.trimAt {
			q.data.push(pkt)
			return true
		}
		// Trim: keep only the header, promote to the control band.
		pkt.Trimmed = true
		pkt.Size = ControlSize
		pkt.Prio = PrioControl
		q.Trims++
	}
	if q.controlCap > 0 && q.control.len() >= q.controlCap {
		return false
	}
	q.control.push(pkt)
	return true
}

// Dequeue implements Queue.
func (q *TrimmingQueue) Dequeue() *Packet {
	if q.control.len() > 0 {
		return q.control.pop()
	}
	return q.data.pop()
}

// Len implements Queue.
func (q *TrimmingQueue) Len() int { return q.control.len() + q.data.len() }

// Bytes implements Queue.
func (q *TrimmingQueue) Bytes() int { return q.control.bytes + q.data.bytes }

// DataLen returns the number of untrimmed data packets queued.
func (q *TrimmingQueue) DataLen() int { return q.data.len() }

// CapPackets implements BoundedQueue: the data band holds at most trimAt
// packets (arrivals beyond it are trimmed into the control band), so the
// total bound is trimAt + controlCap; 0 when the control band is
// unbounded.
func (q *TrimmingQueue) CapPackets() int {
	if q.controlCap <= 0 {
		return 0
	}
	return q.trimAt + q.controlCap
}
