// Package benchcases holds the figure benchmark bodies shared by the
// repo-root `go test -bench` suite and the cmd/bench regression
// harness. Each case runs a paper experiment at a fixed seed and
// reduced scale and reports its headline number as a custom metric, so
// both consumers measure exactly the same work: bench_test.go wraps the
// cases as standard benchmarks, cmd/bench drives them via
// testing.Benchmark and records the results in BENCH_<date>.json.
package benchcases

import (
	"testing"

	"amrt/internal/experiment"
	"amrt/internal/faults"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

// Case is one named benchmark. Names are stable identifiers — they key
// the regression comparison across BENCH_*.json files.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// All returns the harness case list: the end-to-end figure workloads
// that exercise the engine/netsim/transport hot path, at fixed seeds.
func All() []Case {
	return []Case{
		{"Fig01MultiBottleneck/pHost", Fig01("pHost")},
		{"Fig01MultiBottleneck/AMRT", Fig01("AMRT")},
		{"Fig02DynamicTraffic/pHost", Fig02("pHost")},
		{"Fig02DynamicTraffic/AMRT", Fig02("AMRT")},
		{"Fig09TestbedDynamic", Fig09},
		{"Fig11TestbedMultiBottleneck/AMRT", Fig11("AMRT")},
		{"SimulatorThroughput", SimulatorThroughput},
		{"ShardScaling/fattree-incast/shards=1", ShardScaling(1)},
		{"ShardScaling/fattree-incast/shards=2", ShardScaling(2)},
		{"ShardScaling/fattree-incast/shards=4", ShardScaling(4)},
		{"ShardScaling/fattree-incast/shards=8", ShardScaling(8)},
		{"FaultInjection/fattree-incast/shards=1", FaultInjection(1)},
		{"FaultInjection/fattree-incast/shards=4", FaultInjection(4)},
	}
}

func stack(name string) experiment.Stack {
	return experiment.MustStack(name, experiment.StackOptions{})
}

// Fig01 reproduces §2.1 / Fig. 1 (multi-bottleneck motivation) for one
// protocol and reports the squeezed-phase bottleneck utilization.
func Fig01(proto string) func(b *testing.B) {
	return func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res := experiment.Fig1(stack(proto))
			last = res.Util.MeanBetween(4*sim.Millisecond, 8*sim.Millisecond)
		}
		b.ReportMetric(last, "util_squeezed")
	}
}

// Fig02 reproduces §2.2 / Fig. 2 (dynamic traffic) for one protocol.
func Fig02(proto string) func(b *testing.B) {
	return func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			res := experiment.Fig2(stack(proto))
			mean = res.Util.Mean()
		}
		b.ReportMetric(mean, "util_mean")
	}
}

// Fig09 reproduces the §7 dynamic-traffic testbed run at 1 GbE with
// AMRT and reports f2's FCT (the flow that absorbs f1's share).
func Fig09(b *testing.B) {
	var fct float64
	for i := 0; i < b.N; i++ {
		res := experiment.Fig9(stack("AMRT"))
		fct = res.Flows[1].FCT().Milliseconds()
	}
	b.ReportMetric(fct, "f2_fct_ms")
}

// Fig11 reproduces the §7 multi-bottleneck testbed comparison for one
// protocol.
func Fig11(proto string) func(b *testing.B) {
	return func(b *testing.B) {
		var fct float64
		for i := 0; i < b.N; i++ {
			res := experiment.Fig11(stack(proto))
			if res.Flows[1].Done {
				fct = res.Flows[1].FCT().Milliseconds()
			}
		}
		b.ReportMetric(fct, "f2_fct_ms")
	}
}

// SimulatorThroughput measures raw engine throughput on a standard AMRT
// leaf-spine run, in events per second.
func SimulatorThroughput(b *testing.B) {
	cfg := experiment.DefaultSimConfig()
	cfg.Topo.Leaves, cfg.Topo.Spines, cfg.Topo.HostsPerLeaf = 2, 2, 8
	w := workload.WebSearch()
	st := stack("AMRT")
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts: cfg.Topo.Hosts(), Load: 0.5, HostRate: cfg.Topo.HostRate,
		Dist: w, Count: 150, Seed: 1,
	})
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := experiment.LeafSpineRun{Topo: cfg.Topo, Stack: st, Flows: flows, Horizon: cfg.Horizon}.Run()
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// FaultInjection measures the v9 fault layer's overhead on the sharded
// engine: the ShardScaling fat-tree incast (at k=4 to keep the cell
// fast) with a periodic uplink flap plus Gilbert–Elliott bursty loss
// applied — the per-queue loss draws and the per-shard fault homing on
// the hot path. Comparing events/s against the same shard count's
// fault-free ShardScaling case isolates what the fault machinery
// costs; comparing shards=1 against shards=4 shows the cost is not
// amplified by the barrier protocol.
func FaultInjection(nshards int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := topo.DefaultFatTree()
		cfg.K = 4
		flows := workload.GenerateIncast(workload.IncastConfig{
			Hosts:    cfg.Hosts(),
			Degree:   8,
			Bytes:    64 << 10,
			Load:     0.6,
			HostRate: cfg.HostRate,
			Count:    256,
			Seed:     1,
		})
		st := stack("AMRT")
		const spec = "link=edge0.0->agg0.0,down=1ms,up=2ms,period=4ms;" +
			"burst-loss=tobad:0.003,togood:0.2,bad:0.5"
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			plan := faults.MustParse(spec)
			plan.Seed = 1
			res := experiment.LeafSpineRun{
				Topo: cfg, Stack: st, Flows: flows,
				Horizon: 20 * sim.Millisecond, Shards: nshards,
				Faults: plan,
			}.Run()
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}

// ShardScaling measures the sharded engine's aggregate dispatch rate —
// total events across all shard engines per wall second — on a k=8
// fat-tree incast, the regime the parallel engine exists for
// (docs/PARALLELISM.md). One case per shard count keys the scaling
// table in BENCH_*.json and docs/PERFORMANCE.md; results are
// byte-identical across the counts, so the cases differ only in wall
// clock. Speedup needs cores: at GOMAXPROCS=1 the windows serialize
// and the barrier overhead shows instead.
func ShardScaling(nshards int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := topo.DefaultFatTree()
		cfg.K = 8
		flows := workload.GenerateIncast(workload.IncastConfig{
			Hosts:    cfg.Hosts(),
			Degree:   16,
			Bytes:    64 << 10,
			Load:     0.6,
			HostRate: cfg.HostRate,
			Count:    512,
			Seed:     1,
		})
		st := stack("AMRT")
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			res := experiment.LeafSpineRun{
				Topo: cfg, Stack: st, Flows: flows,
				Horizon: 20 * sim.Millisecond, Shards: nshards,
			}.Run()
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}
