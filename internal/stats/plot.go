package stats

import (
	"fmt"
	"strings"

	"amrt/internal/sim"
)

// PlotOptions controls ASCII rendering of series.
type PlotOptions struct {
	// Width and Height of the plot area in characters (default 72×16).
	Width, Height int
	// YMax fixes the y-axis top (0 = auto from the data).
	YMax float64
	// YLabel annotates the y axis.
	YLabel string
}

// plotGlyphs label up to 6 series in one chart.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderASCII draws one or more time series into a text chart — the
// terminal rendition of the paper's throughput/utilization-over-time
// figures. Series are overlaid with distinct glyphs; a legend, y-scale
// and time axis are included.
func RenderASCII(opt PlotOptions, series ...*Series) string {
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	var tMin, tMax sim.Time
	yMax := opt.YMax
	first := true
	for _, s := range series {
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			if first {
				tMin, tMax = p.T, p.T
				first = false
			}
			if p.T < tMin {
				tMin = p.T
			}
			if p.T > tMax {
				tMax = p.T
			}
			if opt.YMax == 0 && p.V > yMax {
				yMax = p.V
			}
		}
	}
	if first || tMax == tMin || yMax <= 0 {
		return "(no data)\n"
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		if s == nil {
			continue
		}
		g := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			col := int(float64(p.T-tMin) / float64(tMax-tMin) * float64(opt.Width-1))
			v := p.V
			if v > yMax {
				v = yMax
			}
			if v < 0 {
				v = 0
			}
			row := opt.Height - 1 - int(v/yMax*float64(opt.Height-1))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	for r := range grid {
		yVal := yMax * float64(opt.Height-1-r) / float64(opt.Height-1)
		fmt.Fprintf(&b, "%7.3f |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "         %-*s%s\n", opt.Width-12, tMin.String(), tMax.String())
	var legend []string
	for si, s := range series {
		if s == nil {
			continue
		}
		legend = append(legend, fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	if opt.YLabel != "" {
		legend = append(legend, "y: "+opt.YLabel)
	}
	fmt.Fprintf(&b, "         %s\n", strings.Join(legend, "  "))
	return b.String()
}
