package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"amrt/internal/sim"
)

func TestFCTCollectorBasics(t *testing.T) {
	c := NewFCTCollector()
	if c.Mean() != 0 || c.P99() != 0 || c.Count() != 0 {
		t.Error("empty collector should report zeros")
	}
	c.Add(1000, 0, 100)
	c.Add(1000, 50, 250) // fct 200
	c.Add(1000, 0, 300)
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	if got := c.Mean(); got != 200 {
		t.Errorf("Mean = %v, want 200", got)
	}
	if got := c.Percentile(50); got != 200 {
		t.Errorf("P50 = %v, want 200", got)
	}
	if got := c.Percentile(100); got != 300 {
		t.Errorf("P100 = %v, want 300", got)
	}
	if got := c.Percentile(0); got != 100 {
		t.Errorf("P0 = %v, want 100", got)
	}
}

func TestFCTPercentileNearestRank(t *testing.T) {
	c := NewFCTCollector()
	for i := 1; i <= 100; i++ {
		c.Add(1, 0, sim.Time(i))
	}
	if got := c.P99(); got != 99 {
		t.Errorf("P99 of 1..100 = %v, want 99", got)
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := c.Percentile(1); got != 1 {
		t.Errorf("P1 = %v, want 1", got)
	}
}

func TestFCTAddAfterPercentileKeepsSorted(t *testing.T) {
	c := NewFCTCollector()
	c.Add(1, 0, 300)
	c.Add(1, 0, 100)
	_ = c.P99()
	c.Add(1, 0, 200)
	if got := c.Percentile(100); got != 300 {
		t.Errorf("max after re-add = %v", got)
	}
	if got := c.Percentile(0); got != 100 {
		t.Errorf("min after re-add = %v", got)
	}
}

func TestFCTNegativePanics(t *testing.T) {
	c := NewFCTCollector()
	defer func() {
		if recover() == nil {
			t.Error("end<start did not panic")
		}
	}()
	c.Add(1, 100, 50)
}

func TestFCTMeanSlowdown(t *testing.T) {
	c := NewFCTCollector()
	// 1250-byte flow at 10Gbps = 1µs ideal tx; rtt 1µs → ideal 2µs.
	c.Add(1250, 0, 4*sim.Microsecond) // slowdown 2
	got := c.MeanSlowdown(10*sim.Gbps, sim.Microsecond)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("MeanSlowdown = %v, want 2", got)
	}
}

func TestFCTBySize(t *testing.T) {
	c := NewFCTCollector()
	c.Add(100, 0, 10)
	c.Add(20000, 0, 20)
	c.Add(5000, 0, 30)
	small, large := c.BySize(10000)
	if small.Count() != 2 || large.Count() != 1 {
		t.Errorf("BySize split %d/%d, want 2/1", small.Count(), large.Count())
	}
}

// Property: Mean is between min and max, percentiles are monotone in p.
func TestFCTPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewFCTCollector()
		for _, v := range raw {
			c.Add(1, 0, sim.Time(v))
		}
		prev := sim.Time(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := c.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return c.Mean() >= c.Percentile(0) && c.Mean() <= c.Percentile(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "u"}
	s.Append(0, 0.5)
	s.Append(10, 1.0)
	s.Append(20, 0.75)
	if got := s.Mean(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Max(); got != 1.0 {
		t.Errorf("Max = %v", got)
	}
	if got := s.MeanBetween(5, 25); math.Abs(got-0.875) > 1e-9 {
		t.Errorf("MeanBetween = %v", got)
	}
	if got := s.MeanBetween(100, 200); got != 0 {
		t.Errorf("MeanBetween empty window = %v", got)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	s.Append(5, 1)
}

func TestSeriesWriteCSV(t *testing.T) {
	s := &Series{Name: "util"}
	s.Append(sim.Microsecond, 0.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "t_us,util\n") || !strings.Contains(got, "1.000,0.5") {
		t.Errorf("CSV = %q", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal rates: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one-taker: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero: %v", got)
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
}

func TestSumSeries(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(10, 0.5)
	a.Append(20, 0.25)
	b := &Series{Name: "b"}
	b.Append(10, 0.5)
	b.Append(30, 1.0)
	sum := SumSeries("total", a, b, nil)
	want := []Point{{10, 1.0}, {20, 0.25}, {30, 1.0}}
	if len(sum.Points) != len(want) {
		t.Fatalf("points = %v", sum.Points)
	}
	for i, w := range want {
		if sum.Points[i].T != w.T || math.Abs(sum.Points[i].V-w.V) > 1e-9 {
			t.Errorf("point %d = %+v, want %+v", i, sum.Points[i], w)
		}
	}
	if empty := SumSeries("none"); len(empty.Points) != 0 {
		t.Error("empty sum should have no points")
	}
}

func TestUtilizationSampler(t *testing.T) {
	e := sim.NewEngine()
	u := NewUtilizationSampler(10 * sim.Microsecond)
	calls := 0
	resets := 0
	s := u.Track("port", func(now sim.Time) float64 {
		calls++
		return 0.5
	}, func(now sim.Time) { resets++ })
	u.Start(e, 100*sim.Microsecond)
	e.RunAll()
	if calls != 10 || resets != 10 {
		t.Errorf("calls=%d resets=%d, want 10 each", calls, resets)
	}
	if len(s.Points) != 10 {
		t.Errorf("series has %d points", len(s.Points))
	}
	if s.Points[0].T != 10*sim.Microsecond {
		t.Errorf("first sample at %v", s.Points[0].T)
	}
}

func TestFlowThroughput(t *testing.T) {
	// 10µs windows at 10Gbps reference: 12500 bytes = 1.0.
	ft := NewFlowThroughput("f1", 10*sim.Microsecond, 10*sim.Gbps)
	ft.OnBytes(0, 12500)                  // window [0,10µs): full rate
	ft.OnBytes(15*sim.Microsecond, 6250)  // window [10,20µs): half rate
	ft.OnBytes(35*sim.Microsecond, 12500) // windows [20,30) empty, [30,40) full
	s := ft.Finish()
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4 (%v)", len(s.Points), s.Points)
	}
	want := []float64{1.0, 0.5, 0, 1.0}
	for i, w := range want {
		if math.Abs(s.Points[i].V-w) > 1e-9 {
			t.Errorf("window %d = %v, want %v", i, s.Points[i].V, w)
		}
	}
}

func TestFlowThroughputAlignsToWindow(t *testing.T) {
	ft := NewFlowThroughput("f", 10*sim.Microsecond, 10*sim.Gbps)
	ft.OnBytes(13*sim.Microsecond, 1250) // first event mid-window
	s := ft.Finish()
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].T != 20*sim.Microsecond {
		t.Errorf("window end = %v, want 20µs", s.Points[0].T)
	}
}
