package stats

import (
	"fmt"
	"io"
	"sort"

	"amrt/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series (e.g. utilization or per-flow
// throughput over time).
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample; timestamps must be nondecreasing.
func (s *Series) Append(t sim.Time, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("stats: series %q time went backwards: %v after %v", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Mean returns the arithmetic mean of the sample values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// MeanBetween averages samples with from <= T < to.
func (s *Series) MeanBetween(from, to sim.Time) float64 {
	var sum float64
	n := 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCSV emits "t_us,value" rows.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t_us,%s\n", s.Name); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%.6g\n", p.T.Microseconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// SumSeries adds aligned series point-wise: the result has a point at
// every timestamp appearing in any input, valued as the sum of inputs at
// that timestamp. Inputs whose windows are aligned (e.g. FlowThroughput
// trackers sharing a window size) sum into aggregate goodput.
func SumSeries(name string, series ...*Series) *Series {
	sums := map[sim.Time]float64{}
	var times []sim.Time
	for _, s := range series {
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			if _, seen := sums[p.T]; !seen {
				times = append(times, p.T)
			}
			sums[p.T] += p.V
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := &Series{Name: name}
	for _, t := range times {
		out.Append(t, sums[t])
	}
	return out
}

// UtilizationSampler periodically samples a set of port monitors into
// per-port utilization series, resetting windows after each sample.
type UtilizationSampler struct {
	Interval sim.Time
	Series   []*Series
	monitors []monitorRef
}

type monitorRef struct {
	util func(now sim.Time) float64
	rst  func(now sim.Time)
	s    *Series
}

// NewUtilizationSampler returns a sampler with the given period.
func NewUtilizationSampler(interval sim.Time) *UtilizationSampler {
	return &UtilizationSampler{Interval: interval}
}

// Track adds a monitored quantity under the given series name.
// utilization is read and then reset each interval.
func (u *UtilizationSampler) Track(name string, util func(now sim.Time) float64, reset func(now sim.Time)) *Series {
	s := &Series{Name: name}
	u.Series = append(u.Series, s)
	u.monitors = append(u.monitors, monitorRef{util: util, rst: reset, s: s})
	return s
}

// Start schedules the periodic sampling on the engine until the horizon.
func (u *UtilizationSampler) Start(e *sim.Engine, until sim.Time) {
	var tick func()
	tick = func() {
		now := e.Now()
		for _, m := range u.monitors {
			m.s.Append(now, m.util(now))
			if m.rst != nil {
				m.rst(now)
			}
		}
		if now+u.Interval <= until {
			e.Schedule(u.Interval, tick)
		}
	}
	e.Schedule(u.Interval, tick)
}

// FlowThroughput tracks per-flow received bytes and renders a
// windowed-throughput series normalized to a reference rate, which is
// how the paper's testbed figures present per-flow throughput.
type FlowThroughput struct {
	Name    string
	window  sim.Time
	ref     sim.Rate
	bytes   int64
	lastT   sim.Time
	series  Series
	started bool
}

// NewFlowThroughput tracks one flow; samples are bytes-per-window
// normalized by ref (1.0 = full link).
func NewFlowThroughput(name string, window sim.Time, ref sim.Rate) *FlowThroughput {
	return &FlowThroughput{Name: name, window: window, ref: ref, series: Series{Name: name}}
}

// OnBytes records delivered payload bytes at virtual time now.
func (f *FlowThroughput) OnBytes(now sim.Time, n int) {
	if !f.started {
		f.lastT = now - now%f.window
		f.started = true
	}
	for now >= f.lastT+f.window {
		f.flush()
	}
	f.bytes += int64(n)
}

func (f *FlowThroughput) flush() {
	end := f.lastT + f.window
	norm := float64(f.bytes) / float64(f.ref.BytesIn(f.window))
	f.series.Append(end, norm)
	f.bytes = 0
	f.lastT = end
}

// Finish flushes the partially filled window and returns the series.
func (f *FlowThroughput) Finish() *Series {
	if f.started && f.bytes > 0 {
		f.flush()
	}
	return &f.series
}
