package stats

import (
	"strings"
	"testing"

	"amrt/internal/sim"
)

func TestRenderASCIIBasics(t *testing.T) {
	s := &Series{Name: "util"}
	for i := 0; i <= 10; i++ {
		s.Append(sim.Time(i)*sim.Millisecond, float64(i)/10)
	}
	out := RenderASCII(PlotOptions{Width: 40, Height: 8, YLabel: "fraction"}, s)
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs rendered")
	}
	if !strings.Contains(out, "*=util") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "y: fraction") {
		t.Error("y label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8+3 {
		t.Errorf("rendered %d lines, want 11", len(lines))
	}
	// A rising series puts a glyph in the top row (at the right) and in
	// the bottom row (at the left).
	if !strings.Contains(lines[0], "*") || !strings.Contains(lines[7], "*") {
		t.Error("series does not span the value range")
	}
}

func TestRenderASCIIMultiSeriesAndClamp(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Append(0, 0.5)
	a.Append(sim.Millisecond, 2.0) // exceeds fixed YMax, must clamp
	b.Append(0, 1.0)
	b.Append(sim.Millisecond, 0.1)
	out := RenderASCII(PlotOptions{Width: 20, Height: 6, YMax: 1}, a, b)
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	if out := RenderASCII(PlotOptions{}); out != "(no data)\n" {
		t.Errorf("empty render = %q", out)
	}
	flat := &Series{Name: "flat"}
	flat.Append(5, 0)
	if out := RenderASCII(PlotOptions{}, flat); out != "(no data)\n" {
		t.Errorf("degenerate render = %q", out)
	}
}
