// Package stats provides the measurement machinery the evaluation uses:
// flow-completion-time collection with percentiles, slowdown, link
// utilization sampling into time series, and per-flow throughput
// tracking.
package stats

import (
	"fmt"
	"math"
	"sort"

	"amrt/internal/sim"
)

// FCTSample records one completed flow.
type FCTSample struct {
	Size  int64 // flow size in bytes
	Start sim.Time
	End   sim.Time
}

// FCT returns the flow completion time.
func (s FCTSample) FCT() sim.Time { return s.End - s.Start }

// FCTCollector accumulates completed flows and answers the aggregate
// questions the paper's figures ask: average FCT, tail FCT, slowdown,
// and breakdowns by flow size class.
type FCTCollector struct {
	samples []FCTSample
	sorted  bool
}

// NewFCTCollector returns an empty collector.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// Add records a completed flow.
func (c *FCTCollector) Add(size int64, start, end sim.Time) {
	if end < start {
		panic(fmt.Sprintf("stats: flow ends (%v) before it starts (%v)", end, start))
	}
	c.samples = append(c.samples, FCTSample{Size: size, Start: start, End: end})
	c.sorted = false
}

// Count returns the number of completed flows.
func (c *FCTCollector) Count() int { return len(c.samples) }

// Merge concatenates the given collectors' samples into one collector in
// canonical (End, Start, Size) order. Per-shard collectors accumulate in
// their own completion order; the canonical sort makes every aggregate —
// including the floating-point folds in Mean and MeanSlowdown, which are
// sensitive to summation order — a pure function of the sample set, so a
// merged multi-shard run reports byte-identical statistics to the
// single-shard reference. (Samples identical in all three fields are
// interchangeable, so the sort's tie order cannot affect any aggregate.)
func Merge(parts ...*FCTCollector) *FCTCollector {
	out := NewFCTCollector()
	for _, p := range parts {
		if p != nil {
			out.samples = append(out.samples, p.samples...)
		}
	}
	sort.Slice(out.samples, func(i, j int) bool {
		a, b := out.samples[i], out.samples[j]
		switch {
		case a.End != b.End:
			return a.End < b.End
		case a.Start != b.Start:
			return a.Start < b.Start
		}
		return a.Size < b.Size
	})
	return out
}

// Samples returns the raw samples (not a copy; do not mutate).
func (c *FCTCollector) Samples() []FCTSample { return c.samples }

// Mean returns the average FCT, or 0 with no samples.
func (c *FCTCollector) Mean() sim.Time {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range c.samples {
		sum += float64(s.FCT())
	}
	return sim.Time(sum / float64(len(c.samples)))
}

func (c *FCTCollector) ensureSorted() {
	if c.sorted {
		return
	}
	sort.Slice(c.samples, func(i, j int) bool { return c.samples[i].FCT() < c.samples[j].FCT() })
	c.sorted = true
}

// Percentile returns the p-th percentile FCT (p in [0,100]) using
// nearest-rank on the sorted samples.
func (c *FCTCollector) Percentile(p float64) sim.Time {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return sim.Time(percentileOfSorted(c.samples, p))
}

func percentileOfSorted(sorted []FCTSample, p float64) float64 {
	if p <= 0 {
		return float64(sorted[0].FCT())
	}
	if p >= 100 {
		return float64(sorted[len(sorted)-1].FCT())
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return float64(sorted[rank].FCT())
}

// P99 is shorthand for the 99th percentile.
func (c *FCTCollector) P99() sim.Time { return c.Percentile(99) }

// MeanSlowdown returns the average of FCT/idealFCT across flows, where
// idealFCT is the time to serialize the flow at rate plus the base RTT.
func (c *FCTCollector) MeanSlowdown(rate sim.Rate, rtt sim.Time) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range c.samples {
		ideal := float64(rate.TxTime(int(s.Size))) + float64(rtt)
		sum += float64(s.FCT()) / ideal
	}
	return sum / float64(len(c.samples))
}

// Filter returns a collector holding only samples that satisfy keep.
func (c *FCTCollector) Filter(keep func(FCTSample) bool) *FCTCollector {
	out := NewFCTCollector()
	for _, s := range c.samples {
		if keep(s) {
			out.samples = append(out.samples, s)
		}
	}
	return out
}

// BySize partitions samples at the boundary bytes: (<boundary, >=boundary).
func (c *FCTCollector) BySize(boundary int64) (small, large *FCTCollector) {
	small = c.Filter(func(s FCTSample) bool { return s.Size < boundary })
	large = c.Filter(func(s FCTSample) bool { return s.Size >= boundary })
	return small, large
}

// JainIndex computes Jain's fairness index over a set of rates or
// throughputs: (Σx)² / (n·Σx²), 1.0 = perfectly fair, 1/n = one flow
// takes everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
