package stats

import (
	"math"
	"testing"
)

func TestDescribeEmptyAndSingle(t *testing.T) {
	if s := Describe(nil); s != (Summary{}) {
		t.Errorf("Describe(nil) = %+v, want zero", s)
	}
	s := Describe([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.Std != 0 || s.CI95 != 0 {
		t.Errorf("Describe([42]) = %+v", s)
	}
}

func TestDescribeKnownSample(t *testing.T) {
	// xs = 2,4,4,4,5,5,7,9: mean 5, sample std sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Describe(xs)
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Describe = %+v", s)
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	// df=7 → t=2.365.
	wantCI := 2.365 * wantStd / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestDescribeLargeSampleUsesNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	s := Describe(xs)
	if s.N != 100 || math.Abs(s.Mean-4.5) > 1e-12 {
		t.Fatalf("Describe = %+v", s)
	}
	wantCI := 1.96 * s.Std / 10
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v (normal critical value)", s.CI95, wantCI)
	}
}
