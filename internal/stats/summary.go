package stats

import "math"

// Summary describes a small sample of scalar measurements the way the
// paper's multi-seed figures report them: mean, sample standard
// deviation, and a 95% confidence half-width on the mean.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// Std is the sample (n−1) standard deviation; 0 for n < 2.
	Std float64 `json:"std"`
	// CI95 is the half-width of the 95% confidence interval on the
	// mean, using Student's t critical value for the sample's degrees
	// of freedom; 0 for n < 2.
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond that the normal 1.96 is close enough.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// Describe summarizes xs. An empty sample yields the zero Summary; a
// single sample has Mean == Min == Max and zero spread.
func Describe(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N-1))
	df := s.N - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	s.CI95 = t * s.Std / math.Sqrt(float64(s.N))
	return s
}
