package topo

import (
	"strings"
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

func switchByName(t *testing.T, f *Fabric, name string) *netsim.Switch {
	t.Helper()
	for _, sw := range f.Switches {
		if sw.Name() == name {
			return sw
		}
	}
	t.Fatalf("no switch named %q", name)
	return nil
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 8} {
		cfg := DefaultFatTree()
		cfg.K = k
		f := NewFatTree(cfg)
		CheckConnected(f.Net)

		half := k / 2
		wantHosts := k * k * k / 4
		if len(f.Hosts) != wantHosts || cfg.Hosts() != wantHosts {
			t.Errorf("k=%d: hosts = %d (cfg %d), want %d", k, len(f.Hosts), cfg.Hosts(), wantHosts)
		}
		if len(f.HostDownlinks) != wantHosts {
			t.Errorf("k=%d: downlinks = %d, want %d", k, len(f.HostDownlinks), wantHosts)
		}
		if want := 5 * k * k / 4; len(f.Switches) != want {
			t.Errorf("k=%d: switches = %d, want %d", k, len(f.Switches), want)
		}
		// The defining fat-tree property: every switch — edge, agg,
		// core — is the same k-port part.
		for _, sw := range f.Switches {
			if got := len(sw.Ports()); got != k {
				t.Errorf("k=%d: switch %s has %d ports, want %d", k, sw.Name(), got, k)
			}
		}

		// ECMP route widths. Hosts are pod-major, k²/4 per pod, so
		// f.Hosts[k²/4] is h1.0.0, the first host of pod 1.
		podHosts := k * k / 4
		local := f.Hosts[0]           // h0.0.0, under edge0.0
		samePod := f.Hosts[half]      // h0.1.0, under edge0.1
		crossPod := f.Hosts[podHosts] // h1.0.0
		edge := switchByName(t, f, "edge0.0")
		agg := switchByName(t, f, "agg0.0")
		core := switchByName(t, f, "core0")
		if got := len(edge.Routes(local.ID())); got != 1 {
			t.Errorf("k=%d: edge→attached host ECMP width = %d, want 1", k, got)
		}
		if got := len(edge.Routes(samePod.ID())); got != half {
			t.Errorf("k=%d: edge→same-pod host ECMP width = %d, want %d", k, got, half)
		}
		if got := len(edge.Routes(crossPod.ID())); got != half {
			t.Errorf("k=%d: edge→cross-pod host ECMP width = %d, want %d", k, got, half)
		}
		if got := len(agg.Routes(crossPod.ID())); got != half {
			t.Errorf("k=%d: agg→cross-pod host ECMP width = %d, want %d", k, got, half)
		}
		if got := len(core.Routes(crossPod.ID())); got != 1 {
			t.Errorf("k=%d: core→host ECMP width = %d, want 1", k, got)
		}

		// Route symmetry: the first-hop fan-out toward a peer is the
		// same in both directions of any cross-pod pair.
		revEdge := switchByName(t, f, "edge1.0")
		fwd := len(edge.Routes(crossPod.ID()))
		rev := len(revEdge.Routes(local.ID()))
		if fwd != rev {
			t.Errorf("k=%d: asymmetric ECMP widths: %d forward vs %d reverse", k, fwd, rev)
		}

		// Uniform rates ⇒ full bisection: K³/8 core links carry half
		// the hosts' access bandwidth.
		wantBisect := sim.Rate(int64(k*k*k/8) * int64(cfg.HostRate))
		if got := cfg.BisectionBandwidth(); got != wantBisect {
			t.Errorf("k=%d: bisection = %d, want %d", k, got, wantBisect)
		}
		if got := sim.Rate(int64(wantHosts/2) * int64(cfg.HostRate)); got != wantBisect {
			t.Errorf("k=%d: bisection %d != hosts/2 × rate %d", k, wantBisect, got)
		}
		if got := cfg.Oversubscription(); got != 1.0 {
			t.Errorf("k=%d: uniform-rate oversubscription = %v, want 1.0", k, got)
		}
	}
}

func TestFatTreeOversubscribed(t *testing.T) {
	cfg := DefaultFatTree()
	cfg.AggRate = cfg.HostRate / 2
	if got := cfg.Oversubscription(); got != 2.0 {
		t.Errorf("oversubscription = %v, want 2.0", got)
	}
	// CoreRate defaults to AggRate, so the bisection shrinks with it.
	want := sim.Rate(int64(cfg.K*cfg.K*cfg.K/8) * int64(cfg.AggRate))
	if got := cfg.BisectionBandwidth(); got != want {
		t.Errorf("bisection = %d, want %d", got, want)
	}
}

func TestFatTreeCanonicalDistinguishes(t *testing.T) {
	base := DefaultFatTree()
	if !strings.HasPrefix(base.Canonical(), "fattree") {
		t.Errorf("canonical %q lacks family prefix", base.Canonical())
	}
	bigger := base
	bigger.K = 8
	slower := base
	slower.AggRate = 5 * sim.Gbps
	seen := map[string]string{}
	for name, c := range map[string]FatTreeConfig{"base": base, "k8": bigger, "agg5": slower} {
		key := c.Canonical()
		if prev, dup := seen[key]; dup {
			t.Errorf("configs %s and %s share canonical %q", prev, name, key)
		}
		seen[key] = name
	}
}

func TestFatTreeInvalidArityPanics(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("K=%d did not panic", k)
				}
			}()
			cfg := DefaultFatTree()
			cfg.K = k
			NewFatTree(cfg)
		}()
	}
}

func TestClosShape(t *testing.T) {
	cfg := DefaultClos()
	f := NewClos(cfg)
	CheckConnected(f.Net)

	wantHosts := cfg.Pods * cfg.LeavesPerPod * cfg.HostsPerLeaf
	if len(f.Hosts) != wantHosts || cfg.Hosts() != wantHosts {
		t.Errorf("hosts = %d (cfg %d), want %d", len(f.Hosts), cfg.Hosts(), wantHosts)
	}
	if want := cfg.Pods*(cfg.LeavesPerPod+cfg.AggsPerPod) + cfg.Cores; len(f.Switches) != want {
		t.Errorf("switches = %d, want %d", len(f.Switches), want)
	}
	// Per-tier port counts follow the full-mesh wiring of each tier.
	for _, sw := range f.Switches {
		var want int
		switch {
		case strings.HasPrefix(sw.Name(), "leaf"):
			want = cfg.HostsPerLeaf + cfg.AggsPerPod
		case strings.HasPrefix(sw.Name(), "agg"):
			want = cfg.LeavesPerPod + cfg.Cores
		case strings.HasPrefix(sw.Name(), "core"):
			want = cfg.Pods * cfg.AggsPerPod
		default:
			t.Fatalf("unexpected switch name %q", sw.Name())
		}
		if got := len(sw.Ports()); got != want {
			t.Errorf("switch %s has %d ports, want %d", sw.Name(), got, want)
		}
	}

	// ECMP widths: leaf fans over its pod's aggs, aggs over all cores,
	// cores back over the destination pod's aggs.
	podHosts := cfg.LeavesPerPod * cfg.HostsPerLeaf
	local := f.Hosts[0]                      // h0.0.0
	sameLeafPod := f.Hosts[cfg.HostsPerLeaf] // h0.1.0
	crossPod := f.Hosts[podHosts]            // h1.0.0
	leaf := switchByName(t, f, "leaf0.0")
	agg := switchByName(t, f, "agg0.0")
	core := switchByName(t, f, "core0")
	if got := len(leaf.Routes(local.ID())); got != 1 {
		t.Errorf("leaf→attached host ECMP width = %d, want 1", got)
	}
	if got := len(leaf.Routes(sameLeafPod.ID())); got != cfg.AggsPerPod {
		t.Errorf("leaf→same-pod host ECMP width = %d, want %d", got, cfg.AggsPerPod)
	}
	if got := len(leaf.Routes(crossPod.ID())); got != cfg.AggsPerPod {
		t.Errorf("leaf→cross-pod host ECMP width = %d, want %d", got, cfg.AggsPerPod)
	}
	if got := len(agg.Routes(crossPod.ID())); got != cfg.Cores {
		t.Errorf("agg→cross-pod host ECMP width = %d, want %d", got, cfg.Cores)
	}
	if got := len(core.Routes(crossPod.ID())); got != cfg.AggsPerPod {
		t.Errorf("core→host ECMP width = %d, want %d", got, cfg.AggsPerPod)
	}

	// The default is the documented 2:1 leaf oversubscription under a
	// cores × aggs × pods/2 bisection.
	if got := cfg.Oversubscription(); got != 2.0 {
		t.Errorf("default oversubscription = %v, want 2.0", got)
	}
	want := sim.Rate(int64(cfg.Cores*cfg.AggsPerPod*cfg.Pods/2) * int64(cfg.CoreRate))
	if got := cfg.BisectionBandwidth(); got != want {
		t.Errorf("bisection = %d, want %d", got, want)
	}
}

func TestClosInvalidDimensionsPanics(t *testing.T) {
	cfg := DefaultClos()
	cfg.AggsPerPod = 0
	defer func() {
		if recover() == nil {
			t.Error("zero AggsPerPod did not panic")
		}
	}()
	NewClos(cfg)
}
