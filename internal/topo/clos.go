package topo

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// ClosConfig parameterizes a three-tier folded-Clos fabric of the kind
// production datacenters oversubscribe: Pods of leaf switches under
// aggregation switches, joined by a top tier of core (spine) switches.
// Every leaf connects to every aggregation switch of its pod, and
// every aggregation switch connects to every core, so host count and
// oversubscription are independent knobs — unlike the fat-tree, whose
// arity fixes both. Heterogeneous 10/25/100G tiers are the expected
// configuration (hosts at HostRate, leaf uplinks at FabricRate, core
// links at CoreRate).
type ClosConfig struct {
	// Pods is the number of leaf+aggregation pods.
	Pods int
	// LeavesPerPod is the number of leaf (ToR) switches in each pod.
	LeavesPerPod int
	// AggsPerPod is the number of aggregation switches in each pod;
	// each leaf has one uplink to each.
	AggsPerPod int
	// Cores is the number of top-tier switches; each aggregation
	// switch has one uplink to each.
	Cores int
	// HostsPerLeaf is the number of hosts under each leaf.
	HostsPerLeaf int

	// HostRate is the host <-> leaf link rate (default 25 Gbps).
	HostRate sim.Rate
	// FabricRate is the leaf <-> aggregation link rate; 0 means
	// HostRate.
	FabricRate sim.Rate
	// CoreRate is the aggregation <-> core link rate; 0 means
	// FabricRate.
	CoreRate sim.Rate

	// LinkDelay is the one-way propagation delay of every link. A
	// cross-pod path crosses 6 links each way, so RTT = 12×LinkDelay
	// (+serialization). Default ≈ 8.33 µs for a ~100 µs cross-pod RTT.
	LinkDelay sim.Time

	// HostQueue and SwitchQueue build the egress queues; nil means a
	// 128-packet drop-tail. The experiment runner fills them from the
	// protocol stack via Overlay.
	HostQueue   netsim.QueueFactory
	SwitchQueue netsim.QueueFactory

	// Jitter is the per-delivery random delay bound (see
	// netsim.Network.SetJitter); JitterSeed seeds its stream.
	Jitter     sim.Time
	JitterSeed int64

	// Marker, if non-nil, is called per switch egress port to attach a
	// dequeue marker (AMRT's anti-ECN marker). Host NICs never mark.
	Marker func() netsim.DequeueMarker
}

// DefaultClos is a 2:1-oversubscribed 64-host heterogeneous fabric:
// 2 pods × 2 leaves × 16 hosts at 25 Gbps under 100 Gbps leaf uplinks
// (16×25 / 2×100 = 2:1 at the leaf), 2 aggregation switches per pod,
// 2 cores at 100 Gbps, ~100 µs cross-pod RTT.
func DefaultClos() ClosConfig {
	c := ClosConfig{
		Pods:         2,
		LeavesPerPod: 2,
		AggsPerPod:   2,
		Cores:        2,
		HostsPerLeaf: 16,
		HostRate:     25 * sim.Gbps,
		FabricRate:   100 * sim.Gbps,
		CoreRate:     100 * sim.Gbps,
		LinkDelay:    8333 * sim.Nanosecond, // 12 hops ≈ 100µs RTT
	}
	c.Jitter = c.HostRate.TxTime(netsim.MSS) / 2
	return c
}

// withDefaults fills zero rate tiers.
func (c ClosConfig) withDefaults() ClosConfig {
	if c.FabricRate == 0 {
		c.FabricRate = c.HostRate
	}
	if c.CoreRate == 0 {
		c.CoreRate = c.FabricRate
	}
	return c
}

// Hosts implements Builder: Pods × LeavesPerPod × HostsPerLeaf.
func (c ClosConfig) Hosts() int { return c.Pods * c.LeavesPerPod * c.HostsPerLeaf }

// AccessRate implements Builder: the host <-> leaf link rate.
func (c ClosConfig) AccessRate() sim.Rate { return c.HostRate }

// Oversubscription returns the leaf-tier oversubscription ratio: host
// bandwidth into a leaf over its uplink bandwidth,
// (HostsPerLeaf·HostRate)/(AggsPerPod·FabricRate). 1.0 is
// non-blocking; production fabrics commonly run 2–4.
func (c ClosConfig) Oversubscription() float64 {
	c = c.withDefaults()
	return float64(c.HostsPerLeaf) * float64(c.HostRate) /
		(float64(c.AggsPerPod) * float64(c.FabricRate))
}

// BisectionBandwidth returns the aggregate rate crossing a bisection of
// the pods: Cores × AggsPerPod × Pods/2 core links × CoreRate.
func (c ClosConfig) BisectionBandwidth() sim.Rate {
	c = c.withDefaults()
	return sim.Rate(int64(c.Cores*c.AggsPerPod*c.Pods/2) * int64(c.CoreRate))
}

// Canonical implements Builder.
func (c ClosConfig) Canonical() string {
	c = c.withDefaults()
	return canon("clos",
		"pods", c.Pods, "leaves", c.LeavesPerPod, "aggs", c.AggsPerPod,
		"cores", c.Cores, "hostsperleaf", c.HostsPerLeaf,
		"hostrate", int64(c.HostRate), "fabricrate", int64(c.FabricRate), "corerate", int64(c.CoreRate),
		"linkdelay", int64(c.LinkDelay), "jitter", int64(c.Jitter), "jitterseed", c.JitterSeed,
	)
}

// Build implements Builder: it copies the overlay into the config and
// builds the fabric.
func (c ClosConfig) Build(ov Overlay) *Fabric {
	c.HostQueue, c.SwitchQueue, c.Marker = ov.HostQueue, ov.SwitchQueue, ov.Marker
	return NewClos(c)
}

// NewClos builds the three-tier Clos on a fresh network and installs
// shortest-path ECMP routes. Switch names are "leafP.I", "aggP.I"
// (pod P, index I) and "coreI"; host names are "hP.L.I" (pod, leaf,
// index) — the names the fault-spec grammar resolves against. It
// panics on non-positive dimensions.
func NewClos(cfg ClosConfig) *Fabric {
	if cfg.Pods <= 0 || cfg.LeavesPerPod <= 0 || cfg.AggsPerPod <= 0 ||
		cfg.Cores <= 0 || cfg.HostsPerLeaf <= 0 {
		panic("topo: clos dimensions must be positive")
	}
	cfg = cfg.withDefaults()
	hq := defaultQueue(cfg.HostQueue)
	sq := defaultQueue(cfg.SwitchQueue)
	n := netsim.New()
	if cfg.Jitter > 0 {
		n.SetJitter(cfg.Jitter, cfg.JitterSeed)
	}
	mark := func(p *netsim.Port) {
		if cfg.Marker != nil {
			p.Marker = cfg.Marker()
		}
	}

	f := &Fabric{Net: n, AccessRate: cfg.HostRate, BaseRTT: 12 * cfg.LinkDelay}
	cores := make([]*netsim.Switch, cfg.Cores)
	for i := range cores {
		cores[i] = n.NewSwitch(fmt.Sprintf("core%d", i))
	}
	for p := 0; p < cfg.Pods; p++ {
		aggs := make([]*netsim.Switch, cfg.AggsPerPod)
		for i := range aggs {
			aggs[i] = n.NewSwitch(fmt.Sprintf("agg%d.%d", p, i))
		}
		for l := 0; l < cfg.LeavesPerPod; l++ {
			leaf := n.NewSwitch(fmt.Sprintf("leaf%d.%d", p, l))
			for h := 0; h < cfg.HostsPerLeaf; h++ {
				host := n.NewHost(fmt.Sprintf("h%d.%d.%d", p, l, h))
				n.AttachPort(host, leaf, cfg.HostRate, cfg.LinkDelay, hq())
				down := n.AttachPort(leaf, host, cfg.HostRate, cfg.LinkDelay, sq())
				mark(down)
				f.Hosts = append(f.Hosts, host)
				f.HostDownlinks = append(f.HostDownlinks, down)
			}
			for _, agg := range aggs {
				up := n.AttachPort(leaf, agg, cfg.FabricRate, cfg.LinkDelay, sq())
				down := n.AttachPort(agg, leaf, cfg.FabricRate, cfg.LinkDelay, sq())
				mark(up)
				mark(down)
			}
			f.Switches = append(f.Switches, leaf)
		}
		for _, agg := range aggs {
			for _, core := range cores {
				up := n.AttachPort(agg, core, cfg.CoreRate, cfg.LinkDelay, sq())
				down := n.AttachPort(core, agg, cfg.CoreRate, cfg.LinkDelay, sq())
				mark(up)
				mark(down)
			}
		}
		f.Switches = append(f.Switches, aggs...)
	}
	f.Switches = append(f.Switches, cores...)
	InstallShortestPathRoutes(n)
	return f
}
