package topo

import (
	"fmt"
	"strconv"
	"strings"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// Overlay carries the per-stack pieces a fabric builder weaves into the
// topology: the queue disciplines and the optional egress marker. The
// experiment runner fills it from the protocol stack (and wraps the
// switch queue factory with the fault plan's loss processes) before
// handing it to Builder.Build.
type Overlay struct {
	// HostQueue builds host NIC egress queues; nil means a 128-packet
	// drop-tail.
	HostQueue netsim.QueueFactory
	// SwitchQueue builds switch egress queues; nil means a 128-packet
	// drop-tail. Protocols override it (trimming for NDP, priority+cap
	// for AMRT, ...).
	SwitchQueue netsim.QueueFactory
	// Marker, if non-nil, is called per switch egress port to attach a
	// dequeue marker (AMRT's anti-ECN marker). Host NICs never mark.
	Marker func() netsim.DequeueMarker
}

// Fabric is a built topology in the shape the experiment runner drives:
// the network, the hosts in deterministic index order, the per-host
// bottleneck downlinks, and every switch (for trim counting and
// forensics). All builders in this package — leaf–spine, k-ary
// fat-tree, and three-tier Clos — produce one.
type Fabric struct {
	// Net is the built network with shortest-path ECMP routes installed.
	Net *netsim.Network
	// Hosts lists every host; workload FlowSpec Src/Dst index into it.
	Hosts []*netsim.Host
	// HostDownlinks[i] is the last-hop switch egress port toward
	// Hosts[i] — the bottleneck port the utilization metric monitors.
	HostDownlinks []*netsim.Port
	// Switches lists every switch of the fabric, access tier first.
	Switches []*netsim.Switch
	// AccessRate is the host access-link rate, the denominator of the
	// per-downlink utilization metric.
	AccessRate sim.Rate
	// BaseRTT is the worst-case propagation round-trip between two
	// hosts (no queueing or serialization), used for BDP sizing and
	// protocol timeout scheduling.
	BaseRTT sim.Time
}

// Downlink returns the last-hop switch egress port feeding host i.
func (f *Fabric) Downlink(i int) *netsim.Port { return f.HostDownlinks[i] }

// RTT returns the fabric's worst-case propagation round-trip time.
func (f *Fabric) RTT() sim.Time { return f.BaseRTT }

// Builder constructs a Fabric from a parameterized topology config with
// a protocol stack's overlay applied. LeafSpineConfig, FatTreeConfig,
// and ClosConfig implement it; the experiment runner and the sweep
// cache key are written against this interface so new fabric families
// plug in without touching either.
type Builder interface {
	// Build constructs the fabric on a fresh network, applies the
	// overlay, and installs shortest-path ECMP routes. It panics on
	// invalid dimensions (validate first via the amrt API for
	// error-returning checks).
	Build(ov Overlay) *Fabric
	// Hosts returns the host count the built fabric will have.
	Hosts() int
	// AccessRate returns the host access-link rate.
	AccessRate() sim.Rate
	// Canonical returns a deterministic, collision-free encoding of
	// every field that influences simulation results; the sweep cache
	// key folds it in (see docs/API.md).
	Canonical() string
}

// AccessRate implements Builder: the host <-> leaf link rate.
func (c LeafSpineConfig) AccessRate() sim.Rate { return c.HostRate }

// Canonical implements Builder.
func (c LeafSpineConfig) Canonical() string {
	return canon("leafspine",
		"leaves", c.Leaves, "spines", c.Spines, "hostsperleaf", c.HostsPerLeaf,
		"hostrate", int64(c.HostRate), "fabricrate", int64(c.FabricRate),
		"linkdelay", int64(c.LinkDelay), "jitter", int64(c.Jitter), "jitterseed", c.JitterSeed,
	)
}

// Build implements Builder: it copies the overlay into the config and
// builds the two-tier fabric.
func (c LeafSpineConfig) Build(ov Overlay) *Fabric {
	c.HostQueue, c.SwitchQueue, c.Marker = ov.HostQueue, ov.SwitchQueue, ov.Marker
	t := NewLeafSpine(c)
	return &Fabric{
		Net:           t.Net,
		Hosts:         t.Hosts,
		HostDownlinks: t.HostDownlinks,
		Switches:      append(append([]*netsim.Switch{}, t.Leaves...), t.Spines...),
		AccessRate:    c.HostRate,
		BaseRTT:       t.RTT(),
	}
}

// canon encodes a topology kind plus alternating name/value pairs into
// the canonical cache-key form "kind:name=value,name=value,...".
// Values must be int, int64, or sim-typed integers already converted.
func canon(kind string, pairs ...any) string {
	var b strings.Builder
	b.WriteString(kind)
	sep := ":"
	for i := 0; i+1 < len(pairs); i += 2 {
		b.WriteString(sep)
		sep = ","
		b.WriteString(pairs[i].(string))
		b.WriteByte('=')
		switch v := pairs[i+1].(type) {
		case int:
			b.WriteString(strconv.Itoa(v))
		case int64:
			b.WriteString(strconv.FormatInt(v, 10))
		default:
			panic(fmt.Sprintf("topo: canon value %v must be int or int64", v))
		}
	}
	return b.String()
}

// defaultQueue returns q, or the standard 128-packet drop-tail factory
// when q is nil.
func defaultQueue(q netsim.QueueFactory) netsim.QueueFactory {
	if q != nil {
		return q
	}
	return func() netsim.Queue { return netsim.NewDropTail(128) }
}
