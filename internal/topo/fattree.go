package topo

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// FatTreeConfig parameterizes a classic k-ary fat-tree (Al-Fares et
// al.): K pods, each with K/2 edge and K/2 aggregation switches, K/2
// hosts per edge switch, and (K/2)² core switches — K³/4 hosts in
// total (K=8 → 128, K=16 → 1024, K=24 → 3456). Link rates may differ
// per tier, so an oversubscribed 10/25/100G fabric is one config away;
// with uniform rates the tree has full bisection bandwidth.
type FatTreeConfig struct {
	// K is the arity: pod count and switch port count. Must be even
	// and at least 4.
	K int

	// HostRate is the host <-> edge link rate (default 10 Gbps).
	HostRate sim.Rate
	// AggRate is the edge <-> aggregation link rate; 0 means HostRate.
	AggRate sim.Rate
	// CoreRate is the aggregation <-> core link rate; 0 means AggRate.
	CoreRate sim.Rate

	// LinkDelay is the one-way propagation delay of every link, in ns
	// units of sim.Time. A cross-pod path crosses 6 links each way, so
	// RTT = 12×LinkDelay (+serialization). Default ≈ 8.33 µs for a
	// ~100 µs cross-pod RTT.
	LinkDelay sim.Time

	// HostQueue and SwitchQueue build the egress queues; nil means a
	// 128-packet drop-tail. The experiment runner fills them from the
	// protocol stack via Overlay.
	HostQueue   netsim.QueueFactory
	SwitchQueue netsim.QueueFactory

	// Jitter is the per-delivery random delay bound (see
	// netsim.Network.SetJitter); JitterSeed seeds its stream.
	Jitter     sim.Time
	JitterSeed int64

	// Marker, if non-nil, is called per switch egress port to attach a
	// dequeue marker (AMRT's anti-ECN marker). Host NICs never mark.
	Marker func() netsim.DequeueMarker
}

// DefaultFatTree is the smallest legal fat-tree: K=4 (16 hosts),
// uniform 10 Gbps links, ~100 µs cross-pod RTT, and half an MSS of
// delivery jitter (same rationale as ScenarioConfig.Jitter).
func DefaultFatTree() FatTreeConfig {
	c := FatTreeConfig{
		K:         4,
		HostRate:  10 * sim.Gbps,
		LinkDelay: 8333 * sim.Nanosecond, // 12 hops ≈ 100µs RTT
	}
	c.Jitter = c.HostRate.TxTime(netsim.MSS) / 2
	return c
}

// withDefaults fills zero rate tiers.
func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.AggRate == 0 {
		c.AggRate = c.HostRate
	}
	if c.CoreRate == 0 {
		c.CoreRate = c.AggRate
	}
	return c
}

// Hosts implements Builder: K³/4.
func (c FatTreeConfig) Hosts() int { return c.K * c.K * c.K / 4 }

// AccessRate implements Builder: the host <-> edge link rate.
func (c FatTreeConfig) AccessRate() sim.Rate { return c.HostRate }

// Oversubscription returns the edge-tier oversubscription ratio: host
// bandwidth into an edge switch over its uplink bandwidth,
// (K/2·HostRate)/(K/2·AggRate). 1.0 means non-blocking at the edge.
func (c FatTreeConfig) Oversubscription() float64 {
	c = c.withDefaults()
	return float64(c.HostRate) / float64(c.AggRate)
}

// BisectionBandwidth returns the aggregate rate crossing a bisection of
// the pods: K³/8 core links × CoreRate. With uniform rates this equals
// half the hosts times their access rate — full bisection.
func (c FatTreeConfig) BisectionBandwidth() sim.Rate {
	c = c.withDefaults()
	return sim.Rate(int64(c.K*c.K*c.K/8) * int64(c.CoreRate))
}

// Canonical implements Builder.
func (c FatTreeConfig) Canonical() string {
	c = c.withDefaults()
	return canon("fattree",
		"k", c.K,
		"hostrate", int64(c.HostRate), "aggrate", int64(c.AggRate), "corerate", int64(c.CoreRate),
		"linkdelay", int64(c.LinkDelay), "jitter", int64(c.Jitter), "jitterseed", c.JitterSeed,
	)
}

// Build implements Builder: it copies the overlay into the config and
// builds the tree.
func (c FatTreeConfig) Build(ov Overlay) *Fabric {
	c.HostQueue, c.SwitchQueue, c.Marker = ov.HostQueue, ov.SwitchQueue, ov.Marker
	return NewFatTree(c)
}

// NewFatTree builds the k-ary fat-tree on a fresh network and installs
// shortest-path ECMP routes. Switch names are "edgeP.I", "aggP.I"
// (pod P, index I) and "coreI"; host names are "hP.E.I" (pod, edge,
// index) — the names the fault-spec grammar resolves against. It
// panics if K is odd or below 4.
func NewFatTree(cfg FatTreeConfig) *Fabric {
	if cfg.K < 4 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity K=%d must be even and >= 4", cfg.K))
	}
	cfg = cfg.withDefaults()
	hq := defaultQueue(cfg.HostQueue)
	sq := defaultQueue(cfg.SwitchQueue)
	n := netsim.New()
	if cfg.Jitter > 0 {
		n.SetJitter(cfg.Jitter, cfg.JitterSeed)
	}
	mark := func(p *netsim.Port) {
		if cfg.Marker != nil {
			p.Marker = cfg.Marker()
		}
	}

	k, half := cfg.K, cfg.K/2
	f := &Fabric{Net: n, AccessRate: cfg.HostRate, BaseRTT: 12 * cfg.LinkDelay}

	cores := make([]*netsim.Switch, half*half)
	for i := range cores {
		cores[i] = n.NewSwitch(fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		edges := make([]*netsim.Switch, half)
		aggs := make([]*netsim.Switch, half)
		for i := 0; i < half; i++ {
			edges[i] = n.NewSwitch(fmt.Sprintf("edge%d.%d", p, i))
			aggs[i] = n.NewSwitch(fmt.Sprintf("agg%d.%d", p, i))
		}
		for e, edge := range edges {
			for h := 0; h < half; h++ {
				host := n.NewHost(fmt.Sprintf("h%d.%d.%d", p, e, h))
				n.AttachPort(host, edge, cfg.HostRate, cfg.LinkDelay, hq())
				down := n.AttachPort(edge, host, cfg.HostRate, cfg.LinkDelay, sq())
				mark(down)
				f.Hosts = append(f.Hosts, host)
				f.HostDownlinks = append(f.HostDownlinks, down)
			}
			for _, agg := range aggs {
				up := n.AttachPort(edge, agg, cfg.AggRate, cfg.LinkDelay, sq())
				down := n.AttachPort(agg, edge, cfg.AggRate, cfg.LinkDelay, sq())
				mark(up)
				mark(down)
			}
		}
		// Aggregation switch i of every pod uplinks to the i-th stripe
		// of core switches: cores [i·K/2, (i+1)·K/2).
		for i, agg := range aggs {
			for j := 0; j < half; j++ {
				core := cores[i*half+j]
				up := n.AttachPort(agg, core, cfg.CoreRate, cfg.LinkDelay, sq())
				down := n.AttachPort(core, agg, cfg.CoreRate, cfg.LinkDelay, sq())
				mark(up)
				mark(down)
			}
		}
		f.Switches = append(f.Switches, edges...)
		f.Switches = append(f.Switches, aggs...)
	}
	f.Switches = append(f.Switches, cores...)
	InstallShortestPathRoutes(n)
	return f
}
