package topo

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

func TestLeafSpineRoutesComplete(t *testing.T) {
	ls := NewLeafSpine(DefaultLeafSpine())
	CheckConnected(ls.Net)
	if len(ls.Hosts) != 40 {
		t.Fatalf("hosts = %d, want 40", len(ls.Hosts))
	}
	// A leaf reaches a remote host through every spine (ECMP width =
	// #spines) and a local host through exactly one port.
	leaf0 := ls.Leaves[0]
	remote := ls.HostsOfLeaf(1)[0]
	local := ls.HostsOfLeaf(0)[0]
	if got := len(leaf0.Routes(remote.ID())); got != ls.Cfg.Spines {
		t.Errorf("leaf0 routes to remote host = %d, want %d", got, ls.Cfg.Spines)
	}
	if got := len(leaf0.Routes(local.ID())); got != 1 {
		t.Errorf("leaf0 routes to local host = %d, want 1", got)
	}
	// A spine reaches any host through exactly one leaf.
	for _, h := range ls.Hosts[:5] {
		if got := len(ls.Spines[0].Routes(h.ID())); got != 1 {
			t.Errorf("spine routes to %s = %d, want 1", h.Name(), got)
		}
	}
}

func TestLeafSpineCrossRackRTT(t *testing.T) {
	ls := NewLeafSpine(DefaultLeafSpine())
	src := ls.HostsOfLeaf(0)[0]
	dst := ls.HostsOfLeaf(1)[0]
	var fwd, back sim.Time
	dst.Handler = func(pkt *netsim.Packet) {
		fwd = ls.Net.Engine.Now()
		dst.Send(&netsim.Packet{Flow: pkt.Flow, Type: netsim.Ack, Size: netsim.ControlSize,
			Src: dst.ID(), Dst: src.ID(), Prio: netsim.PrioControl})
	}
	src.Handler = func(pkt *netsim.Packet) { back = ls.Net.Engine.Now() }
	ls.Net.Engine.Schedule(0, func() {
		src.Send(&netsim.Packet{Flow: 1, Type: netsim.Data, Size: netsim.ControlSize,
			Src: src.ID(), Dst: dst.ID(), Prio: netsim.PrioData})
	})
	ls.Net.Run(sim.Second)
	if fwd == 0 || back == 0 {
		t.Fatal("round trip did not complete")
	}
	// Propagation RTT is 8×12.5µs = 100µs; serialization of two 64B
	// packets over 8 hops adds ~0.4µs and delivery jitter up to 600ns
	// per hop adds a few more.
	rtt := back
	if rtt < 100*sim.Microsecond || rtt > 106*sim.Microsecond {
		t.Errorf("cross-rack RTT = %v, want ~100-106µs", rtt)
	}
	if got := ls.RTT(); got != 100*sim.Microsecond {
		t.Errorf("RTT() = %v, want 100µs", got)
	}
}

func TestLeafSpineIntraLeafStaysLocal(t *testing.T) {
	ls := NewLeafSpine(DefaultLeafSpine())
	src := ls.HostsOfLeaf(0)[0]
	dst := ls.HostsOfLeaf(0)[1]
	var hops int8
	dst.Handler = func(pkt *netsim.Packet) { hops = pkt.Hops }
	ls.Net.Engine.Schedule(0, func() {
		src.Send(&netsim.Packet{Flow: 1, Type: netsim.Data, Size: netsim.MSS,
			Src: src.ID(), Dst: dst.ID(), Prio: netsim.PrioData})
	})
	ls.Net.Run(sim.Second)
	if hops != 2 {
		t.Errorf("intra-leaf path hops = %d, want 2", hops)
	}
}

func TestLeafSpineMarkerInstalled(t *testing.T) {
	cfg := DefaultLeafSpine()
	markers := 0
	cfg.Marker = func() netsim.DequeueMarker {
		markers++
		return netsim.NewAntiECNMarker()
	}
	ls := NewLeafSpine(cfg)
	if ls.Downlink(0).Marker == nil {
		t.Error("downlink has no marker")
	}
	// Host NICs must NOT mark — a sender's own back-to-back output
	// would clear CE before the network saw it (§3 puts marking in
	// switches).
	if ls.Hosts[0].NIC().Marker != nil {
		t.Error("host NIC unexpectedly has a marker")
	}
	// 1 per host downlink + 2 per leaf-spine link pair.
	want := len(ls.Hosts) + 2*cfg.Leaves*cfg.Spines
	if markers != want {
		t.Errorf("markers created = %d, want %d", markers, want)
	}
}

func TestLeafSpineECMPSpreadsFlows(t *testing.T) {
	ls := NewLeafSpine(DefaultLeafSpine())
	src := ls.HostsOfLeaf(0)[0]
	dst := ls.HostsOfLeaf(1)[0]
	dst.Handler = func(pkt *netsim.Packet) {}
	for f := 0; f < 256; f++ {
		f := f
		ls.Net.Engine.Schedule(sim.Time(f)*sim.Microsecond*20, func() {
			src.Send(&netsim.Packet{Flow: netsim.FlowID(f), Type: netsim.Data, Size: netsim.MSS,
				Src: src.ID(), Dst: dst.ID(), Prio: netsim.PrioData})
		})
	}
	ls.Net.Run(sim.Second)
	// Count spine usage via leaf0 uplink ports.
	used := 0
	for _, p := range ls.Leaves[0].Ports() {
		if _, isSwitch := p.Link().To.(*netsim.Switch); isSwitch && p.TxPackets > 0 {
			used++
		}
	}
	if used != ls.Cfg.Spines {
		t.Errorf("flows used %d spines, want all %d", used, ls.Cfg.Spines)
	}
}

func TestChainTopologyPaths(t *testing.T) {
	s := NewChain(DefaultScenario())
	CheckConnected(s.Net)
	if len(s.Bottlenecks) != 2 {
		t.Fatal("chain must expose 2 bottlenecks")
	}
	// f0: S0 -> R0 must cross both bottlenecks.
	done := false
	s.Receivers[0].Handler = func(pkt *netsim.Packet) { done = true }
	s.Net.Engine.Schedule(0, func() {
		s.Senders[0].Send(&netsim.Packet{Flow: 1, Type: netsim.Data, Size: netsim.MSS,
			Src: s.Senders[0].ID(), Dst: s.Receivers[0].ID(), Prio: netsim.PrioData})
	})
	s.Net.Run(sim.Second)
	if !done {
		t.Fatal("f0 packet not delivered")
	}
	if s.Bottlenecks[0].TxPackets != 1 || s.Bottlenecks[1].TxPackets != 1 {
		t.Errorf("f0 should cross both bottlenecks: btl0=%d btl1=%d",
			s.Bottlenecks[0].TxPackets, s.Bottlenecks[1].TxPackets)
	}
	// f1: S1 -> R1 crosses only bottleneck 0.
	got := false
	s.Receivers[1].Handler = func(pkt *netsim.Packet) { got = true }
	s.Net.Engine.Schedule(0, func() {
		s.Senders[1].Send(&netsim.Packet{Flow: 2, Type: netsim.Data, Size: netsim.MSS,
			Src: s.Senders[1].ID(), Dst: s.Receivers[1].ID(), Prio: netsim.PrioData})
	})
	s.Net.Run(2 * sim.Second)
	if !got {
		t.Fatal("f1 packet not delivered")
	}
	if s.Bottlenecks[0].TxPackets != 2 {
		t.Errorf("btl0 should carry f1: %d", s.Bottlenecks[0].TxPackets)
	}
	if s.Bottlenecks[1].TxPackets != 1 {
		t.Errorf("btl1 should not carry f1: %d", s.Bottlenecks[1].TxPackets)
	}
}

func TestFanSharedBottleneck(t *testing.T) {
	s := NewFan(DefaultScenario())
	CheckConnected(s.Net)
	if len(s.Senders) != 4 || len(s.Receivers) != 4 {
		t.Fatal("fan should have 4 pairs")
	}
	n := 0
	for i := range s.Receivers {
		s.Receivers[i].Handler = func(pkt *netsim.Packet) { n++ }
	}
	s.Net.Engine.Schedule(0, func() {
		for i := range s.Senders {
			s.Senders[i].Send(&netsim.Packet{Flow: netsim.FlowID(i), Type: netsim.Data, Size: netsim.MSS,
				Src: s.Senders[i].ID(), Dst: s.Receivers[i].ID(), Prio: netsim.PrioData})
		}
	})
	s.Net.Run(sim.Second)
	if n != 4 {
		t.Fatalf("delivered %d, want 4", n)
	}
	if s.Bottlenecks[0].TxPackets != 4 {
		t.Errorf("all flows must cross the shared bottleneck: %d", s.Bottlenecks[0].TxPackets)
	}
}

func TestTestbedDynamicIndependentBottlenecks(t *testing.T) {
	s := NewTestbedDynamic(TestbedScenario())
	CheckConnected(s.Net)
	for i := range s.Receivers {
		s.Receivers[i].Handler = func(pkt *netsim.Packet) {}
	}
	s.Net.Engine.Schedule(0, func() {
		for i := range s.Senders {
			s.Senders[i].Send(&netsim.Packet{Flow: netsim.FlowID(i), Type: netsim.Data, Size: netsim.MSS,
				Src: s.Senders[i].ID(), Dst: s.Receivers[i].ID(), Prio: netsim.PrioData})
		}
	})
	s.Net.Run(sim.Second)
	if s.Bottlenecks[0].TxPackets != 2 || s.Bottlenecks[1].TxPackets != 2 {
		t.Errorf("each bottleneck should carry its 2 flows: %d, %d",
			s.Bottlenecks[0].TxPackets, s.Bottlenecks[1].TxPackets)
	}
}

func TestTestbedMultiBottleneckLayout(t *testing.T) {
	s := NewTestbedMultiBottleneck(TestbedScenario())
	if s.Receivers[0] != s.Receivers[2] {
		t.Error("f1 and f3 must share a destination host (SRPT competition)")
	}
	counts := make(map[string]int)
	for i := range s.Receivers {
		r := s.Receivers[i]
		r.Handler = func(pkt *netsim.Packet) { counts[r.Name()]++ }
	}
	s.Net.Engine.Schedule(0, func() {
		for i := range s.Senders {
			s.Senders[i].Send(&netsim.Packet{Flow: netsim.FlowID(i + 1), Type: netsim.Data, Size: netsim.MSS,
				Src: s.Senders[i].ID(), Dst: s.Receivers[i].ID(), Prio: netsim.PrioData})
		}
	})
	s.Net.Run(sim.Second)
	// f1 crosses btlA+btlB+R0 downlink; f2 crosses btlA; f3 crosses
	// R0 downlink (and btlB); f4 crosses btlB.
	if got := s.Bottlenecks[0].TxPackets; got != 2 {
		t.Errorf("btlA packets = %d, want 2 (f1,f2)", got)
	}
	if got := s.Bottlenecks[1].TxPackets; got != 3 {
		t.Errorf("btlB packets = %d, want 3 (f1,f3,f4)", got)
	}
	if got := s.Bottlenecks[2].TxPackets; got != 2 {
		t.Errorf("R0 downlink packets = %d, want 2 (f1,f3)", got)
	}
	if counts["R0"] != 2 {
		t.Errorf("R0 received %d, want 2", counts["R0"])
	}
}

func TestFanNCustomPairs(t *testing.T) {
	s := NewFanN(DefaultScenario(), 8)
	if len(s.Senders) != 8 || len(s.Receivers) != 8 {
		t.Error("NewFanN should honor the pair count")
	}
	CheckConnected(s.Net)
}

func TestLeafSpineInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-leaf config did not panic")
		}
	}()
	NewLeafSpine(LeafSpineConfig{Spines: 1, HostsPerLeaf: 1})
}

func TestPaperLeafSpineShape(t *testing.T) {
	cfg := PaperLeafSpine()
	if cfg.Leaves != 10 || cfg.Spines != 8 || cfg.HostsPerLeaf != 40 {
		t.Errorf("paper topology shape wrong: %+v", cfg)
	}
	if testing.Short() {
		t.Skip("skipping full-size build in -short mode")
	}
	ls := NewLeafSpine(cfg)
	if len(ls.Hosts) != 400 {
		t.Errorf("paper topology hosts = %d, want 400", len(ls.Hosts))
	}
	CheckConnected(ls.Net)
}
