package topo

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// ScenarioConfig carries the knobs shared by the small motivation and
// testbed topologies.
type ScenarioConfig struct {
	Rate      sim.Rate // every link
	LinkDelay sim.Time // one-way, per link

	HostQueue   netsim.QueueFactory
	SwitchQueue netsim.QueueFactory
	Marker      func() netsim.DequeueMarker

	// Jitter is the per-delivery random delay bound (see
	// netsim.Network.SetJitter); JitterSeed seeds its stream.
	Jitter     sim.Time
	JitterSeed int64
}

// DefaultScenario matches §2's settings: 10 Gbps links, 100 µs RTT
// across the two-switch path (4 links each way → 12.5 µs per link),
// 128-packet buffers.
func DefaultScenario() ScenarioConfig {
	c := ScenarioConfig{
		Rate:      10 * sim.Gbps,
		LinkDelay: 12500 * sim.Nanosecond,
	}
	// Half a packet serialization time of delivery jitter: enough to
	// re-randomize arrival phases within a few packets, so synchronized
	// senders do not phase-lock against deterministic drop-tail queues
	// (the receivers are bitmap-based, so sub-packet reordering is
	// harmless).
	c.Jitter = c.Rate.TxTime(netsim.MSS) / 2
	return c
}

// TestbedScenario matches §7's 1 GbE testbed.
func TestbedScenario() ScenarioConfig {
	c := DefaultScenario()
	c.Rate = sim.Gbps
	c.Jitter = c.Rate.TxTime(netsim.MSS) / 2
	return c
}

func (c ScenarioConfig) hostQueue() netsim.QueueFactory {
	if c.HostQueue != nil {
		return c.HostQueue
	}
	return func() netsim.Queue { return netsim.NewDropTail(128) }
}

func (c ScenarioConfig) switchQueue() netsim.QueueFactory {
	if c.SwitchQueue != nil {
		return c.SwitchQueue
	}
	return func() netsim.Queue { return netsim.NewDropTail(128) }
}

// newNet builds the scenario network with jitter applied.
func (c ScenarioConfig) newNet() *netsim.Network {
	n := netsim.New()
	if c.Jitter > 0 {
		n.SetJitter(c.Jitter, c.JitterSeed)
	}
	return n
}

// Scenario is a built small topology with named hosts.
type Scenario struct {
	Net       *netsim.Network
	Cfg       ScenarioConfig
	Senders   []*netsim.Host
	Receivers []*netsim.Host
	Switches  []*netsim.Switch

	// Bottlenecks are the egress ports the experiment monitors, in the
	// order the figure discusses them.
	Bottlenecks []*netsim.Port
}

func (c ScenarioConfig) mark(p *netsim.Port) {
	if c.Marker != nil {
		p.Marker = c.Marker()
	}
}

// addHost attaches a host to sw with symmetric links and returns it.
// Only the switch-side egress gets a marker: §3 places anti-ECN marking
// in switches, and a sender NIC marking its own back-to-back output
// would clear CE before the network saw the packet.
func (c ScenarioConfig) addHost(n *netsim.Network, sw *netsim.Switch, name string) *netsim.Host {
	h := n.NewHost(name)
	n.AttachPort(h, sw, c.Rate, c.LinkDelay, c.hostQueue()())
	down := n.AttachPort(sw, h, c.Rate, c.LinkDelay, c.switchQueue()())
	c.mark(down)
	return h
}

// connect joins two switches with symmetric links and returns the a→b port.
func (c ScenarioConfig) connect(n *netsim.Network, a, b *netsim.Switch) *netsim.Port {
	ab := n.AttachPort(a, b, c.Rate, c.LinkDelay, c.switchQueue()())
	ba := n.AttachPort(b, a, c.Rate, c.LinkDelay, c.switchQueue()())
	c.mark(ab)
	c.mark(ba)
	return ab
}

// NewChain builds the Fig. 1 multi-bottleneck scenario:
//
//	S0,S1 @SW0 --btl0--> SW1 (R1 here; S2,S3 here) --btl1--> SW2 (R0,R2,R3)
//
// Flow f0: S0→R0 crosses both bottlenecks; f1: S1→R1 crosses btl0;
// f2: S2→R2 and f3: S3→R3 cross btl1. Bottlenecks[0] is SW0→SW1,
// Bottlenecks[1] is SW1→SW2.
func NewChain(cfg ScenarioConfig) *Scenario {
	n := cfg.newNet()
	sw0 := n.NewSwitch("sw0")
	sw1 := n.NewSwitch("sw1")
	sw2 := n.NewSwitch("sw2")
	s := &Scenario{Net: n, Cfg: cfg, Switches: []*netsim.Switch{sw0, sw1, sw2}}

	s.Senders = []*netsim.Host{
		cfg.addHost(n, sw0, "S0"),
		cfg.addHost(n, sw0, "S1"),
		cfg.addHost(n, sw1, "S2"),
		cfg.addHost(n, sw1, "S3"),
	}
	s.Receivers = []*netsim.Host{
		cfg.addHost(n, sw2, "R0"),
		cfg.addHost(n, sw1, "R1"),
		cfg.addHost(n, sw2, "R2"),
		cfg.addHost(n, sw2, "R3"),
	}
	btl0 := cfg.connect(n, sw0, sw1)
	btl1 := cfg.connect(n, sw1, sw2)
	s.Bottlenecks = []*netsim.Port{btl0, btl1}
	InstallShortestPathRoutes(n)
	return s
}

// NewFan builds the Fig. 2 dynamic-traffic scenario: four senders on one
// switch, four receivers on another, a single shared bottleneck between.
// Bottlenecks[0] is the shared link.
func NewFan(cfg ScenarioConfig) *Scenario {
	return NewFanN(cfg, 4)
}

// NewFanN is NewFan with a configurable number of sender/receiver pairs.
func NewFanN(cfg ScenarioConfig, pairs int) *Scenario {
	n := cfg.newNet()
	swA := n.NewSwitch("swA")
	swB := n.NewSwitch("swB")
	s := &Scenario{Net: n, Cfg: cfg, Switches: []*netsim.Switch{swA, swB}}
	for i := 0; i < pairs; i++ {
		s.Senders = append(s.Senders, cfg.addHost(n, swA, fmt.Sprintf("S%d", i)))
		s.Receivers = append(s.Receivers, cfg.addHost(n, swB, fmt.Sprintf("R%d", i)))
	}
	s.Bottlenecks = []*netsim.Port{cfg.connect(n, swA, swB)}
	InstallShortestPathRoutes(n)
	return s
}

// NewTestbedDynamic builds the Fig. 8 testbed: two independent
// dumbbells. f1,f2 (S0,S1→R0,R1) share Bottlenecks[0]; f3,f4 (S2,S3→
// R2,R3) share Bottlenecks[1].
func NewTestbedDynamic(cfg ScenarioConfig) *Scenario {
	n := cfg.newNet()
	swA1 := n.NewSwitch("swA1")
	swB1 := n.NewSwitch("swB1")
	swA2 := n.NewSwitch("swA2")
	swB2 := n.NewSwitch("swB2")
	s := &Scenario{Net: n, Cfg: cfg, Switches: []*netsim.Switch{swA1, swB1, swA2, swB2}}
	s.Senders = []*netsim.Host{
		cfg.addHost(n, swA1, "S0"),
		cfg.addHost(n, swA1, "S1"),
		cfg.addHost(n, swA2, "S2"),
		cfg.addHost(n, swA2, "S3"),
	}
	s.Receivers = []*netsim.Host{
		cfg.addHost(n, swB1, "R0"),
		cfg.addHost(n, swB1, "R1"),
		cfg.addHost(n, swB2, "R2"),
		cfg.addHost(n, swB2, "R3"),
	}
	s.Bottlenecks = []*netsim.Port{
		cfg.connect(n, swA1, swB1),
		cfg.connect(n, swA2, swB2),
	}
	// A cross-link keeps the network connected (the testbed is one
	// fabric); no experiment flow crosses it.
	cfg.connect(n, swB1, swA2)
	InstallShortestPathRoutes(n)
	return s
}

// NewTestbedMultiBottleneck builds the Fig. 10 leaf-spine testbed:
//
//	SW0 --btlA--> SW1 --btlB--> SW2
//
// f1: S0@SW0 → R0@SW2 (crosses btlA, btlB, and R0's downlink)
// f2: S1@SW0 → R1@SW1 (shares btlA with f1)
// f3: S2@SW1 → R0@SW2 (same destination host as f1 — SRPT competition)
// f4: S3@SW1 → R3@SW2 (shares btlB with f3)
//
// Bottlenecks[0]=btlA, Bottlenecks[1]=btlB, Bottlenecks[2]=R0 downlink.
func NewTestbedMultiBottleneck(cfg ScenarioConfig) *Scenario {
	n := cfg.newNet()
	sw0 := n.NewSwitch("sw0")
	sw1 := n.NewSwitch("sw1")
	sw2 := n.NewSwitch("sw2")
	s := &Scenario{Net: n, Cfg: cfg, Switches: []*netsim.Switch{sw0, sw1, sw2}}
	s.Senders = []*netsim.Host{
		cfg.addHost(n, sw0, "S0"),
		cfg.addHost(n, sw0, "S1"),
		cfg.addHost(n, sw1, "S2"),
		cfg.addHost(n, sw1, "S3"),
	}
	r0 := cfg.addHost(n, sw2, "R0")
	r1 := cfg.addHost(n, sw1, "R1")
	r3 := cfg.addHost(n, sw2, "R3")
	s.Receivers = []*netsim.Host{r0, r1, r0, r3} // per-flow receivers: f3 targets R0
	btlA := cfg.connect(n, sw0, sw1)
	btlB := cfg.connect(n, sw1, sw2)
	InstallShortestPathRoutes(n)
	// R0's downlink is sw2's port toward r0: the first port of sw2 whose
	// link terminates at r0.
	var r0Down *netsim.Port
	for _, p := range sw2.Ports() {
		if p.Link().To.ID() == r0.ID() {
			r0Down = p
			break
		}
	}
	s.Bottlenecks = []*netsim.Port{btlA, btlB, r0Down}
	return s
}
