// Package topo builds the network topologies used in the paper's
// evaluation — leaf–spine fabrics, dumbbells, multi-bottleneck chains and
// the two testbed layouts — and installs shortest-path ECMP routes.
package topo

import (
	"fmt"

	"amrt/internal/netsim"
)

// InstallShortestPathRoutes computes, for every (switch, destination
// host) pair, the set of egress ports on shortest paths and registers
// them as equal-cost routes. It must be called after all links exist.
//
// The computation is a reverse BFS from each host, so it works for any
// topology the builders in this package produce (and any custom one),
// with all-equal link weights.
func InstallShortestPathRoutes(n *netsim.Network) {
	// Forward adjacency: for each node, its egress ports.
	type edge struct {
		owner netsim.Node
		port  *netsim.Port
	}
	incoming := make(map[netsim.NodeID][]edge)
	addPorts := func(owner netsim.Node, ports []*netsim.Port) {
		for _, p := range ports {
			to := p.Link().To
			incoming[to.ID()] = append(incoming[to.ID()], edge{owner: owner, port: p})
		}
	}
	for _, s := range n.Switches() {
		addPorts(s, s.Ports())
	}
	for _, h := range n.Hosts() {
		if h.NIC() != nil {
			addPorts(h, []*netsim.Port{h.NIC()})
		}
	}

	for _, dst := range n.Hosts() {
		if dst.NIC() == nil {
			continue
		}
		// BFS over reverse edges from the destination host.
		dist := map[netsim.NodeID]int{dst.ID(): 0}
		queue := []netsim.NodeID{dst.ID()}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range incoming[cur] {
				id := e.owner.ID()
				if _, seen := dist[id]; !seen {
					dist[id] = dist[cur] + 1
					queue = append(queue, id)
				}
			}
		}
		for _, s := range n.Switches() {
			d, ok := dist[s.ID()]
			if !ok {
				continue // switch cannot reach dst
			}
			for _, p := range s.Ports() {
				if nd, ok := dist[p.Link().To.ID()]; ok && nd == d-1 {
					s.AddRoute(dst.ID(), p)
				}
			}
		}
	}
}

// CheckConnected panics if any switch lacks a route to any host; useful
// as a builder postcondition.
func CheckConnected(n *netsim.Network) {
	for _, s := range n.Switches() {
		for _, h := range n.Hosts() {
			if len(s.Routes(h.ID())) == 0 {
				panic(fmt.Sprintf("topo: switch %s has no route to host %s", s.Name(), h.Name()))
			}
		}
	}
}
