package topo

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// LeafSpineConfig parameterizes a two-tier Clos fabric. The paper's
// large-scale simulation uses 10 leaves, 8 spines, 40 hosts per leaf,
// 10 Gbps links, and a ~100 µs RTT; the defaults here are that shape at
// a reduced size so the full figure set regenerates quickly.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	HostRate   sim.Rate // host <-> leaf links
	FabricRate sim.Rate // leaf <-> spine links

	// LinkDelay is the one-way propagation delay of every link. A
	// 4-hop cross-rack path has RTT = 8×LinkDelay (+serialization).
	LinkDelay sim.Time

	// HostQueue and SwitchQueue build the egress queues; nil means a
	// 128-packet drop-tail. Protocols override SwitchQueue (trimming for
	// NDP, priority+cap for AMRT, ...).
	HostQueue   netsim.QueueFactory
	SwitchQueue netsim.QueueFactory

	// Jitter is the per-delivery random delay bound (see
	// netsim.Network.SetJitter); JitterSeed seeds its stream.
	Jitter     sim.Time
	JitterSeed int64

	// Marker, if non-nil, is called per switch egress port to attach a
	// dequeue marker (AMRT's anti-ECN marker). Host NICs never mark:
	// §3 places the mechanism in switches, and a sender's own
	// back-to-back output would otherwise clear CE before the network
	// ever saw the packet.
	Marker func() netsim.DequeueMarker
}

// DefaultLeafSpine is the scaled-down default evaluation fabric.
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Leaves:       4,
		Spines:       4,
		HostsPerLeaf: 10,
		HostRate:     10 * sim.Gbps,
		FabricRate:   10 * sim.Gbps,
		LinkDelay:    12500 * sim.Nanosecond, // 8 hops ≈ 100µs RTT
		Jitter:       600 * sim.Nanosecond,   // half an MSS at 10G; see ScenarioConfig.Jitter
	}
}

// PaperLeafSpine is the full-scale topology from §8.1.
func PaperLeafSpine() LeafSpineConfig {
	c := DefaultLeafSpine()
	c.Leaves, c.Spines, c.HostsPerLeaf = 10, 8, 40
	return c
}

// Hosts returns the total host count of the configured fabric.
func (c LeafSpineConfig) Hosts() int { return c.Leaves * c.HostsPerLeaf }

// LeafSpine is a built fabric.
type LeafSpine struct {
	Net    *netsim.Network
	Cfg    LeafSpineConfig
	Hosts  []*netsim.Host // hosts of leaf l occupy [l*H, (l+1)*H)
	Leaves []*netsim.Switch
	Spines []*netsim.Switch

	// HostDownlinks[i] is the leaf egress port toward host i — the
	// "bottleneck" port the utilization figures monitor.
	HostDownlinks []*netsim.Port
}

// NewLeafSpine builds the fabric on a fresh network and installs routes.
func NewLeafSpine(cfg LeafSpineConfig) *LeafSpine {
	if cfg.Leaves <= 0 || cfg.Spines <= 0 || cfg.HostsPerLeaf <= 0 {
		panic("topo: leaf-spine dimensions must be positive")
	}
	hq := cfg.HostQueue
	if hq == nil {
		hq = func() netsim.Queue { return netsim.NewDropTail(128) }
	}
	sq := cfg.SwitchQueue
	if sq == nil {
		sq = func() netsim.Queue { return netsim.NewDropTail(128) }
	}
	t := &LeafSpine{Net: netsim.New(), Cfg: cfg}
	if cfg.Jitter > 0 {
		t.Net.SetJitter(cfg.Jitter, cfg.JitterSeed)
	}
	for l := 0; l < cfg.Leaves; l++ {
		t.Leaves = append(t.Leaves, t.Net.NewSwitch(fmt.Sprintf("leaf%d", l)))
	}
	for s := 0; s < cfg.Spines; s++ {
		t.Spines = append(t.Spines, t.Net.NewSwitch(fmt.Sprintf("spine%d", s)))
	}
	mark := func(p *netsim.Port) {
		if cfg.Marker != nil {
			p.Marker = cfg.Marker()
		}
	}
	for l, leaf := range t.Leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			host := t.Net.NewHost(fmt.Sprintf("h%d.%d", l, h))
			t.Net.AttachPort(host, leaf, cfg.HostRate, cfg.LinkDelay, hq())
			down := t.Net.AttachPort(leaf, host, cfg.HostRate, cfg.LinkDelay, sq())
			mark(down)
			t.Hosts = append(t.Hosts, host)
			t.HostDownlinks = append(t.HostDownlinks, down)
		}
		for _, spine := range t.Spines {
			up := t.Net.AttachPort(leaf, spine, cfg.FabricRate, cfg.LinkDelay, sq())
			down := t.Net.AttachPort(spine, leaf, cfg.FabricRate, cfg.LinkDelay, sq())
			mark(up)
			mark(down)
		}
	}
	InstallShortestPathRoutes(t.Net)
	return t
}

// HostsOfLeaf returns the hosts attached to leaf l.
func (t *LeafSpine) HostsOfLeaf(l int) []*netsim.Host {
	h := t.Cfg.HostsPerLeaf
	return t.Hosts[l*h : (l+1)*h]
}

// Downlink returns the leaf egress port feeding host i.
func (t *LeafSpine) Downlink(i int) *netsim.Port { return t.HostDownlinks[i] }

// RTT returns the propagation round-trip time of a cross-rack path
// (host-leaf-spine-leaf-host and back): 8 × LinkDelay.
func (t *LeafSpine) RTT() sim.Time { return 8 * t.Cfg.LinkDelay }
