package trace

import (
	"strings"
	"testing"

	"amrt/internal/core"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

func TestRecorderCapAndCount(t *testing.T) {
	r := &Recorder{MaxEvents: 2}
	for i := 0; i < 5; i++ {
		r.Add(Event{At: sim.Time(i), Kind: PacketDelivered})
	}
	if len(r.Events) != 2 || r.TruncatedEvents != 3 {
		t.Errorf("events=%d truncated=%d", len(r.Events), r.TruncatedEvents)
	}
}

func TestEventKindString(t *testing.T) {
	if FlowStart.String() != "start" || PacketDropped.String() != "drop" {
		t.Error("kind names wrong")
	}
	if EventKind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestWriteCSVSorted(t *testing.T) {
	r := &Recorder{}
	r.Add(Event{At: 3000, Kind: FlowDone, Flow: 1})
	r.Add(Event{At: 1000, Kind: FlowStart, Flow: 1})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1.000,start") || !strings.HasPrefix(lines[2], "3.000,done") {
		t.Errorf("CSV not time-ordered:\n%s", b.String())
	}
}

// End-to-end: trace an AMRT incast and verify the recorder sees starts,
// completions, deliveries and drops that match the network counters.
func TestRecorderEndToEnd(t *testing.T) {
	cfg := core.DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, 4)
	cfg.RTT = 100 * sim.Microsecond

	rec := &Recorder{}
	rec.Attach(s.Net, &cfg.Config)
	p := core.New(s.Net, cfg)
	var flows []*transport.Flow
	for i := 0; i < 4; i++ {
		f := p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 200_000, 0)
		rec.RecordStart(f)
		flows = append(flows, f)
	}
	s.Net.Run(2 * sim.Second)

	sums := rec.Summaries()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	var delivered, dropped int
	for _, sm := range sums {
		if !sm.Done {
			t.Errorf("flow %d not done in trace", sm.Flow)
		}
		if sm.Delivered < int(flows[0].NPkts) {
			t.Errorf("flow %d delivered %d < %d packets", sm.Flow, sm.Delivered, flows[0].NPkts)
		}
		delivered += sm.Delivered
		dropped += sm.Dropped
	}
	if int64(dropped) != s.Net.Dropped() {
		t.Errorf("trace drops %d != network drops %d", dropped, s.Net.Dropped())
	}
	if dropped == 0 {
		t.Error("incast should have dropped packets")
	}
}

func TestAttachChainsHooks(t *testing.T) {
	cfg := core.DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, 1)
	cfg.RTT = 100 * sim.Microsecond
	prevData, prevDone := 0, 0
	cfg.OnData = func(*transport.Flow, *netsim.Packet) { prevData++ }
	cfg.OnDone = func(*transport.Flow) { prevDone++ }
	rec := &Recorder{}
	rec.Attach(s.Net, &cfg.Config)
	p := core.New(s.Net, cfg)
	p.AddFlow(1, s.Senders[0], s.Receivers[0], 30_000, 0)
	s.Net.Run(sim.Second)
	if prevData == 0 || prevDone != 1 {
		t.Errorf("original hooks not chained: data=%d done=%d", prevData, prevDone)
	}
	if len(rec.Events) == 0 {
		t.Error("recorder saw nothing")
	}
}
