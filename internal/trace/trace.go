// Package trace records simulation events — flow lifecycles, packet
// deliveries, drops — into structured, written-once records that can be
// dumped as CSV for offline analysis. It is the debugging companion to
// the aggregate statistics in internal/stats: where stats answers "how
// fast", trace answers "what happened to flow 17".
package trace

import (
	"fmt"
	"io"
	"sort"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// EventKind classifies trace records.
type EventKind uint8

// Event kinds.
const (
	FlowStart EventKind = iota
	FlowDone
	PacketDelivered
	PacketDropped
)

var kindNames = [...]string{"start", "done", "deliver", "drop"}

// String returns the CSV tag of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Kind EventKind
	Flow netsim.FlowID
	Seq  int32
	Size int
	Note string
}

// Recorder accumulates events. The zero value is ready to use; attach
// it to a network and transport with Attach.
type Recorder struct {
	Events []Event
	// MaxEvents bounds memory (0 = unbounded); when full, further
	// events are counted but not stored.
	MaxEvents int
	// TruncatedEvents counts records lost to the MaxEvents cap.
	TruncatedEvents int64
}

// Add appends an event, honoring the cap.
func (r *Recorder) Add(e Event) {
	if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
		r.TruncatedEvents++
		return
	}
	r.Events = append(r.Events, e)
}

// Attach hooks the recorder into a network's drop stream and returns
// transport hooks (OnData / OnDone) for the protocol config. Existing
// hooks are chained, not replaced.
func (r *Recorder) Attach(net *netsim.Network, cfg *transport.Config) {
	prevDrop := net.DropHook
	net.DropHook = func(pkt *netsim.Packet) {
		r.Add(Event{At: net.Engine.Now(), Kind: PacketDropped, Flow: pkt.Flow, Seq: pkt.Seq, Size: pkt.Size, Note: pkt.Type.String()})
		if prevDrop != nil {
			prevDrop(pkt)
		}
	}
	prevData := cfg.OnData
	cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
		r.Add(Event{At: net.Engine.Now(), Kind: PacketDelivered, Flow: f.ID, Seq: pkt.Seq, Size: pkt.Size})
		if prevData != nil {
			prevData(f, pkt)
		}
	}
	prevDone := cfg.OnDone
	cfg.OnDone = func(f *transport.Flow) {
		r.Add(Event{At: f.End, Kind: FlowDone, Flow: f.ID, Size: int(f.Size)})
		if prevDone != nil {
			prevDone(f)
		}
	}
}

// RecordStart notes a flow's injection (call alongside AddFlow).
func (r *Recorder) RecordStart(f *transport.Flow) {
	r.Add(Event{At: f.Start, Kind: FlowStart, Flow: f.ID, Size: int(f.Size)})
}

// WriteCSV dumps all events in time order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_us,kind,flow,seq,size,note"); err != nil {
		return err
	}
	evs := make([]Event, len(r.Events))
	copy(evs, r.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%d,%d,%s\n",
			e.At.Microseconds(), e.Kind, e.Flow, e.Seq, e.Size, e.Note); err != nil {
			return err
		}
	}
	return nil
}

// FlowSummary condenses one flow's records.
type FlowSummary struct {
	Flow      netsim.FlowID
	Start     sim.Time
	End       sim.Time
	Done      bool
	Delivered int
	Dropped   int
}

// Summaries aggregates per-flow views of the event stream, ordered by
// flow ID.
func (r *Recorder) Summaries() []FlowSummary {
	byFlow := map[netsim.FlowID]*FlowSummary{}
	order := []netsim.FlowID{}
	get := func(id netsim.FlowID) *FlowSummary {
		s := byFlow[id]
		if s == nil {
			s = &FlowSummary{Flow: id}
			byFlow[id] = s
			order = append(order, id)
		}
		return s
	}
	for _, e := range r.Events {
		s := get(e.Flow)
		switch e.Kind {
		case FlowStart:
			s.Start = e.At
		case FlowDone:
			s.End = e.At
			s.Done = true
		case PacketDelivered:
			s.Delivered++
		case PacketDropped:
			s.Dropped++
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]FlowSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byFlow[id])
	}
	return out
}
