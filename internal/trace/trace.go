// Package trace records simulation events — flow lifecycles, packet
// deliveries, drops — into structured, written-once records that can be
// dumped as CSV for offline analysis. It is the debugging companion to
// the aggregate statistics in internal/stats: where stats answers "how
// fast", trace answers "what happened to flow 17".
package trace

import (
	"fmt"
	"io"
	"sort"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// EventKind classifies trace records.
type EventKind uint8

// Event kinds.
const (
	FlowStart EventKind = iota
	FlowDone
	PacketDelivered
	PacketDropped
)

var kindNames = [...]string{"start", "done", "deliver", "drop"}

// String returns the CSV tag of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Kind EventKind
	Flow netsim.FlowID
	Seq  int32
	Size int
	Note string
}

// Recorder accumulates events. The zero value is ready to use; attach
// it to a network and transport with Attach.
type Recorder struct {
	Events []Event
	// MaxEvents bounds memory (0 = unbounded); when full, further
	// events are counted but not stored.
	MaxEvents int
	// TruncatedEvents counts records lost to the MaxEvents cap.
	TruncatedEvents int64
}

// Add appends an event, honoring the cap.
func (r *Recorder) Add(e Event) {
	if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
		r.TruncatedEvents++
		return
	}
	r.Events = append(r.Events, e)
}

// Attach hooks the recorder into a network's drop stream and the
// transport hooks (OnData / OnDone) of the protocol config. Existing
// hooks are chained, not replaced. On an unpartitioned network this
// records everything; sharded runs attach one recorder per shard with
// AttachShard and merge afterwards.
func (r *Recorder) Attach(net *netsim.Network, cfg *transport.Config) {
	r.AttachShard(net.Shard(0), cfg)
}

// AttachShard hooks the recorder into one shard's drop stream and the
// transport hooks of that shard's protocol config. The recorder then
// only ever runs on the shard's goroutine; use Absorb to merge per-shard
// recorders after the run.
func (r *Recorder) AttachShard(sh *netsim.Shard, cfg *transport.Config) {
	eng := sh.Eng()
	prevDrop := sh.DropHook
	sh.DropHook = func(pkt *netsim.Packet) {
		r.Add(Event{At: eng.Now(), Kind: PacketDropped, Flow: pkt.Flow, Seq: pkt.Seq, Size: pkt.Size, Note: pkt.Type.String()})
		if prevDrop != nil {
			prevDrop(pkt)
		}
	}
	prevData := cfg.OnData
	cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
		r.Add(Event{At: eng.Now(), Kind: PacketDelivered, Flow: f.ID, Seq: pkt.Seq, Size: pkt.Size})
		if prevData != nil {
			prevData(f, pkt)
		}
	}
	prevDone := cfg.OnDone
	cfg.OnDone = func(f *transport.Flow) {
		r.Add(Event{At: f.End, Kind: FlowDone, Flow: f.ID, Size: int(f.Size)})
		if prevDone != nil {
			prevDone(f)
		}
	}
}

// Absorb appends every event of the given recorders (and their
// truncation counts) into r, in argument order. The canonical sort in
// WriteCSV makes the merged dump independent of that order; callers
// that read Events directly should sort as needed.
func (r *Recorder) Absorb(parts ...*Recorder) {
	for _, p := range parts {
		if p == nil || p == r {
			continue
		}
		r.Events = append(r.Events, p.Events...)
		r.TruncatedEvents += p.TruncatedEvents
	}
}

// RecordStart notes a flow's injection (call alongside AddFlow).
func (r *Recorder) RecordStart(f *transport.Flow) {
	r.Add(Event{At: f.Start, Kind: FlowStart, Flow: f.ID, Size: int(f.Size)})
}

// WriteCSV dumps all events in canonical order: time first, then the
// full record content (kind, flow, seq, size, note). Sorting by content
// rather than by recording order makes the bytes written a pure
// function of the set of events, so a merged multi-shard trace is
// byte-identical to the single-shard reference.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_us,kind,flow,seq,size,note"); err != nil {
		return err
	}
	evs := make([]Event, len(r.Events))
	copy(evs, r.Events)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		switch {
		case a.At != b.At:
			return a.At < b.At
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Flow != b.Flow:
			return a.Flow < b.Flow
		case a.Seq != b.Seq:
			return a.Seq < b.Seq
		case a.Size != b.Size:
			return a.Size < b.Size
		}
		return a.Note < b.Note
	})
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%d,%d,%s\n",
			e.At.Microseconds(), e.Kind, e.Flow, e.Seq, e.Size, e.Note); err != nil {
			return err
		}
	}
	return nil
}

// FlowSummary condenses one flow's records.
type FlowSummary struct {
	Flow      netsim.FlowID
	Start     sim.Time
	End       sim.Time
	Done      bool
	Delivered int
	Dropped   int
}

// Summaries aggregates per-flow views of the event stream, ordered by
// flow ID.
func (r *Recorder) Summaries() []FlowSummary {
	byFlow := map[netsim.FlowID]*FlowSummary{}
	order := []netsim.FlowID{}
	get := func(id netsim.FlowID) *FlowSummary {
		s := byFlow[id]
		if s == nil {
			s = &FlowSummary{Flow: id}
			byFlow[id] = s
			order = append(order, id)
		}
		return s
	}
	for _, e := range r.Events {
		s := get(e.Flow)
		switch e.Kind {
		case FlowStart:
			s.Start = e.At
		case FlowDone:
			s.End = e.At
			s.Done = true
		case PacketDelivered:
			s.Delivered++
		case PacketDropped:
			s.Dropped++
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]FlowSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byFlow[id])
	}
	return out
}
