package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicExponential(t *testing.T) {
	p := FailurePolicy{Backoff: 10 * time.Millisecond}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for retry, d := range want {
		if got := p.backoffFor(retry); got != d {
			t.Errorf("backoffFor(%d) = %v, want %v", retry, got, d)
		}
	}
	// The shift is capped: huge retry counts must not overflow.
	if got := p.backoffFor(1000); got != 10*time.Millisecond<<backoffShiftCap {
		t.Errorf("capped backoff = %v", got)
	}
	if got := (FailurePolicy{}).backoffFor(3); got != 0 {
		t.Errorf("zero-base backoff = %v, want 0", got)
	}
}

func TestRunRetryRecoversTransientFailure(t *testing.T) {
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Workers = 1
	cfg.Policy = FailurePolicy{Retries: 2}
	target := cfg.Points[3]
	var fails atomic.Int64
	inner := cfg.Run
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		if p == target && fails.Load() < 2 {
			fails.Add(1)
			return nil, Metrics{}, errors.New("transient")
		}
		return inner(ctx, p)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails.Load() != 2 {
		t.Errorf("point failed %d times, want 2", fails.Load())
	}
	if len(res.Points) != 8 || len(res.Failed) != 0 {
		t.Fatalf("retried campaign: %d points, %d failed", len(res.Points), len(res.Failed))
	}
}

func TestRunQuarantineIsolatesPoisonedPoint(t *testing.T) {
	var computes atomic.Int64
	dir := filepath.Join(t.TempDir(), "cache")

	// A clean reference pass over the same grid into a separate cache.
	var refComputes atomic.Int64
	ref, err := Run(context.Background(), campaignConfig(t, filepath.Join(t.TempDir(), "ref"), &refComputes))
	if err != nil {
		t.Fatal(err)
	}

	cfg := campaignConfig(t, dir, &computes)
	cfg.Policy = FailurePolicy{Retries: 1, Quarantine: true}
	poisoned := cfg.Points[2]
	var attempts atomic.Int64
	inner := cfg.Run
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		if p == poisoned {
			attempts.Add(1)
			return nil, Metrics{}, errors.New("poisoned cell")
		}
		return inner(ctx, p)
	}
	var last Progress
	calls := 0
	cfg.Progress = func(p Progress) { calls++; last = p }
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("quarantined campaign returned error: %v", err)
	}
	if attempts.Load() != 2 {
		t.Errorf("poisoned point attempted %d times, want 2 (1 + 1 retry)", attempts.Load())
	}
	if len(res.Points) != 7 {
		t.Fatalf("degraded campaign completed %d points, want 7", len(res.Points))
	}
	if len(res.Failed) != 1 || res.Failed[0].Point != poisoned || res.Failed[0].Attempts != 2 {
		t.Fatalf("quarantine list = %+v", res.Failed)
	}
	if !strings.Contains(res.Failed[0].Error, "poisoned cell") {
		t.Errorf("quarantine record error = %q", res.Failed[0].Error)
	}
	if calls != 8 || last.Done != 8 || last.Failed != 1 {
		t.Errorf("progress: calls=%d last=%+v", calls, last)
	}
	// Every surviving point's payload is byte-identical to the clean run.
	byPoint := map[Point]string{}
	for _, o := range ref.Points {
		byPoint[o.Point] = string(o.Payload)
	}
	for _, o := range res.Points {
		if byPoint[o.Point] != string(o.Payload) {
			t.Errorf("surviving point %+v payload differs from clean run", o.Point)
		}
	}
}

func TestRunCellTimeoutQuarantinesHangingPoint(t *testing.T) {
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Policy = FailurePolicy{CellTimeout: 5 * time.Millisecond, Quarantine: true}
	hung := cfg.Points[0]
	inner := cfg.Run
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		if p == hung {
			<-ctx.Done() // hang until the per-cell budget expires
			return nil, Metrics{}, ctx.Err()
		}
		return inner(ctx, p)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0].Point != hung {
		t.Fatalf("quarantine list = %+v", res.Failed)
	}
	if !strings.Contains(res.Failed[0].Error, "cell timeout") {
		t.Errorf("timeout failure not labeled: %q", res.Failed[0].Error)
	}
	if len(res.Points) != 7 {
		t.Errorf("campaign completed %d points, want 7", len(res.Points))
	}
}

func TestRunCellTimeoutStrictAborts(t *testing.T) {
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Workers = 1
	cfg.Policy = FailurePolicy{CellTimeout: time.Nanosecond}
	res, err := Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "cell timeout") {
		t.Fatalf("strict cell-timeout campaign err = %v", err)
	}
	if len(res.Points) != 0 {
		t.Errorf("strict cell-timeout campaign completed %d points", len(res.Points))
	}
}

func TestRunQuarantineFailuresInGridOrder(t *testing.T) {
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Policy = FailurePolicy{Quarantine: true}
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		return nil, Metrics{}, fmt.Errorf("always fails")
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != len(cfg.Points) {
		t.Fatalf("%d failures, want %d", len(res.Failed), len(cfg.Points))
	}
	for i, f := range res.Failed {
		if f.Point != cfg.Points[i] {
			t.Errorf("failure %d out of grid order: %+v", i, f.Point)
		}
	}
}

func TestRunCancelledCampaignDoesNotRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Workers = 1
	cfg.Policy = FailurePolicy{Retries: 5, Backoff: time.Hour, Quarantine: true}
	var attempts atomic.Int64
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		attempts.Add(1)
		cancel()
		return nil, Metrics{}, errors.New("boom")
	}
	start := time.Now()
	_, err := Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts.Load() != 1 {
		t.Errorf("cancelled campaign attempted the point %d times, want 1", attempts.Load())
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation blocked on a backoff timer")
	}
}
