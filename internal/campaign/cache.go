package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// envelopeVersion is the on-disk cache entry format; bump on layout
// changes so old entries read as misses instead of garbage.
const envelopeVersion = 1

// envelope is the JSON wrapper around a cached payload. The payload's
// own SHA-256 rides along so rehydration is verified byte-identical:
// a truncated or bit-rotted entry reads as a miss, never as data.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Result  json.RawMessage `json:"result"`
}

// Cache is a content-addressed on-disk result store. Entries live at
// <dir>/<key[:2]>/<key>.json (two-hex-digit fan-out keeps directories
// small on big campaigns); keys are Key digests of the normalized run
// configuration, so a config change — or a SimVersion bump — naturally
// misses. Writes are atomic (temp file + rename), so a campaign killed
// mid-write never leaves a partial entry that a resume would trust.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// validateKey rejects keys the on-disk layout cannot address safely:
// anything shorter than the two characters the shard fan-out slices,
// and any character outside [0-9A-Za-z_-] (which also rules out path
// separators and dot traversal — a key is a digest, never a path).
// Every entry point validates before slicing, so a malformed key is an
// error (Put) or a miss (Get), never a panic.
func validateKey(key string) error {
	if len(key) < 2 {
		return fmt.Errorf("campaign: cache key %q too short (need at least 2 characters)", key)
	}
	for _, r := range key {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '-':
		default:
			return fmt.Errorf("campaign: cache key %q contains %q (allowed: [0-9A-Za-z_-])", key, r)
		}
	}
	return nil
}

// path maps a validated key to its entry file; callers must run
// validateKey first so the shard slice below cannot panic or traverse
// outside the cache root.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the payload stored under key. Any failure — malformed
// key, missing entry, unreadable file, envelope/key/checksum mismatch —
// reports a miss; the caller recomputes and overwrites, which is the
// safe resolution for every corruption mode.
func (c *Cache) Get(key string) ([]byte, bool) {
	if validateKey(key) != nil {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.Version != envelopeVersion || env.Key != key {
		return nil, false
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, false
	}
	return env.Result, true
}

// Put stores payload under key, atomically replacing any prior entry.
// The key must satisfy the shape validateKey enforces (≥ 2 characters
// of [0-9A-Za-z_-]); the payload must be valid JSON (it is embedded raw
// in the envelope).
func (c *Cache) Put(key string, payload []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if !json.Valid(payload) {
		return fmt.Errorf("campaign: cache payload for %s is not valid JSON", key)
	}
	sum := sha256.Sum256(payload)
	env := envelope{
		Version: envelopeVersion,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Result:  json.RawMessage(payload),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(&env); err != nil {
		return fmt.Errorf("campaign: encode cache entry: %w", err)
	}
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: cache shard dir: %w", err)
	}
	prefix := key
	if len(prefix) > 8 {
		prefix = prefix[:8]
	}
	tmp, err := os.CreateTemp(dir, "."+prefix+".tmp*")
	if err != nil {
		return fmt.Errorf("campaign: cache temp file: %w", err)
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("campaign: write cache entry: %w", werr)
		}
		return fmt.Errorf("campaign: close cache entry: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: commit cache entry: %w", err)
	}
	return nil
}

// Len walks the cache and returns the number of committed entries —
// diagnostics for tests and the sweep CLI, not a hot path.
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
