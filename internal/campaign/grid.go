// Package campaign is the sweep-campaign engine behind amrt.Sweep: it
// expands a declarative parameter grid (protocol × workload × topology
// × incast degree × load × fault spec × seed) into run points, executes them on the
// panic-propagating experiment worker pool with cooperative context
// cancellation, memoizes every completed point in a content-addressed
// on-disk cache so interrupted or repeated campaigns resume with cache
// hits instead of recomputation, and aggregates same-cell points across
// seeds into mean/CI summaries via internal/stats.
//
// The package is deliberately ignorant of the simulator: a point's
// payload is opaque bytes (the root package stores canonical
// amrt.Result JSON) plus a small Metrics record used for aggregation.
// That keeps the dependency arrow pointing root → campaign →
// experiment/stats with no cycle.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
)

// Point is one cell-instance of a sweep grid: a single simulation run.
type Point struct {
	Protocol string `json:"protocol"`
	Workload string `json:"workload"`
	// Topology is a topology spec (amrt.ParseTopology grammar); empty
	// means the campaign base's fabric.
	Topology string `json:"topology,omitempty"`
	// Degree is the incast fan-in; 0 means the base's degree. It only
	// matters for campaigns running the "incast" pattern.
	Degree int     `json:"degree,omitempty"`
	Load   float64 `json:"load"`
	Seed   int64   `json:"seed"`
	// Faults is a fault-injection spec (docs/FAULTS.md); empty means a
	// fault-free run.
	Faults string `json:"faults,omitempty"`
	// Shards is the engine-shard count; 0 means the base's count. It is
	// a wall-clock knob only — results are shard-count independent — so
	// cache keys exclude it while cells keep it as a coordinate.
	Shards int `json:"shards,omitempty"`
}

// Cell is a Point stripped of its seed: the unit results are aggregated
// over.
func (p Point) Cell() Point {
	p.Seed = 0
	return p
}

// Grid declares a sweep campaign: the cartesian product of its axes.
type Grid struct {
	Protocols []string
	Workloads []string
	// Topologies lists topology specs to sweep; an empty slice means
	// one base-fabric axis value.
	Topologies []string
	// Degrees lists incast fan-ins to sweep; an empty slice means one
	// base-degree axis value.
	Degrees []int
	Loads   []float64
	Seeds   []int64
	// Faults lists fault specs to sweep; an empty slice means one
	// fault-free axis value.
	Faults []string
	// Shards lists engine-shard counts to sweep; an empty slice means
	// one base-count axis value.
	Shards []int
}

// Expand enumerates the grid's points in deterministic paper order:
// protocol outermost, then workload, topology, degree, load, fault
// spec, shard count, and seed innermost — so all seeds of one cell are
// adjacent and a partial campaign still yields fully-aggregated leading
// cells.
func (g Grid) Expand() []Point {
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	degrees := g.Degrees
	if len(degrees) == 0 {
		degrees = []int{0}
	}
	faults := g.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	shards := g.Shards
	if len(shards) == 0 {
		shards = []int{0}
	}
	n := len(g.Protocols) * len(g.Workloads) * len(topos) * len(degrees) * len(g.Loads) * len(faults) * len(shards) * len(g.Seeds)
	out := make([]Point, 0, n)
	for _, proto := range g.Protocols {
		for _, wl := range g.Workloads {
			for _, tp := range topos {
				for _, deg := range degrees {
					for _, load := range g.Loads {
						for _, f := range faults {
							for _, sh := range shards {
								for _, seed := range g.Seeds {
									out = append(out, Point{
										Protocol: proto, Workload: wl,
										Topology: tp, Degree: deg,
										Load: load, Seed: seed, Faults: f,
										Shards: sh,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Key derives a content-address for a run point: the hex SHA-256 of the
// version string and the caller's canonical field encoding, separated
// by NUL bytes so no field concatenation can collide. The version
// (amrt.SimVersion) is folded in so cache entries from an older
// simulation generation can never satisfy a newer binary.
func Key(version string, fields ...string) string {
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0})
	for _, f := range fields {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
