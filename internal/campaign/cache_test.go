package campaign

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCacheRejectsMalformedKeys(t *testing.T) {
	c, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{"", "a", "../..", "ab/cd", "a.b", "ab\\cd", "key with space"}
	for _, key := range bad {
		if err := c.Put(key, []byte(`{}`)); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("Get(%q) reported a hit for a malformed key", key)
		}
	}
	// No malformed key may have escaped the cache root or created files.
	if n := c.Len(); n != 0 {
		t.Errorf("malformed keys left %d entries behind", n)
	}
}

func TestCacheShortButValidKeysRoundTrip(t *testing.T) {
	c, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	// Keys of length 2..8 exercise both the shard slice (key[:2]) and
	// the temp-file prefix, which must not slice past the key's end.
	for n := 2; n <= 8; n++ {
		key := strings.Repeat("k", n)
		payload := []byte(`{"n":` + strings.Repeat("1", n) + `}`)
		if err := c.Put(key, payload); err != nil {
			t.Fatalf("Put(%q): %v", key, err)
		}
		got, ok := c.Get(key)
		if !ok || string(got) != string(payload) {
			t.Errorf("Get(%q) = %q, %v", key, got, ok)
		}
	}
}
