package campaign

import (
	"context"
	"errors"
	"sync"

	"amrt/internal/experiment"
	"amrt/internal/stats"
)

// Metrics is the numeric slice of one run's result that aggregation
// needs: completion times in microseconds, utilization, and the
// bookkeeping counters. The full result stays opaque payload bytes.
type Metrics struct {
	AFCTUs      float64
	P99Us       float64
	Utilization float64
	Completed   int
	Total       int
	Drops       int64
	Trims       int64
	// DeadlineTotal and DeadlineMissed count deadline-carrying flows
	// and their misses; both are zero outside deadline-RPC runs.
	DeadlineTotal  int
	DeadlineMissed int
}

// Outcome is one completed point: its payload (canonical result JSON),
// its aggregation metrics, and whether it was served from the cache.
type Outcome struct {
	Point     Point
	Payload   []byte
	Metrics   Metrics
	FromCache bool
}

// Cell aggregates every same-cell outcome (all seeds of one
// protocol × workload × load × fault combination) into summary
// statistics with 95% confidence half-widths (stats.Describe).
type Cell struct {
	Point Point // Seed is zero: the cell coordinate
	Seeds int

	AFCTUs      stats.Summary
	P99Us       stats.Summary
	Utilization stats.Summary

	Completed int
	Total     int
	Drops     int64
	Trims     int64
	// DeadlineTotal and DeadlineMissed sum the cell's deadline ledger
	// across seeds; both are zero outside deadline-RPC campaigns.
	DeadlineTotal  int
	DeadlineMissed int
}

// Progress is delivered to the Config.Progress hook after every
// resolved point — completed, or quarantined under the failure policy.
// Callbacks run serialized under the campaign's lock: they may cancel
// the campaign's context but must not block for long.
type Progress struct {
	Done   int
	Total  int
	Hits   int
	Misses int
	// Failed counts points quarantined so far (always zero under the
	// strict default policy, which cancels on the first failure).
	Failed    int
	Point     Point
	FromCache bool
	// Err carries the exhausted point's error text when this update
	// reports a quarantined failure; empty on success.
	Err string
}

// Config wires one campaign run.
type Config struct {
	// Points is the expanded grid (Grid.Expand), executed in order
	// across the worker pool.
	Points []Point
	// Workers caps parallelism below the GOMAXPROCS ceiling; <= 0
	// means the full experiment.ParallelCtx pool.
	Workers int
	// Cache, when non-nil, memoizes completed points under Key(p).
	Cache *Cache
	// Key derives the cache address of a point (ignored without Cache).
	Key func(Point) string
	// Run computes one point: canonical payload bytes plus metrics.
	// It must honor ctx for prompt cancellation.
	Run func(ctx context.Context, p Point) ([]byte, Metrics, error)
	// Decode rehydrates Metrics from cached payload bytes (required
	// when Cache is set).
	Decode func(payload []byte) (Metrics, error)
	// Progress, when non-nil, observes every resolved point.
	Progress func(Progress)
	// Policy is the failure policy; the zero value is strict
	// first-error-cancels-all (see FailurePolicy).
	Policy FailurePolicy
}

// Result is what a campaign returns: per-point outcomes in grid order
// (cancelled or failed points omitted), per-cell aggregates over the
// points that did complete, the quarantine list (points that exhausted
// the failure policy, in grid order; always empty under the strict
// default policy), and the cache ledger.
type Result struct {
	Points []Outcome
	Cells  []Cell
	Failed []PointFailure
	Hits   int
	Misses int
}

// Run executes the campaign. On context cancellation it stops
// dispatching promptly, keeps every already-completed point, and
// returns the partial Result together with ctx.Err(). Point failures
// (cache I/O, runner error, cell timeout) follow Config.Policy: under
// the strict zero value the first failure cancels the remaining points
// and surfaces with the partial Result; with retries each point gets
// bounded re-attempts under deterministic backoff first; with
// Quarantine an exhausted point lands in Result.Failed and the rest of
// the campaign proceeds. A panic inside a runner propagates as
// *experiment.WorkerPanic, matching the figure harness's contract.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Run == nil {
		return nil, errors.New("campaign: Config.Run is required")
	}
	if cfg.Cache != nil && (cfg.Key == nil || cfg.Decode == nil) {
		return nil, errors.New("campaign: Cache requires both Key and Decode")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{}
	var mu sync.Mutex
	var firstErr error
	done := 0
	n := len(cfg.Points)
	failures := make([]*PointFailure, n)
	failed := 0
	outcomes, _, _ := experiment.ParallelCtx(runCtx, n, cfg.Workers, func(i int) *Outcome {
		o, attempts, err := runPointPolicy(runCtx, cfg, cfg.Points[i])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if runCtx.Err() != nil {
				// Campaign cancelled: the point was aborted, not
				// poisoned — cancellation surfaces as ctx.Err() below.
				return nil
			}
			if !cfg.Policy.Quarantine {
				// Strict policy: the first genuine point failure stops
				// the rest of the sweep.
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return nil
			}
			failures[i] = &PointFailure{Point: cfg.Points[i], Attempts: attempts, Error: err.Error()}
			done++
			failed++
			if cfg.Progress != nil {
				cfg.Progress(Progress{
					Done: done, Total: n, Hits: res.Hits, Misses: res.Misses,
					Failed: failed, Point: cfg.Points[i], Err: err.Error(),
				})
			}
			return nil
		}
		done++
		if o.FromCache {
			res.Hits++
		} else {
			res.Misses++
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				Done: done, Total: n, Hits: res.Hits, Misses: res.Misses,
				Failed: failed, Point: o.Point, FromCache: o.FromCache,
			})
		}
		return o
	})
	for _, o := range outcomes {
		if o != nil {
			res.Points = append(res.Points, *o)
		}
	}
	// Quarantined failures assemble in grid order regardless of which
	// worker recorded them first, so reports stay deterministic.
	for _, f := range failures {
		if f != nil {
			res.Failed = append(res.Failed, *f)
		}
	}
	res.Cells = Aggregate(res.Points)
	if firstErr != nil {
		return res, firstErr
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runPoint resolves one point: cache probe, then compute + store.
func runPoint(ctx context.Context, cfg Config, p Point) (*Outcome, error) {
	var key string
	if cfg.Cache != nil {
		key = cfg.Key(p)
		if payload, ok := cfg.Cache.Get(key); ok {
			m, err := cfg.Decode(payload)
			if err == nil {
				return &Outcome{Point: p, Payload: payload, Metrics: m, FromCache: true}, nil
			}
			// An entry whose payload no longer decodes (schema drift
			// without a SimVersion bump) degrades to a miss.
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, m, err := cfg.Run(ctx, p)
	if err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		if err := cfg.Cache.Put(key, payload); err != nil {
			return nil, err
		}
	}
	return &Outcome{Point: p, Payload: payload, Metrics: m}, nil
}

// Aggregate groups outcomes by cell (Point.Cell, i.e. seed stripped) in
// first-seen order and summarizes each group's metrics across seeds.
func Aggregate(points []Outcome) []Cell {
	var order []Point
	groups := map[Point][]Outcome{}
	for _, o := range points {
		c := o.Point.Cell()
		if _, seen := groups[c]; !seen {
			order = append(order, c)
		}
		groups[c] = append(groups[c], o)
	}
	cells := make([]Cell, 0, len(order))
	for _, c := range order {
		g := groups[c]
		cell := Cell{Point: c, Seeds: len(g)}
		afct := make([]float64, 0, len(g))
		p99 := make([]float64, 0, len(g))
		util := make([]float64, 0, len(g))
		for _, o := range g {
			afct = append(afct, o.Metrics.AFCTUs)
			p99 = append(p99, o.Metrics.P99Us)
			util = append(util, o.Metrics.Utilization)
			cell.Completed += o.Metrics.Completed
			cell.Total += o.Metrics.Total
			cell.Drops += o.Metrics.Drops
			cell.Trims += o.Metrics.Trims
			cell.DeadlineTotal += o.Metrics.DeadlineTotal
			cell.DeadlineMissed += o.Metrics.DeadlineMissed
		}
		cell.AFCTUs = stats.Describe(afct)
		cell.P99Us = stats.Describe(p99)
		cell.Utilization = stats.Describe(util)
		cells = append(cells, cell)
	}
	return cells
}
