package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func testGrid() Grid {
	return Grid{
		Protocols: []string{"pHost", "AMRT"},
		Workloads: []string{"WebSearch"},
		Loads:     []float64{0.3, 0.5},
		Seeds:     []int64{1, 2},
	}
}

// fakeRun returns a deterministic payload/metrics pair derived from the
// point, and counts invocations.
func fakeRun(computes *atomic.Int64) func(context.Context, Point) ([]byte, Metrics, error) {
	return func(_ context.Context, p Point) ([]byte, Metrics, error) {
		computes.Add(1)
		m := Metrics{
			AFCTUs:      p.Load*1000 + float64(p.Seed),
			P99Us:       p.Load*2000 + float64(p.Seed),
			Utilization: p.Load,
			Completed:   100, Total: 100,
		}
		payload, err := json.Marshal(m)
		return payload, m, err
	}
}

func decodeMetrics(payload []byte) (Metrics, error) {
	var m Metrics
	err := json.Unmarshal(payload, &m)
	return m, err
}

func TestExpandOrderAndCount(t *testing.T) {
	pts := testGrid().Expand()
	if len(pts) != 8 {
		t.Fatalf("Expand: %d points, want 8", len(pts))
	}
	// Seed innermost, then fault, load, workload, protocol outermost.
	want0 := Point{Protocol: "pHost", Workload: "WebSearch", Load: 0.3, Seed: 1}
	want1 := Point{Protocol: "pHost", Workload: "WebSearch", Load: 0.3, Seed: 2}
	want4 := Point{Protocol: "AMRT", Workload: "WebSearch", Load: 0.3, Seed: 1}
	if pts[0] != want0 || pts[1] != want1 || pts[4] != want4 {
		t.Errorf("Expand order wrong:\n%+v", pts)
	}
}

func TestKeyDigest(t *testing.T) {
	a := Key("v1", "protocol=AMRT", "seed=1")
	if b := Key("v1", "protocol=AMRT", "seed=1"); b != a {
		t.Errorf("same inputs produced different keys: %s vs %s", a, b)
	}
	if b := Key("v2", "protocol=AMRT", "seed=1"); b == a {
		t.Error("version change did not change the key")
	}
	if b := Key("v1", "protocol=AMRT", "seed=2"); b == a {
		t.Error("field change did not change the key")
	}
	// NUL separation: field boundaries cannot collide by concatenation.
	if Key("v1", "ab", "c") == Key("v1", "a", "bc") {
		t.Error("field concatenation collided")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}

func TestCacheRoundTripAndCorruption(t *testing.T) {
	c, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "x")
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	payload := []byte(`{"a":1}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}

	// Tampered entries must read as misses, not as data.
	path := filepath.Join(c.Dir(), key[:2], key+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"a":2}`+string(raw[8:])), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupted entry reported a hit")
	}

	if err := c.Put(key, []byte("not json")); err == nil {
		t.Error("Put accepted a non-JSON payload")
	}
}

func campaignConfig(t *testing.T, dir string, computes *atomic.Int64) Config {
	t.Helper()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Points: testGrid().Expand(),
		Cache:  cache,
		Key: func(p Point) string {
			return Key("test-v1",
				p.Protocol, p.Workload,
				fmt.Sprintf("%.17g", p.Load), fmt.Sprintf("%d", p.Seed), p.Faults)
		},
		Run:    fakeRun(computes),
		Decode: decodeMetrics,
	}
}

func TestRunCacheAccountingAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var computes atomic.Int64

	res, err := Run(context.Background(), campaignConfig(t, dir, &computes))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Misses != 8 || computes.Load() != 8 {
		t.Fatalf("first pass: hits=%d misses=%d computes=%d", res.Hits, res.Misses, computes.Load())
	}
	if len(res.Points) != 8 || len(res.Cells) != 4 {
		t.Fatalf("first pass: %d points, %d cells", len(res.Points), len(res.Cells))
	}

	// Second campaign against the same cache: zero recomputation.
	computes.Store(0)
	res2, err := Run(context.Background(), campaignConfig(t, dir, &computes))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hits != 8 || res2.Misses != 0 {
		t.Fatalf("resume: hits=%d misses=%d", res2.Hits, res2.Misses)
	}
	if computes.Load() != 0 {
		t.Fatalf("resume recomputed %d points, want 0", computes.Load())
	}
	// Rehydrated points must match the computed pass byte-for-byte
	// (modulo the FromCache flag, which is the whole difference).
	for i := range res.Points {
		if string(res.Points[i].Payload) != string(res2.Points[i].Payload) {
			t.Errorf("point %d payload differs after rehydration", i)
		}
		if res.Points[i].Metrics != res2.Points[i].Metrics {
			t.Errorf("point %d metrics differ after rehydration", i)
		}
		if !res2.Points[i].FromCache {
			t.Errorf("point %d not served from cache on resume", i)
		}
	}
	a, _ := json.Marshal(res.Cells)
	b, _ := json.Marshal(res2.Cells)
	if string(a) != string(b) {
		t.Error("rehydrated cell aggregates differ from computed aggregates")
	}
}

func TestRunCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Workers = 1
	inner := cfg.Run
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		if computes.Load() == 2 { // cancel before the third compute
			cancel()
			return nil, Metrics{}, ctx.Err()
		}
		return inner(ctx, p)
	}
	res, err := Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Points) != 2 {
		t.Fatalf("partial result has %d points, want 2", len(res.Points))
	}
	for i, o := range res.Points {
		if o.Point != cfg.Points[i] {
			t.Errorf("partial point %d out of order: %+v", i, o.Point)
		}
	}
	if len(res.Cells) == 0 {
		t.Error("partial result has no aggregated cells")
	}
}

func TestRunPointErrorAborts(t *testing.T) {
	boom := errors.New("disk on fire")
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	cfg.Workers = 1
	inner := cfg.Run
	cfg.Run = func(ctx context.Context, p Point) ([]byte, Metrics, error) {
		if computes.Load() == 1 {
			return nil, Metrics{}, boom
		}
		return inner(ctx, p)
	}
	res, err := Run(context.Background(), cfg)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the point error", err)
	}
	if len(res.Points) != 1 {
		t.Errorf("partial result has %d points, want 1", len(res.Points))
	}
}

func TestAggregateCellStats(t *testing.T) {
	mk := func(load float64, seed int64, afct float64) Outcome {
		return Outcome{
			Point:   Point{Protocol: "AMRT", Workload: "W", Load: load, Seed: seed},
			Metrics: Metrics{AFCTUs: afct, Completed: 10, Total: 10, Drops: 1},
		}
	}
	cells := Aggregate([]Outcome{
		mk(0.5, 1, 100), mk(0.5, 2, 300),
		mk(0.7, 1, 400),
	})
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	c := cells[0]
	if c.Seeds != 2 || c.AFCTUs.Mean != 200 || c.AFCTUs.Min != 100 || c.AFCTUs.Max != 300 {
		t.Errorf("cell 0 = %+v", c)
	}
	if c.AFCTUs.CI95 <= 0 {
		t.Error("two-seed cell has zero CI")
	}
	if c.Completed != 20 || c.Total != 20 || c.Drops != 2 {
		t.Errorf("cell 0 counters = %+v", c)
	}
	if cells[1].Seeds != 1 || cells[1].AFCTUs.CI95 != 0 {
		t.Errorf("cell 1 = %+v", cells[1])
	}
	if cells[0].Point.Seed != 0 {
		t.Error("cell coordinate retains a seed")
	}
}

func TestRunProgressCallback(t *testing.T) {
	var computes atomic.Int64
	cfg := campaignConfig(t, filepath.Join(t.TempDir(), "cache"), &computes)
	var calls int
	var last Progress
	cfg.Progress = func(p Progress) { calls++; last = p }
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("progress called %d times, want 8", calls)
	}
	if last.Done != 8 || last.Total != 8 || last.Misses != 8 {
		t.Errorf("final progress = %+v", last)
	}
}
