package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// FailurePolicy governs how Run treats a failing point. The zero value
// is the strict policy the CLI and tests default to: no retries, no
// per-cell timeout, and the first genuine point failure cancels every
// remaining point. A long-lived campaign service wants the opposite
// posture — bounded retries with deterministic backoff, a per-cell
// budget, and quarantine so one poisoned cell degrades the campaign
// instead of killing it — which is exactly what the non-zero fields
// configure.
type FailurePolicy struct {
	// Retries is the number of re-attempts after a point's first
	// failure, so a point runs at most Retries+1 times. Retries apply
	// to every failure mode except campaign cancellation: runner
	// errors, cache I/O errors, and per-cell timeouts. Re-running is
	// safe because every attempt replays the same seeded config and
	// the cache key is unchanged.
	Retries int
	// Backoff is the base delay before the first retry; retry n waits
	// Backoff << (n-1), a deterministic exponential with the shift
	// capped at backoffShiftCap so the delay cannot overflow. Zero
	// means retries fire immediately. The wait honors the campaign
	// context, so cancellation never blocks on a backoff timer.
	Backoff time.Duration
	// CellTimeout bounds each attempt with context.WithTimeout; an
	// attempt that exceeds it fails (and is retried under Retries)
	// without cancelling the campaign. Zero means no per-cell bound.
	CellTimeout time.Duration
	// Quarantine, when set, records a point that exhausted its
	// attempts in Result.Failed and keeps the campaign running instead
	// of cancelling the remaining points (the strict default). The
	// quarantined point's error is preserved verbatim in the record.
	Quarantine bool
}

// backoffShiftCap bounds the exponential backoff shift: retry n beyond
// the cap waits Backoff << backoffShiftCap, so even absurd retry counts
// cannot overflow time.Duration.
const backoffShiftCap = 16

// backoffFor returns the deterministic delay before retry n (1-based).
func (p FailurePolicy) backoffFor(retry int) time.Duration {
	if p.Backoff <= 0 || retry < 1 {
		return 0
	}
	shift := retry - 1
	if shift > backoffShiftCap {
		shift = backoffShiftCap
	}
	return p.Backoff << shift
}

// PointFailure is one quarantined point: the point, how many attempts
// it was given, and the final attempt's error text.
type PointFailure struct {
	Point    Point  `json:"point"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// runPointPolicy resolves one point under the campaign's failure
// policy: up to 1+Retries attempts, each bounded by CellTimeout, with
// deterministic exponential backoff between attempts. It returns the
// outcome, the number of attempts made, and the final attempt's error.
// Campaign cancellation (ctx done) stops the attempt loop immediately.
func runPointPolicy(ctx context.Context, cfg Config, p Point) (*Outcome, int, error) {
	pol := cfg.Policy
	attempts := 0
	var lastErr error
	for try := 0; try <= pol.Retries; try++ {
		if try > 0 {
			if err := sleepCtx(ctx, pol.backoffFor(try)); err != nil {
				return nil, attempts, lastErr
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, attempts, err
		}
		attempts++
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if pol.CellTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pol.CellTimeout)
		}
		o, err := runPoint(attemptCtx, cfg, p)
		cancel()
		if err == nil {
			return o, attempts, nil
		}
		if ctx.Err() != nil {
			// The campaign itself was cancelled mid-attempt: surface
			// the cancellation, never retry into a dead campaign.
			return nil, attempts, err
		}
		if pol.CellTimeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("campaign: point exceeded cell timeout %v: %w", pol.CellTimeout, err)
		}
		lastErr = err
	}
	return nil, attempts, lastErr
}

// sleepCtx waits d (no-op when d <= 0) or until ctx is done, whichever
// comes first, returning ctx.Err() on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
