package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t    Time
		secs float64
	}{
		{0, 0},
		{Second, 1},
		{Millisecond, 1e-3},
		{Microsecond, 1e-6},
		{100 * Microsecond, 1e-4},
		{2500 * Millisecond, 2.5},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.secs {
			t.Errorf("%d.Seconds() = %v, want %v", int64(c.t), got, c.secs)
		}
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromDuration(3*time.Millisecond) != 3*Millisecond {
		t.Errorf("FromDuration mismatch")
	}
	if (250 * Microsecond).Duration() != 250*time.Microsecond {
		t.Errorf("Duration mismatch")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1200, "1.2µs"},
		{Forever, "forever"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(ns int64) bool {
		tm := Time(ns % (1 << 50))
		if tm < 0 {
			tm = -tm
		}
		return FromSeconds(tm.Seconds()) >= tm-1 && FromSeconds(tm.Seconds()) <= tm+1<<20
	}
	// Seconds() is float64 so round-trip is only near-exact; check small values tightly.
	for _, tm := range []Time{0, 1, 999, Microsecond, Millisecond, Second, 123456789} {
		if back := FromSeconds(tm.Seconds()); back < tm-1 || back > tm+1 {
			t.Errorf("round-trip %v -> %v", tm, back)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
