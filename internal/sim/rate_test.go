package sim

import (
	"testing"
	"testing/quick"
)

func TestRateTxTime(t *testing.T) {
	cases := []struct {
		rate Rate
		size int
		want Time
	}{
		{10 * Gbps, 1500, 1200},        // 1500B @10G = 1.2µs
		{Gbps, 1500, 12000},            // 1500B @1G = 12µs
		{10 * Gbps, 64, 52},            // 51.2ns rounds up
		{40 * Gbps, 1500, 300},         // 1500B @40G = 300ns
		{100 * Mbps, 1500, 120 * 1000}, // 120µs
		{10 * Gbps, 0, 0},              // zero-size
		{0, 1500, Forever},             // zero rate never transmits
	}
	for _, c := range cases {
		if got := c.rate.TxTime(c.size); got != c.want {
			t.Errorf("%v.TxTime(%d) = %v, want %v", c.rate, c.size, got, c.want)
		}
	}
}

func TestRateBytesIn(t *testing.T) {
	if got := (10 * Gbps).BytesIn(100 * Microsecond); got != 125000 {
		t.Errorf("BDP(10G,100µs) = %d, want 125000", got)
	}
	if got := (Gbps).BytesIn(Second); got != 125000000 {
		t.Errorf("BytesIn(1G,1s) = %d", got)
	}
	if got := (Gbps).BytesIn(-1); got != 0 {
		t.Errorf("BytesIn negative duration = %d, want 0", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{10 * Gbps, "10Gbps"},
		{Gbps, "1Gbps"},
		{250 * Mbps, "250Mbps"},
		{5 * Kbps, "5Kbps"},
		{100, "100bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.r), got, c.want)
		}
	}
}

// Property: transmitting n packets back-to-back never exceeds the rate:
// total tx time >= bits/rate exactly-or-rounded-up.
func TestRateTxTimeNeverUnderestimates(t *testing.T) {
	f := func(size uint16, rateG uint8) bool {
		r := Rate(int64(rateG%100+1)) * Gbps
		tx := r.TxTime(int(size))
		exact := float64(size) * 8 * 1e9 / float64(r)
		return float64(tx) >= exact && float64(tx) < exact+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
