package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events ran out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Schedule(10, func() {
		trace = append(trace, "a")
		e.Schedule(5, func() { trace = append(trace, "c") })
		e.Schedule(0, func() { trace = append(trace, "b") })
	})
	e.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 15 {
		t.Errorf("final time %v, want 15ns", e.Now())
	}
}

func TestEngineZeroDelayRunsAfterAlreadyQueued(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(0, func() {
		order = append(order, "first")
		e.Schedule(0, func() { order = append(order, "third") })
	})
	e.Schedule(0, func() { order = append(order, "second") })
	e.RunAll()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineHorizonStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	end := e.Run(50)
	if ran != 1 {
		t.Errorf("ran %d events before horizon, want 1", ran)
	}
	if end != 50 {
		t.Errorf("Run returned %v, want 50", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}
	// Resume past the horizon.
	e.Run(200)
	if ran != 2 {
		t.Errorf("after resume ran %d, want 2", ran)
	}
}

func TestEngineEventAtHorizonRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(50, func() { ran = true })
	e.Run(50)
	if !ran {
		t.Error("event scheduled exactly at horizon did not run")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Schedule(20, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (Stop should halt)", ran)
	}
	if e.Now() != 10 {
		t.Errorf("stopped at %v, want 10", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.RunAll()
}

func TestEngineScheduleNilFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil func did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.Schedule(10, func() { ran = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	e.RunAll()
	if ran {
		t.Error("cancelled timer fired")
	}
	if tm.Active() {
		t.Error("cancelled timer reports active")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	var tm Timer
	tm = e.Schedule(10, func() {})
	e.RunAll()
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestTimerAt(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(42, func() {})
	if tm.At() != 42 {
		t.Errorf("At() = %v, want 42", tm.At())
	}
}

func TestEngineExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	if e.Executed != 7 {
		t.Errorf("Executed = %d, want 7", e.Executed)
	}
}

// Property: for any set of delays, events execute in nondecreasing time
// order and all events execute.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { times = append(times, e.Now()) })
		}
		e.RunAll()
		if len(times) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if times[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset of timers runs exactly the others.
func TestEngineCancelSubsetProperty(t *testing.T) {
	f := func(delays []uint16, mask uint64) bool {
		e := NewEngine()
		ran := make([]bool, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = e.Schedule(Time(d), func() { ran[i] = true })
		}
		for i := range timers {
			if mask&(1<<(uint(i)%64)) != 0 {
				timers[i].Cancel()
			}
		}
		e.RunAll()
		for i := range timers {
			cancelled := mask&(1<<(uint(i)%64)) != 0
			if ran[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var times []Time
		var spawn func()
		n := 0
		spawn = func() {
			times = append(times, e.Now())
			n++
			if n < 500 {
				e.Schedule(Time(rng.Intn(1000)), spawn)
				if rng.Intn(2) == 0 {
					e.Schedule(Time(rng.Intn(1000)), spawn)
				}
			}
		}
		e.Schedule(0, spawn)
		e.Run(Forever)
		return times
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for _, kind := range schedulerKinds {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			e := NewEngineWith(kind)
			rng := rand.New(rand.NewSource(1))
			cnt := 0
			var fn func()
			fn = func() {
				cnt++
				if cnt < b.N {
					e.Schedule(Time(rng.Intn(100)+1), fn)
				}
			}
			e.Schedule(0, fn)
			b.ResetTimer()
			e.RunAll()
		})
	}
}

func BenchmarkEngineHeap64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]Time, 1<<16)
	for i := range delays {
		delays[i] = Time(rng.Intn(1 << 20))
	}
	for _, kind := range schedulerKinds {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := NewEngineWith(kind)
				for _, d := range delays {
					e.Schedule(d, func() {})
				}
				e.RunAll()
			}
		})
	}
}
