package sim

import (
	"math"
	"testing"
)

func TestSubSeedStable(t *testing.T) {
	a := SubSeed(42, "arrivals")
	b := SubSeed(42, "arrivals")
	if a != b {
		t.Error("SubSeed not deterministic")
	}
	if a < 0 {
		t.Error("SubSeed returned negative value")
	}
	if SubSeed(42, "arrivals") == SubSeed(42, "sizes") {
		t.Error("different stream names should give different seeds")
	}
	if SubSeed(42, "arrivals") == SubSeed(43, "arrivals") {
		t.Error("different parent seeds should give different sub-seeds")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(1)
	mean := 100 * Microsecond
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Exponential(rng, mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Errorf("empirical mean %.0f, want %d +-2%%", got, int64(mean))
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	rng := NewRNG(1)
	if Exponential(rng, 0) != 0 || Exponential(rng, -5) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestNewRNGDeterminism(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}
