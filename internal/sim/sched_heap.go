package sim

// heapSched is the reference scheduler: a binary min-heap on (at, seq),
// the original implementation kept as the behavioural baseline the
// timing wheel is tested against (and selectable via SchedulerHeap for
// A/B benchmarks).
type heapSched struct {
	items []*event
}

func newHeapSched() *heapSched {
	return &heapSched{items: make([]*event, 0, 1024)}
}

// eventBefore is the total dispatch order: time first, then scheduling
// order. seq is unique per engine, so this never ties.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *heapSched) schedule(ev *event, _ Time) { evheapPush(&h.items, ev) }

func (h *heapSched) next(limit Time) *event {
	if len(h.items) == 0 || h.items[0].at > limit {
		return nil
	}
	return evheapPop(&h.items)
}

func (h *heapSched) pending() int { return len(h.items) }

func (h *heapSched) nextAt() (Time, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].at, true
}
