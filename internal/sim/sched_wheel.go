package sim

import "math/bits"

// wheelSched is a hierarchical timing wheel: the default scheduler.
//
// Virtual time is quantized into 64 ns ticks. Three wheel levels of 256
// slots each cover [now, now+2^24 ticks) ≈ 1.07 s of look-ahead: level 0
// holds one tick per slot, level 1 one level-0 rotation (16.4 µs) per
// slot, level 2 one level-1 rotation (4.2 ms) per slot. Events beyond the
// cursor's current top-level region wait in an overflow min-heap and
// migrate into the wheel when the cursor enters their region (the "heap
// fallback" — datacenter
// workloads virtually never hit it, but correctness never depends on
// that). Per-level occupancy bitmaps let the cursor jump straight to the
// next non-empty bucket, so advancing across idle virtual time is O(1)
// per 64-bit bitmap word rather than O(elapsed ticks).
//
// Determinism contract: dispatch order is exactly ascending (at, seq) —
// byte-identical to heapSched. Buckets are unordered; ordering is
// restored by pouring the current tick's bucket into a small (at, seq)
// min-heap ("due") before dispatch, and events scheduled for the
// current tick while it is dispatching join that heap directly. Because
// level-0 buckets are a single tick wide and seq is globally monotonic,
// no coarser bucket can ever mix two events across a time boundary
// without the due heap re-separating them.
type wheelSched struct {
	// curTick is the wheel cursor: floor(dispatch position / 64 ns).
	// Invariants: curTick never exceeds the tick of the earliest pending
	// event, and every pending event's tick is >= curTick.
	curTick int64

	// due holds the events of tick curTick, as a min-heap on (at, seq).
	due []*event

	// levels[l][s] is the bucket for slot s of level l; occ[l] is the
	// per-slot occupancy bitmap of level l.
	levels [wheelLevels][wheelSlots][]*event
	occ    [wheelLevels][wheelSlots / 64]uint64

	// overflow is the far-future fallback: a min-heap on (at, seq) of
	// events beyond curTick's top-level region at insert time.
	overflow []*event

	count int
}

const (
	wheelTickShift = 6 // 64 ns per level-0 tick
	wheelBits      = 8 // 256 slots per level
	wheelSlots     = 1 << wheelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 3
	// wheelSpanTicks is the total look-ahead of the wheel, in ticks.
	wheelSpanTicks = int64(1) << (wheelBits * wheelLevels)
)

func newWheelSched() *wheelSched { return &wheelSched{} }

func (w *wheelSched) pending() int { return w.count }

func (w *wheelSched) schedule(ev *event, _ Time) {
	w.count++
	w.insert(ev)
}

// insert places ev into due, a wheel bucket, or the overflow heap.
//
// Placement is by region, not distance: an event goes to the lowest
// level whose *current rotation* contains its tick. That keeps every
// occupied slot at or ahead of the cursor's slot within its rotation —
// no bucket ever wraps around behind the cursor — which is what lets
// next() skip empty high-level slots via the occupancy bitmaps without
// ever stranding a lower-level bucket. Events beyond the current
// top-level region (even nearby ones that merely cross its boundary)
// wait in the overflow heap; they migrate when the cursor enters their
// region, and since everything in the wheel precedes the region
// boundary, the split never reorders dispatch.
func (w *wheelSched) insert(ev *event) {
	tick := int64(ev.at) >> wheelTickShift
	cur := w.curTick
	switch {
	case tick <= cur:
		// Current tick (the engine guarantees at >= now, so tick is
		// never truly below the cursor — only equal).
		evheapPush(&w.due, ev)
	case tick>>wheelBits == cur>>wheelBits:
		w.place(0, int(tick)&wheelMask, ev)
	case tick>>(2*wheelBits) == cur>>(2*wheelBits):
		w.place(1, int(tick>>wheelBits)&wheelMask, ev)
	case tick>>(3*wheelBits) == cur>>(3*wheelBits):
		w.place(2, int(tick>>(2*wheelBits))&wheelMask, ev)
	default:
		evheapPush(&w.overflow, ev)
	}
}

func (w *wheelSched) place(level, slot int, ev *event) {
	w.levels[level][slot] = append(w.levels[level][slot], ev)
	w.occ[level][slot>>6] |= 1 << uint(slot&63)
}

// nextAt implements scheduler: a lower bound on the earliest pending
// event's time. The due and overflow heaps give exact times; wheel
// buckets contribute their slot's start time, which undershoots by at
// most the slot span. Levels need only be consulted until the first
// occupied one, since every event in level l+1 lies beyond level l's
// current rotation, but the overflow heap must always be folded in —
// between runs it may hold events the cursor has since caught up to.
func (w *wheelSched) nextAt() (Time, bool) {
	if w.count == 0 {
		return 0, false
	}
	if len(w.due) > 0 {
		return w.due[0].at, true
	}
	bound := Time(0)
	have := false
	slot0 := int(w.curTick) & wheelMask
	slot1 := int(w.curTick>>wheelBits) & wheelMask
	slot2 := int(w.curTick>>(2*wheelBits)) & wheelMask
	if s, ok := w.nextOcc(0, slot0); ok {
		bound = Time((w.curTick - int64(slot0) + int64(s)) << wheelTickShift)
		have = true
	} else if s, ok := w.nextOcc(1, slot1+1); ok {
		t := (w.curTick>>wheelBits - int64(slot1) + int64(s)) << wheelBits
		bound, have = Time(t<<wheelTickShift), true
	} else if s, ok := w.nextOcc(2, slot2+1); ok {
		t := (w.curTick>>(2*wheelBits) - int64(slot2) + int64(s)) << (2 * wheelBits)
		bound, have = Time(t<<wheelTickShift), true
	}
	if len(w.overflow) > 0 && (!have || w.overflow[0].at < bound) {
		bound, have = w.overflow[0].at, true
	}
	if !have {
		// count > 0 but no bucket found: defensive, should not happen.
		bound = Time(w.curTick << wheelTickShift)
	}
	return bound, true
}

// next implements scheduler: pop the earliest event at or before limit,
// advancing the cursor lazily and cascading higher-level buckets as
// their time arrives.
func (w *wheelSched) next(limit Time) *event {
	limitTick := int64(limit) >> wheelTickShift
	for {
		if len(w.due) > 0 {
			if w.due[0].at > limit {
				return nil
			}
			w.count--
			return evheapPop(&w.due)
		}
		if w.count == 0 {
			return nil
		}
		// Keep the overflow invariant: anything inside the current
		// top-level region must live in the wheel before we pick the
		// next bucket, otherwise a far-future event scheduled early
		// could be dispatched after a later event scheduled recently.
		w.drainOverflow()

		// Level 0: the rest of the current rotation.
		slot0 := int(w.curTick) & wheelMask
		if s, ok := w.nextOcc(0, slot0); ok {
			t := w.curTick - int64(slot0) + int64(s)
			if t > limitTick {
				w.clamp(limitTick)
				return nil
			}
			w.curTick = t
			w.dumpDue(s)
			continue
		}
		// Level 1: the next occupied slot strictly after the current one.
		slot1 := int(w.curTick>>wheelBits) & wheelMask
		if s, ok := w.nextOcc(1, slot1+1); ok {
			t := (w.curTick>>wheelBits - int64(slot1) + int64(s)) << wheelBits
			if t > limitTick {
				w.clamp(limitTick)
				return nil
			}
			w.curTick = t
			w.cascade(1, s)
			continue
		}
		// Level 2.
		slot2 := int(w.curTick>>(2*wheelBits)) & wheelMask
		if s, ok := w.nextOcc(2, slot2+1); ok {
			t := (w.curTick>>(2*wheelBits) - int64(slot2) + int64(s)) << (2 * wheelBits)
			if t > limitTick {
				w.clamp(limitTick)
				return nil
			}
			w.curTick = t
			w.cascade(2, s)
			continue
		}
		// Wheel empty: jump to the overflow's earliest event.
		t := int64(w.overflow[0].at) >> wheelTickShift
		if t > limitTick {
			w.clamp(limitTick)
			return nil
		}
		w.curTick = t
		w.drainOverflow()
	}
}

// clamp moves the cursor up to the run horizon after establishing that
// no event lies at or before it, so that the next Run resumes the scan
// from the horizon instead of rescanning the idle gap. It never moves
// the cursor backwards and — because the skipped region was verified
// empty — never strands an un-cascaded bucket behind the cursor.
func (w *wheelSched) clamp(limitTick int64) {
	if limitTick > w.curTick {
		w.curTick = limitTick
	}
}

// dumpDue pours level-0 slot s (the bucket of tick curTick) into the
// due heap, restoring exact (at, seq) order for dispatch.
func (w *wheelSched) dumpDue(s int) {
	bucket := w.levels[0][s]
	for i, ev := range bucket {
		bucket[i] = nil
		evheapPush(&w.due, ev)
	}
	w.levels[0][s] = bucket[:0]
	w.occ[0][s>>6] &^= 1 << uint(s&63)
}

// cascade redistributes the bucket at (level, s) — whose span the cursor
// has just reached — into the levels below it (or the due heap).
func (w *wheelSched) cascade(level, s int) {
	bucket := w.levels[level][s]
	w.levels[level][s] = bucket[:0]
	w.occ[level][s>>6] &^= 1 << uint(s&63)
	for i, ev := range bucket {
		bucket[i] = nil
		w.insert(ev)
	}
}

// drainOverflow migrates overflow events that now fall within the
// cursor's top-level region (where insert is guaranteed to land them in
// the wheel, never back in overflow). Amortized O(1): a cheap peek
// unless events actually cross the region boundary.
func (w *wheelSched) drainOverflow() {
	for len(w.overflow) > 0 {
		tick := int64(w.overflow[0].at) >> wheelTickShift
		if tick>>(3*wheelBits) != w.curTick>>(3*wheelBits) {
			return
		}
		w.insert(evheapPop(&w.overflow))
	}
}

// nextOcc returns the first occupied slot of level at index >= from,
// scanning the occupancy bitmap word-wise.
func (w *wheelSched) nextOcc(level, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	if v := w.occ[level][word] >> uint(from&63) << uint(from&63); v != 0 {
		return word<<6 + bits.TrailingZeros64(v), true
	}
	for word++; word < wheelSlots/64; word++ {
		if v := w.occ[level][word]; v != 0 {
			return word<<6 + bits.TrailingZeros64(v), true
		}
	}
	return 0, false
}

// evheapPush and evheapPop maintain a binary min-heap of events ordered
// by eventBefore, shared by the wheel's due/overflow heaps.
func evheapPush(h *[]*event, ev *event) {
	items := append(*h, ev)
	i := len(items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(items[i], items[parent]) {
			break
		}
		items[i], items[parent] = items[parent], items[i]
		i = parent
	}
	*h = items
}

func evheapPop(h *[]*event) *event {
	items := *h
	ev := items[0]
	n := len(items) - 1
	items[0] = items[n]
	items[n] = nil
	items = items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && eventBefore(items[l], items[least]) {
			least = l
		}
		if r < n && eventBefore(items[r], items[least]) {
			least = r
		}
		if least == i {
			break
		}
		items[i], items[least] = items[least], items[i]
		i = least
	}
	*h = items
	return ev
}
