package sim

import (
	"container/heap"
	"fmt"
)

// Engine is a discrete-event simulation engine. Events are closures
// scheduled at virtual times; Run executes them in time order, breaking
// ties by scheduling order (FIFO), which makes every run fully
// deterministic.
//
// An Engine must be driven from a single goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool

	// Executed counts events dispatched since construction; useful for
	// progress reporting and performance benchmarks.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.items = make([]*event, 0, 1024)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled-but-unexecuted events,
// including cancelled timers that have not yet been drained.
func (e *Engine) Pending() int { return len(e.queue.items) }

// Schedule runs fn after delay. A negative delay panics: events may not
// be scheduled in the past.
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at. Scheduling at the current time
// is allowed and runs fn after all events already scheduled for that
// time.
func (e *Engine) ScheduleAt(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Run executes events in order until the queue drains, the horizon is
// passed, or Stop is called. It returns the virtual time at which it
// stopped. Events scheduled exactly at the horizon are executed.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue.items) > 0 && !e.stopped {
		ev := e.queue.items[0]
		if ev.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	if !e.stopped && until != Forever {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(Forever) }

// Stop halts Run after the current event completes. It may only be
// called from within an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled timer is a no-op. Cancel reports whether the
// event had not yet fired.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil // release closure for GC
	return true
}

// At returns the virtual time the timer is scheduled for.
func (t *Timer) At() Time { return t.ev.at }

// Active reports whether the event is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.done
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
}

// eventQueue is a min-heap on (at, seq).
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	it.done = true
	return it
}
