package sim

import (
	"fmt"
	"sync/atomic"
)

// SchedulerKind selects the event-queue implementation behind an Engine.
// Both schedulers implement the exact same contract — events dispatch in
// ascending (at, seq) order — so a simulation produces byte-identical
// results on either; they differ only in speed. The equivalence is
// enforced by TestSchedulerEquivalence and the golden-trace test in
// internal/experiment.
type SchedulerKind int32

const (
	// SchedulerWheel is the default: a hierarchical timing wheel with
	// nanosecond-resolution buckets and a heap fallback for far-future
	// events. O(1) schedule and near-O(1) dispatch on simulation
	// workloads.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the original container/heap binary heap:
	// O(log n) schedule and dispatch. Kept as the reference
	// implementation for equivalence tests and A/B benchmarks.
	SchedulerHeap
)

// String returns the flag-friendly name ("wheel" or "heap").
func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// ParseSchedulerKind parses "wheel" or "heap" (as accepted by the CLIs'
// -sched flags).
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "wheel", "":
		return SchedulerWheel, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return SchedulerWheel, fmt.Errorf("sim: unknown scheduler %q (want wheel or heap)", s)
}

// defaultScheduler is what NewEngine uses. Atomic because engines are
// constructed from the experiment package's worker goroutines while a
// test harness may flip the default between sequential runs.
var defaultScheduler atomic.Int32

// DefaultScheduler returns the SchedulerKind NewEngine currently uses.
func DefaultScheduler() SchedulerKind { return SchedulerKind(defaultScheduler.Load()) }

// SetDefaultScheduler changes the scheduler NewEngine uses. It does not
// affect engines that already exist; callers flipping it around a run
// (the golden-trace tests, the CLIs' -sched flags) should restore it
// afterwards.
func SetDefaultScheduler(k SchedulerKind) { defaultScheduler.Store(int32(k)) }

// scheduler is the event-queue contract shared by the timing wheel and
// the reference heap. Implementations are driven by exactly one Engine
// and are not safe for concurrent use.
type scheduler interface {
	// schedule inserts an event with ev.at >= now.
	schedule(ev *event, now Time)
	// next removes and returns the earliest pending event (by (at, seq))
	// whose time is <= limit, or nil if there is none. It may return
	// cancelled events; the engine drains them.
	next(limit Time) *event
	// pending returns the number of scheduled-but-unexecuted events,
	// including cancelled ones that have not been drained yet.
	pending() int
	// nextAt returns a lower bound on the time of the earliest pending
	// event (exact for the heap, bucket-granular for the wheel) and
	// whether any event is pending at all. Cancelled events may
	// contribute to the bound; it is only ever too early, never too
	// late, which is what the sharded runtime's idle skip-ahead needs.
	nextAt() (Time, bool)
}

// Event sequence bands. The engine dispatches same-time events in
// ascending seq order, so the top bits of seq partition each virtual
// instant into four phases with a fixed relative order:
//
//	[0, 1<<62)        keyed arrivals — link deliveries ordered by a
//	                  partition-independent (link, per-link counter) key
//	[1<<62, 1<<63)    keyed signals — cross-shard control records ordered
//	                  by a (src node, dst node, pair counter) key
//	[1<<63, 3<<62)    auto band — ScheduleAt/Schedule FIFO order
//	[3<<62, 2^64)     late band — observers (telemetry sampler, liveness
//	                  watchdog, auditor) that must see the instant's
//	                  settled state
//
// The keyed bands exist for the sharded engine (docs/PARALLELISM.md): a
// key computed from simulation state, rather than from global scheduling
// order, makes the dispatch order of same-time events independent of how
// the network is partitioned. The bands apply identically at one shard,
// which is how shards=1 stays the byte-identical golden reference.
const (
	// SeqSignal is the base key of the signal band; keyed arrivals use
	// raw keys below it.
	SeqSignal uint64 = 1 << 62
	// seqAuto is where the engine's automatic FIFO sequence starts.
	seqAuto uint64 = 1 << 63
	// SeqLate is the base key of the late (observer) band.
	SeqLate uint64 = seqAuto | SeqSignal
	// SubObserver partitions the late band's ScheduleLate sub-key space
	// in two: sub-keys below it are end-of-instant *actions* — the fault
	// layer's administrative events (link flaps, crashes, reboots, salt
	// rotations), ordered among themselves by plan position — and
	// sub-keys at or above it are *observers* (metrics, watchdog, audit
	// ticks) that must see the instant fully settled, including any
	// same-instant fault action. Observers OR their small sub-key into
	// SubObserver; actions draw plain counters below it.
	SubObserver uint64 = 1 << 32
)

// Engine is a discrete-event simulation engine. Events are closures
// scheduled at virtual times; Run executes them in time order, breaking
// ties by scheduling order (FIFO), which makes every run fully
// deterministic: the dispatch sequence is a pure function of the
// schedule calls, never of the scheduler implementation, map iteration,
// or wall-clock time.
//
// An Engine must be driven from a single goroutine. Executed events are
// recycled on an internal free list, so steady-state scheduling does not
// allocate; Timer handles stay safe across recycling via a generation
// check.
type Engine struct {
	now     Time
	seq     uint64
	sched   scheduler
	running bool
	stopped bool

	// free is the event free list (single-threaded, so a plain slice
	// beats sync.Pool here). Events are returned to it after dispatch or
	// when a cancelled event is drained.
	free []*event

	// Executed counts events dispatched since construction; useful for
	// progress reporting and performance benchmarks. ExecutedLate counts
	// the subset dispatched from the late (observer) band; Executed -
	// ExecutedLate is the partition-independent simulation event count
	// reported by the experiment runner (observer chains replicate per
	// shard, simulation events do not).
	Executed     uint64
	ExecutedLate uint64

	// interrupt, when non-nil, is polled every interruptEvery executed
	// events during Run; returning true stops the run like Stop. Polling
	// happens outside the event stream, so it never perturbs event
	// ordering, timestamps, or Executed — a run whose interrupt never
	// fires is byte-identical to one without an interrupt installed.
	interrupt      func() bool
	interruptEvery uint64
	interruptLeft  uint64
}

// NewEngine returns an empty engine at time zero using the default
// scheduler (see SetDefaultScheduler; the wheel unless overridden).
func NewEngine() *Engine { return NewEngineWith(DefaultScheduler()) }

// NewEngineWith returns an empty engine at time zero using the given
// scheduler implementation.
func NewEngineWith(kind SchedulerKind) *Engine {
	e := &Engine{seq: seqAuto}
	if kind == SchedulerHeap {
		e.sched = newHeapSched()
	} else {
		e.sched = newWheelSched()
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled-but-unexecuted events,
// including cancelled timers that have not yet been drained.
func (e *Engine) Pending() int { return e.sched.pending() }

// Schedule runs fn after delay. A negative delay panics: events may not
// be scheduled in the past.
func (e *Engine) Schedule(delay Time, fn func()) Timer {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at. Scheduling at the current time
// is allowed and runs fn after all events already scheduled for that
// time.
func (e *Engine) ScheduleAt(at Time, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.seq++
	e.sched.schedule(ev, e.now)
	return Timer{ev: ev, gen: ev.gen, at: at}
}

// ScheduleKeyed runs fn at absolute time at, ordered among same-time
// events by key instead of by scheduling order. key must lie below the
// auto band (< 1<<63): raw arrival keys sort before SeqSignal-based
// signal keys, and both sort before everything ScheduleAt scheduled for
// the same instant. Callers must ensure (at, key) pairs are unique —
// duplicate pairs would leave the dispatch order of the two events up to
// the scheduler implementation.
func (e *Engine) ScheduleKeyed(at Time, key uint64, fn func()) Timer {
	if key >= seqAuto {
		panic(fmt.Sprintf("sim: keyed seq %#x reaches the auto band", key))
	}
	return e.scheduleSeq(at, key, fn)
}

// ScheduleLate runs fn at absolute time at, after every arrival, signal,
// and auto-band event of that instant — "end of instant" semantics for
// observers that must see settled state. sub orders same-time late
// events among themselves and must stay below 1<<62; (at, sub) pairs
// must be unique per engine.
func (e *Engine) ScheduleLate(at Time, sub uint64, fn func()) Timer {
	if sub >= SeqSignal {
		panic(fmt.Sprintf("sim: late subkey %#x overflows the late band", sub))
	}
	return e.scheduleSeq(at, SeqLate|sub, fn)
}

func (e *Engine) scheduleSeq(at Time, seq uint64, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn = at, seq, fn
	e.sched.schedule(ev, e.now)
	return Timer{ev: ev, gen: ev.gen, at: at}
}

// NextAt returns a lower bound on the time of the earliest pending
// event and whether any event is pending. The bound is exact for the
// heap scheduler and bucket-granular (at most one wheel-slot span early)
// for the wheel; it is never later than the true earliest event. The
// sharded runtime polls it at synchronization barriers to skip idle
// windows.
func (e *Engine) NextAt() (Time, bool) { return e.sched.nextAt() }

// newEvent takes an event off the free list, or allocates one.
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle invalidates outstanding Timer handles (generation bump),
// releases the closure, and returns the event to the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cancelled = false
	e.free = append(e.free, ev)
}

// Run executes events in order until the queue drains, the horizon is
// passed, or Stop is called. It returns the virtual time at which it
// stopped. Events scheduled exactly at the horizon are executed.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		ev := e.sched.next(until)
		if ev == nil {
			break
		}
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.Executed++
		if ev.seq >= SeqLate {
			e.ExecutedLate++
		}
		fn := ev.fn
		e.recycle(ev)
		fn()
		if e.interrupt != nil {
			if e.interruptLeft--; e.interruptLeft == 0 {
				e.interruptLeft = e.interruptEvery
				if e.interrupt() {
					e.stopped = true
				}
			}
		}
	}
	if !e.stopped && until != Forever {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(Forever) }

// Stop halts Run after the current event completes. It may only be
// called from within an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the last Run ended via Stop or an interrupt
// (rather than by draining the queue or reaching the horizon). The
// sharded runtime polls it at window barriers to propagate an abort.
func (e *Engine) Stopped() bool { return e.stopped }

// SetInterrupt installs fn as an out-of-band stop condition: Run polls
// it every `every` executed events (0 means a default of 4096) and stops
// — exactly as if Stop had been called — when it returns true. The poll
// is not an event, so installing an interrupt that never fires leaves
// the run byte-identical to an uninterrupted one; this is how
// context-cancellable callers (amrt.RunContext, sweep campaigns) abort
// long simulations promptly without breaking determinism. A nil fn
// clears the interrupt. SetInterrupt must be called before Run.
func (e *Engine) SetInterrupt(every uint64, fn func() bool) {
	if fn == nil {
		e.interrupt = nil
		return
	}
	if every == 0 {
		every = 4096
	}
	e.interrupt, e.interruptEvery, e.interruptLeft = fn, every, every
}

// Timer is a handle to a scheduled event that can be cancelled. Timers
// remain valid after the event fires or is drained — the underlying
// event is recycled, and the handle detects that through a generation
// check — so callers may keep timers around without pinning memory.
// Timer is a small value: store and copy it directly rather than taking
// its address. The zero Timer is inert — Cancel reports false and
// Active reports false — so an unset timer field needs no nil check.
type Timer struct {
	ev  *event
	gen uint32
	at  Time
}

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled timer is a no-op. Cancel reports whether the
// event had not yet fired.
func (t *Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil // release closure for GC
	return true
}

// At returns the virtual time the timer is (or was) scheduled for.
func (t *Timer) At() Time { return t.at }

// Active reports whether the event is still pending.
func (t *Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// event is a scheduled callback. Events are pooled: after dispatch (or
// drain of a cancelled event) the engine bumps gen and reuses the
// struct, so nothing outside the engine may retain an *event without
// also holding the generation it was issued at (Timer does).
type event struct {
	at        Time
	seq       uint64
	fn        func()
	gen       uint32
	cancelled bool
}
