package sim

import (
	"math/rand"
	"testing"
)

// schedulerKinds enumerates both implementations for parameterized tests.
var schedulerKinds = []SchedulerKind{SchedulerWheel, SchedulerHeap}

func forEachScheduler(t *testing.T, fn func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, kind := range schedulerKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { fn(t, NewEngineWith(kind)) })
	}
}

// TestSchedulerEquivalence is the engine-level proof behind the
// timing-wheel migration: a randomized storm of nested schedules and
// cancellations — delays spanning the due heap, every wheel level, the
// top-region boundary, and the overflow heap — must dispatch in exactly
// the same (time, identity) sequence on both schedulers.
func TestSchedulerEquivalence(t *testing.T) {
	type step struct {
		at Time
		id int
	}
	run := func(kind SchedulerKind, seed int64) []step {
		e := NewEngineWith(kind)
		rng := rand.New(rand.NewSource(seed))
		var trace []step
		var timers []Timer
		id := 0
		var spawn func()
		spawn = func() {
			myID := id
			id++
			trace = append(trace, step{e.Now(), myID})
			if myID > 4000 {
				return
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				var d Time
				switch rng.Intn(6) {
				case 0:
					d = 0 // current instant, mid-dispatch
				case 1:
					d = Time(rng.Intn(64)) // same or adjacent tick
				case 2:
					d = Time(rng.Intn(1 << 14)) // level 0/1
				case 3:
					d = Time(rng.Intn(1 << 22)) // level 1/2
				case 4:
					d = Time(rng.Intn(1 << 31)) // level 2 and region crossing
				case 5:
					d = Time(rng.Intn(1 << 33)) // deep overflow (> 1.07 s span)
				}
				timers = append(timers, e.Schedule(d, spawn))
			}
			if len(timers) > 0 && rng.Intn(3) == 0 {
				timers[rng.Intn(len(timers))].Cancel()
			}
		}
		e.Schedule(0, spawn)
		// Interleave bounded horizons with full drains so the horizon
		// clamp path is exercised too.
		e.Run(Millisecond)
		e.Run(20 * Millisecond)
		e.RunAll()
		return trace
	}
	for seed := int64(1); seed <= 5; seed++ {
		wheel := run(SchedulerWheel, seed)
		heap := run(SchedulerHeap, seed)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: wheel dispatched %d events, heap %d", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: dispatch %d diverges: wheel %+v, heap %+v", seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestEngineScheduleAtCurrentInstant covers events scheduled for the
// running instant during dispatch: they must run in this Run, after all
// events already queued for that time, even when the instant sits right
// at a wheel bucket boundary.
func TestEngineScheduleAtCurrentInstant(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, e *Engine) {
		// 1<<20 ns is a multiple of every wheel bucket width, so the
		// instant is the first tick of a freshly cascaded bucket.
		const at = Time(1 << 20)
		var order []string
		e.ScheduleAt(at, func() {
			order = append(order, "a")
			e.ScheduleAt(at, func() { order = append(order, "c") })
			e.Schedule(0, func() { order = append(order, "d") })
		})
		e.ScheduleAt(at, func() { order = append(order, "b") })
		e.RunAll()
		want := []string{"a", "b", "c", "d"}
		if len(order) != len(want) {
			t.Fatalf("ran %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("ran %v, want %v", order, want)
			}
		}
		if e.Now() != at {
			t.Errorf("finished at %v, want %v", e.Now(), at)
		}
	})
}

// TestEngineEqualTimestampFIFOAcrossBuckets schedules events for one
// timestamp from very different distances — far enough out to land in
// the overflow heap and every wheel level, and from the preceding
// instant — and expects pure scheduling-order FIFO at dispatch.
func TestEngineEqualTimestampFIFOAcrossBuckets(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, e *Engine) {
		const at = Time(2 * Second) // > 1.07 s: overflow from time zero
		var order []int
		// 0, 1: scheduled at t=0, 2 s ahead (overflow heap).
		for i := 0; i < 2; i++ {
			i := i
			e.ScheduleAt(at, func() { order = append(order, i) })
		}
		// 2, 3: scheduled ~1 s before (wheel levels), via an intermediate
		// event.
		e.ScheduleAt(at-Second, func() {
			for i := 2; i < 4; i++ {
				i := i
				e.ScheduleAt(at, func() { order = append(order, i) })
			}
		})
		// 4: scheduled one tick before (level 0 / due boundary).
		e.ScheduleAt(at-1, func() {
			e.ScheduleAt(at, func() { order = append(order, 4) })
		})
		e.RunAll()
		if len(order) != 5 {
			t.Fatalf("ran %d events, want 5 (%v)", len(order), order)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("equal-timestamp events out of FIFO order: %v", order)
			}
		}
	})
}

// TestEngineStopDrainAndResume covers Stop with pooled events: stopping
// mid-run must leave the remaining events (and their timers) intact, a
// resumed Run must dispatch them in order, and the recycled events must
// not corrupt timers handed out earlier.
func TestEngineStopDrainAndResume(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, e *Engine) {
		var order []int
		var timers []Timer
		for i := 0; i < 10; i++ {
			i := i
			timers = append(timers, e.Schedule(Time(10*(i+1)), func() {
				order = append(order, i)
				if i == 4 {
					e.Stop()
				}
			}))
		}
		e.RunAll()
		if len(order) != 5 || e.Now() != 50 {
			t.Fatalf("stopped after %v at %v, want 5 events at 50ns", order, e.Now())
		}
		if e.Pending() != 5 {
			t.Fatalf("pending %d after Stop, want 5", e.Pending())
		}
		for i, tm := range timers {
			if got, want := tm.Active(), i > 4; got != want {
				t.Fatalf("timer %d Active() = %v, want %v", i, got, want)
			}
			if tm.At() != Time(10*(i+1)) {
				t.Fatalf("timer %d At() = %v after recycling, want %v", i, tm.At(), Time(10*(i+1)))
			}
		}
		// Cancel one pending timer, then resume: the drain must skip it
		// and dispatch the rest in order.
		if !timers[7].Cancel() {
			t.Fatal("cancelling a pending timer after Stop failed")
		}
		e.RunAll()
		want := []int{0, 1, 2, 3, 4, 5, 6, 8, 9}
		if len(order) != len(want) {
			t.Fatalf("after resume ran %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("after resume ran %v, want %v", order, want)
			}
		}
		if e.Pending() != 0 {
			t.Errorf("pending %d after drain, want 0", e.Pending())
		}
	})
}

// TestEngineHorizonThenNearSchedule is a regression test for the wheel
// cursor clamp: running to a horizon far before the next event must not
// break the ordering of events scheduled right after the horizon.
func TestEngineHorizonThenNearSchedule(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, e *Engine) {
		var order []string
		e.Schedule(Millisecond, func() { order = append(order, "far") })
		e.Run(100) // horizon long before the pending event
		if e.Now() != 100 {
			t.Fatalf("now = %v, want 100ns", e.Now())
		}
		e.Schedule(50, func() { order = append(order, "near") }) // at 150 ns
		e.RunAll()
		if len(order) != 2 || order[0] != "near" || order[1] != "far" {
			t.Fatalf("order = %v, want [near far]", order)
		}
	})
}

// TestEngineFarFutureOrdering is a regression test for the overflow
// fallback: an event parked in the overflow heap early must still
// dispatch before a later event scheduled much closer to its time.
func TestEngineFarFutureOrdering(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, e *Engine) {
		var order []string
		e.ScheduleAt(1200*Millisecond, func() { order = append(order, "early-scheduled") })
		e.ScheduleAt(500*Millisecond, func() {
			// 1.3 s is within the wheel span as seen from 0.5 s.
			e.ScheduleAt(1300*Millisecond, func() { order = append(order, "late-scheduled") })
		})
		e.RunAll()
		if len(order) != 2 || order[0] != "early-scheduled" || order[1] != "late-scheduled" {
			t.Fatalf("order = %v, want [early-scheduled late-scheduled]", order)
		}
	})
}

// TestEngineEventPoolReuse checks that the free list actually recycles:
// steady-state schedule/dispatch cycles must not grow the pool.
func TestEngineEventPoolReuse(t *testing.T) {
	e := NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 10_000 {
			e.Schedule(100, fn)
		}
	}
	e.Schedule(0, fn)
	e.RunAll()
	if n != 10_000 {
		t.Fatalf("ran %d events, want 10000", n)
	}
	if len(e.free) > 8 {
		t.Errorf("free list holds %d events after a serial workload, want a handful", len(e.free))
	}
}
