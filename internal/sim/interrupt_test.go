package sim

import "testing"

// chain schedules n self-rescheduling unit-time events and returns a
// pointer to the count of events that actually ran.
func chain(e *Engine, n int) *int {
	ran := new(int)
	var step func()
	step = func() {
		*ran++
		if *ran < n {
			e.Schedule(1, step)
		}
	}
	e.Schedule(1, step)
	return ran
}

func TestInterruptStopsRunEarly(t *testing.T) {
	e := NewEngine()
	ran := chain(e, 1000)
	polls := 0
	e.SetInterrupt(10, func() bool {
		polls++
		return polls >= 5 // stop at the 50th event
	})
	e.Run(Forever)
	if *ran != 50 {
		t.Errorf("ran %d events, want 50 (interrupt every 10, fired on poll 5)", *ran)
	}
	if e.Executed != 50 {
		t.Errorf("Executed = %d, want 50", e.Executed)
	}
}

func TestInterruptNeverFiringIsByteIdentical(t *testing.T) {
	run := func(withInterrupt bool) (uint64, Time) {
		e := NewEngine()
		chain(e, 500)
		if withInterrupt {
			e.SetInterrupt(7, func() bool { return false })
		}
		end := e.Run(Forever)
		return e.Executed, end
	}
	execA, endA := run(false)
	execB, endB := run(true)
	if execA != execB || endA != endB {
		t.Errorf("interrupted-but-never-fired run diverged: (%d,%v) vs (%d,%v)",
			execA, endA, execB, endB)
	}
}

func TestInterruptClearAndDefaultStride(t *testing.T) {
	e := NewEngine()
	ran := chain(e, 100)
	e.SetInterrupt(3, func() bool { return true })
	e.SetInterrupt(0, nil) // clear
	e.Run(Forever)
	if *ran != 100 {
		t.Errorf("cleared interrupt still fired: ran %d/100", *ran)
	}

	// Default stride: a true-returning interrupt with every=0 stops at
	// event 4096.
	e2 := NewEngine()
	ran2 := chain(e2, 10000)
	e2.SetInterrupt(0, func() bool { return true })
	e2.Run(Forever)
	if *ran2 != 4096 {
		t.Errorf("default stride stopped at %d, want 4096", *ran2)
	}
}
