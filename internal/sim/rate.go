package sim

import "fmt"

// Rate is a link or pacing rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// TxTime returns the time needed to serialize size bytes at rate r,
// rounded up to the next nanosecond so that a sequence of transmissions
// never exceeds the physical rate.
func (r Rate) TxTime(size int) Time {
	if r <= 0 {
		return Forever
	}
	bits := int64(size) * 8
	ns := (bits*int64(Second) + int64(r) - 1) / int64(r)
	return Time(ns)
}

// BytesIn returns the number of bytes that can be serialized at rate r
// within duration d.
func (r Rate) BytesIn(d Time) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	return int64(d) * int64(r) / (8 * int64(Second))
}

// Gbits returns the rate in gigabits per second as a float64.
func (r Rate) Gbits() float64 { return float64(r) / float64(Gbps) }

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
