// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock with nanosecond resolution, a binary-heap event
// scheduler with stable FIFO ordering for simultaneous events,
// cancellable timers, and seeded randomness helpers.
//
// A single Engine is strictly single-threaded; determinism comes from the
// (config, seed) pair. Parallelism in this repository lives across
// engines: independent simulations (parameter-sweep points) fan out over
// a worker pool, never sharing state.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero value is the simulation start.
type Time int64

// Common durations expressed in virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a time later than any event a simulation will schedule. It
// is used as the default run horizon.
const Forever Time = 1<<63 - 1

// Duration converts t to a standard library duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t in microseconds as a float64.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t in milliseconds as a float64.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "1.2µs" or "3ms".
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gµs", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromDuration converts a standard library duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts seconds to virtual time, rounding to the nearest
// nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }
