package sim

import "math/rand"

// NewRNG returns a deterministic random source for a simulation run.
// Distinct streams within one run should derive sub-seeds via SubSeed so
// that adding a consumer does not perturb the draws seen by others.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SubSeed derives a stable sub-seed for the named stream. It uses the
// FNV-1a hash of the name mixed with the parent seed, so streams are
// independent of declaration order.
func SubSeed(seed int64, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	// Keep it positive so callers can feed it straight into rand.NewSource.
	return int64(h &^ (1 << 63))
}

// Exponential draws an exponentially distributed duration with the given
// mean. It is used for Poisson inter-arrival times.
func Exponential(rng *rand.Rand, mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(rng.ExpFloat64() * float64(mean))
}
