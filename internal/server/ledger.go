package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Ledger is the daemon's journaled job store. Every job state
// transition rewrites the job's record at <dir>/jobs/<id>.json and
// every completed job's report lands at <dir>/results/<id>.json, both
// with the atomic temp-file+rename idiom of campaign.Cache — a daemon
// killed mid-write never leaves a partial record that a restart would
// trust. Replaying the ledger (Jobs) plus the shared campaign cache is
// the whole recovery story: jobs found queued, running, or interrupted
// are re-queued, and their completed cells resolve as cache hits.
type Ledger struct {
	dir string
}

// OpenLedger opens (creating if needed) a ledger rooted at dir.
func OpenLedger(dir string) (*Ledger, error) {
	for _, sub := range []string{"jobs", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: ledger dir: %w", err)
		}
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger's root directory.
func (l *Ledger) Dir() string { return l.dir }

// PutJob journals one job record, atomically replacing any prior
// version.
func (l *Ledger) PutJob(j *Job) error {
	raw, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("server: encode job %s: %w", j.ID, err)
	}
	return atomicWrite(filepath.Join(l.dir, "jobs", j.ID+".json"), raw)
}

// Jobs replays the ledger: every journaled job record, sorted by
// submission sequence. Records that no longer parse are skipped (a
// partial write cannot happen under the atomic idiom, but a ledger is
// user-visible state and a hand-edited file must not brick the daemon).
func (l *Ledger) Jobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(l.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("server: replay ledger: %w", err)
	}
	var jobs []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(l.dir, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil || j.ID == "" {
			continue
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Seq < jobs[k].Seq })
	return jobs, nil
}

// PutResult persists a completed job's report payload atomically.
func (l *Ledger) PutResult(id string, payload []byte) error {
	return atomicWrite(filepath.Join(l.dir, "results", id+".json"), payload)
}

// Result returns a completed job's persisted report payload.
func (l *Ledger) Result(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(l.dir, "results", id+".json"))
}

// atomicWrite commits raw to path via the temp-file+rename idiom.
func atomicWrite(path string, raw []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: ledger temp file: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("server: write ledger entry: %w", werr)
		}
		return fmt.Errorf("server: close ledger entry: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: commit ledger entry: %w", err)
	}
	return nil
}
