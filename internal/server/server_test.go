package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"amrt"
	"amrt/internal/campaign"
	"amrt/internal/experiment"
	"amrt/internal/server"
)

// echoRunner completes instantly, returning a payload derived from the
// spec, after reporting one progress tick.
func echoRunner(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error) {
	progress(campaign.Progress{Done: 1, Total: 1, Misses: 1})
	return json.RawMessage(`{"echo":` + string(spec) + `}`), nil
}

// waitJob polls until the job reaches want (fatal on timeout or on a
// different terminal state).
func waitJob(t *testing.T, s *server.Server, id string, want server.JobState) server.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State == want {
			return j
		}
		if j.State == server.JobDone || j.State == server.JobFailed {
			t.Fatalf("job %s settled as %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return server.Job{}
}

func TestServerJobLifecycleHTTP(t *testing.T) {
	s, err := server.New(server.Config{
		StateDir: t.TempDir(),
		Runner:   echoRunner,
		Validate: func(spec json.RawMessage) error {
			if strings.Contains(string(spec), "reject") {
				return errors.New("spec rejected")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", probe, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"n": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var j server.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if !strings.HasPrefix(j.ID, "job-000001-") {
		t.Errorf("first job ID = %q", j.ID)
	}

	waitJob(t, s, j.ID, server.JobDone)

	resp, err = http.Get(ts.URL + "/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d (%s)", resp.StatusCode, payload)
	}
	if got := string(payload); got != `{"echo":{"n":1}}` {
		t.Errorf("result payload = %s", got)
	}

	// The watch stream of a settled job delivers its terminal record.
	resp, err = http.Get(ts.URL + "/jobs/" + j.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	resp.Body.Close()
	if err != nil {
		t.Fatalf("watch stream: %v", err)
	}
	var snap server.Job
	if err := json.Unmarshal(line, &snap); err != nil {
		t.Fatalf("watch line %s: %v", line, err)
	}
	if snap.State != server.JobDone || snap.Progress.Done != 1 {
		t.Errorf("watch snapshot = %+v", snap)
	}

	// Listing, unknown jobs, and rejected specs.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []server.Job
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != j.ID {
		t.Errorf("GET /jobs = %+v", list)
	}
	for path, want := range map[string]int{
		"/jobs/job-999999-deadbeef":        http.StatusNotFound,
		"/jobs/job-999999-deadbeef/result": http.StatusNotFound,
		"/jobs/job-999999-deadbeef/watch":  http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	for body, want := range map[string]int{
		`{"reject": true}`: http.StatusBadRequest,
		`not json`:         http.StatusBadRequest,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("POST %q = %d, want %d", body, resp.StatusCode, want)
		}
	}
}

func TestServerPanicIsolation(t *testing.T) {
	// A panicking job — whether the campaign pool's WorkerPanic or any
	// other panic — fails that job and leaves the daemon serving.
	s, err := server.New(server.Config{
		StateDir: t.TempDir(),
		Runner: func(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error) {
			switch string(spec) {
			case `"worker-panic"`:
				panic(&experiment.WorkerPanic{Index: 3, Value: "cell exploded", Stack: []byte("stack")})
			case `"plain-panic"`:
				panic("runner exploded")
			}
			return echoRunner(ctx, spec, progress)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	wp, err := s.Submit(json.RawMessage(`"worker-panic"`))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := s.Submit(json.RawMessage(`"plain-panic"`))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Submit(json.RawMessage(`"fine"`))
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		a, _ := s.Job(wp.ID)
		b, _ := s.Job(pp.ID)
		c, _ := s.Job(ok.ID)
		if a.State == server.JobFailed && b.State == server.JobFailed && c.State == server.JobDone {
			if !strings.Contains(a.Error, "cell exploded") {
				t.Errorf("worker-panic job error = %q", a.Error)
			}
			if !strings.Contains(b.Error, "runner exploded") {
				t.Errorf("plain-panic job error = %q", b.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("jobs never settled after runner panics")
}

func TestServerDrainInterruptsRunningJob(t *testing.T) {
	started := make(chan struct{})
	s, err := server.New(server.Config{
		StateDir: t.TempDir(),
		Runner: func(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Drain with an already-expired budget: the in-flight job must be
	// cancelled and journaled interrupted, not failed.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(expired); err == nil {
		t.Error("Shutdown with expired budget returned nil, want context error")
	}
	got, _ := s.Job(j.ID)
	if got.State != server.JobInterrupted {
		t.Fatalf("drained job state = %s (error %q), want interrupted", got.State, got.Error)
	}
	if _, err := s.Submit(json.RawMessage(`{}`)); !errors.Is(err, server.ErrDraining) {
		t.Errorf("Submit after Shutdown = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
}

// sweepSpecFor builds the real-simulator sweep config the crash-resume
// test uses: 4 cheap points against the daemon's shared cache.
func sweepSpecFor(cacheDir string) amrt.SweepConfig {
	return amrt.SweepConfig{
		Protocols: []string{"pHost", "AMRT"},
		Loads:     []float64{0.4},
		Seeds:     []int64{1, 2},
		Base: amrt.Config{
			Workload: "WebServer", Flows: 80,
			Topology: amrt.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 5},
		},
		CacheDir: cacheDir,
		Workers:  1,
	}
}

// sweepRunner executes sweepSpecFor against the daemon cache,
// mirroring the cmd/amrtsim serve wiring. notify, when non-nil, is
// called after every resolved point (used to trigger the mid-flight
// interruption).
func sweepRunner(cacheDir string, notify func(amrt.SweepProgress)) server.Runner {
	return func(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error) {
		sc := sweepSpecFor(cacheDir)
		sc.Progress = func(p amrt.SweepProgress) {
			progress(campaign.Progress{
				Done: p.Done, Total: p.Total,
				Hits: p.CacheHits, Misses: p.CacheMisses, Failed: p.Failed,
			})
			if notify != nil {
				notify(p)
			}
		}
		res, err := amrt.Sweep(ctx, sc)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// TestServerCrashResume is the daemon-path crash-resume regression: a
// campaign interrupted mid-flight is journaled, a restarted daemon
// replays the ledger and re-runs it to completion, and a simulated
// SIGKILL (job record left "running" on disk) resumes with 100% cache
// hits — all against byte-identical reports.
func TestServerCrashResume(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := stateDir + "/cache"

	// Reference report from a direct, uninterrupted sweep on its own
	// cache.
	ref, err := amrt.Sweep(context.Background(), sweepSpecFor(t.TempDir()+"/cache"))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	// Daemon #1: interrupt the job after its second resolved point by
	// draining with an expired budget.
	interrupt := make(chan struct{})
	var once bool
	s1, err := server.New(server.Config{
		StateDir: stateDir,
		Runner: sweepRunner(cacheDir, func(p amrt.SweepProgress) {
			if p.Done >= 2 && !once {
				once = true
				close(interrupt)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	<-interrupt
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s1.Shutdown(expired)
	if got, _ := s1.Job(j.ID); got.State != server.JobInterrupted {
		t.Fatalf("job after drain = %s (error %q), want interrupted", got.State, got.Error)
	}

	// Daemon #2 on the same state dir: the ledger replays the
	// interrupted job, re-queues it, and the shared cache supplies the
	// completed points.
	s2, err := server.New(server.Config{StateDir: stateDir, Runner: sweepRunner(cacheDir, nil)})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, s2, j.ID, server.JobDone)
	if done.Progress.Hits < 2 {
		t.Errorf("resumed job re-computed checkpointed points: %+v", done.Progress)
	}
	payload, err := s2.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want.Bytes()) {
		t.Error("resumed report is not byte-identical to the direct sweep")
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulated SIGKILL: rewrite the finished job's ledger record to
	// "running" — exactly what a daemon killed mid-job leaves behind —
	// and restart. The replay re-queues it and every point must be a
	// cache hit.
	ledger, err := server.OpenLedger(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	crashed := done
	crashed.State = server.JobRunning
	if err := ledger.PutJob(&crashed); err != nil {
		t.Fatal(err)
	}
	s3, err := server.New(server.Config{StateDir: stateDir, Runner: sweepRunner(cacheDir, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Shutdown(context.Background())
	if replayed, _ := s3.Job(j.ID); replayed.State == server.JobDone {
		t.Fatal("ledger replay did not re-queue the crashed job")
	}
	redone := waitJob(t, s3, j.ID, server.JobDone)
	if redone.Progress.Hits != redone.Progress.Total || redone.Progress.Misses != 0 {
		t.Errorf("SIGKILL resume was not 100%% cache hits: %+v", redone.Progress)
	}
	payload, err = s3.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want.Bytes()) {
		t.Error("SIGKILL-resumed report is not byte-identical to the direct sweep")
	}
}

func TestLedgerReplaySkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	ledger, err := server.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		j := &server.Job{ID: fmt.Sprintf("job-%06d-abcd0000", i), Seq: i, Spec: json.RawMessage(`{}`), State: server.JobDone}
		if err := ledger.PutJob(j); err != nil {
			t.Fatal(err)
		}
	}
	// A hand-mangled record must not brick the replay.
	if err := os.WriteFile(dir+"/jobs/job-000002-abcd0000.json", []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := ledger.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Seq != 1 || jobs[1].Seq != 3 {
		t.Fatalf("replay = %+v, want jobs 1 and 3 in order", jobs)
	}
}
