// Package server implements the amrtsim serve campaign daemon: a
// long-lived HTTP service that accepts sweep specs as jobs, schedules
// them on a supervised worker pool backed by the content-addressed
// campaign cache, and survives the failures a standing service
// actually sees. Its robustness contract has four legs:
//
//  1. per-point failure policy — jobs run under campaign.FailurePolicy
//     (bounded retries with deterministic backoff, per-cell timeouts,
//     quarantine), so one poisoned cell degrades a job instead of
//     killing it;
//  2. panic isolation — a panicking cell (experiment.WorkerPanic or
//     any other panic inside the runner) fails its job, never the
//     daemon;
//  3. a journaled job ledger (Ledger) — atomic temp-file+rename
//     records per job, so a SIGKILLed daemon restarts, replays the
//     ledger, re-queues interrupted jobs, and resumes them with cache
//     hits for every completed cell;
//  4. graceful drain — Shutdown stops intake, lets in-flight jobs
//     finish until the deadline, then checkpoints them as interrupted
//     (their completed cells are already in the cache) and flushes the
//     ledger.
//
// The package is simulator-agnostic like internal/campaign: a job's
// spec and result are opaque JSON, executed by the injected Runner
// (cmd/amrtsim wires amrt.Sweep). docs/SERVICE.md documents the HTTP
// surface, job lifecycle, and ledger layout.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"amrt/internal/campaign"
	"amrt/internal/experiment"
)

// JobState is one stop in the job lifecycle: queued → running →
// done | failed, with interrupted as the checkpoint state a drain or
// crash leaves behind (re-queued on the next start).
type JobState string

// The job lifecycle states journaled in the ledger.
const (
	// JobQueued marks a job accepted but not yet claimed by a worker.
	JobQueued JobState = "queued"
	// JobRunning marks a job claimed by a worker. A ledger replay
	// treats it like interrupted: the daemon died mid-job.
	JobRunning JobState = "running"
	// JobInterrupted marks a job checkpointed by a drain: its
	// completed cells are in the cache, and a restart re-queues it.
	JobInterrupted JobState = "interrupted"
	// JobDone marks a completed job whose report is in the ledger.
	JobDone JobState = "done"
	// JobFailed marks a job whose runner returned an error or panicked.
	JobFailed JobState = "failed"
)

// terminal reports whether a state ends the job lifecycle.
func (s JobState) terminal() bool { return s == JobDone || s == JobFailed }

// JobProgress is the live campaign.Progress snapshot of one job:
// resolved points, cache ledger, and quarantined-point count.
type JobProgress struct {
	Done   int `json:"done"`
	Total  int `json:"total"`
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Failed int `json:"failed"`
}

// Job is one submitted campaign: its identity, opaque spec, lifecycle
// state, and latest progress snapshot. The ledger journals exactly
// this record.
type Job struct {
	// ID is the server-assigned identity: submission sequence plus a
	// digest prefix of the spec, e.g. "job-000003-1a2b3c4d".
	ID string `json:"id"`
	// Seq is the submission sequence number, the queue order.
	Seq int `json:"seq"`
	// Spec is the compacted job spec as submitted (opaque JSON).
	Spec json.RawMessage `json:"spec"`
	// State is the lifecycle state (see JobState).
	State JobState `json:"state"`
	// Error holds the final error text of a failed or interrupted job.
	Error string `json:"error,omitempty"`
	// Progress is the latest progress snapshot. Mid-run progress lives
	// only in memory — cells are checkpointed in the campaign cache,
	// not the ledger — and the final snapshot is journaled with the
	// terminal transition.
	Progress JobProgress `json:"progress"`
}

// Runner executes one job: it receives the job's opaque spec and a
// progress hook fed from the campaign's Progress stream, and returns
// the report payload. It must honor ctx promptly — a drain past its
// deadline cancels ctx and journals the job as interrupted.
type Runner func(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error)

// Config wires a Server.
type Config struct {
	// StateDir roots the ledger (jobs/, results/). The campaign cache
	// conventionally lives beside it, but the server itself never
	// touches it — the Runner owns cache placement.
	StateDir string
	// Runner executes submitted jobs (required).
	Runner Runner
	// Validate, when non-nil, vets a spec at submission time so
	// malformed jobs are rejected with an error (HTTP 400) instead of
	// being accepted and failing later.
	Validate func(spec json.RawMessage) error
	// JobWorkers is the number of jobs run concurrently; <= 0 means 1.
	// Cell-level parallelism inside a job belongs to the Runner.
	JobWorkers int
}

// Sentinel errors of the submission path.
var (
	// ErrDraining reports a submission to a draining or stopped server.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrUnknownJob reports a lookup of a job ID the ledger never saw.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrNoResult reports a result request for a job that is not done.
	ErrNoResult = errors.New("server: job has no result")
)

// Server is the campaign daemon: a job queue, a supervised worker
// pool, and the journaled ledger. Create with New, serve its Handler,
// stop with Shutdown.
type Server struct {
	cfg        Config
	ledger     *Ledger
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string
	cancels  map[string]context.CancelFunc
	watchers map[string][]chan Job
	seq      int
	draining bool
	stopped  bool
}

// New opens the ledger under cfg.StateDir, replays it — jobs journaled
// queued, running, or interrupted are re-queued; done and failed jobs
// are kept for status and result serving — and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("server: Config.StateDir is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	ledger, err := OpenLedger(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		ledger:     ledger,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		cancels:    map[string]context.CancelFunc{},
		watchers:   map[string][]chan Job{},
	}
	s.cond = sync.NewCond(&s.mu)
	replayed, err := ledger.Jobs()
	if err != nil {
		cancel()
		return nil, err
	}
	for _, j := range replayed {
		if !j.State.terminal() {
			// The daemon died or drained mid-job: re-queue. Completed
			// cells live in the campaign cache, so the re-run resolves
			// them as hits instead of recomputation.
			j.State = JobQueued
			j.Progress = JobProgress{}
			if err := ledger.PutJob(j); err != nil {
				cancel()
				return nil, err
			}
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if j.Seq > s.seq {
			s.seq = j.Seq
		}
	}
	for w := 0; w < cfg.JobWorkers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit accepts one job spec, journals it queued, and returns the job
// snapshot. Identical specs submitted twice are distinct jobs (the
// cache, not the queue, deduplicates the work). Returns ErrDraining
// once Shutdown has begun.
func (s *Server) Submit(spec json.RawMessage) (Job, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, spec); err != nil {
		return Job{}, fmt.Errorf("server: spec is not valid JSON: %w", err)
	}
	if s.cfg.Validate != nil {
		if err := s.cfg.Validate(compact.Bytes()); err != nil {
			return Job{}, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return Job{}, ErrDraining
	}
	s.seq++
	sum := sha256.Sum256(compact.Bytes())
	j := &Job{
		ID:    fmt.Sprintf("job-%06d-%x", s.seq, sum[:4]),
		Seq:   s.seq,
		Spec:  json.RawMessage(compact.String()),
		State: JobQueued,
	}
	if err := s.ledger.PutJob(j); err != nil {
		s.seq--
		return Job{}, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.cond.Signal()
	return *j, nil
}

// Job returns a snapshot of one job by ID.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job in submission order.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Result returns the persisted report payload of a done job.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state JobState
	if ok {
		state = j.State
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if state != JobDone {
		return nil, fmt.Errorf("%w: %s is %s", ErrNoResult, id, state)
	}
	return s.ledger.Result(id)
}

// Draining reports whether Shutdown has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.stopped
}

// Shutdown drains the server gracefully: stop accepting jobs, let
// queued and in-flight jobs finish until ctx expires, then cancel
// whatever still runs so it checkpoints — the runner observes the
// cancellation, completed cells stay in the cache, and the job is
// journaled interrupted for the next start to resume. Returns
// ctx.Err() when the deadline cut the drain short, nil on a complete
// drain. The worker pool is stopped and the ledger flushed either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		defer close(idle)
		s.mu.Lock()
		defer s.mu.Unlock()
		for !s.stopped && s.busyLocked() > 0 {
			s.cond.Wait()
		}
	}()

	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel() // checkpoint in-flight jobs past the drain deadline
	s.wg.Wait()
	<-idle

	// Unblock any remaining watch streams (their jobs never reached a
	// terminal state in this process).
	s.mu.Lock()
	for id, chans := range s.watchers {
		for _, ch := range chans {
			close(ch)
		}
		delete(s.watchers, id)
	}
	s.mu.Unlock()
	return err
}

// busyLocked counts jobs still owed work. Caller holds s.mu.
func (s *Server) busyLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.State == JobQueued || j.State == JobRunning {
			n++
		}
	}
	return n
}

// worker claims queued jobs in submission order until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ctx, cancel := s.claim()
		if j == nil {
			return
		}
		s.runJob(j, ctx, cancel)
	}
}

// claim blocks until a queued job is available (returning it marked
// running, with its cancellable context) or the server stops (nil).
func (s *Server) claim() (*Job, context.Context, context.CancelFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, nil, nil
		}
		for _, id := range s.order {
			j := s.jobs[id]
			if j.State != JobQueued {
				continue
			}
			j.State = JobRunning
			j.Error = ""
			s.persistLocked(j)
			s.notifyLocked(j)
			ctx, cancel := context.WithCancel(s.baseCtx)
			s.cancels[j.ID] = cancel
			return j, ctx, cancel
		}
		s.cond.Wait()
	}
}

// runJob executes one claimed job and journals its terminal (or
// checkpoint) transition.
func (s *Server) runJob(j *Job, ctx context.Context, cancel context.CancelFunc) {
	payload, panicked, err := s.invoke(ctx, j)
	interrupted := ctx.Err() != nil && !panicked

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, j.ID)
	cancel()
	switch {
	case err == nil:
		if perr := s.ledger.PutResult(j.ID, payload); perr != nil {
			j.State = JobFailed
			j.Error = fmt.Sprintf("persisting result: %v", perr)
		} else {
			j.State = JobDone
			j.Error = ""
		}
	case interrupted:
		// A drain (or daemon shutdown) cancelled the job mid-flight:
		// checkpoint. Completed cells are in the cache; the next start
		// re-queues the job and resumes with hits.
		j.State = JobInterrupted
		j.Error = err.Error()
	default:
		j.State = JobFailed
		j.Error = err.Error()
	}
	s.persistLocked(j)
	s.notifyLocked(j)
	s.cond.Broadcast()
}

// invoke runs the Runner with panic isolation: a panicking cell —
// *experiment.WorkerPanic from the campaign pool, or anything else —
// fails this job and leaves the daemon standing.
func (s *Server) invoke(ctx context.Context, j *Job) (payload json.RawMessage, panicked bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			panicked = true
			if wp, ok := v.(*experiment.WorkerPanic); ok {
				err = fmt.Errorf("server: job %s worker panic: %w", j.ID, wp)
			} else {
				err = fmt.Errorf("server: job %s panic: %v\n%s", j.ID, v, debug.Stack())
			}
		}
	}()
	payload, err = s.cfg.Runner(ctx, j.Spec, func(p campaign.Progress) { s.observe(j.ID, p) })
	return payload, false, err
}

// observe folds one campaign.Progress update into the job's snapshot
// and fans it out to watchers.
func (s *Server) observe(id string, p campaign.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.State != JobRunning {
		return
	}
	j.Progress = JobProgress{Done: p.Done, Total: p.Total, Hits: p.Hits, Misses: p.Misses, Failed: p.Failed}
	s.notifyLocked(j)
}

// persistLocked journals a job record; a ledger write failure must not
// crash the daemon, so it degrades to marking the job's error. Caller
// holds s.mu.
func (s *Server) persistLocked(j *Job) {
	if err := s.ledger.PutJob(j); err != nil && j.Error == "" {
		j.Error = fmt.Sprintf("journaling %s: %v", j.State, err)
	}
}

// notifyLocked fans a job snapshot out to its watchers, closing them
// on terminal states. Sends never block: a slow watcher misses
// intermediate snapshots, not the terminal one (watch re-reads the job
// after the channel closes). Caller holds s.mu.
func (s *Server) notifyLocked(j *Job) {
	chans := s.watchers[j.ID]
	if len(chans) == 0 {
		return
	}
	snap := *j
	for _, ch := range chans {
		select {
		case ch <- snap:
		default:
		}
	}
	if j.State.terminal() {
		for _, ch := range chans {
			close(ch)
		}
		delete(s.watchers, j.ID)
	}
}

// watch subscribes to a job's progress feed. The returned channel
// delivers snapshots and closes on the job's terminal transition;
// cancel unsubscribes early. ok is false for unknown jobs.
func (s *Server) watch(id string) (ch <-chan Job, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, exists := s.jobs[id]
	if !exists {
		return nil, nil, false
	}
	c := make(chan Job, 64)
	if j.State.terminal() {
		// Already settled: deliver the terminal snapshot and close.
		c <- *j
		close(c)
		return c, func() {}, true
	}
	s.watchers[id] = append(s.watchers[id], c)
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		chans := s.watchers[id]
		for i, w := range chans {
			if w == c {
				s.watchers[id] = append(chans[:i], chans[i+1:]...)
				return
			}
		}
	}
	return c, cancel, true
}
