package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxSpecBytes bounds a submitted spec so a misbehaving client cannot
// exhaust daemon memory; sweep specs are a few hundred bytes.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP surface:
//
//	GET  /healthz           liveness (200 while the process serves)
//	GET  /readyz            readiness (503 once draining)
//	POST /jobs              submit a spec; 202 + job record
//	GET  /jobs              list all jobs in submission order
//	GET  /jobs/{id}         one job's record (state + progress)
//	GET  /jobs/{id}/result  the persisted report of a done job
//	GET  /jobs/{id}/watch   NDJSON stream of job snapshots until terminal
//
// docs/SERVICE.md documents request and response shapes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j)
	})
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/watch", s.handleWatch)
	return mux
}

// handleSubmit accepts a spec, validates it, and enqueues the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: reading spec: %w", err))
		return
	}
	if len(spec) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("server: spec exceeds %d bytes", maxSpecBytes))
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

// handleResult serves the persisted report of a done job.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	payload, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNoResult):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	}
}

// handleWatch streams NDJSON job snapshots until the job settles, the
// client disconnects, or the server shuts down. The final line is the
// job's latest record at stream close (its terminal snapshot when the
// job settled).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, stop, ok := s.watch(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, id))
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case snap, open := <-ch:
			if !open {
				// Channel closed on a terminal transition (or server
				// shutdown): emit the authoritative final record.
				if j, exists := s.Job(id); exists {
					enc.Encode(j)
				}
				return
			}
			if err := enc.Encode(snap); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
