// Package model implements the paper's §5 analytical model: the time
// AMRT needs to fill spare bandwidth (Eqs. 4–5), the flow completion
// times of a traditional receiver-driven protocol and of AMRT after a
// rate reduction (Eqs. 6–10), and the resulting utilization and FCT
// gains (Eqs. 11–12) that Fig. 7 plots.
//
// Units: the paper writes Eqs. 7–8 with C and R implicitly in
// packets-per-RTT (mirroring Eqs. 4–5 where n packets saturate one RTT
// and k positions are vacant). This package makes that explicit:
// n = C·RTT/MSS and k = (C−R)·RTT/MSS, so
//
//	t'_min = ⌈k/(n−k)⌉·RTT + T_R   and   t'_max = k·RTT + T_R,
//
// which reduce to the paper's expressions in its implicit units.
package model

import (
	"math"

	"amrt/internal/sim"
)

// FillTimeMin is Eq. (4): with k vacancies evenly spread among n−k
// remaining packets per RTT, each surviving packet's marked grant adds
// one packet per RTT, so filling takes ⌈k/(n−k)⌉ RTTs.
func FillTimeMin(n, k int, rtt sim.Time) sim.Time {
	if k <= 0 {
		return 0
	}
	if k >= n {
		return sim.Forever
	}
	rounds := (k + (n - k) - 1) / (n - k) // ⌈k/(n−k)⌉
	return sim.Time(rounds) * rtt
}

// FillTimeMax is Eq. (5): with k consecutive vacancies only one gap is
// visible per RTT, so filling takes k RTTs.
func FillTimeMax(k int, rtt sim.Time) sim.Time {
	if k <= 0 {
		return 0
	}
	return sim.Time(k) * rtt
}

// GainParams parameterizes the §5 gain model.
type GainParams struct {
	C   sim.Rate // bottleneck capacity
	R   sim.Rate // reduced rate after congestion at time TR
	S   int64    // flow size in bytes
	TR  sim.Time // time at which the rate drops from C to R
	RTT sim.Time // base round-trip time
	MSS int      // packet size used to convert rates to packets/RTT
}

func (p GainParams) bitsS() float64 { return float64(p.S) * 8 }
func (p GainParams) cBps() float64  { return float64(p.C) }
func (p GainParams) rBps() float64  { return float64(p.R) }
func (p GainParams) trS() float64   { return p.TR.Seconds() }
func (p GainParams) rttS() float64  { return p.RTT.Seconds() }

// packetsPerRTT returns how many MSS-sized packets rate r delivers in
// one RTT.
func (p GainParams) packetsPerRTT(r float64) float64 {
	return r * p.rttS() / (8 * float64(p.MSS))
}

// T1 is Eq. (6): the completion time of a traditional receiver-driven
// flow that is stuck at rate R after TR.
func (p GainParams) T1() float64 {
	return (p.bitsS()-p.cBps()*p.trS())/p.rBps() + p.trS()
}

// Ti is the ideal completion time S/C with no congestion.
func (p GainParams) Ti() float64 { return p.bitsS() / p.cBps() }

// TPrimeMin is Eq. (7): the earliest time AMRT is back at rate C. In the
// paper's discrete model n−k ≥ 1 guarantees ⌈k/(n−k)⌉ ≤ k; with
// fractional packets-per-RTT that can invert, so the result is clamped
// to TPrimeMax.
func (p GainParams) TPrimeMin() float64 {
	n := p.packetsPerRTT(p.cBps())
	k := p.packetsPerRTT(p.cBps() - p.rBps())
	if k <= 0 {
		return p.trS()
	}
	if n-k <= 0 {
		return math.Inf(1)
	}
	t := math.Ceil(k/(n-k))*p.rttS() + p.trS()
	return math.Min(t, p.TPrimeMax())
}

// TPrimeMax is Eq. (8): the latest time AMRT is back at rate C.
func (p GainParams) TPrimeMax() float64 {
	k := p.packetsPerRTT(p.cBps() - p.rBps())
	if k <= 0 {
		return p.trS()
	}
	return math.Ceil(k)*p.rttS() + p.trS()
}

// T2 is Eq. (10): AMRT's completion time given it reaches full rate at
// tPrime (linear ramp from R to C between TR and tPrime).
func (p GainParams) T2(tPrime float64) float64 {
	ramp := 0.5 * (p.rBps() + p.cBps()) * (tPrime - p.trS())
	return (p.bitsS()-p.cBps()*p.trS()-ramp)/p.cBps() + tPrime
}

// UtilizationGain is Eq. (11): T1/T2.
func (p GainParams) UtilizationGain(tPrime float64) float64 {
	return p.T1() / p.T2(tPrime)
}

// FCTGain is Eq. (12): (T1−Ti)/(T2−Ti).
func (p GainParams) FCTGain(tPrime float64) float64 {
	ti := p.Ti()
	den := p.T2(tPrime) - ti
	if den <= 0 {
		return math.Inf(1)
	}
	return (p.T1() - ti) / den
}

// GainPoint is one x-position of a Fig. 7 curve.
type GainPoint struct {
	X       float64 // R/C for (a,b); TR/Ti for (c,d)
	MinGain float64 // gain when convergence takes t'_max (worst case)
	MaxGain float64 // gain when convergence takes t'_min (best case)
}

// UtilizationGainCurve reproduces Fig. 7 (a,b): min and max utilization
// gain versus R/C for a given flow size.
func UtilizationGainCurve(c sim.Rate, rtt sim.Time, mss int, size int64, ratios []float64) []GainPoint {
	out := make([]GainPoint, 0, len(ratios))
	for _, x := range ratios {
		p := GainParams{C: c, R: sim.Rate(float64(c) * x), S: size, TR: 0, RTT: rtt, MSS: mss}
		out = append(out, GainPoint{
			X:       x,
			MinGain: p.UtilizationGain(p.TPrimeMax()),
			MaxGain: p.UtilizationGain(p.TPrimeMin()),
		})
	}
	return out
}

// FCTGainCurve reproduces Fig. 7 (c,d): min and max FCT gain versus
// TR/Ti for a given flow size and fixed R/C ratio.
func FCTGainCurve(c sim.Rate, rtt sim.Time, mss int, size int64, rOverC float64, trOverTi []float64) []GainPoint {
	out := make([]GainPoint, 0, len(trOverTi))
	for _, x := range trOverTi {
		p := GainParams{C: c, R: sim.Rate(float64(c) * rOverC), S: size, RTT: rtt, MSS: mss}
		p.TR = sim.FromSeconds(x * p.Ti())
		out = append(out, GainPoint{
			X:       x,
			MinGain: p.FCTGain(p.TPrimeMax()),
			MaxGain: p.FCTGain(p.TPrimeMin()),
		})
	}
	return out
}
