package model

import (
	"math"
	"testing"
	"testing/quick"

	"amrt/internal/sim"
)

func TestFillTimes(t *testing.T) {
	rtt := 100 * sim.Microsecond
	// Paper's Fig. 5 example: n=6, k=4 → min 2 RTT, max 4 RTT.
	if got := FillTimeMin(6, 4, rtt); got != 2*rtt {
		t.Errorf("FillTimeMin(6,4) = %v, want 2 RTT", got)
	}
	if got := FillTimeMax(4, rtt); got != 4*rtt {
		t.Errorf("FillTimeMax(4) = %v, want 4 RTT", got)
	}
	if FillTimeMin(6, 0, rtt) != 0 || FillTimeMax(0, rtt) != 0 {
		t.Error("no vacancies should need zero time")
	}
	if FillTimeMin(4, 4, rtt) != sim.Forever {
		t.Error("all-vacant link can never be filled by surviving packets")
	}
	// Evenly spread vacancies: k=2, n=6 → ceil(2/4)=1 RTT.
	if got := FillTimeMin(6, 2, rtt); got != rtt {
		t.Errorf("FillTimeMin(6,2) = %v, want 1 RTT", got)
	}
}

func defaultParams() GainParams {
	return GainParams{
		C:   sim.Gbps,
		R:   sim.Gbps / 2,
		S:   1_000_000, // 1 MB
		TR:  0,
		RTT: 100 * sim.Microsecond,
		MSS: 1500,
	}
}

func TestT1AndTi(t *testing.T) {
	p := defaultParams()
	// T1 = S/R with TR=0: 8e6 bits / 5e8 bps = 16 ms.
	if got := p.T1(); math.Abs(got-0.016) > 1e-9 {
		t.Errorf("T1 = %v, want 0.016", got)
	}
	// Ti = S/C = 8 ms.
	if got := p.Ti(); math.Abs(got-0.008) > 1e-9 {
		t.Errorf("Ti = %v, want 0.008", got)
	}
}

func TestTPrimeBounds(t *testing.T) {
	p := defaultParams()
	// R/C = 0.5: k = n/2 → ceil(k/(n-k)) = 1 RTT.
	if got := p.TPrimeMin(); math.Abs(got-100e-6) > 1e-12 {
		t.Errorf("TPrimeMin = %v, want 100µs", got)
	}
	// k = (C-R)·RTT/MSS = 5e8*1e-4/12000 ≈ 4.17 packets → ceil = 5 RTTs.
	if got := p.TPrimeMax(); math.Abs(got-500e-6) > 1e-12 {
		t.Errorf("TPrimeMax = %v, want 500µs", got)
	}
	if p.TPrimeMin() > p.TPrimeMax() {
		t.Error("TPrimeMin exceeds TPrimeMax")
	}
	// No rate reduction → no convergence needed.
	p.R = p.C
	if p.TPrimeMin() != 0 || p.TPrimeMax() != 0 {
		t.Error("R=C should converge immediately (TR=0)")
	}
}

func TestT2LessThanT1(t *testing.T) {
	p := defaultParams()
	for _, tp := range []float64{p.TPrimeMin(), p.TPrimeMax()} {
		t2 := p.T2(tp)
		if t2 >= p.T1() {
			t.Errorf("T2(%v) = %v not better than T1 %v", tp, t2, p.T1())
		}
		if t2 < p.Ti() {
			t.Errorf("T2 = %v beats the ideal %v", t2, p.Ti())
		}
	}
}

func TestGainsExceedOne(t *testing.T) {
	p := defaultParams()
	for _, tp := range []float64{p.TPrimeMin(), p.TPrimeMax()} {
		if g := p.UtilizationGain(tp); g <= 1 {
			t.Errorf("utilization gain %v should exceed 1", g)
		}
		if g := p.FCTGain(tp); g <= 1 {
			t.Errorf("FCT gain %v should exceed 1", g)
		}
	}
	// Faster convergence (smaller t') must give at least as large a gain.
	if p.UtilizationGain(p.TPrimeMin()) < p.UtilizationGain(p.TPrimeMax()) {
		t.Error("min-time gain below max-time gain")
	}
}

func TestGainGrowsAsRShrinks(t *testing.T) {
	// Fig. 7 (a,b): utilization gain increases as R/C decreases.
	prev := 0.0
	for _, ratio := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		p := defaultParams()
		p.R = sim.Rate(float64(p.C) * ratio)
		g := p.UtilizationGain(p.TPrimeMax())
		if g < prev {
			t.Errorf("gain not monotone: R/C=%.1f gain=%.3f < previous %.3f", ratio, g, prev)
		}
		prev = g
	}
}

func TestGainGrowsWithFlowSize(t *testing.T) {
	// Fig. 7: AMRT performs better with larger flows.
	small := defaultParams()
	small.S = 64_000
	large := defaultParams()
	large.S = 10_000_000
	if large.UtilizationGain(large.TPrimeMax()) <= small.UtilizationGain(small.TPrimeMax()) {
		t.Error("larger flows should see larger utilization gain")
	}
}

func TestFCTGainShrinksWithTR(t *testing.T) {
	// Fig. 7 (c,d): FCT gain decreases as TR/Ti increases (less of the
	// flow is affected by the slow period).
	p := defaultParams()
	prev := math.Inf(1)
	for _, frac := range []float64{0.0, 0.2, 0.4, 0.6} {
		p.TR = sim.FromSeconds(frac * p.Ti())
		g := p.FCTGain(p.TPrimeMax())
		if g > prev+1e-9 {
			t.Errorf("FCT gain not decreasing at TR/Ti=%.1f: %.3f > %.3f", frac, g, prev)
		}
		prev = g
	}
}

func TestUtilizationGainCurveShape(t *testing.T) {
	ratios := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	curve := UtilizationGainCurve(sim.Gbps, 100*sim.Microsecond, 1500, 1_000_000, ratios)
	if len(curve) != len(ratios) {
		t.Fatal("curve length")
	}
	for i, pt := range curve {
		if pt.MaxGain < pt.MinGain {
			t.Errorf("point %d: max gain %.3f < min gain %.3f", i, pt.MaxGain, pt.MinGain)
		}
		if pt.MinGain < 1 {
			t.Errorf("point %d: min gain %.3f below 1", i, pt.MinGain)
		}
		if i > 0 && pt.MinGain > curve[i-1].MinGain {
			t.Errorf("min gain should fall as R/C grows: %.3f after %.3f", pt.MinGain, curve[i-1].MinGain)
		}
	}
}

func TestFCTGainCurveShape(t *testing.T) {
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8}
	curve := FCTGainCurve(sim.Gbps, 100*sim.Microsecond, 1500, 1_000_000, 0.5, fracs)
	for i, pt := range curve {
		if pt.MaxGain < pt.MinGain {
			t.Errorf("point %d: max < min", i)
		}
		if i > 0 && pt.MinGain > curve[i-1].MinGain+1e-9 {
			t.Errorf("FCT min gain should fall as TR/Ti grows")
		}
	}
}

// Property: for any sane parameters, Ti <= T2 <= T1 with t' in
// [t'_min, t'_max], and both gains are >= 1.
func TestModelOrderingProperty(t *testing.T) {
	f := func(ratioPct uint8, sizeKB uint16) bool {
		ratio := float64(ratioPct%80+10) / 100 // 0.10..0.89
		size := int64(sizeKB%10000+500) * 1000 // 0.5MB..10.5MB
		p := GainParams{
			C: sim.Gbps, R: sim.Rate(float64(sim.Gbps) * ratio),
			S: size, TR: 0, RTT: 100 * sim.Microsecond, MSS: 1500,
		}
		tmin, tmax := p.TPrimeMin(), p.TPrimeMax()
		if tmin > tmax {
			return false
		}
		// Only meaningful when the flow outlives the convergence window.
		if p.Ti() < tmax {
			return true
		}
		for _, tp := range []float64{tmin, tmax} {
			t2 := p.T2(tp)
			if t2 < p.Ti()-1e-9 || t2 > p.T1()+1e-9 {
				return false
			}
			if p.UtilizationGain(tp) < 1-1e-9 || p.FCTGain(tp) < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
