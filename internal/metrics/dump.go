package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion tags the JSON dump format; docs/TELEMETRY.md documents
// it field by field. Bump it on any incompatible change.
const SchemaVersion = "amrt-metrics/v1"

// The dump structs mirror the documented JSON schema. Field order here
// is the field order in the file.

type jsonDump struct {
	Schema     string       `json:"schema"`
	IntervalUs float64      `json:"interval_us"`
	StartUs    float64      `json:"start_us"`
	Counters   []jsonScalar `json:"counters"`
	Gauges     []jsonGauge  `json:"gauges"`
	Series     []jsonSeries `json:"series"`
}

type jsonScalar struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonGauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type jsonSeries struct {
	Name       string    `json:"name"`
	IntervalUs float64   `json:"interval_us"`
	FirstUs    float64   `json:"first_us"`
	Dropped    int64     `json:"dropped"`
	Samples    []float64 `json:"samples"`
}

// snapshot evaluates every instrument and returns the sorted dump.
func (r *Registry) snapshot() jsonDump {
	d := jsonDump{
		Schema:   SchemaVersion,
		Counters: []jsonScalar{},
		Gauges:   []jsonGauge{},
		Series:   []jsonSeries{},
	}
	if r == nil {
		return d
	}
	d.IntervalUs = r.interval.Microseconds()
	d.StartUs = r.startAt.Microseconds()
	for _, c := range r.counters {
		d.Counters = append(d.Counters, jsonScalar{c.name, c.v})
	}
	for _, f := range r.counterFns {
		d.Counters = append(d.Counters, jsonScalar{f.name, f.fn()})
	}
	for _, g := range r.gauges {
		d.Gauges = append(d.Gauges, jsonGauge{g.name, clean(g.v)})
	}
	for _, f := range r.gaugeFns {
		d.Gauges = append(d.Gauges, jsonGauge{f.name, clean(f.fn())})
	}
	for _, s := range r.series {
		vals := s.Values()
		for i, v := range vals {
			vals[i] = clean(v)
		}
		if vals == nil {
			vals = []float64{}
		}
		d.Series = append(d.Series, jsonSeries{
			Name:       s.name,
			IntervalUs: s.interval.Microseconds(),
			FirstUs:    s.firstAt.Microseconds(),
			Dropped:    s.dropped,
			Samples:    vals,
		})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
	sort.Slice(d.Gauges, func(i, j int) bool { return d.Gauges[i].Name < d.Gauges[j].Name })
	sort.Slice(d.Series, func(i, j int) bool { return d.Series[i].Name < d.Series[j].Name })
	return d
}

// clean maps NaN and ±Inf to 0 — encoding/json rejects them, and a
// telemetry file should never fail to write because one gauge divided
// by zero.
func clean(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON writes the dump documented in docs/TELEMETRY.md:
// instruments in sorted-name order, canonical float formatting, so
// identical runs produce byte-identical files. A nil registry writes a
// valid empty dump.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encoding dump: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes the time-series portion of the dump as one wide CSV:
// a t_us column followed by one column per series in sorted-name
// order, rows aligned on the shared tick timeline. A series that has no
// sample at a row's time (registered late, or its oldest samples were
// evicted) leaves the cell empty. Counters and gauges are JSON-only.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil || len(r.series) == 0 {
		_, err := fmt.Fprintln(w, "t_us")
		return err
	}
	series := make([]*TimeSeries, len(r.series))
	copy(series, r.series)
	sort.Slice(series, func(i, j int) bool { return series[i].name < series[j].name })

	header := make([]string, 0, len(series)+1)
	header = append(header, "t_us")
	for _, s := range series {
		header = append(header, csvEscape(s.name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}

	iv := r.interval
	if iv <= 0 {
		return nil // never started; header only
	}
	first, last := int64(math.MaxInt64), int64(math.MinInt64)
	for _, s := range series {
		if s.count == 0 {
			continue
		}
		f := int64(s.firstAt)
		l := f + int64(s.count-1)*int64(iv)
		if f < first {
			first = f
		}
		if l > last {
			last = l
		}
	}
	if first > last {
		return nil // no samples anywhere
	}
	row := make([]string, len(series)+1)
	for t := first; t <= last; t += int64(iv) {
		row[0] = strconv.FormatFloat(float64(t)/1e3, 'g', -1, 64)
		for i, s := range series {
			row[i+1] = ""
			if s.count == 0 {
				continue
			}
			idx := (t - int64(s.firstAt)) / int64(iv)
			if idx >= 0 && idx < int64(s.count) {
				row[i+1] = strconv.FormatFloat(clean(s.At(int(idx))), 'g', -1, 64)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field if it contains CSV metacharacters (port
// names contain no commas today, but the format should not silently
// corrupt if one ever does).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
