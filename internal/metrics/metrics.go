// Package metrics is the simulator's unified telemetry layer: a
// Registry of named counters, gauges, and fixed-interval time series
// that any component can register against, sampled by a single ticker
// on the simulation clock and dumped as JSON or CSV.
//
// # Determinism contract
//
// All output is a pure function of (simulation config, seed):
//
//   - Sampling is driven by one ticker scheduled on the simulation
//     engine — never by wall-clock time — so sample instants are
//     virtual times, identical across runs and machines.
//   - Dumps iterate entries in sorted-name order and format numbers
//     with Go's canonical shortest representation, so two runs with
//     the same config and seed produce byte-identical files.
//   - Sampling callbacks must not change simulation behaviour. They
//     may read any component state and maintain their own bookkeeping
//     (e.g. the windowed-utilization reset, the DeltaOf cursor), but
//     must never schedule events or mutate protocol state.
//
// # Cost contract
//
// The hot path is allocation-free: a Counter is one int64 behind
// nil-safe methods (no locks, no map lookups — the engine is
// single-threaded by construction), and CounterFunc/GaugeFunc bindings
// cost nothing until a sample or dump reads them. Series samples land
// in a fixed-capacity ring buffer allocated once at Start; when it
// wraps, the oldest samples are discarded and counted in Dropped.
//
// A nil *Registry is a valid no-op sink: every registration method on
// it returns a nil handle whose methods do nothing, so components wire
// their instrumentation unconditionally and pay (nearly) nothing when
// telemetry is disabled.
package metrics

import (
	"fmt"

	"amrt/internal/sim"
)

// DefaultSeriesCap is the per-series ring capacity when Registry.
// SeriesCap is unset: at the default 100 µs sampling interval it
// retains ~0.8 s of history per series.
const DefaultSeriesCap = 8192

// Registry holds a simulation's telemetry instruments. Create one per
// simulation with NewRegistry, register instruments before Start, and
// dump after the run. Registries are not safe for concurrent use — like
// the engine they observe, they belong to one simulation goroutine.
type Registry struct {
	// SeriesCap bounds the samples retained per series (default
	// DefaultSeriesCap). Set it before Start; the ring is allocated
	// there.
	SeriesCap int

	names      map[string]bool
	counters   []*Counter
	counterFns []namedIntFn
	gauges     []*Gauge
	gaugeFns   []namedFloatFn
	series     []*TimeSeries

	interval sim.Time
	startAt  sim.Time
	started  bool
}

type namedIntFn struct {
	name string
	fn   func() int64
}

type namedFloatFn struct {
	name string
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// claim reserves a unique instrument name, panicking on duplicates
// (programmer error: two components chose the same name).
func (r *Registry) claim(name string) {
	if name == "" {
		panic("metrics: empty instrument name")
	}
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
	}
	r.names[name] = true
}

// Counter registers and returns an owned cumulative counter. On a nil
// registry it returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.claim(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// CounterFunc registers a cumulative counter backed by fn, read at
// sample and dump time — the cheapest way to expose a counter a
// component already maintains. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.claim(name)
	r.counterFns = append(r.counterFns, namedIntFn{name, fn})
}

// Gauge registers and returns an owned instantaneous value. On a nil
// registry it returns nil, which is a valid no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.claim(name)
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers an instantaneous value backed by fn, read at
// dump time. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.claim(name)
	r.gaugeFns = append(r.gaugeFns, namedFloatFn{name, fn})
}

// Counter is a cumulative event count. The nil Counter is valid and
// does nothing, so instrumented code never checks for enablement.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n may be negative to correct an overcount, though
// counters are conventionally monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name ("" on the nil counter).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous value. The nil Gauge is valid and does
// nothing.
type Gauge struct {
	name string
	v    float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the registered name ("" on the nil gauge).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}
