package metrics

import (
	"fmt"

	"amrt/internal/sim"
)

// SampleFunc produces one time-series sample at virtual time now. It
// must not schedule events or mutate simulation state (see the package
// determinism contract); it may maintain private bookkeeping such as a
// delta cursor or a measurement-window reset.
type SampleFunc func(now sim.Time) float64

// TimeSeries is a fixed-interval series of samples in a ring buffer.
// The ticker installed by Registry.Start calls the sample function once
// per interval; when the ring is full the oldest sample is evicted and
// counted in Dropped. The nil TimeSeries is valid and retains nothing.
type TimeSeries struct {
	name   string
	sample SampleFunc

	interval sim.Time
	firstAt  sim.Time // virtual time of buf's oldest retained sample

	buf     []float64
	head    int // index of the oldest sample
	count   int
	dropped int64
}

// Series registers a sampled time series. Register before Start so
// every series shares the full tick timeline (late registration is
// allowed but the series simply starts at the next tick). On a nil
// registry it returns nil, a valid no-op series.
func (r *Registry) Series(name string, sample SampleFunc) *TimeSeries {
	if r == nil {
		return nil
	}
	if sample == nil {
		panic(fmt.Sprintf("metrics: series %q has nil sample func", name))
	}
	r.claim(name)
	s := &TimeSeries{name: name, sample: sample}
	if r.started {
		s.alloc(r)
	}
	r.series = append(r.series, s)
	return s
}

func (s *TimeSeries) alloc(r *Registry) {
	cap := r.SeriesCap
	if cap <= 0 {
		cap = DefaultSeriesCap
	}
	s.buf = make([]float64, cap)
	s.interval = r.interval
}

func (s *TimeSeries) push(now sim.Time, v float64) {
	if s.count == 0 {
		s.firstAt = now
	}
	if s.count < len(s.buf) {
		s.buf[(s.head+s.count)%len(s.buf)] = v
		s.count++
		return
	}
	s.buf[s.head] = v
	s.head = (s.head + 1) % len(s.buf)
	s.dropped++
	s.firstAt += s.interval
}

// Name returns the registered name ("" on the nil series).
func (s *TimeSeries) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Len returns the number of retained samples.
func (s *TimeSeries) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Dropped returns how many old samples the ring evicted.
func (s *TimeSeries) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Interval returns the sampling period (0 before Start).
func (s *TimeSeries) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// FirstAt returns the virtual time of the oldest retained sample.
func (s *TimeSeries) FirstAt() sim.Time {
	if s == nil {
		return 0
	}
	return s.firstAt
}

// Values returns the retained samples oldest-first, as a copy.
func (s *TimeSeries) Values() []float64 {
	if s == nil || s.count == 0 {
		return nil
	}
	out := make([]float64, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.buf[(s.head+i)%len(s.buf)]
	}
	return out
}

// At returns sample i (oldest-first) without copying.
func (s *TimeSeries) At(i int) float64 {
	if s == nil || i < 0 || i >= s.count {
		panic(fmt.Sprintf("metrics: series sample index %d out of range [0,%d)", i, s.Len()))
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Start installs the registry's sampling ticker on eng: one immediate
// tick plus one every interval, each sampling every registered series
// in registration order. The ticker stops rescheduling itself when it
// is the only pending event (so Engine.RunAll terminates) — in a
// single-threaded simulation nothing can wake the network up again
// once the event queue is otherwise empty. Start panics if called
// twice or with a non-positive interval; it is a no-op on a nil
// registry.
func (r *Registry) Start(eng *sim.Engine, interval sim.Time) {
	if r == nil {
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: non-positive sampling interval %v", interval))
	}
	if r.started {
		panic("metrics: Start called twice")
	}
	r.started = true
	r.interval = interval
	r.startAt = eng.Now()
	for _, s := range r.series {
		s.alloc(r)
	}
	var tick func()
	tick = func() {
		now := eng.Now()
		for _, s := range r.series {
			s.push(now, s.sample(now))
		}
		if eng.Pending() == 0 {
			return
		}
		eng.Schedule(interval, tick)
	}
	eng.Schedule(0, tick)
}

// Interval returns the sampling period chosen at Start (0 before).
func (r *Registry) Interval() sim.Time {
	if r == nil {
		return 0
	}
	return r.interval
}

// StartAt returns the virtual time of the first tick.
func (r *Registry) StartAt() sim.Time {
	if r == nil {
		return 0
	}
	return r.startAt
}

// DeltaOf adapts a cumulative int64 source (a counter, a protocol
// field) into a per-interval delta sampler: each sample is the source's
// growth since the previous tick.
func DeltaOf(fn func() int64) SampleFunc {
	var last int64
	return func(sim.Time) float64 {
		v := fn()
		d := v - last
		last = v
		return float64(d)
	}
}

// RatioOf samples the ratio of two cumulative sources' per-interval
// deltas — e.g. packets CE-marked over packets observed gives the
// per-interval mark rate. Intervals where the denominator did not move
// sample as 0.
func RatioOf(num, den func() int64) SampleFunc {
	var lastNum, lastDen int64
	return func(sim.Time) float64 {
		n, d := num(), den()
		dn, dd := n-lastNum, d-lastDen
		lastNum, lastDen = n, d
		if dd <= 0 {
			return 0
		}
		return float64(dn) / float64(dd)
	}
}
