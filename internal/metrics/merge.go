package metrics

import (
	"fmt"

	"amrt/internal/sim"
)

// lateSub is the per-engine late-band sub-key StartUntil's ticker
// schedules under: observer slot 1 of the sim.SubObserver partition.
// Other late-band observers on the same engine (the experiment runner's
// watchdog and auditor ticks) must use different sub-keys so
// (time, sub) pairs stay unique; the fault layer's end-of-instant
// actions order below sim.SubObserver, so a sampler tick coinciding
// with a fault event always sees the post-fault state.
const lateSub = sim.SubObserver | 1

// StartUntil installs a bounded sampling ticker on eng: one tick at the
// current time plus one every interval, up to and including the last
// tick at or before until. Unlike Start, the tick count is a pure
// function of (start, interval, until) — it does not depend on when the
// event queue happens to drain — and the ticks run in the engine's late
// band, after every same-instant arrival, signal, and protocol event.
// Both properties make the sampled output independent of how the
// simulation is partitioned across engine shards, which is why sharded
// runs require a finite horizon. Panics if called twice or with a
// non-positive interval; no-op on a nil registry.
func (r *Registry) StartUntil(eng *sim.Engine, interval, until sim.Time) {
	if r == nil {
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: non-positive sampling interval %v", interval))
	}
	if r.started {
		panic("metrics: Start called twice")
	}
	r.started = true
	r.interval = interval
	r.startAt = eng.Now()
	for _, s := range r.series {
		s.alloc(r)
	}
	var tick func()
	tick = func() {
		now := eng.Now()
		for _, s := range r.series {
			s.push(now, s.sample(now))
		}
		if now+interval <= until {
			eng.ScheduleLate(now+interval, lateSub, tick)
		}
	}
	if r.startAt <= until {
		eng.ScheduleLate(r.startAt, lateSub, tick)
	}
}

// Merged combines per-shard registries into one equivalent to what a
// single-shard run would have produced, for dumping. Instruments are
// grouped by name across the parts:
//
//   - counters and counter funcs sum (shards register the same names
//     for partitioned totals like net.delivered; the sum is the global
//     value);
//   - gauges and gauge funcs sum likewise;
//   - a series registered in exactly one part is adopted as-is (per-port
//     series — a port lives on one shard);
//   - a series registered in several parts is summed pointwise, which
//     requires the parts to share the tick timeline (same interval,
//     first-sample time, and length — guaranteed when every part was
//     started with StartUntil over the same span). Mismatched timelines
//     panic.
//
// Dumps iterate in sorted-name order, so the merged output does not
// depend on the order shards registered or are passed in. The merged
// registry is read-only in spirit: registering new instruments or
// starting a ticker on it is a programmer error.
func Merged(parts ...*Registry) *Registry {
	m := NewRegistry()
	m.started = true
	for _, p := range parts {
		if p != nil {
			m.interval = p.interval
			m.startAt = p.startAt
			break
		}
	}

	counterIdx := map[string]int{}
	gaugeIdx := map[string]int{}
	type sgroup struct {
		name  string
		parts []*TimeSeries
	}
	seriesIdx := map[string]int{}
	var sgroups []*sgroup

	addCounter := func(name string, fn func() int64) {
		if i, ok := counterIdx[name]; ok {
			prev := m.counterFns[i].fn
			m.counterFns[i].fn = func() int64 { return prev() + fn() }
			return
		}
		counterIdx[name] = len(m.counterFns)
		m.names[name] = true
		m.counterFns = append(m.counterFns, namedIntFn{name, fn})
	}
	addGauge := func(name string, fn func() float64) {
		if i, ok := gaugeIdx[name]; ok {
			prev := m.gaugeFns[i].fn
			m.gaugeFns[i].fn = func() float64 { return prev() + fn() }
			return
		}
		gaugeIdx[name] = len(m.gaugeFns)
		m.names[name] = true
		m.gaugeFns = append(m.gaugeFns, namedFloatFn{name, fn})
	}

	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, c := range p.counters {
			c := c
			addCounter(c.name, c.Value)
		}
		for _, f := range p.counterFns {
			addCounter(f.name, f.fn)
		}
		for _, g := range p.gauges {
			g := g
			addGauge(g.name, g.Value)
		}
		for _, f := range p.gaugeFns {
			addGauge(f.name, f.fn)
		}
		for _, s := range p.series {
			i, ok := seriesIdx[s.name]
			if !ok {
				i = len(sgroups)
				seriesIdx[s.name] = i
				sgroups = append(sgroups, &sgroup{name: s.name})
			}
			sgroups[i].parts = append(sgroups[i].parts, s)
		}
	}

	for _, g := range sgroups {
		m.names[g.name] = true
		if len(g.parts) == 1 {
			m.series = append(m.series, g.parts[0])
			continue
		}
		m.series = append(m.series, sumSeries(g.name, g.parts))
	}
	return m
}

// sumSeries materializes the pointwise sum of same-named per-shard
// series sharing one tick timeline.
func sumSeries(name string, parts []*TimeSeries) *TimeSeries {
	ref := parts[0]
	for _, p := range parts[1:] {
		if p.interval != ref.interval || p.firstAt != ref.firstAt || p.count != ref.count || p.dropped != ref.dropped {
			panic(fmt.Sprintf(
				"metrics: cannot merge series %q: tick timelines differ (interval %v/%v first %v/%v count %d/%d dropped %d/%d)",
				name, ref.interval, p.interval, ref.firstAt, p.firstAt, ref.count, p.count, ref.dropped, p.dropped))
		}
	}
	out := &TimeSeries{
		name:     name,
		sample:   func(sim.Time) float64 { return 0 },
		interval: ref.interval,
		firstAt:  ref.firstAt,
		buf:      make([]float64, ref.count),
		count:    ref.count,
		dropped:  ref.dropped,
	}
	for i := 0; i < ref.count; i++ {
		var v float64
		for _, p := range parts {
			v += p.At(i)
		}
		out.buf[i] = v
	}
	return out
}
