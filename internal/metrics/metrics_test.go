package metrics

import (
	"bytes"
	"strings"
	"testing"

	"amrt/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatalf("nil counter not inert: %d %q", c.Value(), c.Name())
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge not inert: %v", g.Value())
	}
	s := r.Series("z", func(sim.Time) float64 { return 1 })
	if s.Len() != 0 || s.Values() != nil {
		t.Fatalf("nil series not inert")
	}
	r.CounterFunc("cf", func() int64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	r.Start(sim.NewEngine(), sim.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), SchemaVersion) {
		t.Fatalf("nil dump missing schema tag: %s", buf.String())
	}
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("nil WriteCSV: %v", err)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	var backing int64 = 7
	r.CounterFunc("ext", func() int64 { return backing })
	g := r.Gauge("depth")
	g.Set(2.5)
	d := r.snapshot()
	if len(d.Counters) != 2 || d.Counters[0].Name != "ext" || d.Counters[0].Value != 7 ||
		d.Counters[1].Name != "pkts" || d.Counters[1].Value != 10 {
		t.Fatalf("counters dump wrong: %+v", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 2.5 {
		t.Fatalf("gauges dump wrong: %+v", d.Gauges)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Series("x", func(sim.Time) float64 { return 0 })
}

func TestSamplerTicksOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	var v float64
	s := r.Series("v", func(now sim.Time) float64 { return v })
	// Simulation activity: bump v at 50µs intervals for 1ms.
	for i := 1; i <= 20; i++ {
		i := i
		eng.Schedule(sim.Time(i)*50*sim.Microsecond, func() { v = float64(i) })
	}
	r.Start(eng, 100*sim.Microsecond)
	eng.RunAll()

	// Ticks at 0, 100µs, ..., up to the last tick with events pending.
	if s.Len() < 10 {
		t.Fatalf("too few samples: %d", s.Len())
	}
	vals := s.Values()
	if vals[0] != 0 {
		t.Fatalf("first sample %v, want 0 (tick at t=0)", vals[0])
	}
	// Sample i is taken at t=i*100µs, after the same-time bump (FIFO:
	// the bump at t was scheduled before the ticker's t event).
	if vals[1] != 2 || vals[5] != 10 {
		t.Fatalf("samples misaligned: %v", vals)
	}
	if s.Interval() != 100*sim.Microsecond {
		t.Fatalf("interval %v", s.Interval())
	}
}

func TestSamplerTerminatesRunAll(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.Series("x", func(sim.Time) float64 { return 1 })
	eng.Schedule(sim.Millisecond, func() {})
	r.Start(eng, 100*sim.Microsecond)
	end := eng.RunAll() // must not spin forever
	if end < sim.Millisecond {
		t.Fatalf("ended at %v before last event", end)
	}
}

func TestRingEviction(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.SeriesCap = 4
	var n float64
	s := r.Series("n", func(sim.Time) float64 { n++; return n })
	// Keep the engine busy for 10 ticks.
	for i := 1; i <= 10; i++ {
		eng.Schedule(sim.Time(i)*sim.Microsecond, func() {})
	}
	r.Start(eng, sim.Microsecond)
	eng.RunAll()

	if s.Len() != 4 {
		t.Fatalf("retained %d, want 4", s.Len())
	}
	if s.Dropped() == 0 {
		t.Fatal("expected evictions")
	}
	vals := s.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1]+1 {
			t.Fatalf("ring order broken: %v", vals)
		}
	}
	wantFirst := sim.Time(s.Dropped()) * sim.Microsecond
	if s.FirstAt() != wantFirst {
		t.Fatalf("FirstAt %v, want %v", s.FirstAt(), wantFirst)
	}
}

func TestDeltaAndRatio(t *testing.T) {
	var a, b int64
	d := DeltaOf(func() int64 { return a })
	rt := RatioOf(func() int64 { return a }, func() int64 { return b })
	a, b = 10, 20
	if got := d(0); got != 10 {
		t.Fatalf("delta %v, want 10", got)
	}
	if got := rt(0); got != 0.5 {
		t.Fatalf("ratio %v, want 0.5", got)
	}
	a += 5 // b unchanged: denominator idle
	if got := d(0); got != 5 {
		t.Fatalf("delta %v, want 5", got)
	}
	if got := rt(0); got != 0 {
		t.Fatalf("idle-denominator ratio %v, want 0", got)
	}
}

// run builds a small deterministic simulation with telemetry and
// returns its JSON and CSV dumps.
func run(t *testing.T) (string, string) {
	t.Helper()
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("events")
	var depth int64
	r.GaugeFunc("depth", func() float64 { return float64(depth) })
	r.Series("depth_series", func(sim.Time) float64 { return float64(depth) })
	r.Series("event_rate", DeltaOf(c.Value))
	rng := sim.NewRNG(42)
	for i := 0; i < 200; i++ {
		at := sim.Time(rng.Int63n(int64(sim.Millisecond)))
		eng.Schedule(at, func() { c.Inc(); depth = int64(eng.Pending()) })
	}
	r.Start(eng, 37*sim.Microsecond)
	eng.RunAll()
	var j, cs bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	return j.String(), cs.String()
}

func TestDumpByteIdenticalAcrossRuns(t *testing.T) {
	j1, c1 := run(t)
	j2, c2 := run(t)
	if j1 != j2 {
		t.Fatalf("JSON dumps differ:\n%s\n---\n%s", j1, j2)
	}
	if c1 != c2 {
		t.Fatalf("CSV dumps differ")
	}
	if !strings.Contains(j1, `"schema": "amrt-metrics/v1"`) {
		t.Fatalf("schema tag missing:\n%s", j1[:200])
	}
	lines := strings.Split(strings.TrimSpace(c1), "\n")
	if lines[0] != "t_us,depth_series,event_rate" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("CSV too short: %d lines", len(lines))
	}
}
