// Package phost implements the pHost baseline (Gao et al., CoNEXT 2015)
// at the fidelity the paper's comparison depends on: receivers pace
// per-packet tokens at their downlink rate, assign them to the active
// flow with the shortest remaining processing time (SRPT), let new flows
// send one RTT of data unscheduled ("free tokens"), and stop serving a
// source that does not respond to tokens for 3×RTT.
package phost

import (
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes pHost.
type Config struct {
	transport.Config

	// QueueCap is the switch data-queue cap in packets. pHost's own
	// evaluation keeps per-port buffers tiny (tens of KB) — its
	// design assumes a congestion-free core and keeps switch queues
	// tiny. A large buffer here would let blind-start backlogs give
	// pHost an elasticity its token clock does not actually provide.
	QueueCap int
	// TimeoutRTTs is the unresponsive-sender timeout in RTTs (paper
	// default 3).
	TimeoutRTTs int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{QueueCap: 12, TimeoutRTTs: 3}
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 12
	}
	if c.TimeoutRTTs == 0 {
		c.TimeoutRTTs = 3
	}
	return c
}

// SwitchQueue builds pHost's switch buffer: control packets bypass data
// in a strict-priority queue with a shared drop-tail cap for data.
func (c Config) SwitchQueue() netsim.Queue {
	cap := c.QueueCap
	if cap == 0 {
		cap = 12
	}
	return netsim.NewPriority(256, cap, cap)
}

// HostQueue builds the host NIC queue.
func (c Config) HostQueue() netsim.Queue { return netsim.NewPriority(1024) }

// Protocol is a pHost instance.
type Protocol struct {
	transport.Kernel
	cfg       Config
	receivers map[netsim.FlowID]*rcvFlow
	pacers    map[netsim.NodeID]*pacerState
	installed map[netsim.NodeID]bool

	// TokensSent counts tokens issued; TokensExpired counts per-token
	// timeouts (a proxy for wasted downlink allocation).
	TokensSent    int64
	TokensExpired int64
	// RTSReannounces counts sender-side RTS re-sends (armAnnounce).
	RTSReannounces int64
}

type rcvFlow struct {
	f       *transport.Flow
	rcvd    *transport.Bitmap
	pending map[int32]sim.Timer // tokened (or unscheduled), awaiting arrival
	// lastArrival and tokensSinceArrival drive the unresponsive-source
	// test: a flow is skipped by the token scheduler only when several
	// tokens have gone unanswered for TimeoutRTTs×RTT — mere silence is
	// not evidence if the receiver itself stopped serving the flow
	// (SRPT starvation must not blacklist the victim).
	lastArrival        sim.Time
	tokensSinceArrival int
}

// unresponsiveEvidence is how many unanswered tokens it takes before a
// silent source is considered unresponsive.
const unresponsiveEvidence = 4

// silent reports whether the source has ignored enough tokens for the
// unresponsive timeout.
func (r *rcvFlow) silent(now, timeout sim.Time) bool {
	return r.tokensSinceArrival >= unresponsiveEvidence && now-r.lastArrival >= timeout
}

// remaining is the SRPT metric: bytes not yet received.
func (r *rcvFlow) remaining(mss int) int64 {
	return int64(r.f.NPkts-r.rcvd.Count()) * int64(mss)
}

type pacerState struct {
	host  *netsim.Host
	pacer *transport.Pacer
	flows []*rcvFlow
	// credits implement the arrival clocking the paper ascribes to
	// receiver-driven transports: one token may be issued per data
	// arrival (or per expired token, so losses are eventually retried),
	// never faster than the downlink packet rate. SRPT decides which
	// flow the credit goes to, which is how a newly arrived short flow
	// preempts a long one at a shared receiver.
	credits int
}

// New creates a pHost instance on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	p := &Protocol{
		Kernel:    transport.NewKernel(net, cfg.Config),
		cfg:       cfg.withDefaults(),
		receivers: make(map[netsim.FlowID]*rcvFlow),
		pacers:    make(map[netsim.NodeID]*pacerState),
		installed: make(map[netsim.NodeID]bool),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("phost.tokens_sent", func() int64 { return p.TokensSent })
		m.CounterFunc("phost.tokens_expired", func() int64 { return p.TokensExpired })
		m.CounterFunc("phost.rts_reannounces", func() int64 { return p.RTSReannounces })
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "pHost" }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. The
// sharded runner instead splits registration across instances with
// AddPending/Release on the source shard and Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow that announces itself (RTS) but
// never sends data.
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start (the home shard writes
// f.Start when it handles the release signal).
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
	p.armAnnounce(f, 3*p.Cfg.RTT)
	if f.Unresponsive {
		return
	}
	// Free tokens: the first RTT of data goes out unscheduled.
	blind := p.BlindPkts(f)
	for seq := int32(0); seq < blind; seq++ {
		f.Src.Send(p.NewData(f, seq, netsim.PrioData))
	}
	p.UnsolicitedPkts += int64(blind)
}

// GrantAuthority returns the data packets authorized so far: the free
// (unscheduled) allowance plus one per token. The audit grant-budget
// invariant is DataPacketsSent ≤ GrantAuthority.
func (p *Protocol) GrantAuthority() int64 {
	return p.UnsolicitedPkts + p.TokensSent
}

// OnHostCrash drops the protocol state this instance owns for flows
// touching the crashed host. Crashed senders kill their outgoing flows
// (pHost senders are stateless but the application buffer is gone); a
// crashed receiver loses its bitmap, pending-token timers, and banked
// credits — the flow survives and is rebuilt by the sender's RTS
// re-announce. On a sharded run the hook fires on every shard; each
// instance handles only the flow halves its shard owns.
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	for _, f := range p.OrderedFlows() {
		switch h {
		case f.Src:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
				p.Abort(f)
			}
			if p.OwnsSender(f) && !f.SenderDone {
				// The flow can never finish; stop the announce chain.
				f.SenderDone = true
			}
		case f.Dst:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
			}
			if p.OwnsSender(f) && f.SenderStarted && !f.SenderDone {
				// Clear the sender-side flag so re-announcement resumes.
				f.SenderHeard = false
				p.armAnnounce(f, 3*p.Cfg.RTT)
			}
		}
	}
	if ps := p.pacers[h.ID()]; ps != nil {
		ps.credits = 0 // banked arrival credits die with the host
	}
}

// OnHostRestart is a no-op for pHost: surviving flows towards the host
// are re-announced by the sender-side armAnnounce chain.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

// dropRcvState forgets flow f's receiver state (pending timers
// cancelled, pacer list pruned). No-op if no state exists.
func (p *Protocol) dropRcvState(f *transport.Flow) {
	r := p.receivers[f.ID]
	if r == nil {
		return
	}
	p.removeFlow(r)
	delete(p.receivers, f.ID)
}

// armAnnounce re-sends the flow's RTS with exponential backoff (3×RTT
// initial, 64×RTT cap) until receiver state exists. If the RTS and the
// whole free-token window are lost, the receiver never learns of the
// flow — its token scheduler, expiry timers and probe all hang off
// rcvFlow state that was never created — so the sender must keep
// announcing. Self-cancels once the receiver materializes or the flow
// completes. The stop condition reads only sender-shard flags
// (SenderHeard: a token reached the sender; SenderDone: the completion
// signal arrived) so it never peeks at receiver-shard state.
func (p *Protocol) armAnnounce(f *transport.Flow, interval sim.Time) {
	p.Engine().Schedule(interval, func() {
		if f.SenderHeard || f.SenderDone {
			return
		}
		f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
		p.RTSReannounces++
		next := interval * 2
		if max := 64 * p.Cfg.RTT; next > max {
			next = max
		}
		p.armAnnounce(f, next)
	})
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Token {
		return
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Unresponsive {
		return
	}
	// Every token names its sequence; retransmissions look identical.
	f.Src.Send(p.NewData(f, pkt.Seq, netsim.PrioData))
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.RTS:
		p.rcvFor(pkt)
	case netsim.Data:
		r := p.rcvFor(pkt)
		if r == nil || r.f.Done {
			return
		}
		if tm, ok := r.pending[pkt.Seq]; ok {
			tm.Cancel()
			delete(r.pending, pkt.Seq)
		}
		r.lastArrival = p.Now()
		r.tokensSinceArrival = 0
		if !r.rcvd.Set(pkt.Seq) {
			return
		}
		p.DeliverData(r.f, pkt)
		ps := p.pacerOf(r.f.Dst)
		ps.addCredit(maxBankedCredits)
		if r.rcvd.Full() {
			p.Complete(r.f)
			p.removeFlow(r)
			return
		}
		ps.pacer.Kick()
	}
}

// maxBankedCredits bounds how many arrival credits a receiver may store
// while no flow is tokenable (e.g. during a blacklist window). A large
// bank would discharge as a near-line-rate burst when flows become
// eligible again — with several synchronized receivers that oscillates
// into congestion collapse rather than pHost's intended steady pacing.
const maxBankedCredits = 8

// addCredit banks one token credit, capped so idle periods cannot store
// an unbounded burst.
func (ps *pacerState) addCredit(cap int) {
	if ps.credits < cap {
		ps.credits++
	}
}

func (p *Protocol) rcvFor(pkt *netsim.Packet) *rcvFlow {
	if r, ok := p.receivers[pkt.Flow]; ok {
		return r
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Done {
		return nil // unknown, completed, or crash-killed flow
	}
	r := &rcvFlow{f: f, rcvd: transport.NewBitmap(f.NPkts), pending: make(map[int32]sim.Timer), lastArrival: p.Now()}
	p.receivers[pkt.Flow] = r
	// Announce confirmation (see core/amrt.receiverFor): stop the
	// sender's re-announce timer without waiting for the first token.
	f2 := f
	p.Shard().Signal(f.Dst, f.Src, func() { f2.SenderHeard = true })
	// The unscheduled first window is in flight: treat it as tokened so
	// the pacer does not double-issue, with the usual expiry.
	blind := p.BlindPkts(f)
	for seq := int32(0); seq < blind; seq++ {
		p.trackPending(r, seq)
	}
	ps := p.pacerOf(f.Dst)
	ps.flows = append(ps.flows, r)
	ps.pacer.Kick()
	return r
}

func (p *Protocol) pacerOf(h *netsim.Host) *pacerState {
	if ps, ok := p.pacers[h.ID()]; ok {
		return ps
	}
	ps := &pacerState{host: h}
	tick := h.LinkRate().TxTime(p.Cfg.MSS)
	ps.pacer = transport.NewPacer(p.Engine(), tick, func() bool { return p.emitToken(ps) })
	p.pacers[h.ID()] = ps
	return ps
}

// emitToken sends one token to the SRPT-best eligible flow, consuming
// one arrival credit.
func (p *Protocol) emitToken(ps *pacerState) bool {
	if ps.credits <= 0 {
		return false
	}
	now := p.Now()
	timeout := sim.Time(p.cfg.TimeoutRTTs) * p.Cfg.RTT
	var best *rcvFlow
	var bestSeq int32
	for _, r := range ps.flows {
		if r.f.Done || r.silent(now, timeout) {
			continue
		}
		seq := p.nextTokenable(r)
		if seq < 0 {
			continue
		}
		if best == nil || r.remaining(p.Cfg.MSS) < best.remaining(p.Cfg.MSS) {
			best, bestSeq = r, seq
		}
	}
	if best == nil {
		return false
	}
	ps.credits--
	tok := p.NewCtrl(netsim.Token, best.f, bestSeq, true)
	best.f.Dst.Send(tok)
	p.TokensSent++
	p.trackPending(best, bestSeq)
	return true
}

// nextTokenable returns the first sequence neither received nor awaiting
// arrival, or -1.
func (p *Protocol) nextTokenable(r *rcvFlow) int32 {
	for seq := r.rcvd.NextClear(0); seq >= 0; seq = r.rcvd.NextClear(seq + 1) {
		if _, inflight := r.pending[seq]; !inflight {
			return seq
		}
	}
	return -1
}

// trackPending arms the per-token expiry: if the packet does not arrive
// within TimeoutRTTs×RTT the source is deemed unresponsive and the flow
// is blacklisted for the same period (the token becomes reissuable after
// that).
func (p *Protocol) trackPending(r *rcvFlow, seq int32) {
	timeout := sim.Time(p.cfg.TimeoutRTTs) * p.Cfg.RTT
	r.tokensSinceArrival++
	r.pending[seq] = p.Engine().Schedule(timeout, func() {
		delete(r.pending, seq)
		p.TokensExpired++
		if r.f.Done {
			return
		}
		// The hole rejoins the tokenable pool and will be repaired by
		// the regular arrival-clocked token stream (replacing, not
		// adding to, new-sequence tokens — pHost's pacer bounds total
		// token rate). A fully stalled flow is kept alive by a probe.
		ps := p.pacerOf(r.f.Dst)
		if len(r.pending) == 0 {
			p.probe(ps, r)
		}
		ps.pacer.Kick()
	})
}

// probe restarts a completely stalled flow (its whole in-flight set
// expired, so no arrivals will mint credits and the silence test bars it
// from regular tokens): one direct token per timeout period, the
// slow-retry behaviour of a paced receiver toward a silent source.
func (p *Protocol) probe(ps *pacerState, r *rcvFlow) {
	if r.f.Done || len(r.pending) > 0 {
		return
	}
	if seq := p.nextTokenable(r); seq >= 0 {
		tok := p.NewCtrl(netsim.Token, r.f, seq, true)
		r.f.Dst.Send(tok)
		p.TokensSent++
		p.trackPending(r, seq)
	}
}

func (p *Protocol) removeFlow(r *rcvFlow) {
	for _, tm := range r.pending {
		tm.Cancel()
	}
	ps := p.pacerOf(r.f.Dst)
	flows := ps.flows[:0]
	for _, x := range ps.flows {
		if x != r {
			flows = append(flows, x)
		}
	}
	ps.flows = flows
	ps.pacer.Kick()
}
