package phost

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

func newFan(pairs int) (*topo.Scenario, *Protocol, *stats.FCTCollector) {
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, pairs)
	col := stats.NewFCTCollector()
	cfg.Collector = col
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	return s, p, col
}

func TestSingleFlowCompletes(t *testing.T) {
	s, p, col := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if col.Count() != 1 {
		t.Fatal("collector missed the flow")
	}
	if fct := f.FCT(); fct < 800*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Errorf("FCT = %v, want ~0.9-2ms", fct)
	}
	if s.Net.Dropped() != 0 {
		t.Errorf("%d drops on an uncontended path", s.Net.Dropped())
	}
}

func TestTokenPerPacket(t *testing.T) {
	s, p, _ := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// One token per packet beyond the free (blind) window.
	want := int64(f.NPkts) - int64(p.BlindPkts(f))
	if p.TokensSent != want {
		t.Errorf("TokensSent = %d, want %d", p.TokensSent, want)
	}
	if p.TokensExpired != 0 {
		t.Errorf("TokensExpired = %d on a clean path", p.TokensExpired)
	}
}

func TestConservativeNoRampFromSmallWindow(t *testing.T) {
	// The defining contrast with AMRT: a flow whose clock was seeded
	// with a tiny window stays at that rate — arrival-clocked tokens
	// never exceed one per arrival, so the window cannot grow.
	cfg := DefaultConfig()
	cfg.BlindWindow = 8
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, 1)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// 1334 packets at 8 per ~100µs RTT ≈ 16.7ms. AMRT does this in
	// ~1.2ms (see core tests); pHost must NOT.
	if fct := f.FCT(); fct < 12*sim.Millisecond {
		t.Errorf("FCT = %v: pHost unexpectedly grabbed spare bandwidth", fct)
	}
}

func TestSRPTPreemptsAtSharedReceiver(t *testing.T) {
	// Fig. 11(a): a short flow to the same receiver takes the whole
	// link; the long flow resumes after it completes.
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, 2)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	long := p.AddFlow(1, s.Senders[0], s.Receivers[0], 20_000_000, 0)
	short := p.AddFlow(2, s.Senders[1], s.Receivers[0], 2_000_000, 2*sim.Millisecond)
	s.Net.Run(sim.Second)
	if !short.Done || !long.Done {
		t.Fatal("flows did not complete")
	}
	// The short flow gets the receiver's full attention: its FCT should
	// be close to its solo time (~1.7ms incl. blind start), far below
	// fair-share time (~3.4ms).
	if fct := short.FCT(); fct > 4*sim.Millisecond {
		t.Errorf("short flow FCT = %v: SRPT did not preempt", fct)
	}
	if long.End < short.End {
		t.Error("long flow should finish after the short one")
	}
}

func TestUnresponsiveSenderBlacklisted(t *testing.T) {
	// An announced-but-silent flow wastes the receiver's tokens only
	// until the 3×RTT timeout blacklists it; a live flow to the same
	// receiver must still complete quickly.
	s, p, _ := newFan(2)
	dead := p.AddUnresponsiveFlow(1, s.Senders[0], s.Receivers[0], 10_000, 0)
	live := p.AddFlow(2, s.Senders[1], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(200 * sim.Millisecond)
	if dead.Done {
		t.Error("unresponsive flow cannot complete")
	}
	if !live.Done {
		t.Fatal("live flow starved by unresponsive sender")
	}
	if p.TokensExpired == 0 {
		t.Error("expected expired tokens for the unresponsive sender")
	}
	if fct := live.FCT(); fct > 10*sim.Millisecond {
		t.Errorf("live flow FCT = %v", fct)
	}
}

func TestLossRecoveryViaExpiry(t *testing.T) {
	// Incast losses at the 128-packet buffer must be recovered (slowly)
	// through token expiry.
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, 8)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	var flows []*transport.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 500_000, 0))
	}
	s.Net.Run(5 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete under incast", f)
		}
	}
	if s.Net.Dropped() == 0 {
		t.Error("expected incast drops")
	}
}

func TestArrivalClockedNoStandingAggression(t *testing.T) {
	// Four flows to four different receivers share the bottleneck; with
	// arrival clocking the token rate can never exceed the aggregate
	// arrival rate, so after the blind-start transient the switch queue
	// should not keep refilling (bounded drops).
	s, p, _ := newFan(4)
	for i := 0; i < 4; i++ {
		p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 4_000_000, 0)
	}
	s.Net.Run(sim.Second)
	// Drops come from the blind-start overload plus expiry-driven
	// retries bouncing off the standing queue it leaves behind — but
	// never from token emission outpacing arrivals, which would be
	// tens of thousands of drops on 4MB flows.
	if s.Net.Dropped() > 4000 {
		t.Errorf("drops = %d, token clock is outpacing arrivals", s.Net.Dropped())
	}
	for id, f := range p.Flows {
		if !f.Done {
			t.Errorf("flow %d did not complete", id)
		}
	}
}

func TestTokenPacingRespectsDownlinkRate(t *testing.T) {
	// Tokens from one receiver may never be emitted faster than one per
	// MSS serialization time. Jitter is disabled so arrival spacing at
	// the sender equals emission spacing (64-byte control packets can
	// reorder under jitter, which would corrupt the measurement).
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Jitter = 0
	s := topo.NewFanN(sc, 1)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 3_000_000, 0)
	var arrivals []sim.Time
	orig := s.Senders[0].Handler
	s.Senders[0].Handler = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Token {
			arrivals = append(arrivals, s.Net.Engine.Now())
		}
		orig(pkt)
	}
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if len(arrivals) < 100 {
		t.Fatalf("only %d tokens observed", len(arrivals))
	}
	minSpacing := sim.Forever
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d < minSpacing {
			minSpacing = d
		}
	}
	// Pace is exactly 1200ns at 10G with jitter off.
	if minSpacing < 1200*sim.Nanosecond {
		t.Errorf("tokens spaced %v apart: pacer violated", minSpacing)
	}
}

func TestPHostDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, uint64) {
		s, p, _ := newFan(3)
		var last *transport.Flow
		for i := 0; i < 3; i++ {
			last = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 2_000_000, sim.Time(i)*30*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return last.End, p.TokensSent, s.Net.Engine.Executed
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Error("pHost run not deterministic")
	}
}
