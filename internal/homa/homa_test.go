package homa

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

func newFan(pairs, degree int) (*topo.Scenario, *Protocol) {
	cfg := DefaultConfig()
	cfg.Degree = degree
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, pairs)
	cfg.RTT = 100 * sim.Microsecond
	cfg.Collector = stats.NewFCTCollector()
	return s, New(s.Net, cfg)
}

func TestSingleFlowCompletes(t *testing.T) {
	s, p := newFan(1, 2)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if fct := f.FCT(); fct < 800*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Errorf("FCT = %v, want ~0.9-2ms", fct)
	}
	if s.Net.Dropped() != 0 {
		t.Errorf("%d drops on an uncontended path", s.Net.Dropped())
	}
}

func TestUnscheduledWindowHighPriority(t *testing.T) {
	s, p := newFan(1, 2)
	var prios []uint8
	p.Cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
		prios = append(prios, pkt.Prio)
	}
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	s.Net.Run(sim.Second)
	blind := int(p.BlindPkts(f))
	if len(prios) != int(f.NPkts) {
		t.Fatalf("delivered %d packets", len(prios))
	}
	for i, prio := range prios {
		want := netsim.PrioData
		if i < blind {
			want = netsim.PrioHigh
		}
		if prio != want {
			t.Fatalf("packet %d priority %d, want %d", i, prio, want)
			break
		}
	}
}

func TestOvercommitDegreeLimitsGrantedSenders(t *testing.T) {
	// Three long flows into one receiver with Degree=2: while all are
	// active only the two shortest-remaining are granted; the third
	// must wait, so its completion trails well behind.
	s, p := newFan(3, 2)
	f1 := p.AddFlow(1, s.Senders[0], s.Receivers[0], 3_000_000, 0)
	f2 := p.AddFlow(2, s.Senders[1], s.Receivers[0], 4_000_000, 0)
	f3 := p.AddFlow(3, s.Senders[2], s.Receivers[0], 5_000_000, 0)
	s.Net.Run(sim.Second)
	if !f1.Done || !f2.Done || !f3.Done {
		t.Fatal("flows did not complete")
	}
	if !(f1.End <= f2.End && f2.End <= f3.End) {
		t.Errorf("SRPT order violated: %v %v %v", f1.End, f2.End, f3.End)
	}
	// 12MB total through one 10G downlink ≈ 9.6ms minimum; the link
	// should stay busy (overcommitment's selling point).
	if f3.End > 13*sim.Millisecond {
		t.Errorf("last flow at %v, link under-used", f3.End)
	}
}

func TestUnresponsiveSenderPinsGrantSlot(t *testing.T) {
	// Degree=1: a silent short flow holds the only slot and the live
	// flow starves after its unscheduled window (§8.2's failure mode).
	s, p := newFan(2, 1)
	p.AddUnresponsiveFlow(1, s.Senders[0], s.Receivers[0], 100_000, 0)
	live := p.AddFlow(2, s.Senders[1], s.Receivers[0], 5_000_000, 0)
	s.Net.Run(50 * sim.Millisecond)
	if live.Done {
		t.Error("live flow should starve behind the pinned slot at degree 1")
	}

	// Degree=2 resolves it.
	s2, p2 := newFan(2, 2)
	p2.AddUnresponsiveFlow(1, s2.Senders[0], s2.Receivers[0], 100_000, 0)
	live2 := p2.AddFlow(2, s2.Senders[1], s2.Receivers[0], 5_000_000, 0)
	s2.Net.Run(50 * sim.Millisecond)
	if !live2.Done {
		t.Fatal("live flow should complete at degree 2")
	}
	if fct := live2.FCT(); fct > 6*sim.Millisecond {
		t.Errorf("live flow FCT = %v", fct)
	}
}

func TestHigherDegreeBuildsDeeperQueues(t *testing.T) {
	// Fig. 14(b)'s mechanism: more overcommitment, more buffer use.
	depth := func(degree int) int {
		s, p := newFan(6, degree)
		// Grant bursts from degree simultaneous senders pile up at the
		// shared bottleneck feeding the receiver's leaf.
		mon := netsim.Attach(s.Bottlenecks[0])
		for i := 0; i < 6; i++ {
			p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 2_000_000, sim.Time(i)*3*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return mon.MaxQueueLen
	}
	d2, d6 := depth(2), depth(6)
	if d6 <= d2 {
		t.Errorf("queue depth should grow with overcommitment: degree2=%d degree6=%d", d2, d6)
	}
}

func TestConservativeNoRampFromSmallWindow(t *testing.T) {
	// Like pHost: granted window slides with arrivals (BDP cap), so a
	// flow clocked at a small window on an idle link ramps only as the
	// granted window allows — it reaches BDP immediately via the grant
	// target, so Homa DOES recover on a single flow. Verify the grant
	// target behaviour instead: granted never exceeds rcvd + BDP.
	s, p := newFan(1, 2)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if p.GrantedPkts > int64(f.NPkts) {
		t.Errorf("granted %d packets for a %d-packet flow", p.GrantedPkts, f.NPkts)
	}
}

func TestGrantAccountingInvariant(t *testing.T) {
	// Total packets authorized (blind + granted) never exceeds NPkts,
	// and every grant respects the BDP outstanding window at issue time.
	s, p := newFan(2, 2)
	var grants []netsim.Packet   // copies: delivered packets are recycled after the handler
	s.Receivers[0].Handler = nil // replaced below by install; capture at sender instead
	f1 := p.AddFlow(1, s.Senders[0], s.Receivers[0], 3_000_000, 0)
	f2 := p.AddFlow(2, s.Senders[1], s.Receivers[0], 2_000_000, 0)
	// Intercept grants arriving at sender 0's host.
	orig := s.Senders[0].Handler
	s.Senders[0].Handler = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Grant && pkt.Seq < 0 {
			grants = append(grants, *pkt)
		}
		orig(pkt)
	}
	s.Net.Run(sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not complete")
	}
	var granted int64
	for _, g := range grants {
		if g.Count <= 0 {
			t.Errorf("grant with non-positive count %d", g.Count)
		}
		granted += int64(g.Count)
	}
	blind := int64(p.BlindPkts(f1))
	if granted+blind < int64(f1.NPkts) {
		t.Errorf("flow 1 authorized %d+%d < %d packets", granted, blind, f1.NPkts)
	}
	// No over-granting beyond the flow (recovery reissues excluded above).
	if granted > int64(f1.NPkts) {
		t.Errorf("flow 1 over-granted: %d window grants for %d packets", granted, f1.NPkts)
	}
}

func TestHomaDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, uint64) {
		s, p := newFan(3, 2)
		var last *transport.Flow
		for i := 0; i < 3; i++ {
			last = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i%2], 2_000_000, sim.Time(i)*40*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return last.End, p.GrantsSent, s.Net.Engine.Executed
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Error("Homa run not deterministic")
	}
}

func TestDegreeAccessor(t *testing.T) {
	_, p := newFan(1, 5)
	if p.Degree() != 5 {
		t.Errorf("Degree() = %d", p.Degree())
	}
	if p.Name() != "Homa" {
		t.Errorf("Name() = %q", p.Name())
	}
}
