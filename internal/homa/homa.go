// Package homa implements the Homa baseline (Montazeri et al., SIGCOMM
// 2018) at the fidelity the paper's comparison depends on: the first
// bandwidth-delay product of a message is sent unscheduled at high
// priority, and receivers grant the remainder to the top-SRPT messages,
// overcommitting to up to Degree senders simultaneously with one BDP of
// granted-but-undelivered data each.
package homa

import (
	"sort"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes Homa.
type Config struct {
	transport.Config

	// Degree is the overcommitment level: how many senders one receiver
	// grants simultaneously (Fig. 14 sweeps 2–8).
	Degree int
	// QueueCap is the switch buffer in packets per data priority level
	// (default 128).
	QueueCap int
	// TimeoutRTTs is the resend timer in RTTs (default 3).
	TimeoutRTTs int
}

// DefaultConfig returns Homa with overcommitment degree 2.
func DefaultConfig() Config {
	return Config{Degree: 2, QueueCap: 128, TimeoutRTTs: 3}
}

func (c Config) withDefaults() Config {
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.QueueCap == 0 {
		c.QueueCap = 128
	}
	if c.TimeoutRTTs == 0 {
		c.TimeoutRTTs = 3
	}
	return c
}

// SwitchQueue builds Homa's switch buffer: control above unscheduled
// above scheduled, data levels sharing the configured cap.
func (c Config) SwitchQueue() netsim.Queue {
	cap := c.QueueCap
	if cap == 0 {
		cap = 128
	}
	return netsim.NewPriority(256, cap, cap)
}

// HostQueue builds the host NIC queue.
func (c Config) HostQueue() netsim.Queue { return netsim.NewPriority(1024) }

// Protocol is a Homa instance.
type Protocol struct {
	transport.Kernel
	cfg       Config
	senders   map[netsim.FlowID]*sender
	receivers map[netsim.FlowID]*rcvFlow
	byHost    map[netsim.NodeID][]*rcvFlow
	installed map[netsim.NodeID]bool

	// GrantsSent counts grant packets; GrantedPkts counts packets
	// authorized by them.
	GrantsSent  int64
	GrantedPkts int64
	// ResendGrants counts per-sequence resend requests issued by the
	// timeout path, each authorizing one retransmission.
	ResendGrants int64
	// RTSReannounces counts sender-side RTS re-sends (armAnnounce).
	RTSReannounces int64
}

type sender struct {
	f    *transport.Flow
	next int32
}

type rcvFlow struct {
	f            *transport.Flow
	rcvd         *transport.Bitmap
	granted      int32 // packets authorized (incl. unscheduled window)
	lastProgress sim.Time
	timer        sim.Timer
	// backoff doubles the resend-check interval while a flow makes no
	// progress (up to 64×RTT), so a permanently silent sender costs a
	// trickle of events instead of a per-RTT scan forever.
	backoff sim.Time
}

func (r *rcvFlow) remaining() int32 { return r.f.NPkts - r.rcvd.Count() }

// New creates a Homa instance on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	p := &Protocol{
		Kernel:    transport.NewKernel(net, cfg.Config),
		cfg:       cfg.withDefaults(),
		senders:   make(map[netsim.FlowID]*sender),
		receivers: make(map[netsim.FlowID]*rcvFlow),
		byHost:    make(map[netsim.NodeID][]*rcvFlow),
		installed: make(map[netsim.NodeID]bool),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("homa.grants_sent", func() int64 { return p.GrantsSent })
		m.CounterFunc("homa.granted_pkts", func() int64 { return p.GrantedPkts })
		m.CounterFunc("homa.resend_grants", func() int64 { return p.ResendGrants })
		m.CounterFunc("homa.rts_reannounces", func() int64 { return p.RTSReannounces })
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "Homa" }

// Degree returns the configured overcommitment level.
func (p *Protocol) Degree() int { return p.cfg.Degree }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. The
// sharded runner instead splits registration across instances with
// AddPending/Release on the source shard and Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow that announces itself but never
// sends data; with overcommitment it pins one of the receiver's grant
// slots until the flow would complete.
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start (the home shard writes
// f.Start when it handles the release signal).
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	s := &sender{f: f}
	p.senders[f.ID] = s
	f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
	p.armAnnounce(f, 3*p.Cfg.RTT)
	if f.Unresponsive {
		return
	}
	// Unscheduled window at high priority.
	blind := p.BlindPkts(f)
	for ; s.next < blind; s.next++ {
		pkt := p.NewData(f, s.next, netsim.PrioHigh)
		f.Src.Send(pkt)
	}
	p.UnsolicitedPkts += int64(blind)
}

// GrantAuthority returns the data packets authorized so far: the
// unscheduled allowance plus window-granted packets plus one per
// resend request. The audit grant-budget invariant is
// DataPacketsSent ≤ GrantAuthority.
func (p *Protocol) GrantAuthority() int64 {
	return p.UnsolicitedPkts + p.GrantedPkts + p.ResendGrants
}

// OnHostCrash drops the protocol state this instance owns for flows
// touching the crashed host. A crashed sender kills its outgoing flows
// and frees their grant slots; a crashed receiver loses bitmaps and
// grant windows — those flows survive and are rebuilt by the sender's
// RTS re-announce after restart. On a sharded run the hook fires on
// every shard; each instance handles only the flow halves its shard
// owns (the regrant of freed slots is receiver-side work, so it runs
// on the dead sender's peers' home shards).
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	var regrantDsts []*netsim.Host
	for _, f := range p.OrderedFlows() {
		switch h {
		case f.Src:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
				p.Abort(f)
				regrantDsts = append(regrantDsts, f.Dst)
			}
			if p.OwnsSender(f) && !f.SenderDone {
				delete(p.senders, f.ID)
				// The flow can never finish; stop the announce chain.
				f.SenderDone = true
			}
		case f.Dst:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
			}
			if p.OwnsSender(f) && f.SenderStarted && !f.SenderDone {
				// Clear the sender-side flag so re-announcement resumes.
				f.SenderHeard = false
				p.armAnnounce(f, 3*p.Cfg.RTT)
			}
		}
	}
	// Hand the freed overcommitment slots to surviving messages.
	for _, dst := range regrantDsts {
		p.regrant(dst)
	}
}

// OnHostRestart is a no-op for Homa: surviving flows towards the host
// are re-announced by the sender-side armAnnounce chain.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

// dropRcvState forgets flow f's receiver state (timer cancelled,
// per-host scheduler list pruned). No-op if no state exists.
func (p *Protocol) dropRcvState(f *transport.Flow) {
	r := p.receivers[f.ID]
	if r == nil {
		return
	}
	r.timer.Cancel()
	delete(p.receivers, f.ID)
	flows := p.byHost[f.Dst.ID()]
	keep := flows[:0]
	for _, x := range flows {
		if x != r {
			keep = append(keep, x)
		}
	}
	p.byHost[f.Dst.ID()] = keep
}

// armAnnounce re-sends the flow's RTS with exponential backoff (3×RTT
// initial, 64×RTT cap) until receiver state exists. If the RTS and the
// whole unscheduled window are lost, no rcvFlow is ever created, so the
// resend timer that would repair the loss never arms; the sender must
// keep announcing. Self-cancels once a grant reaches the sender
// (SenderHeard — the receiver's timeout machinery then owns recovery)
// or the completion signal does (SenderDone); both flags are
// sender-shard state.
func (p *Protocol) armAnnounce(f *transport.Flow, interval sim.Time) {
	p.Engine().Schedule(interval, func() {
		if f.SenderHeard || f.SenderDone {
			return
		}
		f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
		p.RTSReannounces++
		next := interval * 2
		if max := 64 * p.Cfg.RTT; next > max {
			next = max
		}
		p.armAnnounce(f, next)
	})
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Grant {
		return
	}
	s := p.senders[pkt.Flow]
	if s == nil || s.f.Unresponsive {
		return
	}
	if pkt.Seq >= 0 {
		// Resend request for a specific packet (scheduled priority).
		s.f.Src.Send(p.NewData(s.f, pkt.Seq, netsim.PrioData))
		if pkt.Seq >= s.next {
			s.next = pkt.Seq + 1
		}
		return
	}
	// Window grant: Count packets, sent as a burst at scheduled priority.
	for i := int16(0); i < pkt.Count && s.next < s.f.NPkts; i++ {
		s.f.Src.Send(p.NewData(s.f, s.next, netsim.PrioData))
		s.next++
	}
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.RTS:
		if r := p.rcvFor(pkt); r != nil {
			p.regrant(r.f.Dst)
		}
	case netsim.Data:
		r := p.rcvFor(pkt)
		if r == nil || r.f.Done {
			return
		}
		if !r.rcvd.Set(pkt.Seq) {
			return
		}
		r.lastProgress = p.Now()
		p.DeliverData(r.f, pkt)
		if r.rcvd.Full() {
			p.finish(r)
			return
		}
		p.regrant(r.f.Dst)
	}
}

func (p *Protocol) rcvFor(pkt *netsim.Packet) *rcvFlow {
	if r, ok := p.receivers[pkt.Flow]; ok {
		return r
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Done {
		return nil // unknown, completed, or crash-killed flow
	}
	r := &rcvFlow{
		f: f, rcvd: transport.NewBitmap(f.NPkts),
		granted: p.BlindPkts(f), lastProgress: p.Now(),
	}
	p.receivers[pkt.Flow] = r
	p.byHost[f.Dst.ID()] = append(p.byHost[f.Dst.ID()], r)
	// Announce confirmation (see core/amrt.receiverFor): stop the
	// sender's re-announce timer without waiting for the first grant.
	f2 := f
	p.Shard().Signal(f.Dst, f.Src, func() { f2.SenderHeard = true })
	p.armTimeout(r)
	return r
}

// regrant runs the overcommitment scheduler for one receiving host: the
// Degree messages with the least remaining bytes each keep one BDP of
// granted-but-undelivered data.
func (p *Protocol) regrant(dst *netsim.Host) {
	flows := p.byHost[dst.ID()]
	active := flows[:0:0]
	for _, r := range flows {
		if !r.f.Done {
			active = append(active, r)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if a, b := active[i].remaining(), active[j].remaining(); a != b {
			return a < b
		}
		return active[i].f.ID < active[j].f.ID
	})
	bdp := int32(p.BDPPkts(dst.LinkRate()))
	for i := 0; i < len(active) && i < p.cfg.Degree; i++ {
		r := active[i]
		target := r.rcvd.Count() + bdp
		if target > r.f.NPkts {
			target = r.f.NPkts
		}
		if n := target - r.granted; n > 0 {
			g := p.NewCtrl(netsim.Grant, r.f, -1, true)
			g.Count = int16(n)
			r.granted = target
			p.GrantsSent++
			p.GrantedPkts += int64(n)
			dst.Send(g)
		}
	}
}

func (p *Protocol) armTimeout(r *rcvFlow) {
	interval := p.Cfg.RTT
	if r.backoff > interval {
		interval = r.backoff
	}
	r.timer = p.Engine().Schedule(interval, func() { p.onTimeout(r) })
}

func (p *Protocol) onTimeout(r *rcvFlow) {
	if r.f.Done {
		return
	}
	resend := sim.Time(p.cfg.TimeoutRTTs) * p.Cfg.RTT
	if p.Now()-r.lastProgress >= resend {
		cap := p.BDPPkts(r.f.Dst.LinkRate())
		issued := 0
		for seq := r.rcvd.NextClear(0); seq >= 0 && seq < r.granted && issued < cap; seq = r.rcvd.NextClear(seq + 1) {
			g := p.NewCtrl(netsim.Grant, r.f, seq, true)
			r.f.Dst.Send(g)
			p.ResendGrants++
			issued++
		}
		// Freshly regrant in case slots opened up.
		p.regrant(r.f.Dst)
		// No answer since the last check: back off (reset on progress).
		if r.backoff < 64*p.Cfg.RTT {
			if r.backoff == 0 {
				r.backoff = p.Cfg.RTT
			}
			r.backoff *= 2
		}
	} else {
		r.backoff = 0
	}
	p.armTimeout(r)
}

func (p *Protocol) finish(r *rcvFlow) {
	r.timer.Cancel()
	p.Complete(r.f)
	// Drop from the per-host list and hand the slot to the next message.
	flows := p.byHost[r.f.Dst.ID()]
	keep := flows[:0]
	for _, x := range flows {
		if x != r {
			keep = append(keep, x)
		}
	}
	p.byHost[r.f.Dst.ID()] = keep
	p.regrant(r.f.Dst)
}
