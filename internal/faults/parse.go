package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"amrt/internal/sim"
)

// Parse builds a Plan from a compact textual spec. The grammar is a
// `;`-separated list of clauses, each a comma-separated key=value list
// whose first key selects the fault class:
//
//	link=NAME,down=DUR,up=DUR[,period=DUR]   flap a link (both directions)
//	degrade=NAME,at=DUR,until=DUR,factor=F   cap a link at F× nominal rate
//	crash=HOST,at=DUR,up=DUR                 crash a host, restart at up
//	reboot=SWITCH,at=DUR,up=DUR              reboot a switch (queues flushed)
//	rehash=DUR                               rotate the ECMP hash salt at DUR
//	ctrl-loss=P                              drop control packets with prob P
//	data-loss=P                              drop data packets with prob P
//	burst-loss=tobad:P,togood:P,bad:P[,good:P]  Gilbert–Elliott bursty loss
//	seed=N                                   pin the plan's random seed
//
// Durations use Go syntax ("5ms", "150us"); probabilities are floats in
// [0,1). Whitespace around clauses and pairs is ignored. The empty
// string parses to an empty plan. Two link clauses naming the same link
// (in either direction) are rejected, as are degrade clauses whose
// windows overlap on one link — a spec that silently last-wins would
// hide typos in chaos campaigns. See docs/FAULTS.md for the fault
// models and worked examples.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, rest, _ := strings.Cut(clause, ",")
		k, v, ok := strings.Cut(strings.TrimSpace(key), "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q: want key=value", clause)
		}
		var err error
		switch k {
		case "link":
			err = parseFlap(p, v, rest)
		case "degrade":
			err = parseDegrade(p, v, rest)
		case "crash":
			err = parseCrash(p, v, rest)
		case "reboot":
			err = parseReboot(p, v, rest)
		case "rehash":
			err = parseRehash(p, v, rest)
		case "ctrl-loss":
			p.CtrlLoss, err = parseProb(k, v)
		case "data-loss":
			p.DataLoss, err = parseProb(k, v)
		case "burst-loss":
			err = parseBurst(p, clause)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			err = fmt.Errorf("faults: unknown fault class %q (want link, degrade, crash, reboot, rehash, ctrl-loss, data-loss, burst-loss, or seed)", k)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustParse is Parse for tests and hard-coded specs; it panics on error.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseFlap(p *Plan, link, rest string) error {
	if link == "" {
		return fmt.Errorf("faults: link clause: empty link name")
	}
	for _, prev := range p.Flaps {
		if sameLink(prev.Link, link) {
			return fmt.Errorf("faults: duplicate link clause for %q (already flapped as %q; one clause per link — use period= for repeated flaps)", link, prev.Link)
		}
	}
	f := LinkFlap{Link: link, DownAt: -1, UpAt: -1}
	err := eachPair(rest, func(k, v string) error {
		var e error
		switch k {
		case "down":
			f.DownAt, e = parseDur(k, v)
		case "up":
			f.UpAt, e = parseDur(k, v)
		case "period":
			f.Period, e = parseDur(k, v)
		default:
			e = fmt.Errorf("faults: link clause: unknown key %q (want down, up, period)", k)
		}
		return e
	})
	if err != nil {
		return err
	}
	if f.DownAt < 0 || f.UpAt < 0 {
		return fmt.Errorf("faults: link %s: both down= and up= times are required", link)
	}
	if f.UpAt <= f.DownAt {
		return fmt.Errorf("faults: link %s: up=%v must be after down=%v", link, f.UpAt, f.DownAt)
	}
	if f.Period > 0 && f.Period <= f.UpAt-f.DownAt {
		return fmt.Errorf("faults: link %s: period=%v must exceed the down window %v", link, f.Period, f.UpAt-f.DownAt)
	}
	p.Flaps = append(p.Flaps, f)
	return nil
}

func parseDegrade(p *Plan, link, rest string) error {
	if link == "" {
		return fmt.Errorf("faults: degrade clause: empty link name")
	}
	d := Degrade{Link: link, At: -1, Until: -1}
	err := eachPair(rest, func(k, v string) error {
		var e error
		switch k {
		case "at":
			d.At, e = parseDur(k, v)
		case "until":
			d.Until, e = parseDur(k, v)
		case "factor":
			d.Factor, e = strconv.ParseFloat(v, 64)
		default:
			e = fmt.Errorf("faults: degrade clause: unknown key %q (want at, until, factor)", k)
		}
		return e
	})
	if err != nil {
		return err
	}
	if d.At < 0 || d.Until < 0 || d.Factor == 0 {
		return fmt.Errorf("faults: degrade %s: at=, until= and factor= are all required", link)
	}
	if d.Factor <= 0 || d.Factor >= 1 {
		return fmt.Errorf("faults: degrade %s: factor=%v outside (0,1)", link, d.Factor)
	}
	if d.Until <= d.At {
		return fmt.Errorf("faults: degrade %s: until=%v must be after at=%v", link, d.Until, d.At)
	}
	for _, prev := range p.Degrades {
		if sameLink(prev.Link, link) && d.At < prev.Until && prev.At < d.Until {
			return fmt.Errorf("faults: degrade windows overlap on link %q: [%v,%v) and [%v,%v) (windows on one link must be disjoint)",
				link, prev.At, prev.Until, d.At, d.Until)
		}
	}
	p.Degrades = append(p.Degrades, d)
	return nil
}

// sameLink reports whether two link names address the same full-duplex
// link: equal, or one the reverse direction of the other.
func sameLink(a, b string) bool {
	return a == b || reverseName(a) == b
}

func parseCrash(p *Plan, node, rest string) error {
	at, up, err := parseAtUp("crash", node, rest)
	if err != nil {
		return err
	}
	for _, prev := range p.Crashes {
		if prev.Node == node {
			return fmt.Errorf("faults: duplicate crash clause for host %q (one clause per host)", node)
		}
	}
	p.Crashes = append(p.Crashes, NodeCrash{Node: node, At: at, Up: up})
	return nil
}

func parseReboot(p *Plan, node, rest string) error {
	at, up, err := parseAtUp("reboot", node, rest)
	if err != nil {
		return err
	}
	for _, prev := range p.Reboots {
		if prev.Node == node {
			return fmt.Errorf("faults: duplicate reboot clause for switch %q (one clause per switch)", node)
		}
	}
	p.Reboots = append(p.Reboots, SwitchReboot{Node: node, At: at, Up: up})
	return nil
}

// parseAtUp parses the shared "NODE,at=DUR,up=DUR" tail of crash and
// reboot clauses.
func parseAtUp(class, node, rest string) (at, up sim.Time, err error) {
	if node == "" {
		return 0, 0, fmt.Errorf("faults: %s clause: empty node name", class)
	}
	at, up = -1, -1
	err = eachPair(rest, func(k, v string) error {
		var e error
		switch k {
		case "at":
			at, e = parseDur(k, v)
		case "up":
			up, e = parseDur(k, v)
		default:
			e = fmt.Errorf("faults: %s clause: unknown key %q (want at, up)", class, k)
		}
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	if at < 0 || up < 0 {
		return 0, 0, fmt.Errorf("faults: %s %s: both at= and up= times are required", class, node)
	}
	if up <= at {
		return 0, 0, fmt.Errorf("faults: %s %s: up=%v must be after at=%v", class, node, up, at)
	}
	return at, up, nil
}

func parseRehash(p *Plan, val, rest string) error {
	if strings.TrimSpace(rest) != "" {
		return fmt.Errorf("faults: rehash clause takes a single time, e.g. rehash=25ms")
	}
	at, err := parseDur("rehash", val)
	if err != nil {
		return err
	}
	p.Rehashes = append(p.Rehashes, Rehash{At: at})
	return nil
}

// parseBurst parses "burst-loss=tobad:P,togood:P,bad:P[,good:P]". The
// clause uses ':' inside pairs because '=' introduces the clause itself.
func parseBurst(p *Plan, clause string) error {
	_, body, _ := strings.Cut(clause, "=")
	b := &BurstLoss{}
	seen := map[string]bool{}
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return fmt.Errorf("faults: burst-loss: pair %q: want key:value", pair)
		}
		f, err := parseProb("burst-loss "+k, v)
		if err != nil {
			return err
		}
		switch k {
		case "tobad":
			b.ToBad = f
		case "togood":
			b.ToGood = f
		case "bad":
			b.LossBad = f
		case "good":
			b.LossGood = f
		default:
			return fmt.Errorf("faults: burst-loss: unknown key %q (want tobad, togood, bad, good)", k)
		}
		seen[k] = true
	}
	if !seen["tobad"] || !seen["togood"] || !seen["bad"] {
		return fmt.Errorf("faults: burst-loss: tobad:, togood: and bad: are all required")
	}
	if b.ToGood <= 0 {
		return fmt.Errorf("faults: burst-loss: togood must be positive or the bad state never ends")
	}
	p.Burst = b
	return nil
}

func eachPair(rest string, fn func(k, v string) error) error {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("faults: pair %q: want key=value", pair)
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

func parseDur(key, val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("faults: %s=%q: %v", key, val, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("faults: %s=%q: negative duration", key, val)
	}
	return sim.FromDuration(d), nil
}

func parseProb(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s=%q: %v", key, val, err)
	}
	if f < 0 || f >= 1 {
		return 0, fmt.Errorf("faults: %s=%q: probability outside [0,1)", key, val)
	}
	return f, nil
}
