package faults

import (
	"testing"
)

// FuzzParse hammers the fault-spec grammar with arbitrary input. The
// contract under test: Parse never panics — every malformed spec comes
// back as an error — and an accepted spec is stable, parsing to the
// same plan shape on a second pass (the sweep cache hashes the raw
// spec string, so acceptance must be a pure function of the bytes).
func FuzzParse(f *testing.F) {
	// Seed corpus: every clause class from docs/FAULTS.md, the
	// documented composites, plus edge shapes that exercise the
	// separators.
	for _, seed := range []string{
		"",
		"link=leaf0->spine1,down=5ms,up=8ms",
		"link=swA->swB,down=500us,up=3ms,period=5ms",
		"degrade=leaf1->spine1,at=1ms,until=6ms,factor=0.2",
		"ctrl-loss=0.01",
		"data-loss=0.005",
		"burst-loss=tobad:0.005,togood:0.25,bad:0.5",
		"burst-loss=tobad:0.003,togood:0.2,bad:0.5,good:0.001",
		"crash=h0.1,at=2ms,up=6ms",
		"reboot=leaf1,at=4ms,up=7ms",
		"rehash=9ms",
		"link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01",
		"crash=h0.0,at=1ms,up=4ms;reboot=leaf1,at=2ms,up=5ms;rehash=3ms;ctrl-loss=0.005",
		";;",
		"link=",
		"rehash=",
		"meteor=1",
		"link=a->b,down=1ms,up=2ms;link=a->b,down=3ms,up=4ms",
		"ctrl-loss=0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p1, err := Parse(spec)
		if err != nil {
			if p1 != nil {
				t.Fatalf("Parse(%q) returned a plan alongside error %v", spec, err)
			}
			return
		}
		if p1 == nil {
			t.Fatalf("Parse(%q) returned nil plan and nil error", spec)
		}
		p2, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) accepted once, rejected on re-parse: %v", spec, err)
		}
		if len(p1.Flaps) != len(p2.Flaps) || len(p1.Degrades) != len(p2.Degrades) ||
			len(p1.Crashes) != len(p2.Crashes) || len(p1.Reboots) != len(p2.Reboots) ||
			len(p1.Rehashes) != len(p2.Rehashes) ||
			p1.CtrlLoss != p2.CtrlLoss || p1.DataLoss != p2.DataLoss ||
			(p1.Burst == nil) != (p2.Burst == nil) {
			t.Fatalf("Parse(%q) is not stable across passes", spec)
		}
		// A plan that parsed as empty must be inert: applying it to no
		// network is the documented no-op (zero-probability losses like
		// "ctrl-loss=0" legally parse to an empty plan).
		if p1.Empty() && p1.WrapQueues(nil) != nil {
			t.Fatalf("Parse(%q): empty plan still wraps queues", spec)
		}
	})
}
