package faults

import (
	"strings"
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

func TestParseFullSpec(t *testing.T) {
	spec := "link=leaf0->spine1,down=5ms,up=8ms,period=20ms; " +
		"degrade=swA->swB,at=1ms,until=2ms,factor=0.25; " +
		"ctrl-loss=0.01; data-loss=0.02; " +
		"burst-loss=tobad:0.005,togood:0.25,bad:0.5,good:0.001; seed=42"
	p := MustParse(spec)
	if len(p.Flaps) != 1 {
		t.Fatalf("flaps = %d, want 1", len(p.Flaps))
	}
	f := p.Flaps[0]
	if f.Link != "leaf0->spine1" || f.DownAt != 5*sim.Millisecond ||
		f.UpAt != 8*sim.Millisecond || f.Period != 20*sim.Millisecond {
		t.Errorf("flap = %+v", f)
	}
	if len(p.Degrades) != 1 {
		t.Fatalf("degrades = %d, want 1", len(p.Degrades))
	}
	d := p.Degrades[0]
	if d.Link != "swA->swB" || d.At != sim.Millisecond || d.Until != 2*sim.Millisecond || d.Factor != 0.25 {
		t.Errorf("degrade = %+v", d)
	}
	if p.CtrlLoss != 0.01 || p.DataLoss != 0.02 {
		t.Errorf("loss = %v/%v", p.CtrlLoss, p.DataLoss)
	}
	if p.Burst == nil || *p.Burst != (BurstLoss{ToBad: 0.005, ToGood: 0.25, LossBad: 0.5, LossGood: 0.001}) {
		t.Errorf("burst = %+v", p.Burst)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	if p.Empty() {
		t.Error("full plan reported Empty")
	}
}

func TestParseNodeFaultRoundTrip(t *testing.T) {
	spec := "crash=h0.3,at=10ms,up=12ms; reboot=leaf1,at=5ms,up=6ms; rehash=25ms; rehash=50ms"
	p := MustParse(spec)
	if len(p.Crashes) != 1 || p.Crashes[0] != (NodeCrash{Node: "h0.3", At: 10 * sim.Millisecond, Up: 12 * sim.Millisecond}) {
		t.Errorf("crashes = %+v", p.Crashes)
	}
	if len(p.Reboots) != 1 || p.Reboots[0] != (SwitchReboot{Node: "leaf1", At: 5 * sim.Millisecond, Up: 6 * sim.Millisecond}) {
		t.Errorf("reboots = %+v", p.Reboots)
	}
	if len(p.Rehashes) != 2 || p.Rehashes[0].At != 25*sim.Millisecond || p.Rehashes[1].At != 50*sim.Millisecond {
		t.Errorf("rehashes = %+v", p.Rehashes)
	}
	if p.Empty() {
		t.Error("node-fault plan reported Empty")
	}
}

func TestParseRejectsDuplicatesAndOverlaps(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"link=a->b,down=1ms,up=2ms;link=a->b,down=5ms,up=6ms", "duplicate link clause"},
		{"link=a->b,down=1ms,up=2ms;link=b->a,down=5ms,up=6ms", "duplicate link clause"},
		{"degrade=a->b,at=1ms,until=3ms,factor=0.5;degrade=a->b,at=2ms,until=4ms,factor=0.25", "windows overlap"},
		{"degrade=a->b,at=1ms,until=3ms,factor=0.5;degrade=b->a,at=0ms,until=2ms,factor=0.25", "windows overlap"},
		{"crash=h3,at=1ms,up=2ms;crash=h3,at=5ms,up=6ms", "duplicate crash clause"},
		{"reboot=leaf1,at=1ms,up=2ms;reboot=leaf1,at=5ms,up=6ms", "duplicate reboot clause"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want substring %q", c.spec, err, c.want)
		}
	}
	// Disjoint degrade windows on one link and flaps on distinct links
	// stay legal.
	for _, spec := range []string{
		"degrade=a->b,at=1ms,until=2ms,factor=0.5;degrade=a->b,at=2ms,until=3ms,factor=0.25",
		"link=a->b,down=1ms,up=2ms;link=a->c,down=1ms,up=2ms",
		"crash=h3,at=1ms,up=2ms;crash=h4,at=1ms,up=2ms",
		"reboot=leaf1,at=1ms,up=2ms;reboot=spine1,at=1ms,up=2ms",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q) = %v, want nil", spec, err)
		}
	}
}

func TestParseEmptyAndEmptyPlan(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Errorf("Parse(%q) not empty: %+v", spec, p)
		}
	}
	if !(*Plan)(nil).Empty() {
		t.Error("nil plan must be Empty")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"bogus=1", "unknown fault class"},
		{"link=a->b,down=5ms", "both down= and up="},
		{"link=a->b,down=5ms,up=3ms", "must be after"},
		{"link=a->b,down=1ms,up=3ms,period=2ms", "must exceed the down window"},
		{"link=a->b,down=1ms,up=3ms,frequency=2ms", "unknown key"},
		{"link=,down=1ms,up=3ms", "empty link name"},
		{"link=a->b,down=junk,up=3ms", "down="},
		{"ctrl-loss=1.5", "outside"},
		{"ctrl-loss=-0.1", "outside"},
		{"data-loss=x", "data-loss"},
		{"degrade=a->b,at=1ms,factor=0.5", "all required"},
		{"degrade=a->b,at=1ms,until=2ms,factor=1.5", "outside (0,1)"},
		{"degrade=a->b,at=2ms,until=1ms,factor=0.5", "must be after"},
		{"burst-loss=tobad:0.01", "all required"},
		{"burst-loss=tobad:0.01,togood:0,bad:0.5", "togood must be positive"},
		{"burst-loss=tobad:0.01,togood:0.2,bad:0.5,worse:0.5", "unknown key"},
		{"burst-loss=tobad", "want key:value"},
		{"seed=notanint", "invalid syntax"},
		{"crash=,at=1ms,up=2ms", "empty node name"},
		{"crash=h3,at=1ms", "both at= and up="},
		{"crash=h3,at=2ms,up=1ms", "must be after"},
		{"crash=h3,at=1ms,up=2ms,boom=3ms", "unknown key"},
		{"reboot=leaf1,up=2ms", "both at= and up="},
		{"rehash=notadur", "rehash"},
		{"rehash=1ms,at=2ms", "single time"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want substring %q", c.spec, err, c.want)
		}
	}
}

// flapNet is host A — switch S — host B; port names are "A->S", "S->A",
// "S->B", "B->S".
func flapNet(t *testing.T) (*netsim.Network, *netsim.Host, *netsim.Host, *netsim.Switch) {
	t.Helper()
	n := netsim.New()
	a := n.NewHost("A")
	b := n.NewHost("B")
	sw := n.NewSwitch("S")
	q := func() netsim.Queue { return netsim.NewDropTail(1024) }
	n.Connect(a, sw, 10*sim.Gbps, sim.Microsecond, q(), q())
	n.Connect(b, sw, 10*sim.Gbps, sim.Microsecond, q(), q())
	sw.AddRoute(a.ID(), sw.Ports()[0])
	sw.AddRoute(b.ID(), sw.Ports()[1])
	return n, a, b, sw
}

func TestApplyUnknownLink(t *testing.T) {
	n, _, _, _ := flapNet(t)
	p := MustParse("link=S->Z,down=1ms,up=2ms")
	err := p.Apply(n, sim.Second)
	if err == nil || !strings.Contains(err.Error(), `unknown link "S->Z"`) {
		t.Fatalf("Apply = %v, want unknown link error", err)
	}
}

func TestApplyPeriodicFlapCounts(t *testing.T) {
	n, _, _, sw := flapNet(t)
	// down at 1ms for 1ms, every 3ms, over a 10ms horizon:
	// cycles start at 1,4,7,10ms → 4 down events, 4 up events.
	p := MustParse("link=S->B,down=1ms,up=2ms,period=3ms")
	if err := p.Apply(n, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.Run(12 * sim.Millisecond)
	if p.LinkDownEvents != 4 || p.LinkUpEvents != 4 {
		t.Errorf("events = %d down / %d up, want 4/4", p.LinkDownEvents, p.LinkUpEvents)
	}
	if sw.Ports()[1].AdminDown() {
		t.Error("port still down after the last up event")
	}
}

func TestApplyResolvesReverseDirection(t *testing.T) {
	n, _, b, sw := flapNet(t)
	// Naming the host-side direction must also take the switch-side
	// reverse port down: a cable failure kills both directions.
	p := MustParse("link=B->S,down=0ms,up=1ms")
	if err := p.Apply(n, sim.Second); err != nil {
		t.Fatal(err)
	}
	n.Run(sim.Microsecond)
	if !b.NIC().AdminDown() {
		t.Error("named direction B->S not down")
	}
	if !sw.Ports()[1].AdminDown() {
		t.Error("reverse direction S->B not down")
	}
	n.Run(2 * sim.Millisecond)
	if b.NIC().AdminDown() || sw.Ports()[1].AdminDown() {
		t.Error("link did not come back up")
	}
}

func TestApplyDegradeWindow(t *testing.T) {
	n, _, _, sw := flapNet(t)
	p := MustParse("degrade=S->B,at=1ms,until=2ms,factor=0.1")
	if err := p.Apply(n, sim.Second); err != nil {
		t.Fatal(err)
	}
	egress := sw.Ports()[1]
	nominal := egress.EffectiveRate()
	n.Run(1500 * sim.Microsecond)
	if got, want := egress.EffectiveRate(), sim.Rate(float64(nominal)*0.1); got != want {
		t.Errorf("degraded rate = %v, want %v", got, want)
	}
	n.Run(3 * sim.Millisecond)
	if egress.EffectiveRate() != nominal {
		t.Errorf("rate not restored: %v != %v", egress.EffectiveRate(), nominal)
	}
	if p.DegradeEvents != 1 {
		t.Errorf("DegradeEvents = %d, want 1", p.DegradeEvents)
	}
}

func TestApplyPeriodicFlapCycleCap(t *testing.T) {
	n, _, _, _ := flapNet(t)
	p := MustParse("link=S->B,down=0ms,up=1us,period=2us")
	err := p.Apply(n, sim.Forever)
	if err == nil || !strings.Contains(err.Error(), "flap cycles") {
		t.Fatalf("Apply = %v, want flap-cycle cap error", err)
	}
}

func TestApplyCrashParksLinkAndFiresHooks(t *testing.T) {
	n, _, b, sw := flapNet(t)
	p := MustParse("crash=B,at=1ms,up=2ms")
	var crashed, restarted []string
	p.CrashHook = func(_ *netsim.Shard, h *netsim.Host) { crashed = append(crashed, h.Name()) }
	p.RestartHook = func(_ *netsim.Shard, h *netsim.Host) { restarted = append(restarted, h.Name()) }
	if err := p.Apply(n, sim.Second); err != nil {
		t.Fatal(err)
	}
	n.Run(1500 * sim.Microsecond)
	if !b.NIC().AdminDown() || !sw.Ports()[1].AdminDown() {
		t.Error("crashed host's access link not parked in both directions")
	}
	if len(crashed) != 1 || crashed[0] != "B" {
		t.Errorf("CrashHook calls = %v, want [B]", crashed)
	}
	n.Run(3 * sim.Millisecond)
	if b.NIC().AdminDown() || sw.Ports()[1].AdminDown() {
		t.Error("access link still parked after restart")
	}
	if len(restarted) != 1 || restarted[0] != "B" {
		t.Errorf("RestartHook calls = %v, want [B]", restarted)
	}
	if p.CrashEvents != 1 {
		t.Errorf("CrashEvents = %d, want 1", p.CrashEvents)
	}
}

func TestApplyCrashFlushesNICQueue(t *testing.T) {
	n, a, b, _ := flapNet(t)
	// Park A's NIC manually, pile packets into it, then crash A: the
	// parked packets must be flushed and counted as drops.
	a.NIC().SetAdminDown(true)
	for i := 0; i < 5; i++ {
		pkt := netsim.NewPacket()
		pkt.Type, pkt.Size, pkt.Src, pkt.Dst = netsim.Data, netsim.MSS, a.ID(), b.ID()
		a.Send(pkt)
	}
	if a.NIC().Queue().Len() != 5 {
		t.Fatalf("parked NIC queue = %d, want 5", a.NIC().Queue().Len())
	}
	p := MustParse("crash=A,at=1ms,up=2ms")
	if err := p.Apply(n, sim.Second); err != nil {
		t.Fatal(err)
	}
	n.Run(1500 * sim.Microsecond)
	if got := a.NIC().Queue().Len(); got != 0 {
		t.Errorf("NIC queue after crash = %d, want 0", got)
	}
	if a.NIC().Flushed != 5 {
		t.Errorf("Flushed = %d, want 5", a.NIC().Flushed)
	}
	if n.Dropped() != 5 {
		t.Errorf("network Dropped = %d, want 5", n.Dropped())
	}
}

func TestApplyRebootFlushesAndParksSwitch(t *testing.T) {
	n, _, _, sw := flapNet(t)
	p := MustParse("reboot=S,at=1ms,up=2ms")
	if err := p.Apply(n, sim.Second); err != nil {
		t.Fatal(err)
	}
	n.Run(1500 * sim.Microsecond)
	for _, pt := range sw.Ports() {
		if !pt.AdminDown() {
			t.Errorf("port %s not parked during reboot", pt.Name())
		}
	}
	n.Run(3 * sim.Millisecond)
	for _, pt := range sw.Ports() {
		if pt.AdminDown() {
			t.Errorf("port %s still parked after reboot", pt.Name())
		}
	}
	if p.RebootEvents != 1 {
		t.Errorf("RebootEvents = %d, want 1", p.RebootEvents)
	}
}

func TestApplyRehashRotatesSaltDeterministically(t *testing.T) {
	salts := func() []uint64 {
		n, _, _, _ := flapNet(t)
		p := MustParse("rehash=1ms;rehash=2ms;seed=7")
		if err := p.Apply(n, sim.Second); err != nil {
			t.Fatal(err)
		}
		var out []uint64
		out = append(out, n.ECMPSalt())
		n.Run(1500 * sim.Microsecond)
		out = append(out, n.ECMPSalt())
		n.Run(3 * sim.Millisecond)
		out = append(out, n.ECMPSalt())
		if p.RehashEvents != 2 {
			t.Fatalf("RehashEvents = %d, want 2", p.RehashEvents)
		}
		return out
	}
	a, b := salts(), salts()
	if a[0] != 0 {
		t.Errorf("initial salt = %d, want 0", a[0])
	}
	if a[1] == 0 || a[2] == 0 || a[1] == a[2] {
		t.Errorf("rehash salts = %v, want two distinct non-zero salts", a[1:])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("salt %d differs across identical plans: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestApplyUnknownNode(t *testing.T) {
	n, _, _, _ := flapNet(t)
	if err := MustParse("crash=Z,at=1ms,up=2ms").Apply(n, sim.Second); err == nil ||
		!strings.Contains(err.Error(), `unknown host "Z"`) {
		t.Errorf("crash Apply = %v, want unknown host error", err)
	}
	if err := MustParse("reboot=Z,at=1ms,up=2ms").Apply(n, sim.Second); err == nil ||
		!strings.Contains(err.Error(), `unknown switch "Z"`) {
		t.Errorf("reboot Apply = %v, want unknown switch error", err)
	}
}

func TestWrapQueuesIdentityAndLayering(t *testing.T) {
	inner := func() netsim.Queue { return netsim.NewDropTail(8) }

	// A plan with only link faults must return the factory's queues
	// unwrapped — no spurious RNG in the data path.
	noLoss := MustParse("link=a->b,down=1ms,up=2ms")
	if _, ok := noLoss.WrapQueues(inner)().(*netsim.DropTailQueue); !ok {
		t.Error("loss-free plan wrapped the queue")
	}

	// Ctrl loss alone wraps in a LossyQueue carrying CtrlDropProb.
	ctrl := MustParse("ctrl-loss=0.25")
	lq, ok := ctrl.WrapQueues(inner)().(*netsim.LossyQueue)
	if !ok {
		t.Fatal("ctrl-loss plan did not produce a LossyQueue")
	}
	if lq.CtrlDropProb != 0.25 || lq.DropProb != 0 {
		t.Errorf("probs = ctrl %v / data %v", lq.CtrlDropProb, lq.DropProb)
	}

	// Burst + loss compose: Lossy outermost, GE inside it.
	both := MustParse("burst-loss=tobad:0.01,togood:0.25,bad:0.5;data-loss=0.02")
	outer, ok := both.WrapQueues(inner)().(*netsim.LossyQueue)
	if !ok {
		t.Fatal("composed plan: outermost not LossyQueue")
	}
	if _, ok := outer.Inner.(*netsim.GilbertElliottQueue); !ok {
		t.Fatal("composed plan: GE layer missing under the loss layer")
	}
}

func TestWrapQueuesDeterministicPerQueueStreams(t *testing.T) {
	drops := func(plan *Plan) []int64 {
		f := plan.WrapQueues(func() netsim.Queue { return netsim.NewDropTail(0) })
		var out []int64
		for q := 0; q < 3; q++ {
			lq := f().(*netsim.LossyQueue)
			for i := 0; i < 1000; i++ {
				lq.Enqueue(&netsim.Packet{Type: netsim.Data, Size: netsim.MSS}, 0)
			}
			out = append(out, lq.Injected)
		}
		return out
	}
	a := drops(MustParse("data-loss=0.1;seed=9"))
	b := drops(MustParse("data-loss=0.1;seed=9"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("queue %d diverged across identical plans: %d vs %d", i, a[i], b[i])
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Error("per-queue sub-seeding produced identical streams for all queues")
	}
}
