// Package faults is a deterministic fault-injection subsystem for
// netsim networks. A Plan describes link failures (down/up flaps, rate
// degradation), node failures (host crash+restart, switch reboots,
// ECMP rehash events), and packet-loss processes (independent
// control/data loss, Gilbert–Elliott bursty loss); Apply schedules the
// link and node events onto a network's engine, and WrapQueues layers
// the loss processes onto a protocol's switch-queue factory. All
// randomness derives from the plan seed via sim.SubSeed, so the same
// plan on the same seed reproduces byte-identical runs.
//
// Plans are usually built from a compact textual spec (see Parse), e.g.
//
//	link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01
//
// which flaps one leaf uplink once and drops 1% of control packets
// everywhere. docs/FAULTS.md documents the grammar and fault models.
package faults

import (
	"fmt"

	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// LinkFlap takes a named link administratively down at DownAt and back
// up at UpAt. A positive Period repeats the cycle (down at
// DownAt+k*Period for every k) until the run's horizon; zero means a
// single flap. Both unidirectional ports of the full-duplex link are
// affected together, matching a pulled cable or dead optic.
type LinkFlap struct {
	// Link names either direction of the link, e.g. "leaf0->spine1";
	// the reverse port is derived automatically.
	Link   string
	DownAt sim.Time
	UpAt   sim.Time
	Period sim.Time
}

// Degrade caps a named link's serialization rate at Factor times
// nominal between At and Until — an optic renegotiating a lower speed
// rather than dying outright. Both directions are affected.
type Degrade struct {
	Link      string
	At, Until sim.Time
	// Factor is the surviving fraction of the nominal rate, in (0,1).
	Factor float64
}

// BurstLoss selects the Gilbert–Elliott two-state burst-loss model for
// every switch queue. ToBad and ToGood are the per-arrival transition
// probabilities (stationary bad fraction ToBad/(ToBad+ToGood), mean
// burst 1/ToGood arrivals); LossBad and LossGood are the per-data-packet
// drop probabilities in each state.
type BurstLoss struct {
	ToBad, ToGood     float64
	LossBad, LossGood float64
}

// NodeCrash crashes a named host at At and restarts it at Up. The crash
// loses all volatile endpoint state: the host's NIC queue is flushed
// (packets it had queued die with it), both directions of its access
// link park for the outage, and the plan's CrashHook fires so the
// protocol layer can drop the host's sender/receiver/pacer state. On
// restart the link unparks and RestartHook fires; flows whose receiver
// crashed are re-announced by their senders and rebuilt from the RTS,
// flows whose sender crashed are killed (their bytes are gone).
type NodeCrash struct {
	// Node is the host name the topology builders assign ("h0.3" on the
	// leaf-spine fabric, "S0"/"R2" on the scenario topologies).
	Node string
	At   sim.Time
	Up   sim.Time
}

// SwitchReboot reboots a named switch at At: every egress queue it owns
// is flushed (a reboot clears packet memory) and every port parks until
// Up. Neighbors route around it where ECMP offers an alternative;
// single-homed hosts behind it are simply cut off for the window.
type SwitchReboot struct {
	// Node is the switch name ("leaf1", "spine0", "swA").
	Node string
	At   sim.Time
	Up   sim.Time
}

// Rehash rotates the network's ECMP hash salt at At, moving every
// multipath flow onto a freshly chosen equal-cost path — the classic
// reordering event of datacenter fabrics (maintenance reshuffles,
// hash-seed rotation). The new salt derives from the plan seed, so the
// post-rehash path assignment is deterministic per seed.
type Rehash struct {
	At sim.Time
}

// Plan is a complete fault scenario. The zero value is an empty plan
// that injects nothing; Apply and WrapQueues on it are no-ops (modulo
// wrapper identity).
type Plan struct {
	// Seed namespaces every random stream the plan owns. It defaults to
	// the run seed when built through the experiment layer; a seed=N
	// spec clause pins it independently.
	Seed int64

	Flaps    []LinkFlap
	Degrades []Degrade
	Crashes  []NodeCrash
	Reboots  []SwitchReboot
	Rehashes []Rehash

	// Burst, when non-nil, wraps every switch queue in a
	// Gilbert–Elliott burst-loss process.
	Burst *BurstLoss

	// CtrlLoss and DataLoss are independent per-packet drop
	// probabilities applied at every switch queue. CtrlLoss lifts the
	// historical control-packet sparing of loss injection — the fault
	// class receiver-driven transports are most sensitive to.
	CtrlLoss float64
	DataLoss float64

	// Cumulative event counters, maintained by the scheduled callbacks
	// so tests and telemetry can observe plan activity.
	LinkDownEvents int64
	LinkUpEvents   int64
	DegradeEvents  int64
	CrashEvents    int64
	RebootEvents   int64
	RehashEvents   int64

	// CrashHook and RestartHook, when non-nil, are invoked by the crash
	// and restart events of every NodeCrash, after the host's link state
	// has been updated. The experiment runner points them at the protocol
	// stack so endpoint state dies and recovers with the host.
	CrashHook   func(h *netsim.Host)
	RestartHook func(h *netsim.Host)
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Flaps) == 0 && len(p.Degrades) == 0 &&
		len(p.Crashes) == 0 && len(p.Reboots) == 0 && len(p.Rehashes) == 0 &&
		p.Burst == nil && p.CtrlLoss == 0 && p.DataLoss == 0)
}

// WrapQueues layers the plan's loss processes over a protocol's switch
// queue factory. Queue construction order is deterministic (topology
// builders create ports in a fixed order), so giving the k-th queue the
// sub-seed derived from k keeps every per-queue stream stable across
// runs. Plans without loss processes return inner unchanged.
func (p *Plan) WrapQueues(inner netsim.QueueFactory) netsim.QueueFactory {
	if p == nil || (p.Burst == nil && p.CtrlLoss == 0 && p.DataLoss == 0) {
		return inner
	}
	n := 0
	return func() netsim.Queue {
		q := inner()
		idx := n
		n++
		if b := p.Burst; b != nil {
			seed := sim.SubSeed(p.Seed, fmt.Sprintf("faults.burst.%d", idx))
			q = netsim.NewGilbertElliott(q, b.ToBad, b.ToGood, b.LossBad, b.LossGood, seed)
		}
		if p.CtrlLoss > 0 || p.DataLoss > 0 {
			seed := sim.SubSeed(p.Seed, fmt.Sprintf("faults.loss.%d", idx))
			l := netsim.NewLossy(q, p.DataLoss, seed)
			l.CtrlDropProb = p.CtrlLoss
			q = l
		}
		return q
	}
}

// Apply resolves the plan's link names against net and schedules the
// down/up/degrade events on its engine. horizon bounds periodic flaps;
// events are scheduled eagerly up front (a year-long horizon with a
// microsecond period would be pathological, but plans come from short
// test specs). It must be called after the topology is built and before
// the run starts. Unknown link names are an error.
func (p *Plan) Apply(net *netsim.Network, horizon sim.Time) error {
	if p == nil {
		return nil
	}
	ports := portIndex(net)
	for _, f := range p.Flaps {
		fwd, rev, err := resolve(ports, f.Link)
		if err != nil {
			return err
		}
		if f.UpAt <= f.DownAt {
			return fmt.Errorf("faults: link %s: up time %v not after down time %v", f.Link, f.UpAt, f.DownAt)
		}
		// Flap events are scheduled eagerly; cap the cycle count so a
		// short period against an unbounded horizon fails loudly instead
		// of looping forever.
		const maxFlapCycles = 100000
		for k := int64(0); ; k++ {
			if f.Period > 0 && k >= maxFlapCycles {
				return fmt.Errorf("faults: link %s: period %v yields more than %d flap cycles before the horizon", f.Link, f.Period, maxFlapCycles)
			}
			off := sim.Time(k) * f.Period
			down, up := f.DownAt+off, f.UpAt+off
			if down > horizon {
				break
			}
			schedulePair(net, down, func() {
				p.LinkDownEvents++
				fwd.SetAdminDown(true)
				if rev != nil {
					rev.SetAdminDown(true)
				}
			})
			schedulePair(net, up, func() {
				p.LinkUpEvents++
				fwd.SetAdminDown(false)
				if rev != nil {
					rev.SetAdminDown(false)
				}
			})
			if f.Period <= 0 {
				break
			}
		}
	}
	for _, d := range p.Degrades {
		fwd, rev, err := resolve(ports, d.Link)
		if err != nil {
			return err
		}
		if d.Factor <= 0 || d.Factor >= 1 {
			return fmt.Errorf("faults: link %s: degrade factor %v outside (0,1)", d.Link, d.Factor)
		}
		if d.Until <= d.At {
			return fmt.Errorf("faults: link %s: degrade end %v not after start %v", d.Link, d.Until, d.At)
		}
		d := d
		schedulePair(net, d.At, func() {
			p.DegradeEvents++
			fwd.SetDegradedRate(sim.Rate(float64(fwd.Link().Rate) * d.Factor))
			if rev != nil {
				rev.SetDegradedRate(sim.Rate(float64(rev.Link().Rate) * d.Factor))
			}
		})
		schedulePair(net, d.Until, func() {
			fwd.SetDegradedRate(0)
			if rev != nil {
				rev.SetDegradedRate(0)
			}
		})
	}
	for _, c := range p.Crashes {
		host := hostByName(net, c.Node)
		if host == nil {
			return fmt.Errorf("faults: unknown host %q in crash clause", c.Node)
		}
		if c.Up <= c.At {
			return fmt.Errorf("faults: crash %s: restart %v not after crash %v", c.Node, c.Up, c.At)
		}
		if c.At > horizon {
			continue
		}
		nic := host.NIC()
		var down *netsim.Port
		if nic != nil {
			down = ports[reverseName(nic.Name())]
		}
		host, c := host, c
		schedulePair(net, c.At, func() {
			p.CrashEvents++
			if nic != nil {
				// The crashed host's queued output dies with its memory;
				// the access link parks in both directions.
				nic.FlushQueue()
				nic.SetAdminDown(true)
			}
			if down != nil {
				down.SetAdminDown(true)
			}
			if p.CrashHook != nil {
				p.CrashHook(host)
			}
		})
		schedulePair(net, c.Up, func() {
			if nic != nil {
				nic.SetAdminDown(false)
			}
			if down != nil {
				down.SetAdminDown(false)
			}
			if p.RestartHook != nil {
				p.RestartHook(host)
			}
		})
	}
	for _, r := range p.Reboots {
		sw := switchByName(net, r.Node)
		if sw == nil {
			return fmt.Errorf("faults: unknown switch %q in reboot clause", r.Node)
		}
		if r.Up <= r.At {
			return fmt.Errorf("faults: reboot %s: up %v not after reboot %v", r.Node, r.Up, r.At)
		}
		if r.At > horizon {
			continue
		}
		sw, r := sw, r
		schedulePair(net, r.At, func() {
			p.RebootEvents++
			for _, pt := range sw.Ports() {
				// A reboot clears packet memory before the ports go dark.
				pt.FlushQueue()
				pt.SetAdminDown(true)
			}
		})
		schedulePair(net, r.Up, func() {
			for _, pt := range sw.Ports() {
				pt.SetAdminDown(false)
			}
		})
	}
	for i, rh := range p.Rehashes {
		if rh.At > horizon {
			continue
		}
		salt := uint64(sim.SubSeed(p.Seed, fmt.Sprintf("faults.rehash.%d", i)))
		schedulePair(net, rh.At, func() {
			p.RehashEvents++
			net.SetECMPSalt(salt)
		})
	}
	return nil
}

// hostByName resolves a host by its topology name, or nil.
func hostByName(net *netsim.Network, name string) *netsim.Host {
	for _, h := range net.Hosts() {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// switchByName resolves a switch by its topology name, or nil.
func switchByName(net *netsim.Network, name string) *netsim.Switch {
	for _, sw := range net.Switches() {
		if sw.Name() == name {
			return sw
		}
	}
	return nil
}

// RegisterMetrics publishes the plan's cumulative event counters into
// reg, so fault activity lands in the same deterministic dumps as the
// network's own telemetry.
func (p *Plan) RegisterMetrics(reg *metrics.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.CounterFunc("faults.link_down_events", func() int64 { return p.LinkDownEvents })
	reg.CounterFunc("faults.link_up_events", func() int64 { return p.LinkUpEvents })
	reg.CounterFunc("faults.degrade_events", func() int64 { return p.DegradeEvents })
	reg.CounterFunc("faults.crash_events", func() int64 { return p.CrashEvents })
	reg.CounterFunc("faults.reboot_events", func() int64 { return p.RebootEvents })
	reg.CounterFunc("faults.rehash_events", func() int64 { return p.RehashEvents })
}

func schedulePair(net *netsim.Network, at sim.Time, fn func()) {
	net.Engine.ScheduleAt(at, fn)
}

// portIndex maps every port name ("a->b") in the network to its port.
func portIndex(net *netsim.Network) map[string]*netsim.Port {
	idx := make(map[string]*netsim.Port)
	for _, sw := range net.Switches() {
		for _, pt := range sw.Ports() {
			idx[pt.Name()] = pt
		}
	}
	for _, h := range net.Hosts() {
		if nic := h.NIC(); nic != nil {
			idx[nic.Name()] = nic
		}
	}
	return idx
}

// resolve returns the named port and, when present, its reverse
// direction ("b->a" for "a->b"), so faults hit the full-duplex link.
func resolve(idx map[string]*netsim.Port, name string) (fwd, rev *netsim.Port, err error) {
	fwd = idx[name]
	if fwd == nil {
		return nil, nil, fmt.Errorf("faults: unknown link %q (no port by that name)", name)
	}
	rev = idx[reverseName(name)]
	return fwd, rev, nil
}

func reverseName(name string) string {
	for i := 0; i+1 < len(name); i++ {
		if name[i] == '-' && name[i+1] == '>' {
			return name[i+2:] + "->" + name[:i]
		}
	}
	return ""
}
