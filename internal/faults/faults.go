// Package faults is a deterministic fault-injection subsystem for
// netsim networks. A Plan describes link failures (down/up flaps, rate
// degradation), node failures (host crash+restart, switch reboots,
// ECMP rehash events), and packet-loss processes (independent
// control/data loss, Gilbert–Elliott bursty loss); Apply homes each
// link and node event to the engine shard owning the affected
// port/host/switch, and WrapQueues layers the loss processes onto a
// protocol's switch-queue factory. All randomness derives from the
// plan seed via sim.SubSeed, and the per-queue loss streams are keyed
// by port name — not partition — so the same plan on the same seed
// reproduces byte-identical runs at every shard count.
//
// Plans are usually built from a compact textual spec (see Parse), e.g.
//
//	link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01
//
// which flaps one leaf uplink once and drops 1% of control packets
// everywhere. docs/FAULTS.md documents the grammar and fault models.
package faults

import (
	"fmt"
	"sort"
	"sync/atomic"

	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// LinkFlap takes a named link administratively down at DownAt and back
// up at UpAt. A positive Period repeats the cycle (down at
// DownAt+k*Period for every k) until the run's horizon; zero means a
// single flap. Both unidirectional ports of the full-duplex link are
// affected together, matching a pulled cable or dead optic.
type LinkFlap struct {
	// Link names either direction of the link, e.g. "leaf0->spine1";
	// the reverse port is derived automatically.
	Link   string
	DownAt sim.Time
	UpAt   sim.Time
	Period sim.Time
}

// Degrade caps a named link's serialization rate at Factor times
// nominal between At and Until — an optic renegotiating a lower speed
// rather than dying outright. Both directions are affected.
type Degrade struct {
	Link      string
	At, Until sim.Time
	// Factor is the surviving fraction of the nominal rate, in (0,1).
	Factor float64
}

// BurstLoss selects the Gilbert–Elliott two-state burst-loss model for
// every switch queue. ToBad and ToGood are the per-arrival transition
// probabilities (stationary bad fraction ToBad/(ToBad+ToGood), mean
// burst 1/ToGood arrivals); LossBad and LossGood are the per-data-packet
// drop probabilities in each state.
type BurstLoss struct {
	ToBad, ToGood     float64
	LossBad, LossGood float64
}

// NodeCrash crashes a named host at At and restarts it at Up. The crash
// loses all volatile endpoint state: the host's NIC queue is flushed
// (packets it had queued die with it), both directions of its access
// link park for the outage, and the plan's CrashHook fires so the
// protocol layer can drop the host's sender/receiver/pacer state. On
// restart the link unparks and RestartHook fires; flows whose receiver
// crashed are re-announced by their senders and rebuilt from the RTS,
// flows whose sender crashed are killed (their bytes are gone).
type NodeCrash struct {
	// Node is the host name the topology builders assign ("h0.3" on the
	// leaf-spine fabric, "S0"/"R2" on the scenario topologies).
	Node string
	At   sim.Time
	Up   sim.Time
}

// SwitchReboot reboots a named switch at At: every egress queue it owns
// is flushed (a reboot clears packet memory) and every port parks until
// Up. Neighbors route around it where ECMP offers an alternative;
// single-homed hosts behind it are simply cut off for the window.
type SwitchReboot struct {
	// Node is the switch name ("leaf1", "spine0", "swA").
	Node string
	At   sim.Time
	Up   sim.Time
}

// Rehash rotates the network's ECMP hash salt at At, moving every
// multipath flow onto a freshly chosen equal-cost path — the classic
// reordering event of datacenter fabrics (maintenance reshuffles,
// hash-seed rotation). The new salt derives from the plan seed, so the
// post-rehash path assignment is deterministic per seed.
type Rehash struct {
	At sim.Time
}

// Plan is a complete fault scenario. The zero value is an empty plan
// that injects nothing; Apply and WrapQueues on it are no-ops (modulo
// wrapper identity).
type Plan struct {
	// Seed namespaces every random stream the plan owns. It defaults to
	// the run seed when built through the experiment layer; a seed=N
	// spec clause pins it independently.
	Seed int64

	Flaps    []LinkFlap
	Degrades []Degrade
	Crashes  []NodeCrash
	Reboots  []SwitchReboot
	Rehashes []Rehash

	// Burst, when non-nil, wraps every switch queue in a
	// Gilbert–Elliott burst-loss process.
	Burst *BurstLoss

	// CtrlLoss and DataLoss are independent per-packet drop
	// probabilities applied at every switch queue. CtrlLoss lifts the
	// historical control-packet sparing of loss injection — the fault
	// class receiver-driven transports are most sensitive to.
	CtrlLoss float64
	DataLoss float64

	// Cumulative event counters, maintained by the scheduled callbacks
	// so tests and telemetry can observe plan activity. Each logical
	// fault event increments its counter exactly once — on the shard
	// owning the fault's designated port/host/switch — via an atomic
	// add, because events of distinct faults may execute concurrently on
	// different shard goroutines within one synchronization window. The
	// final values are read only after the run joins, so they are
	// deterministic and identical at every shard count.
	LinkDownEvents int64
	LinkUpEvents   int64
	DegradeEvents  int64
	CrashEvents    int64
	RebootEvents   int64
	RehashEvents   int64

	// CrashHook and RestartHook, when non-nil, are invoked by the crash
	// and restart events of every NodeCrash, after the host's link state
	// has been updated. On a partitioned network the hook fires once per
	// shard — a same-instant event on every shard engine — with that
	// shard as the first argument, so each protocol-stack instance drops
	// (and later recovers) exactly the slice of the crashed host's state
	// it owns. The experiment runner points them at the per-shard stack
	// instances.
	CrashHook   func(sh *netsim.Shard, h *netsim.Host)
	RestartHook func(sh *netsim.Shard, h *netsim.Host)

	// adminLog records every administrative down/up action Apply
	// scheduled, per port, sorted by time with plan order breaking ties
	// — the oracle behind AdminDown.
	adminLog map[*netsim.Port][]adminAction
}

// adminAction is one administrative state change in the AdminDown
// oracle: port goes down (or up) at at.
type adminAction struct {
	at   sim.Time
	down bool
}

// AdminDown reports whether the plan has port pt administratively down
// as of now: the last scheduled action at or before now wins, with plan
// order breaking ties at equal times — exactly the state the port
// itself holds after its end-of-instant fault events execute. It is a
// pure function of the plan (built by Apply), so any shard may consult
// it about any port without reading cross-shard state; the experiment
// runner's liveness watchdog uses it to excuse flows whose access links
// a fault parked. Ports the plan never touches — every port, without a
// plan — are never down.
func (p *Plan) AdminDown(pt *netsim.Port, now sim.Time) bool {
	if p == nil {
		return false
	}
	down := false
	for _, a := range p.adminLog[pt] {
		if a.at <= now {
			down = a.down
		}
	}
	return down
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Flaps) == 0 && len(p.Degrades) == 0 &&
		len(p.Crashes) == 0 && len(p.Reboots) == 0 && len(p.Rehashes) == 0 &&
		p.Burst == nil && p.CtrlLoss == 0 && p.DataLoss == 0)
}

// WrapQueues layers the plan's loss processes over a protocol's switch
// queue factory. Queue construction order is deterministic (topology
// builders create ports in a fixed order), so giving the k-th queue the
// sub-seed derived from k keeps every per-queue stream stable across
// runs. Plans without loss processes return inner unchanged.
func (p *Plan) WrapQueues(inner netsim.QueueFactory) netsim.QueueFactory {
	if p == nil || (p.Burst == nil && p.CtrlLoss == 0 && p.DataLoss == 0) {
		return inner
	}
	n := 0
	return func() netsim.Queue {
		q := inner()
		idx := n
		n++
		if b := p.Burst; b != nil {
			seed := sim.SubSeed(p.Seed, fmt.Sprintf("faults.burst.%d", idx))
			q = netsim.NewGilbertElliott(q, b.ToBad, b.ToGood, b.LossBad, b.LossGood, seed)
		}
		if p.CtrlLoss > 0 || p.DataLoss > 0 {
			seed := sim.SubSeed(p.Seed, fmt.Sprintf("faults.loss.%d", idx))
			l := netsim.NewLossy(q, p.DataLoss, seed)
			l.CtrlDropProb = p.CtrlLoss
			q = l
		}
		return q
	}
}

// Apply resolves the plan's names against net and schedules every fault
// event onto the shard engines that own the affected ports, hosts, and
// switches. horizon bounds periodic flaps; events are scheduled eagerly
// up front (a year-long horizon with a microsecond period would be
// pathological, but plans come from short test specs). It must be
// called after the topology is built — and, on a sharded run, after
// Partition — and before the run starts. Unknown link, host, or switch
// names are an error.
//
// Shard safety and determinism: every fault event runs in the engine
// late band below sim.SubObserver — after all same-instant packet and
// protocol events, before the same-instant observers — under a sub-key
// drawn in plan order. A logical fault whose effects span shards (a
// full-duplex flap with the two directions on different shards, a host
// crash whose protocol state is split between sender and receiver
// instances, an ECMP rehash) becomes one same-instant event per
// involved shard, all sharing that one sub-key. Because the actions a
// shard's event performs touch only state that shard owns, and because
// plan order fixes the sub-key order identically at every shard count,
// the merged event order — and therefore every byte of the run — equals
// the single-engine order. docs/FAULTS.md spells out the argument.
func (p *Plan) Apply(net *netsim.Network, horizon sim.Time) error {
	if p == nil {
		return nil
	}
	ports := portIndex(net)
	p.adminLog = make(map[*netsim.Port][]adminAction)
	ns := net.NumShards()

	// One logical fault event = one late-band sub-key = at most one
	// scheduled event per shard. parts[i] is what shard i must do.
	// Recovery events past the horizon are still scheduled (they simply
	// never execute on a horizon-bounded run), matching the per-clause
	// filters that decide which faults exist at all.
	sub := uint64(0)
	schedule := func(at sim.Time, parts []func()) {
		s := sub
		sub++
		if s >= sim.SubObserver {
			// Unreachable through the parser (maxFlapCycles bounds the
			// event count far below 2^32), but the invariant matters:
			// action sub-keys must stay below the observer partition.
			panic("faults: plan schedules too many events for the late-band action space")
		}
		for i, fn := range parts {
			if fn != nil {
				net.Shard(i).Eng().ScheduleLate(at, s, fn)
			}
		}
	}
	newParts := func() []func() { return make([]func(), ns) }
	add := func(parts []func(), idx int, fn func()) {
		if prev := parts[idx]; prev != nil {
			parts[idx] = func() { prev(); fn() }
		} else {
			parts[idx] = fn
		}
	}
	logAdmin := func(pt *netsim.Port, at sim.Time, down bool) {
		if pt != nil {
			p.adminLog[pt] = append(p.adminLog[pt], adminAction{at, down})
		}
	}

	for _, f := range p.Flaps {
		fwd, rev, err := resolve(ports, f.Link)
		if err != nil {
			return err
		}
		if f.UpAt <= f.DownAt {
			return fmt.Errorf("faults: link %s: up time %v not after down time %v", f.Link, f.UpAt, f.DownAt)
		}
		// Flap events are scheduled eagerly; cap the cycle count so a
		// short period against an unbounded horizon fails loudly instead
		// of looping forever.
		const maxFlapCycles = 100000
		for k := int64(0); ; k++ {
			if f.Period > 0 && k >= maxFlapCycles {
				return fmt.Errorf("faults: link %s: period %v yields more than %d flap cycles before the horizon", f.Link, f.Period, maxFlapCycles)
			}
			off := sim.Time(k) * f.Period
			down, up := f.DownAt+off, f.UpAt+off
			if down > horizon {
				break
			}
			dn := newParts()
			add(dn, fwd.Shard().Index(), func() {
				atomic.AddInt64(&p.LinkDownEvents, 1)
				fwd.SetAdminDown(true)
			})
			logAdmin(fwd, down, true)
			if rev != nil {
				add(dn, rev.Shard().Index(), func() { rev.SetAdminDown(true) })
				logAdmin(rev, down, true)
			}
			schedule(down, dn)
			upp := newParts()
			add(upp, fwd.Shard().Index(), func() {
				atomic.AddInt64(&p.LinkUpEvents, 1)
				fwd.SetAdminDown(false)
			})
			logAdmin(fwd, up, false)
			if rev != nil {
				add(upp, rev.Shard().Index(), func() { rev.SetAdminDown(false) })
				logAdmin(rev, up, false)
			}
			schedule(up, upp)
			if f.Period <= 0 {
				break
			}
		}
	}
	for _, d := range p.Degrades {
		fwd, rev, err := resolve(ports, d.Link)
		if err != nil {
			return err
		}
		if d.Factor <= 0 || d.Factor >= 1 {
			return fmt.Errorf("faults: link %s: degrade factor %v outside (0,1)", d.Link, d.Factor)
		}
		if d.Until <= d.At {
			return fmt.Errorf("faults: link %s: degrade end %v not after start %v", d.Link, d.Until, d.At)
		}
		d := d
		start := newParts()
		add(start, fwd.Shard().Index(), func() {
			atomic.AddInt64(&p.DegradeEvents, 1)
			fwd.SetDegradedRate(sim.Rate(float64(fwd.Link().Rate) * d.Factor))
		})
		if rev != nil {
			add(start, rev.Shard().Index(), func() {
				rev.SetDegradedRate(sim.Rate(float64(rev.Link().Rate) * d.Factor))
			})
		}
		schedule(d.At, start)
		end := newParts()
		add(end, fwd.Shard().Index(), func() { fwd.SetDegradedRate(0) })
		if rev != nil {
			add(end, rev.Shard().Index(), func() { rev.SetDegradedRate(0) })
		}
		schedule(d.Until, end)
	}
	for _, c := range p.Crashes {
		host := hostByName(net, c.Node)
		if host == nil {
			return fmt.Errorf("faults: unknown host %q in crash clause", c.Node)
		}
		if c.Up <= c.At {
			return fmt.Errorf("faults: crash %s: restart %v not after crash %v", c.Node, c.Up, c.At)
		}
		if c.At > horizon {
			continue
		}
		nic := host.NIC()
		var down *netsim.Port
		if nic != nil {
			down = ports[reverseName(nic.Name())]
		}
		host, c := host, c
		crash := newParts()
		add(crash, host.Shard().Index(), func() {
			atomic.AddInt64(&p.CrashEvents, 1)
			if nic != nil {
				// The crashed host's queued output dies with its memory;
				// the access link parks in both directions.
				nic.FlushQueue()
				nic.SetAdminDown(true)
			}
		})
		if down != nil {
			add(crash, down.Shard().Index(), func() { down.SetAdminDown(true) })
		}
		// Protocol state for the crashed host's flows is split across
		// instances (sender side on each source's shard, receiver side on
		// each home shard), so the hook fires on every shard; each
		// instance drops only the halves it owns.
		for i := 0; i < ns; i++ {
			i := i
			add(crash, i, func() {
				if p.CrashHook != nil {
					p.CrashHook(net.Shard(i), host)
				}
			})
		}
		logAdmin(nic, c.At, true)
		logAdmin(down, c.At, true)
		schedule(c.At, crash)
		restart := newParts()
		add(restart, host.Shard().Index(), func() {
			if nic != nil {
				nic.SetAdminDown(false)
			}
		})
		if down != nil {
			add(restart, down.Shard().Index(), func() { down.SetAdminDown(false) })
		}
		for i := 0; i < ns; i++ {
			i := i
			add(restart, i, func() {
				if p.RestartHook != nil {
					p.RestartHook(net.Shard(i), host)
				}
			})
		}
		logAdmin(nic, c.Up, false)
		logAdmin(down, c.Up, false)
		schedule(c.Up, restart)
	}
	for _, r := range p.Reboots {
		sw := switchByName(net, r.Node)
		if sw == nil {
			return fmt.Errorf("faults: unknown switch %q in reboot clause", r.Node)
		}
		if r.Up <= r.At {
			return fmt.Errorf("faults: reboot %s: up %v not after reboot %v", r.Node, r.Up, r.At)
		}
		if r.At > horizon {
			continue
		}
		sw, r := sw, r
		// Every port of a switch lives on the switch's shard, so a
		// reboot is a single-shard event however the network is split.
		rb := newParts()
		add(rb, sw.Shard().Index(), func() {
			atomic.AddInt64(&p.RebootEvents, 1)
			for _, pt := range sw.Ports() {
				// A reboot clears packet memory before the ports go dark.
				pt.FlushQueue()
				pt.SetAdminDown(true)
			}
		})
		for _, pt := range sw.Ports() {
			logAdmin(pt, r.At, true)
		}
		schedule(r.At, rb)
		up := newParts()
		add(up, sw.Shard().Index(), func() {
			for _, pt := range sw.Ports() {
				pt.SetAdminDown(false)
			}
		})
		for _, pt := range sw.Ports() {
			logAdmin(pt, r.Up, false)
		}
		schedule(r.Up, up)
	}
	for i, rh := range p.Rehashes {
		if rh.At > horizon {
			continue
		}
		salt := uint64(sim.SubSeed(p.Seed, fmt.Sprintf("faults.rehash.%d", i)))
		// The salt is per-shard state: one same-instant event per shard
		// rotates every copy, so all switches re-hash from the same
		// virtual time regardless of which shard owns them.
		rot := newParts()
		for s := 0; s < ns; s++ {
			s := s
			if s == 0 {
				add(rot, 0, func() {
					atomic.AddInt64(&p.RehashEvents, 1)
					net.Shard(0).SetECMPSalt(salt)
				})
			} else {
				add(rot, s, func() { net.Shard(s).SetECMPSalt(salt) })
			}
		}
		schedule(rh.At, rot)
	}
	// Settle the oracle: AdminDown scans each port's log front to back,
	// so entries must be time-ordered; the stable sort keeps plan order
	// as the tie-break at equal times, matching sub-key execution order.
	for _, log := range p.adminLog {
		sort.SliceStable(log, func(i, j int) bool { return log[i].at < log[j].at })
	}
	return nil
}

// hostByName resolves a host by its topology name, or nil.
func hostByName(net *netsim.Network, name string) *netsim.Host {
	for _, h := range net.Hosts() {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// switchByName resolves a switch by its topology name, or nil.
func switchByName(net *netsim.Network, name string) *netsim.Switch {
	for _, sw := range net.Switches() {
		if sw.Name() == name {
			return sw
		}
	}
	return nil
}

// RegisterMetrics publishes the plan's cumulative event counters into
// reg, so fault activity lands in the same deterministic dumps as the
// network's own telemetry.
func (p *Plan) RegisterMetrics(reg *metrics.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.CounterFunc("faults.link_down_events", func() int64 { return p.LinkDownEvents })
	reg.CounterFunc("faults.link_up_events", func() int64 { return p.LinkUpEvents })
	reg.CounterFunc("faults.degrade_events", func() int64 { return p.DegradeEvents })
	reg.CounterFunc("faults.crash_events", func() int64 { return p.CrashEvents })
	reg.CounterFunc("faults.reboot_events", func() int64 { return p.RebootEvents })
	reg.CounterFunc("faults.rehash_events", func() int64 { return p.RehashEvents })
}

// portIndex maps every port name ("a->b") in the network to its port.
func portIndex(net *netsim.Network) map[string]*netsim.Port {
	idx := make(map[string]*netsim.Port)
	for _, sw := range net.Switches() {
		for _, pt := range sw.Ports() {
			idx[pt.Name()] = pt
		}
	}
	for _, h := range net.Hosts() {
		if nic := h.NIC(); nic != nil {
			idx[nic.Name()] = nic
		}
	}
	return idx
}

// resolve returns the named port and, when present, its reverse
// direction ("b->a" for "a->b"), so faults hit the full-duplex link.
func resolve(idx map[string]*netsim.Port, name string) (fwd, rev *netsim.Port, err error) {
	fwd = idx[name]
	if fwd == nil {
		return nil, nil, fmt.Errorf("faults: unknown link %q (no port by that name)", name)
	}
	rev = idx[reverseName(name)]
	return fwd, rev, nil
}

func reverseName(name string) string {
	for i := 0; i+1 < len(name); i++ {
		if name[i] == '-' && name[i+1] == '>' {
			return name[i+2:] + "->" + name[:i]
		}
	}
	return ""
}
