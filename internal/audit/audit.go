// Package audit is the runtime invariant checker: an engine-attached
// auditor that repeatedly verifies conservation and budget invariants
// the simulator must uphold regardless of protocol, workload, or fault
// plan, and fails fast with a forensic dump when one breaks.
//
// Invariants checked:
//
//  1. Packet conservation: every packet injected through Host.Send is
//     delivered, dropped, parked in some port queue, or on a wire —
//     Injected == Delivered + Dropped + Σ queue.Len() + OnWire. On one
//     shard of a partitioned network the identity gains the cross-shard
//     custody terms: Injected + PipedIn == Delivered + Dropped +
//     Σ queue.Len() + OnWire + PipedOut.
//  2. Per-port conservation: every packet a port's queue accepted was
//     transmitted, flushed, is still queued, or is serializing —
//     Enqueued == TxPackets + Flushed + queue.Len() + (busy ? 1 : 0).
//  3. Queue bounds: no bounded queue holds more packets than its
//     configured capacity (netsim.BoundedQueue).
//  4. Grant budget: a receiver-driven stack never builds more data
//     packets than its control traffic authorized —
//     DataPacketsSent ≤ GrantAuthority (GrantAccounting; stacks that do
//     not implement it, e.g. sender-driven DCTCP, are skipped). This
//     ledger spans shards (senders spend on the source shard, receivers
//     grant on the destination shard), so per-shard auditors skip it;
//     on sharded runs the experiment runner checks it globally at
//     window barriers and once after the run.
//  5. Credit pool: a stack with a bounded per-receiver credit pool
//     (SIRD) never holds more outstanding scheduled credit than the
//     pool bound, and never drives a pool negative —
//     0 ≤ outstanding ≤ bound (CreditAccounting). Pool state is local
//     to the receiving host's shard, so per-shard auditors check it too.
//
// All invariants hold between events, so the auditor runs as an
// ordinary engine event. The counters it reads are plain int64
// increments on paths that already touch hot state; with no auditor
// attached the accounting costs no allocations and no branches beyond
// the increments themselves.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// GrantAccounting is implemented by receiver-driven stacks that can
// report their grant-budget ledger: how many data packets the senders
// built versus how many the receivers' control traffic (plus the
// unsolicited allowance) authorized.
type GrantAccounting interface {
	// DataPacketsSent returns data packets built so far (the spend side).
	DataPacketsSent() int64
	// GrantAuthority returns data packets authorized so far (the budget
	// side); the invariant is DataPacketsSent ≤ GrantAuthority.
	GrantAuthority() int64
}

// CreditAccounting is implemented by stacks that allocate scheduled
// credit from a bounded per-receiver pool (SIRD). The ledger is local
// to the receiving host, so unlike the grant budget it is sound on
// per-shard auditors as well as whole-network ones.
type CreditAccounting interface {
	// CreditLedger returns the outstanding scheduled credit and the pool
	// bound of the most loaded pool (or a negative pool, if the
	// accounting went wrong); the invariant is 0 ≤ outstanding ≤ bound.
	CreditLedger() (outstanding, bound int64)
}

// FlowLister is implemented by stacks whose flows the forensic dump
// should enumerate (every transport.Kernel embedder satisfies it).
type FlowLister interface {
	// OrderedFlows returns the flows in creation order.
	OrderedFlows() []*transport.Flow
}

// Violation describes one failed invariant, with enough forensics to
// debug it after the fact: which rule broke, the arithmetic that broke
// it, and a dump of flow and queue state at the moment of detection.
type Violation struct {
	// At is the virtual time of the failed check.
	At sim.Time
	// Rule names the invariant family, e.g. "conservation",
	// "port-conservation", "queue-bound", "grant-budget".
	Rule string
	// Detail is the failed arithmetic, naming the offending flow, port,
	// or queue.
	Detail string
	// Dump is the forensic state dump (flows, queue occupancies, pending
	// timer count).
	Dump string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("audit: %s violated at %v: %s", v.Rule, v.At, v.Detail)
}

// Auditor attaches invariant checks to a network, or — built with
// NewShard — to one engine shard of a partitioned network. Create with
// New or NewShard, start periodic checking with Start, or call Check
// directly (e.g. one final check after the run).
type Auditor struct {
	// Net is the audited network.
	Net *netsim.Network
	// Shard, when non-nil, scopes the auditor to that shard: its ports
	// only, the per-shard conservation identity, and no grant-budget
	// check. Checks then run on the shard's goroutine against state the
	// shard owns, so a sharded run can audit every window without
	// cross-shard reads.
	Shard *netsim.Shard
	// Stack, if non-nil, is probed for GrantAccounting (invariant 4,
	// whole-network auditors only) and FlowLister (forensic dump
	// enumeration).
	Stack any
	// OnViolation, if non-nil, receives each violation instead of the
	// default panic. The auditor keeps checking after a reported
	// violation; tests use this to assert on seeded failures.
	OnViolation func(*Violation)

	// Checks counts invariant sweeps; Violations counts failures.
	Checks     int64
	Violations int64

	ports []*netsim.Port
	eng   *sim.Engine
}

// New builds an auditor over the network's current topology (ports are
// enumerated once, in creation order — attach after the topology is
// built). stack may be nil. On a partitioned network a whole-network
// auditor is only sound at window barriers or after the run; use
// NewShard for checks that run during windows.
func New(net *netsim.Network, stack any) *Auditor {
	a := &Auditor{Net: net, Stack: stack, eng: net.Engine}
	for _, h := range net.Hosts() {
		if nic := h.NIC(); nic != nil {
			a.ports = append(a.ports, nic)
		}
	}
	for _, sw := range net.Switches() {
		a.ports = append(a.ports, sw.Ports()...)
	}
	return a
}

// NewShard builds an auditor over one shard's slice of the topology,
// checking the per-shard conservation identity. stack should be the
// shard's own protocol instance (or nil); invariant 4 is skipped — its
// ledger spans shards.
func NewShard(sh *netsim.Shard, stack any) *Auditor {
	net := sh.Network()
	a := &Auditor{Net: net, Shard: sh, Stack: stack, eng: sh.Eng()}
	for _, h := range net.Hosts() {
		if nic := h.NIC(); nic != nil && sh.Owns(h) {
			a.ports = append(a.ports, nic)
		}
	}
	for _, sw := range net.Switches() {
		if sh.Owns(sw) {
			a.ports = append(a.ports, sw.Ports()...)
		}
	}
	return a
}

// Start schedules a check every interval (default 100µs if
// non-positive) until the engine stops dispatching events. The first
// check runs one interval in.
func (a *Auditor) Start(interval sim.Time) {
	if interval <= 0 {
		interval = 100 * sim.Microsecond
	}
	var tick func()
	tick = func() {
		a.Check()
		a.eng.Schedule(interval, tick)
	}
	a.eng.Schedule(interval, tick)
}

// Check runs every invariant once, returning the first violation found
// (nil if all hold). Without an OnViolation hook a violation panics
// with the full forensic dump — fail fast, the simulation state is
// corrupt.
func (a *Auditor) Check() *Violation {
	a.Checks++
	v := a.check()
	if v == nil {
		return nil
	}
	a.Violations++
	v.Dump = a.dump()
	if a.OnViolation != nil {
		a.OnViolation(v)
		return v
	}
	panic(v.Error() + "\n" + v.Dump)
}

func (a *Auditor) check() *Violation {
	now := a.eng.Now()

	// 2 + 3: per-port conservation and queue bounds (computes the scoped
	// queued sum for invariant 1 on the way).
	var queued int64
	for _, p := range a.ports {
		q := p.Queue()
		n := int64(q.Len())
		queued += n
		var busy int64
		if p.Busy() {
			busy = 1
		}
		if got := p.TxPackets + p.Flushed + n + busy; p.Enqueued != got {
			return &Violation{At: now, Rule: "port-conservation", Detail: fmt.Sprintf(
				"port %s: enqueued %d != tx %d + flushed %d + queued %d + busy %d",
				p.Name(), p.Enqueued, p.TxPackets, p.Flushed, n, busy)}
		}
		if b, ok := q.(netsim.BoundedQueue); ok {
			if cap := b.CapPackets(); cap > 0 && q.Len() > cap {
				return &Violation{At: now, Rule: "queue-bound", Detail: fmt.Sprintf(
					"port %s: queue holds %d packets, cap %d", p.Name(), q.Len(), cap)}
			}
		}
	}

	// 5: credit pool, for stacks that expose one. Pool state lives on
	// the receiving host's shard, so the check is sound for per-shard
	// auditors too (a shard's instance only pools for hosts it owns).
	if ca, ok := a.Stack.(CreditAccounting); ok {
		if out, bound := ca.CreditLedger(); out < 0 || out > bound {
			return &Violation{At: now, Rule: "credit-pool", Detail: fmt.Sprintf(
				"outstanding scheduled credit %d outside pool bound [0, %d]", out, bound)}
		}
	}

	// 1: packet conservation (per-shard identity with custody terms when
	// scoped, the network-wide identity otherwise).
	if s := a.Shard; s != nil {
		if got := s.Delivered + s.Dropped + queued + s.OnWire + s.PipedOut; s.Injected+s.PipedIn != got {
			return &Violation{At: now, Rule: "conservation", Detail: fmt.Sprintf(
				"shard %d: injected %d + piped-in %d != delivered %d + dropped %d + queued %d + on-wire %d + piped-out %d",
				s.Index(), s.Injected, s.PipedIn, s.Delivered, s.Dropped, queued, s.OnWire, s.PipedOut)}
		}
	} else {
		n := a.Net
		if got := n.Delivered() + n.Dropped() + queued + n.OnWire(); n.Injected() != got {
			return &Violation{At: now, Rule: "conservation", Detail: fmt.Sprintf(
				"injected %d != delivered %d + dropped %d + queued %d + on-wire %d",
				n.Injected(), n.Delivered(), n.Dropped(), queued, n.OnWire())}
		}

		// 4: grant budget, for stacks that expose their ledger (skipped on
		// shard-scoped auditors — the ledger spans shards).
		if ga, ok := a.Stack.(GrantAccounting); ok {
			if sent, auth := ga.DataPacketsSent(), ga.GrantAuthority(); sent > auth {
				return &Violation{At: now, Rule: "grant-budget", Detail: fmt.Sprintf(
					"data packets sent %d exceed grant authority %d (+%d unauthorized)",
					sent, auth, sent-auth)}
			}
		}
	}
	return nil
}

// dump renders the forensic state snapshot: flows sorted by ID, port
// occupancies in creation order, and the pending event count.
func (a *Auditor) dump() string {
	var b strings.Builder
	if fl, ok := a.Stack.(FlowLister); ok {
		flows := append([]*transport.Flow(nil), fl.OrderedFlows()...)
		sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
		fmt.Fprintf(&b, "flows (%d):\n", len(flows))
		for _, f := range flows {
			fmt.Fprintf(&b, "  %v done=%t outcome=%v last-progress=%v\n",
				f, f.Done, f.Outcome, f.LastProgress)
		}
	}
	fmt.Fprintf(&b, "ports (%d):\n", len(a.ports))
	for _, p := range a.ports {
		q := p.Queue()
		fmt.Fprintf(&b, "  %s: len=%d bytes=%d enqueued=%d tx=%d flushed=%d drops=%d busy=%t down=%t\n",
			p.Name(), q.Len(), q.Bytes(), p.Enqueued, p.TxPackets, p.Flushed, p.Drops, p.Busy(), p.AdminDown())
	}
	fmt.Fprintf(&b, "pending events: %d\n", a.eng.Pending())
	return b.String()
}
