package audit

import (
	"strings"
	"testing"

	"amrt/internal/core"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// pairNet is two directly connected hosts on a fresh network.
func pairNet(qa netsim.Queue) (*netsim.Network, *netsim.Host, *netsim.Host) {
	n := netsim.New()
	a, b := n.NewHost("A"), n.NewHost("B")
	n.Connect(a, b, 10*sim.Gbps, sim.Microsecond, qa, nil)
	return n, a, b
}

// TestCleanRunNoViolations drives a full AMRT transfer under continuous
// auditing with the default fail-fast (panic) behaviour: reaching the
// end proves every check passed.
func TestCleanRunNoViolations(t *testing.T) {
	n, a, b := pairNet(nil)
	p := core.New(n, core.Config{Config: transport.Config{RTT: 10 * sim.Microsecond}})
	f := p.AddFlow(1, a, b, 1<<20, 0)

	aud := New(n, p)
	aud.Start(5 * sim.Microsecond)
	n.Run(5 * sim.Millisecond)

	if !f.Done || f.Outcome != transport.OutcomeCompleted {
		t.Fatalf("flow did not complete: done=%t outcome=%v", f.Done, f.Outcome)
	}
	if aud.Checks == 0 {
		t.Fatal("auditor never ran")
	}
	if aud.Violations != 0 {
		t.Fatalf("clean run produced %d violations", aud.Violations)
	}
}

// TestDoubleSendTripsGrantBudget injects unauthorized data sends — a
// sender transmitting beyond what grants permit — and expects the
// grant-budget invariant to trip with a dump naming the flow.
func TestDoubleSendTripsGrantBudget(t *testing.T) {
	n, a, b := pairNet(nil)
	p := core.New(n, core.Config{Config: transport.Config{RTT: 10 * sim.Microsecond}})
	f := p.AddFlow(1, a, b, 1<<20, 0)

	var got *Violation
	aud := New(n, p)
	aud.OnViolation = func(v *Violation) {
		if got == nil {
			got = v
		}
	}
	aud.Start(5 * sim.Microsecond)

	// Mid-run, send enough ungranted duplicates of seq 0 to exhaust
	// whatever slack the ledger has, plus one.
	n.Engine.ScheduleAt(2*sim.Millisecond, func() {
		extra := p.GrantAuthority() - p.DataPacketsSent() + 1
		for i := int64(0); i < extra; i++ {
			f.Src.Send(p.NewData(f, 0, netsim.PrioData))
		}
	})
	n.Run(5 * sim.Millisecond)

	if got == nil {
		t.Fatal("double-send did not trip the auditor")
	}
	if got.Rule != "grant-budget" {
		t.Fatalf("tripped rule %q, want grant-budget (detail: %s)", got.Rule, got.Detail)
	}
	if !strings.Contains(got.Detail, "exceed grant authority") {
		t.Errorf("detail %q does not explain the budget breach", got.Detail)
	}
	if !strings.Contains(got.Dump, "flow 1 A->B") {
		t.Errorf("forensic dump does not name the offending flow:\n%s", got.Dump)
	}
	if !strings.Contains(got.Dump, "pending events:") {
		t.Errorf("forensic dump lacks the pending-event count:\n%s", got.Dump)
	}
}

// leakyQueue claims to accept every packet but silently discards every
// every-th one — a seeded accounting bug the per-port conservation
// check must catch.
type leakyQueue struct {
	netsim.Queue
	n, every int
}

func (l *leakyQueue) Enqueue(pkt *netsim.Packet, now sim.Time) bool {
	l.n++
	if l.n%l.every == 0 {
		return true // swallowed: accepted but never queued
	}
	return l.Queue.Enqueue(pkt, now)
}

// TestPacketLeakTripsPortConservation seeds a queue that loses packets
// without accounting for them and expects the per-port conservation
// invariant to trip, naming the offending port.
func TestPacketLeakTripsPortConservation(t *testing.T) {
	n, a, b := pairNet(&leakyQueue{Queue: netsim.NewDropTail(0), every: 3})
	var got *Violation
	aud := New(n, nil)
	aud.OnViolation = func(v *Violation) {
		if got == nil {
			got = v
		}
	}
	aud.Start(5 * sim.Microsecond)

	for i := 0; i < 6; i++ {
		pkt := netsim.NewPacket()
		pkt.Flow, pkt.Type, pkt.Size = 1, netsim.Data, netsim.MSS
		pkt.Src, pkt.Dst = a.ID(), b.ID()
		a.Send(pkt)
	}
	n.Run(5 * sim.Millisecond)

	if got == nil {
		t.Fatal("packet leak did not trip the auditor")
	}
	if got.Rule != "port-conservation" {
		t.Fatalf("tripped rule %q, want port-conservation (detail: %s)", got.Rule, got.Detail)
	}
	if !strings.Contains(got.Detail, "port A->B") {
		t.Errorf("detail %q does not name the leaking port", got.Detail)
	}
	if !strings.Contains(got.Dump, "A->B:") {
		t.Errorf("forensic dump lacks port state:\n%s", got.Dump)
	}
}

// overstuffedQueue reports a tiny capacity while actually buffering
// without bound, so occupancy can exceed the advertised cap.
type overstuffedQueue struct {
	netsim.Queue
}

func (o *overstuffedQueue) CapPackets() int { return 2 }

// TestQueueBoundViolation seeds a queue whose occupancy exceeds its
// advertised capacity and expects the queue-bound check to trip.
func TestQueueBoundViolation(t *testing.T) {
	n, a, b := pairNet(&overstuffedQueue{Queue: netsim.NewDropTail(0)})
	// Park the NIC so packets pile up past the advertised cap.
	for i := 0; i < 8; i++ {
		pkt := netsim.NewPacket()
		pkt.Flow, pkt.Type, pkt.Size = 1, netsim.Data, netsim.MSS
		pkt.Src, pkt.Dst = a.ID(), b.ID()
		a.Send(pkt)
	}
	var got *Violation
	aud := New(n, nil)
	aud.OnViolation = func(v *Violation) {
		if got == nil {
			got = v
		}
	}
	if v := aud.Check(); v == nil || got == nil {
		t.Fatal("overfull queue did not trip the auditor")
	}
	if got.Rule != "queue-bound" {
		t.Fatalf("tripped rule %q, want queue-bound (detail: %s)", got.Rule, got.Detail)
	}
}

// TestPanicWithoutHook checks the default fail-fast behaviour: no
// OnViolation hook means a violation panics with the forensic dump.
func TestPanicWithoutHook(t *testing.T) {
	n, a, b := pairNet(&overstuffedQueue{Queue: netsim.NewDropTail(0)})
	for i := 0; i < 8; i++ {
		pkt := netsim.NewPacket()
		pkt.Flow, pkt.Type, pkt.Size = 1, netsim.Data, netsim.MSS
		pkt.Src, pkt.Dst = a.ID(), b.ID()
		a.Send(pkt)
	}
	aud := New(n, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation without hook did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "queue-bound") || !strings.Contains(msg, "ports (") {
			t.Fatalf("panic message lacks rule and dump: %v", r)
		}
	}()
	aud.Check()
}
