package ndp

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

func newFan(pairs int) (*topo.Scenario, *Protocol) {
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, pairs)
	cfg.RTT = 100 * sim.Microsecond
	cfg.Collector = stats.NewFCTCollector()
	return s, New(s.Net, cfg)
}

// trims sums payload trims across all switch ports.
func trims(s *topo.Scenario) int64 {
	var n int64
	for _, sw := range s.Switches {
		for _, p := range sw.Ports() {
			if tq, ok := p.Queue().(*netsim.TrimmingQueue); ok {
				n += tq.Trims
			}
		}
	}
	return n
}

func TestSingleFlowCompletes(t *testing.T) {
	s, p := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if fct := f.FCT(); fct < 800*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Errorf("FCT = %v, want ~0.9-2ms", fct)
	}
	if s.Net.Dropped() != 0 || trims(s) != 0 {
		t.Errorf("drops=%d trims=%d on an uncontended path", s.Net.Dropped(), trims(s))
	}
}

func TestPullPerPacket(t *testing.T) {
	s, p := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	want := int64(f.NPkts) - int64(p.BlindPkts(f))
	if p.PullsSent != want {
		t.Errorf("PullsSent = %d, want %d", p.PullsSent, want)
	}
	if p.NacksSent != 0 {
		t.Errorf("NacksSent = %d on a clean path", p.NacksSent)
	}
}

func TestIncastTrimsInsteadOfDropping(t *testing.T) {
	// 8 windows blast into one downlink: data beyond 8 packets is
	// trimmed, every flow completes, and no data packet is dropped.
	s, p := newFan(8)
	var flows []*transport.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 500_000, 0))
	}
	s.Net.Run(5 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete under incast", f)
		}
	}
	if trims(s) == 0 {
		t.Error("expected payload trims under incast")
	}
	if p.NacksSent == 0 {
		t.Error("expected NACKs for trimmed packets")
	}
	if got := s.Net.DroppedOfType(netsim.Data); got != 0 {
		t.Errorf("%d full data packets dropped; trimming should prevent that", got)
	}
}

func TestWindowRecoversAfterCompetitorLeaves(t *testing.T) {
	// Fig. 11(c): NDP's fixed pull window self-clocks back to line rate
	// once the competing flow drains the shared queue.
	s, p := newFan(2)
	short := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	long := p.AddFlow(2, s.Senders[1], s.Receivers[1], 10_000_000, 0)
	s.Net.Run(sim.Second)
	if !short.Done || !long.Done {
		t.Fatal("flows did not complete")
	}
	// Stuck at half rate the 10MB flow would need ~16ms; windowed
	// self-clocking should finish it well below that.
	if fct := long.FCT(); fct > 14*sim.Millisecond {
		t.Errorf("long flow FCT = %v: window did not recover", fct)
	}
}

func TestHeaderCountsAreNotPayload(t *testing.T) {
	// A trimmed header must not mark its sequence as received.
	s, p := newFan(4)
	var flows []*transport.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 1_000_000, 0))
	}
	s.Net.Run(5 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete", f)
		}
	}
	// Every flow completed despite trims: each trimmed packet was
	// retransmitted in full. Delivered payload must cover every byte.
	var payload int64
	for _, h := range s.Receivers {
		payload += h.RxBytes
	}
	var want int64
	for _, f := range flows {
		want += f.Size
	}
	if payload < want {
		t.Errorf("delivered payload %d < flow bytes %d", payload, want)
	}
}

func TestUnresponsiveFlowHarmless(t *testing.T) {
	s, p := newFan(2)
	dead := p.AddUnresponsiveFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	live := p.AddFlow(2, s.Senders[1], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(100 * sim.Millisecond)
	if dead.Done {
		t.Error("unresponsive flow cannot complete")
	}
	if !live.Done {
		t.Fatal("live flow blocked")
	}
}

func TestRetransmissionsPrecedeNewData(t *testing.T) {
	// After a NACK, the next pull must trigger the NACKed sequence
	// before any new sequence. Drive the sender state machine directly.
	s, p := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 10_000_000, 0)
	// Record raw data arrivals (including duplicates, which the
	// protocol's own OnData hook deliberately filters out).
	var sent []int32
	inner := s.Receivers[0].Handler
	s.Receivers[0].Handler = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data && !pkt.Trimmed {
			sent = append(sent, pkt.Seq)
		}
		inner(pkt)
	}
	// Inject a NACK for seq 2 followed by two pulls at t=30ms (flow
	// still running).
	s.Net.Engine.Schedule(30*sim.Millisecond, func() {
		nack := &netsim.Packet{Flow: 1, Type: netsim.Nack, Seq: 2, Size: netsim.ControlSize,
			Src: s.Receivers[0].ID(), Dst: s.Senders[0].ID(), Prio: netsim.PrioControl}
		pull := &netsim.Packet{Flow: 1, Type: netsim.Pull, Seq: -1, Size: netsim.ControlSize,
			Src: s.Receivers[0].ID(), Dst: s.Senders[0].ID(), Prio: netsim.PrioControl}
		s.Senders[0].Receive(nack)
		before := len(sent)
		_ = before
		s.Senders[0].Receive(pull)
	})
	s.Net.Run(40 * sim.Millisecond)
	_ = f
	// Find the injected retransmission: seq 2 must appear again after
	// its original transmission.
	count2 := 0
	for _, q := range sent {
		if q == 2 {
			count2++
		}
	}
	if count2 < 2 {
		t.Errorf("seq 2 delivered %d times; NACK+pull should have retransmitted it", count2)
	}
}

func TestPullBudgetConservation(t *testing.T) {
	// Pulls issued = packets beyond the blind window + one per trimmed
	// packet (each trim requires one retransmission trigger), plus at
	// most a small timeout-recovery slack.
	s, p := newFan(2)
	f1 := p.AddFlow(1, s.Senders[0], s.Receivers[0], 3_000_000, 0)
	f2 := p.AddFlow(2, s.Senders[1], s.Receivers[1], 1_000_000, 0)
	s.Net.Run(sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not complete")
	}
	base := int64(f1.NPkts) + int64(f2.NPkts) - int64(p.BlindPkts(f1)) - int64(p.BlindPkts(f2))
	tr := trims(s)
	if p.PullsSent < base {
		t.Errorf("PullsSent = %d below the %d new-data pulls required", p.PullsSent, base)
	}
	if p.PullsSent > base+tr+64 {
		t.Errorf("PullsSent = %d exceeds %d new + %d trims + slack", p.PullsSent, base, tr)
	}
}

func TestNDPDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, uint64) {
		s, p := newFan(3)
		var last *transport.Flow
		for i := 0; i < 3; i++ {
			last = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 2_000_000, sim.Time(i)*40*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return last.End, p.PullsSent, s.Net.Engine.Executed
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Error("NDP run not deterministic")
	}
}
