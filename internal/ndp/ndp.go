// Package ndp implements the NDP baseline (Handley et al., SIGCOMM
// 2017) at the fidelity the paper's comparison depends on: senders blast
// the first window at line rate, switches trim payloads to headers when
// the data queue exceeds a small threshold instead of dropping, trimmed
// headers travel at the highest priority, receivers NACK trimmed packets
// and pace PULLs at the downlink rate, and senders retransmit NACKed
// packets ahead of new data when pulled.
package ndp

import (
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes NDP.
type Config struct {
	transport.Config

	// TrimThreshold is the data-queue length at which switches trim
	// payloads (paper and NDP default: 8).
	TrimThreshold int
	// CtrlQueueCap bounds the header/control band (default 256).
	CtrlQueueCap int
}

// DefaultConfig returns NDP's parameters.
func DefaultConfig() Config {
	return Config{TrimThreshold: 8, CtrlQueueCap: 256}
}

func (c Config) withDefaults() Config {
	if c.TrimThreshold == 0 {
		c.TrimThreshold = 8
	}
	if c.CtrlQueueCap == 0 {
		c.CtrlQueueCap = 256
	}
	return c
}

// SwitchQueue builds NDP's trimming switch buffer.
func (c Config) SwitchQueue() netsim.Queue {
	cc := c.withDefaults()
	return netsim.NewTrimming(cc.TrimThreshold, cc.CtrlQueueCap)
}

// HostQueue builds the host NIC queue: large, since NDP deliberately
// blasts the first window at line rate.
func (c Config) HostQueue() netsim.Queue { return netsim.NewPriority(2048) }

// Protocol is an NDP instance.
type Protocol struct {
	transport.Kernel
	cfg       Config
	senders   map[netsim.FlowID]*sender
	receivers map[netsim.FlowID]*rcvFlow
	pullers   map[netsim.NodeID]*puller
	installed map[netsim.NodeID]bool

	// PullsSent and NacksSent count receiver control traffic; Trims is
	// maintained by the switch queues (sum over ports if needed).
	PullsSent int64
	NacksSent int64
	// RTSReannounces counts sender-side RTS re-sends (armAnnounce);
	// PullsReplenished counts timeout-driven pull reissues for the
	// unsent tail (lost-pull recovery).
	RTSReannounces   int64
	PullsReplenished int64
}

type sender struct {
	f    *transport.Flow
	next int32
	rtx  []int32 // NACKed sequences awaiting a pull
}

type rcvFlow struct {
	f            *transport.Flow
	rcvd         *transport.Bitmap
	pullBudget   int32 // packets still to be triggered by pulls
	lastProgress sim.Time
	timer        sim.Timer
	// sentEst is the receiver-local estimate of the sender's send cursor:
	// one past the highest sequence seen in any data packet or trimmed
	// header. The timeout recovery uses it instead of peeking at sender
	// state, which may live on another engine shard.
	sentEst int32
	// backoff doubles the recovery-check interval (up to 64×RTT) while
	// the flow makes no progress.
	backoff sim.Time
}

type puller struct {
	host  *netsim.Host
	pacer *transport.Pacer
	queue []*rcvFlow // FIFO of flows owed one pull each
}

// New creates an NDP instance on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	p := &Protocol{
		Kernel:    transport.NewKernel(net, cfg.Config),
		cfg:       cfg.withDefaults(),
		senders:   make(map[netsim.FlowID]*sender),
		receivers: make(map[netsim.FlowID]*rcvFlow),
		pullers:   make(map[netsim.NodeID]*puller),
		installed: make(map[netsim.NodeID]bool),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("ndp.pulls_sent", func() int64 { return p.PullsSent })
		m.CounterFunc("ndp.nacks_sent", func() int64 { return p.NacksSent })
		m.CounterFunc("ndp.rts_reannounces", func() int64 { return p.RTSReannounces })
		m.CounterFunc("ndp.pulls_replenished", func() int64 { return p.PullsReplenished })
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "NDP" }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. The
// sharded runner instead splits registration across instances with
// AddPending/Release on the source shard and Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow that announces itself but never
// sends data.
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start (the home shard writes
// f.Start when it handles the release signal).
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	s := &sender{f: f}
	p.senders[f.ID] = s
	f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
	p.armAnnounce(f, 3*p.Cfg.RTT)
	if f.Unresponsive {
		return
	}
	blind := p.BlindPkts(f)
	for ; s.next < blind; s.next++ {
		f.Src.Send(p.NewData(f, s.next, netsim.PrioData))
	}
	p.UnsolicitedPkts += int64(blind)
}

// GrantAuthority returns the data packets authorized so far: the blind
// first window plus one per pull (each pull triggers exactly one send,
// retransmission or new). The audit grant-budget invariant is
// DataPacketsSent ≤ GrantAuthority.
func (p *Protocol) GrantAuthority() int64 {
	return p.UnsolicitedPkts + p.PullsSent
}

// OnHostCrash drops the protocol state this instance owns for flows
// touching the crashed host. A crashed sender kills its outgoing flows
// (the retransmit queue and send cursor are gone); a crashed receiver
// loses bitmap, pull budget, and queued pulls — those flows survive
// and are rebuilt by the sender's RTS re-announce after restart. On a
// sharded run the hook fires on every shard; each instance handles
// only the flow halves its shard owns.
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	for _, f := range p.OrderedFlows() {
		switch h {
		case f.Src:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
				p.Abort(f)
			}
			if p.OwnsSender(f) && !f.SenderDone {
				delete(p.senders, f.ID)
				// The flow can never finish; stop the announce chain.
				f.SenderDone = true
			}
		case f.Dst:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
			}
			if p.OwnsSender(f) && f.SenderStarted && !f.SenderDone {
				// Clear the sender-side flag so re-announcement resumes.
				f.SenderHeard = false
				p.armAnnounce(f, 3*p.Cfg.RTT)
			}
		}
	}
	// The crashed host's pull pacer queue (flow refs, no packets) dies
	// with it; emitPull skips Done flows, but stale entries for crashed
	// receiver state would issue pulls against forgotten bitmaps.
	if pl := p.pullers[h.ID()]; pl != nil {
		pl.queue = pl.queue[:0]
	}
}

// OnHostRestart is a no-op for NDP: surviving flows towards the host
// are re-announced by the sender-side armAnnounce chain.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

// dropRcvState forgets flow f's receiver state (timer cancelled).
// No-op if no state exists.
func (p *Protocol) dropRcvState(f *transport.Flow) {
	r := p.receivers[f.ID]
	if r == nil {
		return
	}
	r.timer.Cancel()
	delete(p.receivers, f.ID)
}

// armAnnounce re-sends the flow's RTS with exponential backoff (3×RTT
// initial, 64×RTT cap) until receiver state exists. If the RTS and the
// whole blind window are lost (or trimmed headers dropped from a full
// control band), no rcvFlow is created, so the recovery timer that
// would NACK the holes never arms. Self-cancels once a receiver control
// packet reaches the sender (SenderHeard — receiver state then exists
// and its timeout machinery owns recovery) or the completion signal
// does (SenderDone); both flags are sender-shard state.
func (p *Protocol) armAnnounce(f *transport.Flow, interval sim.Time) {
	p.Engine().Schedule(interval, func() {
		if f.SenderHeard || f.SenderDone {
			return
		}
		f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
		p.RTSReannounces++
		next := interval * 2
		if max := 64 * p.Cfg.RTT; next > max {
			next = max
		}
		p.armAnnounce(f, next)
	})
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	s := p.senders[pkt.Flow]
	if s == nil || s.f.Unresponsive {
		return
	}
	switch pkt.Type {
	case netsim.Nack:
		// The named packet was trimmed: queue it for retransmission on
		// the next pull.
		s.rtx = append(s.rtx, pkt.Seq)
	case netsim.Pull:
		// One pull, one packet: retransmissions first, then new data.
		if len(s.rtx) > 0 {
			seq := s.rtx[0]
			s.rtx = s.rtx[1:]
			s.f.Src.Send(p.NewData(s.f, seq, netsim.PrioData))
			return
		}
		if s.next < s.f.NPkts {
			s.f.Src.Send(p.NewData(s.f, s.next, netsim.PrioData))
			s.next++
			return
		}
		// Surplus pull with nothing left unsent: echo the send cursor as
		// a header for the last emitted sequence. The receiver's cursor
		// estimate only advances on arrivals, so when the tail of the
		// already-sent range is lost wholesale (a link outage, a crash),
		// its timeout rounds under-aim and replenish pulls for data that
		// does not exist. The echo raises the estimate to the true
		// cursor — and, if the echoed sequence itself is missing, draws
		// an immediate NACK — so the next round retransmits the real
		// holes.
		if s.next > 0 {
			s.f.Src.Send(p.NewCtrl(netsim.Header, s.f, s.next-1, false))
		}
	}
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.RTS:
		p.rcvFor(pkt)
	case netsim.Data:
		if pkt.Trimmed {
			p.onHeader(pkt)
			return
		}
		r := p.rcvFor(pkt)
		if r == nil || r.f.Done {
			return
		}
		if pkt.Seq+1 > r.sentEst {
			r.sentEst = pkt.Seq + 1
		}
		if !r.rcvd.Set(pkt.Seq) {
			return
		}
		r.lastProgress = p.Now()
		p.DeliverData(r.f, pkt)
		if r.rcvd.Full() {
			p.finish(r)
			return
		}
		p.enqueuePull(r)
	case netsim.Header:
		p.onHeader(pkt)
	}
}

// onHeader handles a trimmed packet: NACK the sender so it queues the
// retransmission, and schedule a pull to trigger it.
func (p *Protocol) onHeader(pkt *netsim.Packet) {
	r := p.rcvFor(pkt)
	if r == nil || r.f.Done {
		return
	}
	if pkt.Seq+1 > r.sentEst {
		r.sentEst = pkt.Seq + 1
	}
	if r.rcvd.Get(pkt.Seq) {
		return
	}
	n := p.NewCtrl(netsim.Nack, r.f, pkt.Seq, true)
	r.f.Dst.Send(n)
	p.NacksSent++
	// The trimmed packet consumed one send; it must be sent again.
	r.pullBudget++
	p.enqueuePull(r)
}

func (p *Protocol) rcvFor(pkt *netsim.Packet) *rcvFlow {
	if r, ok := p.receivers[pkt.Flow]; ok {
		return r
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Done {
		return nil // unknown, completed, or crash-killed flow
	}
	r := &rcvFlow{
		f: f, rcvd: transport.NewBitmap(f.NPkts),
		pullBudget:   f.NPkts - p.BlindPkts(f),
		lastProgress: p.Now(),
	}
	p.receivers[pkt.Flow] = r
	// Announce confirmation (see core/amrt.receiverFor): stop the
	// sender's re-announce timer without waiting for the first pull.
	f2 := f
	p.Shard().Signal(f.Dst, f.Src, func() { f2.SenderHeard = true })
	p.armTimeout(r)
	return r
}

func (p *Protocol) enqueuePull(r *rcvFlow) {
	if r.pullBudget <= 0 {
		return
	}
	r.pullBudget--
	pl := p.pullerOf(r.f.Dst)
	pl.queue = append(pl.queue, r)
	pl.pacer.Kick()
}

func (p *Protocol) pullerOf(h *netsim.Host) *puller {
	if pl, ok := p.pullers[h.ID()]; ok {
		return pl
	}
	pl := &puller{host: h}
	tick := h.LinkRate().TxTime(p.Cfg.MSS)
	pl.pacer = transport.NewPacer(p.Engine(), tick, func() bool { return p.emitPull(pl) })
	p.pullers[h.ID()] = pl
	return pl
}

func (p *Protocol) emitPull(pl *puller) bool {
	for len(pl.queue) > 0 {
		r := pl.queue[0]
		pl.queue = pl.queue[1:]
		if r.f.Done {
			continue
		}
		pull := p.NewCtrl(netsim.Pull, r.f, -1, true)
		r.f.Dst.Send(pull)
		p.PullsSent++
		return true
	}
	return false
}

func (p *Protocol) armTimeout(r *rcvFlow) {
	interval := p.Cfg.RTT
	if r.backoff > interval {
		interval = r.backoff
	}
	r.timer = p.Engine().Schedule(interval, func() { p.onTimeout(r) })
}

// onTimeout recovers from losses the trim path cannot see (e.g. control
// drops): NACK + pull for each missing packet that should have arrived.
func (p *Protocol) onTimeout(r *rcvFlow) {
	if r.f.Done {
		return
	}
	if p.Now()-r.lastProgress >= p.Cfg.RTT {
		limit := p.BDPPkts(r.f.Dst.LinkRate())
		issued := 0
		// Expected: everything the sender has demonstrably emitted — the
		// receiver-local cursor estimate (a lower bound on the true send
		// cursor; anything above it is retried in a later, backed-off
		// round once evidence of its emission arrives).
		sent := r.sentEst
		for seq := r.rcvd.NextClear(0); seq >= 0 && seq < sent && issued < limit; seq = r.rcvd.NextClear(seq + 1) {
			n := p.NewCtrl(netsim.Nack, r.f, seq, true)
			r.f.Dst.Send(n)
			p.NacksSent++
			pl := p.pullerOf(r.f.Dst)
			pl.queue = append(pl.queue, r)
			pl.pacer.Kick()
			issued++
		}
		// A lost pull strips the send trigger for one unsent-tail packet
		// permanently: the pull budget was spent when the pull was
		// enqueued, but the sender never saw it, so nothing will ever ask
		// for that packet again. With no progress for an RTT, reissue
		// pulls for the whole unsent remainder (sharing the NACK loop's
		// budget); a surplus pull is a no-op at a sender with nothing
		// left to send, so over-reissuing cannot duplicate data. The
		// cursor estimate may undercount the true unsent tail, in which
		// case the next backed-off round covers the rest.
		unsent := int(r.f.NPkts - sent)
		if budget := limit - issued; unsent > budget {
			unsent = budget
		}
		if unsent > 0 {
			pl := p.pullerOf(r.f.Dst)
			for i := 0; i < unsent; i++ {
				pl.queue = append(pl.queue, r)
			}
			p.PullsReplenished += int64(unsent)
			pl.pacer.Kick()
		}
		if r.backoff < 64*p.Cfg.RTT {
			if r.backoff == 0 {
				r.backoff = p.Cfg.RTT
			}
			r.backoff *= 2
		}
	} else {
		r.backoff = 0
	}
	p.armTimeout(r)
}

func (p *Protocol) finish(r *rcvFlow) {
	r.timer.Cancel()
	p.Complete(r.f)
}
