package core

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// newFan builds a Fig-2-style fan with AMRT queues and markers.
func newFan(pairs int) (*topo.Scenario, *Protocol, *stats.FCTCollector) {
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, pairs)
	col := stats.NewFCTCollector()
	cfg.Collector = col
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	return s, p, col
}

func TestSingleFlowCompletes(t *testing.T) {
	s, p, col := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if col.Count() != 1 {
		t.Fatalf("collector has %d flows", col.Count())
	}
	// Ideal: ~1MB at 10G = 800µs serialization + 100µs propagation. Allow
	// overhead for grant clocking but require the right magnitude.
	fct := f.FCT()
	if fct < 800*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Errorf("FCT = %v, want ~0.9-2ms", fct)
	}
	if s.Net.Dropped() != 0 {
		t.Errorf("%d drops on an uncontended path", s.Net.Dropped())
	}
}

func TestTinyFlowSingleBlindWindow(t *testing.T) {
	s, p, _ := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 3000, 0) // 2 packets
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// Entirely inside the blind window: no grants should be needed.
	if p.GrantsSent != 0 {
		t.Errorf("tiny flow triggered %d grants", p.GrantsSent)
	}
	// FCT ≈ one-way propagation (50µs) + 2 packet serializations.
	if f.FCT() > 60*sim.Microsecond {
		t.Errorf("tiny flow FCT = %v", f.FCT())
	}
}

func TestGrantPerPacketAccounting(t *testing.T) {
	s, p, _ := newFan(1)
	const size = 2_000_000
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], size, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// Every packet beyond the blind window is granted; grants may carry
	// 1 or 2 credits, so grant count is in [ungranted/2, ungranted].
	blind := int64(p.BlindPkts(f))
	ungranted := int64(f.NPkts) - blind
	if p.GrantsSent < ungranted/2 || p.GrantsSent > ungranted {
		t.Errorf("GrantsSent = %d for %d post-blind packets", p.GrantsSent, ungranted)
	}
	if p.RecoveryGrants != 0 {
		t.Errorf("unexpected recovery grants: %d", p.RecoveryGrants)
	}
}

func TestSaturatedFlowMostlyUnmarked(t *testing.T) {
	s, p, _ := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 5_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// A single flow saturates its own path: after the ramp, packets are
	// back-to-back and should not keep the anti-ECN mark.
	if p.GrantsSent > 0 && float64(p.MarkedGrants)/float64(p.GrantsSent) > 0.1 {
		t.Errorf("%d/%d grants marked on a saturated path", p.MarkedGrants, p.GrantsSent)
	}
}

func TestAntiECNRampFillsIdleLink(t *testing.T) {
	// The distilled §4 mechanism: a flow starting with a tiny window on
	// an idle path leaves inter-packet gaps larger than one MSS, so
	// every grant comes back marked and the window doubles each RTT. A
	// conservative protocol would stay at W=8 forever (1 packet per
	// 12.5µs = 9.6% utilization); AMRT must converge to line rate.
	cfg := DefaultConfig()
	cfg.BlindWindow = 8
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, 1)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 8_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if p.MarkedGrants == 0 {
		t.Fatal("no marked grants on an under-utilized path")
	}
	// Stuck at W=8 the flow would take 5334/8 × 100µs ≈ 67ms; at line
	// rate ~6.5ms. Require the ramp to get most of the way there.
	if fct := f.FCT(); fct > 10*sim.Millisecond {
		t.Errorf("FCT = %v: anti-ECN ramp failed to fill the idle link", fct)
	}
}

func TestDynamicTrafficKeepsLinkBusy(t *testing.T) {
	// Four flows share the fan bottleneck and finish at different
	// times; AMRT must keep the bottleneck near-full until the last
	// flow is done (Fig. 2's failure mode for conservative protocols).
	s, p, _ := newFan(4)
	mon := netsim.Attach(s.Bottlenecks[0])
	sizes := []int64{1_000_000, 2_000_000, 4_000_000, 12_000_000}
	flows := make([]*transport.Flow, 4)
	for i, sz := range sizes {
		flows[i] = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], sz, 0)
	}
	s.Net.Run(sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete", f)
		}
	}
	last := flows[3].End
	// Total 19MB over a 10G link: lower bound 15.2ms. A conservative
	// protocol stuck at the initial fair share would need 4×9.6ms=38ms
	// for the last flow alone.
	// AMRT's clumped self-clock fills consecutive vacancies at the
	// paper's worst-case rate (Eq. 5: one packet per RTT), so demand
	// >0.78 here; a conservative protocol stuck at the initial fair
	// share would sit near 0.55.
	util := float64(mon.TotalBytes()) * 8 / (float64(10*sim.Gbps) * last.Seconds())
	if util < 0.78 {
		t.Errorf("bottleneck utilization until last completion = %.2f, want >0.78", util)
	}
	if last > 20*sim.Millisecond {
		t.Errorf("last flow finished at %v, want <20ms", last)
	}
}

func TestIncastLossRecovery(t *testing.T) {
	// 8 synchronized senders blast their blind windows into one
	// receiver: the 8-packet data cap must drop most of it and the
	// timeout path must still complete every flow.
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, 8)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	var flows []*transport.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 300_000, 0))
	}
	s.Net.Run(2 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete under incast", f)
		}
	}
	if s.Net.Dropped() == 0 {
		t.Error("expected drops at the 8-packet data cap")
	}
	if p.RecoveryGrants == 0 {
		t.Error("expected timeout-driven recovery grants")
	}
}

func TestQueueStaysBounded(t *testing.T) {
	s, p, _ := newFan(4)
	mon := netsim.Attach(s.Bottlenecks[0])
	for i := 0; i < 4; i++ {
		p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 4_000_000, 0)
	}
	s.Net.Run(sim.Second)
	// Control band + 8-packet data cap: the egress queue must never
	// exceed the configured caps.
	if mon.MaxQueueLen > 8+DefaultConfig().CtrlQueueCap {
		t.Errorf("bottleneck queue reached %d packets", mon.MaxQueueLen)
	}
}

func TestUnresponsiveFlowDoesNotBlockOthers(t *testing.T) {
	s, p, _ := newFan(2)
	dead := p.AddUnresponsiveFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	live := p.AddFlow(2, s.Senders[1], s.Receivers[1], 1_000_000, 0)
	s.Net.Run(100 * sim.Millisecond)
	if dead.Done {
		t.Error("unresponsive flow cannot complete")
	}
	if !live.Done {
		t.Fatal("live flow blocked by unresponsive one")
	}
	if live.FCT() > 2*sim.Millisecond {
		t.Errorf("live flow FCT = %v", live.FCT())
	}
}

func TestMultiBottleneckReclaim(t *testing.T) {
	// Fig-1 shape: f0 crosses both bottlenecks, f1 shares the first.
	// When f2/f3 squeeze f0 at the second bottleneck, f1 must take over
	// the released first-bottleneck bandwidth.
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewChain(sc)
	cfg.RTT = 100 * sim.Microsecond
	col := stats.NewFCTCollector()
	cfg.Collector = col
	p := New(s.Net, cfg)
	mon := netsim.Attach(s.Bottlenecks[0])

	p.AddFlow(1, s.Senders[0], s.Receivers[0], 20_000_000, 0)                 // f0 both bottlenecks
	f1 := p.AddFlow(2, s.Senders[1], s.Receivers[1], 50_000_000, 0)           // f1 first bottleneck
	p.AddFlow(3, s.Senders[2], s.Receivers[2], 20_000_000, sim.Millisecond)   // f2 second bottleneck
	p.AddFlow(4, s.Senders[3], s.Receivers[3], 20_000_000, 3*sim.Millisecond) // f3 second bottleneck
	_ = f1

	// Measure first-bottleneck utilization between 4ms and 8ms, when f0
	// is squeezed to ~1/3 at the second bottleneck.
	var util float64
	s.Net.Engine.ScheduleAt(4*sim.Millisecond, func() { mon.ResetWindow(4 * sim.Millisecond) })
	s.Net.Engine.ScheduleAt(8*sim.Millisecond, func() { util = mon.Utilization(8 * sim.Millisecond) })
	s.Net.Run(sim.Second)
	if util < 0.9 {
		t.Errorf("first bottleneck utilization %.2f during squeeze, want >0.9 (AMRT reclaims)", util)
	}
}

func TestMarkedGrantEchoImpliesCE(t *testing.T) {
	// Every grant with ECN-Echo set must have been triggered by a data
	// packet that still carried CE at the receiver. Intercept both
	// directions of one under-utilized flow and cross-check.
	cfg := DefaultConfig()
	cfg.BlindWindow = 8
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, 1)
	cfg.RTT = 100 * sim.Microsecond
	ceArrivals := 0
	cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
		if pkt.CE {
			ceArrivals++
		}
	}
	p := New(s.Net, cfg)
	echoed := 0
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 4_000_000, 0)
	orig := s.Senders[0].Handler
	s.Senders[0].Handler = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Grant && pkt.Echo {
			echoed++
		}
		orig(pkt)
	}
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if echoed == 0 {
		t.Fatal("ramp scenario produced no marked grants")
	}
	if echoed > ceArrivals {
		t.Errorf("%d marked grants but only %d CE arrivals", echoed, ceArrivals)
	}
	if int64(echoed) != p.MarkedGrants {
		t.Errorf("observed %d marked grants, protocol counted %d", echoed, p.MarkedGrants)
	}
}

func TestRecoveryPacedNoDuplicateStorm(t *testing.T) {
	// Force heavy blind loss (incast) and verify recovery does not
	// duplicate wildly: total data deliveries (first + dup) stay within
	// 1.5× the payload packet count.
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	sc.Marker = cfg.NewMarker
	s := topo.NewFanN(sc, 8)
	cfg.RTT = 100 * sim.Microsecond
	p := New(s.Net, cfg)
	var flows []*transport.Flow
	var totalPkts int64
	for i := 0; i < 8; i++ {
		f := p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 400_000, 0)
		flows = append(flows, f)
		totalPkts += int64(f.NPkts)
	}
	s.Net.Run(5 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatal("incast flow incomplete")
		}
	}
	delivered := s.Receivers[0].RxPackets // includes control + duplicates
	if delivered > 3*totalPkts {
		t.Errorf("receiver saw %d packets for %d payload packets: duplicate storm", delivered, totalPkts)
	}
}

func TestAMRTDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, uint64) {
		s, p, _ := newFan(3)
		var last *transport.Flow
		for i := 0; i < 3; i++ {
			last = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 2_000_000, sim.Time(i)*50*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return last.End, p.GrantsSent, s.Net.Engine.Executed
	}
	e1, g1, x1 := run()
	e2, g2, x2 := run()
	if e1 != e2 || g1 != g2 || x1 != x2 {
		t.Errorf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, g1, x1, e2, g2, x2)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.DataQueueCap != 8 || c.GrantBurst != 2 || c.GapFactor != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	q := Config{}.SwitchQueue().(*netsim.PriorityQueue)
	// Data band capped at 8.
	for i := 0; i < 8; i++ {
		if !q.Enqueue(&netsim.Packet{Type: netsim.Data, Prio: netsim.PrioData, Size: netsim.MSS}, 0) {
			t.Fatal("data rejected below cap")
		}
	}
	if q.Enqueue(&netsim.Packet{Type: netsim.Data, Prio: netsim.PrioData, Size: netsim.MSS}, 0) {
		t.Error("9th data packet accepted above the 8-packet cap")
	}
}

func TestAddFlowValidation(t *testing.T) {
	s, p, _ := newFan(1)
	defer func() {
		if recover() == nil {
			t.Error("zero-size flow did not panic")
		}
	}()
	p.AddFlow(1, s.Senders[0], s.Receivers[0], 0, 0)
}
