// Package core implements AMRT, the paper's contribution: a
// receiver-driven transport in which switches set the ECN CE bit on data
// packets dequeued after an idle gap of at least one MSS (anti-ECN,
// §4.1), receivers echo the bit on the grants they generate one-per-data
// packet (§4.2), and senders answer a marked grant with two data packets
// instead of one (§4.3), filling spare bandwidth within a bounded number
// of RTTs while the 8-packet switch data queue keeps latency near zero
// (§6).
package core

import (
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes AMRT.
type Config struct {
	transport.Config

	// DataQueueCap is the switch data-queue threshold beyond which data
	// packets are dropped (§6; default 8).
	DataQueueCap int
	// CtrlQueueCap bounds the switch control band (default 256).
	CtrlQueueCap int
	// GrantBurst is the number of packets a marked grant triggers
	// (default 2, the paper's rule; the ablation sweeps it).
	GrantBurst int
	// Marking configures the anti-ECN marker (reference size, gap
	// factor, combine mode).
	RefSize   int
	GapFactor float64
	Combine   netsim.CombineMode
	// RecoveryCap bounds how many recovery grants one timeout tick may
	// issue per flow (default 16; re-blasting a whole lost blind window
	// into 8-packet queues would only reproduce the loss).
	RecoveryCap int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		DataQueueCap: 8,
		CtrlQueueCap: 256,
		GrantBurst:   2,
		RefSize:      netsim.MSS,
		GapFactor:    1,
		Combine:      netsim.CombineAND,
		RecoveryCap:  16,
	}
}

// WithDefaults returns the config with zero fields replaced by the
// paper's defaults.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DataQueueCap == 0 {
		c.DataQueueCap = d.DataQueueCap
	}
	if c.CtrlQueueCap == 0 {
		c.CtrlQueueCap = d.CtrlQueueCap
	}
	if c.GrantBurst == 0 {
		c.GrantBurst = d.GrantBurst
	}
	if c.RefSize == 0 {
		c.RefSize = d.RefSize
	}
	if c.GapFactor == 0 {
		c.GapFactor = d.GapFactor
	}
	if c.RecoveryCap == 0 {
		c.RecoveryCap = d.RecoveryCap
	}
	return c
}

// SwitchQueue builds the AMRT switch egress queue: strict priority with
// a roomy control band and the paper's tiny data cap.
func (c Config) SwitchQueue() netsim.Queue {
	cc, dc := c.CtrlQueueCap, c.DataQueueCap
	if cc == 0 {
		cc = DefaultConfig().CtrlQueueCap
	}
	if dc == 0 {
		dc = DefaultConfig().DataQueueCap
	}
	return netsim.NewPriority(cc, dc, dc)
}

// HostQueue builds the host NIC queue: large, since the sender may
// legitimately buffer its own blind window.
func (c Config) HostQueue() netsim.Queue {
	return netsim.NewPriority(1024)
}

// NewMarker builds the anti-ECN egress marker.
func (c Config) NewMarker() netsim.DequeueMarker {
	cc := c.withDefaults()
	return &netsim.AntiECNMarker{RefSize: cc.RefSize, GapFactor: cc.GapFactor, Mode: cc.Combine}
}

// Protocol is an AMRT instance bound to one network.
type Protocol struct {
	transport.Kernel
	cfg       Config
	senders   map[netsim.FlowID]*sender
	receivers map[netsim.FlowID]*receiver
	installed map[netsim.NodeID]bool

	// GrantsSent and MarkedGrants count receiver-side grant traffic.
	GrantsSent   int64
	MarkedGrants int64
	// RecoveryGrants counts timeout-driven reissues.
	RecoveryGrants int64
	// RTSReannounces counts sender-side RTS re-sends (armAnnounce).
	RTSReannounces int64

	// grantsInFlight tracks, over all live receivers, granted packets
	// whose data has not yet arrived. Maintained incrementally at the
	// grant/arrival/finish sites so the telemetry sampler reads it in
	// O(1) instead of scanning the receiver map every tick.
	grantsInFlight int64

	// grantPacers pace normal grants per receiving host at the downlink
	// packet rate, the standard receiver-driven discipline (§4.2 builds
	// on "the existing receiver-driven transmission mechanism"):
	// echoing a burst of arrivals as an instantaneous burst of grants
	// would make the sender burst straight into the 8-packet switch
	// caps.
	grantPacers map[netsim.NodeID]*grantPacer

	// recPacers pace recovery grants per receiving host at the downlink
	// packet rate. Without pacing, the roughly synchronized per-flow
	// timeout ticks of many flows fire their reissues as one burst into
	// the 8-packet switch queues, the retransmissions drop each other,
	// and the recovery tail crawls.
	recPacers map[netsim.NodeID]*recPacer
}

type grantPacer struct {
	pacer *transport.Pacer
	queue []*netsim.Packet
}

type recPacer struct {
	pacer *transport.Pacer
	queue []recReq
}

type recReq struct {
	r   *receiver
	seq int32
}

type sender struct {
	f    *transport.Flow
	next int32 // next unsent sequence number
}

type receiver struct {
	f       *transport.Flow
	rcvd    *transport.Bitmap
	granted int32 // packets authorized so far, including the blind window
	// snapshots ring-buffers (time, granted) pairs taken at each
	// timeout tick. A hole is overdue only if it was already granted at
	// a snapshot older than the overdue window — §6's 1×RTT rule
	// measured from when the grant could have been answered, with the
	// window following the *observed* grant→arrival delay: a fixed
	// margin under queueing declares in-flight packets lost, and the
	// spurious retransmissions feed the very queues that delayed them.
	snapshots [8]grantSnapshot
	snapHead  int
	// srtt is the EWMA of observed recovery-grant→arrival delays.
	srtt sim.Time
	// reissuedAt remembers when each hole's recovery grant was emitted
	// so a still-in-flight retransmission is not duplicated; inRecovery
	// marks holes waiting in the recovery pacer's queue.
	reissuedAt   map[int32]sim.Time
	inRecovery   map[int32]bool
	lastProgress sim.Time
	timer        sim.Timer
	// backoff doubles the check interval (up to 64×RTT) while no
	// progress occurs, bounding the event cost of silent senders.
	backoff sim.Time
}

type grantSnapshot struct {
	at      sim.Time
	granted int32
	valid   bool
}

// overdueWindow is how long a granted packet may be outstanding before
// the receiver reissues its grant: twice the observed grant→arrival
// delay, never less than 3 base RTTs until a sample exists.
func (r *receiver) overdueWindow(baseRTT sim.Time) sim.Time {
	w := 3 * baseRTT
	if r.srtt > 0 && 2*r.srtt > w {
		w = 2 * r.srtt
	}
	return w
}

// grantedBefore returns the granted count at the newest snapshot older
// than cutoff (0 if none is old enough).
func (r *receiver) grantedBefore(cutoff sim.Time) int32 {
	best := int32(0)
	bestAt := sim.Time(-1)
	for _, s := range r.snapshots {
		if s.valid && s.at <= cutoff && s.at > bestAt {
			best, bestAt = s.granted, s.at
		}
	}
	return best
}

func (r *receiver) snapshot(now sim.Time) {
	r.snapshots[r.snapHead] = grantSnapshot{at: now, granted: r.granted, valid: true}
	r.snapHead = (r.snapHead + 1) % len(r.snapshots)
}

// New creates an AMRT protocol on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	p := &Protocol{
		Kernel:      transport.NewKernel(net, cfg.Config),
		cfg:         cfg.withDefaults(),
		senders:     make(map[netsim.FlowID]*sender),
		receivers:   make(map[netsim.FlowID]*receiver),
		installed:   make(map[netsim.NodeID]bool),
		grantPacers: make(map[netsim.NodeID]*grantPacer),
		recPacers:   make(map[netsim.NodeID]*recPacer),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("amrt.grants_sent", func() int64 { return p.GrantsSent })
		m.CounterFunc("amrt.marked_grants", func() int64 { return p.MarkedGrants })
		m.CounterFunc("amrt.recovery_grants", func() int64 { return p.RecoveryGrants })
		m.CounterFunc("amrt.rts_reannounces", func() int64 { return p.RTSReannounces })
		// Grants whose data has not yet arrived, summed over live
		// flows (maintained incrementally; see grantsInFlight).
		m.Series("amrt.grants_in_flight", func(sim.Time) float64 {
			return float64(p.grantsInFlight)
		})
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "AMRT" }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. A zero id
// auto-assigns one. The sharded runner instead splits registration
// across instances with AddPending/Release on the source shard and
// Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow whose sender announces itself but
// never sends data (§8.2 stress).
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start. It runs on the sender's
// shard and does not write f.Start — the flow's home shard records that
// when it handles the release signal.
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side (flow table entry plus destination host handler). On a
// single-shard run the creating instance adopts its own flow, which
// just installs the destination handler.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	s := &sender{f: f}
	p.senders[f.ID] = s
	f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
	p.armAnnounce(f, 3*p.Cfg.RTT)
	if f.Unresponsive {
		return
	}
	// Blind first window (§6): start immediately rather than waiting a
	// full RTT for grants; the tiny switch data cap bounds the damage.
	blind := p.BlindPkts(f)
	for ; s.next < blind; s.next++ {
		f.Src.Send(p.NewData(f, s.next, netsim.PrioData))
	}
	p.UnsolicitedPkts += int64(blind)
}

// GrantAuthority returns the number of data packets the receivers'
// control traffic has authorized so far: the unsolicited allowance plus
// one per unmarked grant, GrantBurst per marked grant, and one per
// recovery grant. The audit grant-budget invariant is
// DataPacketsSent ≤ GrantAuthority.
func (p *Protocol) GrantAuthority() int64 {
	return p.UnsolicitedPkts +
		(p.GrantsSent - p.MarkedGrants) +
		p.MarkedGrants*int64(p.cfg.GrantBurst) +
		p.RecoveryGrants
}

// OnHostCrash drops the protocol state this instance owns for flows
// touching the crashed host. A crashed sender loses its pacer position
// and retransmit state, so its outgoing flows die with it (Outcome
// killed-by-crash). A crashed receiver loses bitmap and grant budget;
// the flow itself survives — the sender's RTS re-announce rebuilds
// receiver state from scratch after the host restarts.
//
// On a sharded run the fault layer fires this hook on every shard at
// the crash instant; each instance handles only the flow halves its
// shard owns (receiver side on the home shard, sender side on the
// source shard), so the aggregate effect equals the single-engine run.
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	for _, f := range p.OrderedFlows() {
		switch h {
		case f.Src:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropReceiverState(f)
				p.Abort(f)
			}
			if p.OwnsSender(f) && !f.SenderDone {
				delete(p.senders, f.ID)
				// The flow can never finish; stop the announce chain.
				f.SenderDone = true
			}
		case f.Dst:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropReceiverState(f)
			}
			if p.OwnsSender(f) && f.SenderStarted && !f.SenderDone {
				// The crash destroyed everything the sender's earlier grants
				// proved; clear the heard flag so re-announcement resumes.
				f.SenderHeard = false
				p.armAnnounce(f, 3*p.Cfg.RTT)
			}
		}
	}
	// Grants queued in the crashed host's software pacers die with it;
	// the packets go back to the pool (they were never injected). Pacer
	// state exists only in the instance owning the host, so the lookups
	// are nil everywhere else.
	if gp := p.grantPacers[h.ID()]; gp != nil {
		for _, g := range gp.queue {
			netsim.ReleasePacket(g)
		}
		gp.queue = gp.queue[:0]
	}
	if rp := p.recPacers[h.ID()]; rp != nil {
		rp.queue = rp.queue[:0]
	}
}

// OnHostRestart is a no-op for AMRT: surviving flows towards the host
// are re-announced by the sender-side armAnnounce chain, which keeps
// firing until receiver state exists again.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

// dropReceiverState forgets flow f's receiver (timer cancelled,
// grants-in-flight ledger rebalanced). No-op if no state exists.
func (p *Protocol) dropReceiverState(f *transport.Flow) {
	r := p.receivers[f.ID]
	if r == nil {
		return
	}
	r.timer.Cancel()
	p.grantsInFlight -= int64(r.granted) - int64(r.rcvd.Count())
	delete(p.receivers, f.ID)
}

// armAnnounce re-sends the flow's RTS with exponential backoff (3×RTT
// initial, 64×RTT cap) until the sender hears from the receiver. If the
// RTS and the entire blind window are lost — a link flap or a
// control-loss burst — the receiver never learns the flow exists, so no
// receiver-side timer can recover it; this sender-side announce is the
// only escape. It self-cancels once a grant reaches the sender
// (SenderHeard — every later recovery is receiver-driven) or the
// completion signal does (SenderDone); both flags are sender-shard
// state, so the check never reads across shards.
func (p *Protocol) armAnnounce(f *transport.Flow, interval sim.Time) {
	p.Engine().Schedule(interval, func() {
		if f.SenderHeard || f.SenderDone {
			return
		}
		f.Src.Send(p.NewCtrl(netsim.RTS, f, -1, false))
		p.RTSReannounces++
		next := interval * 2
		if max := 64 * p.Cfg.RTT; next > max {
			next = max
		}
		p.armAnnounce(f, next)
	})
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Grant {
		return
	}
	s := p.senders[pkt.Flow]
	if s == nil || s.f.Unresponsive {
		return
	}
	if pkt.Seq >= 0 {
		// Recovery grant: (re)transmit the named packet.
		s.f.Src.Send(p.NewData(s.f, pkt.Seq, netsim.PrioData))
		if pkt.Seq >= s.next {
			s.next = pkt.Seq + 1
		}
		return
	}
	// Normal grant: a marked grant (ECN-Echo set) authorizes GrantBurst
	// packets, an unmarked one a single packet. The receiver bumped its
	// own accounting by the same amount when it set Echo.
	n := 1
	if pkt.Echo {
		n = p.cfg.GrantBurst
	}
	for i := 0; i < n && s.next < s.f.NPkts; i++ {
		s.f.Src.Send(p.NewData(s.f, s.next, netsim.PrioData))
		s.next++
	}
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.RTS:
		p.receiverFor(pkt)
	case netsim.Data:
		r := p.receiverFor(pkt)
		if r == nil || r.f.Done {
			return
		}
		if at, ok := r.reissuedAt[pkt.Seq]; ok {
			// Recovery round-trip sample: grant reissue → arrival.
			sample := p.Now() - at
			if r.srtt == 0 {
				r.srtt = sample
			} else {
				r.srtt = (7*r.srtt + sample) / 8
			}
			delete(r.reissuedAt, pkt.Seq)
		}
		if !r.rcvd.Set(pkt.Seq) {
			return // duplicate: no grant, no progress
		}
		p.grantsInFlight--
		r.lastProgress = p.Now()
		p.DeliverData(r.f, pkt)
		if r.rcvd.Full() {
			p.finish(r)
			return
		}
		// One grant per arriving data packet while ungranted packets
		// remain; copy the CE bit into the grant's ECN-Echo (§4.2).
		want := r.f.NPkts - r.granted
		if want <= 0 {
			return
		}
		n := int32(1)
		if pkt.CE && int32(p.cfg.GrantBurst) <= want {
			n = int32(p.cfg.GrantBurst)
		}
		g := p.NewCtrl(netsim.Grant, r.f, -1, true)
		g.Echo = pkt.CE && n > 1
		r.granted += n
		p.grantsInFlight += int64(n)
		p.GrantsSent++
		if g.Echo {
			p.MarkedGrants++
		}
		p.sendGrantPaced(r.f.Dst, g)
	}
}

// sendGrantPaced queues a grant on the receiving host's pacer.
func (p *Protocol) sendGrantPaced(h *netsim.Host, g *netsim.Packet) {
	gp := p.grantPacers[h.ID()]
	if gp == nil {
		gp = &grantPacer{}
		tick := h.LinkRate().TxTime(p.Cfg.MSS)
		gp.pacer = transport.NewPacer(p.Engine(), tick, func() bool {
			if len(gp.queue) == 0 {
				return false
			}
			out := gp.queue[0]
			gp.queue = gp.queue[1:]
			h.Send(out)
			return true
		})
		p.grantPacers[h.ID()] = gp
	}
	gp.queue = append(gp.queue, g)
	gp.pacer.Kick()
}

// receiverFor returns (creating if needed) the receiver state. Both RTS
// and data packets carry the flow size, so state can be rebuilt even if
// the RTS is lost.
func (p *Protocol) receiverFor(pkt *netsim.Packet) *receiver {
	if r, ok := p.receivers[pkt.Flow]; ok {
		return r
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Done {
		return nil // unknown, completed, or crash-killed flow
	}
	r := &receiver{
		f:            f,
		rcvd:         transport.NewBitmap(f.NPkts),
		granted:      p.BlindPkts(f),
		reissuedAt:   make(map[int32]sim.Time),
		inRecovery:   make(map[int32]bool),
		lastProgress: p.Now(),
	}
	p.receivers[pkt.Flow] = r
	p.grantsInFlight += int64(r.granted)
	// Announce confirmation on the deterministic cross-shard control
	// channel: the sender's re-announce timer stops once it knows the
	// receiver holds the flow. Grants double as confirmation, but the
	// scheduler may defer them arbitrarily under SRPT, and re-announcing
	// until the first grant wastes control slots on the bottleneck. The
	// signal takes one lookahead at every shard count, so announce
	// behaviour is partition-independent.
	f2 := f
	p.Shard().Signal(f.Dst, f.Src, func() { f2.SenderHeard = true })
	p.armTimeout(r)
	return r
}

func (p *Protocol) armTimeout(r *receiver) {
	interval := p.Cfg.RTT
	if r.backoff > interval {
		interval = r.backoff
	}
	r.timer = p.Engine().Schedule(interval, func() { p.onTimeout(r) })
}

// onTimeout implements §6 loss recovery: every RTT, any sequence whose
// grant (or blind-window slot) is more than one RTT old and has not
// arrived is handed to the receiving host's recovery pacer, which
// reissues grants at the downlink packet rate.
func (p *Protocol) onTimeout(r *receiver) {
	if r.f.Done {
		return
	}
	cap := p.cfg.RecoveryCap
	if cap <= 0 {
		cap = p.BDPPkts(r.f.Dst.LinkRate())
	}
	now := p.Now()
	window := r.overdueWindow(p.Cfg.RTT)
	overdue := r.grantedBefore(now - window)
	rp := p.recPacerFor(r.f.Dst)
	queued := 0
	for seq := r.rcvd.NextClear(0); seq >= 0 && seq < overdue && queued < cap; seq = r.rcvd.NextClear(seq + 1) {
		if r.inRecovery[seq] {
			continue // already waiting in the pacer queue
		}
		if at, ok := r.reissuedAt[seq]; ok && now-at < window {
			continue // retransmission still plausibly in flight
		}
		r.inRecovery[seq] = true
		rp.queue = append(rp.queue, recReq{r: r, seq: seq})
		queued++
	}
	if queued > 0 {
		rp.pacer.Kick()
	}
	r.snapshot(now)
	if queued == 0 && now-r.lastProgress > 8*p.Cfg.RTT {
		if r.backoff < 64*p.Cfg.RTT {
			if r.backoff == 0 {
				r.backoff = p.Cfg.RTT
			}
			r.backoff *= 2
		}
	} else {
		r.backoff = 0
	}
	p.armTimeout(r)
}

// recPacerFor returns (creating if needed) the host's recovery pacer.
func (p *Protocol) recPacerFor(h *netsim.Host) *recPacer {
	if rp, ok := p.recPacers[h.ID()]; ok {
		return rp
	}
	rp := &recPacer{}
	tick := h.LinkRate().TxTime(p.Cfg.MSS)
	rp.pacer = transport.NewPacer(p.Engine(), tick, func() bool { return p.emitRecovery(rp) })
	p.recPacers[h.ID()] = rp
	return rp
}

// emitRecovery reissues one queued recovery grant, skipping requests
// that were satisfied while waiting.
func (p *Protocol) emitRecovery(rp *recPacer) bool {
	for len(rp.queue) > 0 {
		req := rp.queue[0]
		rp.queue = rp.queue[1:]
		delete(req.r.inRecovery, req.seq)
		if req.r.f.Done || req.r.rcvd.Get(req.seq) {
			continue
		}
		req.r.reissuedAt[req.seq] = p.Now()
		g := p.NewCtrl(netsim.Grant, req.r.f, req.seq, true)
		req.r.f.Dst.Send(g)
		p.RecoveryGrants++
		return true
	}
	return false
}

func (p *Protocol) finish(r *receiver) {
	r.timer.Cancel()
	// Retire any residual grant authorization (a blind window wider than
	// the flow) so grantsInFlight reflects live flows only.
	p.grantsInFlight -= int64(r.granted) - int64(r.rcvd.Count())
	p.Complete(r.f)
}
