package workload

// The five realistic workloads of §8.1. The paper specifies their shape
// qualitatively (average sizes from 64 KB to 7.41 MB, more than half of
// flows under 10 KB, heavy tails with >90% of bytes in large flows for
// all but the web-server workload); these CDFs are synthetic instances
// preserving those properties (see DESIGN.md §1 — the published traces
// themselves are not distributable).

// WebServer (WSv): tiny flows below 10 KB plus a uniform 10 KB–1 MB
// body; the smallest average flow size (~64 KB) as the paper states.
func WebServer() *Empirical {
	return NewEmpirical("WebServer", []CDFPoint{
		{100, 0},
		{10_000, 0.882},
		{1_000_000, 1},
	})
}

// CacheFollower (CF): RPC-style traffic, mostly small responses with a
// moderate tail (~0.37 MB mean).
func CacheFollower() *Empirical {
	return NewEmpirical("CacheFollower", []CDFPoint{
		{300, 0},
		{2_000, 0.40},
		{10_000, 0.62},
		{100_000, 0.80},
		{1_000_000, 0.95},
		{10_000_000, 1},
	})
}

// HadoopCluster (HC): shuffle traffic, heavy-tailed (~1.4 MB mean).
func HadoopCluster() *Empirical {
	return NewEmpirical("HadoopCluster", []CDFPoint{
		{250, 0},
		{1_000, 0.30},
		{10_000, 0.55},
		{100_000, 0.75},
		{1_000_000, 0.90},
		{10_000_000, 0.97},
		{50_000_000, 1},
	})
}

// WebSearch (WSc): the classic DCTCP-style distribution (~1.5 MB mean).
func WebSearch() *Empirical {
	return NewEmpirical("WebSearch", []CDFPoint{
		{500, 0},
		{10_000, 0.53},
		{100_000, 0.70},
		{1_000_000, 0.85},
		{10_000_000, 0.96},
		{30_000_000, 1},
	})
}

// DataMining (DM): the most skewed distribution — 80% of flows under
// 10 KB but ~7.4 MB mean, >95% of bytes in the tail. The paper's largest
// gains appear here.
func DataMining() *Empirical {
	return NewEmpirical("DataMining", []CDFPoint{
		{100, 0},
		{1_000, 0.50},
		{10_000, 0.80},
		{100_000, 0.87},
		{1_000_000, 0.92},
		{10_000_000, 0.95},
		{100_000_000, 0.985},
		{600_000_000, 1},
	})
}

// All returns the five workloads in the order the figures present them:
// WSv, CF, HC, WSc, DM.
func All() []*Empirical {
	return []*Empirical{WebServer(), CacheFollower(), HadoopCluster(), WebSearch(), DataMining()}
}

// ByName returns the workload with the given name, or nil.
func ByName(name string) *Empirical {
	for _, w := range All() {
		if w.Name() == name {
			return w
		}
	}
	return nil
}

// Abbrev returns the paper's abbreviation for a workload name.
func Abbrev(name string) string {
	switch name {
	case "WebServer":
		return "WSv"
	case "CacheFollower":
		return "CF"
	case "HadoopCluster":
		return "HC"
	case "WebSearch":
		return "WSc"
	case "DataMining":
		return "DM"
	}
	return name
}
