// Package workload generates the traffic the paper evaluates on:
// flow-size distributions shaped like the five realistic workloads
// (web server, cache follower, hadoop cluster, web search, data mining),
// an open-loop Poisson arrival process targeted at a network load, and
// the structured patterns (many-to-many, incast, permutation) used by
// the focused experiments.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Dist is a flow-size distribution in bytes.
type Dist interface {
	// Sample draws one flow size.
	Sample(rng *rand.Rand) int64
	// Mean returns the distribution's expected flow size in bytes.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Fixed is a degenerate distribution: every flow has the same size.
type Fixed int64

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) int64 { return int64(f) }

// Mean implements Dist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements Dist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%dB", int64(f)) }

// Uniform draws sizes uniformly in [Lo, Hi].
type Uniform struct {
	Lo, Hi int64
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) int64 {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Int63n(u.Hi-u.Lo+1)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// Name implements Dist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform-%d-%d", u.Lo, u.Hi) }

// CDFPoint is one knot of an empirical CDF: Prob of a flow being at most
// Bytes long.
type CDFPoint struct {
	Bytes int64
	Prob  float64
}

// Empirical is a piecewise-linear empirical CDF, the standard way
// datacenter transport papers specify workloads. Sizes are drawn by
// inverse-transform sampling with linear interpolation between knots
// (uniform within each segment).
type Empirical struct {
	name   string
	points []CDFPoint
}

// NewEmpirical builds an empirical distribution from CDF knots. The
// knots must have strictly increasing sizes, nondecreasing probabilities,
// start at probability 0 and end at exactly 1.
func NewEmpirical(name string, points []CDFPoint) *Empirical {
	if len(points) < 2 {
		panic("workload: empirical CDF needs at least 2 points")
	}
	if points[0].Prob != 0 {
		panic("workload: empirical CDF must start at probability 0")
	}
	if points[len(points)-1].Prob != 1 {
		panic("workload: empirical CDF must end at probability 1")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes <= points[i-1].Bytes {
			panic(fmt.Sprintf("workload: CDF sizes not increasing at %d", i))
		}
		if points[i].Prob < points[i-1].Prob {
			panic(fmt.Sprintf("workload: CDF probabilities decreasing at %d", i))
		}
	}
	return &Empirical{name: name, points: points}
}

// Sample implements Dist.
func (e *Empirical) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := e.points
	// Find the first knot with Prob >= u.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	if i == 0 {
		return pts[0].Bytes
	}
	lo, hi := pts[i-1], pts[i]
	if hi.Prob == lo.Prob {
		return hi.Bytes
	}
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
}

// Mean implements Dist: with linear interpolation each segment is
// uniform, so the mean is the probability-weighted midpoint sum.
func (e *Empirical) Mean() float64 {
	var mean float64
	for i := 1; i < len(e.points); i++ {
		lo, hi := e.points[i-1], e.points[i]
		mean += (hi.Prob - lo.Prob) * float64(lo.Bytes+hi.Bytes) / 2
	}
	return mean
}

// Name implements Dist.
func (e *Empirical) Name() string { return e.name }

// FractionBelow returns P(size < bytes).
func (e *Empirical) FractionBelow(bytes int64) float64 {
	pts := e.points
	if bytes <= pts[0].Bytes {
		return 0
	}
	if bytes >= pts[len(pts)-1].Bytes {
		return 1
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Bytes >= bytes })
	lo, hi := pts[i-1], pts[i]
	frac := float64(bytes-lo.Bytes) / float64(hi.Bytes-lo.Bytes)
	return lo.Prob + frac*(hi.Prob-lo.Prob)
}
