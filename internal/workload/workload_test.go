package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"amrt/internal/sim"
)

func TestFixedAndUniform(t *testing.T) {
	rng := sim.NewRNG(1)
	if Fixed(100).Sample(rng) != 100 || Fixed(100).Mean() != 100 {
		t.Error("Fixed distribution broken")
	}
	u := Uniform{Lo: 10, Hi: 20}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 10 || v > 20 {
			t.Fatalf("uniform sample %d out of range", v)
		}
	}
	if u.Mean() != 15 {
		t.Errorf("uniform mean = %v", u.Mean())
	}
	if (Uniform{Lo: 5, Hi: 5}).Sample(rng) != 5 {
		t.Error("degenerate uniform should return Lo")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	for _, bad := range [][]CDFPoint{
		{{100, 0}},                         // too few
		{{100, 0.1}, {200, 1}},             // doesn't start at 0
		{{100, 0}, {200, 0.9}},             // doesn't end at 1
		{{100, 0}, {100, 1}},               // sizes not increasing
		{{100, 0}, {200, 0.5}, {300, 0.2}}, // probs decreasing (then invalid end too)
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid CDF %v did not panic", bad)
				}
			}()
			NewEmpirical("bad", bad)
		}()
	}
}

func TestEmpiricalSampleBounds(t *testing.T) {
	for _, w := range All() {
		rng := sim.NewRNG(2)
		lo := w.points[0].Bytes
		hi := w.points[len(w.points)-1].Bytes
		for i := 0; i < 5000; i++ {
			v := w.Sample(rng)
			if v < lo || v > hi {
				t.Fatalf("%s sample %d outside [%d,%d]", w.Name(), v, lo, hi)
			}
		}
	}
}

func TestWorkloadMeansMatchPaper(t *testing.T) {
	// The paper: average flow sizes range from 64 KB to 7.41 MB, with
	// WebServer the smallest and DataMining the largest.
	means := map[string]float64{}
	for _, w := range All() {
		means[w.Name()] = w.Mean()
	}
	if math.Abs(means["WebServer"]-64_000)/64_000 > 0.05 {
		t.Errorf("WebServer mean = %.0f, want ~64KB", means["WebServer"])
	}
	if math.Abs(means["DataMining"]-7_410_000)/7_410_000 > 0.05 {
		t.Errorf("DataMining mean = %.0f, want ~7.41MB", means["DataMining"])
	}
	for name, m := range means {
		if m < 64_000*0.95 || m > 7_410_000*1.05 {
			t.Errorf("%s mean %.0f outside the paper's 64KB–7.41MB range", name, m)
		}
	}
}

func TestWorkloadEmpiricalMeanMatchesAnalytic(t *testing.T) {
	for _, w := range All() {
		rng := sim.NewRNG(3)
		const n = 300000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(w.Sample(rng))
		}
		got := sum / n
		want := w.Mean()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", w.Name(), got, want)
		}
	}
}

func TestWorkloadsMajoritySmallFlows(t *testing.T) {
	// "more than half of the flows are less than 10KB" — true for all
	// but the WebServer-style uniform body is exactly at 88%.
	for _, w := range All() {
		if f := w.FractionBelow(10_001); f < 0.5 {
			t.Errorf("%s: only %.0f%% of flows under 10KB", w.Name(), f*100)
		}
	}
}

func TestHeavyTailByteShare(t *testing.T) {
	// For the four heavy-tailed workloads, >=80% of bytes should come
	// from flows above 100KB (paper: >90% of bytes from large flows).
	for _, w := range All() {
		if w.Name() == "WebServer" {
			continue
		}
		rng := sim.NewRNG(4)
		var total, large float64
		for i := 0; i < 200000; i++ {
			v := float64(w.Sample(rng))
			total += v
			if v >= 100_000 {
				large += v
			}
		}
		if share := large / total; share < 0.8 {
			t.Errorf("%s: large flows carry only %.0f%% of bytes", w.Name(), share*100)
		}
	}
}

func TestFractionBelow(t *testing.T) {
	w := WebServer()
	if got := w.FractionBelow(50); got != 0 {
		t.Errorf("below min = %v", got)
	}
	if got := w.FractionBelow(2_000_000); got != 1 {
		t.Errorf("above max = %v", got)
	}
	if got := w.FractionBelow(10_000); math.Abs(got-0.882) > 0.001 {
		t.Errorf("FractionBelow(10K) = %v, want 0.882", got)
	}
}

func TestByNameAndAbbrev(t *testing.T) {
	if ByName("WebSearch") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
	if Abbrev("DataMining") != "DM" || Abbrev("x") != "x" {
		t.Error("Abbrev broken")
	}
}

func TestGeneratePoissonLoad(t *testing.T) {
	cfg := PoissonConfig{
		Hosts:    40,
		Load:     0.5,
		HostRate: 10 * sim.Gbps,
		Dist:     Fixed(100_000),
		Count:    20000,
		Seed:     7,
	}
	flows := GeneratePoisson(cfg)
	if len(flows) != cfg.Count {
		t.Fatalf("generated %d flows", len(flows))
	}
	// Offered load = total bytes / (duration × aggregate rate).
	duration := flows[len(flows)-1].Start.Seconds()
	bytes := float64(TotalBytes(flows))
	offered := bytes * 8 / (duration * float64(cfg.HostRate) * float64(cfg.Hosts))
	if math.Abs(offered-0.5) > 0.05 {
		t.Errorf("offered load %.3f, want 0.5", offered)
	}
	// Arrivals strictly ordered, pairs valid and distinct.
	for i, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("flow %d has src==dst", i)
		}
		if f.Src < 0 || f.Src >= cfg.Hosts || f.Dst < 0 || f.Dst >= cfg.Hosts {
			t.Fatalf("flow %d pair out of range", i)
		}
		if i > 0 && f.Start < flows[i-1].Start {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestGeneratePoissonDeterminism(t *testing.T) {
	cfg := PoissonConfig{Hosts: 10, Load: 0.3, HostRate: sim.Gbps, Dist: WebSearch(), Count: 500, Seed: 42}
	a := GeneratePoisson(cfg)
	b := GeneratePoisson(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs between runs", i)
		}
	}
	cfg.Seed = 43
	c := GeneratePoisson(cfg)
	same := 0
	for i := range a {
		if a[i].Size == c[i].Size {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical flows")
	}
}

func TestGeneratePoissonPanics(t *testing.T) {
	for _, cfg := range []PoissonConfig{
		{Hosts: 1, Load: 0.5, HostRate: sim.Gbps, Dist: Fixed(1), Count: 1},
		{Hosts: 4, Load: 0, HostRate: sim.Gbps, Dist: Fixed(1), Count: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			GeneratePoisson(cfg)
		}()
	}
}

func TestManyToMany(t *testing.T) {
	senders := []int{0, 1, 2, 3}
	receivers := []int{10, 11}
	flows := ManyToMany(senders, receivers, 2, Fixed(1000), sim.Millisecond, 1)
	if len(flows) != 8 {
		t.Fatalf("flows = %d, want 8", len(flows))
	}
	perReceiver := map[int]int{}
	for _, f := range flows {
		if f.Start != sim.Millisecond || f.Size != 1000 {
			t.Errorf("bad flow %+v", f)
		}
		perReceiver[f.Dst]++
	}
	if perReceiver[10] != 4 || perReceiver[11] != 4 {
		t.Errorf("receivers unevenly loaded: %v", perReceiver)
	}
	// Each sender's connections go to distinct receivers.
	seen := map[[2]int]bool{}
	for _, f := range flows {
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			t.Errorf("sender %d connects twice to receiver %d", f.Src, f.Dst)
		}
		seen[key] = true
	}
}

func TestManyToManyTooManyConnsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-subscribed many-to-many did not panic")
		}
	}()
	ManyToMany([]int{0}, []int{1}, 2, Fixed(1), 0, 1)
}

func TestIncast(t *testing.T) {
	flows := Incast([]int{1, 2, 3}, 9, 64_000, sim.Microsecond)
	if len(flows) != 3 {
		t.Fatal("incast flow count")
	}
	for _, f := range flows {
		if f.Dst != 9 || f.Size != 64_000 || f.Start != sim.Microsecond {
			t.Errorf("bad incast flow %+v", f)
		}
	}
}

func TestPermutation(t *testing.T) {
	flows := Permutation(8, 3, Fixed(100), 0, 1)
	dsts := map[int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Error("permutation mapped host to itself")
		}
		if dsts[f.Dst] {
			t.Error("permutation destination repeated")
		}
		dsts[f.Dst] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("identity permutation did not panic")
		}
	}()
	Permutation(4, 4, Fixed(1), 0, 1)
}

// Property: inverse-transform sampling approximates the CDF: the
// empirical fraction below each knot matches the knot probability.
func TestEmpiricalCDFProperty(t *testing.T) {
	w := WebSearch()
	rng := sim.NewRNG(5)
	const n = 100000
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = w.Sample(rng)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, pt := range w.points[1 : len(w.points)-1] {
		idx := sort.Search(n, func(i int) bool { return samples[i] >= pt.Bytes })
		got := float64(idx) / n
		if math.Abs(got-pt.Prob) > 0.01 {
			t.Errorf("fraction below %d = %.3f, want %.3f", pt.Bytes, got, pt.Prob)
		}
	}
}

// Property: Poisson inter-arrival times have the configured mean.
func TestPoissonInterarrivalProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := PoissonConfig{Hosts: 4, Load: 0.4, HostRate: sim.Gbps, Dist: Fixed(50_000), Count: 3000, Seed: seed}
		flows := GeneratePoisson(cfg)
		// λ = 0.4 * 4 * 1e9 / (8*50000) = 4000 flows/s → mean gap 250µs.
		mean := flows[len(flows)-1].Start.Seconds() / float64(len(flows))
		return math.Abs(mean-250e-6) < 50e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
