package workload

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// FlowSpec describes one flow to inject: who, how much, when. Src and
// Dst index into the experiment's host slice.
type FlowSpec struct {
	ID    netsim.FlowID
	Src   int
	Dst   int
	Size  int64
	Start sim.Time

	// Unresponsive marks a sender that announces the flow but never
	// transmits data (§8.2 many-to-many stress).
	Unresponsive bool

	// Deadline is the absolute virtual time by which the flow must
	// complete; 0 means none. A flow that finishes late — or never —
	// counts as a deadline miss in the run result (RPC workloads set
	// it per request).
	Deadline sim.Time

	// After, if nonzero, names the flow whose completion releases this
	// one: the runner injects it Start after the parent flow finishes,
	// so Start is a relative offset, not an absolute time. RPC
	// responses use it to close the request/response loop. A parent
	// that never completes leaves the flow unreleased (reported, and a
	// deadline miss if Deadline is set).
	After netsim.FlowID
}

// PoissonConfig drives the open-loop arrival generator of §8.1: flows
// arrive as a Poisson process whose rate targets a fraction Load of the
// aggregate host capacity, between uniformly random distinct host pairs,
// with sizes drawn from Dist.
type PoissonConfig struct {
	Hosts    int      // number of hosts to draw pairs from
	Load     float64  // target offered load in (0, 1]
	HostRate sim.Rate // per-host access link rate
	Dist     Dist
	Count    int   // number of flows to generate
	Seed     int64 // RNG seed; arrivals/sizes/pairs use derived streams
}

// GeneratePoisson produces Count flow specs. The aggregate arrival rate
// is chosen so that expected offered bytes equal Load × Hosts × HostRate:
// λ = Load · Hosts · HostRate / (8 · E[size]).
func GeneratePoisson(cfg PoissonConfig) []FlowSpec {
	if cfg.Hosts < 2 {
		panic("workload: Poisson traffic needs at least 2 hosts")
	}
	if cfg.Load <= 0 {
		panic("workload: load must be positive")
	}
	arrRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "arrivals"))
	sizeRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "sizes"))
	pairRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "pairs"))

	lambda := cfg.Load * float64(cfg.Hosts) * float64(cfg.HostRate) / (8 * cfg.Dist.Mean())
	meanGap := sim.Time(float64(sim.Second) / lambda)

	flows := make([]FlowSpec, 0, cfg.Count)
	t := sim.Time(0)
	for i := 0; i < cfg.Count; i++ {
		t += sim.Exponential(arrRNG, meanGap)
		src := pairRNG.Intn(cfg.Hosts)
		dst := pairRNG.Intn(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		size := cfg.Dist.Sample(sizeRNG)
		if size < 1 {
			size = 1
		}
		flows = append(flows, FlowSpec{
			ID:    netsim.FlowID(i + 1),
			Src:   src,
			Dst:   dst,
			Size:  size,
			Start: t,
		})
	}
	return flows
}

// ManyToMany produces the §8.2 pattern: every sender opens ConnsPerSender
// flows to distinct receivers (round-robin with a per-sender offset so
// receivers are evenly loaded), all starting at Start with sizes from
// Dist.
func ManyToMany(senders, receivers []int, connsPerSender int, d Dist, start sim.Time, seed int64) []FlowSpec {
	if connsPerSender > len(receivers) {
		panic(fmt.Sprintf("workload: %d connections per sender but only %d receivers", connsPerSender, len(receivers)))
	}
	sizeRNG := sim.NewRNG(sim.SubSeed(seed, "m2m-sizes"))
	var flows []FlowSpec
	id := netsim.FlowID(1)
	for si, s := range senders {
		for c := 0; c < connsPerSender; c++ {
			r := receivers[(si*connsPerSender+c)%len(receivers)]
			flows = append(flows, FlowSpec{
				ID: id, Src: s, Dst: r, Size: d.Sample(sizeRNG), Start: start,
			})
			id++
		}
	}
	return flows
}

// Incast produces n synchronized flows of the same size converging on
// one receiver — the partition/aggregate burst.
func Incast(senders []int, receiver int, size int64, start sim.Time) []FlowSpec {
	flows := make([]FlowSpec, len(senders))
	for i, s := range senders {
		flows[i] = FlowSpec{ID: netsim.FlowID(i + 1), Src: s, Dst: receiver, Size: size, Start: start}
	}
	return flows
}

// Permutation pairs host i with host (i+shift) mod n, one flow per host.
func Permutation(hosts int, shift int, d Dist, start sim.Time, seed int64) []FlowSpec {
	if shift%hosts == 0 {
		panic("workload: permutation shift must not map hosts to themselves")
	}
	sizeRNG := sim.NewRNG(sim.SubSeed(seed, "perm-sizes"))
	flows := make([]FlowSpec, hosts)
	for i := 0; i < hosts; i++ {
		flows[i] = FlowSpec{
			ID: netsim.FlowID(i + 1), Src: i, Dst: (i + shift) % hosts,
			Size: d.Sample(sizeRNG), Start: start,
		}
	}
	return flows
}

// TotalBytes sums the sizes of the given flows.
func TotalBytes(flows []FlowSpec) int64 {
	var n int64
	for _, f := range flows {
		n += f.Size
	}
	return n
}
