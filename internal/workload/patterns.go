package workload

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

// IncastConfig drives the configurable-degree incast generator: epochs
// of Degree synchronized senders converging on one receiver arrive as
// a Poisson process whose rate targets a per-downlink load of Load
// (each epoch delivers Degree×Bytes through a single receiver
// downlink, receivers drawn uniformly, so
// λ = Load · Hosts · HostRate / (8 · Degree · Bytes)).
type IncastConfig struct {
	// Hosts is the number of hosts to draw receivers and senders from.
	Hosts int
	// Degree is the synchronized sender fan-in of each epoch.
	Degree int
	// Bytes is the per-sender block size (the partition/aggregate
	// response size).
	Bytes int64
	// Load is the target per-receiver-downlink offered load in (0, 1].
	Load float64
	// HostRate is the receiver access-link rate.
	HostRate sim.Rate
	// Count is the total number of flows to generate; the last epoch
	// is truncated if Degree does not divide it.
	Count int
	// Seed seeds the derived RNG streams (epoch arrivals, receiver and
	// sender choices).
	Seed int64
}

// GenerateIncast produces Count flow specs in synchronized epochs: each
// epoch picks one receiver and Degree distinct senders uniformly at
// random, all starting at the epoch's arrival instant. Flow IDs are
// sequential from 1 in epoch order, so same-seed runs are
// byte-identical.
func GenerateIncast(cfg IncastConfig) []FlowSpec {
	if cfg.Hosts < 2 {
		panic("workload: incast needs at least 2 hosts")
	}
	if cfg.Degree < 1 || cfg.Degree >= cfg.Hosts {
		panic(fmt.Sprintf("workload: incast degree %d must be in [1, hosts-1=%d]", cfg.Degree, cfg.Hosts-1))
	}
	if cfg.Bytes < 1 {
		panic("workload: incast bytes must be positive")
	}
	if cfg.Load <= 0 {
		panic("workload: load must be positive")
	}
	arrRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "incast-arrivals"))
	pickRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "incast-picks"))

	epochBytes := float64(cfg.Degree) * float64(cfg.Bytes)
	lambda := cfg.Load * float64(cfg.Hosts) * float64(cfg.HostRate) / (8 * epochBytes)
	meanGap := sim.Time(float64(sim.Second) / lambda)

	// others is reshuffled per epoch to draw Degree distinct senders.
	others := make([]int, 0, cfg.Hosts-1)
	flows := make([]FlowSpec, 0, cfg.Count)
	t := sim.Time(0)
	for id := 1; id <= cfg.Count; {
		t += sim.Exponential(arrRNG, meanGap)
		recv := pickRNG.Intn(cfg.Hosts)
		others = others[:0]
		for h := 0; h < cfg.Hosts; h++ {
			if h != recv {
				others = append(others, h)
			}
		}
		for i := 0; i < cfg.Degree && id <= cfg.Count; i++ {
			// Partial Fisher–Yates: position i swaps with a random
			// later position, yielding distinct senders.
			j := i + pickRNG.Intn(len(others)-i)
			others[i], others[j] = others[j], others[i]
			flows = append(flows, FlowSpec{
				ID: netsim.FlowID(id), Src: others[i], Dst: recv,
				Size: cfg.Bytes, Start: t,
			})
			id++
		}
	}
	return flows
}

// ShuffleConfig drives the all-to-all shuffle generator: every host
// streams Bytes to Width peers (its Width successors modulo Hosts),
// all flows starting at Start — the synchronized map→reduce transfer
// that saturates the fabric's bisection.
type ShuffleConfig struct {
	// Hosts is the number of hosts in the shuffle.
	Hosts int
	// Width is the number of peers each host streams to; 0 (or
	// anything ≥ Hosts-1) means full all-to-all.
	Width int
	// Bytes is the per-pair transfer size.
	Bytes int64
	// Start is the synchronized start time of every flow.
	Start sim.Time
}

// Flows returns the number of flow specs GenerateShuffle will produce:
// Hosts × effective width.
func (cfg ShuffleConfig) Flows() int {
	w := cfg.Width
	if w <= 0 || w > cfg.Hosts-1 {
		w = cfg.Hosts - 1
	}
	return cfg.Hosts * w
}

// GenerateShuffle produces the shuffle's flow specs: host i sends to
// hosts (i+1..i+Width) mod Hosts. The pattern is fully deterministic —
// no RNG — so the seed axis only varies delivery jitter.
func GenerateShuffle(cfg ShuffleConfig) []FlowSpec {
	if cfg.Hosts < 2 {
		panic("workload: shuffle needs at least 2 hosts")
	}
	if cfg.Bytes < 1 {
		panic("workload: shuffle bytes must be positive")
	}
	w := cfg.Width
	if w <= 0 || w > cfg.Hosts-1 {
		w = cfg.Hosts - 1
	}
	flows := make([]FlowSpec, 0, cfg.Hosts*w)
	id := netsim.FlowID(1)
	for i := 0; i < cfg.Hosts; i++ {
		for d := 1; d <= w; d++ {
			flows = append(flows, FlowSpec{
				ID: id, Src: i, Dst: (i + d) % cfg.Hosts,
				Size: cfg.Bytes, Start: cfg.Start,
			})
			id++
		}
	}
	return flows
}

// RPCConfig drives the deadline-RPC generator: requests arrive as a
// Poisson process targeting a fraction Load of aggregate host capacity
// (counting both legs), between uniformly random client/server pairs.
// Each RPC is a small request flow plus a response flow released by
// the request's completion (FlowSpec.After), with an optional
// per-request completion deadline on the response.
type RPCConfig struct {
	// Hosts is the number of hosts to draw client/server pairs from.
	Hosts int
	// Load is the target offered load in (0, 1].
	Load float64
	// HostRate is the per-host access link rate.
	HostRate sim.Rate
	// RequestBytes is the client→server request size.
	RequestBytes int64
	// ResponseBytes is the server→client response size.
	ResponseBytes int64
	// Deadline is the budget from request start to response
	// completion; 0 disables deadlines.
	Deadline sim.Time
	// Count is the number of RPCs; each contributes two flow specs.
	Count int
	// Seed seeds the derived RNG streams (arrivals, pairs).
	Seed int64
}

// GenerateRPC produces 2×Count flow specs: request i has ID 2i+1 and
// starts at its Poisson arrival; response i has ID 2i+2, is released
// when the request completes (After), and carries the absolute
// deadline arrival+Deadline when deadlines are enabled.
func GenerateRPC(cfg RPCConfig) []FlowSpec {
	if cfg.Hosts < 2 {
		panic("workload: RPC traffic needs at least 2 hosts")
	}
	if cfg.Load <= 0 {
		panic("workload: load must be positive")
	}
	if cfg.RequestBytes < 1 || cfg.ResponseBytes < 1 {
		panic("workload: RPC request and response sizes must be positive")
	}
	arrRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "rpc-arrivals"))
	pairRNG := sim.NewRNG(sim.SubSeed(cfg.Seed, "rpc-pairs"))

	perRPC := float64(cfg.RequestBytes + cfg.ResponseBytes)
	lambda := cfg.Load * float64(cfg.Hosts) * float64(cfg.HostRate) / (8 * perRPC)
	meanGap := sim.Time(float64(sim.Second) / lambda)

	flows := make([]FlowSpec, 0, 2*cfg.Count)
	t := sim.Time(0)
	for i := 0; i < cfg.Count; i++ {
		t += sim.Exponential(arrRNG, meanGap)
		client := pairRNG.Intn(cfg.Hosts)
		server := pairRNG.Intn(cfg.Hosts - 1)
		if server >= client {
			server++
		}
		reqID := netsim.FlowID(2*i + 1)
		var deadline sim.Time
		if cfg.Deadline > 0 {
			deadline = t + cfg.Deadline
		}
		flows = append(flows,
			FlowSpec{ID: reqID, Src: client, Dst: server, Size: cfg.RequestBytes, Start: t},
			FlowSpec{
				ID: reqID + 1, Src: server, Dst: client, Size: cfg.ResponseBytes,
				After: reqID, Deadline: deadline,
			},
		)
	}
	return flows
}
