package workload

import (
	"reflect"
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
)

func incastCfg() IncastConfig {
	return IncastConfig{
		Hosts: 16, Degree: 4, Bytes: 64 << 10,
		Load: 0.5, HostRate: 10 * sim.Gbps,
		Count: 100, Seed: 1,
	}
}

func TestGenerateIncastEpochs(t *testing.T) {
	cfg := incastCfg()
	flows := GenerateIncast(cfg)
	if len(flows) != cfg.Count {
		t.Fatalf("flows = %d, want %d", len(flows), cfg.Count)
	}
	for i, f := range flows {
		if f.ID != netsim.FlowID(i+1) {
			t.Fatalf("flow %d has ID %d, want sequential", i, f.ID)
		}
		if f.Size != cfg.Bytes {
			t.Errorf("flow %d size = %d, want %d", i, f.Size, cfg.Bytes)
		}
	}
	// Every epoch: one shared receiver, one shared start instant, and
	// Degree distinct senders none of which is the receiver.
	var prevStart sim.Time
	for e := 0; e+cfg.Degree <= len(flows); e += cfg.Degree {
		epoch := flows[e : e+cfg.Degree]
		senders := map[int]bool{}
		for _, f := range epoch {
			if f.Dst != epoch[0].Dst || f.Start != epoch[0].Start {
				t.Fatalf("epoch at %d not synchronized: %+v vs %+v", e, f, epoch[0])
			}
			if f.Src == f.Dst {
				t.Fatalf("epoch at %d: sender equals receiver %d", e, f.Src)
			}
			if senders[f.Src] {
				t.Fatalf("epoch at %d: duplicate sender %d", e, f.Src)
			}
			senders[f.Src] = true
		}
		if epoch[0].Start <= prevStart {
			t.Fatalf("epoch at %d: arrivals not strictly increasing", e)
		}
		prevStart = epoch[0].Start
	}
}

func TestGenerateIncastTruncatesLastEpoch(t *testing.T) {
	cfg := incastCfg()
	cfg.Count = 10 // 2.5 epochs of degree 4
	if got := len(GenerateIncast(cfg)); got != 10 {
		t.Errorf("flows = %d, want 10", got)
	}
}

func TestGenerateIncastDeterminism(t *testing.T) {
	cfg := incastCfg()
	if !reflect.DeepEqual(GenerateIncast(cfg), GenerateIncast(cfg)) {
		t.Error("same seed produced different incast traffic")
	}
	other := cfg
	other.Seed = 2
	if reflect.DeepEqual(GenerateIncast(cfg), GenerateIncast(other)) {
		t.Error("different seeds produced identical incast traffic")
	}
}

func TestGenerateIncastPanics(t *testing.T) {
	cases := map[string]func(*IncastConfig){
		"one host":     func(c *IncastConfig) { c.Hosts = 1 },
		"zero degree":  func(c *IncastConfig) { c.Degree = 0 },
		"degree=hosts": func(c *IncastConfig) { c.Degree = c.Hosts },
		"zero bytes":   func(c *IncastConfig) { c.Bytes = 0 },
		"zero load":    func(c *IncastConfig) { c.Load = 0 },
	}
	for name, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			cfg := incastCfg()
			mutate(&cfg)
			GenerateIncast(cfg)
		}()
	}
}

func TestGenerateShuffle(t *testing.T) {
	cfg := ShuffleConfig{Hosts: 8, Width: 3, Bytes: 1 << 20, Start: 5 * sim.Microsecond}
	flows := GenerateShuffle(cfg)
	if len(flows) != cfg.Flows() || len(flows) != 24 {
		t.Fatalf("flows = %d (Flows() = %d), want 24", len(flows), cfg.Flows())
	}
	i := 0
	for src := 0; src < cfg.Hosts; src++ {
		for d := 1; d <= cfg.Width; d++ {
			f := flows[i]
			if f.Src != src || f.Dst != (src+d)%cfg.Hosts {
				t.Fatalf("flow %d is %d→%d, want %d→%d", i, f.Src, f.Dst, src, (src+d)%cfg.Hosts)
			}
			if f.Src == f.Dst {
				t.Fatalf("flow %d is a self-flow", i)
			}
			if f.Start != cfg.Start || f.Size != cfg.Bytes || f.ID != netsim.FlowID(i+1) {
				t.Fatalf("flow %d fields wrong: %+v", i, f)
			}
			i++
		}
	}
	// No RNG: identical calls are identical slices.
	if !reflect.DeepEqual(flows, GenerateShuffle(cfg)) {
		t.Error("shuffle generator is not deterministic")
	}
}

func TestGenerateShuffleWidthClamps(t *testing.T) {
	for _, width := range []int{0, 7, 100} {
		cfg := ShuffleConfig{Hosts: 8, Width: width, Bytes: 1}
		if got := len(GenerateShuffle(cfg)); got != 56 { // full all-to-all
			t.Errorf("width %d: flows = %d, want 56", width, got)
		}
	}
}

func rpcCfg() RPCConfig {
	return RPCConfig{
		Hosts: 16, Load: 0.5, HostRate: 10 * sim.Gbps,
		RequestBytes: 1 << 10, ResponseBytes: 64 << 10,
		Deadline: 2 * sim.Millisecond, Count: 50, Seed: 3,
	}
}

func TestGenerateRPCPairsFlows(t *testing.T) {
	cfg := rpcCfg()
	flows := GenerateRPC(cfg)
	if len(flows) != 2*cfg.Count {
		t.Fatalf("flows = %d, want %d", len(flows), 2*cfg.Count)
	}
	for i := 0; i < cfg.Count; i++ {
		req, resp := flows[2*i], flows[2*i+1]
		if req.ID != netsim.FlowID(2*i+1) || resp.ID != netsim.FlowID(2*i+2) {
			t.Fatalf("RPC %d has IDs %d/%d, want %d/%d", i, req.ID, resp.ID, 2*i+1, 2*i+2)
		}
		if resp.After != req.ID {
			t.Errorf("RPC %d: response released by %d, want request %d", i, resp.After, req.ID)
		}
		if req.Src == req.Dst || resp.Src != req.Dst || resp.Dst != req.Src {
			t.Errorf("RPC %d: legs not a reversed pair: %d→%d then %d→%d", i, req.Src, req.Dst, resp.Src, resp.Dst)
		}
		if req.Size != cfg.RequestBytes || resp.Size != cfg.ResponseBytes {
			t.Errorf("RPC %d sizes = %d/%d", i, req.Size, resp.Size)
		}
		if req.Deadline != 0 {
			t.Errorf("RPC %d: request carries a deadline", i)
		}
		if resp.Deadline != req.Start+cfg.Deadline {
			t.Errorf("RPC %d: deadline %v, want arrival %v + %v", i, resp.Deadline, req.Start, cfg.Deadline)
		}
	}
	if !reflect.DeepEqual(flows, GenerateRPC(cfg)) {
		t.Error("same seed produced different RPC traffic")
	}
}

func TestGenerateRPCZeroDeadlineDisables(t *testing.T) {
	cfg := rpcCfg()
	cfg.Deadline = 0
	for i, f := range GenerateRPC(cfg) {
		if f.Deadline != 0 {
			t.Fatalf("flow %d carries deadline %v with deadlines disabled", i, f.Deadline)
		}
	}
}
