package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelCtxRunsAll(t *testing.T) {
	out, ran, err := ParallelCtx(context.Background(), 20, 3, func(i int) int { return i * i })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != i*i || !ran[i] {
			t.Fatalf("index %d: out=%d ran=%v", i, v, ran[i])
		}
	}
}

func TestParallelCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	const n = 100
	// One worker, sequential: cancelling inside task 2 guarantees no
	// further index is dispatched after it returns.
	out, ran, err := ParallelCtx(ctx, n, 1, func(i int) int {
		executed.Add(1)
		if i == 2 {
			cancel()
		}
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got != 3 {
		t.Errorf("executed %d tasks, want 3 (0,1,2)", got)
	}
	for i := 0; i < n; i++ {
		wantRan := i <= 2
		if ran[i] != wantRan {
			t.Fatalf("ran[%d] = %v, want %v", i, ran[i], wantRan)
		}
		if wantRan && out[i] != i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestParallelCtxPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *WorkerPanic", v, v)
		}
		if wp.Index != 4 {
			t.Errorf("panic index %d, want 4", wp.Index)
		}
	}()
	ParallelCtx(context.Background(), 8, 2, func(i int) int {
		if i == 4 {
			panic("boom")
		}
		return i
	})
	t.Fatal("ParallelCtx did not re-panic")
}

func TestParallelCtxPanicWithCancelledContext(t *testing.T) {
	// A worker that panics while the context is already cancelled must
	// still surface as *WorkerPanic: the cancellation path stops
	// dispatch, but it must never swallow a panic from a task that was
	// already running. The campaign daemon's panic-isolation contract
	// depends on this — a crashed cell has to be observable, not lost
	// behind ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *WorkerPanic", v, v)
		}
		if wp.Index != 0 {
			t.Errorf("panic index %d, want 0", wp.Index)
		}
		if wp.Value != "boom after cancel" {
			t.Errorf("panic value %v", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Error("WorkerPanic carries no worker stack")
		}
		if got := executed.Load(); got != 1 {
			t.Errorf("executed %d tasks after cancellation, want 1", got)
		}
	}()
	ParallelCtx(ctx, 16, 1, func(i int) int {
		executed.Add(1)
		cancel() // the context is cancelled before the panic fires
		if ctx.Err() == nil {
			t.Error("cancel did not take effect before the panic")
		}
		panic("boom after cancel")
	})
	t.Fatal("ParallelCtx did not re-panic")
}

func TestParallelCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ran, err := ParallelCtx(ctx, 10, 0, func(i int) int { return i })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, r := range ran {
		if r {
			t.Fatalf("pre-cancelled context still ran index %d", i)
		}
	}
}
