package experiment

import (
	"fmt"

	"amrt/internal/core"
	"amrt/internal/model"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// Fig5Row compares the model's fill-time bounds (Eqs. 4–5) against the
// simulated convergence of an AMRT flow whose window was cut to n−k of
// the n packets that saturate the path.
type Fig5Row struct {
	N, K            int
	ModelMinRTTs    int
	ModelMaxRTTs    int
	SimulatedRTTs   float64
	ConvergedToFull bool
}

// Fig5 runs the convergence experiment. The path is scaled so that one
// RTT holds exactly n full packets (rate = n·MSS·8/RTT); the flow
// starts with a blind window of n−k packets, so k slots are vacant, and
// we measure how many RTTs AMRT's marked grants need to saturate the
// link.
func Fig5(pairs [][2]int) []Fig5Row {
	rows := make([]Fig5Row, 0, len(pairs))
	const rtt = 100 * sim.Microsecond
	for _, nk := range pairs {
		n, k := nk[0], nk[1]
		rate := sim.Rate(int64(n) * netsim.MSS * 8 * int64(sim.Second) / int64(rtt))

		cfg := core.DefaultConfig()
		cfg.BlindWindow = n - k
		cfg.RTT = rtt
		sc := topo.ScenarioConfig{Rate: rate, LinkDelay: rtt / 8}
		sc.SwitchQueue = cfg.SwitchQueue
		sc.HostQueue = cfg.HostQueue
		sc.Marker = cfg.NewMarker
		s := topo.NewFanN(sc, 1)
		p := core.New(s.Net, cfg)

		// Long enough to observe convergence over many RTTs.
		flowSize := int64(n) * netsim.MSS * 60
		var arrivals []sim.Time
		p.Cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
			arrivals = append(arrivals, s.Net.Engine.Now())
		}
		p.AddFlow(1, s.Senders[0], s.Receivers[0], flowSize, 0)
		s.Net.Run(sim.Second)

		// Count arrivals per RTT window from the first arrival; converged
		// when a window carries >= n-1 packets (the continuum analogue of
		// "all slots filled").
		row := Fig5Row{
			N: n, K: k,
			ModelMinRTTs: int(model.FillTimeMin(n, k, rtt) / rtt),
			ModelMaxRTTs: int(model.FillTimeMax(k, rtt) / rtt),
		}
		if len(arrivals) > 0 {
			t0 := arrivals[0]
			perRTT := map[int]int{}
			for _, a := range arrivals {
				perRTT[int((a-t0)/rtt)]++
			}
			for w := 0; w <= 200; w++ {
				if perRTT[w] >= n-1 {
					row.SimulatedRTTs = float64(w)
					row.ConvergedToFull = true
					break
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig5Table renders the convergence comparison.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title: "Fig 5 — RTTs for AMRT to fill k vacant slots (model bounds vs simulation)",
		Cols:  []string{"n", "k", "model min", "model max", "simulated", "full rate"},
	}
	for _, r := range rows {
		simv := "-"
		if r.ConvergedToFull {
			simv = fmt.Sprintf("%.0f", r.SimulatedRTTs)
		}
		t.AddRow(fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.ModelMinRTTs), fmt.Sprintf("%d", r.ModelMaxRTTs),
			simv, fmt.Sprintf("%v", r.ConvergedToFull))
	}
	return t
}

// Fig7Tables regenerates the §5 analytical curves: min/max utilization
// gain versus R/C (sub-figures a, b) and min/max FCT gain versus TR/Ti
// (sub-figures c, d) for three flow sizes, with the paper's parameters
// (C = 1 Gbps, RTT = 100 µs, TR = 0).
func Fig7Tables() []*Table {
	sizes := []int64{64_000, 1_000_000, 10_000_000}
	sizeNames := []string{"64KB", "1MB", "10MB"}
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	trFracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

	util := &Table{Title: "Fig 7(a,b) — utilization gain vs R/C (C=1Gbps, RTT=100µs)", Cols: []string{"R/C"}}
	for _, n := range sizeNames {
		util.Cols = append(util.Cols, n+" min", n+" max")
	}
	curves := make([][]model.GainPoint, len(sizes))
	for i, s := range sizes {
		curves[i] = model.UtilizationGainCurve(sim.Gbps, 100*sim.Microsecond, netsim.MSS, s, ratios)
	}
	for ri, r := range ratios {
		row := []string{fmt.Sprintf("%.1f", r)}
		for i := range sizes {
			row = append(row, fmt.Sprintf("%.3f", curves[i][ri].MinGain), fmt.Sprintf("%.3f", curves[i][ri].MaxGain))
		}
		util.AddRow(row...)
	}

	fct := &Table{Title: "Fig 7(c,d) — FCT gain vs TR/Ti (R/C=0.5)", Cols: []string{"TR/Ti"}}
	for _, n := range sizeNames {
		fct.Cols = append(fct.Cols, n+" min", n+" max")
	}
	fcurves := make([][]model.GainPoint, len(sizes))
	for i, s := range sizes {
		fcurves[i] = model.FCTGainCurve(sim.Gbps, 100*sim.Microsecond, netsim.MSS, s, 0.5, trFracs)
	}
	for ti, tr := range trFracs {
		row := []string{fmt.Sprintf("%.1f", tr)}
		for i := range sizes {
			row = append(row, fmt.Sprintf("%.3f", fcurves[i][ti].MinGain), fmt.Sprintf("%.3f", fcurves[i][ti].MaxGain))
		}
		fct.AddRow(row...)
	}
	return []*Table{util, fct}
}
