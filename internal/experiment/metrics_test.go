package experiment

import (
	"bytes"
	"strings"
	"testing"

	"amrt/internal/metrics"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

// metricsTestRun is a small full-stack simulation: AMRT on a 2×2
// fabric, 120 WebSearch flows, fixed seed.
func metricsTestRun(reg *metrics.Registry) RunResult {
	cfg := topo.DefaultLeafSpine()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts:    cfg.Hosts(),
		Load:     0.6,
		HostRate: cfg.HostRate,
		Dist:     workload.WebSearch(),
		Count:    120,
		Seed:     7,
	})
	return LeafSpineRun{
		Topo:    cfg,
		Stack:   MustStack("AMRT", StackOptions{}),
		Flows:   flows,
		Horizon: 5 * sim.Second,
		Metrics: reg,
	}.Run()
}

// TestMetricsDeterminism is the regression test for the telemetry
// determinism contract: two identical runs must produce byte-identical
// JSON and CSV dumps.
func TestMetricsDeterminism(t *testing.T) {
	var dumps [2]string
	var csvs [2]string
	for i := range dumps {
		reg := metrics.NewRegistry()
		metricsTestRun(reg)
		var j, c bytes.Buffer
		if err := reg.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		dumps[i], csvs[i] = j.String(), c.String()
	}
	if dumps[0] != dumps[1] {
		t.Fatal("metrics JSON differs between identical runs")
	}
	if csvs[0] != csvs[1] {
		t.Fatal("metrics CSV differs between identical runs")
	}
	for _, want := range []string{
		`"schema": "amrt-metrics/v1"`,
		"transport.flows_started",
		"transport.flows_completed",
		"amrt.grants_sent",
		"net.delivered",
		".queue_pkts",
		".mark_rate",
		".util",
	} {
		if !strings.Contains(dumps[0], want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// TestMetricsDoNotPerturbSimulation asserts that attaching telemetry
// changes nothing observable about the simulation itself: sampling
// callbacks read state, they never schedule protocol events. The
// ticker itself runs on the engine, but in the late observer band,
// which RunResult.Events excludes — so even the event count must
// match exactly.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	plain := metricsTestRun(nil)
	reg := metrics.NewRegistry()
	instrumented := metricsTestRun(reg)

	if plain.Completed != instrumented.Completed ||
		plain.AFCT != instrumented.AFCT ||
		plain.P99 != instrumented.P99 ||
		plain.Drops != instrumented.Drops ||
		plain.MaxQueue != instrumented.MaxQueue ||
		plain.Utilization != instrumented.Utilization ||
		plain.LastEnd != instrumented.LastEnd {
		t.Fatalf("telemetry perturbed the simulation:\nplain:        %+v\ninstrumented: %+v",
			plain, instrumented)
	}
	if instrumented.Events != plain.Events {
		t.Fatalf("late-band ticker leaked into the event count: %d != %d", instrumented.Events, plain.Events)
	}
}
