package experiment

import (
	"strconv"
	"testing"
)

func TestSizeBreakdownTableShape(t *testing.T) {
	cfg := smallConfig()
	cfg.Protocols = []string{"pHost", "AMRT"}
	tbl := SizeBreakdownTable(cfg, "WebSearch", 0.5)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Cols) != 7 {
		t.Fatalf("cols = %d", len(tbl.Cols))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", s, err)
		}
		return v
	}
	for _, row := range tbl.Rows {
		small := parse(row[1])
		large := parse(row[5])
		if small <= 0 || large <= 0 {
			t.Errorf("%s: empty size class (small=%v large=%v)", row[0], small, large)
		}
		// Short flows must complete far faster than the heavy tail.
		if small >= large {
			t.Errorf("%s: short-flow mean %.3f not below large-flow mean %.3f", row[0], small, large)
		}
		// p99 >= mean within each class.
		for c := 1; c < 7; c += 2 {
			if parse(row[c]) > parse(row[c+1]) {
				t.Errorf("%s: mean %s > p99 %s", row[0], row[c], row[c+1])
			}
		}
	}
}

func TestSizeBreakdownUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown workload did not panic")
		}
	}()
	SizeBreakdownTable(smallConfig(), "nope", 0.5)
}

func TestIncastTableShapeAndMonotonicity(t *testing.T) {
	fanIns := []int{2, 8}
	tbl := IncastTable(fanIns, 100_000)
	if len(tbl.Rows) != 2 || len(tbl.Cols) != 1+len(ProtocolNames()) {
		t.Fatalf("table shape %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	for c := 1; c < len(tbl.Cols); c++ {
		lo, err1 := strconv.ParseFloat(tbl.Rows[0][c], 64)
		hi, err2 := strconv.ParseFloat(tbl.Rows[1][c], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable cells %q %q", tbl.Rows[0][c], tbl.Rows[1][c])
		}
		// More senders, longer burst completion.
		if hi <= lo {
			t.Errorf("%s: fan-in 8 (%.3f) not slower than fan-in 2 (%.3f)", tbl.Cols[c], hi, lo)
		}
		// Ideal drain for 8×100KB at 10G is 0.64ms; nothing sane exceeds
		// 100× that.
		if hi > 64 {
			t.Errorf("%s: burst completion %.3f ms implausible", tbl.Cols[c], hi)
		}
	}
}

func TestRelatedWorkTableShape(t *testing.T) {
	tbl := RelatedWorkTable()
	if want := 1 + len(ProtocolNames()); len(tbl.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), want)
	}
	if tbl.Rows[0][0] != "DCTCP" || tbl.Rows[4][0] != "AMRT" || tbl.Rows[5][0] != "SIRD" {
		t.Error("protocol order wrong")
	}
	dctcpQ, _ := strconv.Atoi(tbl.Rows[0][4])
	amrtQ, _ := strconv.Atoi(tbl.Rows[4][4])
	if dctcpQ <= amrtQ {
		t.Errorf("reactive DCTCP queue %d should exceed AMRT's %d", dctcpQ, amrtQ)
	}
}
