package experiment

import (
	"strings"
	"testing"
)

// TestRegistryRoundTrip builds every registered stack by name and
// checks the pieces a runner needs are all present.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range StackNames() {
		st, err := NewStack(name, StackOptions{})
		if err != nil {
			t.Fatalf("NewStack(%q): %v", name, err)
		}
		if st.Name != name {
			t.Errorf("NewStack(%q).Name = %q", name, st.Name)
		}
		if st.SwitchQueue == nil || st.HostQueue == nil || st.New == nil {
			t.Errorf("%s: incomplete stack", name)
		}
		if !HasStack(name) {
			t.Errorf("HasStack(%q) = false", name)
		}
	}
}

// TestRegistryPresentationOrder pins the comparison order the figures
// depend on and checks AllStacks follows it.
func TestRegistryPresentationOrder(t *testing.T) {
	want := []string{"pHost", "Homa", "NDP", "AMRT", "SIRD"}
	got := ProtocolNames()
	if len(got) != len(want) {
		t.Fatalf("ProtocolNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProtocolNames() = %v, want %v", got, want)
		}
	}
	for i, st := range AllStacks(StackOptions{}) {
		if st.Name != want[i] {
			t.Errorf("AllStacks()[%d] = %s, want %s", i, st.Name, want[i])
		}
	}
	rel := RelatedNames()
	if len(rel) != 1 || rel[0] != "DCTCP" {
		t.Errorf("RelatedNames() = %v, want [DCTCP]", rel)
	}
	all := StackNames()
	if len(all) != len(want)+1 || all[len(all)-1] != "DCTCP" {
		t.Errorf("StackNames() = %v", all)
	}
}

// TestNewStackUnknownError checks the error path that replaced the old
// panic: an unknown name reports itself and the known set.
func TestNewStackUnknownError(t *testing.T) {
	_, err := NewStack("QUIC", StackOptions{})
	if err == nil {
		t.Fatal("NewStack(QUIC) succeeded")
	}
	if !strings.Contains(err.Error(), "QUIC") || !strings.Contains(err.Error(), "AMRT") {
		t.Errorf("error %q should name the unknown protocol and the known set", err)
	}
	if HasStack("QUIC") {
		t.Error("HasStack(QUIC) = true")
	}
}

// TestRegisterDuplicatePanics checks the registry rejects a second
// registration under an existing name at init time.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Descriptor{Name: "AMRT", Build: func(StackOptions) Stack { return Stack{} }})
}

// TestRegisterRejectsIncompleteDescriptors checks the empty-name and
// nil-Build guards.
func TestRegisterRejectsIncompleteDescriptors(t *testing.T) {
	for _, d := range []Descriptor{
		{Name: "", Build: func(StackOptions) Stack { return Stack{} }},
		{Name: "Incomplete"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", d)
				}
			}()
			Register(d)
		}()
	}
}

// TestForeignOptionProbes checks the option-ownership probe Validate
// builds on: each stack's knobs read as foreign to every other stack.
func TestForeignOptionProbes(t *testing.T) {
	cases := []struct {
		opts  StackOptions
		owner string
	}{
		{StackOptions{HomaDegree: 4}, "Homa"},
		{StackOptions{SIRDPoolBytes: 1 << 20}, "SIRD"},
		{StackOptions{SIRDStalenessRTTs: 4}, "SIRD"},
	}
	for _, c := range cases {
		if got := ForeignOption(c.owner, c.opts); got != "" {
			t.Errorf("ForeignOption(%s, own opts) = %q, want none", c.owner, got)
		}
		for _, other := range StackNames() {
			if other == c.owner {
				continue
			}
			if got := ForeignOption(other, c.opts); got != c.owner {
				t.Errorf("ForeignOption(%s, %s opts) = %q, want %q", other, c.owner, got, c.owner)
			}
		}
	}
	if got := ForeignOption("AMRT", StackOptions{}); got != "" {
		t.Errorf("ForeignOption(AMRT, zero opts) = %q", got)
	}
}

// TestCheckAndNarrowOptions checks per-stack value validation and the
// narrowing hook Compare uses on shared options.
func TestCheckAndNarrowOptions(t *testing.T) {
	if err := CheckOptions("Homa", StackOptions{HomaDegree: -1}); err == nil {
		t.Error("negative HomaDegree accepted")
	}
	if err := CheckOptions("SIRD", StackOptions{SIRDPoolBytes: -1}); err == nil {
		t.Error("negative SIRDPoolBytes accepted")
	}
	if err := CheckOptions("SIRD", StackOptions{SIRDStalenessRTTs: -1}); err == nil {
		t.Error("negative SIRDStalenessRTTs accepted")
	}
	shared := StackOptions{HomaDegree: 4, SIRDPoolBytes: 1 << 20, SIRDStalenessRTTs: 4}
	if got := NarrowOptions("Homa", shared); got.HomaDegree != 4 || got.SIRDPoolBytes != 0 {
		t.Errorf("NarrowOptions(Homa) = %+v", got)
	}
	if got := NarrowOptions("SIRD", shared); got.SIRDPoolBytes != 1<<20 || got.SIRDStalenessRTTs != 4 || got.HomaDegree != 0 {
		t.Errorf("NarrowOptions(SIRD) = %+v", got)
	}
	if got := NarrowOptions("pHost", shared); got.HomaDegree != 0 || got.SIRDPoolBytes != 0 || got.SIRDStalenessRTTs != 0 {
		t.Errorf("NarrowOptions(pHost) = %+v", got)
	}
}
