package experiment

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// Fairness: four equal flows to distinct receivers over one bottleneck,
// started within a few µs. Measure Jain's index of their goodput over
// the shared window [1ms, 4ms] (all flows active). Receiver-driven
// transports should share reasonably; AMRT's marks must not let one
// flow capture the link.
func TestFairnessAcrossProtocols(t *testing.T) {
	for _, proto := range StackNames() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			st := MustStack(proto, StackOptions{})
			sc := topo.DefaultScenario()
			sc.SwitchQueue = st.SwitchQueue
			sc.HostQueue = st.HostQueue
			sc.Marker = st.Marker
			s := topo.NewFan(sc)
			bytesIn := make([]int64, 4)
			base := transport.Config{
				RTT: 100 * sim.Microsecond,
				OnData: func(f *transport.Flow, pkt *netsim.Packet) {
					now := s.Net.Engine.Now()
					if now >= sim.Millisecond && now < 4*sim.Millisecond {
						bytesIn[int(f.ID-1)] += int64(pkt.Size)
					}
				},
			}
			inst := st.New(s.Net, base)
			for i := 0; i < 4; i++ {
				inst.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 20_000_000, sim.Time(i)*2500)
			}
			s.Net.Run(4 * sim.Millisecond)
			rates := make([]float64, 4)
			var total float64
			for i, b := range bytesIn {
				rates[i] = float64(b)
				total += rates[i]
			}
			if total == 0 {
				t.Fatal("no goodput in the measurement window")
			}
			jain := stats.JainIndex(rates)
			// pHost's chop is known to be unfair at flow start; demand a
			// floor of 0.5 there and 0.6 elsewhere (1.0 = perfect).
			floor := 0.6
			if proto == "pHost" {
				floor = 0.5
			}
			if jain < floor {
				t.Errorf("Jain index %.3f below %.2f (rates %v)", jain, floor, rates)
			}
		})
	}
}
