package experiment

import (
	"amrt/internal/faults"
	"amrt/internal/sim"
	"amrt/internal/topo"
)

// SimConfig drives the large-scale figures (12, 13, 14). The defaults
// are a scaled-down instance of the paper's §8.1 setup (10 leaves ×
// 8 spines × 400 hosts) so the full figure set regenerates in minutes;
// the cmd/figures flags restore paper scale.
type SimConfig struct {
	Topo      topo.LeafSpineConfig
	Loads     []float64
	Workloads []string
	Protocols []string

	// FlowsPerRun is the number of flows per simulation; BytesBudget, if
	// positive, additionally caps the flow count so expected total bytes
	// stay below it (keeps heavy-tailed runs tractable).
	FlowsPerRun int
	BytesBudget int64

	Seed    int64
	Horizon sim.Time

	// Repeats averages the stochastic figures (Fig. 14) over this many
	// seeds.
	Repeats int

	// HomaDegrees lists the overcommitment levels Fig. 14 sweeps.
	HomaDegrees []int

	// FaultSpec, when non-empty, is a fault-injection spec (grammar in
	// docs/FAULTS.md, parsed by internal/faults) applied to every
	// figure simulation: link flaps, rate degradation, and control/data
	// loss processes. Each run gets a fresh plan seeded from Seed (or
	// the spec's own seed= clause), so fault randomness is reproducible
	// per run and independent across parallel runs.
	FaultSpec string

	// MetricsDir, when set, attaches a telemetry registry to every
	// figure-12/13 simulation and writes one JSON dump per run
	// (<dir>/<figure>_<workload>_<point>_<proto>.metrics.json; schema
	// in docs/TELEMETRY.md). MetricsInterval is the sampling period
	// (default 100 µs).
	MetricsDir      string
	MetricsInterval sim.Time

	// Shards is the engine-shard count each figure simulation runs with
	// (0 or 1 = single-engine reference path; see docs/PARALLELISM.md).
	// Results are byte-identical at every shard count, so this is purely
	// a wall-clock knob; it composes with the run-level parallelism of
	// Parallel, so total goroutines ≈ runs-in-flight × Shards.
	Shards int
}

// DefaultSimConfig returns the scaled-down evaluation setup.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Topo:        topo.DefaultLeafSpine(),
		Loads:       []float64{0.1, 0.3, 0.5, 0.7},
		Workloads:   []string{"WebServer", "CacheFollower", "HadoopCluster", "WebSearch", "DataMining"},
		Protocols:   ProtocolNames(),
		FlowsPerRun: 2000,
		BytesBudget: 1 << 31, // 2 GiB of payload per run
		Seed:        1,
		Horizon:     20 * sim.Second,
		Repeats:     5,
		HomaDegrees: []int{2, 4, 8},
	}
}

// PaperSimConfig returns the full-scale §8.1 setup.
func PaperSimConfig() SimConfig {
	c := DefaultSimConfig()
	c.Topo = topo.PaperLeafSpine()
	c.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	c.FlowsPerRun = 20000
	c.BytesBudget = 0
	c.Repeats = 50
	return c
}

// newFaultPlan parses FaultSpec into a fresh plan for one run (plans
// hold per-run counters and queue-seed state, so they must not be
// shared across the parallel figure runs). The spec was validated at
// flag-parse time in the CLIs; a bad spec reaching this point panics.
func (c SimConfig) newFaultPlan() *faults.Plan {
	if c.FaultSpec == "" {
		return nil
	}
	p := faults.MustParse(c.FaultSpec)
	if p.Seed == 0 {
		p.Seed = c.Seed
	}
	return p
}

// flowCount applies the byte budget to the configured flow count.
func (c SimConfig) flowCount(meanBytes float64) int {
	n := c.FlowsPerRun
	if c.BytesBudget > 0 {
		if cap := int(float64(c.BytesBudget) / meanBytes); cap < n {
			n = cap
		}
	}
	if n < 50 {
		n = 50
	}
	return n
}
