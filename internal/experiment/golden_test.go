package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

// This file is the golden-trace equivalence proof required by the
// timing-wheel migration: the wheel and the reference heap scheduler
// must produce byte-identical results — down to the serialized metrics
// dumps — for the paper's Fig-1 and Fig-9 workloads at the same seed.
// Any divergence means the wheel broke the (at, seq) dispatch order.

// underScheduler runs fn with the process-wide default scheduler set to
// kind, restoring the previous default afterwards.
func underScheduler(kind sim.SchedulerKind, fn func()) {
	prev := sim.DefaultScheduler()
	sim.SetDefaultScheduler(kind)
	defer sim.SetDefaultScheduler(prev)
	fn()
}

// serializeSeries writes every sample with full float precision: two
// runs agree iff their traces are bit-identical.
func serializeSeries(buf *bytes.Buffer, series []*stats.Series) {
	for _, s := range series {
		fmt.Fprintf(buf, "series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(buf, "%d %x\n", int64(p.T), p.V)
		}
	}
}

func goldenFig1(kind sim.SchedulerKind, stack string) string {
	var buf bytes.Buffer
	underScheduler(kind, func() {
		res := Fig1(MustStack(stack, StackOptions{}))
		serializeSeries(&buf, res.FlowSeries)
		serializeSeries(&buf, []*stats.Series{res.Util, res.LinkUtil})
		res.Phases.Fprint(&buf)
	})
	return buf.String()
}

func goldenFig9(kind sim.SchedulerKind) string {
	var buf bytes.Buffer
	underScheduler(kind, func() {
		res := Fig9(MustStack("AMRT", StackOptions{}))
		serializeSeries(&buf, res.Series)
		res.Summary.Fprint(&buf)
		for _, f := range res.Flows {
			fmt.Fprintf(&buf, "flow %d done=%v end=%d\n", f.ID, f.Done, int64(f.End))
		}
	})
	return buf.String()
}

func TestGoldenTraceFig1(t *testing.T) {
	for _, stack := range []string{"pHost", "AMRT"} {
		wheel := goldenFig1(sim.SchedulerWheel, stack)
		heap := goldenFig1(sim.SchedulerHeap, stack)
		if wheel != heap {
			t.Errorf("Fig1 %s trace differs between wheel and heap schedulers", stack)
		}
	}
}

func TestGoldenTraceFig9(t *testing.T) {
	if goldenFig9(sim.SchedulerWheel) != goldenFig9(sim.SchedulerHeap) {
		t.Error("Fig9 trace differs between wheel and heap schedulers")
	}
}

// TestGoldenTraceMetricsDump runs the full leaf-spine telemetry workload
// under both schedulers and requires byte-identical JSON dumps — the
// strongest end-to-end statement of the determinism contract, since the
// dump embeds every sampled queue/utilization/counter series.
func TestGoldenTraceMetricsDump(t *testing.T) {
	dump := func(kind sim.SchedulerKind) string {
		var j bytes.Buffer
		underScheduler(kind, func() {
			reg := metrics.NewRegistry()
			metricsTestRun(reg)
			if err := reg.WriteJSON(&j); err != nil {
				t.Fatal(err)
			}
		})
		return j.String()
	}
	wheel := dump(sim.SchedulerWheel)
	heap := dump(sim.SchedulerHeap)
	if wheel == "" {
		t.Fatal("empty metrics dump")
	}
	if wheel != heap {
		t.Fatal("metrics JSON differs between wheel and heap schedulers")
	}
}

// TestGoldenTraceNodeFaults extends the scheduler-equivalence proof to
// the node-fault machinery: a host crash, a leaf reboot, and an ECMP
// rehash under Poisson traffic — auditor on — must produce byte-identical
// metrics dumps and flow outcomes under the wheel and heap schedulers.
// Crash cleanup, reboot flushes, and the watchdog all schedule events;
// any ordering divergence between the schedulers shows up here.
func TestGoldenTraceNodeFaults(t *testing.T) {
	dump := func(kind sim.SchedulerKind) string {
		var buf bytes.Buffer
		underScheduler(kind, func() {
			cfg := topo.DefaultLeafSpine()
			cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
			flows := workload.GeneratePoisson(workload.PoissonConfig{
				Hosts:    cfg.Hosts(),
				Load:     0.6,
				HostRate: cfg.HostRate,
				Dist:     workload.WebSearch(),
				Count:    80,
				Seed:     11,
			})
			plan := faults.MustParse("crash=h1.2,at=1ms,up=3ms;reboot=spine0,at=2ms,up=4ms;rehash=5ms")
			plan.Seed = 11
			reg := metrics.NewRegistry()
			res := LeafSpineRun{
				Topo:    cfg,
				Stack:   MustStack("AMRT", StackOptions{}),
				Flows:   flows,
				Horizon: 5 * sim.Second,
				Metrics: reg,
				Faults:  plan,
				Audit:   true,
			}.Run()
			if err := reg.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			for _, o := range res.Outcomes {
				fmt.Fprintf(&buf, "flow %d %v last=%d\n", o.ID, o.Outcome, int64(o.LastProgress))
			}
		})
		return buf.String()
	}
	wheel := dump(sim.SchedulerWheel)
	heap := dump(sim.SchedulerHeap)
	if wheel == "" {
		t.Fatal("empty node-fault dump")
	}
	if wheel != heap {
		t.Fatal("node-fault trace differs between wheel and heap schedulers")
	}
}
