package experiment

import (
	"fmt"

	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// SizeBreakdownTable complements Fig. 12: the same Poisson experiment,
// but with FCT reported separately for short flows (<10 KB — the
// delay-sensitive RPCs the introduction leads with), medium flows, and
// the heavy tail (≥1 MB). Receiver-driven designs are judged on keeping
// the short-flow tail flat while the large flows fight for bandwidth.
func SizeBreakdownTable(cfg SimConfig, workloadName string, load float64) *Table {
	w := workload.ByName(workloadName)
	if w == nil {
		panic(fmt.Sprintf("experiment: unknown workload %q", workloadName))
	}
	t := &Table{
		Title: fmt.Sprintf("FCT by flow size — %s @ load %.1f (ms, mean / p99)", workloadName, load),
		Cols:  []string{"proto", "<10KB mean", "<10KB p99", "10KB-1MB mean", "10KB-1MB p99", ">=1MB mean", ">=1MB p99"},
	}
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts:    cfg.Topo.Hosts(),
		Load:     load,
		HostRate: cfg.Topo.HostRate,
		Dist:     w,
		Count:    cfg.flowCount(w.Mean()),
		Seed:     sim.SubSeed(cfg.Seed, "breakdown-"+workloadName),
	})
	type out struct{ rows []string }
	results := Parallel(len(cfg.Protocols), func(i int) out {
		st := MustStack(cfg.Protocols[i], StackOptions{})
		res := LeafSpineRun{Topo: cfg.Topo, Stack: st, Flows: flows, Horizon: cfg.Horizon, Shards: cfg.Shards}.Run()
		small, rest := res.Collector.BySize(10_000)
		medium, large := rest.BySize(1_000_000)
		row := []string{st.Name}
		for _, c := range []*stats.FCTCollector{small, medium, large} {
			row = append(row,
				fmt.Sprintf("%.3f", c.Mean().Milliseconds()),
				fmt.Sprintf("%.3f", c.P99().Milliseconds()))
		}
		return out{rows: row}
	})
	for _, r := range results {
		t.AddRow(r.rows...)
	}
	return t
}

// IncastTable reproduces the §8 incast scenario: N synchronized senders
// deliver the same-size response to one aggregator, sweeping the fan-in.
// It reports the burst completion time (the time the slowest response
// arrives — the metric partition/aggregate applications feel) per
// protocol.
func IncastTable(fanIns []int, sizeBytes int64) *Table {
	t := &Table{
		Title: fmt.Sprintf("Incast — burst completion time (ms) for %dKB responses", sizeBytes/1000),
		Cols:  append([]string{"fan-in"}, ProtocolNames()...),
	}
	type key struct{ fi, pi int }
	var specs []key
	for fi := range fanIns {
		for pi := range ProtocolNames() {
			specs = append(specs, key{fi, pi})
		}
	}
	results := Parallel(len(specs), func(i int) sim.Time {
		k := specs[i]
		st := MustStack(ProtocolNames()[k.pi], StackOptions{})
		sc := topo.DefaultScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		n := fanIns[k.fi]
		s := topo.NewFanN(sc, n)
		inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond})
		specsIn := workload.Incast(seqInts(n), 0, sizeBytes, 0)
		var flows []*transport.Flow
		for _, fs := range specsIn {
			flows = append(flows, inst.AddFlow(fs.ID, s.Senders[fs.Src], s.Receivers[0], fs.Size, fs.Start))
		}
		s.Net.Run(10 * sim.Second)
		var last sim.Time
		for _, f := range flows {
			if !f.Done {
				return sim.Forever
			}
			if f.End > last {
				last = f.End
			}
		}
		return last
	})
	for fi, n := range fanIns {
		row := []string{fmt.Sprintf("%d", n)}
		for pi := range ProtocolNames() {
			v := results[fi*len(ProtocolNames())+pi]
			if v == sim.Forever {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.3f", v.Milliseconds()))
			}
		}
		t.AddRow(row...)
	}
	return t
}
