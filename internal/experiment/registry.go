package experiment

import (
	"fmt"
	"sort"
)

// Descriptor describes one protocol stack to the registry: its name,
// where it sits in the paper's presentation order, how to build it, and
// the hooks the options path needs. Registering a descriptor (normally
// from an init function next to the stack's constructor) is the single
// step that makes a protocol visible everywhere — ProtocolNames,
// AllStacks, the public amrt validation, the CLIs, and the docs checker
// all derive from the registry, so there is one list and no drift.
type Descriptor struct {
	// Name is the protocol's presentation name ("pHost", "AMRT", ...).
	Name string
	// Order is the position within the paper's comparison set (or within
	// the related-work set when Related is true). Orders must be dense
	// per set but the registry only sorts by them.
	Order int
	// Related marks stacks outside the paper's head-to-head comparison
	// (DCTCP): excluded from ProtocolNames/AllStacks, still buildable by
	// name through NewStack.
	Related bool

	// Build constructs the stack from the (already narrowed or shared)
	// options. Required.
	Build func(opts StackOptions) Stack

	// OptionsSet reports whether opts carries an option specific to this
	// stack — the probe Validate uses to reject options aimed at a
	// different protocol. Nil means the stack exposes no public options.
	OptionsSet func(opts StackOptions) bool
	// Narrow returns opts reduced to this stack's own fields, so a
	// shared options struct can be re-validated per comparison leg.
	// Nil means "narrow to nothing" (StackOptions zero value).
	Narrow func(opts StackOptions) StackOptions
	// CheckOptions validates this stack's own option fields. Nil means
	// every value is acceptable.
	CheckOptions func(opts StackOptions) error
}

var (
	registry  = map[string]Descriptor{}
	compareBy []string // comparison names, sorted by Order
	relatedBy []string // related names, sorted by Order
)

// Register adds a stack descriptor to the registry. It panics on a
// duplicate or empty name or a nil Build hook — registration happens in
// init functions, where failing loudly at program start is the point.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("experiment: Register with empty stack name")
	}
	if d.Build == nil {
		panic(fmt.Sprintf("experiment: Register(%q) with nil Build", d.Name))
	}
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("experiment: duplicate stack registration %q", d.Name))
	}
	registry[d.Name] = d
	if d.Related {
		relatedBy = insertByOrder(relatedBy, d.Name)
	} else {
		compareBy = insertByOrder(compareBy, d.Name)
	}
}

func insertByOrder(names []string, name string) []string {
	names = append(names, name)
	sort.Slice(names, func(i, j int) bool {
		a, b := registry[names[i]], registry[names[j]]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.Name < b.Name
	})
	return names
}

// ProtocolNames returns the comparison protocols in the order the
// paper's figures present them. The slice is a copy; callers may keep
// or mutate it.
func ProtocolNames() []string {
	return append([]string(nil), compareBy...)
}

// RelatedNames returns the registered related-work stacks (outside the
// comparison set) in their own presentation order.
func RelatedNames() []string {
	return append([]string(nil), relatedBy...)
}

// StackNames returns every registered stack: the comparison set in
// presentation order followed by the related-work set.
func StackNames() []string {
	return append(ProtocolNames(), relatedBy...)
}

// HasStack reports whether name is a registered stack (comparison or
// related).
func HasStack(name string) bool {
	_, ok := registry[name]
	return ok
}

// NewStack builds the named protocol stack. Unknown names return an
// error; foreign options do not — comparison runs hand one shared
// options struct to every stack and each constructor reads only its own
// fields (use ForeignOption/CheckOptions to validate user input).
func NewStack(name string, opts StackOptions) (Stack, error) {
	d, ok := registry[name]
	if !ok {
		return Stack{}, fmt.Errorf("experiment: unknown protocol %q (have %v)", name, StackNames())
	}
	return d.Build(opts), nil
}

// MustStack is NewStack for callers whose protocol name is a literal
// (figures, benchmarks, tests); it panics on an unknown name.
func MustStack(name string, opts StackOptions) Stack {
	st, err := NewStack(name, opts)
	if err != nil {
		panic(err)
	}
	return st
}

// AllStacks returns the comparison stacks in presentation order, all
// built from the same shared options.
func AllStacks(opts StackOptions) []Stack {
	names := ProtocolNames()
	out := make([]Stack, 0, len(names))
	for _, n := range names {
		out = append(out, MustStack(n, opts))
	}
	return out
}

// ForeignOption reports the name of a registered stack other than name
// whose options are set in opts, or "" if opts carries nothing foreign.
// Validation uses it to reject, e.g., SIRD knobs on an AMRT run.
func ForeignOption(name string, opts StackOptions) string {
	for _, n := range StackNames() {
		if n == name {
			continue
		}
		if probe := registry[n].OptionsSet; probe != nil && probe(opts) {
			return n
		}
	}
	return ""
}

// CheckOptions validates the named stack's own option fields (unknown
// names and foreign options are not its job — see NewStack and
// ForeignOption).
func CheckOptions(name string, opts StackOptions) error {
	d, ok := registry[name]
	if !ok || d.CheckOptions == nil {
		return nil
	}
	return d.CheckOptions(opts)
}

// NarrowOptions returns opts reduced to the named stack's own fields;
// comparison runs use it to re-validate a shared options struct one leg
// at a time.
func NarrowOptions(name string, opts StackOptions) StackOptions {
	d, ok := registry[name]
	if !ok || d.Narrow == nil {
		return StackOptions{}
	}
	return d.Narrow(opts)
}
