package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amrt/internal/metrics"
	"amrt/internal/sim"
)

// newRunMetrics builds the optional per-run registry for a SimConfig
// sweep: nil when MetricsDir is unset, otherwise a fresh registry whose
// dump runSpec's simulation will fill.
func (c SimConfig) newRunMetrics() *metrics.Registry {
	if c.MetricsDir == "" {
		return nil
	}
	return metrics.NewRegistry()
}

// WriteMetricsDump writes reg as <dir>/<name>.metrics.json, creating
// dir if needed. It is a no-op on a nil registry.
func WriteMetricsDump(dir, name string, reg *metrics.Registry) error {
	if reg == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, metricsFileName(name)))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// dumpRunMetrics is WriteMetricsDump with errors reported to stderr —
// sweep workers should not abort a figure because one telemetry file
// failed to write.
func dumpRunMetrics(dir, name string, reg *metrics.Registry) {
	if err := WriteMetricsDump(dir, name, reg); err != nil {
		fmt.Fprintf(os.Stderr, "experiment: writing metrics %s: %v\n", name, err)
	}
}

// metricsFileName maps a run label to a safe file name.
func metricsFileName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String() + ".metrics.json"
}

// DefaultMetricsInterval is the telemetry sampling period applied when
// a configuration leaves the interval unset: 100 µs of virtual time
// (see docs/TELEMETRY.md). Every layer that resolves an interval —
// amrt.Config, SimConfig, LeafSpineRun — goes through
// MetricsIntervalOrDefault so the default lives in exactly one place.
const DefaultMetricsInterval = 100 * sim.Microsecond

// MetricsIntervalOrDefault returns iv when positive, otherwise
// DefaultMetricsInterval.
func MetricsIntervalOrDefault(iv sim.Time) sim.Time {
	if iv > 0 {
		return iv
	}
	return DefaultMetricsInterval
}

// metricsInterval returns the configured sampling period with the
// default applied.
func (c SimConfig) metricsInterval() sim.Time {
	return MetricsIntervalOrDefault(c.MetricsInterval)
}
