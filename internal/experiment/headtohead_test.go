package experiment

import "testing"

// TestHeadToHeadSIRDBufferVsAMRT pins the trade-off the SIRD stack
// exists for: on the fat-tree incast, the bounded credit pool must keep
// buffer occupancy at or below AMRT's while giving up little goodput.
// The shuffle cell rides along as a sanity check that every leg
// completes its flows under sustained all-to-all load.
func TestHeadToHeadSIRDBufferVsAMRT(t *testing.T) {
	if testing.Short() {
		t.Skip("head-to-head runs 6 audited fat-tree cells")
	}
	cells := HeadToHead(StackOptions{})
	if want := 2 * len(HeadToHeadProtocols()); len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	byKey := map[string]HeadToHeadCell{}
	for _, c := range cells {
		byKey[c.Workload+"/"+c.Stack] = c
		if c.Completed != c.Total {
			t.Errorf("%s/%s completed %d/%d flows", c.Workload, c.Stack, c.Completed, c.Total)
		}
	}

	sird, amrt := byKey["incast/SIRD"], byKey["incast/AMRT"]
	if sird.Stack == "" || amrt.Stack == "" {
		t.Fatal("missing incast cells for SIRD or AMRT")
	}
	if sird.MaxQueue > amrt.MaxQueue {
		t.Errorf("incast: SIRD max queue %d pkts exceeds AMRT's %d — the credit pool is not bounding buffers",
			sird.MaxQueue, amrt.MaxQueue)
	}
	if sird.Utilization < 0.9*amrt.Utilization {
		t.Errorf("incast: SIRD utilization %.3f is not comparable to AMRT's %.3f (want >= 90%%)",
			sird.Utilization, amrt.Utilization)
	}

	// The table must render a row per cell without panicking on shape.
	if tb := HeadToHeadTable(cells); len(tb.Rows) != len(cells) {
		t.Errorf("table has %d rows, want %d", len(tb.Rows), len(cells))
	}
}

// TestHeadToHeadProtocolsFromRegistry checks the comparison legs come
// from the registry in presentation order — pHost before AMRT before
// SIRD — rather than a hand-kept list.
func TestHeadToHeadProtocolsFromRegistry(t *testing.T) {
	got := HeadToHeadProtocols()
	want := []string{"pHost", "AMRT", "SIRD"}
	if len(got) != len(want) {
		t.Fatalf("HeadToHeadProtocols() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HeadToHeadProtocols() = %v, want %v", got, want)
		}
	}
}
