package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelEmpty(t *testing.T) {
	out := Parallel(0, func(i int) int { t.Fatal("fn called for n=0"); return 0 })
	if len(out) != 0 {
		t.Fatalf("n=0 returned %d results", len(out))
	}
}

func TestParallelSingle(t *testing.T) {
	out := Parallel(1, func(i int) int { return i + 41 })
	if len(out) != 1 || out[0] != 41 {
		t.Fatalf("n=1 returned %v", out)
	}
}

func TestParallelOrderingAndCoverage(t *testing.T) {
	// More work items than workers, each index exactly once, results in
	// index order regardless of which worker ran them.
	n := 4*runtime.GOMAXPROCS(0) + 7
	var calls atomic.Int64
	out := Parallel(n, func(i int) int {
		calls.Add(1)
		return i * i
	})
	if int(calls.Load()) != n {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelPropagatesPanic(t *testing.T) {
	var calls atomic.Int64
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic was swallowed")
		}
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("re-panicked with %T, want *WorkerPanic", v)
		}
		if wp.Index != 5 || wp.Value != "boom" {
			t.Errorf("WorkerPanic = index %d value %v, want index 5 value boom", wp.Index, wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Error("WorkerPanic carries no worker stack")
		}
		// The panic must not have aborted the rest of the sweep.
		if int(calls.Load()) != 16 {
			t.Errorf("fn called %d times, want all 16 despite the panic", calls.Load())
		}
	}()
	Parallel(16, func(i int) int {
		calls.Add(1)
		if i == 5 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Parallel returned instead of panicking")
}

func TestParallelRespectsGOMAXPROCS(t *testing.T) {
	// With GOMAXPROCS forced to 1 the pool must not run two fn calls
	// concurrently, even on a many-core machine.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	var mu sync.Mutex
	var inFlight, maxInFlight int
	Parallel(16, func(i int) struct{} {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		for j := 0; j < 1000; j++ {
			_ = j // busy moment to widen any overlap window
		}
		mu.Lock()
		inFlight--
		mu.Unlock()
		return struct{}{}
	})
	if maxInFlight > 1 {
		t.Fatalf("observed %d concurrent workers under GOMAXPROCS=1", maxInFlight)
	}
}
