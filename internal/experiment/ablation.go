package experiment

import (
	"fmt"

	"amrt/internal/core"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// rampRun measures an AMRT variant (or baseline stack) on the ramp
// scenario: a single 8 MB flow starting from an 8-packet window on an
// idle 10 G path. It returns the FCT and the fraction of grants marked.
func rampRun(st Stack, blind int) (fct sim.Time, done bool) {
	sc := topo.DefaultScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewFanN(sc, 1)
	base := transport.Config{RTT: 100 * sim.Microsecond, BlindWindow: blind}
	inst := st.New(s.Net, base)
	f := inst.AddFlow(1, s.Senders[0], s.Receivers[0], 8_000_000, 0)
	s.Net.Run(2 * sim.Second)
	return f.FCT(), f.Done
}

// MarkingAblation sweeps the anti-ECN design choices DESIGN.md calls
// out — marking-gap factor, multi-hop combine operator, and marked-grant
// burst — on the ramp scenario, with pHost as the no-marking baseline.
func MarkingAblation() *Table {
	t := &Table{
		Title: "Ablation — anti-ECN design choices (8MB flow, 8-pkt initial window, idle 10G path)",
		Cols:  []string{"variant", "FCT(ms)", "completed", "vs default"},
	}
	type variant struct {
		name string
		st   Stack
	}
	mk := func(name string, mut func(*core.Config)) variant {
		cfg := core.DefaultConfig()
		if mut != nil {
			mut(&cfg)
		}
		return variant{name: name, st: MustStack("AMRT", StackOptions{AMRT: cfg})}
	}
	variants := []variant{
		mk("AMRT default (gap=1.0, AND, burst=2)", nil),
		mk("gap factor 0.5", func(c *core.Config) { c.GapFactor = 0.5 }),
		mk("gap factor 2.0", func(c *core.Config) { c.GapFactor = 2.0 }),
		mk("OR combine", func(c *core.Config) { c.Combine = netsim.CombineOR }),
		mk("grant burst 3", func(c *core.Config) { c.GrantBurst = 3 }),
		{name: "pHost (no marking)", st: MustStack("pHost", StackOptions{})},
	}
	results := Parallel(len(variants), func(i int) sim.Time {
		fct, done := rampRun(variants[i].st, 8)
		if !done {
			return -1
		}
		return fct
	})
	base := results[0]
	for i, v := range variants {
		fct := results[i]
		if fct < 0 {
			t.AddRow(v.name, "-", "false", "-")
			continue
		}
		t.AddRow(v.name, fmt.Sprintf("%.3f", fct.Milliseconds()), "true",
			fmt.Sprintf("%+.1f%%", 100*(float64(fct)/float64(base)-1)))
	}
	return t
}

// QueueCapAblation sweeps AMRT's switch data-queue cap under an
// 8-to-1 incast, reporting tail FCT, drops, and peak queue depth — the
// latency-vs-loss tradeoff behind the paper's choice of 8.
func QueueCapAblation() *Table {
	t := &Table{
		Title: "Ablation — AMRT switch data-queue cap (8-to-1 incast, 500KB each)",
		Cols:  []string{"cap(pkts)", "AFCT(ms)", "p99(ms)", "drops", "max queue"},
	}
	caps := []int{4, 8, 16, 64, 128}
	type out struct {
		afct, p99 sim.Time
		drops     int64
		maxq      int
	}
	results := Parallel(len(caps), func(i int) out {
		cfg := core.DefaultConfig()
		cfg.DataQueueCap = caps[i]
		st := MustStack("AMRT", StackOptions{AMRT: cfg})
		sc := topo.DefaultScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		s := topo.NewFanN(sc, 8)
		col := stats.NewFCTCollector()
		base := transport.Config{RTT: 100 * sim.Microsecond, Collector: col}
		inst := st.New(s.Net, base)
		mon := netsim.Attach(s.Switches[1].Ports()[0]) // downlink to R0
		for h := 0; h < 8; h++ {
			inst.AddFlow(netsim.FlowID(h+1), s.Senders[h], s.Receivers[0], 500_000, 0)
		}
		s.Net.Run(5 * sim.Second)
		return out{afct: col.Mean(), p99: col.P99(), drops: s.Net.Dropped(), maxq: mon.MaxQueueLen}
	})
	for i, cap := range caps {
		r := results[i]
		t.AddRow(fmt.Sprintf("%d", cap),
			fmt.Sprintf("%.3f", r.afct.Milliseconds()),
			fmt.Sprintf("%.3f", r.p99.Milliseconds()),
			fmt.Sprintf("%d", r.drops),
			fmt.Sprintf("%d", r.maxq))
	}
	return t
}
