package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result grid: the harness's equivalent of one
// paper figure or sub-figure.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("experiment: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Cols)
	rule := make([]string, len(t.Cols))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
