package experiment

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// This file is the shard-count-equivalence proof required by the
// parallel engine (docs/PARALLELISM.md): the sharded conservative
// time-window loop must produce byte-identical results — flow goodput
// traces, event traces, metrics dumps, outcomes — to the single-engine
// reference at the same seed, for every shard count and under both
// schedulers. It is the sharding analogue of golden_test.go's
// wheel-vs-heap proof.

// serializeSorted writes the series in name order with full float
// precision, so the bytes compare across runs that discovered flows in
// different orders.
func serializeSorted(buf *bytes.Buffer, series []*stats.Series) {
	sorted := make([]*stats.Series, len(series))
	copy(sorted, series)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	serializeSeries(buf, sorted)
}

// goldenFig1Shards runs the Fig-1 chain workload on the harness at the
// given shard count and serializes its traces. At nshards == 1 the
// harness is the single-engine reference path.
func goldenFig1Shards(kind sim.SchedulerKind, stack string, nshards int) string {
	var buf bytes.Buffer
	underScheduler(kind, func() {
		st := MustStack(stack, StackOptions{})
		sc := topo.DefaultScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		s := topo.NewChain(sc)
		mon := netsim.Attach(s.Bottlenecks[0])

		names := []string{"f0", "f1", "f2", "f3"}
		h := NewScenarioHarness(s, st, transport.Config{RTT: 100 * sim.Microsecond}, nshards, 100*sim.Microsecond, names)
		h.AddFlow(1, s.Senders[0], s.Receivers[0], 25_000_000, 0)
		h.AddFlow(2, s.Senders[1], s.Receivers[1], 25_000_000, 2500*sim.Nanosecond)
		h.AddFlow(3, s.Senders[2], s.Receivers[2], 25_000_000, sim.Millisecond)
		h.AddFlow(4, s.Senders[3], s.Receivers[3], 25_000_000, 3500*sim.Microsecond)

		const horizon = 8 * sim.Millisecond
		linkUtil := h.TrackUtil("btl0-link-util", s.Bottlenecks[0], mon, 100*sim.Microsecond, horizon)
		h.Run(horizon)

		series := h.Series()
		serializeSorted(&buf, series)
		serializeSeries(&buf, []*stats.Series{
			stats.SumSeries("btl0-goodput-util", pick(series, "f0"), pick(series, "f1")),
			linkUtil,
		})
	})
	return buf.String()
}

// goldenFig9Shards is the same proof on the Fig-9 testbed topology.
func goldenFig9Shards(kind sim.SchedulerKind, nshards int) string {
	var buf bytes.Buffer
	underScheduler(kind, func() {
		st := MustStack("AMRT", StackOptions{})
		sc := topo.TestbedScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		s := topo.NewTestbedDynamic(sc)

		names := []string{"f1", "f2", "f3", "f4"}
		h := NewScenarioHarness(s, st, transport.Config{RTT: 100 * sim.Microsecond}, nshards, 250*sim.Microsecond, names)
		h.AddFlow(1, s.Senders[0], s.Receivers[0], 312_500, 0)
		h.AddFlow(2, s.Senders[1], s.Receivers[1], 2_000_000, 0)
		h.AddFlow(3, s.Senders[2], s.Receivers[2], 812_500, 0)
		h.AddFlow(4, s.Senders[3], s.Receivers[3], 2_000_000, 0)

		h.Run(40 * sim.Millisecond)
		serializeSorted(&buf, h.Series())
		for _, f := range h.Flows() {
			fmt.Fprintf(&buf, "flow %d done=%v end=%d\n", f.ID, f.Done, int64(f.End))
		}
	})
	return buf.String()
}

// TestGoldenShardsFig1 proves shards=1 vs shards=N byte-identity on the
// Fig-1 chain for a sender-paced (pHost) and a receiver-driven (AMRT)
// stack, across every shard count the 3-switch topology admits.
func TestGoldenShardsFig1(t *testing.T) {
	for _, stack := range []string{"pHost", "AMRT"} {
		ref := goldenFig1Shards(sim.SchedulerWheel, stack, 1)
		if ref == "" {
			t.Fatalf("Fig1 %s: empty reference trace", stack)
		}
		for _, n := range []int{2, 3} {
			if got := goldenFig1Shards(sim.SchedulerWheel, stack, n); got != ref {
				t.Errorf("Fig1 %s: %d-shard trace differs from single-engine reference", stack, n)
			}
		}
	}
}

// TestGoldenShardsFig9 proves shards=1 vs shards=N byte-identity on the
// Fig-9 testbed (4 switches, two independent dumbbells).
func TestGoldenShardsFig9(t *testing.T) {
	ref := goldenFig9Shards(sim.SchedulerWheel, 1)
	if ref == "" {
		t.Fatal("Fig9: empty reference trace")
	}
	for _, n := range []int{2, 4} {
		if got := goldenFig9Shards(sim.SchedulerWheel, n); got != ref {
			t.Errorf("Fig9: %d-shard trace differs from single-engine reference", n)
		}
	}
}

// TestGoldenShardsWheelVsHeap proves wheel-vs-heap agreement *under
// sharding*: the two schedulers must stay byte-identical when each
// shard runs its own scheduler instance inside the time-window loop.
func TestGoldenShardsWheelVsHeap(t *testing.T) {
	if goldenFig1Shards(sim.SchedulerWheel, "AMRT", 3) != goldenFig1Shards(sim.SchedulerHeap, "AMRT", 3) {
		t.Error("Fig1 3-shard trace differs between wheel and heap schedulers")
	}
	if goldenFig9Shards(sim.SchedulerWheel, 4) != goldenFig9Shards(sim.SchedulerHeap, 4) {
		t.Error("Fig9 4-shard trace differs between wheel and heap schedulers")
	}
}

// goldenFatTreeIncast runs an incast cell on a k=4 fat-tree through the
// full large-scale runner — trace recorder, telemetry registry, flow
// outcomes, and (when faultSpec is non-empty) a fault plan — and
// serializes everything the run can emit.
func goldenFatTreeIncast(kind sim.SchedulerKind, stack string, nshards int, faultSpec string) string {
	var buf bytes.Buffer
	underScheduler(kind, func() {
		cfg := topo.DefaultFatTree()
		cfg.K = 4
		flows := workload.GenerateIncast(workload.IncastConfig{
			Hosts:    cfg.Hosts(),
			Degree:   8,
			Bytes:    64 << 10,
			Load:     0.6,
			HostRate: cfg.HostRate,
			Count:    64,
			Seed:     7,
		})
		rec := &trace.Recorder{}
		reg := metrics.NewRegistry()
		run := LeafSpineRun{
			Topo:    cfg,
			Stack:   MustStack(stack, StackOptions{}),
			Flows:   flows,
			Horizon: 20 * sim.Millisecond,
			Trace:   rec,
			Metrics: reg,
			Shards:  nshards,
			Audit:   true,
		}
		if faultSpec != "" {
			plan := faults.MustParse(faultSpec)
			plan.Seed = 7
			run.Faults = plan
		}
		res := run.Run()
		if err := rec.WriteCSV(&buf); err != nil {
			panic(err)
		}
		if err := res.Metrics.WriteJSON(&buf); err != nil {
			panic(err)
		}
		fmt.Fprintf(&buf, "completed=%d/%d afct=%d p99=%d util=%x drops=%d trims=%d events=%d lastend=%d\n",
			res.Completed, res.Total, int64(res.AFCT), int64(res.P99),
			res.Utilization, res.Drops, res.Trims, res.Events, int64(res.LastEnd))
		for _, o := range res.Outcomes {
			fmt.Fprintf(&buf, "flow %d %v last=%d dl=%v %s\n", o.ID, o.Outcome, int64(o.LastProgress), o.MissedDeadline, o.Diagnosis)
		}
	})
	return buf.String()
}

// TestGoldenShardsFatTreeIncast proves shards=1 vs shards=N byte-
// identity — trace CSV, metrics JSON, outcomes, and every scalar the
// runner reports — for a fat-tree incast cell, auditor attached, under
// both schedulers.
func TestGoldenShardsFatTreeIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("fat-tree incast golden run is not short")
	}
	ref := goldenFatTreeIncast(sim.SchedulerWheel, "AMRT", 1, "")
	if ref == "" {
		t.Fatal("empty fat-tree incast reference dump")
	}
	for _, n := range []int{2, 4} {
		if got := goldenFatTreeIncast(sim.SchedulerWheel, "AMRT", n, ""); got != ref {
			t.Errorf("fat-tree incast: %d-shard dump differs from single-engine reference", n)
		}
	}
	if got := goldenFatTreeIncast(sim.SchedulerHeap, "AMRT", 4, ""); got != ref {
		t.Error("fat-tree incast: 4-shard heap dump differs from single-engine wheel reference")
	}
}

// TestGoldenShardsSIRD is the same proof for the sender-informed stack:
// the demand-weighted credit pool must be byte-identical — trace CSV,
// metrics JSON, outcomes — across shards 1, 2, and 4 with the auditor
// (including the credit-pool rule) attached, under both schedulers, and
// on the Fig-1 chain harness under wheel vs heap.
func TestGoldenShardsSIRD(t *testing.T) {
	if testing.Short() {
		t.Skip("fat-tree incast golden run is not short")
	}
	ref := goldenFatTreeIncast(sim.SchedulerWheel, "SIRD", 1, "")
	if ref == "" {
		t.Fatal("empty SIRD fat-tree incast reference dump")
	}
	for _, n := range []int{2, 4} {
		if got := goldenFatTreeIncast(sim.SchedulerWheel, "SIRD", n, ""); got != ref {
			t.Errorf("SIRD fat-tree incast: %d-shard dump differs from single-engine reference", n)
		}
	}
	if got := goldenFatTreeIncast(sim.SchedulerHeap, "SIRD", 4, ""); got != ref {
		t.Error("SIRD fat-tree incast: 4-shard heap dump differs from single-engine wheel reference")
	}
	if goldenFig1Shards(sim.SchedulerWheel, "SIRD", 3) != goldenFig1Shards(sim.SchedulerHeap, "SIRD", 3) {
		t.Error("SIRD Fig1 3-shard trace differs between wheel and heap schedulers")
	}
}

// Fault specs for the golden byte-identity proofs below. The link
// spec exercises every link-level fault class (flap, degrade,
// control-loss); the node spec exercises every node-level class
// (host crash, switch reboot, ECMP rehash). Port names follow the
// fat-tree convention "from->to".
const (
	goldenLinkFaultSpec = "link=edge0.0->agg0.0,down=2ms,up=4ms;" +
		"degrade=edge0.1->agg0.1,at=1ms,until=6ms,factor=0.2;" +
		"ctrl-loss=0.005"
	goldenNodeFaultSpec = "crash=h0.0.0,at=2ms,up=5ms;" +
		"reboot=edge1.0,at=3ms,up=6ms;" +
		"rehash=4ms"
)

// TestGoldenShardsFaultLinkLevel proves the tentpole acceptance
// criterion for link-level faults: a full-runner fat-tree incast cell
// with a flap + degrade + control-loss plan must emit byte-identical
// trace CSV, metrics JSON, scalars, and flow outcomes across shards
// 1, 2, and 4 (auditor attached), under both schedulers.
func TestGoldenShardsFaultLinkLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("fat-tree incast golden run is not short")
	}
	for _, stack := range []string{"AMRT", "SIRD"} {
		ref := goldenFatTreeIncast(sim.SchedulerWheel, stack, 1, goldenLinkFaultSpec)
		if ref == "" {
			t.Fatalf("%s: empty link-fault reference dump", stack)
		}
		for _, n := range []int{2, 4} {
			if got := goldenFatTreeIncast(sim.SchedulerWheel, stack, n, goldenLinkFaultSpec); got != ref {
				t.Errorf("%s link faults: %d-shard dump differs from single-engine reference", stack, n)
			}
		}
		if got := goldenFatTreeIncast(sim.SchedulerHeap, stack, 4, goldenLinkFaultSpec); got != ref {
			t.Errorf("%s link faults: 4-shard heap dump differs from single-engine wheel reference", stack)
		}
	}
}

// TestGoldenShardsFaultNodeLevel is the same proof for node-level
// faults: host crash (NIC flush + downlink park + per-stack state
// teardown on both the sender- and receiver-owning shards), switch
// reboot, and an ECMP salt rotation delivered to every shard at the
// same instant.
func TestGoldenShardsFaultNodeLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("fat-tree incast golden run is not short")
	}
	for _, stack := range []string{"AMRT", "SIRD"} {
		ref := goldenFatTreeIncast(sim.SchedulerWheel, stack, 1, goldenNodeFaultSpec)
		if ref == "" {
			t.Fatalf("%s: empty node-fault reference dump", stack)
		}
		for _, n := range []int{2, 4} {
			if got := goldenFatTreeIncast(sim.SchedulerWheel, stack, n, goldenNodeFaultSpec); got != ref {
				t.Errorf("%s node faults: %d-shard dump differs from single-engine reference", stack, n)
			}
		}
		if got := goldenFatTreeIncast(sim.SchedulerHeap, stack, 4, goldenNodeFaultSpec); got != ref {
			t.Errorf("%s node faults: 4-shard heap dump differs from single-engine wheel reference", stack)
		}
	}
}
