package experiment

import (
	"strconv"
	"strings"
	"testing"

	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

func TestTableBasics(t *testing.T) {
	tb := &Table{Title: "t", Cols: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"## t", "a  b", "1  2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestParallelOrderAndCoverage(t *testing.T) {
	got := Parallel(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
	if out := Parallel(0, func(i int) int { return i }); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestNewStackUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown protocol did not panic")
		}
	}()
	MustStack("QUIC", StackOptions{})
}

func TestAllStacksOrder(t *testing.T) {
	stacks := AllStacks(StackOptions{})
	if len(stacks) != 5 {
		t.Fatalf("stacks = %d", len(stacks))
	}
	want := []string{"pHost", "Homa", "NDP", "AMRT", "SIRD"}
	for i, st := range stacks {
		if st.Name != want[i] {
			t.Errorf("stack %d = %s, want %s", i, st.Name, want[i])
		}
		if st.SwitchQueue == nil || st.HostQueue == nil || st.New == nil {
			t.Errorf("stack %s incomplete", st.Name)
		}
	}
	if stacks[3].Marker == nil {
		t.Error("AMRT stack must carry a marker factory")
	}
	if stacks[0].Marker != nil {
		t.Error("pHost stack must not carry a marker")
	}
}

// smallConfig is a fast fabric for integration assertions.
func smallConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.Topo.Leaves, cfg.Topo.Spines, cfg.Topo.HostsPerLeaf = 2, 2, 6
	cfg.FlowsPerRun = 150
	cfg.BytesBudget = 1 << 28
	cfg.Loads = []float64{0.5}
	cfg.Workloads = []string{"WebSearch"}
	cfg.Repeats = 1
	return cfg
}

func TestLeafSpineRunCompletesAndConserves(t *testing.T) {
	cfg := smallConfig()
	w := workload.WebSearch()
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts: cfg.Topo.Hosts(), Load: 0.5, HostRate: cfg.Topo.HostRate,
		Dist: w, Count: 100, Seed: 3,
	})
	for _, proto := range ProtocolNames() {
		res := LeafSpineRun{Topo: cfg.Topo, Stack: MustStack(proto, StackOptions{}), Flows: flows, Horizon: cfg.Horizon}.Run()
		if res.Completed != res.Total {
			t.Errorf("%s: completed %d/%d", proto, res.Completed, res.Total)
		}
		if res.AFCT <= 0 || res.P99 < res.AFCT {
			t.Errorf("%s: FCT stats implausible afct=%v p99=%v", proto, res.AFCT, res.P99)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%s: utilization %v", proto, res.Utilization)
		}
	}
}

func TestFig12CellsAMRTBeatsPHost(t *testing.T) {
	cfg := smallConfig()
	cfg.Protocols = []string{"pHost", "AMRT"}
	cells := Fig12Cells(cfg)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	ph := findCell(cells, "WebSearch", 0.5, "pHost")
	am := findCell(cells, "WebSearch", 0.5, "AMRT")
	if am.Res.AFCT >= ph.Res.AFCT {
		t.Errorf("AMRT AFCT %v not better than pHost %v", am.Res.AFCT, ph.Res.AFCT)
	}
	tables := Fig12Tables(cfg, cells)
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Error("Fig12Tables shape wrong")
	}
}

func TestFig13CellsUtilizationOrdering(t *testing.T) {
	cfg := smallConfig()
	cfg.Workloads = []string{"DataMining"}
	cfg.Protocols = []string{"pHost", "AMRT"}
	// Enough heavy-tailed flows on the small fabric that conservative
	// clocking visibly under-uses the bottlenecks.
	cells := Fig13Cells(cfg, []int{250})
	var ph, am float64
	for _, c := range cells {
		switch c.Proto {
		case "pHost":
			ph = c.Res.Utilization
		case "AMRT":
			am = c.Res.Utilization
		}
	}
	if am < ph-0.01 {
		t.Errorf("AMRT utilization %.3f below pHost %.3f", am, ph)
	}
	if am <= 0 || am > 1 || ph <= 0 || ph > 1 {
		t.Errorf("utilizations out of range: %v %v", am, ph)
	}
	tables := Fig13Tables(cfg, []int{250}, cells)
	if len(tables) != 1 {
		t.Error("Fig13Tables shape wrong")
	}
}

func TestFig14AMRTHighUtilLowQueue(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Repeats = 1
	cfg.HomaDegrees = []int{2}
	cells := Fig14Cells(cfg, []float64{0.5})
	var amrt, homa M2MCell
	for _, c := range cells {
		switch c.Variant {
		case "AMRT":
			amrt = c
		case "Homa-d2":
			homa = c
		}
	}
	if amrt.Util <= homa.Util {
		t.Errorf("AMRT util %.3f not above Homa-d2 %.3f", amrt.Util, homa.Util)
	}
	if amrt.MaxQueue >= homa.MaxQueue {
		t.Errorf("AMRT max queue %.1f not below Homa %.1f", amrt.MaxQueue, homa.MaxQueue)
	}
	if amrt.MaxQueue > 16 {
		t.Errorf("AMRT queue %.1f exceeds its cap regime", amrt.MaxQueue)
	}
	tables := Fig14Tables(cfg, []float64{0.5}, cells)
	if len(tables) != 2 {
		t.Error("Fig14Tables shape wrong")
	}
}

func TestFig1PHostUnderUtilizationAMRTReclaims(t *testing.T) {
	ph := Fig1(MustStack("pHost", StackOptions{}))
	am := Fig1(MustStack("AMRT", StackOptions{}))
	// During the squeeze (both f2 and f3 active) pHost leaves the first
	// bottleneck under-used; AMRT reclaims most of it.
	from, to := 4*sim.Millisecond, 8*sim.Millisecond
	phu := ph.Util.MeanBetween(from, to)
	amu := am.Util.MeanBetween(from, to)
	if phu > 0.85 {
		t.Errorf("pHost squeezed utilization %.3f: under-utilization did not appear", phu)
	}
	if amu < 0.85 {
		t.Errorf("AMRT squeezed utilization %.3f: reclaim failed", amu)
	}
	if amu-phu < 0.1 {
		t.Errorf("AMRT advantage too small: %.3f vs %.3f", amu, phu)
	}
}

func TestFig2AMRTFinishesSooner(t *testing.T) {
	ph := Fig2(MustStack("pHost", StackOptions{}))
	am := Fig2(MustStack("AMRT", StackOptions{}))
	// Same byte total: AMRT must keep the link fuller on average.
	if am.Util.Mean() <= ph.Util.Mean() {
		t.Errorf("AMRT mean utilization %.3f not above pHost %.3f", am.Util.Mean(), ph.Util.Mean())
	}
	if len(ph.FlowSeries) != 4 || len(am.FlowSeries) != 4 {
		t.Error("expected four per-flow series")
	}
}

func TestFig5WithinModelNeighborhood(t *testing.T) {
	rows := Fig5([][2]int{{10, 4}, {10, 8}})
	for _, r := range rows {
		if !r.ConvergedToFull {
			t.Errorf("n=%d k=%d did not converge", r.N, r.K)
			continue
		}
		// The continuum simulation discretizes rate detection and needs
		// an extra round for the first marks to act, so allow the model
		// window stretched by +2 RTTs.
		if int(r.SimulatedRTTs) < r.ModelMinRTTs {
			t.Errorf("n=%d k=%d: simulated %v below model min %d", r.N, r.K, r.SimulatedRTTs, r.ModelMinRTTs)
		}
		if int(r.SimulatedRTTs) > r.ModelMaxRTTs+2 {
			t.Errorf("n=%d k=%d: simulated %v above model max %d (+2)", r.N, r.K, r.SimulatedRTTs, r.ModelMaxRTTs)
		}
	}
	tbl := Fig5Table(rows)
	if len(tbl.Rows) != 2 {
		t.Error("Fig5Table shape wrong")
	}
}

func TestFig7TablesShape(t *testing.T) {
	tables := Fig7Tables()
	if len(tables) != 2 {
		t.Fatal("want 2 tables")
	}
	if len(tables[0].Rows) != 9 || len(tables[1].Rows) != 9 {
		t.Error("unexpected row counts")
	}
	// First data column pair is the 64KB min/max gains; min <= max.
	for _, row := range tables[0].Rows {
		if row[1] > row[2] { // lexicographic works for same-width %.3f values
			t.Errorf("min gain %s exceeds max %s", row[1], row[2])
		}
	}
}

func TestFig9AMRTAbsorbsReleasedBandwidth(t *testing.T) {
	res := Fig9(MustStack("AMRT", StackOptions{}))
	for i, f := range res.Flows {
		if !f.Done {
			t.Fatalf("flow %d did not complete", i+1)
		}
	}
	// f2 (2MB) at a permanent half share of 1G would need 32ms; with f1
	// finishing at ~5ms AMRT must finish f2 clearly sooner.
	if fct := res.Flows[1].FCT(); fct > 30*sim.Millisecond {
		t.Errorf("f2 FCT %v: released bandwidth not absorbed", fct)
	}
	if len(res.Series) != 4 {
		t.Error("expected four throughput series")
	}
}

func TestFig11AMRTBestForF2(t *testing.T) {
	results, cmp := Fig11All()
	if want := len(ProtocolNames()); len(results) != want || len(cmp.Rows) != 4 {
		t.Fatal("Fig11All shape wrong")
	}
	var amrtF2, phostF2 sim.Time
	for _, r := range results {
		if !r.Flows[1].Done {
			t.Fatalf("%s: f2 did not complete", r.Stack)
		}
		switch r.Stack {
		case "AMRT":
			amrtF2 = r.Flows[1].FCT()
		case "pHost":
			phostF2 = r.Flows[1].FCT()
		}
	}
	// Paper: AMRT reduces f2's FCT by ~36% vs pHost.
	if amrtF2 >= phostF2 {
		t.Errorf("AMRT f2 FCT %v not better than pHost %v", amrtF2, phostF2)
	}
}

func TestMarkingAblationRanksNoMarkingWorst(t *testing.T) {
	tbl := MarkingAblation()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The last row is pHost (no marking): it must be the slowest
	// completed variant on the ramp scenario.
	get := func(i int) float64 {
		v, err := strconv.ParseFloat(tbl.Rows[i][1], 64)
		if err != nil {
			t.Fatalf("row %d FCT %q: %v", i, tbl.Rows[i][1], err)
		}
		return v
	}
	base, worst := get(0), get(len(tbl.Rows)-1)
	if worst <= 2*base {
		t.Errorf("no-marking FCT %.3f not clearly worse than AMRT default %.3f", worst, base)
	}
}

func TestQueueCapAblationShape(t *testing.T) {
	tbl := QueueCapAblation()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Larger caps must never show a *smaller* max queue.
	if tbl.Rows[0][4] > tbl.Rows[4][4] {
		t.Errorf("queue watermark not increasing with cap: %v vs %v", tbl.Rows[0][4], tbl.Rows[4][4])
	}
}

func TestSimConfigFlowBudget(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.FlowsPerRun = 1000
	cfg.BytesBudget = 10_000_000
	if n := cfg.flowCount(100_000); n != 100 {
		t.Errorf("flowCount = %d, want 100", n)
	}
	if n := cfg.flowCount(1_000_000_000); n != 50 {
		t.Errorf("flowCount floor = %d, want 50", n)
	}
	cfg.BytesBudget = 0
	if n := cfg.flowCount(1); n != 1000 {
		t.Errorf("unbudgeted flowCount = %d", n)
	}
}

func TestPaperSimConfigShape(t *testing.T) {
	cfg := PaperSimConfig()
	if cfg.Topo.Hosts() != 400 || len(cfg.Loads) != 7 {
		t.Errorf("paper config wrong: %d hosts, %d loads", cfg.Topo.Hosts(), len(cfg.Loads))
	}
}

func TestFig14TopoShape(t *testing.T) {
	tc := Fig14Topo()
	if tc.Leaves != 3 || tc.HostsPerLeaf != 20 {
		t.Errorf("Fig14 topology wrong: %+v", tc)
	}
	ls := topo.NewLeafSpine(tc)
	if len(ls.Hosts) != 60 {
		t.Errorf("hosts = %d", len(ls.Hosts))
	}
}
