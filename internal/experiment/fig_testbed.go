package experiment

import (
	"fmt"

	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// TestbedResult carries one §7 testbed reproduction: per-flow
// normalized-throughput series and a summary table.
type TestbedResult struct {
	Stack   string
	Series  []*stats.Series
	Summary *Table
	Flows   []*transport.Flow
}

// Fig9 reproduces the §7 dynamic-traffic testbed run on the Fig. 8
// topology at 1 GbE: f1/f2 share one bottleneck, f3/f4 another; f1 and
// f3 finish early and AMRT's marks let f2/f4 absorb the released
// bandwidth within a couple of milliseconds. Any stack can be passed
// for comparison; the paper shows AMRT.
func Fig9(st Stack) TestbedResult {
	sc := topo.TestbedScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewTestbedDynamic(sc)

	base := transport.Config{RTT: 100 * sim.Microsecond}
	names := []string{"f1", "f2", "f3", "f4"}
	onData, finish := trackFlows(s.Net, names, 250*sim.Microsecond, sc.Rate)
	base.OnData = onData
	inst := st.New(s.Net, base)

	// At a fair half share (500 Mbps) f1 (312.5 KB) finishes at ~5 ms
	// and f3 (812.5 KB) at ~13 ms, matching the paper's timeline.
	f1 := inst.AddFlow(1, s.Senders[0], s.Receivers[0], 312_500, 0)
	f2 := inst.AddFlow(2, s.Senders[1], s.Receivers[1], 2_000_000, 0)
	f3 := inst.AddFlow(3, s.Senders[2], s.Receivers[2], 812_500, 0)
	f4 := inst.AddFlow(4, s.Senders[3], s.Receivers[3], 2_000_000, 0)

	s.Net.Run(40 * sim.Millisecond)
	series := finish()

	sum := &Table{
		Title: fmt.Sprintf("Fig 9 — testbed dynamic traffic (%s, 1GbE)", st.Name),
		Cols:  []string{"flow", "size", "done", "FCT(ms)"},
	}
	for i, f := range []*transport.Flow{f1, f2, f3, f4} {
		fct := "-"
		if f.Done {
			fct = fmt.Sprintf("%.2f", f.FCT().Milliseconds())
		}
		sum.AddRow(names[i], fmt.Sprintf("%d", f.Size), fmt.Sprintf("%v", f.Done), fct)
	}
	return TestbedResult{Stack: st.Name, Series: series, Summary: sum, Flows: []*transport.Flow{f1, f2, f3, f4}}
}

// Fig11 reproduces the §7 multi-bottleneck testbed comparison on the
// Fig. 10 topology at 1 GbE for one protocol stack. The paper's
// timeline (seconds) is scaled to milliseconds: f1 and f2 start at 0,
// f3 (same destination as f1) starts at 10 ms, f4 at 20 ms.
func Fig11(st Stack) TestbedResult {
	sc := topo.TestbedScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewTestbedMultiBottleneck(sc)

	base := transport.Config{RTT: 100 * sim.Microsecond}
	names := []string{"f1", "f2", "f3", "f4"}
	onData, finish := trackFlows(s.Net, names, 250*sim.Microsecond, sc.Rate)
	base.OnData = onData
	inst := st.New(s.Net, base)

	f1 := inst.AddFlow(1, s.Senders[0], s.Receivers[0], 3_000_000, 0)
	f2 := inst.AddFlow(2, s.Senders[1], s.Receivers[1], 4_000_000, 0)
	f3 := inst.AddFlow(3, s.Senders[2], s.Receivers[2], 1_500_000, 10*sim.Millisecond)
	f4 := inst.AddFlow(4, s.Senders[3], s.Receivers[3], 1_500_000, 20*sim.Millisecond)

	s.Net.Run(100 * sim.Millisecond)
	series := finish()

	sum := &Table{
		Title: fmt.Sprintf("Fig 11 — testbed multi-bottleneck (%s, 1GbE)", st.Name),
		Cols:  []string{"flow", "start(ms)", "size", "done", "FCT(ms)"},
	}
	for i, f := range []*transport.Flow{f1, f2, f3, f4} {
		fct := "-"
		if f.Done {
			fct = fmt.Sprintf("%.2f", f.FCT().Milliseconds())
		}
		sum.AddRow(names[i], fmt.Sprintf("%.0f", f.Start.Milliseconds()),
			fmt.Sprintf("%d", f.Size), fmt.Sprintf("%v", f.Done), fct)
	}
	return TestbedResult{Stack: st.Name, Series: series, Summary: sum, Flows: []*transport.Flow{f1, f2, f3, f4}}
}

// Fig11All runs Fig11 for every protocol and emits a combined FCT
// comparison table (the paper's headline: AMRT reduces f2's FCT by ~36%,
// ~36%, ~12.7% vs pHost, Homa, NDP).
func Fig11All() ([]TestbedResult, *Table) {
	stacks := AllStacks(StackOptions{})
	results := Parallel(len(stacks), func(i int) TestbedResult { return Fig11(stacks[i]) })
	cmp := &Table{
		Title: "Fig 11 — FCT comparison across protocols (ms)",
		Cols:  append([]string{"flow"}, ProtocolNames()...),
	}
	for fi, name := range []string{"f1", "f2", "f3", "f4"} {
		row := []string{name}
		for _, r := range results {
			f := r.Flows[fi]
			if f.Done {
				row = append(row, fmt.Sprintf("%.2f", f.FCT().Milliseconds()))
			} else {
				row = append(row, "-")
			}
		}
		cmp.AddRow(row...)
	}
	return results, cmp
}
