package experiment

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// ScenarioHarness drives one of the small figure topologies
// (topo.Scenario) at any engine-shard count. It mirrors the large-scale
// runner's partitioning and split flow registration — each switch and
// its hosts form one group, groups round-robin over shards, a flow's
// sender side registers on its source's shard and its receiver side on
// its destination's — so a sharded run produces byte-identical traces
// to the single-engine figure functions (see docs/PARALLELISM.md and
// the golden tests next to this file).
type ScenarioHarness struct {
	S *topo.Scenario

	shards []*netsim.Shard
	assign map[netsim.NodeID]int
	insts  []Instance
	flows  []*transport.Flow

	// Per-shard goodput trackers: a flow's tracker lives on its home
	// (receiver) shard only, so no two engine goroutines share one.
	trackers []map[netsim.FlowID]*stats.FlowThroughput
}

// NewScenarioHarness partitions the built scenario across nshards
// engine shards and creates one stack instance per shard. nshards <= 1
// leaves the network unpartitioned: the single-engine reference path,
// driven through the identical split registration so the comparison is
// apples-to-apples. window and ref parameterize the per-flow
// normalized-goodput trackers exactly as the figures' trackFlows does;
// names maps flow ID i+1 to names[i].
func NewScenarioHarness(s *topo.Scenario, st Stack, base transport.Config, nshards int, window sim.Time, names []string) *ScenarioHarness {
	if nshards <= 0 {
		nshards = 1
	}
	h := &ScenarioHarness{S: s, assign: map[netsim.NodeID]int{}}
	for i, sw := range s.Switches {
		h.assign[sw.ID()] = i % nshards
	}
	hostShard := func(hh *netsim.Host) int {
		return h.assign[hh.NIC().Link().To.ID()]
	}
	for _, hh := range s.Senders {
		h.assign[hh.ID()] = hostShard(hh)
	}
	for _, hh := range s.Receivers {
		h.assign[hh.ID()] = hostShard(hh)
	}
	if nshards > 1 {
		s.Net.Partition(nshards, func(n netsim.Node) int { return h.assign[n.ID()] })
	}
	h.shards = s.Net.Shards()
	h.trackers = make([]map[netsim.FlowID]*stats.FlowThroughput, len(h.shards))
	h.insts = make([]Instance, len(h.shards))
	for i := range h.shards {
		i := i
		h.trackers[i] = map[netsim.FlowID]*stats.FlowThroughput{}
		cfg := base
		cfg.Shard = h.shards[i]
		cfg.OnData = func(f *transport.Flow, pkt *netsim.Packet) {
			tr := h.trackers[i][f.ID]
			if tr == nil {
				name := fmt.Sprintf("f%d", f.ID)
				if int(f.ID-1) < len(names) && f.ID >= 1 {
					name = names[f.ID-1]
				}
				tr = stats.NewFlowThroughput(name, window, s.Cfg.Rate)
				h.trackers[i][f.ID] = tr
			}
			tr.OnBytes(h.shards[i].Eng().Now(), pkt.Size)
		}
		h.insts[i] = st.New(s.Net, cfg)
	}
	return h
}

// AddFlow registers a flow through the split path — AddPending on the
// source shard, Adopt on the home shard, Release on the source — and
// returns it. At one shard this produces the exact event sequence of
// the protocols' AddFlow convenience path.
func (h *ScenarioHarness) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	si, di := h.assign[src.ID()], h.assign[dst.ID()]
	f := h.insts[si].AddPending(id, src, dst, size, false)
	h.insts[di].Adopt(f)
	f.Released = true
	f.Start = start
	f.Home = int32(di)
	h.insts[si].Release(f, start)
	h.flows = append(h.flows, f)
	return f
}

// TrackUtil attaches a windowed utilization sampler to a monitored
// port, ticking on the port owner's shard engine (the only goroutine
// allowed to read the monitor mid-run), and returns its series.
func (h *ScenarioHarness) TrackUtil(name string, port *netsim.Port, mon *netsim.PortMonitor, interval, horizon sim.Time) *stats.Series {
	u := stats.NewUtilizationSampler(interval)
	s := u.Track(name, mon.Utilization, mon.ResetWindow)
	u.Start(h.shards[h.assign[port.Owner().ID()]].Eng(), horizon)
	return s
}

// Run executes the scenario to the horizon (the conservative
// time-window loop when partitioned, the plain event loop otherwise).
func (h *ScenarioHarness) Run(horizon sim.Time) {
	h.S.Net.Run(horizon)
}

// Flows returns the harness's flows in AddFlow order.
func (h *ScenarioHarness) Flows() []*transport.Flow { return h.flows }

// Series collects the per-flow goodput series in AddFlow order,
// merging the per-shard tracker maps (each flow has at most one
// tracker, on its home shard; flows that never delivered have none).
func (h *ScenarioHarness) Series() []*stats.Series {
	var out []*stats.Series
	for _, f := range h.flows {
		for _, m := range h.trackers {
			if tr := m[f.ID]; tr != nil {
				out = append(out, tr.Finish())
			}
		}
	}
	return out
}
