package experiment

import (
	"fmt"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// RelatedWorkTable reproduces the §1/§9 contrast between reactive
// sender-based congestion control (DCTCP) and the receiver-driven
// transports: under a synchronized partition/aggregate burst, the
// reactive protocol reacts only after the queue has built, so short
// flows see queueing delay and loss that the proactive protocols avoid.
func RelatedWorkTable() *Table {
	t := &Table{
		Title: "Related work — reactive (DCTCP) vs receiver-driven under a 16-to-1 burst (250KB each, 10G)",
		Cols:  []string{"proto", "AFCT(ms)", "maxFCT(ms)", "drops", "max queue(pkts)"},
	}
	// The related-work contrast leads; the comparison set follows in
	// registry order.
	protos := append(RelatedNames(), ProtocolNames()...)
	type out struct {
		afct, max sim.Time
		drops     int64
		maxq      int
	}
	results := Parallel(len(protos), func(i int) out {
		st := MustStack(protos[i], StackOptions{})
		sc := topo.DefaultScenario()
		sc.SwitchQueue = st.SwitchQueue
		sc.HostQueue = st.HostQueue
		sc.Marker = st.Marker
		s := topo.NewFanN(sc, 16)
		col := stats.NewFCTCollector()
		inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond, Collector: col})
		var down *netsim.Port
		for _, pt := range s.Switches[1].Ports() {
			if pt.Link().To.ID() == s.Receivers[0].ID() {
				down = pt
			}
		}
		mon := netsim.Attach(down)
		btl := netsim.Attach(s.Bottlenecks[0])
		specs := workload.Incast(seqInts(16), 0, 250_000, 0)
		var flows []*transport.Flow
		for _, fs := range specs {
			flows = append(flows, inst.AddFlow(fs.ID, s.Senders[fs.Src], s.Receivers[0], fs.Size, fs.Start))
		}
		s.Net.Run(5 * sim.Second)
		var o out
		o.afct = col.Mean()
		for _, f := range flows {
			if f.Done && f.FCT() > o.max {
				o.max = f.FCT()
			}
		}
		o.drops = s.Net.Dropped()
		o.maxq = mon.MaxQueueLen
		if btl.MaxQueueLen > o.maxq {
			o.maxq = btl.MaxQueueLen
		}
		return o
	})
	for i, proto := range protos {
		r := results[i]
		t.AddRow(proto,
			fmt.Sprintf("%.3f", r.afct.Milliseconds()),
			fmt.Sprintf("%.3f", r.max.Milliseconds()),
			fmt.Sprintf("%d", r.drops),
			fmt.Sprintf("%d", r.maxq))
	}
	return t
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
