package experiment

import (
	"fmt"
	"sort"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// MotivationResult carries a §2 motivation run: the bottleneck
// utilization time series plus phase summaries.
type MotivationResult struct {
	Stack string
	// Util is the goodput-based bottleneck utilization (sum of the
	// normalized goodput of the flows crossing it) — the paper's
	// metric. Retransmission churn that dies downstream does not count.
	Util *stats.Series
	// LinkUtil is the raw link-byte utilization of the same bottleneck.
	LinkUtil *stats.Series
	// FlowSeries holds per-flow normalized goodput at the receivers.
	FlowSeries []*stats.Series
	// Phases summarizes mean utilization over the figure's phases.
	Phases *Table
}

// trackFlows attaches normalized-goodput trackers to the given flows.
// It must be called before the run; the returned finish() collects the
// series afterwards.
func trackFlows(net *netsim.Network, names []string, window sim.Time, ref sim.Rate) (onData func(*transport.Flow, *netsim.Packet), finish func() []*stats.Series) {
	trackers := map[netsim.FlowID]*stats.FlowThroughput{}
	order := []netsim.FlowID{}
	onData = func(f *transport.Flow, pkt *netsim.Packet) {
		tr := trackers[f.ID]
		if tr == nil {
			name := fmt.Sprintf("f%d", f.ID)
			if int(f.ID-1) < len(names) && f.ID >= 1 {
				name = names[f.ID-1]
			}
			tr = stats.NewFlowThroughput(name, window, ref)
			trackers[f.ID] = tr
			order = append(order, f.ID)
		}
		tr.OnBytes(net.Engine.Now(), pkt.Size)
	}
	finish = func() []*stats.Series {
		out := make([]*stats.Series, 0, len(order))
		for _, id := range order {
			out = append(out, trackers[id].Finish())
		}
		return out
	}
	return onData, finish
}

// Fig1 reproduces the §2.1 multi-bottleneck motivation: four flows on
// the two-bottleneck chain; f2 starts at 1 ms, f3 at 3.5 ms, and the
// first bottleneck's utilization drops as f0 is squeezed at the second
// bottleneck. The paper runs pHost here; any stack may be passed to
// compare.
func Fig1(st Stack) MotivationResult {
	sc := topo.DefaultScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewChain(sc)
	mon := netsim.Attach(s.Bottlenecks[0])

	base := transport.Config{RTT: 100 * sim.Microsecond}
	names := []string{"f0", "f1", "f2", "f3"}
	onData, finish := trackFlows(s.Net, names, 100*sim.Microsecond, sc.Rate)
	base.OnData = onData
	inst := st.New(s.Net, base)

	// Long-running flows; f0 crosses both bottlenecks. "Simultaneous"
	// starts are staggered by a few µs (invisible at the figure's ms
	// scale) so the deterministic drop-tail does not phase-lock onto one
	// sender during the blind-start overload.
	inst.AddFlow(1, s.Senders[0], s.Receivers[0], 25_000_000, 0)
	inst.AddFlow(2, s.Senders[1], s.Receivers[1], 25_000_000, 2500*sim.Nanosecond)
	inst.AddFlow(3, s.Senders[2], s.Receivers[2], 25_000_000, sim.Millisecond)
	inst.AddFlow(4, s.Senders[3], s.Receivers[3], 25_000_000, 3500*sim.Microsecond)

	sampler := stats.NewUtilizationSampler(100 * sim.Microsecond)
	linkUtil := sampler.Track("btl0-link-util", mon.Utilization, mon.ResetWindow)
	const horizon = 8 * sim.Millisecond
	sampler.Start(s.Net.Engine, horizon)
	s.Net.Run(horizon)

	series := finish()
	// Goodput crossing the first bottleneck: f0 + f1 (series are in
	// flow-creation order; both start at 0 so indexes 0 and 1 are them).
	util := stats.SumSeries("btl0-goodput-util", pick(series, "f0"), pick(series, "f1"))

	phases := &Table{
		Title: fmt.Sprintf("Fig 1 — 1st bottleneck goodput utilization (%s)", st.Name),
		Cols:  []string{"phase", "window", "mean util"},
	}
	addPhase := func(name string, from, to sim.Time) {
		phases.AddRow(name, fmt.Sprintf("%v-%v", from, to), fmt.Sprintf("%.3f", util.MeanBetween(from, to)))
	}
	addPhase("f0+f1 alone", 300*sim.Microsecond, sim.Millisecond)
	addPhase("f2 active", 1500*sim.Microsecond, 3500*sim.Microsecond)
	addPhase("f2+f3 active", 4*sim.Millisecond, 8*sim.Millisecond)
	return MotivationResult{Stack: st.Name, Util: util, LinkUtil: linkUtil, FlowSeries: series, Phases: phases}
}

// pick returns the series with the given name, or nil.
func pick(series []*stats.Series, name string) *stats.Series {
	for _, s := range series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Fig2 reproduces the §2.2 dynamic-traffic motivation: four flows with
// distinct receivers share one bottleneck; sizes stagger their
// completions, and a conservative protocol leaves the freed bandwidth
// unused.
func Fig2(st Stack) MotivationResult {
	sc := topo.DefaultScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewFan(sc)
	mon := netsim.Attach(s.Bottlenecks[0])

	base := transport.Config{RTT: 100 * sim.Microsecond}
	names := []string{"f0", "f1", "f2", "f3"}
	onData, finish := trackFlows(s.Net, names, 100*sim.Microsecond, sc.Rate)
	base.OnData = onData
	inst := st.New(s.Net, base)

	// Sized so completions land near 2/4/6/8 ms at a fair quarter share
	// (2.5 Gbps each): 625 KB, 1.25 MB, 1.875 MB, 2.5 MB.
	sizes := []int64{625_000, 1_250_000, 1_875_000, 2_500_000}
	var flows []*transport.Flow
	for i, size := range sizes {
		// µs-scale stagger, invisible at the figure's ms scale; see Fig1
		// for why it exists at all. 5 µs (vs Fig1's 2.5 µs) keeps every
		// pHost flow completing within the horizon under the per-port
		// jitter streams, so the figure shows "finishes later", not
		// "never finishes".
		start := sim.Time(i) * 5 * sim.Microsecond
		flows = append(flows, inst.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], size, start))
	}

	sampler := stats.NewUtilizationSampler(100 * sim.Microsecond)
	linkUtil := sampler.Track("btl-link-util", mon.Utilization, mon.ResetWindow)
	const horizon = 16 * sim.Millisecond
	sampler.Start(s.Net.Engine, horizon)
	s.Net.Run(horizon)

	series := finish()
	util := stats.SumSeries("btl-goodput-util", series...)

	phases := &Table{
		Title: fmt.Sprintf("Fig 2 — bottleneck goodput utilization as flows finish (%s)", st.Name),
		Cols:  []string{"phase", "window", "mean util", "flows done"},
	}
	// Phase boundaries follow the actual completion times (sorted — the
	// protocols do not finish flows in size order) so the table reads
	// "utilization while k flows remain".
	var ends []sim.Time
	last := sim.Time(0)
	for _, f := range flows {
		end := horizon
		if f.Done {
			end = f.End
		}
		ends = append(ends, end)
		if end > last {
			last = end
		}
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	bounds := append([]sim.Time{300 * sim.Microsecond}, ends...)
	bounds = bounds[:len(bounds)-1]
	bounds = append(bounds, last)
	phaseNames := []string{"4 flows", "3 flows", "2 flows", "1 flow"}
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i+1] <= bounds[i] {
			continue
		}
		phases.AddRow(phaseNames[i],
			fmt.Sprintf("%v-%v", bounds[i], bounds[i+1]),
			fmt.Sprintf("%.3f", util.MeanBetween(bounds[i], bounds[i+1])),
			fmt.Sprintf("%d", i))
	}
	phases.AddRow("all done at", last.String(), "-", "4")
	return MotivationResult{Stack: st.Name, Util: util, LinkUtil: linkUtil, FlowSeries: series, Phases: phases}
}
