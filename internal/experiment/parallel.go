package experiment

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// WorkerPanic is what Parallel re-panics with when a worker's fn call
// panicked: the failing index, the original panic value, and the stack
// captured at the panic site (the re-panic on the caller's goroutine
// would otherwise hide where the failure actually happened).
type WorkerPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error so recovered WorkerPanics compose with errors.As.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("experiment: Parallel task %d panicked: %v\nworker stack:\n%s", p.Index, p.Value, p.Stack)
}

// Parallel runs fn(i) for i in [0, n) on a bounded worker pool. Each
// index is an independent simulation, so this is safe and gives
// near-linear speedups on sweep-style experiments. Results are returned
// in index order.
//
// If any fn call panics, Parallel still runs the remaining tasks, then
// re-panics on the caller's goroutine with a *WorkerPanic describing
// the first failure — a panic in one sweep cell must fail the sweep,
// not silently leave a zero T in the results.
//
// The pool is capped at GOMAXPROCS rather than the raw CPU count so a
// user's -cpu flag, GOMAXPROCS environment override, or container CPU
// quota (which recent Go runtimes reflect into GOMAXPROCS) bounds the
// sweep's parallelism too.
func Parallel[T any](n int, fn func(i int) T) []T {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]T, n)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var first *WorkerPanic
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panicOnce.Do(func() {
					first = &WorkerPanic{Index: i, Value: v, Stack: debug.Stack()}
				})
			}
		}()
		out[i] = fn(i)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if first != nil {
		panic(first)
	}
	return out
}
