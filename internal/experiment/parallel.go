package experiment

import (
	"runtime"
	"sync"
)

// Parallel runs fn(i) for i in [0, n) on a bounded worker pool. Each
// index is an independent simulation, so this is safe and gives
// near-linear speedups on sweep-style experiments. Results are returned
// in index order.
//
// The pool is capped at GOMAXPROCS rather than the raw CPU count so a
// user's -cpu flag, GOMAXPROCS environment override, or container CPU
// quota (which recent Go runtimes reflect into GOMAXPROCS) bounds the
// sweep's parallelism too.
func Parallel[T any](n int, fn func(i int) T) []T {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
