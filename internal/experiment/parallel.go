package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// WorkerPanic is what Parallel re-panics with when a worker's fn call
// panicked: the failing index, the original panic value, and the stack
// captured at the panic site (the re-panic on the caller's goroutine
// would otherwise hide where the failure actually happened).
type WorkerPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error so recovered WorkerPanics compose with errors.As.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("experiment: Parallel task %d panicked: %v\nworker stack:\n%s", p.Index, p.Value, p.Stack)
}

// Parallel runs fn(i) for i in [0, n) on a bounded worker pool. Each
// index is an independent simulation, so this is safe and gives
// near-linear speedups on sweep-style experiments. Results are returned
// in index order.
//
// If any fn call panics, Parallel still runs the remaining tasks, then
// re-panics on the caller's goroutine with a *WorkerPanic describing
// the first failure — a panic in one sweep cell must fail the sweep,
// not silently leave a zero T in the results.
//
// The pool is capped at GOMAXPROCS rather than the raw CPU count so a
// user's -cpu flag, GOMAXPROCS environment override, or container CPU
// quota (which recent Go runtimes reflect into GOMAXPROCS) bounds the
// sweep's parallelism too.
func Parallel[T any](n int, fn func(i int) T) []T {
	out, _, _ := ParallelCtx(context.Background(), n, 0, fn)
	return out
}

// ParallelCtx is Parallel with cooperative cancellation: once ctx is
// done, no further indices are dispatched (tasks already running finish
// — make fn itself ctx-aware for prompt in-task aborts). It returns the
// results, a mask marking which indices actually ran to completion, and
// ctx.Err() (nil when every index ran). workers caps the pool below the
// GOMAXPROCS ceiling; workers <= 0 means the full GOMAXPROCS pool.
// Panic propagation is identical to Parallel: the remaining dispatched
// tasks still run, then the caller's goroutine re-panics with a
// *WorkerPanic describing the first failure.
func ParallelCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, []bool, error) {
	max := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]T, n)
	ran := make([]bool, n)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var first *WorkerPanic
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panicOnce.Do(func() {
					first = &WorkerPanic{Index: i, Value: v, Stack: debug.Stack()}
				})
			}
		}()
		out[i] = fn(i)
		ran[i] = true
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		// Checked first so a cancellation never races a ready worker:
		// once ctx.Err() is visible, no further index is handed out.
		if ctx.Err() != nil {
			break
		}
		select {
		case <-done:
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if first != nil {
		panic(first)
	}
	return out, ran, ctx.Err()
}
