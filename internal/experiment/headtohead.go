package experiment

import (
	"fmt"

	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

// This file is the SIRD head-to-head: the sender-informed stack against
// the receiver-driven baselines it is positioned between. SIRD's pitch
// is that a bounded shared credit pool holds switch buffers near-empty
// without giving up goodput; the experiment pins that trade-off on the
// two fat-tree workloads where buffer pressure differs most — a
// synchronized incast (deep transient queues) and an all-to-all shuffle
// (sustained load, shallow queues).

// HeadToHeadCell is one (workload, protocol) point of the SIRD
// head-to-head comparison.
type HeadToHeadCell struct {
	Workload string // "incast" or "shuffle"
	Stack    string
	// Utilization is the byte-weighted backlogged-time goodput
	// utilization (see RunResult.Utilization).
	Utilization float64
	AFCT        sim.Time
	P99         sim.Time
	// MaxQueue is the deepest egress downlink queue seen anywhere, in
	// packets — the buffer-occupancy axis of the comparison.
	MaxQueue  int
	Drops     int64
	Completed int
	Total     int
}

// HeadToHeadProtocols returns the comparison legs — pHost (per-packet
// ticketing, no demand signal), AMRT (anti-ECN marking), and SIRD
// (sender-informed pool) — in registry presentation order, so the
// figure inherits the paper's ordering without keeping its own list.
func HeadToHeadProtocols() []string {
	in := map[string]bool{"pHost": true, "AMRT": true, "SIRD": true}
	var out []string
	for _, n := range ProtocolNames() {
		if in[n] {
			out = append(out, n)
		}
	}
	return out
}

// headToHeadWorkloads builds the two fat-tree cells on the given
// topology. The incast cell matches the SIRD golden-shard cell, so the
// figure and the byte-identity proof exercise the same scenario.
func headToHeadWorkloads(cfg topo.FatTreeConfig) []struct {
	name    string
	flows   []workload.FlowSpec
	horizon sim.Time
} {
	return []struct {
		name    string
		flows   []workload.FlowSpec
		horizon sim.Time
	}{
		{
			name: "incast",
			flows: workload.GenerateIncast(workload.IncastConfig{
				Hosts:    cfg.Hosts(),
				Degree:   8,
				Bytes:    64 << 10,
				Load:     0.6,
				HostRate: cfg.HostRate,
				Count:    64,
				Seed:     7,
			}),
			horizon: 20 * sim.Millisecond,
		},
		{
			name: "shuffle",
			flows: workload.GenerateShuffle(workload.ShuffleConfig{
				Hosts: cfg.Hosts(),
				Width: 4,
				Bytes: 128 << 10,
			}),
			horizon: 20 * sim.Millisecond,
		},
	}
}

// HeadToHead runs the SIRD comparison on a k=4 fat-tree with the
// auditor attached (every run must stay invariant-silent, including the
// credit-pool ledger) and returns one cell per (workload, protocol) in
// workload-major order. The shared opts struct is handed to every leg;
// each constructor reads only its own fields.
func HeadToHead(opts StackOptions) []HeadToHeadCell {
	cfg := topo.DefaultFatTree()
	cfg.K = 4
	cells := headToHeadWorkloads(cfg)
	protos := HeadToHeadProtocols()

	type spec struct{ wi, pi int }
	var specs []spec
	for wi := range cells {
		for pi := range protos {
			specs = append(specs, spec{wi, pi})
		}
	}
	results := Parallel(len(specs), func(i int) RunResult {
		s := specs[i]
		return LeafSpineRun{
			Topo:    cfg,
			Stack:   MustStack(protos[s.pi], opts),
			Flows:   cells[s.wi].flows,
			Horizon: cells[s.wi].horizon,
			Audit:   true,
		}.Run()
	})

	out := make([]HeadToHeadCell, len(specs))
	for i, s := range specs {
		r := results[i]
		out[i] = HeadToHeadCell{
			Workload:    cells[s.wi].name,
			Stack:       r.Stack,
			Utilization: r.Utilization,
			AFCT:        r.AFCT,
			P99:         r.P99,
			MaxQueue:    r.MaxQueue,
			Drops:       r.Drops,
			Completed:   r.Completed,
			Total:       r.Total,
		}
	}
	return out
}

// HeadToHeadTable renders the cells as the comparison figure: one row
// per (workload, protocol), goodput next to the buffer-occupancy column
// the trade-off is read from.
func HeadToHeadTable(cells []HeadToHeadCell) *Table {
	t := &Table{
		Title: "SIRD head-to-head — fat-tree k=4, incast + shuffle",
		Cols:  []string{"workload", "stack", "done", "util", "AFCT(us)", "p99(us)", "maxq(pkts)", "drops"},
	}
	for _, c := range cells {
		t.AddRow(c.Workload, c.Stack,
			fmt.Sprintf("%d/%d", c.Completed, c.Total),
			fmt.Sprintf("%.3f", c.Utilization),
			fmt.Sprintf("%.1f", c.AFCT.Microseconds()),
			fmt.Sprintf("%.1f", c.P99.Microseconds()),
			fmt.Sprintf("%d", c.MaxQueue),
			fmt.Sprintf("%d", c.Drops))
	}
	return t
}
