package experiment

import (
	"fmt"
	"sort"

	"amrt/internal/audit"
	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// LeafSpineRun is one large-scale simulation: a protocol stack on a
// datacenter fabric with a list of flows. Despite the historical name
// it drives any topo.Builder — leaf–spine, k-ary fat-tree, or
// three-tier Clos — through the same route/ECMP, fault, telemetry, and
// audit machinery.
type LeafSpineRun struct {
	Topo    topo.Builder
	Stack   Stack
	Flows   []workload.FlowSpec
	Horizon sim.Time // hard stop; incomplete flows are reported

	// Trace, if non-nil, records per-flow timelines and drops.
	Trace *trace.Recorder

	// Faults, if non-nil, is a fault-injection plan (see internal/faults):
	// its loss processes wrap the stack's switch queues and its link
	// events are scheduled before the run starts. Unknown link names in
	// the plan panic — plans are validated when parsed, but only the
	// built topology can resolve names.
	Faults *faults.Plan

	// Metrics, if non-nil, receives the run's telemetry: per-downlink
	// queue/utilization/mark-rate series, network delivery and drop
	// counters, kernel flow counters, and protocol-specific counters —
	// sampled every MetricsInterval of virtual time (default 100 µs) by
	// one ticker on the simulation clock, so output is deterministic
	// (see internal/metrics and docs/TELEMETRY.md).
	Metrics *metrics.Registry
	// MetricsInterval is the sampling period (default
	// DefaultMetricsInterval).
	MetricsInterval sim.Time

	// Interrupt, if non-nil, is polled every few thousand executed
	// events (sim.Engine.SetInterrupt); returning true aborts the run
	// early. Context-cancellable callers set it to `ctx.Err() != nil`.
	// An interrupt that never fires does not perturb determinism.
	Interrupt func() bool

	// Audit attaches the runtime invariant auditor (internal/audit):
	// conservation, queue-bound, and grant-budget checks run every
	// MetricsInterval of virtual time plus once after the run, panicking
	// with a forensic dump on the first violation. Off by default — the
	// accounting the checks read is maintained regardless, but the
	// periodic sweep costs a few percent of wall time.
	Audit bool

	// StallRTTs is the flow-liveness watchdog window in base RTTs: a
	// live flow with no data progress for this long, while both its
	// access links are administratively up, is reported Stalled (a late
	// completion clears the report). Default 128 — deliberately above
	// the protocols' 64×RTT recovery-backoff cap, so a flow is only
	// called stalled once every built-in recovery mechanism has had its
	// chance. Negative disables the watchdog.
	StallRTTs int
}

// FlowOutcome is one flow's final disposition in a RunResult.
type FlowOutcome struct {
	// ID is the flow ID from the workload spec.
	ID netsim.FlowID
	// Outcome is the terminal state: completed, stalled, running
	// (incomplete at horizon), or killed-by-crash.
	Outcome transport.Outcome
	// LastProgress is the last virtual time data reached the receiver
	// (zero if none ever did).
	LastProgress sim.Time
	// Diagnosis explains non-completed outcomes ("" for completed).
	Diagnosis string
	// MissedDeadline reports a flow with a workload deadline that
	// completed late or not at all (see workload.FlowSpec.Deadline).
	MissedDeadline bool
}

// RunResult aggregates what the figures need from one run.
type RunResult struct {
	Stack     string
	Completed int
	Total     int

	AFCT sim.Time
	P99  sim.Time

	// Utilization is the paper's bottleneck metric: total delivered
	// payload over total downlink capacity during backlogged time (the
	// union of each downlink's flows' active intervals — idle periods
	// with nothing to send do not count against the protocol). The
	// aggregation is byte-weighted across downlinks, so an RTT-bound
	// tiny flow does not drag the figure the way an unweighted mean
	// would.
	Utilization float64

	// MaxQueue is the deepest egress queue observed on any monitored
	// downlink, in packets.
	MaxQueue int

	Drops     int64
	Trims     int64
	LastEnd   sim.Time
	Events    uint64
	Collector *stats.FCTCollector

	// Outcomes lists every responsive flow's final disposition in
	// creation order; Stalled and Killed count the watchdog-flagged and
	// crash-killed subsets. AuditChecks/AuditViolations report the
	// invariant auditor's activity (zero when Audit is off; a violation
	// normally panics before the result is built).
	Outcomes        []FlowOutcome
	Stalled         int
	Killed          int
	AuditChecks     int64
	AuditViolations int64

	// DeadlineTotal counts flows carrying a workload deadline;
	// DeadlineMissed counts the subset that finished late or never
	// (including RPC responses whose request never completed).
	DeadlineTotal  int
	DeadlineMissed int
}

// Run executes the simulation synchronously and returns its result.
func (r LeafSpineRun) Run() RunResult {
	ov := topo.Overlay{
		HostQueue:   r.Stack.HostQueue,
		SwitchQueue: r.Stack.SwitchQueue,
		Marker:      r.Stack.Marker,
	}
	if r.Faults != nil {
		ov.SwitchQueue = r.Faults.WrapQueues(ov.SwitchQueue)
	}
	ls := r.Topo.Build(ov)

	// Per-destination state for the utilization metric: delivered
	// payload bytes and the flows targeting it (for backlogged-interval
	// computation after the run). The downlink port doubles as the
	// watchdog's receiver-side admin-state probe.
	type dstState struct {
		mon     *netsim.PortMonitor
		dl      *netsim.Port
		payload int64
		flows   []*transport.Flow
	}
	dsts := map[netsim.NodeID]*dstState{}

	res := RunResult{Stack: r.Stack.Name, Total: len(r.Flows)}
	col := stats.NewFCTCollector()
	res.Collector = col

	// Dependent flows (workload.FlowSpec.After): registered when their
	// parent completes, so request/response loops are closed-loop.
	// deps is keyed by parent ID; released records injected dependents
	// so the post-run sweep (in spec order, for determinism) can report
	// the ones whose parent never finished.
	deps := map[netsim.FlowID][]workload.FlowSpec{}
	released := map[netsim.FlowID]bool{}
	pendingDeps := 0
	deadlines := map[netsim.FlowID]sim.Time{}

	var inst Instance
	// register adds one responsive/unresponsive flow and its
	// destination bookkeeping; injection order is deterministic (spec
	// order up front, completion order for dependents).
	register := func(fs workload.FlowSpec, start sim.Time) *transport.Flow {
		host := ls.Hosts[fs.Dst]
		d := dsts[host.ID()]
		if d == nil {
			// RegisterMetrics attaches (or reuses) the monitor and, with
			// a registry, publishes the downlink's telemetry series.
			// Flow order makes the registration order deterministic.
			dl := ls.Downlink(fs.Dst)
			d = &dstState{mon: dl.RegisterMetrics(r.Metrics), dl: dl}
			dsts[host.ID()] = d
		}
		var f *transport.Flow
		if fs.Unresponsive {
			f = inst.AddUnresponsiveFlow(fs.ID, ls.Hosts[fs.Src], host, fs.Size, start)
			res.Total-- // can never complete; exclude from the target
		} else {
			f = inst.AddFlow(fs.ID, ls.Hosts[fs.Src], host, fs.Size, start)
			d.flows = append(d.flows, f)
		}
		if r.Trace != nil {
			r.Trace.RecordStart(f)
		}
		return f
	}

	base := transport.Config{
		RTT:       ls.RTT(),
		Collector: col,
		OnDone: func(f *transport.Flow) {
			if f.End > res.LastEnd {
				res.LastEnd = f.End
			}
			for _, ds := range deps[f.ID] {
				register(ds, f.End+ds.Start)
				released[ds.ID] = true
				pendingDeps--
			}
			delete(deps, f.ID)
		},
		OnData: func(f *transport.Flow, pkt *netsim.Packet) {
			if d := dsts[f.Dst.ID()]; d != nil {
				d.payload += int64(pkt.Size)
			}
		},
	}
	if r.Trace != nil {
		r.Trace.Attach(ls.Net, &base)
	}
	if r.Metrics != nil {
		base.Metrics = r.Metrics
		ls.Net.RegisterMetrics(r.Metrics)
	}
	inst = r.Stack.New(ls.Net, base)

	for _, fs := range r.Flows {
		if fs.Deadline > 0 && !fs.Unresponsive {
			deadlines[fs.ID] = fs.Deadline
		}
		if fs.After != 0 {
			deps[fs.After] = append(deps[fs.After], fs)
			pendingDeps++
			continue
		}
		register(fs, fs.Start)
	}

	horizon := r.Horizon
	if horizon == 0 {
		horizon = sim.Forever
	}
	if r.Faults != nil {
		// Node-fault hooks: the stack drops crashed state at the instant
		// the fault layer parks the host's links.
		if ch, ok := inst.(CrashHandler); ok {
			r.Faults.CrashHook = ch.OnHostCrash
			r.Faults.RestartHook = ch.OnHostRestart
		}
		if err := r.Faults.Apply(ls.Net, horizon); err != nil {
			panic(err)
		}
		r.Faults.RegisterMetrics(r.Metrics)
	}

	// anyLive gates the self-rescheduling watchdog and auditor ticks so
	// an open-ended run (Horizon == 0) still terminates once every
	// responsive flow is done. Dependents awaiting release keep the
	// ticks alive too.
	anyLive := func() bool {
		if pendingDeps > 0 {
			return true
		}
		for _, f := range inst.OrderedFlows() {
			if !f.Done && !f.Unresponsive {
				return true
			}
		}
		return false
	}

	// Flow-liveness watchdog: no data progress for StallRTTs base RTTs
	// while both access links are administratively up → Stalled (a late
	// completion, or resumed progress, clears the report).
	stallDiag := map[netsim.FlowID]string{}
	stallRTTs := r.StallRTTs
	if stallRTTs == 0 {
		stallRTTs = DefaultStallRTTs
	}
	if stallRTTs > 0 {
		window := sim.Time(stallRTTs) * ls.RTT()
		eng := ls.Net.Engine
		var tick func()
		tick = func() {
			now := eng.Now()
			for _, f := range inst.OrderedFlows() {
				if f.Done || f.Unresponsive || now < f.Start || f.Outcome != transport.OutcomeRunning {
					continue
				}
				last := f.LastProgress
				if last < f.Start {
					last = f.Start
				}
				if now-last < window {
					continue
				}
				// A parked access link explains the silence: that flow is
				// a fault casualty, not a liveness bug.
				if f.Src.NIC().AdminDown() {
					continue
				}
				if d := dsts[f.Dst.ID()]; d != nil && d.dl.AdminDown() {
					continue
				}
				f.Outcome = transport.OutcomeStalled
				stallDiag[f.ID] = fmt.Sprintf(
					"no data progress since %v (stall window %v = %d RTTs) with both access links up",
					last, window, stallRTTs)
			}
			if anyLive() {
				eng.Schedule(window/4, tick)
			}
		}
		eng.Schedule(window/4, tick)
	}

	// Invariant auditor (see internal/audit): checks every metrics
	// interval and once after the run; panics with a forensic dump on
	// the first violation.
	var aud *audit.Auditor
	if r.Audit {
		aud = audit.New(ls.Net, inst)
		interval := MetricsIntervalOrDefault(r.MetricsInterval)
		eng := ls.Net.Engine
		var tick func()
		tick = func() {
			aud.Check()
			if anyLive() {
				eng.Schedule(interval, tick)
			}
		}
		eng.Schedule(interval, tick)
	}
	if r.Metrics != nil {
		r.Metrics.CounterFunc("experiment.flows_stalled", func() int64 {
			return countOutcome(inst, transport.OutcomeStalled)
		})
		r.Metrics.CounterFunc("experiment.flows_killed_by_crash", func() int64 {
			return countOutcome(inst, transport.OutcomeKilledByCrash)
		})
		r.Metrics.Start(ls.Net.Engine, MetricsIntervalOrDefault(r.MetricsInterval))
	}
	if r.Interrupt != nil {
		ls.Net.Engine.SetInterrupt(0, r.Interrupt)
	}
	ls.Net.Run(horizon)
	if aud != nil {
		aud.Check() // final end-of-run sweep
		res.AuditChecks = aud.Checks
		res.AuditViolations = aud.Violations
	}

	for _, f := range inst.OrderedFlows() {
		if f.Unresponsive {
			continue
		}
		o := FlowOutcome{ID: f.ID, Outcome: f.Outcome, LastProgress: f.LastProgress}
		switch f.Outcome {
		case transport.OutcomeStalled:
			o.Diagnosis = stallDiag[f.ID]
			res.Stalled++
		case transport.OutcomeKilledByCrash:
			o.Diagnosis = "endpoint crashed before completion"
			res.Killed++
		case transport.OutcomeRunning:
			o.Diagnosis = fmt.Sprintf("incomplete at horizon (last progress %v)", f.LastProgress)
		}
		if dl, ok := deadlines[f.ID]; ok {
			res.DeadlineTotal++
			if !f.Done || f.End > dl {
				res.DeadlineMissed++
				o.MissedDeadline = true
			}
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	// Dependents whose parent never completed were never injected; they
	// are incomplete by definition (and missed deadlines if they carry
	// one). Spec order keeps the report deterministic.
	for _, fs := range r.Flows {
		if fs.After == 0 || fs.Unresponsive || released[fs.ID] {
			continue
		}
		o := FlowOutcome{
			ID: fs.ID, Outcome: transport.OutcomeRunning,
			Diagnosis: fmt.Sprintf("never released: flow %d did not complete", fs.After),
		}
		if fs.Deadline > 0 {
			res.DeadlineTotal++
			res.DeadlineMissed++
			o.MissedDeadline = true
		}
		res.Outcomes = append(res.Outcomes, o)
	}

	res.Completed = col.Count()
	res.AFCT = col.Mean()
	res.P99 = col.P99()
	res.Drops = ls.Net.Dropped
	res.Events = ls.Net.Engine.Executed

	var payloadSum, capSum float64
	for _, d := range dsts {
		if d.mon.MaxQueueLen > res.MaxQueue {
			res.MaxQueue = d.mon.MaxQueueLen
		}
		busy := backloggedTime(d.flows, horizon)
		if busy <= 0 {
			continue
		}
		capBytes := float64(ls.AccessRate.BytesIn(busy))
		if capBytes <= 0 {
			continue
		}
		pay := float64(d.payload)
		if pay > capBytes {
			pay = capBytes
		}
		payloadSum += pay
		capSum += capBytes
	}
	if capSum > 0 {
		res.Utilization = payloadSum / capSum
	}
	for _, sw := range ls.Switches {
		res.Trims += trimCount(sw)
	}
	return res
}

// DefaultStallRTTs is the watchdog window applied when StallRTTs is
// zero: 128 base RTTs, double the 64×RTT cap on the protocols'
// recovery backoff so built-in recovery always gets to act first.
const DefaultStallRTTs = 128

// countOutcome counts responsive flows currently in the given state.
func countOutcome(inst Instance, o transport.Outcome) int64 {
	var n int64
	for _, f := range inst.OrderedFlows() {
		if !f.Unresponsive && f.Outcome == o {
			n++
		}
	}
	return n
}

// backloggedTime returns the total length of the union of the flows'
// active intervals [Start, End) (End = horizon for incomplete flows).
func backloggedTime(flows []*transport.Flow, horizon sim.Time) sim.Time {
	if len(flows) == 0 {
		return 0
	}
	type iv struct{ s, e sim.Time }
	ivs := make([]iv, 0, len(flows))
	for _, f := range flows {
		end := horizon
		if f.Done {
			end = f.End
		}
		if end > f.Start {
			ivs = append(ivs, iv{f.Start, end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total, curS, curE sim.Time
	started := false
	for _, x := range ivs {
		if !started {
			curS, curE, started = x.s, x.e, true
			continue
		}
		if x.s <= curE {
			if x.e > curE {
				curE = x.e
			}
			continue
		}
		total += curE - curS
		curS, curE = x.s, x.e
	}
	if started {
		total += curE - curS
	}
	return total
}

func trimCount(sw *netsim.Switch) int64 {
	var n int64
	for _, p := range sw.Ports() {
		q := p.Queue()
		// Peel off loss-injection wrappers to reach the trimming queue.
	unwrap:
		for {
			switch w := q.(type) {
			case *netsim.LossyQueue:
				q = w.Inner
			case *netsim.GilbertElliottQueue:
				q = w.Inner
			default:
				break unwrap
			}
		}
		if tq, ok := q.(*netsim.TrimmingQueue); ok {
			n += tq.Trims
		}
	}
	return n
}
