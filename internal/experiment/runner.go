package experiment

import (
	"fmt"
	"sort"

	"amrt/internal/audit"
	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// LeafSpineRun is one large-scale simulation: a protocol stack on a
// datacenter fabric with a list of flows. Despite the historical name
// it drives any topo.Builder — leaf–spine, k-ary fat-tree, or
// three-tier Clos — through the same route/ECMP, fault, telemetry, and
// audit machinery.
type LeafSpineRun struct {
	Topo    topo.Builder
	Stack   Stack
	Flows   []workload.FlowSpec
	Horizon sim.Time // hard stop; incomplete flows are reported

	// Shards is the engine-shard count (see docs/PARALLELISM.md): 0 or 1
	// runs the single-engine reference path; higher values partition the
	// fabric across that many cores, hosts riding with their ToR, and run
	// the conservative time-window loop. Results are byte-identical at
	// every shard count, fault plans included. Sharded runs require a
	// finite Horizon.
	Shards int

	// Trace, if non-nil, records per-flow timelines and drops. Sharded
	// runs record into one recorder per shard and absorb them back into
	// this one after the run; the canonical CSV sort makes the dump
	// byte-identical to a single-shard run's.
	Trace *trace.Recorder

	// Faults, if non-nil, is a fault-injection plan (see internal/faults):
	// its loss processes wrap the stack's switch queues and its link and
	// node events are homed to the owning shards before the run starts.
	// Unknown link/host/switch names in the plan are an RunE error —
	// plans are validated when parsed, but only the built topology can
	// resolve names.
	Faults *faults.Plan

	// Metrics, if non-nil, receives the run's telemetry: per-downlink
	// queue/utilization/mark-rate series, network delivery and drop
	// counters, kernel flow counters, and protocol-specific counters —
	// sampled every MetricsInterval of virtual time (default 100 µs) by
	// one late-band ticker per shard on the simulation clock, so output
	// is deterministic (see internal/metrics and docs/TELEMETRY.md).
	// Sharded runs register per-shard slices of each instrument and merge
	// them after the run; read the merged registry from RunResult.Metrics
	// (which is this registry itself on single-shard runs).
	Metrics *metrics.Registry
	// MetricsInterval is the sampling period (default
	// DefaultMetricsInterval).
	MetricsInterval sim.Time

	// Interrupt, if non-nil, is polled every few thousand executed
	// events (sim.Engine.SetInterrupt) on every shard engine; returning
	// true aborts the run early. Context-cancellable callers set it to
	// `ctx.Err() != nil`. An interrupt that never fires does not perturb
	// determinism.
	Interrupt func() bool

	// Audit attaches the runtime invariant auditor (internal/audit):
	// conservation, queue-bound, and grant-budget checks run every
	// MetricsInterval of virtual time plus once after the run, panicking
	// with a forensic dump on the first violation. Sharded runs audit
	// each shard's slice on that shard's clock and check the cross-shard
	// grant-budget ledger at window barriers. Off by default — the
	// accounting the checks read is maintained regardless, but the
	// periodic sweep costs a few percent of wall time.
	Audit bool

	// StallRTTs is the flow-liveness watchdog window in base RTTs: a
	// live flow with no data progress for this long, while both its
	// access links are administratively up, is reported Stalled (a late
	// completion clears the report). Default 128 — deliberately above
	// the protocols' 64×RTT recovery-backoff cap, so a flow is only
	// called stalled once every built-in recovery mechanism has had its
	// chance. Negative disables the watchdog.
	StallRTTs int
}

// Late-band sub-keys the runner schedules its per-shard observers under:
// observer slots of the sim.SubObserver partition, above every fault
// action of the same instant. metrics.StartUntil owns slot 1; (time,
// sub) pairs must stay unique per engine.
const (
	subWatchdog = sim.SubObserver | 2
	subAudit    = sim.SubObserver | 3
)

// FlowOutcome is one flow's final disposition in a RunResult.
type FlowOutcome struct {
	// ID is the flow ID from the workload spec.
	ID netsim.FlowID
	// Outcome is the terminal state: completed, stalled, running
	// (incomplete at horizon), or killed-by-crash.
	Outcome transport.Outcome
	// LastProgress is the last virtual time data reached the receiver
	// (zero if none ever did).
	LastProgress sim.Time
	// Diagnosis explains non-completed outcomes ("" for completed).
	Diagnosis string
	// MissedDeadline reports a flow with a workload deadline that
	// completed late or not at all (see workload.FlowSpec.Deadline).
	MissedDeadline bool
}

// RunResult aggregates what the figures need from one run.
type RunResult struct {
	Stack     string
	Completed int
	Total     int

	AFCT sim.Time
	P99  sim.Time

	// Utilization is the paper's bottleneck metric: total delivered
	// payload over total downlink capacity during backlogged time (the
	// union of each downlink's flows' active intervals — idle periods
	// with nothing to send do not count against the protocol). The
	// aggregation is byte-weighted across downlinks, so an RTT-bound
	// tiny flow does not drag the figure the way an unweighted mean
	// would.
	Utilization float64

	// MaxQueue is the deepest egress queue observed on any monitored
	// downlink, in packets.
	MaxQueue int

	Drops   int64
	Trims   int64
	LastEnd sim.Time
	// Events counts dispatched simulation events summed across shard
	// engines, excluding the late observer band (metrics/watchdog/audit
	// ticks), so the figure is identical at every shard count.
	Events    uint64
	Collector *stats.FCTCollector

	// Metrics is the registry to dump: the LeafSpineRun.Metrics registry
	// itself on single-shard runs, or the merged view of the per-shard
	// registries on sharded runs. Nil when no registry was attached.
	Metrics *metrics.Registry

	// Outcomes lists every responsive flow's final disposition in
	// workload spec order; Stalled and Killed count the watchdog-flagged
	// and crash-killed subsets. AuditChecks/AuditViolations report the
	// invariant auditors' activity (zero when Audit is off; a violation
	// normally panics before the result is built).
	Outcomes        []FlowOutcome
	Stalled         int
	Killed          int
	AuditChecks     int64
	AuditViolations int64

	// DeadlineTotal counts flows carrying a workload deadline;
	// DeadlineMissed counts the subset that finished late or never
	// (including RPC responses whose request never completed).
	DeadlineTotal  int
	DeadlineMissed int
}

// Run executes the simulation synchronously and returns its result,
// panicking on configuration errors. Callers that want to surface bad
// configurations as diagnosable failures use RunE.
func (r LeafSpineRun) Run() RunResult {
	res, err := r.RunE()
	if err != nil {
		panic(err)
	}
	return res
}

// RunE executes the simulation synchronously, returning an error for
// configurations that cannot run: a sharded run without a finite
// horizon, or a fault plan naming links, hosts, or switches the built
// topology does not have.
func (r LeafSpineRun) RunE() (RunResult, error) {
	ov := topo.Overlay{
		HostQueue:   r.Stack.HostQueue,
		SwitchQueue: r.Stack.SwitchQueue,
		Marker:      r.Stack.Marker,
	}
	if r.Faults != nil {
		ov.SwitchQueue = r.Faults.WrapQueues(ov.SwitchQueue)
	}
	ls := r.Topo.Build(ov)

	nshards := r.Shards
	if nshards <= 0 {
		nshards = 1
	}
	horizon := r.Horizon
	if horizon == 0 {
		horizon = sim.Forever
	}
	var assignment map[netsim.NodeID]int
	if nshards > 1 {
		if horizon == sim.Forever {
			return RunResult{}, fmt.Errorf("experiment: sharded runs require a finite Horizon")
		}
		assignment = shardAssignment(ls, nshards)
		ls.Net.Partition(nshards, func(n netsim.Node) int { return assignment[n.ID()] })
	}
	shards := ls.Net.Shards()
	la := ls.Net.Lookahead()
	idxOf := func(n netsim.Node) int {
		if assignment == nil {
			return 0
		}
		return assignment[n.ID()]
	}

	// Per-destination state for the utilization metric: delivered
	// payload bytes and the flows targeting it (for backlogged-interval
	// computation after the run). The downlink port doubles as the
	// watchdog's receiver-side admin-state probe. The map is fully built
	// during setup and only read during the run; the per-entry fields
	// are written exclusively by the destination's home shard.
	type dstState struct {
		mon     *netsim.PortMonitor
		dl      *netsim.Port
		payload int64
		flows   []*transport.Flow
	}
	dsts := map[netsim.NodeID]*dstState{}

	res := RunResult{Stack: r.Stack.Name, Total: len(r.Flows)}

	// Per-shard slices of the run's mutable results; merged after the
	// run. Index s belongs to shard s's goroutine while windows execute.
	cols := make([]*stats.FCTCollector, nshards)
	lastEnd := make([]sim.Time, nshards)
	parts := make([]*metrics.Registry, nshards)
	recs := make([]*trace.Recorder, nshards)
	bases := make([]transport.Config, nshards)
	insts := make([]Instance, nshards)
	stallDiags := make([]map[netsim.FlowID]string, nshards)
	for s := 0; s < nshards; s++ {
		cols[s] = stats.NewFCTCollector()
		stallDiags[s] = map[netsim.FlowID]string{}
	}
	if r.Metrics != nil {
		parts[0] = r.Metrics
		for s := 1; s < nshards; s++ {
			parts[s] = metrics.NewRegistry()
		}
	}
	if r.Trace != nil {
		recs[0] = r.Trace
		for s := 1; s < nshards; s++ {
			recs[s] = &trace.Recorder{MaxEvents: r.Trace.MaxEvents}
		}
	}

	// Dependent flows (workload.FlowSpec.After): pre-created without a
	// start, released when their parent completes, so request/response
	// loops are closed-loop. deps is keyed by parent ID, fully built at
	// setup and read-only during the run (the release path may run on
	// any shard).
	type depChild struct {
		flow            *transport.Flow
		offset          sim.Time // spec Start: delay after the parent's End
		srcIdx, homeIdx int
	}
	deps := map[netsim.FlowID][]depChild{}
	deadlines := map[netsim.FlowID]sim.Time{}

	for s := 0; s < nshards; s++ {
		s := s
		bases[s] = transport.Config{
			RTT:       ls.RTT(),
			Shard:     shards[s],
			Collector: cols[s],
			Metrics:   parts[s],
			OnDone: func(f *transport.Flow) {
				if f.End > lastEnd[s] {
					lastEnd[s] = f.End
				}
				for _, dc := range deps[f.ID] {
					dc := dc
					// The release handshake crosses shards through the
					// deterministic signal channel: one signal starts the
					// child on its source shard, one marks it released on
					// its home shard. Both signals take exactly one
					// lookahead at every shard count — including one — so
					// the child's start time is partition-independent.
					start := f.End + dc.offset
					if min := f.End + la; start < min {
						start = min
					}
					child := dc.flow
					sh := shards[s]
					sh.Signal(f.Dst, child.Src, func() {
						insts[dc.srcIdx].Release(child, start)
					})
					sh.Signal(f.Dst, child.Dst, func() {
						child.Released = true
						child.Start = start
						if !child.Unresponsive {
							if d := dsts[child.Dst.ID()]; d != nil {
								d.flows = append(d.flows, child)
							}
						}
						if recs[dc.homeIdx] != nil {
							recs[dc.homeIdx].RecordStart(child)
						}
					})
				}
			},
			OnData: func(f *transport.Flow, pkt *netsim.Packet) {
				if d := dsts[f.Dst.ID()]; d != nil {
					d.payload += int64(pkt.Size)
				}
			},
		}
		if recs[s] != nil {
			recs[s].AttachShard(shards[s], &bases[s])
		}
	}
	if r.Metrics != nil {
		for s := 0; s < nshards; s++ {
			shards[s].RegisterMetrics(parts[s])
		}
	}
	for s := 0; s < nshards; s++ {
		insts[s] = r.Stack.New(ls.Net, bases[s])
	}

	// Flow registration: every flow — dependents included — is created
	// up front in spec order, its sender side on its source's shard
	// instance and its receiver side adopted by its destination's.
	allFlows := make([]*transport.Flow, len(r.Flows))
	for i, fs := range r.Flows {
		src, dst := ls.Hosts[fs.Src], ls.Hosts[fs.Dst]
		si, di := idxOf(src), idxOf(dst)
		d := dsts[dst.ID()]
		if d == nil {
			// RegisterMetrics attaches (or reuses) the monitor and, with
			// a registry, publishes the downlink's telemetry series on
			// the owning shard. Spec order makes the registration order
			// deterministic.
			dl := ls.Downlink(fs.Dst)
			d = &dstState{mon: dl.RegisterMetrics(parts[di]), dl: dl}
			dsts[dst.ID()] = d
		}
		// Every flow takes the split-registration path — AddPending on the
		// source shard, Adopt on the home shard — even when both are the
		// same instance, so no later flow's source-side install can stomp
		// a host handler another instance owns.
		f := insts[si].AddPending(fs.ID, src, dst, fs.Size, fs.Unresponsive)
		insts[di].Adopt(f)
		if fs.Unresponsive {
			res.Total-- // can never complete; exclude from the target
		}
		if fs.After != 0 {
			deps[fs.After] = append(deps[fs.After], depChild{flow: f, offset: fs.Start, srcIdx: si, homeIdx: di})
			// Destination bookkeeping and the trace start record wait for
			// the release signal, like the injection itself.
		} else {
			f.Released = true
			f.Start = fs.Start
			insts[si].Release(f, fs.Start)
			if !fs.Unresponsive {
				d.flows = append(d.flows, f)
			}
			if recs[di] != nil {
				recs[di].RecordStart(f)
			}
		}
		f.Home = int32(di)
		allFlows[i] = f
		if fs.Deadline > 0 && !fs.Unresponsive {
			deadlines[fs.ID] = fs.Deadline
		}
	}

	if r.Faults != nil {
		// Node-fault hooks: each shard's stack instance drops (and later
		// recovers) the slice of the crashed host's state it owns, at the
		// instant the fault layer parks the host's links. The fault layer
		// fires the hook once per shard, on that shard's engine.
		if _, ok := insts[0].(CrashHandler); ok {
			r.Faults.CrashHook = func(sh *netsim.Shard, h *netsim.Host) {
				insts[sh.Index()].(CrashHandler).OnHostCrash(h)
			}
			r.Faults.RestartHook = func(sh *netsim.Shard, h *netsim.Host) {
				insts[sh.Index()].(CrashHandler).OnHostRestart(h)
			}
		}
		if err := r.Faults.Apply(ls.Net, horizon); err != nil {
			return RunResult{}, err
		}
		r.Faults.RegisterMetrics(parts[0])
	}

	// anyLive gates the self-rescheduling observer ticks on open-ended
	// (Horizon == 0, necessarily single-shard) runs so they terminate
	// once every responsive flow is done; dependents awaiting release
	// are not Done, so they keep the ticks alive too. Finite-horizon
	// runs instead tick to the horizon unconditionally — a pure function
	// of (interval, horizon), identical at every shard count.
	anyLive := func() bool {
		for _, f := range allFlows {
			if !f.Done && !f.Unresponsive {
				return true
			}
		}
		return false
	}
	// reschedule continues an observer tick chain in the late band.
	reschedule := func(eng *sim.Engine, sub uint64, interval sim.Time, tick func()) {
		next := eng.Now() + interval
		if horizon == sim.Forever {
			if anyLive() {
				eng.ScheduleLate(next, sub, tick)
			}
			return
		}
		if next <= horizon {
			eng.ScheduleLate(next, sub, tick)
		}
	}

	// Flow-liveness watchdog: no data progress for StallRTTs base RTTs
	// while both access links are administratively up → Stalled (a late
	// completion, or resumed progress, clears the report). One tick
	// chain per shard, each inspecting only the flows homed there; the
	// access-link admin probes consult the fault plan's AdminDown oracle
	// — a pure function of the plan, safe from any shard — instead of
	// reading another shard's live port state.
	stallRTTs := r.StallRTTs
	if stallRTTs == 0 {
		stallRTTs = DefaultStallRTTs
	}
	if stallRTTs > 0 {
		window := sim.Time(stallRTTs) * ls.RTT()
		for s := 0; s < nshards; s++ {
			s := s
			eng := shards[s].Eng()
			var tick func()
			tick = func() {
				now := eng.Now()
				for _, f := range insts[s].OrderedFlows() {
					if int(f.Home) != s || !f.Released || f.Done || f.Unresponsive ||
						now < f.Start || f.Outcome != transport.OutcomeRunning {
						continue
					}
					last := f.LastProgress
					if last < f.Start {
						last = f.Start
					}
					if now-last < window {
						continue
					}
					// A parked access link explains the silence: that flow is
					// a fault casualty, not a liveness bug.
					if r.Faults.AdminDown(f.Src.NIC(), now) {
						continue
					}
					if d := dsts[f.Dst.ID()]; d != nil && r.Faults.AdminDown(d.dl, now) {
						continue
					}
					f.Outcome = transport.OutcomeStalled
					stallDiags[s][f.ID] = fmt.Sprintf(
						"no data progress since %v (stall window %v = %d RTTs) with both access links up",
						last, window, stallRTTs)
				}
				reschedule(eng, subWatchdog, window/4, tick)
			}
			eng.ScheduleLate(window/4, subWatchdog, tick)
		}
	}

	// Invariant auditors (see internal/audit): per-shard checks every
	// metrics interval on the shard's own clock, plus — on sharded runs
	// — a whole-network auditor carrying the cross-shard grant-budget
	// ledger at every window barrier. Each panics with a forensic dump
	// on the first violation.
	var audits []*audit.Auditor
	if r.Audit {
		interval := MetricsIntervalOrDefault(r.MetricsInterval)
		startTick := func(aud *audit.Auditor, eng *sim.Engine) {
			var tick func()
			tick = func() {
				aud.Check()
				reschedule(eng, subAudit, interval, tick)
			}
			eng.ScheduleLate(interval, subAudit, tick)
		}
		if nshards == 1 {
			aud := audit.New(ls.Net, insts[0])
			audits = append(audits, aud)
			startTick(aud, ls.Net.Engine)
		} else {
			for s := 0; s < nshards; s++ {
				aud := audit.NewShard(shards[s], insts[s])
				audits = append(audits, aud)
				startTick(aud, shards[s].Eng())
			}
			gaud := audit.New(ls.Net, globalAuditStack(insts, allFlows))
			audits = append(audits, gaud)
			ls.Net.BarrierHook = func() { gaud.Check() }
		}
	}

	if r.Metrics != nil {
		for s := 0; s < nshards; s++ {
			s := s
			parts[s].CounterFunc("experiment.flows_stalled", func() int64 {
				return countOutcome(insts[s], s, transport.OutcomeStalled)
			})
			parts[s].CounterFunc("experiment.flows_killed_by_crash", func() int64 {
				return countOutcome(insts[s], s, transport.OutcomeKilledByCrash)
			})
		}
		interval := MetricsIntervalOrDefault(r.MetricsInterval)
		if horizon == sim.Forever {
			// Open-ended runs are single-shard; the legacy ticker stops on
			// the queue-drain heuristic.
			r.Metrics.Start(ls.Net.Engine, interval)
		} else {
			for s := 0; s < nshards; s++ {
				parts[s].StartUntil(shards[s].Eng(), interval, horizon)
			}
		}
	}
	if r.Interrupt != nil {
		for s := 0; s < nshards; s++ {
			shards[s].Eng().SetInterrupt(0, r.Interrupt)
		}
	}
	ls.Net.Run(horizon)
	ls.Net.BarrierHook = nil
	if len(audits) > 0 {
		for _, aud := range audits {
			aud.Check() // final end-of-run sweep
			res.AuditChecks += aud.Checks
			res.AuditViolations += aud.Violations
		}
	}

	if r.Trace != nil {
		r.Trace.Absorb(recs...)
	}
	if r.Metrics != nil {
		if nshards == 1 {
			res.Metrics = r.Metrics
		} else {
			res.Metrics = metrics.Merged(parts...)
		}
	}
	for _, e := range lastEnd {
		if e > res.LastEnd {
			res.LastEnd = e
		}
	}

	// Final dispositions, in spec order for determinism. Dependents
	// whose parent never completed were never released; they are
	// incomplete by definition (and missed deadlines if they carry one).
	for i, fs := range r.Flows {
		f := allFlows[i]
		if f.Unresponsive {
			continue
		}
		if fs.After != 0 && !f.Released {
			o := FlowOutcome{
				ID: f.ID, Outcome: transport.OutcomeRunning,
				Diagnosis: fmt.Sprintf("never released: flow %d did not complete", fs.After),
			}
			if fs.Deadline > 0 {
				res.DeadlineTotal++
				res.DeadlineMissed++
				o.MissedDeadline = true
			}
			res.Outcomes = append(res.Outcomes, o)
			continue
		}
		o := FlowOutcome{ID: f.ID, Outcome: f.Outcome, LastProgress: f.LastProgress}
		switch f.Outcome {
		case transport.OutcomeStalled:
			o.Diagnosis = stallDiags[f.Home][f.ID]
			res.Stalled++
		case transport.OutcomeKilledByCrash:
			o.Diagnosis = "endpoint crashed before completion"
			res.Killed++
		case transport.OutcomeRunning:
			o.Diagnosis = fmt.Sprintf("incomplete at horizon (last progress %v)", f.LastProgress)
		}
		if dl, ok := deadlines[f.ID]; ok {
			res.DeadlineTotal++
			if !f.Done || f.End > dl {
				res.DeadlineMissed++
				o.MissedDeadline = true
			}
		}
		res.Outcomes = append(res.Outcomes, o)
	}

	// The canonical merge runs at every shard count, so the one
	// floating-point fold order backs all reported statistics.
	col := stats.Merge(cols...)
	res.Collector = col
	res.Completed = col.Count()
	res.AFCT = col.Mean()
	res.P99 = col.P99()
	res.Drops = ls.Net.Dropped()
	total, late := ls.Net.Executed()
	res.Events = total - late

	// Host-index iteration keeps the floating-point utilization fold
	// deterministic (map order is not).
	var payloadSum, capSum float64
	for hi := range ls.Hosts {
		d := dsts[ls.Hosts[hi].ID()]
		if d == nil {
			continue
		}
		if d.mon.MaxQueueLen > res.MaxQueue {
			res.MaxQueue = d.mon.MaxQueueLen
		}
		busy := backloggedTime(d.flows, horizon)
		if busy <= 0 {
			continue
		}
		capBytes := float64(ls.AccessRate.BytesIn(busy))
		if capBytes <= 0 {
			continue
		}
		pay := float64(d.payload)
		if pay > capBytes {
			pay = capBytes
		}
		payloadSum += pay
		capSum += capBytes
	}
	if capSum > 0 {
		res.Utilization = payloadSum / capSum
	}
	for _, sw := range ls.Switches {
		res.Trims += trimCount(sw)
	}
	return res, nil
}

// shardAssignment maps every node to an engine shard: ToRs — the unique
// owners of the host downlinks, in first-appearance order — round-robin
// across shards, hosts ride with their ToR (keeping the dense
// host↔access-switch traffic intra-shard), and the remaining fabric
// switches round-robin over the shards in creation order. The
// assignment affects only wall-clock performance, never results.
func shardAssignment(ls *topo.Fabric, nshards int) map[netsim.NodeID]int {
	am := make(map[netsim.NodeID]int)
	tors := 0
	for _, dl := range ls.HostDownlinks {
		sw := dl.Owner()
		if _, ok := am[sw.ID()]; !ok {
			am[sw.ID()] = tors % nshards
			tors++
		}
	}
	for i, h := range ls.Hosts {
		am[h.ID()] = am[ls.HostDownlinks[i].Owner().ID()]
	}
	rr := 0
	for _, sw := range ls.Switches {
		if _, ok := am[sw.ID()]; ok {
			continue
		}
		am[sw.ID()] = rr % nshards
		rr++
	}
	return am
}

// flowsView gives the whole-network auditor's forensic dump the global
// flow list (per-shard instances each hold only their slice).
type flowsView struct{ flows []*transport.Flow }

// OrderedFlows implements audit.FlowLister.
func (v flowsView) OrderedFlows() []*transport.Flow { return v.flows }

// ledgerView additionally sums the per-shard instances' grant ledgers:
// senders spend on source shards, receivers grant on home shards, so
// only the cross-shard sum is invariant.
type ledgerView struct {
	flowsView
	insts []Instance
}

// DataPacketsSent implements audit.GrantAccounting.
func (v ledgerView) DataPacketsSent() int64 {
	var t int64
	for _, in := range v.insts {
		t += in.(audit.GrantAccounting).DataPacketsSent()
	}
	return t
}

// GrantAuthority implements audit.GrantAccounting.
func (v ledgerView) GrantAuthority() int64 {
	var t int64
	for _, in := range v.insts {
		t += in.(audit.GrantAccounting).GrantAuthority()
	}
	return t
}

// globalAuditStack builds the stack object backing the whole-network
// auditor of a sharded run: the global flow list, plus the summed grant
// ledger when every shard instance exposes one (stacks without
// GrantAccounting — DCTCP — skip invariant 4 exactly as they do on a
// single shard).
func globalAuditStack(insts []Instance, flows []*transport.Flow) any {
	for _, in := range insts {
		if _, ok := in.(audit.GrantAccounting); !ok {
			return flowsView{flows}
		}
	}
	return ledgerView{flowsView{flows}, insts}
}

// DefaultStallRTTs is the watchdog window applied when StallRTTs is
// zero: 128 base RTTs, double the 64×RTT cap on the protocols'
// recovery backoff so built-in recovery always gets to act first.
const DefaultStallRTTs = 128

// countOutcome counts responsive flows homed on the given shard that
// are currently in the given state. The home filter makes the per-shard
// counters sum to the global figure (a cross-shard flow is listed by
// both its sender's and its receiver's instance).
func countOutcome(inst Instance, shard int, o transport.Outcome) int64 {
	var n int64
	for _, f := range inst.OrderedFlows() {
		if int(f.Home) == shard && !f.Unresponsive && f.Outcome == o {
			n++
		}
	}
	return n
}

// backloggedTime returns the total length of the union of the flows'
// active intervals [Start, End) (End = horizon for incomplete flows).
func backloggedTime(flows []*transport.Flow, horizon sim.Time) sim.Time {
	if len(flows) == 0 {
		return 0
	}
	type iv struct{ s, e sim.Time }
	ivs := make([]iv, 0, len(flows))
	for _, f := range flows {
		end := horizon
		if f.Done {
			end = f.End
		}
		if end > f.Start {
			ivs = append(ivs, iv{f.Start, end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total, curS, curE sim.Time
	started := false
	for _, x := range ivs {
		if !started {
			curS, curE, started = x.s, x.e, true
			continue
		}
		if x.s <= curE {
			if x.e > curE {
				curE = x.e
			}
			continue
		}
		total += curE - curS
		curS, curE = x.s, x.e
	}
	if started {
		total += curE - curS
	}
	return total
}

func trimCount(sw *netsim.Switch) int64 {
	var n int64
	for _, p := range sw.Ports() {
		q := p.Queue()
		// Peel off loss-injection wrappers to reach the trimming queue.
	unwrap:
		for {
			switch w := q.(type) {
			case *netsim.LossyQueue:
				q = w.Inner
			case *netsim.GilbertElliottQueue:
				q = w.Inner
			default:
				break unwrap
			}
		}
		if tq, ok := q.(*netsim.TrimmingQueue); ok {
			n += tq.Trims
		}
	}
	return n
}
