package experiment

import (
	"sort"

	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/trace"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// LeafSpineRun is one large-scale simulation: a protocol stack on a
// leaf-spine fabric with a list of flows.
type LeafSpineRun struct {
	Topo    topo.LeafSpineConfig
	Stack   Stack
	Flows   []workload.FlowSpec
	Horizon sim.Time // hard stop; incomplete flows are reported

	// Trace, if non-nil, records per-flow timelines and drops.
	Trace *trace.Recorder

	// Faults, if non-nil, is a fault-injection plan (see internal/faults):
	// its loss processes wrap the stack's switch queues and its link
	// events are scheduled before the run starts. Unknown link names in
	// the plan panic — plans are validated when parsed, but only the
	// built topology can resolve names.
	Faults *faults.Plan

	// Metrics, if non-nil, receives the run's telemetry: per-downlink
	// queue/utilization/mark-rate series, network delivery and drop
	// counters, kernel flow counters, and protocol-specific counters —
	// sampled every MetricsInterval of virtual time (default 100 µs) by
	// one ticker on the simulation clock, so output is deterministic
	// (see internal/metrics and docs/TELEMETRY.md).
	Metrics *metrics.Registry
	// MetricsInterval is the sampling period (default
	// DefaultMetricsInterval).
	MetricsInterval sim.Time

	// Interrupt, if non-nil, is polled every few thousand executed
	// events (sim.Engine.SetInterrupt); returning true aborts the run
	// early. Context-cancellable callers set it to `ctx.Err() != nil`.
	// An interrupt that never fires does not perturb determinism.
	Interrupt func() bool
}

// RunResult aggregates what the figures need from one run.
type RunResult struct {
	Stack     string
	Completed int
	Total     int

	AFCT sim.Time
	P99  sim.Time

	// Utilization is the paper's bottleneck metric: total delivered
	// payload over total downlink capacity during backlogged time (the
	// union of each downlink's flows' active intervals — idle periods
	// with nothing to send do not count against the protocol). The
	// aggregation is byte-weighted across downlinks, so an RTT-bound
	// tiny flow does not drag the figure the way an unweighted mean
	// would.
	Utilization float64

	// MaxQueue is the deepest egress queue observed on any monitored
	// downlink, in packets.
	MaxQueue int

	Drops     int64
	Trims     int64
	LastEnd   sim.Time
	Events    uint64
	Collector *stats.FCTCollector
}

// Run executes the simulation synchronously and returns its result.
func (r LeafSpineRun) Run() RunResult {
	cfg := r.Topo
	cfg.SwitchQueue = r.Stack.SwitchQueue
	cfg.HostQueue = r.Stack.HostQueue
	cfg.Marker = r.Stack.Marker
	if r.Faults != nil {
		cfg.SwitchQueue = r.Faults.WrapQueues(cfg.SwitchQueue)
	}
	ls := topo.NewLeafSpine(cfg)

	// Per-destination state for the utilization metric: delivered
	// payload bytes and the flows targeting it (for backlogged-interval
	// computation after the run).
	type dstState struct {
		mon     *netsim.PortMonitor
		payload int64
		flows   []*transport.Flow
	}
	dsts := map[netsim.NodeID]*dstState{}

	res := RunResult{Stack: r.Stack.Name, Total: len(r.Flows)}
	col := stats.NewFCTCollector()
	res.Collector = col
	base := transport.Config{
		RTT:       ls.RTT(),
		Collector: col,
		OnDone: func(f *transport.Flow) {
			if f.End > res.LastEnd {
				res.LastEnd = f.End
			}
		},
		OnData: func(f *transport.Flow, pkt *netsim.Packet) {
			if d := dsts[f.Dst.ID()]; d != nil {
				d.payload += int64(pkt.Size)
			}
		},
	}
	if r.Trace != nil {
		r.Trace.Attach(ls.Net, &base)
	}
	if r.Metrics != nil {
		base.Metrics = r.Metrics
		ls.Net.RegisterMetrics(r.Metrics)
	}
	inst := r.Stack.New(ls.Net, base)

	for _, fs := range r.Flows {
		host := ls.Hosts[fs.Dst]
		d := dsts[host.ID()]
		if d == nil {
			// RegisterMetrics attaches (or reuses) the monitor and, with
			// a registry, publishes the downlink's telemetry series.
			// Flow order makes the registration order deterministic.
			d = &dstState{mon: ls.Downlink(fs.Dst).RegisterMetrics(r.Metrics)}
			dsts[host.ID()] = d
		}
		var f *transport.Flow
		if fs.Unresponsive {
			f = inst.AddUnresponsiveFlow(fs.ID, ls.Hosts[fs.Src], host, fs.Size, fs.Start)
			res.Total-- // can never complete; exclude from the target
		} else {
			f = inst.AddFlow(fs.ID, ls.Hosts[fs.Src], host, fs.Size, fs.Start)
			d.flows = append(d.flows, f)
		}
		if r.Trace != nil {
			r.Trace.RecordStart(f)
		}
	}

	horizon := r.Horizon
	if horizon == 0 {
		horizon = sim.Forever
	}
	if r.Faults != nil {
		if err := r.Faults.Apply(ls.Net, horizon); err != nil {
			panic(err)
		}
		r.Faults.RegisterMetrics(r.Metrics)
	}
	if r.Metrics != nil {
		r.Metrics.Start(ls.Net.Engine, MetricsIntervalOrDefault(r.MetricsInterval))
	}
	if r.Interrupt != nil {
		ls.Net.Engine.SetInterrupt(0, r.Interrupt)
	}
	ls.Net.Run(horizon)

	res.Completed = col.Count()
	res.AFCT = col.Mean()
	res.P99 = col.P99()
	res.Drops = ls.Net.Dropped
	res.Events = ls.Net.Engine.Executed

	var payloadSum, capSum float64
	for _, d := range dsts {
		if d.mon.MaxQueueLen > res.MaxQueue {
			res.MaxQueue = d.mon.MaxQueueLen
		}
		busy := backloggedTime(d.flows, horizon)
		if busy <= 0 {
			continue
		}
		capBytes := float64(cfg.HostRate.BytesIn(busy))
		if capBytes <= 0 {
			continue
		}
		pay := float64(d.payload)
		if pay > capBytes {
			pay = capBytes
		}
		payloadSum += pay
		capSum += capBytes
	}
	if capSum > 0 {
		res.Utilization = payloadSum / capSum
	}
	for _, sw := range ls.Leaves {
		res.Trims += trimCount(sw)
	}
	for _, sw := range ls.Spines {
		res.Trims += trimCount(sw)
	}
	return res
}

// backloggedTime returns the total length of the union of the flows'
// active intervals [Start, End) (End = horizon for incomplete flows).
func backloggedTime(flows []*transport.Flow, horizon sim.Time) sim.Time {
	if len(flows) == 0 {
		return 0
	}
	type iv struct{ s, e sim.Time }
	ivs := make([]iv, 0, len(flows))
	for _, f := range flows {
		end := horizon
		if f.Done {
			end = f.End
		}
		if end > f.Start {
			ivs = append(ivs, iv{f.Start, end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total, curS, curE sim.Time
	started := false
	for _, x := range ivs {
		if !started {
			curS, curE, started = x.s, x.e, true
			continue
		}
		if x.s <= curE {
			if x.e > curE {
				curE = x.e
			}
			continue
		}
		total += curE - curS
		curS, curE = x.s, x.e
	}
	if started {
		total += curE - curS
	}
	return total
}

func trimCount(sw *netsim.Switch) int64 {
	var n int64
	for _, p := range sw.Ports() {
		q := p.Queue()
		// Peel off loss-injection wrappers to reach the trimming queue.
	unwrap:
		for {
			switch w := q.(type) {
			case *netsim.LossyQueue:
				q = w.Inner
			case *netsim.GilbertElliottQueue:
				q = w.Inner
			default:
				break unwrap
			}
		}
		if tq, ok := q.(*netsim.TrimmingQueue); ok {
			n += tq.Trims
		}
	}
	return n
}
