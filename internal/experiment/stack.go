// Package experiment reproduces the paper's evaluation: one entry point
// per figure, each building the right topology, protocol stack, and
// traffic, running the deterministic simulation (sweep points fan out
// over a worker pool), and returning printable tables and series.
package experiment

import (
	"fmt"

	"amrt/internal/core"
	"amrt/internal/dctcp"
	"amrt/internal/homa"
	"amrt/internal/ndp"
	"amrt/internal/netsim"
	"amrt/internal/phost"
	"amrt/internal/sim"
	"amrt/internal/sird"
	"amrt/internal/transport"
)

// Instance is the protocol surface the harness drives; all four
// implementations satisfy it. The runner creates one instance per
// engine shard: a flow's sender side lives on its source's instance
// (AddFlow / AddPending), its receiver side on its destination's
// (Adopt), and the two coincide on single-shard runs.
type Instance interface {
	Name() string
	AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow
	AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow
	// AddPending registers a dependent flow's sender side without
	// scheduling a start; Release (on the same instance) starts it when
	// the parent completes.
	AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow
	Release(f *transport.Flow, start sim.Time)
	// Adopt registers a flow created by another instance on this
	// instance's receiver side (no-op receiver install on single-shard
	// runs, where the same instance already holds the flow).
	Adopt(f *transport.Flow)
	// OrderedFlows returns the flows in creation order (embedded
	// transport.Kernel provides it); the runner's watchdog, crash
	// wiring, and outcome report iterate it for determinism.
	OrderedFlows() []*transport.Flow
}

// CrashHandler is implemented by stacks that react to node-level fault
// domains: OnHostCrash fires at the instant a host loses power (all
// protocol state on it is gone), OnHostRestart when it comes back. The
// runner wires these into the fault plan's hooks; a stack that does not
// implement the interface silently ignores crashes, which under the
// auditor shows up as stalled flows.
type CrashHandler interface {
	OnHostCrash(h *netsim.Host)
	OnHostRestart(h *netsim.Host)
}

// Stack bundles everything needed to put one protocol on a topology:
// its queue disciplines, its optional egress marker, and its
// constructor.
type Stack struct {
	Name        string
	SwitchQueue netsim.QueueFactory
	HostQueue   netsim.QueueFactory
	Marker      func() netsim.DequeueMarker
	New         func(net *netsim.Network, base transport.Config) Instance
}

// StackOptions tune protocol-specific knobs. One struct is shared by
// every stack: each constructor reads only its own fields, and the
// public validation layer uses the registry's OptionsSet/Narrow hooks
// to reject or strip fields aimed at a different protocol.
type StackOptions struct {
	// HomaDegree is the overcommitment degree (default 2).
	HomaDegree int
	// SIRDPoolBytes bounds each SIRD receiver's outstanding scheduled
	// credit in bytes (default 0 = 1.5× the downlink BDP).
	SIRDPoolBytes int64
	// SIRDStalenessRTTs is how long SIRD trusts a sender's demand
	// advertisement, in RTTs (default 8).
	SIRDStalenessRTTs int
	// AMRT overrides for the ablation study; zero values keep the
	// paper's defaults.
	AMRT core.Config
}

// The five comparison protocols (presentation order 0–4) plus the
// related-work contrast register themselves here; everything else —
// ProtocolNames, AllStacks, amrt.Validate, the CLIs, the docs checker —
// derives from the registry.
func init() {
	Register(Descriptor{
		Name: "pHost", Order: 0,
		Build: func(StackOptions) Stack {
			cfg := phost.DefaultConfig()
			return Stack{
				Name:        "pHost",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := phost.DefaultConfig()
					c.Config = base
					return phost.New(net, c)
				},
			}
		},
	})
	Register(Descriptor{
		Name: "Homa", Order: 1,
		Build: func(opts StackOptions) Stack {
			cfg := homa.DefaultConfig()
			if opts.HomaDegree > 0 {
				cfg.Degree = opts.HomaDegree
			}
			deg := cfg.Degree
			return Stack{
				Name:        "Homa",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := homa.DefaultConfig()
					c.Degree = deg
					c.Config = base
					return homa.New(net, c)
				},
			}
		},
		OptionsSet: func(opts StackOptions) bool { return opts.HomaDegree != 0 },
		Narrow:     func(opts StackOptions) StackOptions { return StackOptions{HomaDegree: opts.HomaDegree} },
		CheckOptions: func(opts StackOptions) error {
			if opts.HomaDegree < 0 {
				return fmt.Errorf("HomaDegree %d must be non-negative", opts.HomaDegree)
			}
			return nil
		},
	})
	Register(Descriptor{
		Name: "NDP", Order: 2,
		Build: func(StackOptions) Stack {
			cfg := ndp.DefaultConfig()
			return Stack{
				Name:        "NDP",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := ndp.DefaultConfig()
					c.Config = base
					return ndp.New(net, c)
				},
			}
		},
	})
	Register(Descriptor{
		Name: "AMRT", Order: 3,
		Build: func(opts StackOptions) Stack {
			cfg := opts.AMRT.WithDefaults()
			return Stack{
				Name:        "AMRT",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				Marker:      cfg.NewMarker,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := cfg
					c.Config = base
					return core.New(net, c)
				},
			}
		},
		// core.Config is internal (ablation only) and not comparable, so
		// AMRT exposes no public options to probe or narrow.
		Narrow: func(opts StackOptions) StackOptions { return StackOptions{AMRT: opts.AMRT} },
	})
	Register(Descriptor{
		Name: "SIRD", Order: 4,
		Build: func(opts StackOptions) Stack {
			cfg := sird.DefaultConfig()
			cfg.PoolBytes = opts.SIRDPoolBytes
			if opts.SIRDStalenessRTTs > 0 {
				cfg.StalenessRTTs = opts.SIRDStalenessRTTs
			}
			pool, stale := cfg.PoolBytes, cfg.StalenessRTTs
			return Stack{
				Name:        "SIRD",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := sird.DefaultConfig()
					c.PoolBytes, c.StalenessRTTs = pool, stale
					c.Config = base
					return sird.New(net, c)
				},
			}
		},
		OptionsSet: func(opts StackOptions) bool {
			return opts.SIRDPoolBytes != 0 || opts.SIRDStalenessRTTs != 0
		},
		Narrow: func(opts StackOptions) StackOptions {
			return StackOptions{SIRDPoolBytes: opts.SIRDPoolBytes, SIRDStalenessRTTs: opts.SIRDStalenessRTTs}
		},
		CheckOptions: func(opts StackOptions) error {
			if opts.SIRDPoolBytes < 0 {
				return fmt.Errorf("SIRDPoolBytes %d must be non-negative", opts.SIRDPoolBytes)
			}
			if opts.SIRDStalenessRTTs < 0 {
				return fmt.Errorf("SIRDStalenessRTTs %d must be non-negative", opts.SIRDStalenessRTTs)
			}
			return nil
		},
	})
	Register(Descriptor{
		// Not part of the paper's five-way comparison; used by the
		// related-work contrast (reactive sender-based control).
		Name: "DCTCP", Order: 0, Related: true,
		Build: func(StackOptions) Stack {
			cfg := dctcp.DefaultConfig()
			return Stack{
				Name:        "DCTCP",
				SwitchQueue: cfg.SwitchQueue,
				HostQueue:   cfg.HostQueue,
				New: func(net *netsim.Network, base transport.Config) Instance {
					c := dctcp.DefaultConfig()
					c.Config = base
					return dctcp.New(net, c)
				},
			}
		},
	})
}
