// Package experiment reproduces the paper's evaluation: one entry point
// per figure, each building the right topology, protocol stack, and
// traffic, running the deterministic simulation (sweep points fan out
// over a worker pool), and returning printable tables and series.
package experiment

import (
	"fmt"

	"amrt/internal/core"
	"amrt/internal/dctcp"
	"amrt/internal/homa"
	"amrt/internal/ndp"
	"amrt/internal/netsim"
	"amrt/internal/phost"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Instance is the protocol surface the harness drives; all four
// implementations satisfy it. The runner creates one instance per
// engine shard: a flow's sender side lives on its source's instance
// (AddFlow / AddPending), its receiver side on its destination's
// (Adopt), and the two coincide on single-shard runs.
type Instance interface {
	Name() string
	AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow
	AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow
	// AddPending registers a dependent flow's sender side without
	// scheduling a start; Release (on the same instance) starts it when
	// the parent completes.
	AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow
	Release(f *transport.Flow, start sim.Time)
	// Adopt registers a flow created by another instance on this
	// instance's receiver side (no-op receiver install on single-shard
	// runs, where the same instance already holds the flow).
	Adopt(f *transport.Flow)
	// OrderedFlows returns the flows in creation order (embedded
	// transport.Kernel provides it); the runner's watchdog, crash
	// wiring, and outcome report iterate it for determinism.
	OrderedFlows() []*transport.Flow
}

// CrashHandler is implemented by stacks that react to node-level fault
// domains: OnHostCrash fires at the instant a host loses power (all
// protocol state on it is gone), OnHostRestart when it comes back. The
// runner wires these into the fault plan's hooks; a stack that does not
// implement the interface silently ignores crashes, which under the
// auditor shows up as stalled flows.
type CrashHandler interface {
	OnHostCrash(h *netsim.Host)
	OnHostRestart(h *netsim.Host)
}

// Stack bundles everything needed to put one protocol on a topology:
// its queue disciplines, its optional egress marker, and its
// constructor.
type Stack struct {
	Name        string
	SwitchQueue netsim.QueueFactory
	HostQueue   netsim.QueueFactory
	Marker      func() netsim.DequeueMarker
	New         func(net *netsim.Network, base transport.Config) Instance
}

// StackOptions tune protocol-specific knobs.
type StackOptions struct {
	// HomaDegree is the overcommitment degree (default 2).
	HomaDegree int
	// AMRT overrides for the ablation study; zero values keep the
	// paper's defaults.
	AMRT core.Config
}

// ProtocolNames lists the four protocols in the order the paper's
// figures present them.
var ProtocolNames = []string{"pHost", "Homa", "NDP", "AMRT"}

// NewStack builds the named protocol stack.
func NewStack(name string, opts StackOptions) Stack {
	switch name {
	case "pHost":
		cfg := phost.DefaultConfig()
		return Stack{
			Name:        name,
			SwitchQueue: cfg.SwitchQueue,
			HostQueue:   cfg.HostQueue,
			New: func(net *netsim.Network, base transport.Config) Instance {
				c := phost.DefaultConfig()
				c.Config = base
				return phost.New(net, c)
			},
		}
	case "Homa":
		cfg := homa.DefaultConfig()
		if opts.HomaDegree > 0 {
			cfg.Degree = opts.HomaDegree
		}
		deg := cfg.Degree
		return Stack{
			Name:        name,
			SwitchQueue: cfg.SwitchQueue,
			HostQueue:   cfg.HostQueue,
			New: func(net *netsim.Network, base transport.Config) Instance {
				c := homa.DefaultConfig()
				c.Degree = deg
				c.Config = base
				return homa.New(net, c)
			},
		}
	case "NDP":
		cfg := ndp.DefaultConfig()
		return Stack{
			Name:        name,
			SwitchQueue: cfg.SwitchQueue,
			HostQueue:   cfg.HostQueue,
			New: func(net *netsim.Network, base transport.Config) Instance {
				c := ndp.DefaultConfig()
				c.Config = base
				return ndp.New(net, c)
			},
		}
	case "DCTCP":
		// Not part of the paper's four-way comparison; used by the
		// related-work contrast (reactive sender-based control).
		cfg := dctcp.DefaultConfig()
		return Stack{
			Name:        name,
			SwitchQueue: cfg.SwitchQueue,
			HostQueue:   cfg.HostQueue,
			New: func(net *netsim.Network, base transport.Config) Instance {
				c := dctcp.DefaultConfig()
				c.Config = base
				return dctcp.New(net, c)
			},
		}
	case "AMRT":
		cfg := opts.AMRT.WithDefaults()
		return Stack{
			Name:        name,
			SwitchQueue: cfg.SwitchQueue,
			HostQueue:   cfg.HostQueue,
			Marker:      cfg.NewMarker,
			New: func(net *netsim.Network, base transport.Config) Instance {
				c := cfg
				c.Config = base
				return core.New(net, c)
			},
		}
	}
	panic(fmt.Sprintf("experiment: unknown protocol %q", name))
}

// AllStacks returns the four stacks in presentation order.
func AllStacks(opts StackOptions) []Stack {
	out := make([]Stack, 0, len(ProtocolNames))
	for _, n := range ProtocolNames {
		out = append(out, NewStack(n, opts))
	}
	return out
}
