package experiment

import (
	"fmt"

	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/workload"
)

// M2MCell is one (variant, responsive ratio) point of Fig. 14,
// averaged over repeats.
type M2MCell struct {
	Variant  string // "AMRT" or "Homa-d<degree>"
	Ratio    float64
	Util     float64
	MaxQueue float64 // packets, averaged over repeats
}

// Fig14Topo is the §8.2 topology: 3 leaves; the first two hold the
// senders, the third the receivers.
func Fig14Topo() topo.LeafSpineConfig {
	c := topo.DefaultLeafSpine()
	c.Leaves, c.Spines, c.HostsPerLeaf = 3, 2, 20
	return c
}

// Fig14Cells reproduces Fig. 14: 40 senders each open 2 connections to
// 2 receivers under the third leaf; a fraction of senders never respond
// to grants. It reports mean bottleneck utilization and mean maximum
// queue depth for AMRT and for Homa at each configured overcommitment
// degree, averaged over cfg.Repeats seeds.
func Fig14Cells(cfg SimConfig, ratios []float64) []M2MCell {
	tcfg := Fig14Topo()
	nSenders := 2 * tcfg.HostsPerLeaf
	senders := make([]int, nSenders)
	for i := range senders {
		senders[i] = i
	}
	receivers := []int{2 * tcfg.HostsPerLeaf, 2*tcfg.HostsPerLeaf + 1}

	variants := []struct {
		name string
		st   Stack
	}{{"AMRT", MustStack("AMRT", StackOptions{})}}
	for _, d := range cfg.HomaDegrees {
		variants = append(variants, struct {
			name string
			st   Stack
		}{fmt.Sprintf("Homa-d%d", d), MustStack("Homa", StackOptions{HomaDegree: d})})
	}

	type spec struct {
		vi    int
		ratio float64
		rep   int
	}
	var specs []spec
	for vi := range variants {
		for _, ratio := range ratios {
			for rep := 0; rep < max(1, cfg.Repeats); rep++ {
				specs = append(specs, spec{vi: vi, ratio: ratio, rep: rep})
			}
		}
	}

	results := Parallel(len(specs), func(i int) RunResult {
		s := specs[i]
		seed := sim.SubSeed(cfg.Seed, fmt.Sprintf("fig14-%s-%.2f-%d", variants[s.vi].name, s.ratio, s.rep))
		flows := workload.ManyToMany(senders, receivers, 2, workload.Fixed(1_000_000), 0, seed)
		// Stagger starts across 10 ms: the experiment measures sustained
		// many-to-many scheduling with silent senders, not a synchronized
		// 40-into-1 incast of unscheduled windows.
		startRNG := sim.NewRNG(sim.SubSeed(seed, "starts"))
		for fi := range flows {
			flows[fi].Start = sim.Time(startRNG.Int63n(int64(10 * sim.Millisecond)))
		}
		// Mark a random (1-ratio) fraction of senders unresponsive.
		rng := sim.NewRNG(sim.SubSeed(seed, "unresponsive"))
		perm := rng.Perm(nSenders)
		silent := map[int]bool{}
		for _, idx := range perm[:int(float64(nSenders)*(1-s.ratio)+0.5)] {
			silent[idx] = true
		}
		for fi := range flows {
			if silent[flows[fi].Src] {
				flows[fi].Unresponsive = true
			}
		}
		// Responsive flows complete within tens of ms; a tight horizon
		// keeps the never-completing unresponsive flows from idling the
		// engine for the full default horizon.
		horizon := cfg.Horizon
		if horizon > 2*sim.Second {
			horizon = 2 * sim.Second
		}
		return LeafSpineRun{Topo: tcfg, Stack: variants[s.vi].st, Flows: flows, Horizon: horizon, Shards: cfg.Shards}.Run()
	})

	// Average repeats.
	var cells []M2MCell
	for vi, v := range variants {
		for _, ratio := range ratios {
			var util, maxq float64
			n := 0
			for i, s := range specs {
				if s.vi == vi && s.ratio == ratio {
					util += results[i].Utilization
					maxq += float64(results[i].MaxQueue)
					n++
				}
			}
			cells = append(cells, M2MCell{
				Variant: v.name, Ratio: ratio,
				Util: util / float64(n), MaxQueue: maxq / float64(n),
			})
		}
	}
	return cells
}

// Fig14Tables renders the two sub-figures: utilization and maximum
// queue length versus responsive ratio.
func Fig14Tables(cfg SimConfig, ratios []float64, cells []M2MCell) []*Table {
	variantNames := []string{"AMRT"}
	for _, d := range cfg.HomaDegrees {
		variantNames = append(variantNames, fmt.Sprintf("Homa-d%d", d))
	}
	util := &Table{Title: "Fig 14(a) — bottleneck utilization vs responsive ratio", Cols: append([]string{"ratio"}, variantNames...)}
	queue := &Table{Title: "Fig 14(b) — max queue length (pkts) vs responsive ratio", Cols: append([]string{"ratio"}, variantNames...)}
	lookup := func(v string, r float64) M2MCell {
		for _, c := range cells {
			if c.Variant == v && c.Ratio == r {
				return c
			}
		}
		panic("experiment: missing Fig14 cell")
	}
	for _, r := range ratios {
		urow := []string{fmt.Sprintf("%.1f", r)}
		qrow := []string{fmt.Sprintf("%.1f", r)}
		for _, v := range variantNames {
			c := lookup(v, r)
			urow = append(urow, fmt.Sprintf("%.3f", c.Util))
			qrow = append(qrow, fmt.Sprintf("%.1f", c.MaxQueue))
		}
		util.AddRow(urow...)
		queue.AddRow(qrow...)
	}
	return []*Table{util, queue}
}
