package experiment

import (
	"bytes"
	"strings"
	"testing"

	"amrt/internal/audit"
	"amrt/internal/faults"
	"amrt/internal/metrics"
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/topo"
	"amrt/internal/transport"
	"amrt/internal/workload"
)

// chaosProtocols is the full matrix: the four receiver-driven stacks
// plus the DCTCP baseline. Fault tolerance is a correctness property
// for all of them.
func chaosProtocols() []string {
	return StackNames()
}

// runFanChaos drives one protocol through a 4-pair fan scenario under
// the given fault spec with the invariant auditor attached (panic on
// violation) and fails the test if any flow stalls — crash-killed flows
// count as terminated, not stalled. It returns the scenario (for
// queue-counter scans), the applied plan (for event-counter checks),
// and the flows (for outcome assertions).
func runFanChaos(t *testing.T, proto, spec string) (*topo.Scenario, *faults.Plan, []*transport.Flow) {
	t.Helper()
	plan := faults.MustParse(spec)
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	st := MustStack(proto, StackOptions{})
	sc := topo.DefaultScenario()
	sc.SwitchQueue = plan.WrapQueues(st.SwitchQueue)
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewFanN(sc, 4)
	inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond})
	var flows []*transport.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, inst.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 1_000_000, sim.Time(i)*20*sim.Microsecond))
	}
	const horizon = 20 * sim.Second
	if ch, ok := inst.(CrashHandler); ok {
		plan.CrashHook = func(_ *netsim.Shard, h *netsim.Host) { ch.OnHostCrash(h) }
		plan.RestartHook = func(_ *netsim.Shard, h *netsim.Host) { ch.OnHostRestart(h) }
	}
	if err := plan.Apply(s.Net, horizon); err != nil {
		t.Fatal(err)
	}
	aud := audit.New(s.Net, inst)
	aud.Start(100 * sim.Microsecond)
	s.Net.Run(horizon)
	aud.Check() // end-of-run sweep; panics with a forensic dump on violation
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%s: %v stalled under faults %q", proto, f, spec)
		}
	}
	return s, plan, flows
}

// TestChaosLinkFlapMidTransfer pulls the fan bottleneck cable (both
// directions) for 2.5ms in the middle of every transfer. Data and
// control in flight during the outage are lost or parked; every
// protocol must detect the stall and finish after the link returns.
func TestChaosLinkFlapMidTransfer(t *testing.T) {
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			_, plan, _ := runFanChaos(t, proto, "link=swA->swB,down=500us,up=3ms")
			if plan.LinkDownEvents != 1 || plan.LinkUpEvents != 1 {
				t.Errorf("flap events = %d down / %d up, want 1/1", plan.LinkDownEvents, plan.LinkUpEvents)
			}
		})
	}
}

// TestAllProtocolsSurviveControlLoss lifts the historical
// control-packet sparing: 1% of grants, tokens, pulls, ACKs, NACKs and
// RTSes die at every switch hop. Receiver-driven transports schedule
// every data packet with a control packet, so this is the fault class
// they are most sensitive to — a lost RTS or a lost pull must never
// strand a flow.
func TestAllProtocolsSurviveControlLoss(t *testing.T) {
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			s, _, _ := runFanChaos(t, proto, "ctrl-loss=0.01")
			var ctrl int64
			for _, sw := range s.Switches {
				for _, pt := range sw.Ports() {
					if lq, ok := pt.Queue().(*netsim.LossyQueue); ok {
						ctrl += lq.CtrlInjected
					}
				}
			}
			if ctrl == 0 {
				t.Error("control-packet loss did not fire")
			}
		})
	}
}

// TestChaosBurstyLoss replaces independent loss with Gilbert–Elliott
// bursts: runs of consecutive data drops (mean 5 packets, ~1.5% of
// arrivals in the bad state) rather than scattered holes. Burst
// recovery stresses retransmission paths that tolerate isolated loss.
func TestChaosBurstyLoss(t *testing.T) {
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			s, _, _ := runFanChaos(t, proto, "burst-loss=tobad:0.003,togood:0.2,bad:0.5")
			var injected, bursts int64
			for _, sw := range s.Switches {
				for _, pt := range sw.Ports() {
					if ge, ok := pt.Queue().(*netsim.GilbertElliottQueue); ok {
						injected += ge.Injected
						bursts += ge.Bursts
					}
				}
			}
			if injected == 0 || bursts == 0 {
				t.Errorf("burst loss did not fire: %d drops in %d bursts", injected, bursts)
			}
		})
	}
}

// TestChaosDegradedLink renegotiates the bottleneck down to 10% of
// nominal for 2.5ms mid-transfer. Nothing is lost — the link is just
// suddenly 10× slower — so this catches protocols that confuse
// slowness with loss and protocols whose timers spiral under a
// persistent-but-alive path.
func TestChaosDegradedLink(t *testing.T) {
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			_, plan, _ := runFanChaos(t, proto, "degrade=swA->swB,at=500us,until=3ms,factor=0.1")
			if plan.DegradeEvents != 1 {
				t.Errorf("DegradeEvents = %d, want 1", plan.DegradeEvents)
			}
		})
	}
}

// TestChaosECMPFailoverLeafSpine exercises the full runner wiring: a
// leaf uplink flaps on a 2×2 fabric under Poisson traffic, forcing
// leaf0's ECMP to re-route flows pinned to spine0 onto spine1 and the
// protocols to repair whatever was in flight on the dead path.
func TestChaosECMPFailoverLeafSpine(t *testing.T) {
	cfg := topo.DefaultLeafSpine()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			flows := workload.GeneratePoisson(workload.PoissonConfig{
				Hosts:    cfg.Hosts(),
				Load:     0.5,
				HostRate: cfg.HostRate,
				Dist:     workload.WebSearch(),
				Count:    60,
				Seed:     3,
			})
			plan := faults.MustParse("link=leaf0->spine0,down=200us,up=5ms")
			plan.Seed = 3
			res := LeafSpineRun{
				Topo:    cfg,
				Stack:   MustStack(proto, StackOptions{}),
				Flows:   flows,
				Horizon: 20 * sim.Second,
				Faults:  plan,
			}.Run()
			if res.Completed != res.Total {
				t.Fatalf("%s: %d/%d flows completed across the uplink flap", proto, res.Completed, res.Total)
			}
			if plan.LinkDownEvents != 1 || plan.LinkUpEvents != 1 {
				t.Errorf("flap events = %d down / %d up, want 1/1", plan.LinkDownEvents, plan.LinkUpEvents)
			}
		})
	}
}

// TestChaosMetricsDeterminism extends the telemetry determinism
// contract to fault injection: the same seed and the same fault plan —
// a periodic uplink flap plus independent data and control loss — must
// reproduce byte-identical metrics dumps, fault counters included.
func TestChaosMetricsDeterminism(t *testing.T) {
	const spec = "link=leaf0->spine1,down=300us,up=2ms,period=5ms;ctrl-loss=0.005;data-loss=0.005"
	run := func() (json, csv string) {
		cfg := topo.DefaultLeafSpine()
		cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
		flows := workload.GeneratePoisson(workload.PoissonConfig{
			Hosts:    cfg.Hosts(),
			Load:     0.6,
			HostRate: cfg.HostRate,
			Dist:     workload.WebSearch(),
			Count:    120,
			Seed:     7,
		})
		plan := faults.MustParse(spec)
		plan.Seed = 7
		reg := metrics.NewRegistry()
		LeafSpineRun{
			Topo:    cfg,
			Stack:   MustStack("AMRT", StackOptions{}),
			Flows:   flows,
			Horizon: 5 * sim.Second,
			Metrics: reg,
			Faults:  plan,
		}.Run()
		var j, c bytes.Buffer
		if err := reg.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 {
		t.Fatal("metrics JSON differs between identical fault runs")
	}
	if c1 != c2 {
		t.Fatal("metrics CSV differs between identical fault runs")
	}
	for _, want := range []string{
		"faults.link_down_events",
		"faults.link_up_events",
		"faults.degrade_events",
		"net.no_route_drops",
		"admin_up",
	} {
		if !strings.Contains(j1, want) {
			t.Errorf("fault run dump missing %q", want)
		}
	}
}

// TestChaosHostCrashSemantics is the node-fault contract, per protocol:
// crashing a *sender* mid-transfer kills its flow (pacer and retransmit
// state are unrecoverable) while every other flow completes; crashing a
// *receiver* loses the grant/bitmap state, but the flow must still
// complete after the restart — the sender re-announces and the rebuilt
// receiver re-grants the holes. DCTCP is the sender-driven contrast:
// it has no re-announce machinery, so either endpoint crash is fatal.
func TestChaosHostCrashSemantics(t *testing.T) {
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto+"/sender", func(t *testing.T) {
			_, plan, flows := runFanChaos(t, proto, "crash=S1,at=500us,up=2ms")
			if plan.CrashEvents != 1 {
				t.Errorf("CrashEvents = %d, want 1", plan.CrashEvents)
			}
			for i, f := range flows {
				want := transport.OutcomeCompleted
				if i == 1 {
					want = transport.OutcomeKilledByCrash
				}
				if f.Outcome != want {
					t.Errorf("flow %d outcome = %v, want %v", f.ID, f.Outcome, want)
				}
			}
		})
		t.Run(proto+"/receiver", func(t *testing.T) {
			_, plan, flows := runFanChaos(t, proto, "crash=R2,at=500us,up=2ms")
			if plan.CrashEvents != 1 {
				t.Errorf("CrashEvents = %d, want 1", plan.CrashEvents)
			}
			for i, f := range flows {
				want := transport.OutcomeCompleted
				if i == 2 && proto == "DCTCP" {
					want = transport.OutcomeKilledByCrash
				}
				if f.Outcome != want {
					t.Errorf("flow %d outcome = %v, want %v", f.ID, f.Outcome, want)
				}
			}
		})
	}
}

// TestChaosNodeFaultMatrix is the full node-fault chaos matrix: every
// protocol runs Poisson traffic on a 2×2 leaf-spine fabric while a host
// crashes and restarts, a leaf switch reboots (flushing every queue on
// it), and the fabric's ECMP salt rotates mid-run — all with the
// invariant auditor on. Every flow must end either completed or
// killed-by-crash — no stalls, no incompletes — with zero violations.
func TestChaosNodeFaultMatrix(t *testing.T) {
	cfg := topo.DefaultLeafSpine()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			flows := workload.GeneratePoisson(workload.PoissonConfig{
				Hosts:    cfg.Hosts(),
				Load:     0.5,
				HostRate: cfg.HostRate,
				Dist:     workload.WebSearch(),
				Count:    60,
				Seed:     3,
			})
			plan := faults.MustParse("crash=h0.1,at=2ms,up=6ms;reboot=leaf1,at=4ms,up=7ms;rehash=9ms")
			plan.Seed = 3
			res := LeafSpineRun{
				Topo:    cfg,
				Stack:   MustStack(proto, StackOptions{}),
				Flows:   flows,
				Horizon: 20 * sim.Second,
				Faults:  plan,
				Audit:   true,
			}.Run()
			if plan.CrashEvents != 1 || plan.RebootEvents != 1 || plan.RehashEvents != 1 {
				t.Errorf("fault events = %d crash / %d reboot / %d rehash, want 1/1/1",
					plan.CrashEvents, plan.RebootEvents, plan.RehashEvents)
			}
			if res.AuditChecks == 0 {
				t.Error("auditor never ran")
			}
			if res.AuditViolations != 0 {
				t.Errorf("auditor recorded %d violations", res.AuditViolations)
			}
			if res.Completed+res.Killed != res.Total {
				t.Errorf("%s: %d completed + %d killed != %d total (%d stalled)",
					proto, res.Completed, res.Killed, res.Total, res.Stalled)
			}
			for _, o := range res.Outcomes {
				if o.Outcome != transport.OutcomeCompleted && o.Outcome != transport.OutcomeKilledByCrash {
					t.Errorf("flow %d ended %v: %s", o.ID, o.Outcome, o.Diagnosis)
				}
			}
		})
	}
}

// TestChaosNodeFaultDeterminism pins the reproducibility contract for
// the node-fault machinery: the same seed and the same
// crash+reboot+rehash plan (with control loss on top, and the auditor
// on) must produce byte-identical metrics dumps, node-fault and outcome
// counters included.
func TestChaosNodeFaultDeterminism(t *testing.T) {
	const spec = "crash=h0.0,at=1ms,up=4ms;reboot=leaf1,at=2ms,up=5ms;rehash=3ms;ctrl-loss=0.005"
	run := func() (json, csv string) {
		cfg := topo.DefaultLeafSpine()
		cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
		flows := workload.GeneratePoisson(workload.PoissonConfig{
			Hosts:    cfg.Hosts(),
			Load:     0.6,
			HostRate: cfg.HostRate,
			Dist:     workload.WebSearch(),
			Count:    120,
			Seed:     7,
		})
		plan := faults.MustParse(spec)
		plan.Seed = 7
		reg := metrics.NewRegistry()
		LeafSpineRun{
			Topo:    cfg,
			Stack:   MustStack("AMRT", StackOptions{}),
			Flows:   flows,
			Horizon: 5 * sim.Second,
			Metrics: reg,
			Faults:  plan,
			Audit:   true,
		}.Run()
		var j, c bytes.Buffer
		if err := reg.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 {
		t.Fatal("metrics JSON differs between identical node-fault runs")
	}
	if c1 != c2 {
		t.Fatal("metrics CSV differs between identical node-fault runs")
	}
	for _, want := range []string{
		"faults.crash_events",
		"faults.reboot_events",
		"faults.rehash_events",
		"experiment.flows_stalled",
		"experiment.flows_killed_by_crash",
	} {
		if !strings.Contains(j1, want) {
			t.Errorf("node-fault run dump missing %q", want)
		}
	}
}

// chaosFaultClasses enumerates one representative spec per fault class
// on the 2×2 leaf-spine fabric, with a plan-counter check where the
// class maintains one (the loss processes count on the wrapped queues
// instead, which TestAllProtocolsSurviveControlLoss and
// TestChaosBurstyLoss already scan).
func chaosFaultClasses() []struct {
	name  string
	spec  string
	check func(t *testing.T, p *faults.Plan)
} {
	return []struct {
		name  string
		spec  string
		check func(t *testing.T, p *faults.Plan)
	}{
		{"flap", "link=leaf0->spine0,down=2ms,up=5ms", func(t *testing.T, p *faults.Plan) {
			if p.LinkDownEvents != 1 || p.LinkUpEvents != 1 {
				t.Errorf("flap events = %d down / %d up, want 1/1", p.LinkDownEvents, p.LinkUpEvents)
			}
		}},
		{"degrade", "degrade=leaf1->spine1,at=1ms,until=6ms,factor=0.2", func(t *testing.T, p *faults.Plan) {
			if p.DegradeEvents != 1 {
				t.Errorf("DegradeEvents = %d, want 1", p.DegradeEvents)
			}
		}},
		{"ctrl-loss", "ctrl-loss=0.01", nil},
		{"burst", "burst-loss=tobad:0.003,togood:0.2,bad:0.5", nil},
		{"crash", "crash=h0.1,at=2ms,up=6ms", func(t *testing.T, p *faults.Plan) {
			if p.CrashEvents != 1 {
				t.Errorf("CrashEvents = %d, want 1", p.CrashEvents)
			}
		}},
		{"reboot", "reboot=leaf1,at=4ms,up=7ms", func(t *testing.T, p *faults.Plan) {
			if p.RebootEvents != 1 {
				t.Errorf("RebootEvents = %d, want 1", p.RebootEvents)
			}
		}},
		{"rehash", "rehash=9ms", func(t *testing.T, p *faults.Plan) {
			if p.RehashEvents != 1 {
				t.Errorf("RehashEvents = %d, want 1", p.RehashEvents)
			}
		}},
	}
}

// runShardedChaosCell runs one (protocol, fault-class, shard-count)
// cell of the sharded chaos matrix — Poisson traffic on a 2×2
// leaf-spine fabric with the invariant auditors attached (per-shard
// plus the whole-network BarrierHook auditor on partitioned runs) —
// and returns the applied plan, the run result, and the metrics dump
// for cross-shard-count comparison.
func runShardedChaosCell(t *testing.T, proto, spec string, nshards int) (*faults.Plan, RunResult, string) {
	t.Helper()
	cfg := topo.DefaultLeafSpine()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
	flows := workload.GeneratePoisson(workload.PoissonConfig{
		Hosts:    cfg.Hosts(),
		Load:     0.5,
		HostRate: cfg.HostRate,
		Dist:     workload.WebSearch(),
		Count:    60,
		Seed:     3,
	})
	plan := faults.MustParse(spec)
	plan.Seed = 3
	reg := metrics.NewRegistry()
	res, err := LeafSpineRun{
		Topo:    cfg,
		Stack:   MustStack(proto, StackOptions{}),
		Flows:   flows,
		Horizon: 50 * sim.Millisecond,
		Metrics: reg,
		Faults:  plan,
		Shards:  nshards,
		Audit:   true,
	}.RunE()
	if err != nil {
		t.Fatalf("%s/%s shards=%d: %v", proto, spec, nshards, err)
	}
	if res.AuditChecks == 0 {
		t.Errorf("%s/%s shards=%d: auditor never ran", proto, spec, nshards)
	}
	if res.AuditViolations != 0 {
		t.Errorf("%s/%s shards=%d: auditor recorded %d violations", proto, spec, nshards, res.AuditViolations)
	}
	// res.Metrics is the merged cross-shard view; the raw registry
	// holds per-shard partitions whose layout depends on the shard
	// count, so only the merged dump can be compared byte-for-byte.
	var j bytes.Buffer
	if err := res.Metrics.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return plan, res, j.String()
}

// TestChaosShardedFaultMatrix is the sharded chaos matrix the v9 fault
// layer must sustain: every fault class × every protocol stack ×
// shards ∈ {1, 2, 4}, auditors attached and silent, with the metrics
// dump — fault counters, outcome counters, queue telemetry, the lot —
// byte-identical across shard counts within each (class, protocol)
// cell. The single-shard run is the reference; any divergence means a
// fault event was homed to the wrong shard or delivered outside the
// late-band plan order.
func TestChaosShardedFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded chaos matrix is not short")
	}
	for _, class := range chaosFaultClasses() {
		class := class
		t.Run(class.name, func(t *testing.T) {
			for _, proto := range chaosProtocols() {
				proto := proto
				t.Run(proto, func(t *testing.T) {
					refPlan, refRes, refDump := runShardedChaosCell(t, proto, class.spec, 1)
					if class.check != nil {
						class.check(t, refPlan)
					}
					for _, n := range []int{2, 4} {
						plan, res, dump := runShardedChaosCell(t, proto, class.spec, n)
						if class.check != nil {
							class.check(t, plan)
						}
						if dump != refDump {
							t.Errorf("%d-shard metrics dump differs from single-engine reference", n)
						}
						if res.Completed != refRes.Completed || res.Killed != refRes.Killed ||
							res.Stalled != refRes.Stalled || res.Events != refRes.Events {
							t.Errorf("%d-shard scalars (%d completed, %d killed, %d stalled, %d events) differ from reference (%d, %d, %d, %d)",
								n, res.Completed, res.Killed, res.Stalled, res.Events,
								refRes.Completed, refRes.Killed, refRes.Stalled, refRes.Events)
						}
					}
				})
			}
		})
	}
}

// TestChaosHorizonTruncationNoStalls is the watchdog's false-positive
// regression: a faultless run cut off by the horizon must report its
// unfinished flows as incomplete-at-horizon — never stalled.
// Truncation is the experimenter's choice, not a liveness bug.
func TestChaosHorizonTruncationNoStalls(t *testing.T) {
	cfg := topo.DefaultLeafSpine()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 4
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			flows := workload.GeneratePoisson(workload.PoissonConfig{
				Hosts:    cfg.Hosts(),
				Load:     0.5,
				HostRate: cfg.HostRate,
				Dist:     workload.WebSearch(),
				Count:    200,
				Seed:     5,
			})
			res := LeafSpineRun{
				Topo:    cfg,
				Stack:   MustStack(proto, StackOptions{}),
				Flows:   flows,
				Horizon: 20 * sim.Millisecond,
				Audit:   true,
			}.Run()
			if res.Stalled != 0 {
				for _, o := range res.Outcomes {
					if o.Outcome == transport.OutcomeStalled {
						t.Errorf("flow %d reported stalled on a faultless run: %s", o.ID, o.Diagnosis)
					}
				}
			}
			if res.Killed != 0 {
				t.Errorf("%d flows killed with no crash in the plan", res.Killed)
			}
			if res.Completed == res.Total {
				t.Fatal("horizon did not truncate the run; shorten it to keep the regression meaningful")
			}
			incomplete := 0
			for _, o := range res.Outcomes {
				if o.Outcome == transport.OutcomeRunning {
					incomplete++
					if !strings.Contains(o.Diagnosis, "incomplete at horizon") {
						t.Errorf("flow %d diagnosis %q lacks the horizon explanation", o.ID, o.Diagnosis)
					}
				}
			}
			if incomplete != res.Total-res.Completed {
				t.Errorf("%d flows diagnosed incomplete, want %d", incomplete, res.Total-res.Completed)
			}
		})
	}
}
