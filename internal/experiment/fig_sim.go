package experiment

import (
	"fmt"

	"amrt/internal/sim"
	"amrt/internal/workload"
)

// FCTCell is one (workload, load, protocol) point of Fig. 12.
type FCTCell struct {
	Workload string
	Load     float64
	Proto    string
	Res      RunResult
}

// Fig12Cells reproduces Fig. 12: average and 99th-percentile FCT under
// the five realistic workloads with increasing load, for all four
// protocols. All protocols see byte-identical flow sequences.
func Fig12Cells(cfg SimConfig) []FCTCell {
	type spec struct {
		w    *workload.Empirical
		load float64
		st   Stack
	}
	var specs []spec
	for _, wname := range cfg.Workloads {
		w := workload.ByName(wname)
		if w == nil {
			panic(fmt.Sprintf("experiment: unknown workload %q", wname))
		}
		for _, load := range cfg.Loads {
			for _, pname := range cfg.Protocols {
				specs = append(specs, spec{w: w, load: load, st: MustStack(pname, StackOptions{})})
			}
		}
	}
	results := Parallel(len(specs), func(i int) RunResult {
		s := specs[i]
		flows := workload.GeneratePoisson(workload.PoissonConfig{
			Hosts:    cfg.Topo.Hosts(),
			Load:     s.load,
			HostRate: cfg.Topo.HostRate,
			Dist:     s.w,
			Count:    cfg.flowCount(s.w.Mean()),
			Seed:     sim.SubSeed(cfg.Seed, fmt.Sprintf("fig12-%s-%.2f", s.w.Name(), s.load)),
		})
		res := LeafSpineRun{
			Topo: cfg.Topo, Stack: s.st, Flows: flows, Horizon: cfg.Horizon,
			Faults: cfg.newFaultPlan(), Shards: cfg.Shards,
			Metrics: cfg.newRunMetrics(), MetricsInterval: cfg.metricsInterval(),
		}.Run()
		dumpRunMetrics(cfg.MetricsDir,
			fmt.Sprintf("fig12_%s_%.2f_%s", s.w.Name(), s.load, s.st.Name), res.Metrics)
		return res
	})
	cells := make([]FCTCell, len(specs))
	for i, s := range specs {
		cells[i] = FCTCell{Workload: s.w.Name(), Load: s.load, Proto: s.st.Name, Res: results[i]}
	}
	return cells
}

// Fig12Tables renders one table per workload: rows are loads, columns
// are per-protocol AFCT and p99 in milliseconds.
func Fig12Tables(cfg SimConfig, cells []FCTCell) []*Table {
	var tables []*Table
	for _, wname := range cfg.Workloads {
		t := &Table{Title: fmt.Sprintf("Fig 12 — FCT, %s (%s)", wname, workload.Abbrev(wname))}
		t.Cols = []string{"load"}
		for _, p := range cfg.Protocols {
			t.Cols = append(t.Cols, p+" AFCT(ms)", p+" p99(ms)")
		}
		for _, load := range cfg.Loads {
			row := []string{fmt.Sprintf("%.1f", load)}
			for _, p := range cfg.Protocols {
				c := findCell(cells, wname, load, p)
				row = append(row,
					fmt.Sprintf("%.3f", c.Res.AFCT.Milliseconds()),
					fmt.Sprintf("%.3f", c.Res.P99.Milliseconds()))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func findCell(cells []FCTCell, w string, load float64, p string) FCTCell {
	for _, c := range cells {
		if c.Workload == w && c.Load == load && c.Proto == p {
			return c
		}
	}
	panic(fmt.Sprintf("experiment: missing cell %s/%.2f/%s", w, load, p))
}

// UtilCell is one (workload, flow count, protocol) point of Fig. 13.
type UtilCell struct {
	Workload string
	Flows    int
	Proto    string
	Res      RunResult
}

// Fig13Load is the offered load at which the Fig. 13 flow-count sweep
// injects its flows.
const Fig13Load = 0.6

// Fig13Cells reproduces Fig. 13: bottleneck-link utilization with an
// increasing number of flows under the five workloads.
func Fig13Cells(cfg SimConfig, flowCounts []int) []UtilCell {
	type spec struct {
		w  *workload.Empirical
		n  int
		st Stack
	}
	var specs []spec
	for _, wname := range cfg.Workloads {
		w := workload.ByName(wname)
		if w == nil {
			panic(fmt.Sprintf("experiment: unknown workload %q", wname))
		}
		for _, n := range flowCounts {
			for _, pname := range cfg.Protocols {
				specs = append(specs, spec{w: w, n: n, st: MustStack(pname, StackOptions{})})
			}
		}
	}
	results := Parallel(len(specs), func(i int) RunResult {
		s := specs[i]
		flows := workload.GeneratePoisson(workload.PoissonConfig{
			Hosts:    cfg.Topo.Hosts(),
			Load:     Fig13Load,
			HostRate: cfg.Topo.HostRate,
			Dist:     s.w,
			Count:    s.n,
			Seed:     sim.SubSeed(cfg.Seed, fmt.Sprintf("fig13-%s-%d", s.w.Name(), s.n)),
		})
		res := LeafSpineRun{
			Topo: cfg.Topo, Stack: s.st, Flows: flows, Horizon: cfg.Horizon,
			Faults: cfg.newFaultPlan(), Shards: cfg.Shards,
			Metrics: cfg.newRunMetrics(), MetricsInterval: cfg.metricsInterval(),
		}.Run()
		dumpRunMetrics(cfg.MetricsDir,
			fmt.Sprintf("fig13_%s_%d_%s", s.w.Name(), s.n, s.st.Name), res.Metrics)
		return res
	})
	cells := make([]UtilCell, len(specs))
	for i, s := range specs {
		cells[i] = UtilCell{Workload: s.w.Name(), Flows: s.n, Proto: s.st.Name, Res: results[i]}
	}
	return cells
}

// Fig13Tables renders one table per workload: rows are flow counts,
// columns per-protocol bottleneck utilization.
func Fig13Tables(cfg SimConfig, flowCounts []int, cells []UtilCell) []*Table {
	var tables []*Table
	for _, wname := range cfg.Workloads {
		t := &Table{Title: fmt.Sprintf("Fig 13 — bottleneck utilization, %s (%s)", wname, workload.Abbrev(wname))}
		t.Cols = []string{"flows"}
		for _, p := range cfg.Protocols {
			t.Cols = append(t.Cols, p+" util")
		}
		for _, n := range flowCounts {
			row := []string{fmt.Sprintf("%d", n)}
			for _, p := range cfg.Protocols {
				for _, c := range cells {
					if c.Workload == wname && c.Flows == n && c.Proto == p {
						row = append(row, fmt.Sprintf("%.3f", c.Res.Utilization))
					}
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
