package experiment

import (
	"fmt"
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

// lossyStack wraps a protocol's switch queues with seeded random loss.
func lossyStack(proto string, prob float64) Stack {
	st := MustStack(proto, StackOptions{})
	inner := st.SwitchQueue
	seed := int64(0)
	st.SwitchQueue = func() netsim.Queue {
		seed++
		return netsim.NewLossy(inner(), prob, seed)
	}
	return st
}

// Every protocol must complete all flows under 2% random data loss on
// every switch hop — loss recovery is a correctness property, not a
// performance one.
func TestAllProtocolsSurviveRandomLoss(t *testing.T) {
	for _, proto := range StackNames() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			st := lossyStack(proto, 0.02)
			sc := topo.DefaultScenario()
			sc.SwitchQueue = st.SwitchQueue
			sc.HostQueue = st.HostQueue
			sc.Marker = st.Marker
			s := topo.NewFanN(sc, 4)
			col := stats.NewFCTCollector()
			inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond, Collector: col})
			var flows []*transport.Flow
			for i := 0; i < 4; i++ {
				flows = append(flows, inst.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 1_000_000, sim.Time(i)*20*sim.Microsecond))
			}
			s.Net.Run(20 * sim.Second)
			for _, f := range flows {
				if !f.Done {
					t.Fatalf("%v did not complete under 2%% loss", f)
				}
			}
			// Injected loss must actually have occurred.
			var injected int64
			for _, sw := range s.Switches {
				for _, pt := range sw.Ports() {
					if lq, ok := pt.Queue().(*netsim.LossyQueue); ok {
						injected += lq.Injected
					}
				}
			}
			if injected == 0 {
				t.Error("loss injection did not fire")
			}
		})
	}
}

// Heavier loss on a single long flow: throughput degrades but the flow
// still completes, and the FCT inflation stays within an order of
// magnitude for every protocol.
func TestSingleFlowUnderHeavyLoss(t *testing.T) {
	for _, proto := range ProtocolNames() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			st := lossyStack(proto, 0.05)
			sc := topo.DefaultScenario()
			sc.SwitchQueue = st.SwitchQueue
			sc.HostQueue = st.HostQueue
			sc.Marker = st.Marker
			s := topo.NewFanN(sc, 1)
			inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond})
			f := inst.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
			s.Net.Run(30 * sim.Second)
			if !f.Done {
				t.Fatal("flow did not complete under 5% loss")
			}
			// Clean-path time is ~1.8ms; allow a generous 60× for the
			// conservative recovery paths.
			if f.FCT() > 110*sim.Millisecond {
				t.Errorf("FCT %v under 5%% loss", f.FCT())
			}
		})
	}
}

// The loss wrapper composes with the trace/drop accounting: injected
// drops appear in the network drop counters.
func TestLossAccounting(t *testing.T) {
	st := lossyStack("AMRT", 0.1)
	sc := topo.DefaultScenario()
	sc.SwitchQueue = st.SwitchQueue
	sc.HostQueue = st.HostQueue
	sc.Marker = st.Marker
	s := topo.NewFanN(sc, 1)
	inst := st.New(s.Net, transport.Config{RTT: 100 * sim.Microsecond})
	f := inst.AddFlow(1, s.Senders[0], s.Receivers[0], 500_000, 0)
	s.Net.Run(20 * sim.Second)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	var injected int64
	for _, sw := range s.Switches {
		for _, pt := range sw.Ports() {
			if lq, ok := pt.Queue().(*netsim.LossyQueue); ok {
				injected += lq.Injected
			}
		}
	}
	if injected == 0 {
		t.Fatal("no injected loss at 10%")
	}
	if s.Net.Dropped() < injected {
		t.Errorf("network counted %d drops < %d injected", s.Net.Dropped(), injected)
	}
	if fmt.Sprintf("%T", s.Switches[0].Ports()[0].Queue()) != "*netsim.LossyQueue" {
		t.Error("wrapper not installed")
	}
}
