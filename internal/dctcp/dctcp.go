// Package dctcp implements the DCTCP baseline (Alizadeh et al., SIGCOMM
// 2010) — the canonical *reactive, sender-based* congestion control the
// paper's related-work section positions receiver-driven transports
// against. Switches mark the ECN CE bit when the instantaneous queue
// exceeds a threshold K; receivers echo the marks on per-packet ACKs;
// senders keep an EWMA α of the marked fraction and cut their window by
// α/2 once per window.
//
// It is not part of the paper's four-way comparison, but cmd/figures
// -fig related uses it to reproduce the reactive-vs-proactive contrast
// (queue buildup and loss before reaction) the introduction motivates.
package dctcp

import (
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes DCTCP.
type Config struct {
	transport.Config

	// MarkThreshold K in packets (default 32, ~DCTCP guidance for 10G).
	MarkThreshold int
	// QueueCap is the drop-tail capacity in packets (default 128).
	QueueCap int
	// G is the α EWMA gain (default 1/16).
	G float64
	// InitCwnd is the initial congestion window in packets (default 10).
	InitCwnd float64
	// RTORTTs is the retransmission timeout in RTTs (default 3).
	RTORTTs int
}

// DefaultConfig returns standard DCTCP parameters.
func DefaultConfig() Config {
	return Config{MarkThreshold: 32, QueueCap: 128, G: 1.0 / 16, InitCwnd: 10, RTORTTs: 3}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MarkThreshold == 0 {
		c.MarkThreshold = d.MarkThreshold
	}
	if c.QueueCap == 0 {
		c.QueueCap = d.QueueCap
	}
	if c.G == 0 {
		c.G = d.G
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = d.InitCwnd
	}
	if c.RTORTTs == 0 {
		c.RTORTTs = d.RTORTTs
	}
	return c
}

// SwitchQueue builds the ECN-marking switch buffer.
func (c Config) SwitchQueue() netsim.Queue {
	cc := c.withDefaults()
	return netsim.NewECN(cc.QueueCap, cc.MarkThreshold)
}

// HostQueue builds the host NIC queue.
func (c Config) HostQueue() netsim.Queue { return netsim.NewDropTail(1024) }

// Protocol is a DCTCP instance.
type Protocol struct {
	transport.Kernel
	cfg       Config
	senders   map[netsim.FlowID]*sender
	receivers map[netsim.FlowID]*rcvFlow
	installed map[netsim.NodeID]bool

	// AcksSent counts receiver ACK traffic; Retransmits counts
	// timeout-driven resends.
	AcksSent    int64
	Retransmits int64
}

type sender struct {
	f     *transport.Flow
	acked *transport.Bitmap
	// sent marks sequences transmitted at least once.
	sent *transport.Bitmap
	next int32 // next never-sent sequence

	cwnd     float64
	ssthresh float64
	alpha    float64
	inflight int

	// Per-window marking bookkeeping (window = one cwnd of ACKs).
	ackedInWin  int
	markedInWin int
	winSize     int

	lastProgress sim.Time
	rto          sim.Timer
	backoff      sim.Time
}

type rcvFlow struct {
	f    *transport.Flow
	rcvd *transport.Bitmap
}

// New creates a DCTCP instance on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	p := &Protocol{
		Kernel:    transport.NewKernel(net, cfg.Config),
		cfg:       cfg.withDefaults(),
		senders:   make(map[netsim.FlowID]*sender),
		receivers: make(map[netsim.FlowID]*rcvFlow),
		installed: make(map[netsim.NodeID]bool),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("dctcp.acks_sent", func() int64 { return p.AcksSent })
		m.CounterFunc("dctcp.retransmits", func() int64 { return p.Retransmits })
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "DCTCP" }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. The
// sharded runner instead splits registration across instances with
// AddPending/Release on the source shard and Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow that never sends data. DCTCP has
// no receiver-side scheduling for it to disturb; it exists so the
// experiment harness can drive every protocol uniformly.
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start (the home shard writes
// f.Start when it handles the release signal).
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	if f.Unresponsive {
		return
	}
	s := &sender{
		f:        f,
		acked:    transport.NewBitmap(f.NPkts),
		sent:     transport.NewBitmap(f.NPkts),
		cwnd:     p.cfg.InitCwnd,
		ssthresh: 1 << 20,
		winSize:  int(p.cfg.InitCwnd),
	}
	p.senders[f.ID] = s
	s.lastProgress = p.Now()
	p.pump(s)
	p.armRTO(s)
}

// pump transmits while the window allows: first any timed-out holes,
// then fresh sequences.
func (p *Protocol) pump(s *sender) {
	for s.inflight < int(s.cwnd+0.5) && s.next < s.f.NPkts {
		pkt := p.NewData(s.f, s.next, netsim.PrioData)
		pkt.CE = false // DCTCP convention: switches SET the bit on congestion
		s.sent.Set(s.next)
		s.next++
		s.inflight++
		s.f.Src.Send(pkt)
	}
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Ack {
		return
	}
	s := p.senders[pkt.Flow]
	// Sender-local done test: every sequence acked. Done itself is
	// receiver-shard state, off-limits on the sender's engine shard.
	if s == nil || s.acked.Full() {
		return
	}
	if !s.acked.Set(pkt.Seq) {
		return // duplicate ACK (retransmission raced the original)
	}
	if s.inflight > 0 {
		s.inflight--
	}
	s.lastProgress = p.Now()
	s.backoff = 0

	// DCTCP estimator: fraction of marked ACKs per window of ACKs.
	s.ackedInWin++
	if pkt.Echo {
		s.markedInWin++
	}
	if s.ackedInWin >= s.winSize {
		frac := float64(s.markedInWin) / float64(s.ackedInWin)
		s.alpha = (1-p.cfg.G)*s.alpha + p.cfg.G*frac
		if s.markedInWin > 0 {
			s.cwnd = s.cwnd * (1 - s.alpha/2)
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.ssthresh = s.cwnd
		}
		s.ackedInWin, s.markedInWin = 0, 0
		s.winSize = int(s.cwnd + 0.5)
		if s.winSize < 1 {
			s.winSize = 1
		}
	}

	// Growth: slow start below ssthresh, else 1/cwnd per ACK.
	if s.cwnd < s.ssthresh {
		s.cwnd++
	} else {
		s.cwnd += 1 / s.cwnd
	}
	p.pump(s)
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Data {
		return
	}
	r := p.receivers[pkt.Flow]
	if r == nil {
		f := p.Flows[pkt.Flow]
		if f == nil || f.Done {
			return // unknown, completed, or crash-killed flow
		}
		r = &rcvFlow{f: f, rcvd: transport.NewBitmap(f.NPkts)}
		p.receivers[pkt.Flow] = r
	}
	// Even when the flow is already complete, re-ACK: the data packet is
	// a retransmission whose original ACK was lost, and without a fresh
	// ACK the sender would RTO forever (it cannot see Done, which belongs
	// to this, the receiver's, shard).
	ack := p.NewCtrl(netsim.Ack, r.f, pkt.Seq, true)
	ack.Echo = pkt.CE
	r.f.Dst.Send(ack)
	p.AcksSent++
	if !r.rcvd.Set(pkt.Seq) {
		return
	}
	p.DeliverData(r.f, pkt)
	if r.rcvd.Full() {
		p.Complete(r.f)
	}
}

// OnHostCrash kills every live flow touching the crashed host: DCTCP
// is sender-driven with no announce/rebuild path, so losing either
// endpoint's window or bitmap state is fatal to the connection. On a
// sharded run the hook fires on every shard; the source shard cancels
// the RTO and drops sender state, the home shard drops receiver state
// and records the abort.
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	for _, f := range p.OrderedFlows() {
		if f.Src != h && f.Dst != h {
			continue
		}
		if p.OwnsSender(f) && !f.SenderDone {
			if s := p.senders[f.ID]; s != nil {
				s.rto.Cancel()
				delete(p.senders, f.ID)
			}
			f.SenderDone = true
		}
		if p.OwnsReceiver(f) && !f.Done {
			delete(p.receivers, f.ID)
			p.Abort(f)
		}
	}
}

// OnHostRestart is a no-op for DCTCP: crashed connections are not
// re-established.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

func (p *Protocol) armRTO(s *sender) {
	interval := sim.Time(p.cfg.RTORTTs) * p.Cfg.RTT
	if s.backoff > interval {
		interval = s.backoff
	}
	s.rto = p.Engine().Schedule(interval, func() { p.onRTO(s) })
}

// onRTO retransmits the oldest unacked sequence after a silence of
// RTORTTs×RTT and halves the window (loss reaction).
func (p *Protocol) onRTO(s *sender) {
	if s.acked.Full() {
		return // sender-local done: every sequence acked
	}
	rto := sim.Time(p.cfg.RTORTTs) * p.Cfg.RTT
	if p.Now()-s.lastProgress >= rto {
		if seq := s.acked.NextClear(0); seq >= 0 && seq < s.next {
			pkt := p.NewData(s.f, seq, netsim.PrioData)
			pkt.CE = false
			s.f.Src.Send(pkt)
			p.Retransmits++
			s.cwnd = s.cwnd / 2
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.ssthresh = s.cwnd
			// Lost in-flight credits are written off so pump can refill.
			if s.inflight > 1 {
				s.inflight = 1
			}
			p.pump(s)
		}
		if s.backoff < 64*p.Cfg.RTT {
			if s.backoff == 0 {
				s.backoff = rto
			}
			s.backoff *= 2
		}
	} else {
		s.backoff = 0
	}
	p.armRTO(s)
}
