package dctcp

import (
	"testing"

	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/stats"
	"amrt/internal/topo"
	"amrt/internal/transport"
)

func newFan(pairs int) (*topo.Scenario, *Protocol, *stats.FCTCollector) {
	cfg := DefaultConfig()
	sc := topo.DefaultScenario()
	sc.SwitchQueue = cfg.SwitchQueue
	sc.HostQueue = cfg.HostQueue
	s := topo.NewFanN(sc, pairs)
	col := stats.NewFCTCollector()
	cfg.Collector = col
	cfg.RTT = 100 * sim.Microsecond
	return s, New(s.Net, cfg), col
}

func TestSingleFlowCompletes(t *testing.T) {
	s, p, col := newFan(1)
	f := p.AddFlow(1, s.Senders[0], s.Receivers[0], 2_000_000, 0)
	s.Net.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if col.Count() != 1 {
		t.Fatal("collector missed the flow")
	}
	// Slow start from cwnd 10 over ~100µs RTTs, then congestion
	// avoidance: a 2MB flow should take a handful of ms.
	if fct := f.FCT(); fct > 10*sim.Millisecond {
		t.Errorf("FCT = %v", fct)
	}
	if p.AcksSent < int64(f.NPkts) {
		t.Errorf("AcksSent = %d for %d packets", p.AcksSent, f.NPkts)
	}
}

func TestECNMarkingKeepsQueueNearThreshold(t *testing.T) {
	// Two long flows share the bottleneck: DCTCP should hold the queue
	// around K rather than filling the 128-packet buffer.
	s, p, _ := newFan(2)
	mon := netsim.Attach(s.Bottlenecks[0])
	f1 := p.AddFlow(1, s.Senders[0], s.Receivers[0], 8_000_000, 0)
	f2 := p.AddFlow(2, s.Senders[1], s.Receivers[1], 8_000_000, 0)
	s.Net.Run(sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not complete")
	}
	if mon.MaxQueueLen < 8 {
		t.Errorf("queue never built (%d): marking threshold likely never reached", mon.MaxQueueLen)
	}
	if mon.MaxQueueLen > 110 {
		t.Errorf("queue reached %d: DCTCP failed to hold the marking threshold", mon.MaxQueueLen)
	}
	// The ECN queue actually marked packets.
	var marked int64
	for _, sw := range s.Switches {
		for _, pt := range sw.Ports() {
			if q, ok := pt.Queue().(*netsim.ECNQueue); ok {
				marked += q.Marked
			}
		}
	}
	if marked == 0 {
		t.Error("no CE marks applied")
	}
}

func TestFairSharing(t *testing.T) {
	// Two identical flows starting together should finish within ~35%
	// of each other.
	s, p, _ := newFan(2)
	f1 := p.AddFlow(1, s.Senders[0], s.Receivers[0], 6_000_000, 0)
	f2 := p.AddFlow(2, s.Senders[1], s.Receivers[1], 6_000_000, 5*sim.Microsecond)
	s.Net.Run(sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not complete")
	}
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if ratio := a / b; ratio < 0.65 || ratio > 1.55 {
		t.Errorf("unfair completion: %v vs %v (ratio %.2f)", f1.FCT(), f2.FCT(), ratio)
	}
}

func TestLossRecoveryViaRTO(t *testing.T) {
	// Incast overload: the drop-tail overflows and RTOs must recover.
	s, p, _ := newFan(12)
	var flows []*transport.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[0], 400_000, 0))
	}
	s.Net.Run(5 * sim.Second)
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("%v did not complete under incast", f)
		}
	}
}

func TestUnresponsiveFlowInert(t *testing.T) {
	s, p, _ := newFan(2)
	dead := p.AddUnresponsiveFlow(1, s.Senders[0], s.Receivers[0], 1_000_000, 0)
	live := p.AddFlow(2, s.Senders[1], s.Receivers[1], 1_000_000, 0)
	s.Net.Run(100 * sim.Millisecond)
	if dead.Done {
		t.Error("unresponsive flow cannot complete")
	}
	if !live.Done {
		t.Fatal("live flow affected by inert one")
	}
}

func TestDCTCPDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, uint64) {
		s, p, _ := newFan(3)
		var last *transport.Flow
		for i := 0; i < 3; i++ {
			last = p.AddFlow(netsim.FlowID(i+1), s.Senders[i], s.Receivers[i], 2_000_000, sim.Time(i)*40*sim.Microsecond)
		}
		s.Net.Run(sim.Second)
		return last.End, p.AcksSent, s.Net.Engine.Executed
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Error("DCTCP run not deterministic")
	}
}

func TestECNQueueSemantics(t *testing.T) {
	q := netsim.NewECN(4, 2)
	mk := func(seq int32) *netsim.Packet {
		return &netsim.Packet{Type: netsim.Data, Seq: seq, Size: netsim.MSS, Prio: netsim.PrioData}
	}
	a, b, c := mk(0), mk(1), mk(2)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	if a.CE || b.CE {
		t.Error("packets below threshold must not be marked")
	}
	q.Enqueue(c, 0)
	if !c.CE {
		t.Error("packet at threshold not marked")
	}
	d, e := mk(3), mk(4)
	if !q.Enqueue(d, 0) {
		t.Error("enqueue below capacity rejected")
	}
	if q.Enqueue(e, 0) {
		t.Error("enqueue above capacity accepted")
	}
	if q.Marked != 2 {
		t.Errorf("Marked = %d, want 2", q.Marked)
	}
	// Control packets are never marked.
	g := &netsim.Packet{Type: netsim.Grant, Size: 64, Prio: netsim.PrioControl}
	q.Dequeue()
	q.Enqueue(g, 0)
	if g.CE {
		t.Error("control packet marked")
	}
}
