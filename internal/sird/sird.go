// Package sird implements a sender-informed receiver-driven transport
// in the style of SIRD (Katsikas et al.): senders advertise their queued
// backlog ("demand") on the RTS and on every data packet, and each
// receiver allocates credit from one bounded shared pool, weighting
// flows by their advertised demand instead of blindly overcommitting a
// fixed per-flow window. The pool bound caps the scheduled
// granted-but-undelivered bytes converging on a downlink, which is what
// keeps buffer occupancy low; demand weighting is what keeps the link
// busy, since credit flows toward senders that can actually use it.
//
// The reproduction simplifies the paper's mechanism to this simulator's
// grant/credit model: grants are paced at the downlink packet rate, one
// MSS of credit each, and the scheduler is a deterministic
// integer-weighted round-robin over the receiver's active flows.
package sird

import (
	"amrt/internal/netsim"
	"amrt/internal/sim"
	"amrt/internal/transport"
)

// Config parameterizes SIRD.
type Config struct {
	transport.Config

	// PoolBytes bounds each receiving host's outstanding scheduled
	// credit (granted but not yet delivered bytes). 0 means automatic:
	// 1.5× the downlink bandwidth-delay product, enough to keep the
	// link busy across the grant loop with a half-BDP margin for
	// demand estimation error.
	PoolBytes int64
	// StalenessRTTs is how long a sender's demand advertisement stays
	// trusted, in RTTs (default 8). Past that the receiver falls back
	// to its own ungranted-bytes estimate, so a stalled advertisement
	// cannot pin credit weighting forever.
	StalenessRTTs int
	// QueueCap is the switch data-queue budget in packets (default 8,
	// AMRT's data depth). Each of SIRD's two data levels (unscheduled
	// above scheduled) gets half of it, rounded up: pool pacing, not
	// switch buffering, absorbs bursts, so SIRD runs the same budget at
	// half the per-level depth — that is the buffer-occupancy half of
	// the head-to-head comparison.
	QueueCap int
	// TimeoutRTTs is the loss-recovery resend timer in RTTs (default 3).
	TimeoutRTTs int
}

// DefaultConfig returns the defaults used by the experiments.
func DefaultConfig() Config {
	return Config{StalenessRTTs: 8, QueueCap: 8, TimeoutRTTs: 3}
}

// sirdBlindPkts is the default unscheduled window. SIRD deliberately
// keeps it far below one BDP (the receiver-driven baselines' default):
// the unscheduled prefix exists only to cover the announce round-trip,
// and everything after it arrives paced by pool credit. This is the
// buffer-occupancy half of the head-to-head trade-off — an incast of
// blind BDP windows is exactly the burst the credit pool cannot govern.
const sirdBlindPkts = 4

func (c Config) withDefaults() Config {
	if c.BlindWindow == 0 {
		c.BlindWindow = sirdBlindPkts
	}
	if c.StalenessRTTs == 0 {
		c.StalenessRTTs = 8
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.TimeoutRTTs == 0 {
		c.TimeoutRTTs = 3
	}
	return c
}

// SwitchQueue builds SIRD's switch buffer: control above unscheduled
// above scheduled, each data level at half the QueueCap budget. Paced
// credit keeps scheduled arrivals at the downlink drain rate and the
// tiny unscheduled window needs no depth, so shallow per-level queues
// cost little goodput while capping occupancy below the single-level
// baselines'.
func (c Config) SwitchQueue() netsim.Queue {
	cap := c.QueueCap
	if cap == 0 {
		cap = 8
	}
	return netsim.NewPriority(256, (cap+1)/2, (cap+1)/2)
}

// HostQueue builds the host NIC queue.
func (c Config) HostQueue() netsim.Queue { return netsim.NewPriority(1024) }

// Protocol is a SIRD instance.
type Protocol struct {
	transport.Kernel
	cfg       Config
	senders   map[netsim.FlowID]*sender
	receivers map[netsim.FlowID]*rcvFlow
	pools     map[netsim.NodeID]*poolState
	installed map[netsim.NodeID]bool

	// GrantsSent counts pool grant packets; GrantedPkts counts packets
	// authorized by them (1:1 for SIRD's paced single-MSS grants).
	GrantsSent  int64
	GrantedPkts int64
	// ResendGrants counts per-sequence resend requests issued by the
	// timeout path, each authorizing one retransmission.
	ResendGrants int64
	// RTSReannounces counts sender-side RTS re-sends (armAnnounce).
	RTSReannounces int64
	// PoolReclaims counts timeout-driven reclaims of charged credit
	// from silent flows back into their receiver's pool.
	PoolReclaims int64
}

type sender struct {
	f    *transport.Flow
	next int32
}

// demand returns the sender's current backlog advertisement: bytes of
// the flow not yet handed to the NIC. Resends do not change it — the
// backlog is about first transmissions.
func (s *sender) demand(mss int) int64 {
	if s.next >= s.f.NPkts {
		return 0
	}
	return s.f.Size - int64(s.next)*int64(mss)
}

type rcvFlow struct {
	f     *transport.Flow
	rcvd  *transport.Bitmap
	blind int32 // unscheduled prefix; pool credit covers seq >= blind

	granted int32 // packets authorized (incl. unscheduled window)
	charged int64 // pool bytes charged and not yet delivered or reclaimed

	// demand is the sender's latest backlog advertisement and demandAt
	// its arrival time; past the staleness window the scheduler falls
	// back to the receiver's own ungranted-bytes estimate.
	demand   int64
	demandAt sim.Time

	// due is the weighted-round-robin accumulator: each scheduling step
	// adds the flow's weight, the largest accumulator wins the grant
	// and pays the total weight back. Integer state, so shard count and
	// event order cannot perturb the schedule.
	due int64

	// lastArrival and grantsSinceArrival drive the silent-source test:
	// a flow is skipped by the pool only when several grants have gone
	// unanswered for the timeout period — mere silence is not evidence
	// if the pool itself stopped serving the flow.
	lastArrival        sim.Time
	grantsSinceArrival int

	lastProgress sim.Time
	timer        sim.Timer
	// backoff doubles the resend-check interval while a flow makes no
	// progress (up to 64×RTT), so a permanently silent sender costs a
	// trickle of events instead of a per-RTT scan forever.
	backoff sim.Time

	// snapshots ring-buffers (time, granted) pairs taken at each
	// timeout check, so the recovery scan can tell which holes were
	// authorized long enough ago to declare lost — without timestamping
	// every grant. reissuedAt remembers when each hole's resend grant
	// went out, so a retransmission still plausibly in flight is not
	// duplicated.
	snapshots  [8]grantSnapshot
	snapHead   int
	reissuedAt map[int32]sim.Time
}

type grantSnapshot struct {
	at      sim.Time
	granted int32
	valid   bool
}

// grantedBefore returns the granted count at the newest snapshot older
// than cutoff (0 if none is old enough).
func (r *rcvFlow) grantedBefore(cutoff sim.Time) int32 {
	best := int32(0)
	bestAt := sim.Time(-1)
	for _, s := range r.snapshots {
		if s.valid && s.at <= cutoff && s.at > bestAt {
			best, bestAt = s.granted, s.at
		}
	}
	return best
}

func (r *rcvFlow) snapshot(now sim.Time) {
	r.snapshots[r.snapHead] = grantSnapshot{at: now, granted: r.granted, valid: true}
	r.snapHead = (r.snapHead + 1) % len(r.snapshots)
}

// silenceEvidence is how many unanswered grants it takes before a
// silent source stops drawing from the credit pool.
const silenceEvidence = 4

// silent reports whether the source has ignored enough credit for the
// unresponsive timeout.
func (r *rcvFlow) silent(now, timeout sim.Time) bool {
	return r.grantsSinceArrival >= silenceEvidence && now-r.lastArrival >= timeout
}

// ungranted is the receiver-side demand fallback: bytes of the flow no
// credit has been issued for yet.
func (r *rcvFlow) ungranted(mss int) int64 {
	if r.granted >= r.f.NPkts {
		return 0
	}
	return int64(r.f.NPkts-r.granted) * int64(mss)
}

type poolState struct {
	host  *netsim.Host
	pacer *transport.Pacer
	flows []*rcvFlow

	// bound caps outstanding; outstanding is the sum of the member
	// flows' charged bytes. The audit credit-pool rule checks
	// outstanding <= bound at every audit tick.
	bound       int64
	outstanding int64

	// recovery queues resend requests for the pacer, so
	// retransmissions reach the downlink at the same line-rate pace as
	// fresh credit instead of bursting out of the timeout scan. Served
	// ahead of fresh grants and exempt from the pool bound — the lost
	// packet's charge is still outstanding.
	recovery []recReq
}

type recReq struct {
	r   *rcvFlow
	seq int32
}

// New creates a SIRD instance on the network.
func New(net *netsim.Network, cfg Config) *Protocol {
	cfg = cfg.withDefaults()
	p := &Protocol{
		Kernel:    transport.NewKernel(net, cfg.Config),
		cfg:       cfg,
		senders:   make(map[netsim.FlowID]*sender),
		receivers: make(map[netsim.FlowID]*rcvFlow),
		pools:     make(map[netsim.NodeID]*poolState),
		installed: make(map[netsim.NodeID]bool),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("sird.grants_sent", func() int64 { return p.GrantsSent })
		m.CounterFunc("sird.resend_grants", func() int64 { return p.ResendGrants })
		m.CounterFunc("sird.rts_reannounces", func() int64 { return p.RTSReannounces })
		m.CounterFunc("sird.pool_reclaims", func() int64 { return p.PoolReclaims })
	}
	return p
}

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "SIRD" }

// AddFlow registers a flow on both endpoints of this instance and
// schedules its start — the single-instance convenience path. The
// sharded runner instead splits registration across instances with
// AddPending/Release on the source shard and Adopt on the home shard.
func (p *Protocol) AddFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, start)
	f.Released = true
	p.install(src)
	p.install(dst)
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
	return f
}

// AddUnresponsiveFlow registers a flow that announces itself (with its
// full size as demand) but never sends data; until the silence test
// trips it draws a few grants' worth of pool credit, which the timeout
// path then reclaims.
func (p *Protocol) AddUnresponsiveFlow(id netsim.FlowID, src, dst *netsim.Host, size int64, start sim.Time) *transport.Flow {
	f := p.AddFlow(id, src, dst, size, start)
	f.Unresponsive = true
	return f
}

// AddPending registers a dependent flow's sender side without
// scheduling a start; Release starts it when the parent completes.
func (p *Protocol) AddPending(id netsim.FlowID, src, dst *netsim.Host, size int64, unresponsive bool) *transport.Flow {
	f := p.NewFlow(id, src, dst, size, 0)
	f.Unresponsive = unresponsive
	p.install(src)
	return f
}

// Release schedules a pending flow's start (the home shard writes
// f.Start when it handles the release signal).
func (p *Protocol) Release(f *transport.Flow, start sim.Time) {
	p.Engine().ScheduleAt(start, func() { p.startFlow(f) })
}

// Adopt registers a flow created by another instance on this instance's
// receiver side.
func (p *Protocol) Adopt(f *transport.Flow) {
	p.Register(f)
	p.install(f.Dst)
}

func (p *Protocol) install(h *netsim.Host) {
	if p.installed[h.ID()] {
		return
	}
	p.installed[h.ID()] = true
	transport.Dispatcher{Kernel: &p.Kernel, ToSender: p.onSenderPkt, ToReceiver: p.onReceiverPkt}.Install(h)
}

func (p *Protocol) startFlow(f *transport.Flow) {
	f.SenderStarted = true
	s := &sender{f: f}
	p.senders[f.ID] = s
	rts := p.NewCtrl(netsim.RTS, f, -1, false)
	rts.Demand = f.Size // nothing handed to the NIC yet
	f.Src.Send(rts)
	p.armAnnounce(f, 3*p.Cfg.RTT)
	if f.Unresponsive {
		return
	}
	// Unscheduled window at high priority, demand piggybacked.
	blind := p.BlindPkts(f)
	for ; s.next < blind; s.next++ {
		pkt := p.NewData(f, s.next, netsim.PrioHigh)
		pkt.Demand = s.demand(p.Cfg.MSS)
		f.Src.Send(pkt)
	}
	p.UnsolicitedPkts += int64(blind)
}

// GrantAuthority returns the data packets authorized so far: the
// unscheduled allowance plus pool-granted packets plus one per resend
// request. The audit grant-budget invariant is
// DataPacketsSent ≤ GrantAuthority.
func (p *Protocol) GrantAuthority() int64 {
	return p.UnsolicitedPkts + p.GrantedPkts + p.ResendGrants
}

// CreditLedger reports the credit-pool state the audit rule checks:
// the outstanding/bound pair of the most loaded pool (largest
// outstanding−bound margin), so one probe catches an over-bound pool on
// any receiving host; a pool driven negative (double repayment) is
// returned immediately. With no pools yet it reports 0 ≤ 0.
func (p *Protocol) CreditLedger() (outstanding, bound int64) {
	first := true
	for _, h := range p.Net.Hosts() {
		ps := p.pools[h.ID()]
		if ps == nil {
			continue
		}
		if ps.outstanding < 0 {
			return ps.outstanding, ps.bound
		}
		if first || ps.outstanding-ps.bound > outstanding-bound {
			outstanding, bound = ps.outstanding, ps.bound
			first = false
		}
	}
	return outstanding, bound
}

// OnHostCrash drops the protocol state this instance owns for flows
// touching the crashed host. A crashed sender kills its outgoing flows
// and returns their charged credit to the pool; a crashed receiver
// loses bitmaps, demand state, and the pool itself — those flows
// survive and are rebuilt by the sender's RTS re-announce after
// restart. On a sharded run the hook fires on every shard; each
// instance handles only the flow halves its shard owns (pool and
// receiver state live on the home shard).
func (p *Protocol) OnHostCrash(h *netsim.Host) {
	for _, f := range p.OrderedFlows() {
		switch h {
		case f.Src:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
				p.Abort(f)
			}
			if p.OwnsSender(f) && !f.SenderDone {
				delete(p.senders, f.ID)
				// The flow can never finish; stop the announce chain.
				f.SenderDone = true
			}
		case f.Dst:
			if p.OwnsReceiver(f) && !f.Done {
				p.dropRcvState(f)
			}
			if p.OwnsSender(f) && f.SenderStarted && !f.SenderDone {
				// Clear the sender-side flag so re-announcement resumes.
				f.SenderHeard = false
				p.armAnnounce(f, 3*p.Cfg.RTT)
			}
		}
	}
}

// OnHostRestart is a no-op for SIRD: surviving flows towards the host
// are re-announced by the sender-side armAnnounce chain, which rebuilds
// receiver and pool state from scratch.
func (p *Protocol) OnHostRestart(h *netsim.Host) {}

// dropRcvState forgets flow f's receiver state: timer cancelled, pool
// membership pruned, charged credit returned. No-op if no state exists.
func (p *Protocol) dropRcvState(f *transport.Flow) {
	r := p.receivers[f.ID]
	if r == nil {
		return
	}
	r.timer.Cancel()
	delete(p.receivers, f.ID)
	ps := p.pools[f.Dst.ID()]
	if ps == nil {
		return
	}
	ps.outstanding -= r.charged
	r.charged = 0
	keep := ps.flows[:0]
	for _, x := range ps.flows {
		if x != r {
			keep = append(keep, x)
		}
	}
	ps.flows = keep
	ps.pacer.Kick()
}

// armAnnounce re-sends the flow's RTS with exponential backoff (3×RTT
// initial, 64×RTT cap) until receiver state exists. If the RTS and the
// whole unscheduled window are lost, no rcvFlow is ever created, so the
// pool never learns the flow exists; the sender must keep announcing.
// Self-cancels once a grant reaches the sender (SenderHeard — the
// receiver's timeout machinery then owns recovery) or the completion
// signal does (SenderDone); both flags are sender-shard state.
func (p *Protocol) armAnnounce(f *transport.Flow, interval sim.Time) {
	p.Engine().Schedule(interval, func() {
		if f.SenderHeard || f.SenderDone {
			return
		}
		s := p.senders[f.ID]
		rts := p.NewCtrl(netsim.RTS, f, -1, false)
		if s != nil {
			rts.Demand = s.demand(p.Cfg.MSS)
		}
		f.Src.Send(rts)
		p.RTSReannounces++
		next := interval * 2
		if max := 64 * p.Cfg.RTT; next > max {
			next = max
		}
		p.armAnnounce(f, next)
	})
}

func (p *Protocol) onSenderPkt(pkt *netsim.Packet) {
	if pkt.Type != netsim.Grant {
		return
	}
	s := p.senders[pkt.Flow]
	if s == nil || s.f.Unresponsive {
		return
	}
	if pkt.Seq >= 0 {
		// Resend request for a specific packet (scheduled priority).
		if pkt.Seq >= s.next {
			s.next = pkt.Seq + 1
		}
		out := p.NewData(s.f, pkt.Seq, netsim.PrioData)
		out.Demand = s.demand(p.Cfg.MSS)
		s.f.Src.Send(out)
		return
	}
	// Pool grant: Count packets from next, scheduled priority.
	for i := int16(0); i < pkt.Count && s.next < s.f.NPkts; i++ {
		out := p.NewData(s.f, s.next, netsim.PrioData)
		s.next++
		out.Demand = s.demand(p.Cfg.MSS)
		s.f.Src.Send(out)
	}
}

func (p *Protocol) onReceiverPkt(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.RTS:
		if r := p.rcvFor(pkt); r != nil {
			p.noteDemand(r, pkt.Demand)
			p.poolOf(r.f.Dst).pacer.Kick()
		}
	case netsim.Data:
		r := p.rcvFor(pkt)
		if r == nil || r.f.Done {
			return
		}
		p.noteDemand(r, pkt.Demand)
		r.lastArrival = p.Now()
		r.grantsSinceArrival = 0
		if !r.rcvd.Set(pkt.Seq) {
			return
		}
		delete(r.reissuedAt, pkt.Seq)
		r.lastProgress = p.Now()
		p.DeliverData(r.f, pkt)
		ps := p.poolOf(r.f.Dst)
		// Scheduled arrivals repay their pool charge; the unscheduled
		// prefix was never charged.
		if pkt.Seq >= r.blind && r.charged > 0 {
			repay := int64(p.Cfg.MSS)
			if repay > r.charged {
				repay = r.charged
			}
			r.charged -= repay
			ps.outstanding -= repay
		}
		if r.rcvd.Full() {
			p.finish(r)
			return
		}
		ps.pacer.Kick()
	}
}

// noteDemand records a fresh sender backlog advertisement. The
// advertisement also reveals the sender's progress — demand is exactly
// the bytes not yet handed to the NIC — so the receiver fast-forwards
// its authorized count over the transmitted prefix. That is what makes
// recovery after a receiver reboot sender-informed: the rebuilt state
// starts at the tiny blind window, and without the inference the
// timeout scan could only re-request holes a few packets at a time.
func (p *Protocol) noteDemand(r *rcvFlow, demand int64) {
	r.demand = demand
	r.demandAt = p.Now()
	sent := r.f.NPkts
	if demand > 0 {
		sent = int32((r.f.Size - demand) / int64(p.Cfg.MSS))
	}
	if sent > r.granted {
		r.granted = sent
	}
}

func (p *Protocol) rcvFor(pkt *netsim.Packet) *rcvFlow {
	if r, ok := p.receivers[pkt.Flow]; ok {
		return r
	}
	f := p.Flows[pkt.Flow]
	if f == nil || f.Done {
		return nil // unknown, completed, or crash-killed flow
	}
	now := p.Now()
	blind := p.BlindPkts(f)
	r := &rcvFlow{
		f: f, rcvd: transport.NewBitmap(f.NPkts), blind: blind,
		granted: blind, lastArrival: now, lastProgress: now,
		reissuedAt: make(map[int32]sim.Time),
	}
	// Seed the grant-age ring so the unscheduled prefix (authorized at
	// flow start) becomes recoverable one timeout window from now.
	r.snapshot(now)
	p.receivers[pkt.Flow] = r
	// Announce confirmation (see core/amrt.receiverFor): stop the
	// sender's re-announce timer without waiting for the first grant.
	f2 := f
	p.Shard().Signal(f.Dst, f.Src, func() { f2.SenderHeard = true })
	ps := p.poolOf(f.Dst)
	ps.flows = append(ps.flows, r)
	ps.pacer.Kick()
	p.armTimeout(r)
	return r
}

func (p *Protocol) poolOf(h *netsim.Host) *poolState {
	if ps, ok := p.pools[h.ID()]; ok {
		return ps
	}
	bound := p.cfg.PoolBytes
	if bound <= 0 {
		// 1.5× downlink BDP: the grant loop needs one BDP in flight to
		// fill the link, plus margin for demand estimation error.
		bound = h.LinkRate().BytesIn(p.Cfg.RTT) * 3 / 2
	}
	ps := &poolState{host: h, bound: bound}
	tick := h.LinkRate().TxTime(p.Cfg.MSS)
	ps.pacer = transport.NewPacer(p.Engine(), tick, func() bool { return p.emitGrant(ps) })
	p.pools[h.ID()] = ps
	return ps
}

// weight returns flow r's scheduling weight: the advertised demand
// while fresh, the receiver's own ungranted estimate once stale, and at
// least one MSS either way so a flow with a tiny (or zeroed) backlog
// still drains rather than starving behind heavy flows forever.
func (p *Protocol) weight(r *rcvFlow, now sim.Time) int64 {
	stale := sim.Time(p.cfg.StalenessRTTs) * p.Cfg.RTT
	w := r.demand
	if now-r.demandAt > stale {
		w = r.ungranted(p.Cfg.MSS)
	}
	if min := int64(p.Cfg.MSS); w < min {
		w = min
	}
	return w
}

// emitGrant runs one scheduling step of the credit pool: every eligible
// flow accrues its demand weight, the largest accumulator (ties to the
// lowest flow ID) receives one MSS of credit and pays the round back.
// Returns false — idling the pacer — when no flow is eligible or the
// pool bound leaves no room for another MSS.
func (p *Protocol) emitGrant(ps *poolState) bool {
	// Recovery first: a declared-lost packet already holds pool credit,
	// so re-requesting it neither charges the pool nor waits behind it.
	for len(ps.recovery) > 0 {
		req := ps.recovery[0]
		ps.recovery = ps.recovery[1:]
		if req.r.f.Done || p.receivers[req.r.f.ID] != req.r || req.r.rcvd.Get(req.seq) {
			continue // satisfied or torn down while queued
		}
		g := p.NewCtrl(netsim.Grant, req.r.f, req.seq, true)
		p.ResendGrants++
		req.r.f.Dst.Send(g)
		return true
	}
	mss := int64(p.Cfg.MSS)
	if ps.outstanding+mss > ps.bound {
		return false
	}
	now := p.Now()
	timeout := sim.Time(p.cfg.TimeoutRTTs) * p.Cfg.RTT
	var best *rcvFlow
	var total int64
	for _, r := range ps.flows {
		if r.f.Done || r.granted >= r.f.NPkts || r.silent(now, timeout) {
			continue
		}
		w := p.weight(r, now)
		r.due += w
		total += w
		if best == nil || r.due > best.due || (r.due == best.due && r.f.ID < best.f.ID) {
			best = r
		}
	}
	if best == nil {
		return false
	}
	best.due -= total
	g := p.NewCtrl(netsim.Grant, best.f, -1, true)
	g.Count = 1
	best.granted++
	best.charged += mss
	ps.outstanding += mss
	best.grantsSinceArrival++
	p.GrantsSent++
	p.GrantedPkts++
	best.f.Dst.Send(g)
	return true
}

func (p *Protocol) armTimeout(r *rcvFlow) {
	interval := p.Cfg.RTT
	if r.backoff > interval {
		interval = r.backoff
	}
	r.timer = p.Engine().Schedule(interval, func() { p.onTimeout(r) })
}

// onTimeout is the per-flow recovery check, run every RTT (backing off
// on silent flows). Any hole whose authorization is older than the
// timeout window is declared lost and re-requested immediately — one
// resend grant per sequence, capped at one BDP per check, deduplicated
// while a retransmission is plausibly still in flight. Loss recovery
// must not wait for the flow to stall outright: under partial loss the
// tail keeps arriving, and a progress-gated timer would sit on the
// holes until the whole flow drained. A source silent for the full
// window additionally has its charged credit reclaimed, so the pool
// can serve responsive flows — a probe-sized trickle keeps the silent
// flow retryable.
func (p *Protocol) onTimeout(r *rcvFlow) {
	if r.f.Done {
		return
	}
	now := p.Now()
	window := sim.Time(p.cfg.TimeoutRTTs) * p.Cfg.RTT
	overdue := r.grantedBefore(now - window)
	cap := p.BDPPkts(r.f.Dst.LinkRate())
	ps := p.poolOf(r.f.Dst)
	issued := 0
	for seq := r.rcvd.NextClear(0); seq >= 0 && seq < overdue && issued < cap; seq = r.rcvd.NextClear(seq + 1) {
		if at, ok := r.reissuedAt[seq]; ok && now-at < window {
			continue // retransmission still plausibly in flight
		}
		r.reissuedAt[seq] = now
		ps.recovery = append(ps.recovery, recReq{r: r, seq: seq})
		issued++
	}
	if issued > 0 {
		ps.pacer.Kick()
	}
	if now-r.lastArrival >= window {
		if r.charged > 0 {
			// The charged credit is evidently not coming back as data;
			// return it to the pool. Late arrivals are harmless — the
			// repayment path is gated on charged > 0.
			ps.outstanding -= r.charged
			r.charged = 0
			p.PoolReclaims++
			ps.pacer.Kick()
		}
		// No arrival since the last check: back off (reset on data).
		if r.backoff < 64*p.Cfg.RTT {
			if r.backoff == 0 {
				r.backoff = p.Cfg.RTT
			}
			r.backoff *= 2
		}
	} else {
		r.backoff = 0
	}
	r.snapshot(now)
	p.armTimeout(r)
}

func (p *Protocol) finish(r *rcvFlow) {
	r.timer.Cancel()
	p.Complete(r.f)
	ps := p.poolOf(r.f.Dst)
	// A short final packet repays less than its MSS charge; settle the
	// remainder and hand the credit to the next flow.
	ps.outstanding -= r.charged
	r.charged = 0
	keep := ps.flows[:0]
	for _, x := range ps.flows {
		if x != r {
			keep = append(keep, x)
		}
	}
	ps.flows = keep
	ps.pacer.Kick()
}
