package amrt_test

import (
	"fmt"
	"time"

	"amrt"
)

// Run a single simulation and read its headline metrics.
func ExampleRun() {
	res := amrt.Run(amrt.Config{
		Protocol: "AMRT",
		Workload: "WebServer",
		Load:     0.4,
		Flows:    200,
		Seed:     7,
		Topology: amrt.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4},
	})
	fmt.Println(res.Protocol, res.Workload, res.Completed == res.Total)
	// Output: AMRT WebServer true
}

// Compare every protocol on byte-identical traffic.
func ExampleCompare() {
	results := amrt.Compare(amrt.Config{
		Workload: "CacheFollower",
		Flows:    150,
		Topology: amrt.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4},
	})
	done := 0
	for _, r := range results {
		if r.Completed == r.Total {
			done++
		}
	}
	fmt.Println(len(results), done)
	// Output: 5 5
}

// Evaluate the paper's §5 analytical model.
func ExampleGain() {
	uMin, uMax, _, _ := amrt.Gain(1_000_000, 0.5, 1, 100*time.Microsecond)
	fmt.Printf("%.2f %.2f\n", uMin, uMax)
	// Output: 1.97 1.99
}

// Enumerate supported protocols and workloads.
func ExampleProtocols() {
	fmt.Println(amrt.Protocols())
	fmt.Println(len(amrt.Workloads()))
	// Output:
	// [pHost Homa NDP AMRT SIRD]
	// 5
}
