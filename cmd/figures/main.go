// Command figures regenerates the paper's figures as tables (and
// optional CSV time series) from the simulator.
//
// Usage:
//
//	figures -fig all
//	figures -fig 12 -loads 0.1,0.3,0.5,0.7 -flows 2000
//	figures -fig 13 -counts 100,200,400,800
//	figures -fig 14 -ratios 0.1,0.3,0.5,0.7,0.9,1.0 -repeats 10
//	figures -fig 1 -proto pHost
//	figures -fig ablation
//	figures -paper-scale   (full §8.1 topology — slow)
//	figures -csv out/      (also dump time series and tables as CSV)
//	figures -fig 12 -metrics out/metrics/   (one JSON telemetry dump per run)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"amrt/internal/experiment"
	"amrt/internal/faults"
	"amrt/internal/sim"
	"amrt/internal/stats"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 1,2,5,7,9,11,12,13,14,ablation,h2h,all")
		proto      = flag.String("proto", "", "protocol for single-stack figures (1,2,9): pHost|Homa|NDP|AMRT|SIRD; default = figure's paper protocol")
		loads      = flag.String("loads", "", "comma-separated loads for fig 12 (default 0.1,0.3,0.5,0.7)")
		counts     = flag.String("counts", "100,200,400,800", "comma-separated flow counts for fig 13")
		ratios     = flag.String("ratios", "0.1,0.3,0.5,0.7,0.9,1.0", "responsive ratios for fig 14")
		flows      = flag.Int("flows", 0, "flows per run for fig 12 (default 2000, budget-capped)")
		repeats    = flag.Int("repeats", 0, "seed repeats for fig 14 (default 5)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		leaves     = flag.Int("leaves", 0, "override leaf count")
		spines     = flag.Int("spines", 0, "override spine count")
		hostsPer   = flag.Int("hostsPerLeaf", 0, "override hosts per leaf")
		paperScale = flag.Bool("paper-scale", false, "use the full §8.1 topology (10 leaves × 8 spines × 400 hosts) — slow")
		csvDir     = flag.String("csv", "", "directory to also write CSV outputs into")
		plot       = flag.Bool("plot", false, "render ASCII charts for the time-series figures (1, 2, 9, 11)")
		metricsDir = flag.String("metrics", "", "directory to write one JSON telemetry dump per figure-12/13 run into (schema in docs/TELEMETRY.md)")
		metricsIvl = flag.Duration("metrics-interval", 100*time.Microsecond, "telemetry sampling period in virtual time")
		faultSpec  = flag.String("faults", "", "fault-injection spec applied to every figure-12/13 run (grammar in docs/FAULTS.md)")
		shards     = flag.Int("shards", 0, "engine shards per figure simulation (0 or 1 = single engine; results are byte-identical at every count, see docs/PARALLELISM.md)")
		schedName  = flag.String("sched", "wheel", "event scheduler: wheel|heap (heap is the reference implementation; results are identical)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()

	if _, err := faults.Parse(*faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "figures: invalid -faults: %v\n", err)
		os.Exit(2)
	}
	kind, err := sim.ParseSchedulerKind(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}
	sim.SetDefaultScheduler(kind)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "figures: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "figures: memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiment.DefaultSimConfig()
	if *paperScale {
		cfg = experiment.PaperSimConfig()
	}
	cfg.Seed = *seed
	if *loads != "" {
		cfg.Loads = parseFloats(*loads)
	}
	if *flows > 0 {
		cfg.FlowsPerRun = *flows
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *leaves > 0 {
		cfg.Topo.Leaves = *leaves
	}
	if *spines > 0 {
		cfg.Topo.Spines = *spines
	}
	if *hostsPer > 0 {
		cfg.Topo.HostsPerLeaf = *hostsPer
	}
	cfg.MetricsDir = *metricsDir
	cfg.MetricsInterval = sim.FromDuration(*metricsIvl)
	cfg.FaultSpec = *faultSpec
	cfg.Shards = *shards

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"1", "2", "5", "7", "9", "11", "12", "13", "14", "ablation", "related", "incast", "breakdown", "h2h"}
	}
	for _, f := range figs {
		start := time.Now()
		runFigure(strings.TrimSpace(f), cfg, *proto, *counts, *ratios, *csvDir, *plot)
		fmt.Fprintf(os.Stderr, "[fig %s done in %v]\n", f, time.Since(start).Round(time.Millisecond))
	}
}

func runFigure(fig string, cfg experiment.SimConfig, proto, counts, ratios, csvDir string, plot bool) {
	stackOr := func(def string) experiment.Stack {
		if proto != "" {
			return experiment.MustStack(proto, experiment.StackOptions{})
		}
		return experiment.MustStack(def, experiment.StackOptions{})
	}
	switch fig {
	case "1":
		res := experiment.Fig1(stackOr("pHost"))
		res.Phases.Fprint(os.Stdout)
		if plot {
			fmt.Println(stats.RenderASCII(stats.PlotOptions{YMax: 1.1, YLabel: "bottleneck-0 goodput utilization"}, res.Util))
		}
		dumpSeries(csvDir, "fig1_"+res.Stack+"_util", res.Util)
		dumpSeries(csvDir, "fig1_"+res.Stack+"_linkutil", res.LinkUtil)
		for _, s := range res.FlowSeries {
			dumpSeries(csvDir, "fig1_"+res.Stack+"_"+s.Name, s)
		}
	case "2":
		res := experiment.Fig2(stackOr("pHost"))
		res.Phases.Fprint(os.Stdout)
		if plot {
			fmt.Println(stats.RenderASCII(stats.PlotOptions{YMax: 1.1, YLabel: "bottleneck goodput utilization"}, res.Util))
		}
		dumpSeries(csvDir, "fig2_"+res.Stack+"_util", res.Util)
		dumpSeries(csvDir, "fig2_"+res.Stack+"_linkutil", res.LinkUtil)
		for _, s := range res.FlowSeries {
			dumpSeries(csvDir, "fig2_"+res.Stack+"_"+s.Name, s)
		}
	case "5":
		rows := experiment.Fig5([][2]int{{6, 2}, {6, 4}, {10, 4}, {10, 8}, {20, 10}})
		experiment.Fig5Table(rows).Fprint(os.Stdout)
	case "7":
		for _, t := range experiment.Fig7Tables() {
			t.Fprint(os.Stdout)
			dumpTable(csvDir, t)
		}
	case "9":
		res := experiment.Fig9(stackOr("AMRT"))
		res.Summary.Fprint(os.Stdout)
		if plot {
			fmt.Println(stats.RenderASCII(stats.PlotOptions{YMax: 1.1, YLabel: "normalized throughput"}, res.Series...))
		}
		for _, s := range res.Series {
			dumpSeries(csvDir, "fig9_"+res.Stack+"_"+s.Name, s)
		}
	case "11":
		results, cmp := experiment.Fig11All()
		for _, r := range results {
			r.Summary.Fprint(os.Stdout)
			if plot {
				fmt.Printf("[%s]\n%s\n", r.Stack,
					stats.RenderASCII(stats.PlotOptions{YMax: 1.1, YLabel: "normalized throughput"}, r.Series...))
			}
			for _, s := range r.Series {
				dumpSeries(csvDir, "fig11_"+r.Stack+"_"+s.Name, s)
			}
		}
		cmp.Fprint(os.Stdout)
		dumpTable(csvDir, cmp)
	case "12":
		cells := experiment.Fig12Cells(cfg)
		for _, t := range experiment.Fig12Tables(cfg, cells) {
			t.Fprint(os.Stdout)
			dumpTable(csvDir, t)
		}
	case "13":
		fc := parseInts(counts)
		cells := experiment.Fig13Cells(cfg, fc)
		for _, t := range experiment.Fig13Tables(cfg, fc, cells) {
			t.Fprint(os.Stdout)
			dumpTable(csvDir, t)
		}
	case "14":
		rs := parseFloats(ratios)
		cells := experiment.Fig14Cells(cfg, rs)
		for _, t := range experiment.Fig14Tables(cfg, rs, cells) {
			t.Fprint(os.Stdout)
			dumpTable(csvDir, t)
		}
	case "ablation":
		experiment.MarkingAblation().Fprint(os.Stdout)
		experiment.QueueCapAblation().Fprint(os.Stdout)
	case "related":
		experiment.RelatedWorkTable().Fprint(os.Stdout)
	case "breakdown":
		for _, wl := range cfg.Workloads {
			tb := experiment.SizeBreakdownTable(cfg, wl, 0.5)
			tb.Fprint(os.Stdout)
			dumpTable(csvDir, tb)
		}
	case "incast":
		tb := experiment.IncastTable([]int{4, 8, 16, 32, 64}, 250_000)
		tb.Fprint(os.Stdout)
		dumpTable(csvDir, tb)
	case "h2h":
		tb := experiment.HeadToHeadTable(experiment.HeadToHead(experiment.StackOptions{}))
		tb.Fprint(os.Stdout)
		dumpTable(csvDir, tb)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
		os.Exit(2)
	}
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad float %q: %v\n", part, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad int %q: %v\n", part, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func dumpSeries(dir, name string, s *stats.Series) {
	if dir == "" || s == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	f, err := os.Create(filepath.Join(dir, sanitize(name)+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func dumpTable(dir string, t *experiment.Table) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	f, err := os.Create(filepath.Join(dir, sanitize(t.Title)+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		case r == ' ', r == '/':
			b.WriteRune('_')
		}
	}
	return b.String()
}
