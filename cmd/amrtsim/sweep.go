package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"amrt"
)

// sweepMain implements `amrtsim sweep`: expand a protocol × workload ×
// topology × degree × load × fault × shard × seed grid, run it across
// all cores with a resumable on-disk result cache, and emit the campaign
// report as a table, JSON, and CSV. Ctrl-C cancels cleanly: completed
// points stay cached, so re-invoking the same command resumes where
// the campaign stopped.
func sweepMain(args []string) int {
	fs := flag.NewFlagSet("amrtsim sweep", flag.ExitOnError)
	var (
		protos    = fs.String("protos", strings.Join(amrt.Protocols(), ","), "comma-separated protocols to sweep")
		workloads = fs.String("workloads", "WebSearch", "comma-separated workloads to sweep")
		toposArg  = fs.String("topos", "", "pipe-separated topology specs to sweep, e.g. 'leafspine|fattree:k=4' ('' = the base fabric; grammar in docs/TOPOLOGIES.md)")
		degrees   = fs.String("degrees", "", "comma-separated incast fan-ins to sweep ('' = base degree; needs -pattern incast)")
		loads     = fs.String("loads", "0.5", "comma-separated offered-load fractions to sweep")
		seeds     = fs.String("seeds", "1", "comma-separated RNG seeds per cell (CI half-widths need >= 2)")
		faultsArg = fs.String("faults", "", "pipe-separated fault specs to sweep ('' = fault-free; grammar in docs/FAULTS.md)")
		shardsArg = fs.String("shards", "", "comma-separated engine-shard counts to sweep ('' = single engine; results are byte-identical at every count, so this axis only varies wall-clock — see docs/PARALLELISM.md)")
		auditArg  = fs.Bool("audit", false, "run every point with the runtime invariant auditor attached (part of the cache key; audited and unaudited campaigns never share entries)")
		flows     = fs.Int("flows", 1000, "flows per point")
		leaves    = fs.Int("leaves", 0, "leaf switches (0 = default 4)")
		spines    = fs.Int("spines", 0, "spine switches (0 = default 4)")
		hosts     = fs.Int("hostsPerLeaf", 0, "hosts per leaf (0 = default 10)")
		gbps      = fs.Float64("gbps", 0, "link rate in Gbit/s (0 = default 10)")
		pattern   = fs.String("pattern", "", "traffic pattern for every point: poisson|incast|shuffle|rpc ('' = poisson)")
		incastB   = fs.Int64("incast-bytes", 0, "incast per-sender block size in bytes (0 = default 64KiB)")
		shufW     = fs.Int("shuffle-width", 0, "shuffle peers per host (0 = full all-to-all)")
		shufB     = fs.Int64("shuffle-bytes", 0, "shuffle per-pair transfer size in bytes (0 = default 1MiB)")
		rpcReq    = fs.Int64("rpc-request", 0, "RPC request size in bytes (0 = default 1KiB)")
		rpcResp   = fs.Int64("rpc-response", 0, "RPC response size in bytes (0 = default 64KiB)")
		rpcDl     = fs.Duration("rpc-deadline", 0, "RPC completion deadline from request start (0 = no deadlines)")
		degree    = fs.Int("homa-degree", 0, "Homa overcommitment degree (0 = default 2)")
		sirdPool  = fs.Int64("sird-pool", 0, "SIRD per-receiver credit-pool bound in bytes (0 = automatic 1.5x downlink BDP)")
		sirdStale = fs.Int("sird-staleness", 0, "SIRD demand-advertisement staleness window in RTTs (0 = default 8)")
		timeout   = fs.Duration("timeout", 0, "virtual-time horizon per point (0 = default 20s)")
		cacheDir  = fs.String("cache", "", "resumable result-cache directory ('' disables caching)")
		workers   = fs.Int("workers", 0, "worker cap (0 = GOMAXPROCS)")
		cellTO    = fs.Duration("cell-timeout", 0, "per-point attempt budget; an attempt past it fails and is retried (0 = unbounded)")
		retries   = fs.Int("retries", 0, "re-attempts a failing point gets before the campaign gives up on it")
		backoff   = fs.Duration("retry-backoff", 0, "base delay before a point's first retry (doubles per attempt)")
		quarArg   = fs.Bool("quarantine", false, "keep the campaign running past exhausted points; they are reported as FAILED instead of aborting the sweep")
		jsonPath  = fs.String("json", "", "write the full campaign report as JSON to this file")
		csvPath   = fs.String("csv", "", "write the per-cell aggregate table as CSV to this file")
		quiet     = fs.Bool("q", false, "suppress per-point progress on stderr")
	)
	fs.Parse(args)

	protoList := splitList(*protos)
	loadList, err := parseFloats(*loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: -loads: %v\n", err)
		return 2
	}
	seedList, err := parseInts(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: -seeds: %v\n", err)
		return 2
	}
	degreeList, err := parseInts(*degrees)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: -degrees: %v\n", err)
		return 2
	}
	var degreeInts []int
	for _, d := range degreeList {
		degreeInts = append(degreeInts, int(d))
	}
	var topoList []string
	if *toposArg != "" {
		topoList = strings.Split(*toposArg, "|")
	}
	var faultList []string
	if *faultsArg != "" {
		faultList = strings.Split(*faultsArg, "|")
	}
	shardList, err := parseInts(*shardsArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: -shards: %v\n", err)
		return 2
	}
	var shardInts []int
	for _, s := range shardList {
		shardInts = append(shardInts, int(s))
	}

	sc := amrt.SweepConfig{
		Protocols:  protoList,
		Workloads:  splitList(*workloads),
		Topologies: topoList,
		Degrees:    degreeInts,
		Loads:      loadList,
		Seeds:      seedList,
		Faults:     faultList,
		Shards:     shardInts,
		Base: amrt.Config{
			Flows: *flows,
			Topology: amrt.Topology{
				Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts, LinkGbps: *gbps,
			},
			Pattern:          *pattern,
			IncastBytes:      *incastB,
			ShuffleWidth:     *shufW,
			ShuffleBytes:     *shufB,
			RPCRequestBytes:  *rpcReq,
			RPCResponseBytes: *rpcResp,
			RPCDeadline:      *rpcDl,
			HomaDegree:       *degree,
			Options:          amrt.StackOptions{SIRDPoolBytes: *sirdPool, SIRDStalenessRTTs: *sirdStale},
			Timeout:          *timeout,
			Audit:            *auditArg,
		},
		CacheDir:     *cacheDir,
		Workers:      *workers,
		CellTimeout:  *cellTO,
		Retries:      *retries,
		RetryBackoff: *backoff,
		Quarantine:   *quarArg,
	}
	if !*quiet {
		sc.Progress = func(p amrt.SweepProgress) {
			src := "computed"
			if p.FromCache {
				src = "cached"
			}
			axes := ""
			if p.Topology != "" {
				axes += " topo=" + p.Topology
			}
			if p.Degree != 0 {
				axes += fmt.Sprintf(" degree=%d", p.Degree)
			}
			if p.Shards != 0 {
				axes += fmt.Sprintf(" shards=%d", p.Shards)
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s%s load=%.2f seed=%d %s\n",
				p.Done, p.Total, p.Protocol, p.Workload, axes, p.Load, p.Seed, src)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := amrt.Sweep(ctx, sc)
	if err != nil && res == nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: %v\n", err)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim sweep: interrupted (%v): %d/%d points completed and cached\n",
			err, len(res.Points), res.TotalPoints)
	}

	printSweepTable(res)
	printSweepFailures(res)
	fmt.Printf("cache: %d hits, %d misses (%d points, %.1fs wall)\n",
		res.CacheHits, res.CacheMisses, res.TotalPoints, time.Since(start).Seconds())

	if *jsonPath != "" {
		if werr := writeReport(*jsonPath, res.WriteJSON); werr != nil {
			fmt.Fprintf(os.Stderr, "amrtsim sweep: %v\n", werr)
			return 2
		}
	}
	if *csvPath != "" {
		if werr := writeReport(*csvPath, res.WriteCSV); werr != nil {
			fmt.Fprintf(os.Stderr, "amrtsim sweep: %v\n", werr)
			return 2
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}
	if len(res.Failed) > 0 {
		// Degraded completion: the campaign finished under -quarantine
		// but gave up on some points. Distinct from both success (0)
		// and hard failure (1) so scripts can tell the cases apart.
		return 3
	}
	return 0
}

// printSweepFailures lists the points the failure policy quarantined,
// in grid order, with their attempt counts and final errors.
func printSweepFailures(res *amrt.SweepResult) {
	if len(res.Failed) == 0 {
		return
	}
	fmt.Printf("FAILED %d/%d points (quarantined after retries):\n", len(res.Failed), res.TotalPoints)
	for _, f := range res.Failed {
		axes := ""
		if f.Topology != "" {
			axes += " topo=" + f.Topology
		}
		if f.Degree != 0 {
			axes += fmt.Sprintf(" degree=%d", f.Degree)
		}
		if f.Faults != "" {
			axes += " faults=" + f.Faults
		}
		if f.Shards != 0 {
			axes += fmt.Sprintf(" shards=%d", f.Shards)
		}
		fmt.Printf("  %s %s%s load=%.2f seed=%d: %d attempts: %s\n",
			f.Protocol, f.Workload, axes, f.Load, f.Seed, f.Attempts, f.Error)
	}
}

func printSweepTable(res *amrt.SweepResult) {
	deadlines := false
	for _, c := range res.Cells {
		if c.DeadlineTotal > 0 {
			deadlines = true
			break
		}
	}
	fmt.Printf("%-8s %-14s %-18s %5s %6s %14s %14s %8s %11s %8s",
		"proto", "workload", "topology", "load", "seeds", "AFCT", "p99", "util", "done", "drops")
	if deadlines {
		fmt.Printf(" %11s", "dl-missed")
	}
	fmt.Println()
	for _, c := range res.Cells {
		name := c.Workload
		if c.Faults != "" {
			name += "+faults"
		}
		topoName := c.Topology
		if topoName == "" {
			topoName = "base"
		}
		if c.Degree != 0 {
			topoName += fmt.Sprintf("/d%d", c.Degree)
		}
		fmt.Printf("%-8s %-14s %-18s %5.2f %6d %9.0f±%-3.0f %9.0f±%-3.0f %8.3f %5d/%-5d %8d",
			c.Protocol, name, topoName, c.Load, c.Seeds,
			c.AFCTUs.Mean, c.AFCTUs.CI95, c.P99Us.Mean, c.P99Us.CI95,
			c.Utilization.Mean, c.Completed, c.Total, c.Drops)
		if deadlines {
			fmt.Printf(" %5d/%-5d", c.DeadlineMissed, c.DeadlineTotal)
		}
		fmt.Println()
	}
}

func writeReport(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitList(s) {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
