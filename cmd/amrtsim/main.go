// Command amrtsim runs one simulation of a receiver-driven transport on
// a datacenter fabric — leaf-spine, k-ary fat-tree, or oversubscribed
// Clos (-topo, grammar in docs/TOPOLOGIES.md) — and prints the results,
// optionally comparing all four protocols on identical traffic. Beyond
// the paper's open-loop Poisson arrivals, -pattern selects incast,
// shuffle, or deadline-RPC traffic. The `sweep` subcommand runs a whole
// parameter campaign — protocols × workloads × topologies × degrees ×
// loads × faults × seeds — in parallel with a resumable result cache
// (see docs/API.md). The `serve` subcommand runs the campaign daemon:
// sweeps submitted as HTTP jobs against a journaled ledger and shared
// cache, with per-cell retry/quarantine and graceful drain (see
// docs/SERVICE.md).
//
// Examples:
//
//	amrtsim -proto AMRT -workload DataMining -load 0.7 -flows 2000
//	amrtsim -compare -workload WebSearch -load 0.5
//	amrtsim -proto Homa -homa-degree 8 -workload CacheFollower
//	amrtsim -proto NDP -faults 'link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01'
//	amrtsim -topo fattree:k=8 -pattern incast -incast-degree 16 -flows 512
//	amrtsim -topo clos:pods=4,leaves=4,hosts=16 -pattern rpc -rpc-deadline 2ms
//	amrtsim sweep -protos NDP,AMRT -loads 0.3,0.5,0.7 -seeds 1,2,3 \
//	    -cache .sweep-cache -json campaign.json -csv campaign.csv
//	amrtsim sweep -topos 'fattree:k=4|leafspine' -pattern incast -degrees 4,8
//	amrtsim serve -state .amrtsim-serve -addr 127.0.0.1:8340 -retries 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"amrt"
	"amrt/internal/faults"
	"amrt/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		os.Exit(sweepMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(serveMain(os.Args[2:]))
	}
	var (
		proto       = flag.String("proto", "AMRT", "protocol: pHost|Homa|NDP|AMRT|SIRD")
		wl          = flag.String("workload", "WebSearch", "workload: WebServer|CacheFollower|HadoopCluster|WebSearch|DataMining")
		load        = flag.Float64("load", 0.5, "offered load fraction (0,1]")
		flows       = flag.Int("flows", 1000, "number of flows")
		seed        = flag.Int64("seed", 1, "RNG seed")
		topoSpec    = flag.String("topo", "", "topology spec 'kind[:key=val,...]', e.g. fattree:k=8 or clos:pods=4,hosts=16 (grammar in docs/TOPOLOGIES.md; '' = leaf-spine built from the flags below)")
		leaves      = flag.Int("leaves", 0, "leaf switches (0 = default 4)")
		spines      = flag.Int("spines", 0, "spine switches (0 = default 4)")
		hosts       = flag.Int("hostsPerLeaf", 0, "hosts per leaf (0 = default 10)")
		gbps        = flag.Float64("gbps", 0, "link rate in Gbit/s (0 = default 10)")
		pattern     = flag.String("pattern", "", "traffic pattern: poisson|incast|shuffle|rpc ('' = poisson)")
		incastDeg   = flag.Int("incast-degree", 0, "incast sender fan-in per epoch (0 = default 32)")
		incastBytes = flag.Int64("incast-bytes", 0, "incast per-sender block size in bytes (0 = default 64KiB)")
		shufWidth   = flag.Int("shuffle-width", 0, "shuffle peers per host (0 = full all-to-all)")
		shufBytes   = flag.Int64("shuffle-bytes", 0, "shuffle per-pair transfer size in bytes (0 = default 1MiB)")
		rpcReq      = flag.Int64("rpc-request", 0, "RPC request size in bytes (0 = default 1KiB)")
		rpcResp     = flag.Int64("rpc-response", 0, "RPC response size in bytes (0 = default 64KiB)")
		rpcDeadline = flag.Duration("rpc-deadline", 0, "RPC completion deadline from request start (0 = no deadlines)")
		degree      = flag.Int("homa-degree", 0, "Homa overcommitment degree (0 = default 2)")
		sirdPool    = flag.Int64("sird-pool", 0, "SIRD per-receiver credit-pool bound in bytes (0 = automatic 1.5x downlink BDP)")
		sirdStale   = flag.Int("sird-staleness", 0, "SIRD demand-advertisement staleness window in RTTs (0 = default 8)")
		compare     = flag.Bool("compare", false, "run the whole comparison set on identical traffic")
		timeout     = flag.Duration("timeout", 0, "virtual-time horizon (0 = default 20s)")
		tracePath   = flag.String("trace", "", "write a CSV event trace (flow starts/completions, deliveries, drops) to this file")
		metricsPath = flag.String("metrics", "", "write a JSON telemetry dump (per-port queue/utilization/mark-rate series + counters; schema in docs/TELEMETRY.md) to this file")
		metricsCSV  = flag.String("metrics-csv", "", "also write the telemetry time series as one wide CSV to this file")
		metricsIvl  = flag.Duration("metrics-interval", 100*time.Microsecond, "telemetry sampling period in virtual time")
		faultSpec   = flag.String("faults", "", "fault-injection spec, e.g. 'link=leaf0->spine1,down=5ms,up=8ms;ctrl-loss=0.01' (grammar in docs/FAULTS.md)")
		auditFlag   = flag.Bool("audit", false, "attach the runtime invariant auditor: conservation/queue-bound/grant-budget checks every metrics interval, panicking with a forensic dump on the first violation")
		shards      = flag.Int("shards", 0, "engine shards for parallel execution (0 or 1 = single engine; results are byte-identical at every count, see docs/PARALLELISM.md)")
		schedName   = flag.String("sched", "wheel", "event scheduler: wheel|heap (heap is the reference implementation; results are identical)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()

	if _, err := faults.Parse(*faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim: invalid -faults: %v\n", err)
		os.Exit(2)
	}
	kind, err := sim.ParseSchedulerKind(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim: %v\n", err)
		os.Exit(2)
	}
	sim.SetDefaultScheduler(kind)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amrtsim: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "amrtsim: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "amrtsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "amrtsim: memprofile: %v\n", err)
			}
		}()
	}

	topoCfg := amrt.Topology{
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts, LinkGbps: *gbps,
	}
	if *topoSpec != "" {
		t, err := amrt.ParseTopology(*topoSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amrtsim: invalid -topo: %v\n", err)
			os.Exit(2)
		}
		topoCfg = t
	}
	cfg := amrt.Config{
		Protocol:         *proto,
		Workload:         *wl,
		Load:             *load,
		Flows:            *flows,
		Seed:             *seed,
		Topology:         topoCfg,
		Pattern:          *pattern,
		IncastDegree:     *incastDeg,
		IncastBytes:      *incastBytes,
		ShuffleWidth:     *shufWidth,
		ShuffleBytes:     *shufBytes,
		RPCRequestBytes:  *rpcReq,
		RPCResponseBytes: *rpcResp,
		RPCDeadline:      *rpcDeadline,

		Options: amrt.StackOptions{
			HomaDegree:        *degree,
			SIRDPoolBytes:     *sirdPool,
			SIRDStalenessRTTs: *sirdStale,
		},
		Timeout:         *timeout,
		TracePath:       *tracePath,
		MetricsPath:     *metricsPath,
		MetricsCSVPath:  *metricsCSV,
		MetricsInterval: *metricsIvl,
		Faults:          *faultSpec,
		Audit:           *auditFlag,
		Shards:          *shards,
	}

	if *compare {
		results := amrt.Compare(cfg)
		names := amrt.Protocols()
		sort.SliceStable(names, func(i, j int) bool { return i < j })
		fmt.Printf("workload=%s load=%.2f flows=%d\n", *wl, *load, *flows)
		fmt.Printf("%-8s %12s %12s %8s %10s %8s\n", "proto", "AFCT", "p99", "util", "done", "drops")
		for _, name := range names {
			r := results[name]
			fmt.Printf("%-8s %12v %12v %8.3f %6d/%-4d %8d\n",
				name, round(r.AFCT), round(r.P99), r.Utilization, r.Completed, r.Total, r.Drops)
		}
		return
	}

	start := time.Now()
	r, err := amrt.RunContext(context.Background(), cfg)
	if err != nil {
		// Config mistakes (unknown protocol, malformed fault spec, a
		// fault naming a link the topology doesn't have) are user input
		// here, not programmer error: report and exit instead of
		// panicking like the library's Run wrapper.
		fmt.Fprintf(os.Stderr, "amrtsim: %v\n", err)
		if errors.Is(err, amrt.ErrBadFaultSpec) {
			fmt.Fprintln(os.Stderr, "amrtsim: see docs/FAULTS.md for the -faults grammar and the link names the topology defines")
		}
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("protocol:    %s\n", r.Protocol)
	fmt.Printf("workload:    %s @ load %.2f\n", r.Workload, r.Load)
	fmt.Printf("flows:       %d/%d completed\n", r.Completed, r.Total)
	fmt.Printf("AFCT:        %v\n", round(r.AFCT))
	fmt.Printf("p99 FCT:     %v\n", round(r.P99))
	fmt.Printf("utilization: %.3f\n", r.Utilization)
	fmt.Printf("drops:       %d   trims: %d\n", r.Drops, r.Trims)
	if r.DeadlineTotal > 0 {
		fmt.Printf("deadlines:   %d/%d missed\n", r.DeadlineMissed, r.DeadlineTotal)
	}
	fmt.Printf("events:      %d (%.1fM events/s wall)\n", r.Events, float64(r.Events)/elapsed.Seconds()/1e6)
	if r.Killed > 0 {
		fmt.Printf("killed:      %d (endpoint host crashed)\n", r.Killed)
	}
	if r.Stalled > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d flows stalled (no progress for the watchdog window with links up)\n", r.Stalled)
	}
	if incomplete := r.Total - r.Completed - r.Killed; incomplete > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d flows did not complete before the horizon\n", incomplete)
	}
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
