package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"amrt"
	"amrt/internal/campaign"
	"amrt/internal/server"
)

// sweepSpec is the JSON job spec accepted by POST /jobs: the sweep
// axes and base-config knobs of `amrtsim sweep`, plus optional
// per-job failure-policy overrides. Durations are Go duration strings
// ("250ms") or integer nanoseconds. Zero values fall back to the
// daemon-wide defaults set by the serve flags; docs/SERVICE.md has the
// full schema.
type sweepSpec struct {
	Protocols  []string  `json:"protos,omitempty"`
	Workloads  []string  `json:"workloads,omitempty"`
	Topologies []string  `json:"topos,omitempty"`
	Degrees    []int     `json:"degrees,omitempty"`
	Loads      []float64 `json:"loads,omitempty"`
	Seeds      []int64   `json:"seeds,omitempty"`
	Faults     []string  `json:"faults,omitempty"`
	Shards     []int     `json:"shards,omitempty"`

	Flows        int          `json:"flows,omitempty"`
	Pattern      string       `json:"pattern,omitempty"`
	Topo         string       `json:"topo,omitempty"`
	IncastBytes  int64        `json:"incast_bytes,omitempty"`
	ShuffleWidth int          `json:"shuffle_width,omitempty"`
	ShuffleBytes int64        `json:"shuffle_bytes,omitempty"`
	RPCRequest   int64        `json:"rpc_request,omitempty"`
	RPCResponse  int64        `json:"rpc_response,omitempty"`
	RPCDeadline  specDuration `json:"rpc_deadline,omitempty"`
	HomaDegree   int          `json:"homa_degree,omitempty"`
	SIRDPool     int64        `json:"sird_pool,omitempty"`
	SIRDStale    int          `json:"sird_staleness,omitempty"`
	Timeout      specDuration `json:"timeout,omitempty"`
	Audit        bool         `json:"audit,omitempty"`

	// Per-job failure-policy overrides; zero values inherit the
	// daemon's -retries / -retry-backoff / -cell-timeout defaults.
	Retries      int          `json:"retries,omitempty"`
	RetryBackoff specDuration `json:"retry_backoff,omitempty"`
	CellTimeout  specDuration `json:"cell_timeout,omitempty"`
}

// specDuration is a time.Duration that unmarshals from either a Go
// duration string ("250ms") or integer nanoseconds.
type specDuration time.Duration

// UnmarshalJSON implements json.Unmarshaler for both accepted forms.
func (d *specDuration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("bad duration %q: %w", s, perr)
		}
		*d = specDuration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(raw, &ns); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\" or integer nanoseconds: %w", err)
	}
	*d = specDuration(ns)
	return nil
}

// servePolicy is the daemon-wide execution defaults a spec's zero
// fields inherit.
type servePolicy struct {
	cacheDir     string
	workers      int
	retries      int
	retryBackoff time.Duration
	cellTimeout  time.Duration
	quarantine   bool
}

// specToSweep resolves a job spec against the daemon defaults into the
// executable amrt.SweepConfig. The cache directory is daemon-owned:
// every job shares it, which is what makes a restarted daemon resume
// interrupted jobs with cache hits.
func specToSweep(raw json.RawMessage, pol servePolicy) (amrt.SweepConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var spec sweepSpec
	if err := dec.Decode(&spec); err != nil {
		return amrt.SweepConfig{}, fmt.Errorf("bad sweep spec: %w", err)
	}
	sc := amrt.SweepConfig{
		Protocols:  spec.Protocols,
		Workloads:  spec.Workloads,
		Topologies: spec.Topologies,
		Degrees:    spec.Degrees,
		Loads:      spec.Loads,
		Seeds:      spec.Seeds,
		Faults:     spec.Faults,
		Shards:     spec.Shards,
		Base: amrt.Config{
			Flows:            spec.Flows,
			Pattern:          spec.Pattern,
			IncastBytes:      spec.IncastBytes,
			ShuffleWidth:     spec.ShuffleWidth,
			ShuffleBytes:     spec.ShuffleBytes,
			RPCRequestBytes:  spec.RPCRequest,
			RPCResponseBytes: spec.RPCResponse,
			RPCDeadline:      time.Duration(spec.RPCDeadline),
			HomaDegree:       spec.HomaDegree,
			Options: amrt.StackOptions{
				SIRDPoolBytes:     spec.SIRDPool,
				SIRDStalenessRTTs: spec.SIRDStale,
			},
			Timeout: time.Duration(spec.Timeout),
			Audit:   spec.Audit,
		},
		CacheDir:     pol.cacheDir,
		Workers:      pol.workers,
		Retries:      pol.retries,
		RetryBackoff: pol.retryBackoff,
		CellTimeout:  pol.cellTimeout,
		Quarantine:   pol.quarantine,
	}
	if spec.Topo != "" {
		t, err := amrt.ParseTopology(spec.Topo)
		if err != nil {
			return amrt.SweepConfig{}, fmt.Errorf("bad sweep spec: topo: %w", err)
		}
		sc.Base.Topology = t
	}
	if spec.Retries != 0 {
		sc.Retries = spec.Retries
	}
	if spec.RetryBackoff != 0 {
		sc.RetryBackoff = time.Duration(spec.RetryBackoff)
	}
	if spec.CellTimeout != 0 {
		sc.CellTimeout = time.Duration(spec.CellTimeout)
	}
	return sc, nil
}

// serveMain implements `amrtsim serve`: the resilient campaign daemon.
// It journals every job to a ledger under -state, shares one result
// cache across jobs, retries and quarantines failing cells per the
// policy flags, and drains gracefully on SIGINT/SIGTERM — in-flight
// jobs checkpoint into the cache and resume on the next start.
// docs/SERVICE.md documents the HTTP API and operational semantics.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("amrtsim serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8340", "listen address")
		stateDir   = fs.String("state", ".amrtsim-serve", "state directory: job ledger, results, and the shared sweep cache")
		jobWorkers = fs.Int("job-workers", 1, "jobs run concurrently (cells within a job parallelize separately)")
		workers    = fs.Int("workers", 0, "per-job cell worker cap (0 = GOMAXPROCS)")
		retries    = fs.Int("retries", 2, "default per-cell retries before a cell is quarantined")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "base delay before a cell's first retry (doubles per attempt)")
		cellTO     = fs.Duration("cell-timeout", 0, "default per-cell attempt budget (0 = unbounded)")
		strict     = fs.Bool("strict", false, "fail a whole job on its first exhausted cell instead of quarantining it")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM before in-flight jobs are checkpointed")
	)
	fs.Parse(args)

	pol := servePolicy{
		cacheDir:     filepath.Join(*stateDir, "cache"),
		workers:      *workers,
		retries:      *retries,
		retryBackoff: *backoff,
		cellTimeout:  *cellTO,
		quarantine:   !*strict,
	}
	srv, err := server.New(server.Config{
		StateDir:   *stateDir,
		JobWorkers: *jobWorkers,
		Validate: func(spec json.RawMessage) error {
			sc, err := specToSweep(spec, pol)
			if err != nil {
				return err
			}
			return sc.Validate()
		},
		Runner: func(ctx context.Context, spec json.RawMessage, progress func(campaign.Progress)) (json.RawMessage, error) {
			sc, err := specToSweep(spec, pol)
			if err != nil {
				return nil, err
			}
			sc.Progress = func(p amrt.SweepProgress) {
				progress(campaign.Progress{
					Done: p.Done, Total: p.Total,
					Hits: p.CacheHits, Misses: p.CacheMisses, Failed: p.Failed,
					Point: campaign.Point{
						Protocol: p.Protocol, Workload: p.Workload,
						Topology: p.Topology, Degree: p.Degree,
						Load: p.Load, Seed: p.Seed, Faults: p.Faults,
					},
					FromCache: p.FromCache, Err: p.Err,
				})
			}
			res, err := amrt.Sweep(ctx, sc)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim serve: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim serve: %v\n", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "amrtsim serve: listening on %s (state %s, %d job workers)\n",
		ln.Addr(), *stateDir, *jobWorkers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case err := <-done:
		// The listener failed underneath us; stop the pool and exit.
		srv.Shutdown(context.Background())
		fmt.Fprintf(os.Stderr, "amrtsim serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "amrtsim serve: draining (budget %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "amrtsim serve: drain budget exceeded, in-flight jobs checkpointed\n")
	}
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "amrtsim serve: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "amrtsim serve: stopped")
	return 0
}
